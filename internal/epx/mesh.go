// Package epx is a surrogate for EUROPLEXUS (EPX), the industrial
// fast-transient-dynamics code of the paper's case study (§IV). EPX itself
// is 600k lines of proprietary Fortran co-owned by CEA and the EC, so this
// package rebuilds the three algorithmic kernels the paper identifies as
// >70% of a typical run, with the same computational character:
//
//   - LOOPELM (loopelm.go): the independent loop over finite elements
//     computing nodal internal forces from the local mechanical behaviour —
//     gather-heavy and therefore memory-intensive, which is why the paper's
//     Fig. 6 shows limited LOOPELM speedup on the smaller MEPPEN instance;
//   - REPERA (repera.go): the independent loop sorting candidates for
//     node-to-facet unilateral contact — compute-intensive geometry tests,
//     good speedup;
//   - CHOLESKY: factorization of the condensed H matrix in skyline storage
//     (package skyline), dominating the MAXPLANE instance;
//
// plus an explicit central-difference time integrator whose remaining
// sequential work plays the paper's "other" fraction (Fig. 8, ~30%).
//
// The MEPPEN (missile crash) and MAXPLANE (ice impact on composite plate)
// instances are synthetic: meshes, contact densities and H-matrix profiles
// are sized so the sequential time split between the three kernels matches
// the character the paper describes for each simulation.
package epx

// Mesh is a structured hexahedral box mesh: nx×ny×nz 8-node brick elements,
// with the top surface (z = max) triangulated into quad facets that serve as
// contact targets for REPERA.
type Mesh struct {
	NX, NY, NZ int
	DX         float64 // uniform spacing

	Nodes  [][3]float64
	Elems  [][8]int32
	Facets [][4]int32 // top-surface quads, contact targets
}

// NewBox builds an nx×ny×nz element box with spacing dx.
func NewBox(nx, ny, nz int, dx float64) *Mesh {
	m := &Mesh{NX: nx, NY: ny, NZ: nz, DX: dx}
	nxn, nyn, nzn := nx+1, ny+1, nz+1
	node := func(i, j, k int) int32 { return int32((i*nyn+j)*nzn + k) }

	m.Nodes = make([][3]float64, nxn*nyn*nzn)
	for i := 0; i < nxn; i++ {
		for j := 0; j < nyn; j++ {
			for k := 0; k < nzn; k++ {
				m.Nodes[node(i, j, k)] = [3]float64{float64(i) * dx, float64(j) * dx, float64(k) * dx}
			}
		}
	}

	m.Elems = make([][8]int32, 0, nx*ny*nz)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				m.Elems = append(m.Elems, [8]int32{
					node(i, j, k), node(i+1, j, k), node(i+1, j+1, k), node(i, j+1, k),
					node(i, j, k+1), node(i+1, j, k+1), node(i+1, j+1, k+1), node(i, j+1, k+1),
				})
			}
		}
	}

	m.Facets = make([][4]int32, 0, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			m.Facets = append(m.Facets, [4]int32{
				node(i, j, nz), node(i+1, j, nz), node(i+1, j+1, nz), node(i, j+1, nz),
			})
		}
	}
	return m
}

// NumNodes returns the node count.
func (m *Mesh) NumNodes() int { return len(m.Nodes) }

// NumElems returns the element count.
func (m *Mesh) NumElems() int { return len(m.Elems) }
