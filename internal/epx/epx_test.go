package epx

import (
	"math"
	"testing"

	"xkaapi/gomp"
)

func TestNewBoxTopology(t *testing.T) {
	m := NewBox(3, 2, 4, 0.5)
	if got, want := m.NumNodes(), 4*3*5; got != want {
		t.Fatalf("nodes=%d want %d", got, want)
	}
	if got, want := m.NumElems(), 3*2*4; got != want {
		t.Fatalf("elems=%d want %d", got, want)
	}
	if got, want := len(m.Facets), 3*2; got != want {
		t.Fatalf("facets=%d want %d", got, want)
	}
	// Every element must reference 8 distinct valid nodes.
	for e, el := range m.Elems {
		seen := map[int32]bool{}
		for _, n := range el {
			if n < 0 || int(n) >= m.NumNodes() {
				t.Fatalf("elem %d references node %d", e, n)
			}
			if seen[n] {
				t.Fatalf("elem %d repeats node %d", e, n)
			}
			seen[n] = true
		}
	}
	// Facets lie on the top surface.
	zTop := float64(m.NZ) * m.DX
	for f, fac := range m.Facets {
		for _, n := range fac {
			if m.Nodes[n][2] != zTop {
				t.Fatalf("facet %d node %d not on top surface", f, n)
			}
		}
	}
}

func TestElemForceZeroDisplacement(t *testing.T) {
	m := NewBox(4, 4, 2, 1)
	s := NewState(m, Material{E: 10, Yield: 0.1, Hard: 0.3})
	s.ElemForceRange(0, m.NumElems())
	s.Assemble()
	if n := s.ForceNorm(); n != 0 {
		t.Fatalf("forces on undeformed mesh: %g", n)
	}
}

func TestElemForceDeterministicAndChunkable(t *testing.T) {
	m := NewBox(6, 5, 3, 1)
	s1 := NewState(m, Material{E: 10, Yield: 0.02, Hard: 0.3})
	s2 := NewState(m, Material{E: 10, Yield: 0.02, Hard: 0.3})
	s1.Kick(0.5, 1)
	s2.Kick(0.5, 1)
	s1.Integrate()
	s2.Integrate()
	// One full sweep vs many small chunks must agree bitwise.
	s1.ElemForceRange(0, m.NumElems())
	for lo := 0; lo < m.NumElems(); lo += 7 {
		hi := lo + 7
		if hi > m.NumElems() {
			hi = m.NumElems()
		}
		s2.ElemForceRange(lo, hi)
	}
	for e := range s1.EForce {
		if s1.EForce[e] != s2.EForce[e] {
			t.Fatalf("element %d force differs between chunkings", e)
		}
	}
}

func TestPlasticityAccumulates(t *testing.T) {
	m := NewBox(2, 2, 2, 1)
	s := NewState(m, Material{E: 10, Yield: 1e-6, Hard: 0.5})
	for i := range s.Disp {
		s.Disp[i] = [3]float64{0.3 * m.Nodes[i][0], -0.1 * m.Nodes[i][1], 0.05 * m.Nodes[i][2]}
	}
	s.ElemForceRange(0, m.NumElems())
	var any bool
	for _, p := range s.PStrain {
		if p > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("large strain with tiny yield produced no plastic strain")
	}
}

func TestReperaFindsNearbyFacets(t *testing.T) {
	m := NewBox(6, 6, 3, 1)
	s := NewState(m, Material{E: 10, Yield: 0.02, Hard: 0.3})
	r := NewRepera(m, 4)
	r.Build(s.Disp)
	r.SortRange(s.Disp, 0, m.NumNodes())
	if r.CandCount() == 0 {
		t.Fatal("no contact candidates found on an intact mesh")
	}
	// Candidate lists must be sorted by distance and bounded.
	for v := range r.candPerNode {
		l := r.candPerNode[v]
		if len(l) > maxCand {
			t.Fatalf("node %d keeps %d candidates (max %d)", v, len(l), maxCand)
		}
		for i := 1; i < len(l); i++ {
			if l[i].Dist < l[i-1].Dist {
				t.Fatalf("node %d candidates unsorted", v)
			}
		}
	}
	// Top-surface nodes must see at least one facet at distance ~0.
	top := m.NumNodes() - 1
	if len(r.candPerNode[top]) == 0 {
		t.Fatal("top corner node found no candidate facet")
	}
}

func TestReperaDeterministicAcrossChunkings(t *testing.T) {
	m := NewBox(5, 5, 3, 1)
	s := NewState(m, Material{E: 10, Yield: 0.02, Hard: 0.3})
	s.Kick(0.5, 0.7)
	s.Integrate()
	r1 := NewRepera(m, 8)
	r2 := NewRepera(m, 8)
	r1.Build(s.Disp)
	r2.Build(s.Disp)
	r1.SortRange(s.Disp, 0, m.NumNodes())
	for lo := 0; lo < m.NumNodes(); lo += 11 {
		hi := lo + 11
		if hi > m.NumNodes() {
			hi = m.NumNodes()
		}
		r2.SortRange(s.Disp, lo, hi)
	}
	if r1.CandChecksum() != r2.CandChecksum() {
		t.Fatal("repera checksum differs between chunkings")
	}
}

func TestInsertCandOrderAndCap(t *testing.T) {
	var l []Cand
	for i := 20; i > 0; i-- {
		l = insertCand(l, Cand{Facet: int32(i), Dist: float64(i)})
	}
	if len(l) != maxCand {
		t.Fatalf("len=%d want %d", len(l), maxCand)
	}
	for i := 0; i < maxCand; i++ {
		if l[i].Dist != float64(i+1) {
			t.Fatalf("slot %d has dist %g want %d", i, l[i].Dist, i+1)
		}
	}
}

func TestSimBackendsBitwiseAgree(t *testing.T) {
	inst := Instance{
		Name: "mini", NX: 5, NY: 5, NZ: 3, Steps: 2, Refine: 4,
		HN: 96, HFill: 0.15, HBS: 16, HScale: 1, HSkip: 1, Seed: 7,
	}
	run := func(b Backend) *Sim {
		s, err := NewSim(inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(b); err != nil {
			t.Fatal(err)
		}
		b.Close()
		return s
	}
	ref := run(NewSeqBackend())
	kaapi := run(NewKaapiBackend(4))
	ompS := run(NewGompBackend(4, gomp.Static, 0))
	ompD := run(NewGompBackend(4, gomp.Dynamic, 8))

	for _, pair := range []struct {
		name string
		got  *Sim
	}{{"kaapi", kaapi}, {"omp-static", ompS}, {"omp-dynamic", ompD}} {
		if pair.got.ForceNorm != ref.ForceNorm {
			t.Errorf("%s: ForceNorm %g != seq %g", pair.name, pair.got.ForceNorm, ref.ForceNorm)
		}
		if pair.got.CandSum != ref.CandSum {
			t.Errorf("%s: CandSum %g != seq %g", pair.name, pair.got.CandSum, ref.CandSum)
		}
		if pair.got.SolNorm != ref.SolNorm {
			t.Errorf("%s: SolNorm %g != seq %g", pair.name, pair.got.SolNorm, ref.SolNorm)
		}
	}
	if ref.ForceNorm == 0 || math.IsNaN(ref.ForceNorm) {
		t.Fatalf("degenerate simulation: force norm %g", ref.ForceNorm)
	}
}

func TestPhaseTimesAccounting(t *testing.T) {
	inst := MEPPEN(1)
	inst.NX, inst.NY, inst.NZ = 6, 6, 3 // shrink for test speed
	inst.Steps = 2
	inst.HN = 64
	s, err := NewSim(inst)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s.Run(NewSeqBackend())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Total() <= 0 {
		t.Fatal("no time accounted")
	}
	if pt.Loopelm <= 0 || pt.Repera <= 0 || pt.Cholesky <= 0 || pt.Other <= 0 {
		t.Fatalf("phase missing: %v", pt)
	}
	var sum PhaseTimes
	sum.Add(pt)
	sum.Add(pt)
	if sum.Total() != 2*pt.Total() {
		t.Fatal("Add is not additive")
	}
	if s := pt.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestInstancePresets(t *testing.T) {
	mep := MEPPEN(1)
	maxp := MAXPLANE(1)
	if mep.Name != "MEPPEN" || maxp.Name != "MAXPLANE" {
		t.Fatal("bad names")
	}
	// The defining contrast of the two instances (Fig. 8): MEPPEN has many
	// more elements than MAXPLANE; MAXPLANE's H system is much larger.
	if mep.NX*mep.NY*mep.NZ <= maxp.NX*maxp.NY*maxp.NZ {
		t.Fatal("MEPPEN should have the bigger mesh")
	}
	if maxp.HN <= mep.HN {
		t.Fatal("MAXPLANE should have the bigger H matrix")
	}
	if MEPPEN(0).NX != MEPPEN(1).NX {
		t.Fatal("scale 0 must clamp to 1")
	}
}
