package epx

import "math"

// maxCand is the number of closest facets kept per node, as EPX keeps a
// short list of unilateral-contact candidates per striker node.
const maxCand = 8

// Cand is one contact candidate: a facet and the squared distance from the
// node to its (refined) projection point.
type Cand struct {
	Facet int32
	Dist  float64
}

// Repera implements the REPERA kernel: for every striker node, find the
// nearby target facets and sort them by distance. A uniform spatial hash
// over facet centers bounds the search; per-candidate refinement iterations
// (a fixed-point projection onto the facet plane) make the loop
// compute-intensive, matching the paper's observation that REPERA speeds up
// well where the memory-bound LOOPELM does not.
type Repera struct {
	M      *Mesh
	Refine int     // refinement iterations per candidate
	Radius float64 // search radius

	// hash grid over facet centers (rebuilt each step in "other")
	cell          float64
	gx, gy, gz    int
	ox, oy, oz    float64
	cellStart     []int32
	cellItems     []int32
	centers       [][3]float64
	normals       [][3]float64
	candPerNode   [][]Cand
	totalCand     int
	scratchCounts []int32
}

// NewRepera sizes the contact structure for mesh m.
func NewRepera(m *Mesh, refine int) *Repera {
	r := &Repera{
		M:      m,
		Refine: refine,
		Radius: 2.5 * m.DX,
		cell:   2.5 * m.DX,
	}
	r.centers = make([][3]float64, len(m.Facets))
	r.normals = make([][3]float64, len(m.Facets))
	r.candPerNode = make([][]Cand, m.NumNodes())
	for i := range r.candPerNode {
		r.candPerNode[i] = make([]Cand, 0, maxCand)
	}
	return r
}

// Build recomputes facet centers/normals in the deformed configuration and
// rebuilds the spatial hash. Sequential; accounted to "other".
func (r *Repera) Build(disp [][3]float64) {
	m := r.M
	minC := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	maxC := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for f, fac := range m.Facets {
		var c [3]float64
		for _, n := range fac {
			for d := 0; d < 3; d++ {
				c[d] += (m.Nodes[n][d] + disp[n][d]) * 0.25
			}
		}
		r.centers[f] = c
		// Pseudo-normal from two edges of the deformed quad.
		p0, p1, p3 := fac[0], fac[1], fac[3]
		var e1, e2 [3]float64
		for d := 0; d < 3; d++ {
			e1[d] = m.Nodes[p1][d] + disp[p1][d] - m.Nodes[p0][d] - disp[p0][d]
			e2[d] = m.Nodes[p3][d] + disp[p3][d] - m.Nodes[p0][d] - disp[p0][d]
		}
		n := [3]float64{
			e1[1]*e2[2] - e1[2]*e2[1],
			e1[2]*e2[0] - e1[0]*e2[2],
			e1[0]*e2[1] - e1[1]*e2[0],
		}
		l := math.Sqrt(n[0]*n[0]+n[1]*n[1]+n[2]*n[2]) + 1e-30
		r.normals[f] = [3]float64{n[0] / l, n[1] / l, n[2] / l}
		for d := 0; d < 3; d++ {
			if c[d] < minC[d] {
				minC[d] = c[d]
			}
			if c[d] > maxC[d] {
				maxC[d] = c[d]
			}
		}
	}
	r.ox, r.oy, r.oz = minC[0], minC[1], minC[2]
	dim := func(lo, hi float64) int {
		n := int((hi-lo)/r.cell) + 1
		if n < 1 {
			n = 1
		}
		return n
	}
	r.gx, r.gy, r.gz = dim(minC[0], maxC[0]), dim(minC[1], maxC[1]), dim(minC[2], maxC[2])
	ncell := r.gx * r.gy * r.gz

	// Counting-sort facets into cells (CSR layout).
	if cap(r.scratchCounts) < ncell+1 {
		r.scratchCounts = make([]int32, ncell+1)
	}
	counts := r.scratchCounts[:ncell+1]
	for i := range counts {
		counts[i] = 0
	}
	cellOf := func(c [3]float64) int {
		ix := int((c[0] - r.ox) / r.cell)
		iy := int((c[1] - r.oy) / r.cell)
		iz := int((c[2] - r.oz) / r.cell)
		return (ix*r.gy+iy)*r.gz + iz
	}
	for f := range r.centers {
		counts[cellOf(r.centers[f])+1]++
	}
	for i := 1; i <= ncell; i++ {
		counts[i] += counts[i-1]
	}
	if cap(r.cellStart) < ncell+1 {
		r.cellStart = make([]int32, ncell+1)
	}
	r.cellStart = r.cellStart[:ncell+1]
	copy(r.cellStart, counts)
	if cap(r.cellItems) < len(r.centers) {
		r.cellItems = make([]int32, len(r.centers))
	}
	r.cellItems = r.cellItems[:len(r.centers)]
	fill := append([]int32(nil), counts...)
	for f := range r.centers {
		c := cellOf(r.centers[f])
		r.cellItems[fill[c]] = int32(f)
		fill[c]++
	}
}

// SortRange is the parallel REPERA loop body: for every node in [lo, hi),
// search the 27 neighbouring cells, refine the distance to each nearby
// facet, and keep the maxCand closest candidates sorted by distance. Node v
// writes only its own candidate list, so iterations are independent.
func (r *Repera) SortRange(disp [][3]float64, lo, hi int) {
	m := r.M
	rad2 := r.Radius * r.Radius
	for v := lo; v < hi; v++ {
		p := [3]float64{
			m.Nodes[v][0] + disp[v][0],
			m.Nodes[v][1] + disp[v][1],
			m.Nodes[v][2] + disp[v][2],
		}
		cand := r.candPerNode[v][:0]
		ix := int((p[0] - r.ox) / r.cell)
		iy := int((p[1] - r.oy) / r.cell)
		iz := int((p[2] - r.oz) / r.cell)
		for dx := -1; dx <= 1; dx++ {
			cx := ix + dx
			if cx < 0 || cx >= r.gx {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				cy := iy + dy
				if cy < 0 || cy >= r.gy {
					continue
				}
				for dz := -1; dz <= 1; dz++ {
					cz := iz + dz
					if cz < 0 || cz >= r.gz {
						continue
					}
					c := (cx*r.gy+cy)*r.gz + cz
					for it := r.cellStart[c]; it < r.cellStart[c+1]; it++ {
						f := r.cellItems[it]
						ctr := &r.centers[f]
						dxv := p[0] - ctr[0]
						dyv := p[1] - ctr[1]
						dzv := p[2] - ctr[2]
						d2 := dxv*dxv + dyv*dyv + dzv*dzv
						if d2 >= rad2 {
							continue
						}
						// Refinement: iterate the projection of the node
						// onto the facet plane (deterministic fixed-point,
						// the compute-intensive part of REPERA).
						nrm := &r.normals[f]
						h := dxv*nrm[0] + dyv*nrm[1] + dzv*nrm[2]
						proj := d2 - h*h
						if proj < 0 {
							proj = 0
						}
						for it2 := 0; it2 < r.Refine; it2++ {
							h = 0.5 * (h + (d2-proj)/(h+math.Copysign(1e-12, h)))
							w := 1 / (1 + h*h)
							proj = (proj + (d2-h*h)*w) * 0.5 * (1 + w)
							if proj < 0 {
								proj = 0
							}
						}
						dist := proj + h*h
						cand = insertCand(cand, Cand{Facet: f, Dist: dist})
					}
				}
			}
		}
		r.candPerNode[v] = cand
	}
}

// insertCand inserts c into the distance-sorted candidate list, keeping at
// most maxCand entries.
func insertCand(list []Cand, c Cand) []Cand {
	pos := len(list)
	for pos > 0 && list[pos-1].Dist > c.Dist {
		pos--
	}
	if pos >= maxCand {
		return list
	}
	if len(list) < maxCand {
		list = append(list, Cand{})
	}
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}

// CandCount returns the total number of retained candidates, a
// deterministic checksum for tests.
func (r *Repera) CandCount() int {
	t := 0
	for i := range r.candPerNode {
		t += len(r.candPerNode[i])
	}
	return t
}

// CandChecksum folds facet ids and distances into a single float, used to
// verify parallel and sequential executions produce identical results.
func (r *Repera) CandChecksum() float64 {
	var t float64
	for i := range r.candPerNode {
		for _, c := range r.candPerNode[i] {
			t += float64(c.Facet+1)*1e-6 + c.Dist
		}
	}
	return t
}
