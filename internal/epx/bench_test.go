package epx

import "testing"

func benchState(b *testing.B) (*State, *Repera) {
	b.Helper()
	mesh := NewBox(16, 16, 8, 1)
	st := NewState(mesh, Material{E: 100, Yield: 0.02, Hard: 0.3})
	st.Kick(0.4, 0.8)
	st.Integrate()
	rep := NewRepera(mesh, 12)
	rep.Build(st.Disp)
	return st, rep
}

// BenchmarkLoopelm reports the sequential per-sweep cost of the element
// force kernel (2048 elements, 8 Gauss points each).
func BenchmarkLoopelm(b *testing.B) {
	st, _ := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ElemForceRange(0, st.M.NumElems())
	}
}

// BenchmarkRepera reports the sequential per-sweep cost of the contact
// candidate sort (2601 nodes against 256 facets).
func BenchmarkRepera(b *testing.B) {
	st, rep := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.SortRange(st.Disp, 0, st.M.NumNodes())
	}
}

func BenchmarkAssemble(b *testing.B) {
	st, _ := benchState(b)
	st.ElemForceRange(0, st.M.NumElems())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Assemble()
	}
}

func BenchmarkGridBuild(b *testing.B) {
	st, rep := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Build(st.Disp)
	}
}
