package epx

import "math"

// Material is a simplified elasto-plastic law with linear isotropic
// hardening — enough nonlinearity to make element forces state-dependent,
// as in EPX's material models.
type Material struct {
	E     float64 // Young-like stiffness
	Yield float64 // initial yield strain
	Hard  float64 // hardening ratio in (0,1)
}

// State carries the nodal and element fields of the explicit solver.
type State struct {
	M   *Mesh
	Mat Material

	Disp  [][3]float64 // nodal displacements
	Vel   [][3]float64 // nodal velocities
	Force [][3]float64 // assembled nodal internal forces

	// EForce is the per-element block of nodal forces produced by LOOPELM.
	// Each element writes only its own entry, which is what makes the loop
	// iterations independent (the scatter into Force is a separate,
	// sequential assembly pass).
	EForce  [][8][3]float64
	PStrain []float64 // per-element accumulated plastic strain

	Mass float64 // lumped nodal mass
	Dt   float64
}

// NewState allocates the fields for mesh m.
func NewState(m *Mesh, mat Material) *State {
	return &State{
		M: m, Mat: mat,
		Disp:    make([][3]float64, m.NumNodes()),
		Vel:     make([][3]float64, m.NumNodes()),
		Force:   make([][3]float64, m.NumNodes()),
		EForce:  make([][8][3]float64, m.NumElems()),
		PStrain: make([]float64, m.NumElems()),
		Mass:    1,
		Dt:      1e-3,
	}
}

// hexSign holds the reference-cube corner signs of the 8-node brick.
var hexSign = [8][3]float64{
	{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
	{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
}

// gaussPt holds the 2×2×2 Gauss quadrature points of the reference cube
// (coordinates ±1/√3), the standard integration rule for trilinear bricks.
var gaussPt = func() [8][3]float64 {
	g := 1 / math.Sqrt(3)
	var pts [8][3]float64
	for a := 0; a < 8; a++ {
		pts[a] = [3]float64{hexSign[a][0] * g, hexSign[a][1] * g, hexSign[a][2] * g}
	}
	return pts
}()

// shapeGrad holds, for each Gauss point g and node a, the gradient of the
// trilinear shape function N_a at g in reference coordinates:
// dN_a/dξ_d = sign_a[d]/8 · Π_{e≠d} (1 + sign_a[e]·ξ_g[e]).
var shapeGrad = func() [8][8][3]float64 {
	var grad [8][8][3]float64
	for g := 0; g < 8; g++ {
		for a := 0; a < 8; a++ {
			for d := 0; d < 3; d++ {
				v := hexSign[a][d] / 8
				for e := 0; e < 3; e++ {
					if e != d {
						v *= 1 + hexSign[a][e]*gaussPt[g][e]
					}
				}
				grad[g][a][d] = v
			}
		}
	}
	return grad
}()

// ElemForceRange is the LOOPELM kernel: for every element in [lo, hi) it
// gathers the displacements of its 8 nodes (indirect, memory-bound
// accesses), integrates the strain over the 8 Gauss points of the brick,
// applies the elasto-plastic law at each point and accumulates the nodal
// internal forces. Iterations are independent: element e writes only
// EForce[e] and PStrain[e], which is exactly the property that makes
// LOOPELM a parallel independent loop in EPX.
func (s *State) ElemForceRange(lo, hi int) {
	invH := 2 / s.M.DX                   // reference-to-physical gradient scale
	wVol := s.M.DX * s.M.DX * s.M.DX / 8 // Gauss weight × Jacobian
	for e := lo; e < hi; e++ {
		elem := &s.M.Elems[e]
		// Gather the 8 nodal displacements once (24 indirect loads).
		var d [8][3]float64
		for a := 0; a < 8; a++ {
			d[a] = s.Disp[elem[a]]
		}
		ef := &s.EForce[e]
		*ef = [8][3]float64{}
		var effSum float64
		p := s.PStrain[e]
		yield := s.Mat.Yield * (1 + s.Mat.Hard*p)
		for g := 0; g < 8; g++ {
			grad := &shapeGrad[g]
			// Small-strain tensor at the Gauss point.
			var exx, eyy, ezz, exy, eyz, ezx float64
			for a := 0; a < 8; a++ {
				bx := grad[a][0] * invH
				by := grad[a][1] * invH
				bz := grad[a][2] * invH
				exx += d[a][0] * bx
				eyy += d[a][1] * by
				ezz += d[a][2] * bz
				exy += d[a][0]*by + d[a][1]*bx
				eyz += d[a][1]*bz + d[a][2]*by
				ezx += d[a][2]*bx + d[a][0]*bz
			}
			eff := math.Sqrt(exx*exx + eyy*eyy + ezz*ezz + 0.5*(exy*exy+eyz*eyz+ezx*ezx))
			effSum += eff

			// Elasto-plastic secant stress at this point.
			var sig float64
			if eff > yield {
				sig = s.Mat.E * (yield + s.Mat.Hard*(eff-yield))
			} else {
				sig = s.Mat.E * eff
			}

			// f_a -= w · σ : B_a  (internal force contribution).
			w := -sig * wVol
			for a := 0; a < 8; a++ {
				bx := grad[a][0] * invH
				by := grad[a][1] * invH
				bz := grad[a][2] * invH
				ef[a][0] += w * (exx*bx + 0.5*(exy*by+ezx*bz))
				ef[a][1] += w * (eyy*by + 0.5*(exy*bx+eyz*bz))
				ef[a][2] += w * (ezz*bz + 0.5*(eyz*by+ezx*bx))
			}
		}
		// Plastic strain accumulates from the mean effective strain.
		if mean := effSum / 8; mean > yield {
			s.PStrain[e] = p + (mean - yield)
		}
	}
}

// Assemble scatters the per-element force blocks into the nodal Force
// array. The scatter races on shared nodes, so it stays sequential and is
// accounted to the "other" fraction, as the nodal assembly is in EPX.
func (s *State) Assemble() {
	for i := range s.Force {
		s.Force[i] = [3]float64{}
	}
	for e := range s.EForce {
		elem := &s.M.Elems[e]
		ef := &s.EForce[e]
		for a := 0; a < 8; a++ {
			n := elem[a]
			s.Force[n][0] += ef[a][0]
			s.Force[n][1] += ef[a][1]
			s.Force[n][2] += ef[a][2]
		}
	}
}

// Integrate advances velocities and displacements one central-difference
// step from the assembled forces (sequential "other" work).
func (s *State) Integrate() {
	c := s.Dt / s.Mass
	for i := range s.Vel {
		s.Vel[i][0] += c * s.Force[i][0]
		s.Vel[i][1] += c * s.Force[i][1]
		s.Vel[i][2] += c * s.Force[i][2]
		s.Disp[i][0] += s.Dt * s.Vel[i][0]
		s.Disp[i][1] += s.Dt * s.Vel[i][1]
		s.Disp[i][2] += s.Dt * s.Vel[i][2]
	}
}

// Kick applies an initial impact velocity field: nodes in the x < frac
// portion of the box move toward the plate, seeding the transient.
func (s *State) Kick(frac, v0 float64) {
	xmax := float64(s.M.NX) * s.M.DX
	for i, n := range s.M.Nodes {
		if n[0] < frac*xmax {
			s.Vel[i] = [3]float64{v0, 0, -v0}
		}
	}
}

// Diagnostics performs the sequential per-step bookkeeping EPX does outside
// the three parallel kernels: kinetic/internal energy balance, plastic
// dissipation tallies, and stability (CFL) monitoring. reps scales the
// number of passes, calibrating the "other" fraction of an instance.
func (s *State) Diagnostics(reps int) (kinetic, plastic float64) {
	for r := 0; r < max(1, reps); r++ {
		kinetic, plastic = 0, 0
		for i := range s.Vel {
			v := &s.Vel[i]
			kinetic += 0.5 * s.Mass * (v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		}
		for e := range s.PStrain {
			plastic += s.PStrain[e] * s.Mat.Yield
		}
	}
	return kinetic, plastic
}

// ForceNorm returns the L2 norm of the assembled nodal forces, used as a
// deterministic checksum in tests.
func (s *State) ForceNorm() float64 {
	var t float64
	for i := range s.Force {
		t += s.Force[i][0]*s.Force[i][0] + s.Force[i][1]*s.Force[i][1] + s.Force[i][2]*s.Force[i][2]
	}
	return math.Sqrt(t)
}
