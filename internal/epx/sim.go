package epx

import (
	"fmt"
	"time"

	"xkaapi"
	"xkaapi/gomp"
	"xkaapi/internal/skyline"
)

// Backend abstracts the parallel runtime under the simulation: the two
// independent loops (LOOPELM, REPERA) and the sparse Cholesky factorization
// are executed through it, so the same simulation runs sequentially, on
// X-Kaapi, or on the OpenMP-style runtime (the paper's Fig. 6/8 setup).
type Backend interface {
	Name() string
	// Foreach runs body over sub-ranges of [lo, hi) and returns when all
	// iterations completed.
	Foreach(lo, hi int, body func(lo, hi int))
	// Factor factors the skyline matrix in place.
	Factor(m *skyline.Matrix) error
	// Close releases runtime resources.
	Close()
}

// seqBackend runs everything on the calling goroutine.
type seqBackend struct{}

// NewSeqBackend returns the sequential baseline backend.
func NewSeqBackend() Backend { return seqBackend{} }

func (seqBackend) Name() string                              { return "seq" }
func (seqBackend) Foreach(lo, hi int, body func(lo, hi int)) { body(lo, hi) }
func (seqBackend) Factor(m *skyline.Matrix) error            { return skyline.FactorSeq(m) }
func (seqBackend) Close()                                    {}

// kaapiBackend drives the loops through xkaapi.Foreach (adaptive splitting)
// and the factorization through dataflow tasks.
type kaapiBackend struct {
	rt *xkaapi.Runtime
}

// NewKaapiBackend returns an X-Kaapi backend with n workers.
func NewKaapiBackend(n int) Backend {
	return &kaapiBackend{rt: xkaapi.New(xkaapi.WithWorkers(n))}
}

func (b *kaapiBackend) Name() string { return "xkaapi" }

func (b *kaapiBackend) Foreach(lo, hi int, body func(lo, hi int)) {
	// A loop-body panic fails the job instead of crashing the process now;
	// the Backend interface has no error channel, so resurface it loudly —
	// silent partial results would corrupt the simulation.
	if err := b.rt.Foreach(lo, hi, func(_ *xkaapi.Proc, l, h int) { body(l, h) }); err != nil {
		panic(err)
	}
}

func (b *kaapiBackend) Factor(m *skyline.Matrix) error {
	return skyline.FactorKaapi(b.rt, m)
}

func (b *kaapiBackend) Close() { b.rt.Close() }

// gompBackend drives the loops through OpenMP-style worksharing and the
// factorization through the taskwait-synchronized OpenMP port.
type gompBackend struct {
	team  *gomp.Team
	sched gomp.Schedule
	chunk int
}

// NewGompBackend returns an OpenMP-style backend with n threads and the
// given loop schedule (chunk as in the schedule() clause).
func NewGompBackend(n int, sched gomp.Schedule, chunk int) Backend {
	return &gompBackend{team: gomp.NewTeam(n), sched: sched, chunk: chunk}
}

func (b *gompBackend) Name() string { return "openmp/" + b.sched.String() }

func (b *gompBackend) Foreach(lo, hi int, body func(lo, hi int)) {
	// As in kaapiBackend: the interface has no error channel, so a region
	// failure must not be silently dropped.
	if err := b.team.ParallelFor(lo, hi, b.sched, b.chunk, func(_, l, h int) { body(l, h) }); err != nil {
		panic(err)
	}
}

func (b *gompBackend) Factor(m *skyline.Matrix) error {
	return skyline.FactorGomp(b.team, m)
}

func (b *gompBackend) Close() { b.team.Close() }

// Instance describes one EPX simulation scenario.
type Instance struct {
	Name string

	// Mesh and stepping.
	NX, NY, NZ int
	Steps      int

	// REPERA cost: refinement iterations per contact candidate.
	Refine int

	// OtherReps scales the sequential diagnostics in the "other" phase.
	OtherReps int

	// H matrix (condensed Lagrange-multiplier system, CHOLESKY kernel).
	HN     int     // order
	HFill  float64 // envelope fill fraction
	HBS    int     // block size (the paper uses BS=88)
	HScale int     // factor+solve repetitions per step (weight knob)
	HSkip  int     // factor every HSkip steps (1 = every step)

	Seed uint64
}

// MEPPEN is the missile-crash instance: large structural strains, many
// contacts — time dominated by LOOPELM and REPERA, with a small condensed
// system (Fig. 8 left). scale >= 1 grows the mesh for bigger machines.
func MEPPEN(scale int) Instance {
	if scale < 1 {
		scale = 1
	}
	return Instance{
		Name: "MEPPEN",
		NX:   24 * scale, NY: 24, NZ: 12,
		Steps:     4,
		Refine:    12,
		OtherReps: 35,
		HN:        256, HFill: 0.08, HBS: 48, HScale: 1, HSkip: 1,
		Seed: 20130501,
	}
}

// MAXPLANE is the ice-impact-on-composite-plate instance: ply-to-ply
// contact makes the condensed H matrix nearly as large and filled as the
// stiffness matrix, so CHOLESKY dominates (~60% of sequential time,
// Fig. 8 right). scale >= 1 grows the system.
func MAXPLANE(scale int) Instance {
	if scale < 1 {
		scale = 1
	}
	return Instance{
		Name: "MAXPLANE",
		NX:   18 * scale, NY: 18, NZ: 10,
		Steps:     4,
		Refine:    20,
		OtherReps: 500,
		HN:        1100 * scale, HFill: 0.036, HBS: 88, HScale: 1, HSkip: 1,
		Seed: 20130502,
	}
}

// PhaseTimes is the per-kernel wall-clock decomposition the paper's Fig. 8
// stacks: repera, loopelm, Cholesky, and the remaining sequential "other".
type PhaseTimes struct {
	Repera   time.Duration
	Loopelm  time.Duration
	Cholesky time.Duration
	Other    time.Duration
}

// Total returns the summed wall-clock time.
func (p PhaseTimes) Total() time.Duration {
	return p.Repera + p.Loopelm + p.Cholesky + p.Other
}

// Add accumulates q into p.
func (p *PhaseTimes) Add(q PhaseTimes) {
	p.Repera += q.Repera
	p.Loopelm += q.Loopelm
	p.Cholesky += q.Cholesky
	p.Other += q.Other
}

// String formats the decomposition.
func (p PhaseTimes) String() string {
	return fmt.Sprintf("repera=%v loopelm=%v cholesky=%v other=%v total=%v",
		p.Repera.Round(time.Millisecond), p.Loopelm.Round(time.Millisecond),
		p.Cholesky.Round(time.Millisecond), p.Other.Round(time.Millisecond),
		p.Total().Round(time.Millisecond))
}

// Sim is one prepared simulation: mesh, state, contact structure and H
// matrix. Prepare once, then Run with different backends.
type Sim struct {
	Inst Instance
	St   *State
	Rep  *Repera
	H    *skyline.Matrix
	rhs  []float64

	// Deterministic checksums filled by Run, compared across backends by
	// the tests (parallel executions must be bitwise identical to
	// sequential ones: no reductions race, every write is owned).
	ForceNorm float64
	CandSum   float64
	SolNorm   float64
}

// NewSim builds the meshes and matrices of inst.
func NewSim(inst Instance) (*Sim, error) {
	mesh := NewBox(inst.NX, inst.NY, inst.NZ, 1.0)
	st := NewState(mesh, Material{E: 100, Yield: 0.02, Hard: 0.3})
	st.Kick(0.4, 0.8)
	env := skyline.GenEnvelope(inst.HN, inst.HFill, inst.Seed)
	h, err := skyline.NewFromEnvelope(env, inst.HBS)
	if err != nil {
		return nil, err
	}
	return &Sim{
		Inst: inst,
		St:   st,
		Rep:  NewRepera(mesh, inst.Refine),
		H:    h,
		rhs:  make([]float64, inst.HN),
	}, nil
}

// Run executes the simulation on backend b and returns the phase time
// decomposition.
func (s *Sim) Run(b Backend) (PhaseTimes, error) {
	var pt PhaseTimes
	st := s.St
	inst := s.Inst
	for step := 0; step < inst.Steps; step++ {
		// --- other: assembly of the previous forces, time integration,
		// contact-grid rebuild (sequential in EPX as well).
		t0 := time.Now()
		st.Assemble()
		st.Integrate()
		st.Diagnostics(inst.OtherReps)
		s.Rep.Build(st.Disp)
		pt.Other += time.Since(t0)

		// --- LOOPELM: independent loop over elements.
		t0 = time.Now()
		b.Foreach(0, st.M.NumElems(), func(lo, hi int) {
			st.ElemForceRange(lo, hi)
		})
		pt.Loopelm += time.Since(t0)

		// --- REPERA: independent loop over striker nodes.
		t0 = time.Now()
		b.Foreach(0, st.M.NumNodes(), func(lo, hi int) {
			s.Rep.SortRange(st.Disp, lo, hi)
		})
		pt.Repera += time.Since(t0)

		// --- CHOLESKY: refresh, factor and solve the condensed system.
		if inst.HSkip > 0 && step%inst.HSkip == 0 {
			t0 = time.Now()
			for rep := 0; rep < max(1, inst.HScale); rep++ {
				s.H.FillSPD(inst.Seed + uint64(step) + uint64(rep))
				if err := b.Factor(s.H); err != nil {
					return pt, fmt.Errorf("epx: step %d: %w", step, err)
				}
				for i := range s.rhs {
					s.rhs[i] = 1
				}
				s.H.SolveInPlace(s.rhs)
			}
			pt.Cholesky += time.Since(t0)
		}
	}
	// Final deterministic checksums.
	st.Assemble()
	s.ForceNorm = st.ForceNorm()
	s.CandSum = s.Rep.CandChecksum()
	var sn float64
	for _, v := range s.rhs {
		sn += v * v
	}
	s.SolNorm = sn
	return pt, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
