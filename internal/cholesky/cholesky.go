// Package cholesky implements the tile Cholesky factorization
// (PLASMA_dpotrf_Tile) under the four schedulers of the paper's Fig. 2
// experiment:
//
//   - Seq: sequential right-looking tile algorithm (the baseline T_seq);
//   - Kaapi: X-Kaapi dataflow tasks, one handle per tile — the "XKaapi"
//     series;
//   - RunQuark: tasks inserted through the QUARK API with INPUT/INOUT/OUTPUT
//     flags; with quark.EngineNative this is the "PLASMA/Quark" series
//     (centralized ready list), with quark.EngineKaapi it is the
//     binary-compatible QUARK-on-X-Kaapi port the paper built;
//   - Static: the PLASMA static pipeline — a fixed column-cyclic owner map
//     and per-tile progress counters that threads spin on, with no task
//     management at all (the "PLASMA/static" series).
//
// All four run the same four blas kernels on the same tiles, so measured
// differences are scheduling, exactly as in the paper.
package cholesky

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi"
	"xkaapi/internal/blas"
	"xkaapi/internal/tile"
	"xkaapi/quark"
)

// Seq factors t in place (lower Cholesky) with the sequential right-looking
// tile algorithm.
func Seq(t *tile.Tiled) error {
	nb, nt := t.NB, t.NT
	for k := 0; k < nt; k++ {
		if err := blas.PotrfLower(t.Rows(k), t.Tile(k, k), nb); err != nil {
			return err
		}
		for m := k + 1; m < nt; m++ {
			blas.TrsmRLTN(t.Rows(m), t.Rows(k), t.Tile(k, k), nb, t.Tile(m, k), nb)
		}
		for m := k + 1; m < nt; m++ {
			blas.SyrkLN(t.Rows(m), t.Rows(k), t.Tile(m, k), nb, t.Tile(m, m), nb)
			for n := k + 1; n < m; n++ {
				blas.GemmNT(t.Rows(m), t.Rows(n), t.Rows(k),
					t.Tile(m, k), nb, t.Tile(n, k), nb, t.Tile(m, n), nb)
			}
		}
	}
	return nil
}

// Kaapi factors t in place using X-Kaapi dataflow tasks: one Handle per
// tile, potrf/trsm/syrk/gemm tasks with R/RW accesses. The runtime extracts
// the same DAG PLASMA's QUARK version declares, but schedules it by work
// stealing over per-worker deques.
func Kaapi(rt *xkaapi.Runtime, t *tile.Tiled) error {
	return KaapiCtx(context.Background(), rt, t)
}

// KaapiCtx is Kaapi bound to a context: cancelling ctx abandons the
// factorization's remaining tile tasks and returns ctx's error (t is then
// partially factored and must be discarded).
func KaapiCtx(ctx context.Context, rt *xkaapi.Runtime, t *tile.Tiled) error {
	job, kernelErr := SubmitKaapi(ctx, rt, t)
	err := job.Wait()
	if ke := kernelErr(); ke != nil {
		return ke // a kernel diagnostic (non-SPD input) beats the job error
	}
	return err
}

// SubmitKaapi inserts the factorization's tile tasks as one dataflow job on
// rt and returns without waiting: the job handle (for Wait, Cancel and
// per-job Stats — this is the submit-style entry a request-serving
// front-end needs), plus an accessor for the first kernel diagnostic (a
// non-positive-definite input detected by potrf), which is only meaningful
// once the job is done.
func SubmitKaapi(ctx context.Context, rt *xkaapi.Runtime, t *tile.Tiled) (*xkaapi.Job, func() error) {
	nb, nt := t.NB, t.NT
	handles := make([]xkaapi.Handle, nt*nt)
	h := func(i, j int) *xkaapi.Handle { return &handles[i*nt+j] }
	var errMu sync.Mutex
	var ferr error
	fail := func(err error) {
		if err != nil {
			errMu.Lock()
			if ferr == nil {
				ferr = err
			}
			errMu.Unlock()
		}
	}
	job := rt.SubmitCtx(ctx, func(p *xkaapi.Proc) {
		// Every kernel body consults the per-job context (Proc.Context) on
		// entry: it is cancelled by the request deadline, a client
		// disconnect, Job.Cancel or a sibling failure. The runtime's
		// execute-time skip already covers almost everything — the guard
		// only closes the instruction-scale window between that check and
		// body entry — but it costs one context read per O(nb³) kernel,
		// i.e. nothing, and it is the documented deadline-aware-body shape
		// for dataflow workloads (no JobFailed polling).
		dead := func(wp *xkaapi.Proc) bool { return wp.Context().Err() != nil }
		for k := 0; k < nt; k++ {
			k := k
			p.SpawnTask(func(wp *xkaapi.Proc) {
				if dead(wp) {
					return
				}
				fail(blas.PotrfLower(t.Rows(k), t.Tile(k, k), nb))
			}, xkaapi.ReadWrite(h(k, k)))
			for m := k + 1; m < nt; m++ {
				m := m
				p.SpawnTask(func(wp *xkaapi.Proc) {
					if dead(wp) {
						return
					}
					blas.TrsmRLTN(t.Rows(m), t.Rows(k), t.Tile(k, k), nb, t.Tile(m, k), nb)
				}, xkaapi.Read(h(k, k)), xkaapi.ReadWrite(h(m, k)))
			}
			for m := k + 1; m < nt; m++ {
				m := m
				p.SpawnTask(func(wp *xkaapi.Proc) {
					if dead(wp) {
						return
					}
					blas.SyrkLN(t.Rows(m), t.Rows(k), t.Tile(m, k), nb, t.Tile(m, m), nb)
				}, xkaapi.Read(h(m, k)), xkaapi.ReadWrite(h(m, m)))
				for n := k + 1; n < m; n++ {
					n := n
					p.SpawnTask(func(wp *xkaapi.Proc) {
						if dead(wp) {
							return
						}
						blas.GemmNT(t.Rows(m), t.Rows(n), t.Rows(k),
							t.Tile(m, k), nb, t.Tile(n, k), nb, t.Tile(m, n), nb)
					}, xkaapi.Read(h(m, k)), xkaapi.Read(h(n, k)), xkaapi.ReadWrite(h(m, n)))
				}
			}
		}
		p.Sync()
	})
	return job, func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return ferr
	}
}

// RunQuark factors t in place by inserting the tile kernels through the
// QUARK API; q selects the engine (native centralized list, or X-Kaapi).
func RunQuark(q *quark.Quark, t *tile.Tiled) error {
	nb, nt := t.NB, t.NT
	var errOnce sync.Once
	var ferr error
	fail := func(err error) {
		if err != nil {
			errOnce.Do(func() { ferr = err })
		}
	}
	fail(q.Run(func(q *quark.Quark) {
		for k := 0; k < nt; k++ {
			k := k
			kk := t.Tile(k, k)
			q.InsertTask(func() {
				fail(blas.PotrfLower(t.Rows(k), kk, nb))
			}, quark.Arg{Ptr: &kk[0], Flag: quark.INOUT})
			for m := k + 1; m < nt; m++ {
				m := m
				mk := t.Tile(m, k)
				q.InsertTask(func() {
					blas.TrsmRLTN(t.Rows(m), t.Rows(k), kk, nb, mk, nb)
				}, quark.Arg{Ptr: &kk[0], Flag: quark.INPUT},
					quark.Arg{Ptr: &mk[0], Flag: quark.INOUT})
			}
			for m := k + 1; m < nt; m++ {
				m := m
				mk := t.Tile(m, k)
				mm := t.Tile(m, m)
				q.InsertTask(func() {
					blas.SyrkLN(t.Rows(m), t.Rows(k), mk, nb, mm, nb)
				}, quark.Arg{Ptr: &mk[0], Flag: quark.INPUT},
					quark.Arg{Ptr: &mm[0], Flag: quark.INOUT})
				for n := k + 1; n < m; n++ {
					n := n
					nk := t.Tile(n, k)
					mn := t.Tile(m, n)
					q.InsertTask(func() {
						blas.GemmNT(t.Rows(m), t.Rows(n), t.Rows(k), mk, nb, nk, nb, mn, nb)
					}, quark.Arg{Ptr: &mk[0], Flag: quark.INPUT},
						quark.Arg{Ptr: &nk[0], Flag: quark.INPUT},
						quark.Arg{Ptr: &mn[0], Flag: quark.INOUT})
				}
			}
		}
	}))
	return ferr
}

// Static factors t in place with the PLASMA-style static pipeline on p
// threads: ops are bound to threads by the column of the tile they write
// (owner = column mod p), and cross-thread ordering is enforced by spinning
// on per-tile progress counters. No queue, no tasks, no stealing — the
// zero-overhead-but-rigid end of the paper's comparison.
func Static(p int, t *tile.Tiled) error {
	if p < 1 {
		p = 1
	}
	nb, nt := t.NB, t.NT
	// trsmDone[m*nt+k] = 1 once tile (m,k) holds its final panel value
	// (including m == k for the factored diagonal tile).
	trsmDone := make([]atomic.Int32, nt*nt)
	// updates[m*nt+n] counts Schur updates applied to tile (m,n); tile
	// (m,n) is fully updated for step k when the count reaches k.
	updates := make([]atomic.Int32, nt*nt)
	var ferr atomic.Value

	wait := func(c *atomic.Int32, v int32) {
		for c.Load() < v {
			if ferr.Load() != nil {
				return
			}
			runtime.Gosched()
		}
	}

	var wg sync.WaitGroup
	for tid := 0; tid < p; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := 0; k < nt; k++ {
				if ferr.Load() != nil {
					return
				}
				if k%p == tid {
					// All updates to column k tiles were applied by this
					// same thread in earlier iterations, so the panel is
					// ready: factor and solve it.
					if err := blas.PotrfLower(t.Rows(k), t.Tile(k, k), nb); err != nil {
						ferr.Store(err)
						return
					}
					trsmDone[k*nt+k].Store(1)
					for m := k + 1; m < nt; m++ {
						blas.TrsmRLTN(t.Rows(m), t.Rows(k), t.Tile(k, k), nb, t.Tile(m, k), nb)
						trsmDone[m*nt+k].Store(1)
					}
				}
				// Apply the step-k updates to the tiles this thread owns.
				for m := k + 1; m < nt; m++ {
					for n := k + 1; n <= m; n++ {
						if n%p != tid {
							continue
						}
						wait(&trsmDone[m*nt+k], 1)
						wait(&trsmDone[n*nt+k], 1)
						wait(&updates[m*nt+n], int32(k))
						if ferr.Load() != nil {
							return
						}
						if n == m {
							blas.SyrkLN(t.Rows(m), t.Rows(k), t.Tile(m, k), nb, t.Tile(m, m), nb)
						} else {
							blas.GemmNT(t.Rows(m), t.Rows(n), t.Rows(k),
								t.Tile(m, k), nb, t.Tile(n, k), nb, t.Tile(m, n), nb)
						}
						updates[m*nt+n].Add(1)
					}
				}
			}
		}(tid)
	}
	wg.Wait()
	if e := ferr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Gflops converts a Cholesky wall-clock time into GFlop/s using the
// standard n³/3 flop count.
func Gflops(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return (float64(n) * float64(n) * float64(n) / 3) / d.Seconds() / 1e9
}
