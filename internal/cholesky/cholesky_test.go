package cholesky

import (
	"testing"
	"time"

	"xkaapi"
	"xkaapi/internal/tile"
	"xkaapi/quark"
)

const residTol = 1e-10

func spdTiled(n, nb int) (*tile.Dense, *tile.Tiled) {
	d := tile.NewSPD(n, 1234)
	return d, tile.FromDense(d, nb)
}

func TestSeqFactorsCorrectly(t *testing.T) {
	for _, cfg := range [][2]int{{16, 4}, {65, 16}, {100, 32}, {8, 16}} {
		d, tl := spdTiled(cfg[0], cfg[1])
		if err := Seq(tl); err != nil {
			t.Fatal(err)
		}
		if r := tile.CholeskyResidual(d, tl); r > residTol {
			t.Fatalf("n=%d nb=%d: residual %g", cfg[0], cfg[1], r)
		}
	}
}

func TestKaapiFactorsCorrectly(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	for _, cfg := range [][2]int{{16, 4}, {96, 16}, {130, 32}} {
		d, tl := spdTiled(cfg[0], cfg[1])
		if err := Kaapi(rt, tl); err != nil {
			t.Fatal(err)
		}
		if r := tile.CholeskyResidual(d, tl); r > residTol {
			t.Fatalf("n=%d nb=%d: residual %g", cfg[0], cfg[1], r)
		}
	}
}

func TestQuarkNativeFactorsCorrectly(t *testing.T) {
	q := quark.New(4, quark.EngineNative)
	defer q.Delete()
	for _, cfg := range [][2]int{{16, 4}, {96, 16}} {
		d, tl := spdTiled(cfg[0], cfg[1])
		if err := RunQuark(q, tl); err != nil {
			t.Fatal(err)
		}
		if r := tile.CholeskyResidual(d, tl); r > residTol {
			t.Fatalf("n=%d nb=%d: residual %g", cfg[0], cfg[1], r)
		}
	}
}

func TestQuarkKaapiFactorsCorrectly(t *testing.T) {
	q := quark.New(4, quark.EngineKaapi)
	defer q.Delete()
	for _, cfg := range [][2]int{{16, 4}, {96, 16}} {
		d, tl := spdTiled(cfg[0], cfg[1])
		if err := RunQuark(q, tl); err != nil {
			t.Fatal(err)
		}
		if r := tile.CholeskyResidual(d, tl); r > residTol {
			t.Fatalf("n=%d nb=%d: residual %g", cfg[0], cfg[1], r)
		}
	}
}

func TestStaticFactorsCorrectly(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4} {
		for _, cfg := range [][2]int{{16, 4}, {96, 16}, {70, 32}} {
			d, tl := spdTiled(cfg[0], cfg[1])
			if err := Static(p, tl); err != nil {
				t.Fatal(err)
			}
			if r := tile.CholeskyResidual(d, tl); r > residTol {
				t.Fatalf("p=%d n=%d nb=%d: residual %g", p, cfg[0], cfg[1], r)
			}
		}
	}
}

func TestAllSchedulersAgree(t *testing.T) {
	d, ref := spdTiled(64, 16)
	if err := Seq(ref); err != nil {
		t.Fatal(err)
	}
	rt := xkaapi.New(xkaapi.WithWorkers(3))
	defer rt.Close()
	_, tk := spdTiled(64, 16)
	if err := Kaapi(rt, tk); err != nil {
		t.Fatal(err)
	}
	_, ts := spdTiled(64, 16)
	if err := Static(3, ts); err != nil {
		t.Fatal(err)
	}
	// Same input, same kernel sequence per tile → bitwise equal factors.
	for bi := 0; bi < ref.NT; bi++ {
		for bj := 0; bj <= bi; bj++ {
			rtile, ktile, stile := ref.Tile(bi, bj), tk.Tile(bi, bj), ts.Tile(bi, bj)
			for x := range rtile {
				if rtile[x] != ktile[x] {
					t.Fatalf("kaapi tile (%d,%d) differs at %d", bi, bj, x)
				}
				if rtile[x] != stile[x] {
					t.Fatalf("static tile (%d,%d) differs at %d", bi, bj, x)
				}
			}
		}
	}
	_ = d
}

func TestNotSPDPropagates(t *testing.T) {
	d := tile.NewDense(16)
	for i := 0; i < 16; i++ {
		d.Set(i, i, -1)
	}
	if err := Seq(tile.FromDense(d, 4)); err == nil {
		t.Fatal("Seq accepted an indefinite matrix")
	}
	rt := xkaapi.New(xkaapi.WithWorkers(2))
	defer rt.Close()
	if err := Kaapi(rt, tile.FromDense(d, 4)); err == nil {
		t.Fatal("Kaapi accepted an indefinite matrix")
	}
	if err := Static(2, tile.FromDense(d, 4)); err == nil {
		t.Fatal("Static accepted an indefinite matrix")
	}
}

func TestGflops(t *testing.T) {
	g := Gflops(1000, time.Second)
	if g < 0.3 || g > 0.4 { // 1e9/3 flops in 1s ≈ 0.333 GFlop/s
		t.Fatalf("Gflops=%g want ~0.333", g)
	}
	if Gflops(100, 0) != 0 {
		t.Fatal("zero duration must give 0")
	}
}
