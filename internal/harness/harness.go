// Package harness provides the shared machinery of the experiment drivers
// in cmd/: timing with repetitions, core-count sweeps, speedup/GFlops
// series, and aligned-table output matching the rows and curves of the
// paper's figures.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Time runs f reps times (after one untimed warmup when warm is true) and
// returns the median wall-clock duration. The paper averages 30 runs; the
// median is used here because laptop-class machines have heavier tails.
func Time(reps int, warm bool, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	if warm {
		f()
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		t0 := time.Now()
		f()
		ds[i] = time.Since(t0)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// TimeSetup is Time with a per-repetition untimed setup phase (e.g. cloning
// the input an in-place factorization will destroy), so the reported median
// covers only the measured computation. One warmup pair runs first.
func TimeSetup(reps int, setup, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	setup()
	f()
	ds := make([]time.Duration, reps)
	for i := range ds {
		setup()
		t0 := time.Now()
		f()
		ds[i] = time.Since(t0)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// CoreCounts returns the sweep {1, 2, 4, ...} up to max, always including
// max itself; the paper sweeps 1..48 on its 48-core machine.
func CoreCounts(max int) []int {
	if max < 1 {
		max = runtime.GOMAXPROCS(0)
	}
	var cs []int
	for c := 1; c < max; c *= 2 {
		cs = append(cs, c)
	}
	cs = append(cs, max)
	return cs
}

// ParseCores parses a comma-separated core list ("1,2,4"), or, when empty,
// returns CoreCounts(GOMAXPROCS).
func ParseCores(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return CoreCounts(runtime.GOMAXPROCS(0)), nil
	}
	var cs []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("harness: bad core count %q", part)
		}
		cs = append(cs, v)
	}
	return cs, nil
}

// Series is one curve of a figure: a name and a value per x position.
type Series struct {
	Name   string
	Values []float64
}

// Table prints an aligned table: header, then one row per x value with one
// column per series. fmtv formats each cell value.
func Table(w io.Writer, xlabel string, xs []int, series []Series, fmtv func(float64) string) {
	cols := []string{xlabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	rows := make([][]string, len(xs))
	for r, x := range xs {
		row := make([]string, len(cols))
		row[0] = strconv.Itoa(x)
		for i, s := range series {
			if r < len(s.Values) {
				row[i+1] = fmtv(s.Values[r])
			} else {
				row[i+1] = "-"
			}
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		rows[r] = row
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// Seconds formats a duration value (in seconds) the way the paper's Fig. 1
// table does.
func Seconds(v float64) string { return fmt.Sprintf("%.4f", v) }

// Ratio formats a speedup or slowdown.
func Ratio(v float64) string { return fmt.Sprintf("%.2f", v) }

// Gf formats GFlop/s.
func Gf(v float64) string { return fmt.Sprintf("%.3f", v) }
