package harness

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestTimeReturnsPlausibleMedian(t *testing.T) {
	d := Time(3, true, func() { time.Sleep(2 * time.Millisecond) })
	if d < time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("median %v implausible for a 2ms body", d)
	}
}

func TestTimeClampsReps(t *testing.T) {
	calls := 0
	Time(0, false, func() { calls++ })
	if calls != 1 {
		t.Fatalf("reps=0 ran body %d times, want 1", calls)
	}
}

func TestTimeSetupExcludesSetup(t *testing.T) {
	d := TimeSetup(3, func() { time.Sleep(5 * time.Millisecond) }, func() {})
	if d > 2*time.Millisecond {
		t.Fatalf("setup leaked into measurement: %v", d)
	}
}

func TestCoreCountsDoublingAndMax(t *testing.T) {
	cs := CoreCounts(6)
	want := []int{1, 2, 4, 6}
	if len(cs) != len(want) {
		t.Fatalf("CoreCounts(6)=%v", cs)
	}
	for i := range cs {
		if cs[i] != want[i] {
			t.Fatalf("CoreCounts(6)=%v want %v", cs, want)
		}
	}
	if got := CoreCounts(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("CoreCounts(1)=%v", got)
	}
	if got := CoreCounts(0); got[len(got)-1] != runtime.GOMAXPROCS(0) {
		t.Fatalf("CoreCounts(0)=%v must end at GOMAXPROCS", got)
	}
}

func TestParseCores(t *testing.T) {
	cs, err := ParseCores(" 1, 2 ,8 ")
	if err != nil || len(cs) != 3 || cs[0] != 1 || cs[1] != 2 || cs[2] != 8 {
		t.Fatalf("ParseCores: %v %v", cs, err)
	}
	if _, err := ParseCores("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
	if _, err := ParseCores("0"); err == nil {
		t.Fatal("zero cores accepted")
	}
	def, err := ParseCores("")
	if err != nil || len(def) == 0 {
		t.Fatalf("empty list: %v %v", def, err)
	}
}

func TestTableFormatsAllCells(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "cores", []int{1, 2}, []Series{
		{Name: "A", Values: []float64{1.5, 3.25}},
		{Name: "Blong", Values: []float64{0.5}},
	}, Ratio)
	out := sb.String()
	for _, want := range []string{"cores", "A", "Blong", "1.50", "3.25", "0.50", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if Seconds(1.23456) != "1.2346" {
		t.Fatalf("Seconds: %s", Seconds(1.23456))
	}
	if Ratio(2.5) != "2.50" {
		t.Fatalf("Ratio: %s", Ratio(2.5))
	}
	if Gf(1.23456) != "1.235" {
		t.Fatalf("Gf: %s", Gf(1.23456))
	}
}
