// Package xrand provides a tiny, allocation-free xorshift* pseudo random
// number generator used by the scheduler for victim selection.
//
// math/rand is avoided on the steal path: the package-level functions take a
// global lock and a per-worker rand.Rand costs a heap allocation plus
// interface indirection. Victim selection only needs speed and rough
// uniformity, not statistical quality.
package xrand

// Rand is an xorshift64* generator. The zero value is usable (it is seeded
// lazily with a fixed constant), but callers normally seed it with New so
// distinct workers draw distinct victim sequences.
type Rand struct {
	s uint64
}

// New returns a generator seeded with seed. A zero seed is replaced with a
// fixed odd constant because the xorshift state must never be zero.
func New(seed uint64) Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return Rand{s: seed}
}

// Next returns the next 64-bit value in the sequence.
func (r *Rand) Next() uint64 {
	s := r.s
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	r.s = s
	return s * 2685821657736338717
}

// Intn returns a value in [0, n). n must be positive. The slight modulo bias
// is irrelevant for victim selection.
func (r *Rand) Intn(n int) int {
	return int(r.Next() % uint64(n))
}
