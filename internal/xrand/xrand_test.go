package xrand

import (
	"testing"
	"testing/quick"
)

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	if r.Next() == 0 {
		t.Fatal("zero state produced zero output")
	}
	var z Rand // zero value
	if z.Next() == 0 {
		t.Fatal("zero-value generator produced zero output")
	}
}

func TestDistinctSeedsDistinctSequences(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 collisions between distinct seeds", same)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d)=%d out of range", n, v)
			}
		}
	}
}

func TestIntnRoughUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 8, 8000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		buckets[r.Intn(n)]++
	}
	for b, c := range buckets {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("bucket %d has %d/%d draws", b, c, draws)
		}
	}
}

func TestQuickNoShortCycles(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		first := r.Next()
		for i := 0; i < 32; i++ {
			if r.Next() == first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
