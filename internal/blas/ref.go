package blas

import "math"

// This file holds deliberately naive reference implementations of every
// optimized kernel, used only by tests (and kept in the non-test build so
// other packages' tests can call them).

// RefGemmNT is the reference for GemmNT.
func RefGemmNT(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			for t := 0; t < k; t++ {
				c[i*ldc+j] -= a[i*lda+t] * b[j*ldb+t]
			}
		}
	}
}

// RefSyrkLN is the reference for SyrkLN.
func RefSyrkLN(n, k int, a []float64, lda int, c []float64, ldc int) {
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for t := 0; t < k; t++ {
				c[i*ldc+j] -= a[i*lda+t] * a[j*lda+t]
			}
		}
	}
}

// RefTrsmRLTN is the reference for TrsmRLTN: column-by-column substitution.
func RefTrsmRLTN(m, n int, l []float64, ldl int, b []float64, ldb int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := b[i*ldb+j]
			for t := 0; t < j; t++ {
				s -= b[i*ldb+t] * l[j*ldl+t]
			}
			b[i*ldb+j] = s / l[j*ldl+j]
		}
	}
}

// RefPotrfLower is the reference for PotrfLower (outer-product form).
func RefPotrfLower(n int, a []float64, lda int) error {
	for k := 0; k < n; k++ {
		d := a[k*lda+k]
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		d = math.Sqrt(d)
		a[k*lda+k] = d
		for i := k + 1; i < n; i++ {
			a[i*lda+k] /= d
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j <= i; j++ {
				a[i*lda+j] -= a[i*lda+k] * a[j*lda+k]
			}
		}
	}
	return nil
}
