package blas

import (
	"math"
	"testing"
	"testing/quick"

	"xkaapi/internal/xrand"
)

func randMat(rng *xrand.Rand, n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = float64(rng.Next()%2000)/1000 - 1
	}
	return m
}

func randSPD(rng *xrand.Rand, n, lda int) []float64 {
	a := make([]float64, n*lda)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := float64(rng.Next()%2000)/1000 - 1
			a[i*lda+j] = v
			a[j*lda+i] = v
		}
		a[i*lda+i] += float64(n) + 1
	}
	return a
}

func maxDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestGemmNTMatchesReference(t *testing.T) {
	rng := xrand.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {13, 9, 21}, {32, 32, 32}, {17, 1, 4}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMat(&rng, m*k)
		b := randMat(&rng, n*k)
		c1 := randMat(&rng, m*n)
		c2 := append([]float64(nil), c1...)
		GemmNT(m, n, k, a, k, b, k, c1, n)
		RefGemmNT(m, n, k, a, k, b, k, c2, n)
		if d := maxDiff(c1, c2); d > 1e-12 {
			t.Fatalf("gemm %v: max diff %g", dims, d)
		}
	}
}

func TestGemmNTWithLeadingDimension(t *testing.T) {
	rng := xrand.New(2)
	const m, n, k, ld = 7, 6, 5, 16
	a := randMat(&rng, m*ld)
	b := randMat(&rng, n*ld)
	c1 := randMat(&rng, m*ld)
	c2 := append([]float64(nil), c1...)
	GemmNT(m, n, k, a, ld, b, ld, c1, ld)
	RefGemmNT(m, n, k, a, ld, b, ld, c2, ld)
	if d := maxDiff(c1, c2); d > 1e-12 {
		t.Fatalf("gemm with ld: max diff %g", d)
	}
}

func TestSyrkLNMatchesReference(t *testing.T) {
	rng := xrand.New(3)
	for _, dims := range [][2]int{{1, 1}, {4, 6}, {8, 8}, {15, 3}, {32, 24}} {
		n, k := dims[0], dims[1]
		a := randMat(&rng, n*k)
		c1 := randMat(&rng, n*n)
		c2 := append([]float64(nil), c1...)
		SyrkLN(n, k, a, k, c1, n)
		RefSyrkLN(n, k, a, k, c2, n)
		if d := maxDiff(c1, c2); d > 1e-12 {
			t.Fatalf("syrk %v: max diff %g", dims, d)
		}
	}
}

func TestSyrkLeavesUpperUntouched(t *testing.T) {
	rng := xrand.New(4)
	const n, k = 8, 8
	a := randMat(&rng, n*k)
	c := randMat(&rng, n*n)
	orig := append([]float64(nil), c...)
	SyrkLN(n, k, a, k, c, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c[i*n+j] != orig[i*n+j] {
				t.Fatalf("upper entry (%d,%d) modified", i, j)
			}
		}
	}
}

func TestTrsmMatchesReference(t *testing.T) {
	rng := xrand.New(5)
	for _, dims := range [][2]int{{1, 1}, {5, 4}, {8, 8}, {3, 17}, {24, 16}} {
		m, n := dims[0], dims[1]
		l := randSPD(&rng, n, n)
		if err := PotrfLower(n, l, n); err != nil {
			t.Fatal(err)
		}
		b1 := randMat(&rng, m*n)
		b2 := append([]float64(nil), b1...)
		TrsmRLTN(m, n, l, n, b1, n)
		RefTrsmRLTN(m, n, l, n, b2, n)
		if d := maxDiff(b1, b2); d > 1e-10 {
			t.Fatalf("trsm %v: max diff %g", dims, d)
		}
	}
}

func TestTrsmSolvesSystem(t *testing.T) {
	// After B := B0 · L⁻ᵀ we must have B · Lᵀ = B0.
	rng := xrand.New(6)
	const m, n = 6, 9
	l := randSPD(&rng, n, n)
	if err := PotrfLower(n, l, n); err != nil {
		t.Fatal(err)
	}
	b0 := randMat(&rng, m*n)
	b := append([]float64(nil), b0...)
	TrsmRLTN(m, n, l, n, b, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for t2 := 0; t2 < n; t2++ {
				lv := 0.0
				if t2 <= j { // Lᵀ[t2][j] = L[j][t2], nonzero for t2 <= j
					lv = l[j*n+t2]
				}
				s += b[i*n+t2] * lv
			}
			if math.Abs(s-b0[i*n+j]) > 1e-9 {
				t.Fatalf("B·Lᵀ≠B0 at (%d,%d): %g vs %g", i, j, s, b0[i*n+j])
			}
		}
	}
}

func TestPotrfMatchesReference(t *testing.T) {
	rng := xrand.New(7)
	for _, n := range []int{1, 2, 5, 16, 33} {
		a1 := randSPD(&rng, n, n)
		a2 := append([]float64(nil), a1...)
		if err := PotrfLower(n, a1, n); err != nil {
			t.Fatal(err)
		}
		if err := RefPotrfLower(n, a2, n); err != nil {
			t.Fatal(err)
		}
		// Compare lower triangles only.
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(a1[i*n+j]-a2[i*n+j]) > 1e-10 {
					t.Fatalf("n=%d: potrf differs at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestPotrfReconstructs(t *testing.T) {
	rng := xrand.New(8)
	const n = 20
	a := randSPD(&rng, n, n)
	orig := append([]float64(nil), a...)
	if err := PotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += a[i*n+k] * a[j*n+k]
			}
			if math.Abs(s-orig[i*n+j]) > 1e-9 {
				t.Fatalf("L·Lᵀ≠A at (%d,%d): %g vs %g", i, j, s, orig[i*n+j])
			}
		}
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	a := []float64{1, 0, 0, -1} // eigenvalues 1, -1
	if err := PotrfLower(2, a, 2); err != ErrNotSPD {
		t.Fatalf("err=%v want ErrNotSPD", err)
	}
}

func TestTrsvRoundTrip(t *testing.T) {
	rng := xrand.New(9)
	const n = 12
	l := randSPD(&rng, n, n)
	if err := PotrfLower(n, l, n); err != nil {
		t.Fatal(err)
	}
	x0 := randMat(&rng, n)
	// b = L·(Lᵀ·x0); solving both triangles must recover x0.
	b := make([]float64, n)
	tmp := make([]float64, n)
	for i := 0; i < n; i++ { // tmp = Lᵀ·x0
		var s float64
		for j := i; j < n; j++ {
			s += l[j*n+i] * x0[j]
		}
		tmp[i] = s
	}
	for i := 0; i < n; i++ { // b = L·tmp
		var s float64
		for j := 0; j <= i; j++ {
			s += l[i*n+j] * tmp[j]
		}
		b[i] = s
	}
	TrsvLowerNoTrans(n, l, n, b)
	TrsvLowerTrans(n, l, n, b)
	for i := range x0 {
		if math.Abs(b[i]-x0[i]) > 1e-9 {
			t.Fatalf("round trip differs at %d: %g vs %g", i, b[i], x0[i])
		}
	}
}

func TestGemvSub(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2×3
	x := []float64{1, 1, 1}
	y := []float64{10, 20}
	GemvSub(2, 3, a, 3, x, y)
	if y[0] != 10-6 || y[1] != 20-15 {
		t.Fatalf("y=%v", y)
	}
	yt := []float64{1, 1, 1}
	xt := []float64{1, 2}
	GemvTransSub(2, 3, a, 3, xt, yt)
	// yt[j] -= sum_i a[i][j]*x[i] → [1-(1+8), 1-(2+10), 1-(3+12)]
	if yt[0] != -8 || yt[1] != -11 || yt[2] != -14 {
		t.Fatalf("yt=%v", yt)
	}
}

// Property: gemm and its reference agree on random shapes.
func TestGemmQuickAgainstReference(t *testing.T) {
	rng := xrand.New(10)
	f := func(mu, nu, ku uint8) bool {
		m, n, k := int(mu)%12+1, int(nu)%12+1, int(ku)%12+1
		a := randMat(&rng, m*k)
		b := randMat(&rng, n*k)
		c1 := randMat(&rng, m*n)
		c2 := append([]float64(nil), c1...)
		GemmNT(m, n, k, a, k, b, k, c1, n)
		RefGemmNT(m, n, k, a, k, b, k, c2, n)
		return maxDiff(c1, c2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
