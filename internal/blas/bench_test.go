package blas

import (
	"fmt"
	"testing"

	"xkaapi/internal/xrand"
)

// Kernel benchmarks at the two tile sizes of the paper's Fig. 2 (128, 224)
// plus the skyline block size of Fig. 7 (88). b.SetBytes reports effective
// bandwidth; the ns/op convert to GFlop/s as 2·n³/ns.

func benchGemm(b *testing.B, n int) {
	rng := xrand.New(uint64(n))
	a := randMat(&rng, n*n)
	bb := randMat(&rng, n*n)
	c := randMat(&rng, n*n)
	b.SetBytes(int64(3 * n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNT(n, n, n, a, n, bb, n, c, n)
	}
}

func BenchmarkGemmNT(b *testing.B) {
	for _, n := range []int{64, 88, 128, 224} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchGemm(b, n) })
	}
}

func BenchmarkSyrkLN(b *testing.B) {
	const n = 128
	rng := xrand.New(3)
	a := randMat(&rng, n*n)
	c := randMat(&rng, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyrkLN(n, n, a, n, c, n)
	}
}

func BenchmarkTrsmRLTN(b *testing.B) {
	const n = 128
	rng := xrand.New(4)
	l := randSPD(&rng, n, n)
	if err := PotrfLower(n, l, n); err != nil {
		b.Fatal(err)
	}
	bb := randMat(&rng, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrsmRLTN(n, n, l, n, bb, n)
	}
}

func BenchmarkPotrfLower(b *testing.B) {
	const n = 128
	rng := xrand.New(5)
	src := randSPD(&rng, n, n)
	work := make([]float64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		if err := PotrfLower(n, work, n); err != nil {
			b.Fatal(err)
		}
	}
}
