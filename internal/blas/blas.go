// Package blas implements the float64 kernel subset needed by the dense and
// sparse Cholesky factorizations of this module: gemm, syrk, trsm and potrf,
// in the exact variants the PLASMA tile algorithm uses (lower-triangular,
// right-looking). Matrices are row-major with an explicit leading dimension,
// so the same kernels run on full matrices, tiles, and padded skyline
// blocks.
//
// The optimized kernels are written for decent cache behaviour (row-by-row
// dot products over contiguous memory, 4-way unrolling) rather than peak
// FLOPs: the paper's Fig. 2 isolates scheduler behaviour over identical
// kernels, so only the relative cost of scheduling matters, not absolute
// GFlops. Each kernel has a naive reference twin used by the tests.
package blas

import (
	"errors"
	"math"
)

// ErrNotSPD is returned by PotrfLower when a non-positive pivot appears,
// i.e. the input is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("blas: matrix is not positive definite")

// GemmNT computes C -= A * Bᵀ, where A is m×k (lda), B is n×k (ldb) and C is
// m×n (ldc). This is the Schur-complement update of the tile Cholesky:
// C(m,n) -= A(m,k) · B(n,k)ᵀ.
func GemmNT(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ar := a[i*lda : i*lda+k]
		cr := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			br := b[j*ldb : j*ldb+k]
			var s0, s1, s2, s3 float64
			t := 0
			for ; t+4 <= k; t += 4 {
				s0 += ar[t] * br[t]
				s1 += ar[t+1] * br[t+1]
				s2 += ar[t+2] * br[t+2]
				s3 += ar[t+3] * br[t+3]
			}
			s := s0 + s1 + s2 + s3
			for ; t < k; t++ {
				s += ar[t] * br[t]
			}
			cr[j] -= s
		}
	}
}

// SyrkLN computes the lower triangle of C -= A * Aᵀ, where A is n×k (lda)
// and C is n×n (ldc). Only entries C[i][j] with j <= i are touched.
func SyrkLN(n, k int, a []float64, lda int, c []float64, ldc int) {
	for i := 0; i < n; i++ {
		ai := a[i*lda : i*lda+k]
		cr := c[i*ldc : i*ldc+i+1]
		for j := 0; j <= i; j++ {
			aj := a[j*lda : j*lda+k]
			var s float64
			for t := 0; t < k; t++ {
				s += ai[t] * aj[t]
			}
			cr[j] -= s
		}
	}
}

// TrsmRLTN solves X · Lᵀ = B in place (B := B · L⁻ᵀ), where L is an n×n
// (ldl) lower-triangular non-unit matrix and B is m×n (ldb). This is the
// panel solve applied to every tile below a factored diagonal tile.
func TrsmRLTN(m, n int, l []float64, ldl int, b []float64, ldb int) {
	for i := 0; i < m; i++ {
		br := b[i*ldb : i*ldb+n]
		for j := 0; j < n; j++ {
			lr := l[j*ldl : j*ldl+j]
			s := br[j]
			for t := 0; t < j; t++ {
				s -= br[t] * lr[t]
			}
			br[j] = s / l[j*ldl+j]
		}
	}
}

// PotrfLower factors the n×n (lda) matrix in place as A = L·Lᵀ, storing L in
// the lower triangle. The strict upper triangle is left untouched.
func PotrfLower(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		d := a[j*lda+j]
		jr := a[j*lda : j*lda+j]
		for t := 0; t < j; t++ {
			d -= jr[t] * jr[t]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		d = math.Sqrt(d)
		a[j*lda+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			ir := a[i*lda : i*lda+j]
			s := a[i*lda+j]
			for t := 0; t < j; t++ {
				s -= ir[t] * jr[t]
			}
			a[i*lda+j] = s * inv
		}
	}
	return nil
}

// TrsvLowerNoTrans solves L·x = b in place (b := L⁻¹·b) for the n×n (lda)
// lower-triangular non-unit matrix L. Used by the skyline solver.
func TrsvLowerNoTrans(n int, l []float64, lda int, b []float64) {
	for i := 0; i < n; i++ {
		s := b[i]
		lr := l[i*lda : i*lda+i]
		for t := 0; t < i; t++ {
			s -= lr[t] * b[t]
		}
		b[i] = s / l[i*lda+i]
	}
}

// TrsvLowerTrans solves Lᵀ·x = b in place (b := L⁻ᵀ·b).
func TrsvLowerTrans(n int, l []float64, lda int, b []float64) {
	for i := n - 1; i >= 0; i-- {
		s := b[i] / l[i*lda+i]
		b[i] = s
		for t := 0; t < i; t++ {
			b[t] -= l[i*lda+t] * s
		}
	}
}

// GemvSub computes y -= A · x for the m×n (lda) matrix A.
func GemvSub(m, n int, a []float64, lda int, x, y []float64) {
	for i := 0; i < m; i++ {
		ar := a[i*lda : i*lda+n]
		var s float64
		for j := 0; j < n; j++ {
			s += ar[j] * x[j]
		}
		y[i] -= s
	}
}

// GemvTransSub computes y -= Aᵀ · x for the m×n (lda) matrix A
// (so y has length n and x length m).
func GemvTransSub(m, n int, a []float64, lda int, x, y []float64) {
	for i := 0; i < m; i++ {
		ar := a[i*lda : i*lda+n]
		xi := x[i]
		for j := 0; j < n; j++ {
			y[j] -= ar[j] * xi
		}
	}
}
