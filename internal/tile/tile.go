// Package tile provides dense symmetric matrices in the tile layout PLASMA
// uses: the matrix is cut into NB×NB tiles, each stored contiguously, so one
// task touches one (or a few) contiguous memory blocks. Ragged right/bottom
// edges are supported, so any matrix order works with any tile size (the
// paper's Fig. 2 uses N up to a few thousands with NB 128 and 224).
package tile

import (
	"math"

	"xkaapi/internal/xrand"
)

// Dense is a row-major n×n matrix.
type Dense struct {
	N int
	A []float64
}

// NewDense allocates a zero n×n matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, A: make([]float64, n*n)}
}

// At returns A[i][j].
func (d *Dense) At(i, j int) float64 { return d.A[i*d.N+j] }

// Set assigns A[i][j].
func (d *Dense) Set(i, j int, v float64) { d.A[i*d.N+j] = v }

// NewSPD builds a deterministic pseudo-random symmetric positive definite
// matrix: symmetric entries in [-1, 1] with the diagonal shifted by n,
// which makes it strictly diagonally dominant and hence SPD.
func NewSPD(n int, seed uint64) *Dense {
	d := NewDense(n)
	rng := xrand.New(seed | 1)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := float64(rng.Next()%2000)/1000 - 1
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
		d.Set(i, i, d.At(i, i)+float64(n))
	}
	return d
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.N)
	copy(c.A, d.A)
	return c
}

// Tiled is a symmetric matrix in tile layout. Only the lower triangle of
// tiles is allocated (tile (i,j) with j <= i); the strict upper tiles are
// nil. Each tile is stored row-major with leading dimension NB; edge tiles
// use the top-left Rows(i)×Rows(j) sub-block.
type Tiled struct {
	N  int // matrix order
	NB int // tile size
	NT int // number of tile rows/columns: ceil(N/NB)
	T  [][]float64
}

// NewTiled allocates a zero tiled matrix of order n with tile size nb.
func NewTiled(n, nb int) *Tiled {
	nt := (n + nb - 1) / nb
	t := &Tiled{N: n, NB: nb, NT: nt, T: make([][]float64, nt*nt)}
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			t.T[i*nt+j] = make([]float64, nb*nb)
		}
	}
	return t
}

// Rows returns the live dimension of tile row/column i.
func (t *Tiled) Rows(i int) int {
	if i == t.NT-1 {
		return t.N - i*t.NB
	}
	return t.NB
}

// Tile returns tile (i,j), j <= i.
func (t *Tiled) Tile(i, j int) []float64 { return t.T[i*t.NT+j] }

// FromDense packs the lower triangle (incl. diagonal) of d into tiles.
func FromDense(d *Dense, nb int) *Tiled {
	t := NewTiled(d.N, nb)
	for bi := 0; bi < t.NT; bi++ {
		for bj := 0; bj <= bi; bj++ {
			tb := t.Tile(bi, bj)
			for i := 0; i < t.Rows(bi); i++ {
				gi := bi*nb + i
				for j := 0; j < t.Rows(bj); j++ {
					gj := bj*nb + j
					if gj <= gi {
						tb[i*nb+j] = d.At(gi, gj)
					}
				}
			}
		}
	}
	return t
}

// ToDense unpacks the lower triangle into a dense matrix (upper left zero).
func (t *Tiled) ToDense() *Dense {
	d := NewDense(t.N)
	for bi := 0; bi < t.NT; bi++ {
		for bj := 0; bj <= bi; bj++ {
			tb := t.Tile(bi, bj)
			for i := 0; i < t.Rows(bi); i++ {
				gi := bi*t.NB + i
				for j := 0; j < t.Rows(bj); j++ {
					gj := bj*t.NB + j
					if gj <= gi {
						d.Set(gi, gj, tb[i*t.NB+j])
					}
				}
			}
		}
	}
	return d
}

// Clone deep-copies the tiled matrix.
func (t *Tiled) Clone() *Tiled {
	c := NewTiled(t.N, t.NB)
	for i, tb := range t.T {
		if tb != nil {
			copy(c.T[i], tb)
		}
	}
	return c
}

// CholeskyResidual measures ‖A − L·Lᵀ‖_F / ‖A‖_F, where orig holds A and
// fact holds the factor L in its lower triangle (tile layout). It is O(n³)
// and meant for test-sized matrices.
func CholeskyResidual(orig *Dense, fact *Tiled) float64 {
	n := orig.N
	l := fact.ToDense()
	var num, den float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			m := j
			if i < j {
				m = i
			}
			for k := 0; k <= m; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			r := orig.At(i, j) - s
			num += r * r
			a := orig.At(i, j)
			den += a * a
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
