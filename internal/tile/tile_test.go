package tile

import (
	"math"
	"testing"

	"xkaapi/internal/blas"
)

func TestNewSPDIsSymmetricDominant(t *testing.T) {
	d := NewSPD(30, 42)
	for i := 0; i < d.N; i++ {
		var off float64
		for j := 0; j < d.N; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
			if j != i {
				off += math.Abs(d.At(i, j))
			}
		}
		if d.At(i, i) <= off {
			t.Fatalf("row %d not diagonally dominant: %g <= %g", i, d.At(i, i), off)
		}
	}
}

func TestFromToDenseRoundTrip(t *testing.T) {
	for _, cfg := range [][2]int{{16, 4}, {17, 4}, {30, 8}, {5, 8}, {33, 32}} {
		n, nb := cfg[0], cfg[1]
		d := NewSPD(n, 7)
		tl := FromDense(d, nb)
		back := tl.ToDense()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if back.At(i, j) != d.At(i, j) {
					t.Fatalf("n=%d nb=%d: round trip differs at (%d,%d)", n, nb, i, j)
				}
			}
		}
	}
}

func TestRowsRaggedEdge(t *testing.T) {
	tl := NewTiled(10, 4)
	if tl.NT != 3 {
		t.Fatalf("NT=%d want 3", tl.NT)
	}
	if tl.Rows(0) != 4 || tl.Rows(1) != 4 || tl.Rows(2) != 2 {
		t.Fatalf("Rows = %d,%d,%d", tl.Rows(0), tl.Rows(1), tl.Rows(2))
	}
}

func TestUpperTilesNil(t *testing.T) {
	tl := NewTiled(16, 4)
	for i := 0; i < tl.NT; i++ {
		for j := 0; j < tl.NT; j++ {
			got := tl.T[i*tl.NT+j] != nil
			want := j <= i
			if got != want {
				t.Fatalf("tile (%d,%d) allocated=%v", i, j, got)
			}
		}
	}
}

func TestCholeskyResidualZeroForExactFactor(t *testing.T) {
	n, nb := 24, 8
	d := NewSPD(n, 3)
	tl := FromDense(d, nb)
	// Factor densely with the reference kernel, then repack.
	a := d.Clone()
	if err := blas.RefPotrfLower(n, a.A, n); err != nil {
		t.Fatal(err)
	}
	lt := FromDense(a, nb)
	if r := CholeskyResidual(d, lt); r > 1e-12 {
		t.Fatalf("residual %g for exact factor", r)
	}
	// And a corrupted factor must show a large residual.
	lt.Tile(1, 0)[0] += 10
	if r := CholeskyResidual(d, lt); r < 1e-6 {
		t.Fatalf("residual %g for corrupted factor", r)
	}
	_ = tl
}

func TestCloneIndependence(t *testing.T) {
	d := NewSPD(12, 5)
	tl := FromDense(d, 4)
	c := tl.Clone()
	c.Tile(0, 0)[0] = 999
	if tl.Tile(0, 0)[0] == 999 {
		t.Fatal("clone shares storage")
	}
	dc := d.Clone()
	dc.Set(0, 0, -1)
	if d.At(0, 0) == -1 {
		t.Fatal("dense clone shares storage")
	}
}
