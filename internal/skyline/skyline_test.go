package skyline

import (
	"math"
	"testing"
	"testing/quick"

	"xkaapi"
	"xkaapi/gomp"
	"xkaapi/internal/blas"
	"xkaapi/internal/xrand"
)

func bandEnvelope(n, band int) []int {
	rs := make([]int, n)
	for i := range rs {
		if s := i - band; s > 0 {
			rs[i] = s
		}
	}
	return rs
}

func TestEnvelopeValidation(t *testing.T) {
	if _, err := NewFromEnvelope(nil, 4); err == nil {
		t.Fatal("empty envelope accepted")
	}
	if _, err := NewFromEnvelope([]int{0, 2}, 4); err == nil {
		t.Fatal("rowStart[i] > i accepted")
	}
	if _, err := NewFromEnvelope([]int{0, -1}, 4); err == nil {
		t.Fatal("negative rowStart accepted")
	}
	if _, err := NewFromEnvelope([]int{0, 0}, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestBlockStructureCoversEnvelope(t *testing.T) {
	rs := GenEnvelope(300, 0.05, 3)
	m, err := NewFromEnvelope(rs, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N; i++ {
		for j := rs[i]; j <= i; j++ {
			if m.IsEmpty(i/m.BS, j/m.BS) {
				t.Fatalf("envelope entry (%d,%d) falls in an empty block", i, j)
			}
		}
	}
}

// Envelope closure: if (i,k) and (j,k) are present with k <= j <= i, then
// (i,j) must be present — otherwise the blocked factorization would drop
// fill. This is the property the factorization loops rely on.
func TestBlockStructureClosedUnderFactorization(t *testing.T) {
	rs := GenEnvelope(400, 0.08, 9)
	m, err := NewFromEnvelope(rs, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NB; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				if !m.IsEmpty(i, k) && !m.IsEmpty(j, k) && m.IsEmpty(i, j) {
					t.Fatalf("closure violated: (%d,%d),(%d,%d) present, (%d,%d) empty",
						i, k, j, k, i, j)
				}
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m, err := NewFromEnvelope(bandEnvelope(40, 5), 8)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(10, 7, 3.5)
	if m.At(10, 7) != 3.5 || m.At(7, 10) != 3.5 {
		t.Fatal("Set/At mismatch (symmetric access)")
	}
	if m.At(30, 0) != 0 {
		t.Fatal("outside-envelope At must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set outside envelope did not panic")
		}
	}()
	m.Set(30, 0, 1)
}

func TestNNZAndFill(t *testing.T) {
	n := 100
	m, err := NewFromEnvelope(bandEnvelope(n, 0), 8) // diagonal only
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != n {
		t.Fatalf("NNZ=%d want %d", m.NNZ(), n)
	}
	full := bandEnvelope(n, n) // full lower triangle
	mf, _ := NewFromEnvelope(full, 8)
	if got := mf.Fill(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full fill=%g want 1", got)
	}
}

func TestGenEnvelopeHitsTargetFill(t *testing.T) {
	for _, fill := range []float64{0.02, 0.05, 0.10} {
		rs := GenEnvelope(1000, fill, 7)
		m, err := NewFromEnvelope(rs, 32)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Fill()
		if got < fill*0.9 || got > fill*1.6 {
			t.Fatalf("target fill %g: got %g", fill, got)
		}
	}
}

// factorAndCheck verifies L·Lᵀ == A on the envelope by comparing against a
// dense reference factorization.
func checkAgainstDense(t *testing.T, orig, fact *Matrix) {
	t.Helper()
	n := orig.N
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			a[i*n+j] = orig.At(i, j)
			a[j*n+i] = orig.At(i, j)
		}
	}
	if err := blas.RefPotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			want := a[i*n+j]
			got := fact.At(i, j)
			if math.Abs(want-got) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("factor differs at (%d,%d): got %g want %g", i, j, got, want)
			}
		}
	}
}

func TestFactorSeqMatchesDense(t *testing.T) {
	for _, cfg := range []struct {
		n, bs int
		fill  float64
	}{{60, 8, 0.2}, {100, 16, 0.08}, {37, 8, 0.3}} {
		rs := GenEnvelope(cfg.n, cfg.fill, 5)
		m, err := NewSPD(rs, cfg.bs, 11)
		if err != nil {
			t.Fatal(err)
		}
		orig := m.Clone()
		if err := FactorSeq(m); err != nil {
			t.Fatal(err)
		}
		checkAgainstDense(t, orig, m)
	}
}

func TestFactorKaapiMatchesSeq(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	rs := GenEnvelope(200, 0.10, 21)
	m1, err := NewSPD(rs, 16, 13)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Clone()
	if err := FactorSeq(m1); err != nil {
		t.Fatal(err)
	}
	if err := FactorKaapi(rt, m2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m1.N; i++ {
		for j := rs[i]; j <= i; j++ {
			if m1.At(i, j) != m2.At(i, j) {
				t.Fatalf("kaapi factor differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestFactorGompMatchesSeq(t *testing.T) {
	team := gomp.NewTeam(4)
	defer team.Close()
	rs := GenEnvelope(200, 0.10, 22)
	m1, err := NewSPD(rs, 16, 14)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Clone()
	if err := FactorSeq(m1); err != nil {
		t.Fatal(err)
	}
	if err := FactorGomp(team, m2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m1.N; i++ {
		for j := rs[i]; j <= i; j++ {
			if m1.At(i, j) != m2.At(i, j) {
				t.Fatalf("gomp factor differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestFactorRejectsIndefinite(t *testing.T) {
	rs := bandEnvelope(32, 4)
	m, err := NewFromEnvelope(rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		m.Set(i, i, -5)
	}
	if err := FactorSeq(m); err == nil {
		t.Fatal("FactorSeq accepted an indefinite matrix")
	}
}

func TestSolveRecoversSolution(t *testing.T) {
	rs := GenEnvelope(150, 0.12, 31)
	m, err := NewSPD(rs, 16, 17)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Clone()
	// b = A·x0 for a known x0.
	x0 := make([]float64, m.N)
	rng := xrand.New(99)
	for i := range x0 {
		x0[i] = float64(rng.Next()%1000)/500 - 1
	}
	b := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		var s float64
		for j := 0; j < m.N; j++ {
			s += orig.At(i, j) * x0[j]
		}
		b[i] = s
	}
	if err := FactorSeq(m); err != nil {
		t.Fatal(err)
	}
	m.SolveInPlace(b)
	for i := range x0 {
		if math.Abs(b[i]-x0[i]) > 1e-7 {
			t.Fatalf("solution differs at %d: %g vs %g", i, b[i], x0[i])
		}
	}
}

func TestFillSPDRefillsInPlace(t *testing.T) {
	rs := GenEnvelope(80, 0.15, 41)
	m, err := NewSPD(rs, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := FactorSeq(m); err != nil {
		t.Fatal(err)
	}
	m.FillSPD(2) // refresh values, same envelope
	if err := FactorSeq(m); err != nil {
		t.Fatalf("refilled matrix failed to factor: %v", err)
	}
}

// Property: random band envelopes factor correctly (seq) for random sizes.
func TestFactorQuickBandMatrices(t *testing.T) {
	f := func(nu, bu, bsu uint8) bool {
		n := int(nu)%60 + 2
		band := int(bu) % n
		bs := int(bsu)%12 + 1
		m, err := NewSPD(bandEnvelope(n, band), bs, uint64(nu)+1)
		if err != nil {
			return false
		}
		orig := m.Clone()
		if err := FactorSeq(m); err != nil {
			return false
		}
		// Spot-check reconstruction on the envelope diagonal.
		for i := 0; i < n; i++ {
			var s float64
			for k := orig.RowStart(i); k <= i; k++ {
				s += m.At(i, k) * m.At(i, k)
			}
			if math.Abs(s-orig.At(i, i)) > 1e-7*(1+math.Abs(orig.At(i, i))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockCount(t *testing.T) {
	m, err := NewFromEnvelope(bandEnvelope(64, 0), 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockCount() != 4 {
		t.Fatalf("diagonal envelope: %d blocks want 4", m.BlockCount())
	}
}
