// Package skyline implements symmetric sparse matrices in skyline (profile /
// envelope) storage and their blocked LLᵀ Cholesky factorization — the
// CHOLESKY kernel of EUROPLEXUS that the paper parallelizes in §IV-B: the H
// matrix obtained by condensing the dynamic equilibrium equations onto the
// Lagrange multipliers is stored as a skyline and factored at every time
// step.
//
// The matrix is partitioned into BS×BS blocks; a block (I,J) is present
// exactly when the envelope reaches it (is_empty in the paper's pseudo-code,
// Fig. 7). Because the envelope of the Cholesky factor equals the envelope
// of the matrix — profile storage admits no fill outside the skyline — the
// block structure is closed under factorization, and the blocked algorithm
// visits present blocks only:
//
//	for k { potrf(k); for m { trsm(k,m) }; for m { syrk(k,m); for n { gemm(k,m,n) } } }
//
// Three execution strategies mirror the paper's comparison: FactorSeq,
// FactorKaapi (dataflow tasks, one handle per block, no barriers) and
// FactorGomp (OpenMP-style: sequential potrf, a taskwait barrier after the
// trsm loop and another after the syrk/gemm loop — the extra synchronization
// the paper blames for OpenMP's lower speedup).
package skyline

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"xkaapi"
	"xkaapi/gomp"
	"xkaapi/internal/blas"
	"xkaapi/internal/xrand"
)

// Matrix is a symmetric matrix of order N in blocked skyline storage: only
// the lower triangle within the envelope is stored, as dense BS×BS blocks
// (edge blocks are zero-padded to BS but computed at their live size).
type Matrix struct {
	N  int // order
	BS int // block size
	NB int // number of block rows, ceil(N/BS)

	rowStart []int       // envelope: first stored column of each row
	blocks   [][]float64 // blocks[I*NB+J], nil when empty
}

// NewFromEnvelope allocates a zero matrix with the given envelope
// (rowStart[i] is the first nonzero column of row i; rowStart[i] <= i) and
// block size bs. Block (I,J), J < I, is allocated when some row of block
// row I starts at or before the last column of block column J; diagonal
// blocks always exist.
func NewFromEnvelope(rowStart []int, bs int) (*Matrix, error) {
	n := len(rowStart)
	if n == 0 {
		return nil, errors.New("skyline: empty envelope")
	}
	if bs < 1 {
		return nil, errors.New("skyline: block size must be positive")
	}
	for i, s := range rowStart {
		if s < 0 || s > i {
			return nil, fmt.Errorf("skyline: rowStart[%d]=%d out of range [0,%d]", i, s, i)
		}
	}
	nb := (n + bs - 1) / bs
	m := &Matrix{N: n, BS: bs, NB: nb,
		rowStart: append([]int(nil), rowStart...),
		blocks:   make([][]float64, nb*nb)}
	for bi := 0; bi < nb; bi++ {
		minStart := n
		for r := bi * bs; r < min((bi+1)*bs, n); r++ {
			if rowStart[r] < minStart {
				minStart = rowStart[r]
			}
		}
		firstBlk := minStart / bs
		for bj := firstBlk; bj <= bi; bj++ {
			m.blocks[bi*nb+bj] = make([]float64, bs*bs)
		}
	}
	return m, nil
}

// Rows returns the live dimension of block row I.
func (m *Matrix) Rows(i int) int {
	if i == m.NB-1 {
		return m.N - i*m.BS
	}
	return m.BS
}

// IsEmpty reports whether block (I,J) is absent from the envelope — the
// is_empty test of the paper's Fig. 7 pseudo-code.
func (m *Matrix) IsEmpty(i, j int) bool { return m.blocks[i*m.NB+j] == nil }

// Block returns block (I,J) or nil.
func (m *Matrix) Block(i, j int) []float64 { return m.blocks[i*m.NB+j] }

// RowStart returns the envelope column of row i.
func (m *Matrix) RowStart(i int) int { return m.rowStart[i] }

// InEnvelope reports whether entry (i,j), j <= i, lies inside the stored
// profile.
func (m *Matrix) InEnvelope(i, j int) bool {
	return j <= i && j >= m.rowStart[i]
}

// At returns entry (i,j) of the lower triangle (0 outside the envelope).
func (m *Matrix) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	b := m.blocks[(i/m.BS)*m.NB+j/m.BS]
	if b == nil {
		return 0
	}
	return b[(i%m.BS)*m.BS+j%m.BS]
}

// Set assigns entry (i,j); it panics if (i,j) is outside the envelope,
// which would silently break symmetry of the implied full matrix.
func (m *Matrix) Set(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	if !m.InEnvelope(i, j) {
		panic(fmt.Sprintf("skyline: Set(%d,%d) outside envelope", i, j))
	}
	m.blocks[(i/m.BS)*m.NB+j/m.BS][(i%m.BS)*m.BS+j%m.BS] = v
}

// NNZ returns the number of entries inside the envelope (lower triangle).
func (m *Matrix) NNZ() int {
	nnz := 0
	for i := 0; i < m.N; i++ {
		nnz += i - m.rowStart[i] + 1
	}
	return nnz
}

// Fill returns the envelope density relative to the full lower triangle of
// the matrix, comparable to the paper's "3.59% of non zero elements".
func (m *Matrix) Fill() float64 {
	full := float64(m.N) * float64(m.N+1) / 2
	return float64(m.NNZ()) / full
}

// BlockCount returns the number of present blocks.
func (m *Matrix) BlockCount() int {
	c := 0
	for _, b := range m.blocks {
		if b != nil {
			c++
		}
	}
	return c
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{N: m.N, BS: m.BS, NB: m.NB,
		rowStart: append([]int(nil), m.rowStart...),
		blocks:   make([][]float64, len(m.blocks))}
	for i, b := range m.blocks {
		if b != nil {
			c.blocks[i] = append([]float64(nil), b...)
		}
	}
	return c
}

// GenEnvelope builds a synthetic envelope of order n whose shape follows the
// H matrices EPX condenses: a narrow base band (local couplings) plus
// clustered long-range connections (contact constraints), tuned by
// targetFill (fraction of the lower triangle inside the envelope). The
// result is deterministic in seed.
func GenEnvelope(n int, targetFill float64, seed uint64) []int {
	rng := xrand.New(seed | 1)
	rowStart := make([]int, n)
	// Base band sized to contribute roughly half the target fill
	// (a band of width b covers ~2b/n of the lower triangle).
	base := int(targetFill*float64(n)/4) + 1
	for i := range rowStart {
		s := i - base
		if s < 0 {
			s = 0
		}
		rowStart[i] = s
	}
	nnz := 0
	for i := range rowStart {
		nnz += i - rowStart[i] + 1
	}
	// Grow clustered long-range reaches while a comfortable budget remains.
	// The random phase must stop early: once the remaining budget forces
	// reaches shorter than the base band, no random cluster can extend any
	// row and the loop would spin forever.
	want := int(targetFill * float64(n) * float64(n+1) / 2)
	margin := 32*(base+1) + 256
	for nnz+margin < want {
		i := 1 + rng.Intn(n-1)
		cluster := 1 + rng.Intn(min(16, n-i))
		maxReach := (want - nnz) / cluster
		if maxReach > i {
			maxReach = i
		}
		if maxReach < 1 {
			break
		}
		reach := 1 + rng.Intn(maxReach)
		s := i - reach
		if s < 0 {
			s = 0
		}
		for c := 0; c < cluster && i+c < n; c++ {
			r := i + c
			if s < rowStart[r] {
				nnz += rowStart[r] - s
				rowStart[r] = s
			}
		}
	}
	// Deterministic tail: widen rows one column at a time until the target
	// is met exactly (or the envelope is full).
	for nnz < want {
		progressed := false
		for r := 1; r < n && nnz < want; r++ {
			if rowStart[r] > 0 {
				rowStart[r]--
				nnz++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return rowStart
}

// NewSPD builds an SPD matrix on the given envelope: symmetric
// pseudo-random off-diagonal entries with a strictly dominant diagonal.
func NewSPD(rowStart []int, bs int, seed uint64) (*Matrix, error) {
	m, err := NewFromEnvelope(rowStart, bs)
	if err != nil {
		return nil, err
	}
	m.FillSPD(seed)
	return m, nil
}

// FillSPD (re)fills the matrix values in place, keeping the envelope: the
// EPX surrogate uses it to refresh H each time step without reallocating.
func (m *Matrix) FillSPD(seed uint64) {
	rng := xrand.New(seed | 1)
	rowSum := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for j := m.rowStart[i]; j < i; j++ {
			v := float64(rng.Next()%2000)/1000 - 1
			m.Set(i, j, v)
			rowSum[i] += math.Abs(v)
			rowSum[j] += math.Abs(v)
		}
	}
	for i := 0; i < m.N; i++ {
		m.Set(i, i, rowSum[i]+1)
	}
}

// factorStep runs one right-looking elimination step k with the given
// executors for the three phases; the sequential, kaapi and gomp variants
// share this skeleton so they perform identical arithmetic.
//
// The four kernel calls below are the paper's potrf/trsm/syrk/gemm on the
// skyline (Fig. 7), with the is_empty guards.

// Kernels on blocks.

func (m *Matrix) potrf(k int) error {
	return blas.PotrfLower(m.Rows(k), m.Block(k, k), m.BS)
}

func (m *Matrix) trsm(k, i int) {
	blas.TrsmRLTN(m.Rows(i), m.Rows(k), m.Block(k, k), m.BS, m.Block(i, k), m.BS)
}

func (m *Matrix) syrk(k, i int) {
	blas.SyrkLN(m.Rows(i), m.Rows(k), m.Block(i, k), m.BS, m.Block(i, i), m.BS)
}

func (m *Matrix) gemm(k, i, j int) {
	blas.GemmNT(m.Rows(i), m.Rows(j), m.Rows(k),
		m.Block(i, k), m.BS, m.Block(j, k), m.BS, m.Block(i, j), m.BS)
}

// FactorSeq factors m in place (L replaces the lower triangle).
func FactorSeq(m *Matrix) error {
	nb := m.NB
	for k := 0; k < nb; k++ {
		if err := m.potrf(k); err != nil {
			return err
		}
		for i := k + 1; i < nb; i++ {
			if m.IsEmpty(i, k) {
				continue
			}
			m.trsm(k, i)
		}
		for i := k + 1; i < nb; i++ {
			if m.IsEmpty(i, k) {
				continue
			}
			m.syrk(k, i)
			for j := k + 1; j < i; j++ {
				if m.IsEmpty(j, k) || m.IsEmpty(i, j) {
					continue
				}
				m.gemm(k, i, j)
			}
		}
	}
	return nil
}

// FactorKaapi factors m in place with X-Kaapi dataflow tasks: every present
// block gets a Handle, every kernel call of the paper's pseudo-code becomes
// a task whose access modes encode its block reads/writes, and no explicit
// synchronization exists — "the parallel data flow version only specifies
// tasks with access modes" (§IV-B).
func FactorKaapi(rt *xkaapi.Runtime, m *Matrix) error {
	nb := m.NB
	handles := make([]xkaapi.Handle, nb*nb)
	h := func(i, j int) *xkaapi.Handle { return &handles[i*nb+j] }
	var errOnce sync.Once
	var ferr error
	fail := func(err error) {
		if err != nil {
			errOnce.Do(func() { ferr = err })
		}
	}
	fail(rt.Run(func(p *xkaapi.Proc) {
		for k := 0; k < nb; k++ {
			k := k
			p.SpawnTask(func(*xkaapi.Proc) {
				fail(m.potrf(k))
			}, xkaapi.ReadWrite(h(k, k)))
			for i := k + 1; i < nb; i++ {
				if m.IsEmpty(i, k) {
					continue
				}
				i := i
				p.SpawnTask(func(*xkaapi.Proc) { m.trsm(k, i) },
					xkaapi.Read(h(k, k)), xkaapi.ReadWrite(h(i, k)))
			}
			for i := k + 1; i < nb; i++ {
				if m.IsEmpty(i, k) {
					continue
				}
				i := i
				p.SpawnTask(func(*xkaapi.Proc) { m.syrk(k, i) },
					xkaapi.Read(h(i, k)), xkaapi.ReadWrite(h(i, i)))
				for j := k + 1; j < i; j++ {
					if m.IsEmpty(j, k) || m.IsEmpty(i, j) {
						continue
					}
					j := j
					p.SpawnTask(func(*xkaapi.Proc) { m.gemm(k, i, j) },
						xkaapi.Read(h(i, k)), xkaapi.Read(h(j, k)), xkaapi.ReadWrite(h(i, j)))
				}
			}
		}
		p.Sync()
	}))
	return ferr
}

// FactorGomp factors m in place the way the paper parallelizes EPX's
// sparse Cholesky with OpenMP (§IV-B): potrf stays on the master thread
// ("only calls at line 7, 12 and 17 create tasks"), the trsm loop is a batch
// of tasks closed by a taskwait, and the syrk/gemm loop is another batch
// closed by a second taskwait. The two barriers per elimination step
// serialize independent steps and bound the speedup, which is the point of
// the Fig. 7 comparison.
func FactorGomp(team *gomp.Team, m *Matrix) error {
	nb := m.NB
	var ferr error
	regionErr := team.Parallel(func(tc *gomp.TC) {
		tc.Single(func() {
			for k := 0; k < nb; k++ {
				if err := m.potrf(k); err != nil {
					ferr = err
					return
				}
				for i := k + 1; i < nb; i++ {
					if m.IsEmpty(i, k) {
						continue
					}
					i := i
					tc.Task(func(*gomp.TC) { m.trsm(k, i) })
				}
				tc.Taskwait()
				for i := k + 1; i < nb; i++ {
					if m.IsEmpty(i, k) {
						continue
					}
					i := i
					tc.Task(func(*gomp.TC) { m.syrk(k, i) })
					for j := k + 1; j < i; j++ {
						if m.IsEmpty(j, k) || m.IsEmpty(i, j) {
							continue
						}
						j := j
						tc.Task(func(*gomp.TC) { m.gemm(k, i, j) })
					}
				}
				tc.Taskwait()
			}
		})
	})
	if ferr != nil {
		return ferr
	}
	return regionErr
}

// SolveInPlace solves L·Lᵀ·x = b given the factored matrix, overwriting b
// with x. Block forward substitution, then block backward substitution.
func (m *Matrix) SolveInPlace(b []float64) {
	nb, bs := m.NB, m.BS
	for i := 0; i < nb; i++ {
		bi := b[i*bs : i*bs+m.Rows(i)]
		for j := 0; j < i; j++ {
			if m.IsEmpty(i, j) {
				continue
			}
			blas.GemvSub(m.Rows(i), m.Rows(j), m.Block(i, j), bs, b[j*bs:j*bs+m.Rows(j)], bi)
		}
		blas.TrsvLowerNoTrans(m.Rows(i), m.Block(i, i), bs, bi)
	}
	for i := nb - 1; i >= 0; i-- {
		bi := b[i*bs : i*bs+m.Rows(i)]
		for j := i + 1; j < nb; j++ {
			if m.IsEmpty(j, i) {
				continue
			}
			// x_i -= L(j,i)ᵀ · x_j
			blas.GemvTransSub(m.Rows(j), m.Rows(i), m.Block(j, i), bs, b[j*bs:j*bs+m.Rows(j)], bi)
		}
		blas.TrsvLowerTrans(m.Rows(i), m.Block(i, i), bs, bi)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
