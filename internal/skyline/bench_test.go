package skyline

import "testing"

func benchMatrix(b *testing.B) *Matrix {
	b.Helper()
	env := GenEnvelope(1024, 0.0359, 59462)
	m, err := NewSPD(env, 88, 7)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkFactorSeq(b *testing.B) {
	src := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := src.Clone()
		b.StartTimer()
		if err := FactorSeq(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	src := benchMatrix(b)
	m := src.Clone()
	if err := FactorSeq(m); err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, m.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rhs {
			rhs[j] = 1
		}
		m.SolveInPlace(rhs)
	}
}

func BenchmarkFillSPD(b *testing.B) {
	src := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.FillSPD(uint64(i))
	}
}

func BenchmarkGenEnvelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenEnvelope(4096, 0.0359, uint64(i)+1)
	}
}
