// Package latency is a lock-free HDR-style latency histogram: fixed
// power-of-two buckets refined by linear sub-buckets, atomic counts, and
// mergeable snapshots. One Histogram costs a few KB and Record is a single
// atomic add, so the server keeps one per (endpoint, phase) — end-to-end
// and queue-wait — and /stats summarizes them as p50/p90/p99 without ever
// locking a request path.
//
// Bucketing: values below 2^subBits nanoseconds get exact unit buckets;
// above that, each power-of-two range [2^e, 2^(e+1)) is split into
// 2^subBits equal sub-buckets, bounding the relative quantile error at
// 1/2^subBits (12.5% with subBits = 3) across the full int64 range — the
// scheme of HdrHistogram, sized for durations.
// Record runs on every request completion, so xkvet's hotpath analyzer
// keeps this file lock-free (atomics only: no mutexes, channels, sleeps
// or fmt).
//
//xk:hotpath
package latency

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is the sub-bucket resolution: 2^subBits linear sub-buckets
	// per power-of-two range, i.e. ≤ 12.5% relative error on quantiles.
	subBits  = 3
	subCount = 1 << subBits

	// numBuckets covers every non-negative int64 nanosecond value:
	// subCount exact unit buckets, then (63 - subBits) refined ranges.
	numBuckets = (64 - subBits) * subCount
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // 2^exp <= v < 2^(exp+1), exp >= subBits
	return (exp-subBits+1)*subCount + int(v>>(exp-subBits)) - subCount
}

// bucketUpper returns the largest value mapping to bucket i, the
// conservative (never under-reporting) representative quantiles use.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	exp := i/subCount + subBits - 1
	sub := i % subCount
	width := int64(1) << (exp - subBits)
	low := int64(subCount+sub) << (exp - subBits)
	return low + width - 1
}

// Histogram records durations. The zero value is ready to use; all methods
// are safe for concurrent use. Counts only grow (there is no reset), so
// concurrent snapshots are monotone.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Int64 // total nanoseconds, for the mean
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(uint64(ns))].Add(1)
	h.sum.Add(ns)
}

// Snapshot copies the current counts. The copy is not atomic across
// buckets: values recorded concurrently may or may not be included, which
// is the usual monotone-lower-bound contract for live stats.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{Sum: h.sum.Load()}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	return s
}

// Snapshot is one histogram's counts, detached from the atomics: plain
// values, so it can be merged, quantiled and marshalled freely.
type Snapshot struct {
	Counts [numBuckets]uint64
	Total  uint64
	Sum    int64
}

// Merge folds o into s (bucket-wise addition), so per-shard or
// per-endpoint histograms aggregate into fleet views.
func (s *Snapshot) Merge(o *Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Total += o.Total
	s.Sum += o.Sum
}

// Sub returns the bucket-wise difference s - o: the observations recorded
// between two snapshots of one histogram. Counts only grow, so with o the
// earlier snapshot the difference is itself a valid snapshot — the windowed
// view a latency controller needs from cumulative histograms. Buckets are
// clamped at zero against the per-bucket skew of non-atomic snapshots.
func (s *Snapshot) Sub(o *Snapshot) *Snapshot {
	d := &Snapshot{}
	for i := range s.Counts {
		if c := s.Counts[i]; c > o.Counts[i] {
			d.Counts[i] = c - o.Counts[i]
			d.Total += d.Counts[i]
		}
	}
	if s.Sum > o.Sum {
		d.Sum = s.Sum - o.Sum
	}
	return d
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket holding the ceil(q*Total)-th observation. Zero when empty.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range s.Counts {
		seen += s.Counts[i]
		if seen >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(numBuckets - 1))
}

// Max returns the upper bound of the highest non-empty bucket.
func (s *Snapshot) Max() time.Duration {
	for i := numBuckets - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return time.Duration(bucketUpper(i))
		}
	}
	return 0
}

// Mean returns the exact arithmetic mean (Sum is exact, not bucketed).
func (s *Snapshot) Mean() time.Duration {
	if s.Total == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Total))
}

// Summary is the JSON shape /stats exposes per histogram: count, mean and
// the SLO quantiles, in nanoseconds.
type Summary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Summarize reduces the snapshot to its Summary.
func (s *Snapshot) Summarize() Summary {
	return Summary{
		Count:  int64(s.Total),
		MeanNS: s.Mean().Nanoseconds(),
		P50NS:  s.Quantile(0.50).Nanoseconds(),
		P90NS:  s.Quantile(0.90).Nanoseconds(),
		P99NS:  s.Quantile(0.99).Nanoseconds(),
		MaxNS:  s.Max().Nanoseconds(),
	}
}

// Summary is shorthand for Snapshot().Summarize().
func (h *Histogram) Summary() Summary { return h.Snapshot().Summarize() }
