package latency

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip checks every value maps into a bucket whose bounds
// contain it, with relative width <= 1/subCount.
func TestBucketRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 4095, 4096,
		1_000_000, 123_456_789, 1 << 40, (1 << 62) + 12345}
	for _, v := range vals {
		i := bucketOf(v)
		upper := uint64(bucketUpper(i))
		if v > upper {
			t.Errorf("bucketOf(%d)=%d but bucketUpper=%d < value", v, i, upper)
		}
		if i > 0 {
			below := uint64(bucketUpper(i - 1))
			if v <= below {
				t.Errorf("bucketOf(%d)=%d but previous bucket upper %d >= value", v, i, below)
			}
		}
		if v >= subCount {
			// Relative error bound: bucket width / lower bound <= 1/subCount.
			lower := uint64(bucketUpper(i-1)) + 1
			width := upper - lower + 1
			if width*subCount > lower {
				t.Errorf("bucket %d for %d: width %d exceeds %d%% of lower bound %d",
					i, v, width, 100/subCount, lower)
			}
		}
	}
	// Indices are monotone and in range across the whole span.
	last := -1
	for e := 0; e < 63; e++ {
		v := uint64(1) << e
		i := bucketOf(v)
		if i <= last || i >= numBuckets {
			t.Fatalf("bucketOf(1<<%d) = %d, not monotone in [0,%d)", e, i, numBuckets)
		}
		last = i
	}
}

// TestQuantiles records a known distribution and checks the quantiles land
// within the bucketing's 12.5% relative error.
func TestQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 microseconds, uniform: p50 ≈ 500µs, p99 ≈ 990µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Total != 1000 {
		t.Fatalf("Total = %d, want 1000", s.Total)
	}
	check := func(q float64, want time.Duration) {
		got := s.Quantile(q)
		if got < want || float64(got) > float64(want)*1.13 {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", q, got, want, time.Duration(float64(want)*1.13))
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.90, 900*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if max := s.Max(); max < time.Millisecond || max > time.Duration(1.13*float64(time.Millisecond)) {
		t.Errorf("Max = %v, want ~1ms", max)
	}
	if mean := s.Mean(); mean != 500500*time.Nanosecond/1 {
		// Sum is exact: mean of 1..1000µs is 500.5µs exactly.
		if mean != 500500*time.Microsecond/1000 {
			t.Errorf("Mean = %v, want 500.5µs", mean)
		}
	}
	sum := s.Summarize()
	if sum.Count != 1000 || sum.P50NS == 0 || sum.P99NS < sum.P50NS || sum.MaxNS < sum.P99NS {
		t.Errorf("Summary not ordered: %+v", sum)
	}
}

// TestEmptyAndNegative checks the zero histogram and negative durations.
func TestEmptyAndNegative(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty histogram must summarize to zeros")
	}
	h.Record(-time.Second) // clamps to 0
	if got := h.Snapshot().Max(); got != 0 {
		t.Errorf("negative duration recorded as %v, want 0", got)
	}
}

// TestMerge checks bucket-wise merge equals recording into one histogram.
func TestMerge(t *testing.T) {
	var a, b, both Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	want := both.Snapshot()
	if *m != *want {
		t.Error("merged snapshot differs from directly recorded one")
	}
}

// TestConcurrentRecord hammers Record from many goroutines (run under
// -race) and checks no observation is lost.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*1000+i) * time.Nanosecond)
				if i%1024 == 0 {
					_ = h.Snapshot() // concurrent reader
				}
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Total != goroutines*per {
		t.Errorf("Total = %d, want %d", s.Total, goroutines*per)
	}
}
