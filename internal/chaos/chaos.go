// Package chaos is the runtime's deterministic fault-injection harness.
//
// An *Injector is compiled into the scheduler and the HTTP front-end behind
// a nil-check fast path: a pool built without one pays a single predictable
// branch per injection site, nothing else. With an injector installed, each
// site draws a decision from a seeded hash stream (internal/xrand mixing, no
// locks, no allocation), so a failing run replays from its seed: the n-th
// probe of a site always makes the same call for the same seed, whichever
// worker happens to reach it.
//
// What is deterministic — and what is not. Each site consumes a private,
// atomically numbered sequence of decisions, so the *set* of injected
// failures (how many, at which sequence numbers) is a pure function of
// (Scenario, seed). Which goroutine draws sequence number n, and at what
// wall-clock moment, still depends on scheduling — the harness makes the
// fault pattern reproducible, not the interleaving. The wedge site is the
// deliberate exception: it is a wall-clock window (After/For from injector
// creation), because "shard k freezes between t1 and t2" is the scenario
// integration tests need to observe end to end.
//
// Sites:
//
//   - task panic: runBody replaces a task body with a panic
//   - loop panic: an adaptive-loop chunk panics before running its body
//   - steal fail: a steal probe is forced to miss its victim
//   - worker stall: a worker pauses before its next scheduling round
//   - inbox delay: delivery of a submitted root into the shard inbox is
//     deferred
//   - handler delay: a server handler sleeps after admission, holding its
//     budget slot
//   - wedge: every worker of one shard freezes for a wall-clock window
//
// Scenarios come from a Scenario struct (tests) or from Parse
// ("panic+stall:42", the -chaos flag of xkserve serve).
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site enumerates the injection points. The values are stable: they salt the
// per-site decision streams, so reordering them changes every seeded run.
type Site int

const (
	SiteTaskPanic Site = iota
	SiteLoopPanic
	SiteStealFail
	SiteWorkerStall
	SiteInboxDelay
	SiteHandlerDelay
	SiteWedge
	numSites
)

// String names the site the way counters and reports spell it.
func (s Site) String() string {
	switch s {
	case SiteTaskPanic:
		return "task_panics"
	case SiteLoopPanic:
		return "loop_panics"
	case SiteStealFail:
		return "steal_fails"
	case SiteWorkerStall:
		return "worker_stalls"
	case SiteInboxDelay:
		return "inbox_delays"
	case SiteHandlerDelay:
		return "handler_delays"
	case SiteWedge:
		return "wedge_pauses"
	}
	return "unknown"
}

// Pulse is a probabilistic delay: with probability Prob the site sleeps For.
type Pulse struct {
	Prob float64
	For  time.Duration
}

// WedgeSpec freezes every worker of one shard for a wall-clock window
// measured from injector creation: [After, After+For).
type WedgeSpec struct {
	Shard int
	After time.Duration
	For   time.Duration
}

// Scenario is the full fault configuration of one Injector. The zero value
// injects nothing (but still pays the decision draws); a nil *Injector is
// the true off switch.
type Scenario struct {
	// Seed drives every decision stream. Zero selects 1.
	Seed uint64
	// TaskPanic is the probability a task body is replaced by a panic.
	TaskPanic float64
	// LoopPanic is the probability an adaptive-loop chunk panics before
	// executing its iterations (the split/extract boundary of ForEach).
	LoopPanic float64
	// StealFail is the probability a steal probe is forced to miss.
	StealFail float64
	// WorkerStall pauses a worker between scheduling rounds.
	WorkerStall Pulse
	// InboxDelay defers delivery of a submitted root into its shard inbox.
	InboxDelay Pulse
	// HandlerDelay makes a server handler sleep after admission.
	HandlerDelay Pulse
	// Wedge freezes one whole shard for a wall-clock window. For == 0
	// disables it.
	Wedge WedgeSpec
}

// site is one injection point's state: a decision sequence number and a hit
// counter, each on its own cache line so concurrent workers drawing
// decisions do not false-share.
type site struct {
	seq  atomic.Uint64
	_    [56]byte
	hits atomic.Uint64
	_    [56]byte
}

// Injector evaluates a Scenario. All methods are safe for concurrent use;
// every decision method on a nil receiver would crash, so callers gate each
// site with a nil check — that check is the whole disabled-path cost.
type Injector struct {
	sc    Scenario
	seed  uint64
	start time.Time
	sites [numSites]site
}

// New builds an injector for sc. The wedge window starts counting now.
func New(sc Scenario) *Injector {
	seed := sc.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{sc: sc, seed: seed, start: time.Now()}
}

// Scenario returns the configuration the injector was built with (with the
// effective seed resolved).
func (in *Injector) Scenario() Scenario {
	sc := in.sc
	sc.Seed = in.seed
	return sc
}

// decide draws the next decision of s and reports whether it fires with
// probability p. The draw is one xorshift-quality mix of (seed, site,
// sequence number): allocation-free, lock-free, and identical for identical
// seeds regardless of which goroutine asks.
func (in *Injector) decide(s Site, p float64) bool {
	if p <= 0 {
		return false
	}
	n := in.sites[s].seq.Add(1)
	x := in.seed ^ (uint64(s)+1)*0xA24BAED4963EE407
	x += n * 0x9E3779B97F4A7C15
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	x *= 2685821657736338717
	if float64(x>>11)/(1<<53) >= p {
		return false
	}
	in.sites[s].hits.Add(1)
	return true
}

// InjectedPanic is the value chaos-injected panics throw; it records which
// site fired and its decision sequence number, so a PanicError in a log
// points back at the exact injected fault.
type InjectedPanic struct {
	Site Site
	Seq  uint64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("chaos: injected %s #%d", p.Site, p.Seq)
}

// TaskPanic reports whether the next task body should panic, and with what
// value.
func (in *Injector) TaskPanic() (any, bool) {
	if !in.decide(SiteTaskPanic, in.sc.TaskPanic) {
		return nil, false
	}
	return InjectedPanic{SiteTaskPanic, in.sites[SiteTaskPanic].hits.Load()}, true
}

// LoopPanic reports whether the next adaptive-loop chunk should panic.
func (in *Injector) LoopPanic() (any, bool) {
	if !in.decide(SiteLoopPanic, in.sc.LoopPanic) {
		return nil, false
	}
	return InjectedPanic{SiteLoopPanic, in.sites[SiteLoopPanic].hits.Load()}, true
}

// StealFail reports whether the next steal probe is forced to miss.
func (in *Injector) StealFail() bool {
	return in.decide(SiteStealFail, in.sc.StealFail)
}

// WorkerStall returns how long the asking worker should pause before its
// next scheduling round (0: no stall this time).
func (in *Injector) WorkerStall() time.Duration {
	if !in.decide(SiteWorkerStall, in.sc.WorkerStall.Prob) {
		return 0
	}
	return in.sc.WorkerStall.For
}

// InboxDelay returns how long delivery of the next submitted root should be
// deferred (0: deliver immediately).
func (in *Injector) InboxDelay() time.Duration {
	if !in.decide(SiteInboxDelay, in.sc.InboxDelay.Prob) {
		return 0
	}
	return in.sc.InboxDelay.For
}

// HandlerDelay returns how long the next admitted server handler should
// sleep (0: no delay).
func (in *Injector) HandlerDelay() time.Duration {
	if !in.decide(SiteHandlerDelay, in.sc.HandlerDelay.Prob) {
		return 0
	}
	return in.sc.HandlerDelay.For
}

// WedgeRemaining returns how much longer workers of shard must stay frozen:
// zero outside the wedge window or for any other shard. The first positive
// answer counts one wedge pause per caller.
func (in *Injector) WedgeRemaining(shard int) time.Duration {
	w := in.sc.Wedge
	if w.For == 0 || shard != w.Shard {
		return 0
	}
	since := time.Since(in.start)
	if since < w.After || since >= w.After+w.For {
		return 0
	}
	in.sites[SiteWedge].hits.Add(1)
	return w.After + w.For - since
}

// Counts is a snapshot of how many times each site actually fired.
type Counts struct {
	TaskPanics    uint64
	LoopPanics    uint64
	StealFails    uint64
	WorkerStalls  uint64
	InboxDelays   uint64
	HandlerDelays uint64
	WedgePauses   uint64
}

// Counts snapshots the per-site injection counters.
func (in *Injector) Counts() Counts {
	return Counts{
		TaskPanics:    in.sites[SiteTaskPanic].hits.Load(),
		LoopPanics:    in.sites[SiteLoopPanic].hits.Load(),
		StealFails:    in.sites[SiteStealFail].hits.Load(),
		WorkerStalls:  in.sites[SiteWorkerStall].hits.Load(),
		InboxDelays:   in.sites[SiteInboxDelay].hits.Load(),
		HandlerDelays: in.sites[SiteHandlerDelay].hits.Load(),
		WedgePauses:   in.sites[SiteWedge].hits.Load(),
	}
}

// String renders the counters as the one-line report serve prints at exit.
func (c Counts) String() string {
	return fmt.Sprintf(
		"task_panics=%d loop_panics=%d steal_fails=%d worker_stalls=%d inbox_delays=%d handler_delays=%d wedge_pauses=%d",
		c.TaskPanics, c.LoopPanics, c.StealFails, c.WorkerStalls,
		c.InboxDelays, c.HandlerDelays, c.WedgePauses)
}

// Named scenario fragments for Parse. Probabilities are tuned for a loaded
// server: frequent enough that a few seconds of traffic observes every
// configured site, rare enough that bounded retries keep requests succeeding.
var fragments = map[string]func(*Scenario){
	"panic": func(sc *Scenario) { sc.TaskPanic = 0.002; sc.LoopPanic = 0.002 },
	"steal": func(sc *Scenario) { sc.StealFail = 0.2 },
	"stall": func(sc *Scenario) { sc.WorkerStall = Pulse{Prob: 0.002, For: 5 * time.Millisecond} },
	"inbox": func(sc *Scenario) { sc.InboxDelay = Pulse{Prob: 0.05, For: 2 * time.Millisecond} },
	"latency": func(sc *Scenario) {
		sc.HandlerDelay = Pulse{Prob: 0.10, For: 20 * time.Millisecond}
	},
	// The wedge fragment freezes shard 1 — the shard the load generator's
	// affinity=1 wave pins to (key 1 mod shards) — so a chaos exercise can
	// guarantee a backlog behind the wedge for the health supervisor to
	// observe, regardless of how least-load placement spreads the rest.
	"wedge": func(sc *Scenario) {
		sc.Wedge = WedgeSpec{Shard: 1, After: 750 * time.Millisecond, For: 2 * time.Second}
	},
}

// Parse builds an injector from a -chaos flag value: one or more named
// fragments joined with "+", optionally followed by ":<seed>".
//
//	panic:42            task+loop panics, seed 42
//	stall+panic+wedge:7 combined scenario, seed 7
//	all                 every fragment, default seed 1
//
// An empty spec or "off" returns (nil, nil): chaos disabled.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	var sc Scenario
	names := spec
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		names = spec[:i]
		seed, err := strconv.ParseUint(spec[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad seed %q: %v", spec[i+1:], err)
		}
		sc.Seed = seed
	}
	for _, name := range strings.Split(names, "+") {
		name = strings.TrimSpace(name)
		if name == "all" {
			for _, f := range fragments {
				f(&sc)
			}
			continue
		}
		f, ok := fragments[name]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown scenario %q (have panic, steal, stall, inbox, latency, wedge, all)", name)
		}
		f(&sc)
	}
	return New(sc), nil
}
