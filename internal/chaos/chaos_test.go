package chaos

import (
	"sync"
	"testing"
	"time"
)

// TestDeterministicDecisions: the n-th decision of a site is a pure function
// of (scenario, seed) — two injectors with the same seed agree draw by draw,
// and a different seed produces a different stream.
func TestDeterministicDecisions(t *testing.T) {
	const n = 4096
	draw := func(seed uint64) []bool {
		in := New(Scenario{Seed: seed, TaskPanic: 0.05})
		out := make([]bool, n)
		for i := range out {
			_, out[i] = in.TaskPanic()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42: decision %d differs between identical injectors", i)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical decision streams")
	}
}

// TestHitRateAndCounts: over many draws the empirical rate lands near the
// configured probability, and the hit counter matches the fired decisions.
func TestHitRateAndCounts(t *testing.T) {
	const n = 100_000
	in := New(Scenario{Seed: 7, StealFail: 0.2})
	fired := 0
	for i := 0; i < n; i++ {
		if in.StealFail() {
			fired++
		}
	}
	if got := in.Counts().StealFails; got != uint64(fired) {
		t.Fatalf("Counts().StealFails = %d, observed %d fires", got, fired)
	}
	rate := float64(fired) / n
	if rate < 0.18 || rate > 0.22 {
		t.Fatalf("empirical rate %.4f far from configured 0.2", rate)
	}
}

// TestSitesIndependent: draining one site's stream does not perturb another
// site's — each site salts its own sequence.
func TestSitesIndependent(t *testing.T) {
	const n = 2048
	solo := New(Scenario{Seed: 11, TaskPanic: 0.1, StealFail: 0.1})
	want := make([]bool, n)
	for i := range want {
		_, want[i] = solo.TaskPanic()
	}
	mixed := New(Scenario{Seed: 11, TaskPanic: 0.1, StealFail: 0.1})
	for i := 0; i < 10_000; i++ {
		mixed.StealFail() // burn the other site's stream
	}
	for i := range want {
		if _, ok := mixed.TaskPanic(); ok != want[i] {
			t.Fatalf("TaskPanic decision %d changed after draining StealFail", i)
		}
	}
}

// TestConcurrentDrawSetIsSeedDetermined: the multiset of fired decisions is
// the same whether the stream is drawn by one goroutine or by eight — only
// the assignment of sequence numbers to goroutines varies.
func TestConcurrentDrawSetIsSeedDetermined(t *testing.T) {
	const n = 8 * 4096
	serial := New(Scenario{Seed: 3, TaskPanic: 0.03})
	for i := 0; i < n; i++ {
		serial.TaskPanic()
	}
	parallel := New(Scenario{Seed: 3, TaskPanic: 0.03})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				parallel.TaskPanic()
			}
		}()
	}
	wg.Wait()
	if s, p := serial.Counts().TaskPanics, parallel.Counts().TaskPanics; s != p {
		t.Fatalf("fired %d serially but %d in parallel for the same seed", s, p)
	}
}

// TestWedgeWindow: WedgeRemaining answers positively only inside the
// wall-clock window and only for the configured shard.
func TestWedgeWindow(t *testing.T) {
	in := New(Scenario{Wedge: WedgeSpec{Shard: 1, After: 20 * time.Millisecond, For: 80 * time.Millisecond}})
	if d := in.WedgeRemaining(1); d != 0 {
		t.Fatalf("wedged before the window opened: %v", d)
	}
	time.Sleep(30 * time.Millisecond)
	if d := in.WedgeRemaining(0); d != 0 {
		t.Fatalf("wrong shard wedged: %v", d)
	}
	if d := in.WedgeRemaining(1); d <= 0 || d > 80*time.Millisecond {
		t.Fatalf("inside the window, remaining = %v", d)
	}
	time.Sleep(90 * time.Millisecond)
	if d := in.WedgeRemaining(1); d != 0 {
		t.Fatalf("wedged after the window closed: %v", d)
	}
	if in.Counts().WedgePauses == 0 {
		t.Fatal("wedge pauses not counted")
	}
}

// TestParse covers the flag grammar: fragments, combination, seeds, the off
// switch and rejection of unknown names.
func TestParse(t *testing.T) {
	if in, err := Parse(""); err != nil || in != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", in, err)
	}
	if in, err := Parse("off"); err != nil || in != nil {
		t.Fatalf("Parse(\"off\") = %v, %v; want nil, nil", in, err)
	}
	in, err := Parse("panic+stall:42")
	if err != nil {
		t.Fatal(err)
	}
	sc := in.Scenario()
	if sc.Seed != 42 || sc.TaskPanic == 0 || sc.WorkerStall.Prob == 0 || sc.StealFail != 0 {
		t.Fatalf("panic+stall:42 parsed to %+v", sc)
	}
	in, err = Parse("all")
	if err != nil {
		t.Fatal(err)
	}
	sc = in.Scenario()
	if sc.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", sc.Seed)
	}
	if sc.TaskPanic == 0 || sc.StealFail == 0 || sc.WorkerStall.Prob == 0 ||
		sc.InboxDelay.Prob == 0 || sc.HandlerDelay.Prob == 0 || sc.Wedge.For == 0 {
		t.Fatalf("all left a site unset: %+v", sc)
	}
	if _, err := Parse("gremlins:1"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Parse("panic:banana"); err == nil {
		t.Fatal("bad seed accepted")
	}
}

// TestInjectedPanicString: the panic value names its site and sequence so a
// captured PanicError is attributable to the injected fault.
func TestInjectedPanicString(t *testing.T) {
	in := New(Scenario{Seed: 5, TaskPanic: 1})
	v, ok := in.TaskPanic()
	if !ok {
		t.Fatal("probability 1 did not fire")
	}
	ip, ok := v.(InjectedPanic)
	if !ok {
		t.Fatalf("panic value is %T, want InjectedPanic", v)
	}
	if got := ip.String(); got != "chaos: injected task_panics #1" {
		t.Fatalf("String() = %q", got)
	}
}
