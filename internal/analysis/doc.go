// Package analysis is the module's own static-analysis tier: a small
// go/analysis-style framework plus the loader that type-checks packages
// offline, driven by cmd/xkvet and gated in CI via `make lint` (ci.sh
// runs it between `go vet` and the build). The analyzers encode the
// concurrency invariants this runtime's performance claims rest on —
// properties stock vet cannot see because they are conventions of this
// codebase, not of Go.
//
// # The analyzers
//
// jobfailsingleton — the failure/cancellation protocol (PanicError,
// first-error-wins, context fan-out) must have exactly one definition,
// internal/jobfail. A second `type PanicError` anywhere means someone
// re-grew a hand-rolled copy of the state machine. Re-exports must be
// the grouped alias form `type ( PanicError = jobfail.PanicError )`
// aliasing jobfail's type, so readers can grep for the convention.
// This analyzer replaces the shell grep tripwire ci.sh used to carry.
//
// taskctx — task and region bodies (functions with a worker parameter,
// and function literals passed to Spawn/Run/InsertTaskCtx/ParallelCtx
// and the other entrypoints) must not call context.Background or
// context.TODO, and must not shadow the supplied ctx with an unrelated
// context. Job cancellation reaches a body only through the context the
// job was given; a fresh root context silently opts the body out.
// Shadowing with a context derived from the original (context.WithTimeout
// et al.) is fine.
//
// hotpath — files that opt in with an `//xk:hotpath` pragma (the
// Chase–Lev deque, the worker scheduling loop, internal/latency) may not
// use sync.Mutex/RWMutex methods (including via embedding), channel
// sends/receives/selects, time.Sleep, fmt, or launch goroutines. These
// files' doc comments promise lock-freedom; the analyzer keeps the code
// honest as it evolves. A function that is a deliberate slow path can be
// exempted wholesale with `//xk:coldpath` in its doc comment.
//
// atomicpad — a struct holding atomics that is instantiated per-worker
// in a slice must carry a trailing `_ [N]byte` cache-line pad, or every
// worker's counter updates false-share one line and the "per-worker,
// uncontended" premise dies silently. It also checks that 64-bit
// sync/atomic calls on struct fields are 8-byte-aligned on 32-bit
// targets (computed with 386 sizes), the classic sync/atomic trap.
//
// # Conventions
//
// A line can suppress one diagnostic deliberately with a trailing
// `//xk:allow(<analyzer>): reason` comment; the reason is mandatory in
// spirit — it is the reviewer-facing justification. `//xk:hotpath` is a
// file-level opt-in pragma (anywhere in a file's leading comments), and
// `//xk:coldpath` is a function-level opt-out used inside hotpath files.
//
// # Running it
//
//	make lint            # builds bin/xkvet once, runs it over ./...
//	go run ./cmd/xkvet -list
//	go run ./cmd/xkvet ./internal/core
//
// # Why a local framework
//
// The module is deliberately dependency-free, so golang.org/x/tools is
// not available. The Analyzer/Pass/Reportf API here mirrors
// go/analysis closely enough that porting an analyzer to the stock
// multichecker is mechanical; the only genuinely local pieces are the
// loader (load.go, `go list -export` + the gc importer, so packages
// type-check offline against the build cache) and the fixture harness
// (fixture.go, an analysistest-style `// want "regexp"` runner over
// testdata/src trees).
package analysis
