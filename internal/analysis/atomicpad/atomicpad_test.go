package atomicpad

import (
	"testing"

	"xkaapi/internal/analysis"
)

func TestAnalyzer(t *testing.T) {
	analysis.RunFixture(t, Analyzer, "ap")
}
