// Package atomicpad guards the layout invariants of per-worker counter
// blocks. Two checks:
//
// First, a struct that (transitively) holds sync/atomic fields and is
// instantiated by value as a slice or array element — the per-worker
// slot pattern of the deque request box and the stats blocks — must
// carry a blank padding field (`_ [N]byte`): without it, adjacent
// workers' counters share cache lines and every uncontended atomic RMW
// turns into cross-core traffic (false sharing).
//
// Second, plain 64-bit fields reached through the sync/atomic functions
// (atomic.AddInt64(&s.f, ...)) must sit at 8-byte-aligned offsets under
// 32-bit (GOARCH=386) struct layout, where int64 alignment is only 4:
// a misaligned 64-bit atomic faults on 32-bit hardware. Move 64-bit
// fields to the front of the struct or pad before them. (The atomic.Int64
// wrapper types carry their own align64 marker and are always safe.)
package atomicpad

import (
	"go/ast"
	"go/token"
	"go/types"

	"xkaapi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicpad",
	Doc: "structs holding sync/atomic fields used as slice/array elements " +
		"must carry cache-line padding (`_ [N]byte`), and 64-bit fields " +
		"accessed via sync/atomic functions must be 8-byte aligned under " +
		"32-bit layout.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkPadding(pass)
	checkAlignment(pass)
	return nil
}

// checkPadding flags atomic-holding structs used as value elements of a
// slice or array without a blank padding field.
func checkPadding(pass *analysis.Pass) {
	// Every struct type declared in this package.
	type declared struct {
		named *types.Named
		spec  *ast.TypeSpec
	}
	var structs []declared
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Assign.IsValid() {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); ok {
					structs = append(structs, declared{named, ts})
				}
			}
		}
	}
	// Every type used as a by-value slice/array element anywhere in the
	// package (var decls, struct fields, make calls, composite literals).
	slicedAt := make(map[*types.Named]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			at, ok := n.(*ast.ArrayType)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(at.Elt)
			if t == nil {
				return true
			}
			if named, ok := types.Unalias(t).(*types.Named); ok {
				if _, seen := slicedAt[named]; !seen {
					slicedAt[named] = at.Pos()
				}
			}
			return true
		})
	}
	for _, d := range structs {
		pos, sliced := slicedAt[d.named]
		if !sliced || !holdsAtomics(d.named, make(map[types.Type]bool)) {
			continue
		}
		if hasBytePad(d.named) {
			continue
		}
		pass.Reportf(d.spec.Pos(),
			"%s holds atomic fields and is used as a slice/array element (%s) "+
				"without cache-line padding: add a blank `_ [N]byte` field so "+
				"per-worker slots do not false-share",
			d.spec.Name.Name, pass.Fset.Position(pos))
	}
}

// holdsAtomics reports whether t transitively contains a sync/atomic
// field (through nested structs and arrays, cycles guarded by seen).
func holdsAtomics(t types.Type, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
		return holdsAtomics(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if holdsAtomics(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsAtomics(t.Elem(), seen)
	}
	return false
}

// hasBytePad reports whether the struct has a blank field of byte-array
// type — the `_ [cacheLinePad]byte` convention.
func hasBytePad(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "_" {
			continue
		}
		arr, ok := types.Unalias(f.Type()).(*types.Array)
		if !ok {
			continue
		}
		if basic, ok := types.Unalias(arr.Elem()).(*types.Basic); ok && basic.Kind() == types.Uint8 {
			return true
		}
	}
	return false
}

// atomic64Funcs are the sync/atomic package functions operating on plain
// 64-bit words, whose argument must be 8-byte aligned even on 32-bit.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
	"AndInt64": true, "AndUint64": true,
	"OrInt64": true, "OrUint64": true,
}

// sizes32 models gc struct layout on a 32-bit target, where int64
// alignment is 4 and misaligned 64-bit atomics fault.
var sizes32 = types.SizesFor("gc", "386")

// checkAlignment flags &struct.field arguments of 64-bit atomic calls
// whose field offset is not 8-aligned under 32-bit layout.
func checkAlignment(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			matched := false
			for name := range atomic64Funcs {
				if analysis.IsPkgFunc(pass.TypesInfo, call, "sync/atomic", name) {
					matched = true
					break
				}
			}
			if !matched {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if off, known := chainOffset32(pass, sel); known && off%8 != 0 {
				pass.Reportf(sel.Pos(),
					"64-bit atomic access to field %s at offset %d: not 8-byte "+
						"aligned on 32-bit targets — move 64-bit fields to the "+
						"front of the struct or pad before them (or use the "+
						"atomic.Int64/Uint64 wrapper types, which self-align)",
					sel.Sel.Name, off)
			}
			return true
		})
	}
}

// chainOffset32 resolves the total offset of a (possibly nested) field
// selector like s.c.n under 32-bit layout. Each explicit selector step
// has its own types.Selection; the offsets accumulate until the chain
// reaches a pointer receiver (an allocation's first word is 64-bit
// aligned even on 32-bit, per the sync/atomic contract) or a plain
// variable base.
func chainOffset32(pass *analysis.Pass, sel *ast.SelectorExpr) (int64, bool) {
	var total int64
	for {
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return 0, false
		}
		off, ok := pathOffset32(selection)
		if !ok {
			return 0, false
		}
		total += off
		if _, isPtr := types.Unalias(selection.Recv()).(*types.Pointer); isPtr {
			break // implicit deref: the base allocation starts 8-aligned
		}
		x, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			break
		}
		sel = x
	}
	return total, true
}

// pathOffset32 walks one selection's field path (several steps only for
// promoted fields of embedded structs) and sums the offsets.
func pathOffset32(selection *types.Selection) (int64, bool) {
	t := deref(selection.Recv())
	var offset int64
	for _, idx := range selection.Index() {
		st, ok := types.Unalias(t.Underlying()).(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		offset += offsets[idx]
		t = deref(st.Field(idx).Type())
	}
	return offset, true
}

func deref(t types.Type) types.Type {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	return t
}
