// Package ap exercises the atomicpad analyzer: padding of atomic-holding
// slice elements, and 32-bit alignment of plain 64-bit atomic fields.
package ap

import "sync/atomic"

// padded is the approved per-worker slot shape: atomics plus a blank
// byte-array pad keeping neighbouring slots on distinct cache lines.
type padded struct {
	n atomic.Int64
	_ [56]byte
}

var pool []padded

type unpadded struct { // want `unpadded holds atomic fields and is used as a slice/array element`
	n atomic.Int64
}

var slots = make([]unpadded, 8)

// notSliced is never a slice element: no padding demanded.
type notSliced struct {
	n atomic.Int64
}

var single notSliced

// ptrSliced is only sliced through pointers: each element is its own
// allocation, so no padding demanded.
type ptrSliced struct {
	n atomic.Int64
}

var ptrs []*ptrSliced

// outer holds its atomics indirectly, through a nested struct — still a
// per-slot counter block when instantiated as an array.
type inner struct{ c atomic.Uint64 }

type outer struct { // want `outer holds atomic fields and is used as a slice/array element`
	in inner
}

var outers [4]outer

// statBlock mirrors the worker's statCache shape: mostly plain owner-only
// words with a single atomic flag, embedded by value in a struct that is
// itself never sliced — but the slab allocator instantiates descriptor
// arrays of it, so the trailing pad is still demanded and present.
type statBlock struct {
	pending  int64
	executed int64
	dirty    atomic.Bool
	_        [64]byte
}

var statSlab = new([4]statBlock)

// descriptor mirrors the task-slab element: atomics deep inside an
// otherwise plain struct, carved as `new([N]descriptor)` — the array
// literal in the allocation is what makes it an array element, and without
// a pad adjacent descriptors would false-share their counters.
type descriptor struct { // want `descriptor holds atomic fields and is used as a slice/array element`
	next     *descriptor
	children atomic.Int32
	wait     atomic.Int32
}

func carve() *descriptor {
	slab := new([16]descriptor)
	return &slab[0]
}

// noAtomics is sliced but has nothing atomic: no padding demanded.
type noAtomics struct {
	n int64
}

var plain []noAtomics

// counters has its 64-bit word after a bool: offset 4 under 32-bit
// layout, so the sync/atomic access below would fault on GOARCH=386.
type counters struct {
	flag bool
	n    int64
}

func bump(c *counters) {
	atomic.AddInt64(&c.n, 1) // want `not 8-byte aligned on 32-bit targets`
}

// alignedCounters keeps the 64-bit word first: offset 0, always safe.
type alignedCounters struct {
	n    int64
	flag bool
}

func bumpOK(c *alignedCounters) int64 {
	atomic.AddInt64(&c.n, 1)
	return atomic.LoadInt64(&c.n)
}

// nested embeds the misaligned pair one level down; the selection path
// accumulates offsets.
type nested struct {
	pad uint32
	c   alignedCounters
}

func bumpNested(s *nested) {
	atomic.AddInt64(&s.c.n, 1) // want `not 8-byte aligned on 32-bit targets`
}

var (
	_ = bump
	_ = bumpOK
	_ = bumpNested
	_ = single
	_ = slots
	_ = pool
	_ = ptrs
	_ = outers
	_ = plain
	_ = statSlab
	_ = carve
)
