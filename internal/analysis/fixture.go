package analysis

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture is the analysistest analogue for this framework: it loads
// the fixture packages under testdata/src/<pkg> (relative to the calling
// test's working directory, i.e. the analyzer's package directory), runs
// the analyzer, and compares its diagnostics against `// want "regexp"`
// comments in the fixture sources. A want comment expects one diagnostic
// on its own line whose message matches the (quoted or backquoted)
// regular expression; several expressions expect several diagnostics.
//
// Fixture imports — standard library or real packages of this module,
// e.g. xkaapi/internal/jobfail — are resolved through `go list -export`
// exactly like the production loader, so fixtures type-check for real.
// Fixtures cannot import each other.
func RunFixture(t *testing.T, a *Analyzer, fixturePkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()

	type fixture struct {
		pkgPath string
		dir     string
		files   []string
	}
	var fixtures []fixture
	importSet := make(map[string]bool)
	for _, rel := range fixturePkgs {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(matches) == 0 {
			t.Fatalf("fixture %s: no Go files in %s (%v)", rel, dir, err)
		}
		sort.Strings(matches)
		for _, path := range matches {
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("fixture %s: %v", rel, err)
			}
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err == nil && p != "unsafe" {
					importSet[p] = true
				}
			}
		}
		fixtures = append(fixtures, fixture{pkgPath: rel, dir: dir, files: matches})
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(".", paths)
		if err != nil {
			t.Fatalf("resolving fixture imports: %v", err)
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)

	for _, fx := range fixtures {
		pkg, err := TypeCheck(fset, imp, fx.pkgPath, fx.dir, fx.files)
		if err != nil {
			t.Fatalf("fixture %s: %v", fx.pkgPath, err)
		}
		diags, err := Check(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("fixture %s: %v", fx.pkgPath, err)
		}
		matchExpectations(t, pkg, diags)
	}
}

// expectation is one parsed `// want` pattern, consumed by one matching
// diagnostic on the same line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

func matchExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range parseWant(t, pos, c.Text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWant extracts the patterns of a `// want "re" `+"`re`"+` ...`
// comment, or nil if the comment is not a want comment.
func parseWant(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		rest, ok = strings.CutPrefix(text, "//want ")
	}
	if !ok {
		return nil
	}
	var pats []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return pats
		}
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, rest)
			}
			pat, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, rest[:end+1], err)
			}
			pats = append(pats, pat)
			rest = rest[end+1:]
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, rest)
			}
			pats = append(pats, rest[1:end+1])
			rest = rest[end+2:]
		default:
			t.Fatalf("%s: want patterns must be quoted or backquoted: %s", pos, rest)
		}
	}
}
