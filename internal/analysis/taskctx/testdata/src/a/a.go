// Package a exercises the taskctx analyzer: task bodies are recognized
// both by their *xkaapi.Proc parameter and by being literals passed to
// spawn-like entrypoints; detached contexts and non-derived shadows are
// flagged, derived contexts are not.
package a

import (
	"context"
	"time"

	"xkaapi"
)

// kernel has a *Proc parameter, so it is a task body wherever it is
// called from (this is the server-workload-kernel shape).
func kernel(p *xkaapi.Proc, out *int64) {
	ctx := p.Context() // ok: obtained from the job
	_ = ctx
	bad := context.Background() // want `task body calls context.Background`
	_ = bad
	select {
	case <-p.Context().Done():
	default:
	}
}

func regions(rt *xkaapi.Runtime, ctx context.Context) error {
	// Literal passed to an entrypoint: a task body even without a Proc
	// parameter in scope of the checks.
	err := rt.Run(func(p *xkaapi.Proc) {
		_ = context.TODO() // want `task body calls context.TODO`
	})
	if err != nil {
		return err
	}
	// Shadowing the supplied ctx with a detached context loses the job's
	// cancellation signal: both the call and the shadow are reported.
	err = rt.Run(func(p *xkaapi.Proc) {
		ctx := context.Background() // want `task body calls context.Background` `task body shadows "ctx"`
		_ = ctx
	})
	if err != nil {
		return err
	}
	// Deriving from the shadowed ctx is the approved pattern.
	return rt.Run(func(p *xkaapi.Proc) {
		ctx, cancel := context.WithTimeout(ctx, time.Second) // ok: derived
		defer cancel()
		var ctx2 context.Context = ctx
		_ = ctx2
	})
}

// quarkish mimics the InsertTaskCtx shape: the body receives the job
// context as a parameter; shadowing it inside a block is flagged.
type inserter struct{}

func (inserter) InsertTaskCtx(fn func(ctx context.Context)) {}

func insert(q inserter) {
	q.InsertTaskCtx(func(ctx context.Context) {
		{
			ctx := context.TODO() // want `task body calls context.TODO` `task body shadows "ctx"`
			_ = ctx
		}
		{
			ctx := context.WithoutCancel(ctx) // ok: derived (deliberate detach is visible)
			_ = ctx
		}
		{
			ctx := context.Background() //xk:allow(taskctx): fixture proves suppression works
			_ = ctx
		}
	})
}

// affinity submits through the sharded-fleet entry point: the literal
// passed to SubmitAffinity is a task body like any other submit shape.
func affinity(rt *xkaapi.Runtime, ctx context.Context) error {
	j := rt.SubmitAffinity(ctx, 7, func(p *xkaapi.Proc) {
		_ = context.Background() // want `task body calls context.Background`
	})
	return j.Wait()
}

// helper is not a task body: ordinary code may build root contexts.
func helper() context.Context {
	return context.Background()
}

var _ = kernel
var _ = regions
var _ = insert
var _ = affinity
var _ = helper
