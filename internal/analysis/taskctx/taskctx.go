// Package taskctx enforces the per-job context contract on task bodies:
// code that runs inside a job must be able to observe that job's
// cancellation. A body that calls context.Background()/context.TODO(),
// or that shadows the supplied ctx with a context not derived from it,
// silently detaches itself from the failure state machine — a sibling
// panic, a deadline or a client disconnect can no longer stop it.
//
// A "task body" is (a) any function or function literal with a
// parameter of type *core.Worker (the xkaapi.Proc execution context —
// by construction such code runs inside a task), or (b) a function
// literal passed directly to a spawn-like entrypoint of any paradigm
// layer (Spawn, SpawnTask, Submit, ParallelCtx, InsertTaskCtx, ...).
package taskctx

import (
	"go/ast"
	"go/token"
	"go/types"

	"xkaapi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "taskctx",
	Doc: "task and region bodies must honor the per-job context: no " +
		"context.Background()/context.TODO() inside a body, and no shadowing " +
		"of the supplied ctx by a context not derived from it — otherwise the " +
		"body cannot observe job cancellation.",
	Run: run,
}

// workerPath is the package defining the execution-context type handed to
// every task body (xkaapi.Proc is an alias of core.Worker).
const workerPath = "xkaapi/internal/core"

// entrypoints are the spawn-like call names of the paradigm layers: a
// function literal passed to one of these is a task, region or loop body.
var entrypoints = map[string]bool{
	"Spawn": true, "SpawnTask": true, "NewAdaptiveTask": true,
	"Submit": true, "SubmitCtx": true, "SubmitAffinity": true,
	"Run": true, "RunCtx": true, "RunRoot": true,
	"InsertTask": true, "InsertTaskCtx": true,
	"Parallel": true, "ParallelCtx": true,
	"ParallelFor": true, "ParallelForCtx": true,
	"Do": true, "DoCtx": true,
	"ForEach": true, "ForEachCtx": true, "Foreach": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		bodies := collectBodies(pass, f)
		for node := range bodies {
			checkBody(pass, node, bodies)
		}
	}
	return nil
}

// collectBodies returns the set of task-body function nodes of one file
// (*ast.FuncDecl or *ast.FuncLit).
func collectBodies(pass *analysis.Pass, f *ast.File) map[ast.Node]bool {
	bodies := make(map[ast.Node]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && hasWorkerParam(pass, n.Type) {
				bodies[n] = true
			}
		case *ast.FuncLit:
			if hasWorkerParam(pass, n.Type) {
				bodies[n] = true
			}
		case *ast.CallExpr:
			if entrypoints[analysis.CalleeName(n)] {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						bodies[lit] = true
					}
				}
			}
		}
		return true
	})
	return bodies
}

func hasWorkerParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if name, ok := analysis.NamedFromPkg(t, workerPath); ok && name == "Worker" {
			return true
		}
	}
	return false
}

// checkBody walks one task body, skipping nested nodes that are bodies
// themselves (they are checked on their own pass, avoiding duplicates).
func checkBody(pass *analysis.Pass, body ast.Node, bodies map[ast.Node]bool) {
	var block *ast.BlockStmt
	switch n := body.(type) {
	case *ast.FuncDecl:
		block = n.Body
	case *ast.FuncLit:
		block = n.Body
	}
	ast.Inspect(block, func(n ast.Node) bool {
		if n != nil && n != body && bodies[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, fn := range [...]string{"Background", "TODO"} {
				if analysis.IsPkgFunc(pass.TypesInfo, n, "context", fn) {
					pass.Reportf(n.Pos(),
						"task body calls context.%s: use the supplied ctx (or "+
							"Proc.Context) so the body observes job cancellation", fn)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkShadow(pass, id, n.Rhs)
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				checkShadow(pass, id, n.Values)
			}
		}
		return true
	})
}

// checkShadow reports a definition of a context.Context variable whose
// name shadows a context.Context already in scope, unless the new value
// is derived from the shadowed one (the RHS mentions it, e.g.
// `ctx := context.WithTimeout(ctx, d)`) or obtained from the job
// (`ctx := p.Context()` — any .Context() call counts as derivation).
func checkShadow(pass *analysis.Pass, id *ast.Ident, rhs []ast.Expr) {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil || !isContextType(obj.Type()) {
		return
	}
	inner := pass.Pkg.Scope().Innermost(id.Pos())
	if inner == nil {
		return
	}
	_, outer := inner.LookupParent(id.Name, id.Pos())
	if outer == nil || outer == obj {
		return
	}
	if _, ok := outer.(*types.Var); !ok || !isContextType(outer.Type()) {
		return
	}
	for _, e := range rhs {
		if derivesFrom(pass, e, outer) {
			return
		}
	}
	pass.Reportf(id.Pos(),
		"task body shadows %q with a context not derived from it: derive the "+
			"new context from the supplied one (context.With* on %q, or "+
			"Proc.Context) so job cancellation still reaches this body", id.Name, id.Name)
}

// derivesFrom reports whether expr uses outer (the shadowed context) or
// calls a .Context() accessor.
func derivesFrom(pass *analysis.Pass, expr ast.Expr, outer types.Object) bool {
	derived := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if pass.TypesInfo.Uses[n] == outer {
				derived = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
				derived = true
			}
		}
		return !derived
	})
	return derived
}

func isContextType(t types.Type) bool {
	name, ok := analysis.NamedFromPkg(t, "context")
	return ok && name == "Context"
}
