package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, parsed and type-checked package, ready for
// Check. The loader is the piece x/tools' go/packages would provide:
// `go list -export` supplies the import graph and the compiled export
// data of every dependency, the target itself is type-checked from
// source, and the gc importer resolves imports from the export files —
// all standard library, all offline.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns (e.g. "./...") relative to dir, builds export
// data for the whole dependency closure, and returns every matched
// non-standard package type-checked from source. Test files are not
// analyzed: the invariants guarded here are production-code invariants,
// and fixtures under testdata are invisible to go list by convention.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, name := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, name)
		}
		pkg, err := TypeCheck(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// exportImporter returns a types.Importer resolving import paths through
// the export files `go list -export` reported. The gc importer caches
// loaded packages, so one importer must be shared by every type-check of
// one Load (identical dependency *types.Package pointers across targets).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// TypeCheck parses files and type-checks them as one package with the
// given import path. Exported for the fixture harness, which assembles
// its own file sets from testdata.
func TypeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	astFiles := make([]*ast.File, 0, len(files))
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	name := ""
	if len(astFiles) > 0 {
		name = astFiles[0].Name.Name
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      name,
		Dir:       dir,
		Fset:      fset,
		Files:     astFiles,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
