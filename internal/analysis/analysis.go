package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis (Name, Doc, Run over a Pass) so the
// checks can be ported to a stock multichecker wholesale if that
// dependency ever becomes available; the module itself is
// dependency-free, so the driver and this micro-framework are local.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics and //xk:allow
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation, position already resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Check runs the analyzers over pkg and returns the surviving diagnostics
// sorted by position. A diagnostic is suppressed when the offending line
// carries a trailing `//xk:allow(<name>)` comment naming the analyzer (or
// `all`), with an optional `: reason` — the suppression is deliberate and
// visible in review, which is the point.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	allow := allowedLines(pkg)
	kept := diags[:0]
	for _, d := range diags {
		names := allow[lineKey{d.Pos.Filename, d.Pos.Line}]
		if names[d.Analyzer] || names["all"] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

type lineKey struct {
	file string
	line int
}

// allowedLines collects the //xk:allow(...) suppressions of a package as
// a map from (file, line) to the set of analyzer names allowed there.
func allowedLines(pkg *Package) map[lineKey]map[string]bool {
	allow := make(map[lineKey]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//xk:allow(")
				if !ok {
					continue
				}
				names, _, ok := strings.Cut(rest, ")")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				set := allow[key]
				if set == nil {
					set = make(map[string]bool)
					allow[key] = set
				}
				for _, n := range strings.Split(names, ",") {
					set[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return allow
}

// FileHasPragma reports whether any comment in f is exactly the directive
// `//<pragma>`, optionally followed by a space and free text. Used for
// file-level opt-ins like //xk:hotpath.
func FileHasPragma(f *ast.File, pragma string) bool {
	want := "//" + pragma
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
				return true
			}
		}
	}
	return false
}

// DocHasPragma reports whether a declaration's doc comment group carries
// the directive `//<pragma>` (same matching as FileHasPragma).
func DocHasPragma(doc *ast.CommentGroup, pragma string) bool {
	if doc == nil {
		return false
	}
	want := "//" + pragma
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name, resolved through the type checker (so import renames and
// dot imports are handled).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj, ok := info.Uses[id].(*types.Func)
	return ok && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// CalleeName returns the bare name a call is spelled with (`Spawn` for
// both `w.Spawn(...)` and `Spawn(...)`), or "" for indirect calls.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// NamedFromPkg reports whether t (after alias resolution and pointer
// removal) is a named type declared in the package with the given path,
// returning its name.
func NamedFromPkg(t types.Type, pkgPath string) (string, bool) {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	return obj.Name(), true
}
