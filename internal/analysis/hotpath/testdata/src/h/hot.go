//xk:hotpath — this fixture file is under the lock-free contract.

// Package h exercises the hotpath analyzer: this file is opted in, the
// sibling cold.go is not.
package h

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

type guarded struct {
	mu sync.Mutex
	sync.RWMutex
	n atomic.Int64
}

func violations(g *guarded, ch chan int) {
	g.mu.Lock()   // want `sync\.Mutex\.Lock in hot path`
	g.mu.Unlock() // want `sync\.Mutex\.Unlock in hot path`
	g.RLock()     // want `sync\.RWMutex\.RLock in hot path`
	g.RUnlock()   // want `sync\.RWMutex\.RUnlock in hot path`
	ch <- 1       // want `channel send in hot path`
	<-ch          // want `channel receive in hot path`
	select {      // want `select in hot path`
	case v := <-ch: // want `channel receive in hot path`
		_ = v
	default:
	}
	go func() { // want `goroutine launch in hot path`
		g.n.Add(1)
	}()
	time.Sleep(time.Microsecond) // want `time\.Sleep in hot path`
	fmt.Println("hot")           // want `fmt\.Println in hot path`
}

// allowed: atomics are the point of a hot path.
func fine(g *guarded) int64 {
	g.n.Add(1)
	return g.n.Load()
}

// park is the deliberate slow path; blocking here is the design.
//
//xk:coldpath — exists to block.
func park(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	<-ch
	time.Sleep(time.Millisecond)
}

// backoff shows the line-level escape hatch.
func backoff() {
	time.Sleep(time.Microsecond) //xk:allow(hotpath): idle backoff, out of work by definition
}
