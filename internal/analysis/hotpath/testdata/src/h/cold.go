package h

import (
	"fmt"
	"sync"
	"time"
)

// notOptedIn lives in a file without //xk:hotpath: nothing is flagged.
func notOptedIn(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
	<-ch
	go fmt.Println("cold")
	time.Sleep(time.Millisecond)
}
