// Package hotpath keeps the opted-in scheduler files lock-free and
// allocation-free. A file opts in with a `//xk:hotpath` comment (the
// Chase–Lev deque, the worker loop, the latency histogram); inside such
// a file the analyzer rejects blocking or allocating constructs: method
// calls on package sync types (Mutex, RWMutex, Cond, WaitGroup, Once,
// Map — sync/atomic stays allowed), channel sends/receives and select,
// goroutine launches, time.Sleep, and any fmt call.
//
// Deliberate slow paths stay expressible: a function whose doc comment
// carries `//xk:coldpath` is exempt (e.g. the worker's park path, which
// exists to block), and a single line can carry `//xk:allow(hotpath)`
// with a reason (e.g. the idle-backoff sleep).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"xkaapi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "files opted in with //xk:hotpath must stay lock-free and " +
		"allocation-free: no sync.Mutex/RWMutex (or other package sync) " +
		"method calls, no channel operations or select, no goroutine " +
		"launches, no time.Sleep, no fmt; mark deliberate slow paths with " +
		"//xk:coldpath on the function or //xk:allow(hotpath) on the line.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if !analysis.FileHasPragma(f, "xk:hotpath") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.DocHasPragma(fd.Doc, "xk:coldpath") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in hot path (file is //xk:hotpath)")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in hot path (file is //xk:hotpath)")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in hot path (file is //xk:hotpath)")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"goroutine launch in hot path: the closure and its captures "+
					"escape-allocate per call (file is //xk:hotpath)")
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Sleep") {
		pass.Reportf(call.Pos(), "time.Sleep in hot path (file is //xk:hotpath)")
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.* — formatting allocates and takes interface boxing on every call.
	if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
		obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path (file is //xk:hotpath)", obj.Name())
		return
	}
	// Method calls declared by package sync (Lock, RLock, Wait, Do, ...)
	// all block or serialize; resolving by the method's declaring package
	// also catches embedded mutexes. sync/atomic is a different package
	// and stays allowed — it is what hot paths are made of.
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	name, _ := analysis.NamedFromPkg(fn.Type().(*types.Signature).Recv().Type(), "sync")
	pass.Reportf(call.Pos(),
		"sync.%s.%s in hot path: hot files are lock-free by contract "+
			"(file is //xk:hotpath; mark a deliberate slow path //xk:coldpath)",
		name, sel.Sel.Name)
}
