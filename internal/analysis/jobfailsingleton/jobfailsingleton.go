// Package jobfailsingleton enforces the single-failure-state-machine
// invariant: the runtime has exactly one PanicError — the one in
// internal/jobfail — and every layer that re-exports it does so as an
// alias of that definition. It is the AST-level replacement for the old
// `grep -c "type PanicError"` tripwire in ci.sh, and unlike the grep it
// also proves each alias really resolves to jobfail's type instead of
// merely being spelled like one.
package jobfailsingleton

import (
	"go/ast"
	"go/token"
	"go/types"

	"xkaapi/internal/analysis"
)

// jobfailPath is the one package allowed to define PanicError.
const jobfailPath = "xkaapi/internal/jobfail"

var Analyzer = &analysis.Analyzer{
	Name: "jobfailsingleton",
	Doc: "PanicError may be defined only in internal/jobfail; everywhere else " +
		"it must be a grouped alias (`type ( PanicError = jobfail.PanicError )`) " +
		"resolving to that single definition, so one failure state machine " +
		"serves every paradigm layer.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "PanicError" {
					continue
				}
				check(pass, gd, ts)
			}
		}
	}
	return nil
}

func check(pass *analysis.Pass, gd *ast.GenDecl, ts *ast.TypeSpec) {
	if ts.Assign == token.NoPos {
		// A real definition, not an alias.
		if pass.Pkg.Path() != jobfailPath {
			pass.Reportf(ts.Pos(),
				"PanicError defined outside %s: the failure protocol must have "+
					"exactly one state machine — re-export it instead with "+
					"`type ( PanicError = jobfail.PanicError )`", jobfailPath)
		}
		return
	}
	if !resolvesToJobfail(pass, ts.Type) {
		pass.Reportf(ts.Pos(),
			"PanicError alias does not resolve to %s.PanicError: every layer "+
				"must share the one jobfail definition", jobfailPath)
		return
	}
	if !gd.Lparen.IsValid() {
		pass.Reportf(ts.Pos(),
			"PanicError re-export must use the grouped alias form "+
				"`type ( PanicError = jobfail.PanicError )` — the convention "+
				"that keeps re-exports visually distinct from definitions")
	}
}

// resolvesToJobfail reports whether the alias RHS denotes (possibly
// through further aliases, e.g. core.PanicError) the jobfail definition.
func resolvesToJobfail(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "PanicError" && obj.Pkg() != nil && obj.Pkg().Path() == jobfailPath
}
