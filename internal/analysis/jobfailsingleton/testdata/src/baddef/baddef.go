// Package baddef re-grows a hand-rolled failure type, which the analyzer
// must refuse: the failure state machine has exactly one definition.
package baddef

type PanicError struct { // want `PanicError defined outside xkaapi/internal/jobfail`
	Value any
}

func (e *PanicError) Error() string { return "panic" }
