// Package badtarget aliases PanicError to a local look-alike: spelled
// like a re-export, but it does not resolve to the jobfail definition.
package badtarget

type impostor struct {
	Value any
}

type (
	PanicError = impostor // want `does not resolve to xkaapi/internal/jobfail.PanicError`
)

var _ = PanicError{}
