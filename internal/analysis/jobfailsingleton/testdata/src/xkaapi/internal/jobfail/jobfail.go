// Package jobfail mirrors the real definition site: a PanicError
// definition here is the one legal definition in the module.
package jobfail

// PanicError is allowed: this fixture package carries the canonical path.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return "panic" }
