// Package badgroup aliases the right type but with an ungrouped decl,
// violating the re-export convention the repo standardizes on.
package badgroup

import "xkaapi/internal/jobfail"

type PanicError = jobfail.PanicError // want `grouped alias form`

var _ = PanicError{}
