// Package okalias re-exports PanicError the approved way: a grouped
// alias resolving to the real internal/jobfail definition.
package okalias

import "xkaapi/internal/jobfail"

type (
	PanicError = jobfail.PanicError
)

var _ = PanicError{}
