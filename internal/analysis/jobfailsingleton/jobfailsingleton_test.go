package jobfailsingleton

import (
	"testing"

	"xkaapi/internal/analysis"
)

func TestAnalyzer(t *testing.T) {
	analysis.RunFixture(t, Analyzer,
		"xkaapi/internal/jobfail",
		"okalias",
		"baddef",
		"badgroup",
		"badtarget",
	)
}
