package core

import (
	"sync/atomic"

	"xkaapi/internal/jobfail"
)

// Adaptive is the handle a running task publishes to make its remaining work
// divisible (§II-D of the paper). While a worker has an Adaptive installed
// (see Worker.SetAdaptive), thieves that find the worker's deque empty invoke
// Split to carve tasks out of the running computation instead of failing.
//
// Split executes on the thief, concurrently with the victim's task body; the
// two coordinate through whatever shared state the adaptive computation uses
// (for loops, an Interval). The runtime guarantees that at most one thief
// runs Split for a given victim at a time — it is called under the victim's
// combiner lock — which the paper notes "allows for simple and efficient
// synchronization protocols".
type Adaptive struct {
	// Split returns at most n ready-to-run tasks representing work removed
	// from the running task. It must tolerate the victim concurrently
	// draining the work to zero and simply return fewer (or no) tasks.
	Split func(thief *Worker, n int) []*Task

	// job is the job of the task that installed the splitter, captured by
	// Worker.SetAdaptive. A panic inside Split — which executes on a thief,
	// not the victim — fails this job, and tasks produced by Split inherit
	// it as their cancel scope.
	job *Job
}

// split invokes ad.Split on thief w with a panic barrier: a panicking
// splitter fails the installing task's job and yields no tasks instead of
// unwinding (and killing) the thief. Callers must hold the victim's
// combiner lock, as for Split itself. Tasks returned without a job inherit
// the splitter's.
func (ad *Adaptive) split(w *Worker, n int) (out []*Task) {
	// Tasks a panicking splitter already built are unreachable (the panic
	// discards its return value) and will never execute, so account them as
	// cancelled to keep the quiescent Spawned == Executed + Cancelled
	// invariant. Crediting cancelled — rather than rolling spawned back —
	// preserves the live-stats contract that every counter is monotone:
	// only the thief itself creates tasks during Split, all against w's own
	// counters (spawnedTotal includes w's unpublished increment cache), so
	// the delta below is exact. The flush publishes the spawn counts the
	// cancelled credit balances against, so the invariant holds as soon as
	// the job drains, not a batch window later.
	preSpawned := w.spawnedTotal()
	defer func() {
		if r := recover(); r != nil {
			w.stats.panicked.Add(1)
			if lost := w.spawnedTotal() - preSpawned; lost > 0 {
				w.stats.cancelled.Add(lost)
			}
			w.flushStats()
			if ad.job != nil {
				ad.job.fail(jobfail.Capture(r))
			}
			out = nil
		}
	}()
	out = ad.Split(w, n)
	for _, t := range out {
		if t.job == nil {
			t.job = ad.job
		}
	}
	return out
}

// Interval is a half-open iteration range [Lo,Hi) supporting concurrent
// front extraction by its owner and back extraction by a splitter. Both
// bounds live in one 64-bit word updated by compare-and-swap, giving the
// atomicity the paper obtains with a T.H.E.-like two-bound protocol on the
// loop indices (§II-E): the owner advances the front, thieves retreat the
// back, and a failed CAS replays the (cheap) extraction.
//
// The width of the interval must fit in 31 bits; parallel loops over larger
// spaces are pre-partitioned into slices (see loop.go), so the limit is
// never user-visible.
type Interval struct {
	base int64
	bits atomic.Uint64 // high 32 bits: lo offset; low 32 bits: hi offset
}

const intervalMaxWidth = 1<<31 - 1

func packBounds(lo, hi uint32) uint64 { return uint64(lo)<<32 | uint64(hi) }

func unpackBounds(b uint64) (lo, hi uint32) { return uint32(b >> 32), uint32(b) }

// Reset reinitializes the interval to [lo, hi). hi-lo must fit in 31 bits.
func (iv *Interval) Reset(lo, hi int64) {
	if hi < lo {
		hi = lo
	}
	if hi-lo > intervalMaxWidth {
		panic("core: interval wider than 2^31-1 iterations")
	}
	iv.base = lo
	iv.bits.Store(packBounds(0, uint32(hi-lo)))
}

// Remaining returns a snapshot of the number of unclaimed iterations.
func (iv *Interval) Remaining() int64 {
	lo, hi := unpackBounds(iv.bits.Load())
	if hi <= lo {
		return 0
	}
	return int64(hi - lo)
}

// ExtractFront atomically claims up to n iterations from the front and
// returns the claimed range. ok is false when the interval is empty.
func (iv *Interval) ExtractFront(n int64) (lo, hi int64, ok bool) {
	for {
		b := iv.bits.Load()
		l, h := unpackBounds(b)
		if l >= h {
			return 0, 0, false
		}
		take := int64(h - l)
		if take > n {
			take = n
		}
		nl := l + uint32(take)
		if iv.bits.CompareAndSwap(b, packBounds(nl, h)) {
			return iv.base + int64(l), iv.base + int64(nl), true
		}
	}
}

// ExtractBack atomically claims up to n iterations from the back and returns
// the claimed range. ok is false when the interval is empty.
func (iv *Interval) ExtractBack(n int64) (lo, hi int64, ok bool) {
	for {
		b := iv.bits.Load()
		l, h := unpackBounds(b)
		if l >= h {
			return 0, 0, false
		}
		take := int64(h - l)
		if take > n {
			take = n
		}
		nh := h - uint32(take)
		if iv.bits.CompareAndSwap(b, packBounds(l, nh)) {
			return iv.base + int64(nh), iv.base + int64(h), true
		}
	}
}
