package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"xkaapi/internal/chaos"
)

// jobStatsStressPool is the slice of the Pool surface this stress test
// needs, so one harness covers a single Runtime and a sharded Fleet.
type jobStatsStressPool interface {
	Submit(fn func(*Worker)) *Job
	Stats() Stats
	Wait() error
}

// stressJobStats submits a batch of deterministic spawn trees, watches every
// job's Stats mid-flight from dedicated goroutines, and then checks the
// quiescent contracts. The mid-flight contract for the batched Executed
// counter is monotonicity: snapshots are lower bounds that only grow, never
// overshoot (a snapshot above the final exact count would prove the cache
// double-published). The quiescent contracts are exactness per job and the
// pool-wide Spawned == Executed + Cancelled balance. Chaos worker stalls
// (seeded, so the fault pattern replays) stretch the in-flight window and
// force flush-at-park transitions to happen mid-observation.
func stressJobStats(t *testing.T, pool jobStatsStressPool) {
	const (
		jobs  = 24
		width = 48 // children per root; each job executes width+1 bodies
	)
	handles := make([]*Job, jobs)
	for i := range handles {
		handles[i] = pool.Submit(func(w *Worker) {
			for k := 0; k < width; k++ {
				w.Spawn(func(*Worker) {})
			}
			w.Sync()
		})
	}

	var wg sync.WaitGroup
	for i, j := range handles {
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			var prev JobStats
			for !j.Done() {
				s := j.Stats()
				if s.Executed < prev.Executed || s.Cancelled < prev.Cancelled || s.Panicked < prev.Panicked {
					t.Errorf("job %d stats went backwards: %+v after %+v", i, s, prev)
					return
				}
				if s.Executed > width+1 {
					t.Errorf("job %d mid-flight Executed = %d overshoots the true count %d", i, s.Executed, width+1)
					return
				}
				prev = s
				runtime.Gosched()
			}
		}(i, j)
	}

	for i, j := range handles {
		if err := j.Wait(); err != nil {
			t.Fatalf("job %d failed: %v", i, err)
		}
	}
	wg.Wait()

	// Quiescence: exact per-job counts once the workers' last batches land
	// (their own idle transitions, microseconds behind Wait).
	for i, j := range handles {
		waitJobStats(t, fmt.Sprintf("job %d", i), j, JobStats{Executed: width + 1})
	}
	if err := pool.Wait(); err != nil {
		t.Fatalf("pool drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := pool.Stats()
		if s.Spawned == s.Executed+s.Cancelled {
			if want := int64(jobs * (width + 1)); s.Executed != want {
				t.Errorf("quiescent Executed = %d, want %d", s.Executed, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never balanced: spawned=%d executed=%d cancelled=%d",
				s.Spawned, s.Executed, s.Cancelled)
		}
		runtime.Gosched()
	}
}

// TestJobStatsStress runs the mid-flight stats contract under seeded chaos
// worker stalls, on a single Runtime and on a sharded Fleet (where roots
// land on different shards and cross-shard steals migrate the per-job
// batches between workers of different runtimes).
func TestJobStatsStress(t *testing.T) {
	scenario := chaos.Scenario{
		Seed:        7,
		WorkerStall: chaos.Pulse{Prob: 0.02, For: 100 * time.Microsecond},
	}
	t.Run("runtime", func(t *testing.T) {
		rt := NewRuntime(Config{Workers: 4, DisablePinning: true, Chaos: chaos.New(scenario)})
		defer rt.Close()
		stressJobStats(t, rt)
	})
	t.Run("fleet", func(t *testing.T) {
		f := NewFleet(FleetConfig{
			Shards:    2,
			ShardSize: 2,
			Runtime:   Config{DisablePinning: true, Chaos: chaos.New(scenario)},
		})
		defer f.Close()
		stressJobStats(t, f)
	})
}
