package core

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitJobStats polls j.Stats until it equals want or the deadline expires.
// Job.Stats is exact only at quiescence: after Job.Wait returns, workers
// other than the one that completed the root may still hold a per-job
// executed batch in their caches, published within their own idle
// transitions (park, failed steal round) microseconds later. Tests that
// assert exact per-job counts on a multi-worker pool therefore poll the
// flush out instead of racing it.
func waitJobStats(t *testing.T, name string, j *Job, want JobStats) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := j.Stats()
		if s == want {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%s stats = %+v, want %+v (after quiescence)", name, s, want)
			return
		}
		runtime.Gosched()
	}
}

// TestJobStatsAttribution checks that task outcomes are attributed to the
// job that owns them: two concurrent jobs of different widths must report
// disjoint, exact Executed counts once their workers have flushed.
func TestJobStatsAttribution(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, DisablePinning: true})
	defer rt.Close()

	spawnTree := func(n int) func(*Worker) {
		return func(w *Worker) {
			for i := 0; i < n; i++ {
				w.Spawn(func(*Worker) {})
			}
			w.Sync()
		}
	}
	ja := rt.Submit(spawnTree(10))
	jb := rt.Submit(spawnTree(25))
	if err := ja.Wait(); err != nil {
		t.Fatalf("job A failed: %v", err)
	}
	if err := jb.Wait(); err != nil {
		t.Fatalf("job B failed: %v", err)
	}
	waitJobStats(t, "job A", ja, JobStats{Executed: 11})
	waitJobStats(t, "job B", jb, JobStats{Executed: 26})
}

// TestJobStatsPanicAttribution checks that a panicking task increments the
// owning job's Panicked counter and that the tasks skipped afterwards are
// attributed to the same job's Cancelled counter, while an innocent
// concurrent job stays clean.
func TestJobStatsPanicAttribution(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()

	bad := rt.Submit(func(w *Worker) {
		w.Spawn(func(*Worker) { panic("boom") })
		w.Sync()
		// The job is failed by now; these children are cancelled (eagerly
		// or at execution), never executed.
		for i := 0; i < 8; i++ {
			w.Spawn(func(*Worker) { t.Error("task of failed job executed") })
		}
		w.Sync()
	})
	good := rt.Submit(func(w *Worker) {
		for i := 0; i < 8; i++ {
			w.Spawn(func(*Worker) {})
		}
		w.Sync()
	})

	var pe *PanicError
	if err := bad.Wait(); !errors.As(err, &pe) {
		t.Fatalf("bad job error = %v, want *PanicError", err)
	}
	if err := good.Wait(); err != nil {
		t.Fatalf("good job failed: %v", err)
	}
	// Panicked and Cancelled are bumped directly (no cache) and are exact
	// the moment Wait returns; Executed needs the flush, so both jobs are
	// checked through the quiescence poll. The bad job executed two bodies
	// — its root and the panicking child (a body that panics still ran) —
	// and the 8 post-failure spawns were cancelled eagerly.
	waitJobStats(t, "bad job", bad, JobStats{Executed: 2, Cancelled: 8, Panicked: 1})
	waitJobStats(t, "good job", good, JobStats{Executed: 9})
}

// TestEagerCancelNoDequeTraffic asserts the eager-cancel path: once a job
// has failed, Spawn and SpawnTask from its tasks produce no deque traffic
// at all — the children are counted spawned-and-cancelled without ever
// being allocated or pushed.
func TestEagerCancelNoDequeTraffic(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1, DisablePinning: true})
	defer rt.Close()

	const extra = 16
	var dequeAfterSpawn atomic.Int64 // max deque size observed after a dead spawn
	var h Handle
	j := rt.Submit(func(w *Worker) {
		w.Spawn(func(*Worker) { panic("fail early") })
		w.Sync()
		if !w.JobFailed() {
			t.Error("job not failed after panicking child synced")
		}
		// Every spawn below lands on a failed job: with eager cancel the
		// owner deque must stay empty (1 worker: nobody else can pop it
		// between the spawn and the probe).
		for i := 0; i < extra; i++ {
			w.Spawn(func(*Worker) {})
			if n := w.deque.size(); n > dequeAfterSpawn.Load() {
				dequeAfterSpawn.Store(n)
			}
		}
		w.SpawnTask(func(*Worker) {}, Access{Handle: &h, Mode: ModeWrite})
		if n := w.deque.size(); n > dequeAfterSpawn.Load() {
			dequeAfterSpawn.Store(n)
		}
	})

	var pe *PanicError
	if err := j.Wait(); !errors.As(err, &pe) {
		t.Fatalf("job error = %v, want *PanicError", err)
	}
	if n := dequeAfterSpawn.Load(); n != 0 {
		t.Errorf("deque size after spawn on failed job = %d, want 0 (eager cancel)", n)
	}
	js := j.Stats()
	if js.Cancelled != extra+1 {
		t.Errorf("job Cancelled = %d, want %d", js.Cancelled, extra+1)
	}
	rt.Wait()
	s := rt.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Errorf("counter imbalance: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestWaitAggregatesErrors checks that Runtime.Wait returns the joined
// failures of the drained jobs, and that a failure is reported by exactly
// one drain.
func TestWaitAggregatesErrors(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()

	rt.Submit(func(*Worker) {}).Wait()
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait after success = %v, want nil", err)
	}

	for i := 0; i < 3; i++ {
		rt.Submit(func(*Worker) { panic("wait-agg") })
	}
	rt.Submit(func(*Worker) {})
	err := rt.Wait()
	if err == nil {
		t.Fatal("Wait = nil, want aggregated failures")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("aggregated error %v does not expose *PanicError", err)
	}
	if n := strings.Count(err.Error(), "wait-agg"); n != 3 {
		t.Errorf("aggregated error mentions %d failures, want 3", n)
	}
	// The drain consumed the failures: the next Wait is clean.
	if err := rt.Wait(); err != nil {
		t.Errorf("second Wait = %v, want nil", err)
	}
}

// TestWaitErrorCap checks that a flood of failures is capped: Wait retains
// maxDrainErrs individual errors and summarizes the rest by count.
func TestWaitErrorCap(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()

	const n = maxDrainErrs + 7
	for i := 0; i < n; i++ {
		rt.Submit(func(*Worker) { panic("flood") }).Wait()
	}
	err := rt.Wait()
	if err == nil {
		t.Fatal("Wait = nil, want aggregated failures")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("aggregated error %v does not expose *PanicError", err)
	}
	if !strings.Contains(err.Error(), "7 more job failure(s) elided") {
		t.Errorf("aggregated error %q does not summarize the elided failures", err)
	}
}
