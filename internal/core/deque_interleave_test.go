package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"xkaapi/internal/xrand"
)

// claimTracker asserts every task out of a deque is delivered exactly once,
// whichever side (owner pop or thief CAS-steal) obtained it.
type claimTracker struct {
	t        *testing.T
	index    map[*Task]int
	claimed  []atomic.Int32
	nClaimed atomic.Int64
}

func newClaimTracker(t *testing.T, tasks []Task) *claimTracker {
	ct := &claimTracker{
		t:       t,
		index:   make(map[*Task]int, len(tasks)),
		claimed: make([]atomic.Int32, len(tasks)),
	}
	for i := range tasks {
		ct.index[&tasks[i]] = i
	}
	return ct
}

func (ct *claimTracker) claim(task *Task, who string) {
	i, ok := ct.index[task]
	if !ok {
		ct.t.Errorf("%s claimed unknown task %p", who, task)
		return
	}
	if n := ct.claimed[i].Add(1); n != 1 {
		ct.t.Errorf("task %d claimed %d times (last by %s)", i, n, who)
	}
	ct.nClaimed.Add(1)
}

func (ct *claimTracker) verify(total int) {
	if got := ct.nClaimed.Load(); got != int64(total) {
		ct.t.Fatalf("claimed %d tasks, want %d", got, total)
	}
	for i := range ct.claimed {
		if n := ct.claimed[i].Load(); n != 1 {
			ct.t.Errorf("task %d claimed %d times", i, n)
		}
	}
}

// TestDequeOwnerThiefInterleaving is a randomized torture test of the
// Chase–Lev protocol: one owner goroutine pushes and pops at the bottom
// while several thieves hammer the CAS steal at the top, with random
// interleavings. Every task must be claimed exactly once — the owner/thief
// race on the last remaining task (decided by the head CAS, with no lock
// anywhere) must never duplicate or lose a task. The submission inbox leans
// on exactly these edge cases: a worker that claims an inbox root
// immediately pushes the root's children onto its deque while freshly woken
// thieves attack the same deque.
func TestDequeOwnerThiefInterleaving(t *testing.T) {
	for _, thieves := range []int{1, 3, 8} {
		thieves := thieves
		t.Run(fmt.Sprintf("thieves=%d", thieves), func(t *testing.T) {
			total := 10_000
			if testing.Short() {
				total = 2_000
			}

			var d deque
			d.init()
			tasks := make([]Task, total)
			ct := newClaimTracker(t, tasks)

			var stop atomic.Bool
			var wg sync.WaitGroup
			for th := 0; th < thieves; th++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := xrand.New(uint64(id)*0x9E3779B97F4A7C15 + 1)
					for !stop.Load() {
						if task := d.steal(); task != nil {
							ct.claim(task, "thief")
						}
						if rng.Intn(8) == 0 {
							runtime.Gosched()
						}
					}
				}(th)
			}

			// Owner: push tasks in random bursts, pop in random bursts, so
			// the bottom keeps crossing the top (the single-task CAS race)
			// and the buffer repeatedly empties and refills.
			rng := xrand.New(0xDECAFBAD)
			next := 0
			for next < total || ct.nClaimed.Load() < int64(total) {
				for burst := rng.Intn(4) + 1; burst > 0 && next < total; burst-- {
					d.push(&tasks[next])
					next++
				}
				for burst := rng.Intn(3); burst > 0; burst-- {
					if task := d.pop(); task != nil {
						ct.claim(task, "owner")
					}
				}
				if next == total {
					// Everything pushed: drain the rest against the thieves.
					if task := d.pop(); task != nil {
						ct.claim(task, "owner")
					} else if ct.nClaimed.Load() < int64(total) {
						runtime.Gosched()
					}
				}
				if rng.Intn(16) == 0 {
					runtime.Gosched()
				}
			}
			stop.Store(true)
			wg.Wait()

			ct.verify(total)
			if sz := d.size(); sz != 0 {
				t.Fatalf("deque not empty at end: size=%d", sz)
			}
		})
	}
}

// TestDequeOwnerPopVsStealLastTask isolates the one contended transition of
// the protocol: a single task in the deque with the owner popping and
// thieves stealing simultaneously. Exactly one side must win each round —
// a double delivery means the head CAS is not the unique arbiter, a lost
// round means a claim evaporated.
func TestDequeOwnerPopVsStealLastTask(t *testing.T) {
	rounds := 20_000
	if testing.Short() {
		rounds = 4_000
	}
	const thieves = 2

	var d deque
	d.init()
	tasks := make([]Task, rounds)
	ct := newClaimTracker(t, tasks)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if task := d.steal(); task != nil {
					ct.claim(task, "thief")
				}
			}
		}()
	}

	for i := 0; i < rounds; i++ {
		d.push(&tasks[i])
		// Owner races the thieves for the single queued task. If the pop
		// loses, the winning thief has it; either way round i is claimed
		// exactly once, which verify() checks at the end.
		if task := d.pop(); task != nil {
			ct.claim(task, "owner")
		}
	}
	// Wait until the thieves have banked every round they won.
	for ct.nClaimed.Load() < int64(rounds) {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	ct.verify(rounds)
}

// TestDequeStealVsGrow interleaves thief CAS-steals with owner pushes that
// repeatedly outgrow the buffer, exercising the lock-free growth path: a
// thief may read an index from the old buffer and CAS against head after
// the owner has already published the doubled copy. No task may be lost or
// duplicated across the buffer generations.
func TestDequeStealVsGrow(t *testing.T) {
	total := dequeInitCap * 64 // forces several doublings while thieves run
	if testing.Short() {
		total = dequeInitCap * 16
	}
	const thieves = 3

	var d deque
	d.init()
	tasks := make([]Task, total)
	ct := newClaimTracker(t, tasks)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id)*0xA24BAED4963EE407 + 1)
			for !stop.Load() {
				if task := d.steal(); task != nil {
					ct.claim(task, "thief")
				}
				if rng.Intn(32) == 0 {
					runtime.Gosched()
				}
			}
		}(th)
	}

	// Owner: push everything without popping, so tail outruns head and the
	// buffer must double whenever the thieves fall behind; pop the leftovers
	// at the end against the still-running thieves. The grow check happens
	// here, before the drain: once the owner pops the deque empty, the
	// quiescence shrink resets the buffer to its initial size by design.
	for i := 0; i < total; i++ {
		d.push(&tasks[i])
	}
	grewTo := d.buf.Load().mask + 1
	for {
		if task := d.pop(); task != nil {
			ct.claim(task, "owner")
			continue
		}
		if ct.nClaimed.Load() >= int64(total) {
			break
		}
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	ct.verify(total)
	if grewTo < int64(dequeInitCap*2) {
		t.Fatalf("buffer never grew: cap=%d (the test must exercise grow)", grewTo)
	}
	if buf := d.buf.Load(); buf.mask+1 != int64(dequeInitCap) {
		t.Fatalf("buffer not shrunk after the owner drained it: cap=%d", buf.mask+1)
	}
}

// TestDequeMultiThiefStress is a randomized stress of the full protocol
// under the race detector: many thieves with random backoff against an
// owner doing random push/pop/grow bursts, across several seeds. Asserts
// the exactly-once delivery invariant the scheduler depends on (a lost
// task hangs a job; a duplicated task double-executes and corrupts frames).
func TestDequeMultiThiefStress(t *testing.T) {
	seeds := []uint64{1, 0xBADC0FFEE, 0x5EED5EED5EED}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			total := 30_000
			thieves := 4
			if testing.Short() {
				total = 5_000
			}

			var d deque
			d.init()
			tasks := make([]Task, total)
			ct := newClaimTracker(t, tasks)

			var stop atomic.Bool
			var wg sync.WaitGroup
			for th := 0; th < thieves; th++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := xrand.New(seed ^ (uint64(id+1) * 0x9E3779B97F4A7C15))
					for !stop.Load() {
						if task := d.steal(); task != nil {
							ct.claim(task, "thief")
						}
						if rng.Intn(4) == 0 {
							runtime.Gosched()
						}
					}
				}(th)
			}

			rng := xrand.New(seed)
			next := 0
			for next < total || ct.nClaimed.Load() < int64(total) {
				switch rng.Intn(4) {
				case 0: // large burst: pressure the grow path
					for burst := rng.Intn(200) + 1; burst > 0 && next < total; burst-- {
						d.push(&tasks[next])
						next++
					}
				case 1: // small burst
					for burst := rng.Intn(4) + 1; burst > 0 && next < total; burst-- {
						d.push(&tasks[next])
						next++
					}
				case 2: // pop burst: drive the bottom back into the top
					for burst := rng.Intn(8); burst > 0; burst-- {
						if task := d.pop(); task != nil {
							ct.claim(task, "owner")
						}
					}
				default:
					runtime.Gosched()
				}
				if next == total {
					if task := d.pop(); task != nil {
						ct.claim(task, "owner")
					} else if ct.nClaimed.Load() < int64(total) {
						runtime.Gosched()
					}
				}
			}
			stop.Store(true)
			wg.Wait()
			ct.verify(total)
		})
	}
}
