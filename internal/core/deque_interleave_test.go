package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"xkaapi/internal/xrand"
)

// TestDequeOwnerThiefInterleaving is a randomized torture test of the
// T.H.E. protocol: one owner goroutine pushes and pops at the bottom while
// several thieves hammer stealLocked at the top, with random interleavings.
// Every task must be claimed exactly once — the owner/thief race on the
// last remaining task (resolved under mu) must never duplicate or lose a
// task. The new submission inbox leans on exactly these edge cases: a
// worker that claims an inbox root immediately pushes the root's children
// onto its deque while freshly woken thieves attack the same deque.
func TestDequeOwnerThiefInterleaving(t *testing.T) {
	total := 10_000
	thieves := 3
	if testing.Short() {
		total = 2_000
	}

	var d deque
	d.init()

	tasks := make([]Task, total)
	index := make(map[*Task]int, total)
	for i := range tasks {
		index[&tasks[i]] = i
	}
	claimed := make([]atomic.Int32, total)
	var nClaimed atomic.Int64

	claim := func(task *Task, who string) {
		i, ok := index[task]
		if !ok {
			t.Errorf("%s claimed unknown task %p", who, task)
			return
		}
		if n := claimed[i].Add(1); n != 1 {
			t.Errorf("task %d claimed %d times (last by %s)", i, n, who)
		}
		nClaimed.Add(1)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id)*0x9E3779B97F4A7C15 + 1)
			for !stop.Load() {
				d.mu.Lock()
				task := d.stealLocked()
				d.mu.Unlock()
				if task != nil {
					claim(task, "thief")
				}
				if rng.Intn(8) == 0 {
					runtime.Gosched()
				}
			}
		}(th)
	}

	// Owner: push tasks in random bursts, pop in random bursts, so the
	// bottom keeps crossing the top (the b == h conflict path) and the
	// buffer repeatedly empties, refills and grows.
	rng := xrand.New(0xDECAFBAD)
	next := 0
	for next < total || nClaimed.Load() < int64(total) {
		for burst := rng.Intn(4) + 1; burst > 0 && next < total; burst-- {
			d.push(&tasks[next])
			next++
		}
		for burst := rng.Intn(3); burst > 0; burst-- {
			if task := d.pop(); task != nil {
				claim(task, "owner")
			}
		}
		if next == total {
			// Everything pushed: drain the rest against the thieves.
			if task := d.pop(); task != nil {
				claim(task, "owner")
			} else if nClaimed.Load() < int64(total) {
				runtime.Gosched()
			}
		}
		if rng.Intn(16) == 0 {
			runtime.Gosched()
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := nClaimed.Load(); got != int64(total) {
		t.Fatalf("claimed %d tasks, want %d", got, total)
	}
	for i := range claimed {
		if n := claimed[i].Load(); n != 1 {
			t.Errorf("task %d claimed %d times", i, n)
		}
	}
	if sz := d.size(); sz != 0 {
		t.Fatalf("deque not empty at end: size=%d", sz)
	}
}
