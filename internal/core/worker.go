//xk:hotpath — the worker's spawn/pop/execute loop is the per-task fast
// path; xkvet rejects blocking or allocating constructs in this file.
// The deliberate slow paths (park, the idle backoff) are marked
// //xk:coldpath / //xk:allow(hotpath) below.

package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi/internal/chaos"
	"xkaapi/internal/jobfail"
	"xkaapi/internal/xrand"
)

// Worker is one scheduling thread of the runtime. By default the runtime
// creates one worker per core (§II of the paper); each worker owns a deque of
// ready tasks, a request box through which thieves ask it for work, and a
// free list of recycled Task objects.
//
// A Worker is handed to every task body as its execution context: spawning,
// syncing and parallel loops are methods on it. Task bodies must only use the
// Worker they were given, and only while they run.
type Worker struct {
	id  int
	rt  *Runtime
	cur *Task // task currently being executed

	// frameKids is the owner-local half of the current frame's child
	// counter — the Cilk-style split that keeps frame accounting off the
	// LOCK-prefixed path: Spawn increments it with a plain add, and a child
	// completed by this worker while its parent is still the current frame
	// decrements it the same way. Only a child completed elsewhere (stolen,
	// or a dataflow release landing on another worker — equivalently,
	// whenever the completer's w.cur is not the parent) touches the shared
	// atomic, by decrementing the parent's children counter below zero. The
	// frame's outstanding-children count is therefore the sum
	// frameKids + children.Load(), exact at all times: frameKids ≥ 0 is
	// spawned minus locally-completed, children ≤ 0 is minus
	// remotely-completed. execute saves and zeroes frameKids around every
	// nested task, so the field always belongs to w.cur's frame.
	frameKids int32

	freeList   *Task
	freeLen    int // tasks on freeList (caps recycling; slab.go)
	rng        xrand.Rand
	reqScratch []int

	// Cached empty-sweep state for the work-presence epoch (epoch.go).
	// Owner only: sweepValid marks that the last full steal sweep, taken
	// at shard epoch sweepEpoch, found every victim empty.
	sweepEpoch uint64
	sweepValid bool

	stats workerStats
	cache statCache // batched spawned/executed increments (owner-only)

	deque    deque
	adaptive atomic.Pointer[Adaptive]
	comb     sync.Mutex // combiner election lock (request.go)
	reqs     []request  // request box; slot i belongs to worker i
}

// noteSpawned counts one task creation against the worker's increment
// cache; the published atomic advances every statFlushEvery increments and
// at the flush points (idle, park, root completion, exit). This is the
// batched-counter optimization: the amortized cost per task is one plain
// increment instead of a LOCK-prefixed RMW.
func (w *Worker) noteSpawned() {
	c := &w.cache
	if c.pending == 0 {
		c.dirty.Store(true)
	}
	c.spawned++
	c.pending++
	if c.pending >= statFlushEvery {
		w.flushStats()
	}
}

// noteExecuted counts one executed task body (see noteSpawned) and
// attributes it to j's per-job counters through the same cache: while the
// worker keeps executing tasks of one job — the common case, a tree of
// spawns — the attribution is a plain private increment, and the shared
// jobfail.Counters RMW is paid once per batch, job switch or idle
// transition instead of once per task. Job.Stats consequently reads an
// approximate (monotone lower-bound) Executed while the job is in flight;
// see Job.Stats for the exactness contract.
func (w *Worker) noteExecuted(j *Job) {
	c := &w.cache
	if c.pending == 0 {
		c.dirty.Store(true)
	}
	c.executed++
	c.pending++
	if j != c.job {
		w.switchJobCache(j)
	}
	if j != nil {
		c.jobExecuted++
	}
	if c.pending >= statFlushEvery {
		w.flushStats()
	}
}

// switchJobCache publishes the cached per-job executed batch of the
// previous job and re-keys the cache to j. Out of the inlined hot path:
// it runs once per job switch (a worker interleaving two jobs' tasks),
// not once per task.
func (w *Worker) switchJobCache(j *Job) {
	c := &w.cache
	if c.job != nil {
		c.job.counts.AddExecuted(c.jobExecuted)
	}
	c.job = j
	c.jobExecuted = 0
}

// spawnedTotal is the worker's spawn count including the unpublished
// cache; owner-only (the adaptive splitter uses it to compute exact
// rollback deltas).
func (w *Worker) spawnedTotal() int64 {
	return w.stats.spawned.Load() + w.cache.spawned
}

// flushStats publishes the worker's cached increments into the padded
// atomics any goroutine may read. Owner-only; called every statFlushEvery
// increments and whenever the worker transitions toward idleness, so a
// quiescent pool always has fully published counters. A fleet shard also
// advances its progress epoch here — one shared add per published executed
// batch, not per task — which is how the health supervisor tells a busy
// shard from a wedged one without touching the task path.
func (w *Worker) flushStats() {
	c := &w.cache
	if c.spawned != 0 {
		w.stats.spawned.Add(c.spawned)
		c.spawned = 0
	}
	if c.executed != 0 {
		w.stats.executed.Add(c.executed)
		c.executed = 0
		if rt := w.rt; rt.shardTotal > 0 {
			rt.progress.Add(1)
		}
	}
	if c.job != nil {
		// Publish the per-job executed batch and drop the job pointer: a
		// worker going idle must neither hold back attribution (the
		// flush-at-park contract behind Job.Stats' quiescent exactness)
		// nor keep a completed job reachable.
		c.job.counts.AddExecuted(c.jobExecuted)
		c.job = nil
		c.jobExecuted = 0
	}
	c.pending = 0
	c.dirty.Store(false)
}

// ID returns the worker index in [0, NumWorkers).
func (w *Worker) ID() int { return w.id }

// NumWorkers returns the number of workers of the runtime this worker
// belongs to.
func (w *Worker) NumWorkers() int { return len(w.rt.workers) }

// Runtime returns the runtime this worker belongs to.
func (w *Worker) Runtime() *Runtime { return w.rt }

// Spawn creates a child task of the current task and enqueues it on this
// worker's deque (non-blocking task creation, §II-B: the caller continues
// immediately). The child has no dataflow accesses; use SpawnTask for
// dependency-carrying tasks.
//
// Spawning into a job that has already failed cancels the child eagerly:
// no Task is allocated or enqueued, so a deep tree that fails early stops
// producing deque traffic at the spawn site instead of paying a push, a
// steal and a skip per dead task. The child is still accounted (Spawned and
// Cancelled both advance), keeping the Spawned == Executed + Cancelled
// invariant.
func (w *Worker) Spawn(fn func(*Worker)) {
	if w.cancelEagerly() {
		return
	}
	t := w.alloc()
	t.body = fn
	t.parent = w.cur
	if t.parent != nil {
		w.frameKids++ // owner-local; the atomic half only moves on remote completion
		t.job = t.parent.job
	}
	w.noteSpawned()
	w.deque.push(t)
	w.rt.maybeWake()
}

// cancelEagerly implements the eager-cancel fast path shared by Spawn and
// SpawnTask: if the current task's job has already failed, the child is
// counted as spawned-and-cancelled and never materialized. Execution-time
// skipping in execute remains as the backstop for tasks enqueued before the
// failure.
func (w *Worker) cancelEagerly() bool {
	cur := w.cur
	if cur == nil || cur.job == nil || !cur.job.aborted() {
		return false
	}
	w.noteSpawned()
	w.stats.cancelled.Add(1)
	cur.job.counts.Cancelled.Add(1)
	return true
}

// SpawnTask creates a child task that accesses shared data through the given
// handles and modes. The task becomes ready once every true dependency
// implied by the access modes is satisfied; until then it is retained by its
// predecessors and released onto the completing worker's deque.
//
// Like Spawn, SpawnTask on a failed job cancels the child eagerly: it is
// neither enqueued nor registered on its handles (safe because every other
// remaining task of the job is skipped too, so no live task can depend on
// the unregistered access).
func (w *Worker) SpawnTask(fn func(*Worker), accs ...Access) {
	if w.cancelEagerly() {
		return
	}
	t := w.alloc()
	t.body = fn
	t.parent = w.cur
	if t.parent != nil {
		w.frameKids++ // owner-local; the atomic half only moves on remote completion
		t.job = t.parent.job
	}
	w.noteSpawned()
	if len(accs) == 0 {
		w.deque.push(t)
		w.rt.maybeWake()
		return
	}
	t.flags |= flagHasAccess
	t.accs = append(t.accs[:0], accs...)
	t.wait.Store(1) // creation bias: not ready while registering
	for _, a := range t.accs {
		if a.Handle != nil {
			a.Handle.addAccess(t, a.Mode)
		}
	}
	if t.wait.Add(-1) == 0 {
		w.deque.push(t)
		w.rt.maybeWake()
	}
}

// Sync waits until every child task spawned so far by the current task, and
// transitively all their descendants, have completed. While waiting the
// worker schedules other ready work instead of blocking (work-first: the
// thread that would idle becomes a thief).
func (w *Worker) Sync() {
	if w.cur == nil {
		return
	}
	w.waitFrame(&w.cur.children)
}

// execute runs t to completion: body, implicit sync on children (the model
// is fully strict), then completion processing. A task whose job has
// already failed is cancelled: its body is skipped, but the completion
// bookkeeping (frame credit, successor release, job finish) still runs, so
// counters drain, dataflow frontiers stay consistent and the job always
// reaches Wait.
func (w *Worker) execute(t *Task) {
	// Any execution retires the cached empty sweep (epoch.go): the body may
	// run arbitrarily long and hand work to siblings in ways that do not
	// bump the epoch while nobody is parked, so a sweep taken before it is
	// too stale to skip on. One owner-private store; free on the hot path.
	w.sweepValid = false
	prev := w.cur
	prevKids := w.frameKids
	w.cur = t
	w.frameKids = 0
	// Loop-slice tasks are exempt from the skip: their body (loopRun)
	// observes the abort itself and instead of executing iterations credits
	// them back to the loop's pending count, which must drain to zero for
	// the ForEach caller to return. Skipping the task would strand its
	// interval and hang the loop.
	if j := t.job; j != nil && j.aborted() && t.flags&flagLoop == 0 {
		w.stats.cancelled.Add(1)
		j.counts.Cancelled.Add(1)
	} else {
		w.noteExecuted(t.job)
		w.runBody(t)
	}
	if w.frameKids+t.children.Load() != 0 {
		w.waitFrame(&t.children)
	}
	if t.children.Load() != 0 {
		// The frame drained with a nonzero residue: k children were stolen
		// and completed remotely (children == -k) while frameKids still
		// carried their spawn credits (frameKids == k). frameKids is about
		// to be overwritten by the restore below; rebalance children so the
		// descriptor recycles with the counter at rest. Conditional because
		// an atomic store compiles to an XCHG — in the common never-stolen
		// case the counter is already zero and the branch is free.
		t.children.Store(0)
	}
	w.cur = prev
	w.frameKids = prevKids
	w.complete(t)
}

// runBody invokes t's body with a panic barrier: a panicking body fails the
// task's job with a *PanicError (first panic wins) instead of unwinding the
// worker and killing the process. The abortUnwind sentinel — thrown to bail
// out of a body whose job already failed, e.g. by ForEach — is recognized
// and not counted as a user panic. A panic in a task with no job (only
// possible for a hand-built adaptive task outside any job) is rethrown:
// there is no handle to report it on.
func (w *Worker) runBody(t *Task) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if au, ok := r.(abortUnwind); ok {
			if t.job != nil {
				t.job.fail(au.err)
			}
			return
		}
		w.stats.panicked.Add(1)
		if t.job == nil {
			panic(r)
		}
		t.job.counts.Panicked.Add(1)
		t.job.fail(jobfail.Capture(r))
	}()
	// Chaos task-panic site: replace the body with an injected panic, inside
	// the barrier above so it takes the exact path a user panic takes. Loop
	// tasks are exempt — panicking before loopRun would strand the loop's
	// pending count (only runChunk's barrier credits iterations back); the
	// loop-panic site in runChunk covers that boundary instead.
	if cz := w.rt.chaos; cz != nil && t.flags&flagLoop == 0 && t.job != nil {
		if v, ok := cz.TaskPanic(); ok {
			panic(v)
		}
	}
	t.body(w)
}

// complete releases t's dataflow successors, credits its parent's frame,
// signals the job handle of an externally submitted root, and recycles the
// task object.
func (w *Worker) complete(t *Task) {
	if t.flags&flagHasAccess != 0 {
		t.mu.Lock()   //xk:allow(hotpath): per-task access mutex, dataflow tasks only
		t.done = true // contended only with a concurrent addAccess registration
		succ := t.succ
		t.mu.Unlock() //xk:allow(hotpath): see Lock above
		for _, s := range succ {
			if s.wait.Add(-1) == 0 {
				// The paper's ready-list optimization: a task made ready by
				// the completion of its last predecessor is enqueued on the
				// completer's deque, so a subsequent steal (or local pop) is
				// a constant-time operation rather than a stack traversal.
				w.stats.readyReleases.Add(1)
				w.deque.push(s)
				w.rt.maybeWake()
			}
		}
	}
	if p := t.parent; p != nil {
		if p == w.cur {
			// This worker is inside p's frame right now (w.cur is only ever
			// assigned by execute, and bodies run exactly once, so cur == p
			// means we are executing p): credit the owner-local half.
			w.frameKids--
		} else {
			// Stolen child, or a dataflow release completing away from its
			// parent's worker: the LOCK-prefixed decrement is the price of
			// remote completion only. The seq-cst RMW publishes the child's
			// effects to the parent's subsequent frame-drain load.
			p.children.Add(-1)
		}
	}
	if t.flags&flagRoot != 0 {
		// Publish this worker's cached counters before the job becomes
		// observable as done: a single-worker pool then satisfies the
		// quiescent Spawned == Executed + Cancelled invariant the moment
		// Wait returns (other workers publish on their own idle
		// transitions, microseconds behind).
		w.flushStats()
		j := t.job
		t.job = nil
		j.finish()
		// Roots recycle through rootPool, not the worker free list: their
		// descriptors are allocated by external submitters, which cannot
		// touch the owner-only lists, so completion hands them back to the
		// pool the submission path draws from.
		releaseRoot(t)
		return
	}
	w.recycle(t)
}

// waitFrame schedules ready work until the current frame's outstanding
// children drain: the owner-local w.frameKids (spawns minus local
// completions, ≥ 0) plus the shared balance in c (minus remote completions,
// ≤ 0) sum to the exact number of live children at every instant. Nested
// execute calls save, zero and restore frameKids around each task they run,
// so by the time schedOnce returns the field again belongs to the waiting
// frame and the re-check is sound.
func (w *Worker) waitFrame(c *atomic.Int32) {
	idle := 0
	for w.frameKids+c.Load() != 0 {
		if w.schedOnce() {
			idle = 0
			continue
		}
		idle++
		if idle == 1 {
			w.flushStats() // out of work: publish cached counters
		}
		if idle < idleSpinBeforeSleep {
			runtime.Gosched()
		} else {
			time.Sleep(idleSleep) //xk:allow(hotpath): idle backoff — out of work by definition
		}
	}
}

// waitCounter schedules ready work until *c drains to zero. Used for plain
// shared counters with no owner-local half (the ForEach pending count);
// frame drains go through waitFrame.
func (w *Worker) waitCounter(c *atomic.Int32) {
	idle := 0
	for c.Load() != 0 {
		if w.schedOnce() {
			idle = 0
			continue
		}
		idle++
		if idle == 1 {
			w.flushStats() // out of work: publish cached counters
		}
		if idle < idleSpinBeforeSleep {
			runtime.Gosched()
		} else {
			time.Sleep(idleSleep) //xk:allow(hotpath): idle backoff — out of work by definition
		}
	}
}

const (
	idleSpinBeforeSleep = 128
	idleSleep           = 20 * time.Microsecond
)

// schedOnce executes at most one ready task, preferring local work (pop,
// LIFO), then stealing (oldest task of a random victim), then a fresh root
// from the submission inbox. It reports whether a task was executed. The
// inbox comes last here so a worker waiting inside a frame leans toward
// finishing the computation it is part of before opening a new one; it is
// still polled so a pool saturated with waiters keeps accepting jobs.
func (w *Worker) schedOnce() bool {
	if t := w.deque.pop(); t != nil {
		w.execute(t)
		return true
	}
	if t, _ := w.trySteal(); t != nil {
		w.execute(t)
		return true
	}
	if t := w.rt.inbox.take(); t != nil {
		w.execute(t)
		return true
	}
	return false
}

// trySteal performs one round of steal attempts on randomly selected
// victims and returns a stolen task, or nil if the round failed. sawWork
// reports whether any probed victim even looked like it had work (non-empty
// deque or an open adaptive section): a round that swept every victim empty
// is the signal the backoff in run uses to park sooner instead of burning
// further probe sweeps on a mostly-idle pool. Every victim inspection is
// counted in StealProbes (one batched add per round), which is what makes
// the wasted-probe rate observable in /stats next to Parks.
func (w *Worker) trySteal() (t *Task, sawWork bool) {
	rt := w.rt
	n := len(rt.workers)
	if n == 1 {
		return nil, false
	}
	probes := int64(0)
	defer func() { w.stats.stealProbes.Add(probes) }()
	for attempt := 0; attempt < 2*n; attempt++ {
		v := rt.workers[w.rng.Intn(n)]
		if v == w {
			continue
		}
		probes++
		// Chaos steal-fail site: the probe is forced to miss, as if the
		// victim's deque emptied between selection and inspection. The probe
		// is still counted; sawWork is not set, so a fully blinded thief
		// backs off toward park like a thief on an idle pool.
		if cz := rt.chaos; cz != nil && cz.StealFail() {
			continue
		}
		// Cheap probe before posting a request.
		if v.deque.size() == 0 && v.adaptive.Load() == nil {
			continue
		}
		sawWork = true
		if rt.cfg.NoAggregation {
			if t := w.stealDirect(v); t != nil {
				return t, true
			}
			continue
		}
		if t, _ := w.stealFrom(v); t != nil {
			return t, true
		}
	}
	return nil, sawWork
}

// SetAdaptive installs ad as the splitter target for the task currently
// running on w and returns the previously installed value, which the caller
// must restore when the adaptive section ends. While installed, thieves that
// find w's deque empty call ad.Split to extract work from the running task
// (§II-D).
func (w *Worker) SetAdaptive(ad *Adaptive) *Adaptive {
	prev := w.adaptive.Load()
	if ad != nil && ad.job == nil && w.cur != nil {
		// Bind the splitter to the installing task's job so a panic inside
		// Split (which runs on a thief) is attributed to the right job, and
		// so tasks the splitter produces inherit the job's cancel scope.
		// Only a first install writes the binding: re-installing (or
		// restoring) an Adaptive a concurrent thief may still be splitting
		// must not race that thief's reads of ad.job. Consequently an
		// Adaptive value must not be reused across different jobs.
		ad.job = w.cur.job
	}
	w.adaptive.Store(ad)
	if ad != nil {
		w.rt.wakeAll()
	}
	return prev
}

// JobFailed reports (cheaply) whether the job of the task currently running
// on w has failed or been cancelled. Long-running or adaptive task bodies
// should poll it and return early when it flips: cancellation is
// cooperative for code already executing.
func (w *Worker) JobFailed() bool {
	return w.cur != nil && w.cur.job != nil && w.cur.job.aborted()
}

// JobErr returns the error of the current task's job: nil while the job is
// healthy, otherwise the first recorded failure.
func (w *Worker) JobErr() error {
	if w.cur == nil || w.cur.job == nil {
		return nil
	}
	return w.cur.job.Err()
}

// Context returns the context of the job the current task belongs to:
// derived from the SubmitCtx submission context (Background for Submit),
// carrying its deadline and values, and cancelled — with the failure as
// cause — the instant the job fails, is cancelled, or its parent context
// expires. Task bodies doing deadline-aware work (I/O, long kernels,
// blocking waits) should select on Context().Done() instead of polling
// JobFailed; the signal fires from any worker the instant a sibling
// panics, without waiting for this body to reach a scheduling point.
//
// For a task outside any job (a hand-built adaptive task) it returns
// context.Background(). The context is valid beyond the body's return —
// it is the job's, not the task's — but is cancelled once the job
// completes, successfully or not.
func (w *Worker) Context() context.Context {
	if w.cur != nil && w.cur.job != nil {
		return w.cur.job.Context()
	}
	return context.Background()
}

// NewAdaptiveTask wraps fn into a free-standing ready task, for returning
// from an Adaptive splitter. The task has no parent frame: user-level
// adaptive algorithms must track completion themselves (typically with a
// pending counter, as ForEach does), because the victim whose work was
// split may complete before the split-off tasks do.
func (w *Worker) NewAdaptiveTask(fn func(*Worker)) *Task {
	t := w.alloc()
	t.flags |= flagLoop
	t.body = fn
	w.noteSpawned()
	return t
}

// idleRoundsBeforePark is how many failed scheduling rounds a worker spins
// through (with Gosched between them) before parking on the condvar. A
// round whose steal sweep found every victim empty counts double — the
// steal-probe backoff: on a mostly-idle pool there is no evidence any work
// exists, so the worker stops paying 2N probes per round and goes to sleep
// in half the rounds, while a pool with observed-but-contended work keeps
// the full spin budget. park's final anyWork scan still closes the race
// with work produced during the last sweep.
const idleRoundsBeforePark = 4

// run is the main loop of a pool worker. At top level (no frame open) a
// fresh root from the inbox is preferred over stealing: a submitted job is
// guaranteed work, while a steal attempt may fail, and draining roots early
// exposes their parallelism to the other workers.
func (w *Worker) run() {
	rt := w.rt
	if !rt.cfg.DisablePinning {
		// One worker per core, pinned to an OS thread for the lifetime of
		// the runtime, mirroring the paper's thread-per-core pool. The Go
		// scheduler still owns thread placement, but a locked goroutine
		// never migrates or shares its thread.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	defer rt.wg.Done()   //xk:allow(hotpath): once per worker lifetime, not per task
	defer w.flushStats() // publish cached counters before Close's wg.Wait returns
	fails := 0
	for {
		if rt.stop.Load() {
			return
		}
		if cz := rt.chaos; cz != nil {
			w.chaosPause(cz) // stall / wedge sites; no-op on most draws
		}
		if t := w.deque.pop(); t != nil {
			w.execute(t)
			fails = 0
			continue
		}
		if t := rt.inbox.take(); t != nil {
			w.execute(t)
			fails = 0
			continue
		}
		// The steal sweep is gated by the work-presence epoch (epoch.go): if
		// the last sweep found every victim empty and nothing has been
		// published toward an idle pool since, 2N probes are provably futile
		// and the whole sweep is skipped. The epoch is read before the sweep
		// so a mid-sweep publication forces a re-sweep next round.
		var t *Task
		sawWork := false
		if w.sweepSkippable() {
			w.stats.epochSkips.Add(1)
		} else {
			epoch := rt.workEpoch.Load()
			t, sawWork = w.trySteal()
			if t == nil && !sawWork {
				w.noteEmptySweep(epoch)
			}
		}
		if t != nil {
			w.execute(t)
			fails = 0
			continue
		}
		// Cross-shard rebalancing is the last resort, tried only once the
		// whole home shard (deque, inbox, steal sweep) came up empty: pull a
		// queued root from a loaded sibling shard's inbox. Top level only —
		// a worker waiting inside a frame (waitCounter) leans toward
		// finishing the computation it is part of instead of opening a
		// sibling shard's job.
		if t := rt.stealRoot(); t != nil {
			w.execute(t)
			fails = 0
			continue
		}
		if fails == 0 {
			w.flushStats() // out of work: publish cached counters
		}
		fails++
		if !sawWork {
			fails++ // empty sweep: no evidence of work anywhere, park sooner
		}
		if fails < idleRoundsBeforePark {
			runtime.Gosched()
			continue
		}
		w.park()
		// Whatever park observed — a wake, an aborted park because anyWork
		// saw new tasks, or stop — the cached empty sweep predates it. This
		// invalidation is what makes the epoch skip safe for publications
		// that never bump (pushed while nobody was idle): park's scan sees
		// them, and the next round does a full sweep.
		w.sweepValid = false
		fails = 0
	}
}

// chaosSlice is the granularity of a chaos pause: the stalled worker sleeps
// in short slices, re-checking stop between them, so an injected stall or
// shard wedge can never hold Close hostage.
const chaosSlice = 500 * time.Microsecond

// chaosPause serves the worker-stall and shard-wedge chaos sites: a wedge
// window covering this worker's shard freezes it for the remainder of the
// window, otherwise a stall draw may pause it briefly. Counters are flushed
// first so the health supervisor sees progress up to the freeze — the point
// of the wedge site is that the *absence* of further progress is what trips
// the shard unhealthy. This is a deliberate injected slow path, hence the
// coldpath exemption.
//
//xk:coldpath
func (w *Worker) chaosPause(cz *chaos.Injector) {
	d := cz.WedgeRemaining(w.rt.shardIndex)
	if d == 0 {
		d = cz.WorkerStall()
		if d == 0 {
			return
		}
	}
	w.flushStats()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) && !w.rt.stop.Load() {
		time.Sleep(chaosSlice)
	}
}

// park blocks the worker until new work may exist. A final scan of all
// deques after advertising idleness closes the race with concurrent pushes.
// The condvar handoff is the point of the function: parking is the
// deliberate out-of-work slow path, hence the coldpath exemption.
//
//xk:coldpath
func (w *Worker) park() {
	w.flushStats() // a parked worker's counters are fully published
	rt := w.rt
	rt.idle.Add(1)
	w.stats.parks.Add(1)
	// The abort scan covers sibling shards too: cross-shard work published
	// before idle was advertised must not strand this worker asleep (the
	// fleet router's nudge only wakes workers it can see are idle).
	if rt.anyWork() || rt.siblingWork() || rt.stop.Load() {
		rt.idle.Add(-1)
		return
	}
	rt.parkMu.Lock()
	for rt.wakePending == 0 && !rt.stop.Load() {
		rt.parkCond.Wait()
	}
	if rt.wakePending > 0 {
		rt.wakePending--
	}
	rt.parkMu.Unlock()
	rt.idle.Add(-1)
}
