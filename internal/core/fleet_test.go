package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitDone polls j with a deadline so a routing or steal bug fails the test
// instead of hanging it.
func waitDone(t *testing.T, j *Job, d time.Duration, what string) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- j.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s failed: %v", what, err)
		}
	case <-time.After(d):
		t.Fatalf("%s did not complete within %v", what, d)
	}
}

// TestFleetRoutePlacement: with cross-shard stealing disabled, the router
// alone must keep the fleet live — a plain submit may not land behind the
// busy shard's blocked worker when an idle shard exists (least-load wins).
func TestFleetRoutePlacement(t *testing.T) {
	f := NewFleet(FleetConfig{Shards: 2, ShardSize: 1, NoSteal: true,
		Runtime: Config{DisablePinning: true}})
	defer f.Close()

	release := make(chan struct{})
	blocker := f.SubmitAffinity(context.Background(), 0, func(w *Worker) { <-release })

	// The blocker pins shard 0 (key 0 mod 2) and occupies its only worker;
	// shard 0's load is now 1 against shard 1's 0, so a non-affinity submit
	// must route to shard 1 and complete while shard 0 is stuck.
	ran := false
	j := f.Submit(func(w *Worker) { ran = true })
	waitDone(t, j, 10*time.Second, "submit routed around the blocked shard")
	if !ran {
		t.Fatal("routed job did not run")
	}
	if got := f.shards[1].Stats().Executed; got == 0 {
		t.Fatalf("idle shard executed nothing (executed=%d); least-load placement broken", got)
	}

	close(release)
	waitDone(t, blocker, 10*time.Second, "blocker")
}

// TestFleetAffinitySticks: jobs sharing an affinity key all land on the
// deterministic key-mod-shards shard; with stealing off, no other shard
// executes anything.
func TestFleetAffinitySticks(t *testing.T) {
	f := NewFleet(FleetConfig{Shards: 4, ShardSize: 1, NoSteal: true,
		Runtime: Config{DisablePinning: true}})
	defer f.Close()

	const key = 5 // pins shard 5 mod 4 = 1
	for i := 0; i < 8; i++ {
		f.SubmitAffinity(context.Background(), key, func(w *Worker) {})
	}
	if err := f.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, s := range f.shards {
		exec := s.Stats().Executed
		if i == int(key)%len(f.shards) {
			if exec != 8 {
				t.Fatalf("affinity shard %d executed %d jobs, want 8", i, exec)
			}
		} else if exec != 0 {
			t.Fatalf("shard %d executed %d jobs despite affinity pinning elsewhere", i, exec)
		}
	}
}

// TestFleetCrossShardStealUnderImbalance overloads one shard on purpose:
// four jobs pinned to shard 0 (one worker), whose bodies rendezvous — none
// returns until all four have started. The only way all four can run
// concurrently is for three of the queued roots to migrate to sibling
// shards via cross-shard stealing, so completion itself proves migration;
// the stolen_in counters then confirm the accounting.
func TestFleetCrossShardStealUnderImbalance(t *testing.T) {
	f := NewFleet(FleetConfig{Shards: 4, ShardSize: 1,
		Runtime: Config{DisablePinning: true}})
	defer f.Close()

	const hot = 4
	var started atomic.Int32
	release := make(chan struct{})
	jobs := make([]*Job, hot)
	for i := range jobs {
		jobs[i] = f.SubmitAffinity(context.Background(), 0, func(w *Worker) {
			started.Add(1)
			<-release
		})
	}

	// Keep the sibling shards' workers cycling with no-op jobs until every
	// hot job has started: a worker that wakes for its own root, finishes
	// it and finds nothing at home runs the cross-shard probe before
	// parking again, so each pump round gives every sibling a fresh chance
	// to pull a queued hot root over. The pump guarantees wake-ups, not
	// migration — migration is still only possible through stealRoot.
	deadline := time.After(10 * time.Second)
	for started.Load() < hot {
		for key := uint64(1); key < 4; key++ {
			f.SubmitAffinity(context.Background(), key, func(w *Worker) {})
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d hot jobs started; cross-shard steal is not migrating work", started.Load(), hot)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	for i, j := range jobs {
		waitDone(t, j, 10*time.Second, "hot job "+string(rune('0'+i)))
	}
	if err := f.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	var stolen int64
	for _, ss := range f.ShardStats() {
		stolen += ss.StolenIn
	}
	if stolen < hot-1 {
		t.Fatalf("stolen_in total = %d, want >= %d (three hot roots had to migrate)", stolen, hot-1)
	}
	// Migration moves execution, not accounting: the fleet-level balance
	// must still close exactly.
	s := f.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("fleet imbalance after migration: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestFleetDrainRefusesEverywhere: Close flips every shard's closing flag
// before any shard starts waiting for its drain, so while the fleet drains
// one blocked shard, a submit aimed at ANY shard — even one whose own
// queue was long empty — is already rejected with ErrClosed.
func TestFleetDrainRefusesEverywhere(t *testing.T) {
	f := NewFleet(FleetConfig{Shards: 4, ShardSize: 1, NoSteal: true,
		Runtime: Config{DisablePinning: true}})

	started := make(chan struct{})
	release := make(chan struct{})
	blocker := f.SubmitAffinity(context.Background(), 0, func(w *Worker) {
		close(started)
		<-release
	})
	<-started

	closed := make(chan struct{})
	go func() { f.Close(); close(closed) }()

	// Wait until every shard observed the flip; the flip phase does not
	// block (only the drain phase does, on shard 0's blocker).
	for {
		all := true
		for _, s := range f.shards {
			s.jobsMu.Lock()
			c := s.closing
			s.jobsMu.Unlock()
			if !c {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Close is still in progress (the blocker holds shard 0), yet the
	// last shard must already refuse direct submissions.
	select {
	case <-closed:
		t.Fatal("Close returned while the blocker still held shard 0")
	default:
	}
	j := f.shards[3].Submit(func(w *Worker) { t.Error("job ran on a draining fleet") })
	if err := j.Wait(); err != ErrClosed {
		t.Fatalf("submit to idle shard during fleet drain: err=%v, want ErrClosed", err)
	}

	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not finish after the blocker released")
	}
	waitDone(t, blocker, time.Second, "blocker")
	if j := f.Submit(func(*Worker) {}); j.Err() != ErrClosed {
		t.Fatalf("submit after Close: err=%v, want ErrClosed", j.Err())
	}
}

// TestFleetCloseSubmitStorm races a submit storm against Close: every job
// must either run to completion (registered before the fleet-wide flip) or
// come back pre-failed with ErrClosed — never hang, never run after the
// drain — and the fleet-level accounting must close.
func TestFleetCloseSubmitStorm(t *testing.T) {
	f := NewFleet(FleetConfig{Shards: 4, ShardSize: 1,
		Runtime: Config{DisablePinning: true}})

	const goroutines = 8
	const perG = 50
	var executed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var j *Job
				if i%2 == 0 {
					j = f.Submit(func(*Worker) { executed.Add(1) })
				} else {
					j = f.SubmitAffinity(context.Background(), uint64(g), func(*Worker) { executed.Add(1) })
				}
				errs <- j.Wait()
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	f.Close()
	wg.Wait()
	close(errs)

	completed := int64(0)
	for err := range errs {
		switch err {
		case nil:
			completed++
		case ErrClosed:
		default:
			t.Fatalf("storm job failed with %v, want nil or ErrClosed", err)
		}
	}
	if executed.Load() != completed {
		t.Fatalf("executed %d job bodies but %d jobs completed cleanly", executed.Load(), completed)
	}
	s := f.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("fleet imbalance after storm: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestFleetDefaults: zero-value knobs resolve to the documented defaults
// and a 1-shard fleet degrades to a plain pool with stealing off.
func TestFleetDefaults(t *testing.T) {
	f := NewFleet(FleetConfig{Shards: 2, ShardSize: 3,
		Runtime: Config{DisablePinning: true}})
	defer f.Close()
	if got := f.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2", got)
	}
	if got := f.NumWorkers(); got != 6 {
		t.Fatalf("NumWorkers() = %d, want 6", got)
	}
	if got := len(f.ShardStats()); got != 2 {
		t.Fatalf("len(ShardStats()) = %d, want 2", got)
	}

	one := NewFleet(FleetConfig{Shards: 1, ShardSize: 1,
		Runtime: Config{DisablePinning: true}})
	defer one.Close()
	if !one.noSteal {
		t.Fatal("1-shard fleet must disable cross-shard stealing")
	}
}

// TestShardAwareString: a fleet shard identifies itself as shard i/N, a
// standalone runtime keeps the classic format, and the fleet names its
// shape — so a log line can never pass a shard off as a whole pool.
func TestShardAwareString(t *testing.T) {
	f := NewFleet(FleetConfig{Shards: 2, ShardSize: 1,
		Runtime: Config{DisablePinning: true}})
	defer f.Close()
	if s := f.String(); !strings.Contains(s, "Fleet") || !strings.Contains(s, "shards: 2") {
		t.Fatalf("Fleet.String() = %q, want shard count", s)
	}
	if s := f.shards[1].String(); !strings.Contains(s, "shard: 1/2") {
		t.Fatalf("shard String() = %q, want \"shard: 1/2\"", s)
	}

	rt := NewRuntime(Config{Workers: 1, DisablePinning: true})
	defer rt.Close()
	if s := rt.String(); strings.Contains(s, "shard:") {
		t.Fatalf("standalone String() = %q, must not claim a shard index", s)
	}
}

// TestPoolInterface: both shapes drive through the one Pool interface,
// including the single-runtime degenerate forms of the shard methods.
func TestPoolInterface(t *testing.T) {
	for _, tc := range []struct {
		name   string
		pool   Pool
		shards int
	}{
		{"runtime", NewRuntime(Config{Workers: 2, DisablePinning: true}), 1},
		{"fleet", NewFleet(FleetConfig{Shards: 2, ShardSize: 1,
			Runtime: Config{DisablePinning: true}}), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.pool
			defer p.Close()
			var ran atomic.Int64
			p.Submit(func(*Worker) { ran.Add(1) })
			p.SubmitCtx(context.Background(), func(*Worker) { ran.Add(1) })
			p.SubmitAffinity(context.Background(), 7, func(*Worker) { ran.Add(1) })
			if err := p.Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			if ran.Load() != 3 {
				t.Fatalf("ran %d bodies, want 3", ran.Load())
			}
			if got := p.Shards(); got != tc.shards {
				t.Fatalf("Shards() = %d, want %d", got, tc.shards)
			}
			if got := len(p.ShardStats()); got != tc.shards {
				t.Fatalf("len(ShardStats()) = %d, want %d", got, tc.shards)
			}
			if s := p.Stats(); s.Executed < 3 {
				t.Fatalf("Stats().Executed = %d, want >= 3", s.Executed)
			}
		})
	}
}
