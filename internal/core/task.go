package core

import (
	"sync"
	"sync/atomic"
)

// Mode describes how a task accesses a Handle. The main access modes of the
// paper (§II-B) are read, write, exclusive (read-write) and cumulative write
// (reduction). The runtime uses modes to compute true (read-after-write)
// dependencies between tasks sharing a memory region.
type Mode uint8

const (
	// ModeRead declares a read of the current version of the handle.
	ModeRead Mode = iota
	// ModeWrite declares production of a new version. The task must wait for
	// the previous producer and every reader of the previous version.
	ModeWrite
	// ModeReadWrite declares an exclusive in-place update: semantically a
	// read of the current version plus production of the next one.
	ModeReadWrite
	// ModeCumulWrite declares a cumulative (commutative, associative) write.
	// Cumulative writers of the same generation run concurrently with each
	// other but are ordered against readers and exclusive writers.
	ModeCumulWrite
)

// String returns the conventional short name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "R"
	case ModeWrite:
		return "W"
	case ModeReadWrite:
		return "RW"
	case ModeCumulWrite:
		return "CW"
	}
	return "?"
}

// Access pairs a Handle with the Mode a task uses on it.
type Access struct {
	Handle *Handle
	Mode   Mode
}

const (
	flagHasAccess uint8 = 1 << iota // task registered dataflow accesses
	flagLoop                        // task is a loop-slice task (diagnostics)
	flagRoot                        // task is a job root: completion finishes the job
)

// Task is the unit of scheduling. Tasks are created by Worker.Spawn (fork-
// join) or Worker.SpawnTask (dataflow) and recycled through per-worker free
// lists, so a Task must never be retained after its body has run.
//
// Lifecycle: allocated → (wait counter drains) → pushed ready → executed →
// children drained (fully strict) → completed (successors released, parent
// decremented) → recycled.
//
// Descriptors are carved from slabs ([taskSlabSize]Task arrays, slab.go),
// so the struct is padded to exactly two cache lines: children and wait are
// RMW'd by thieves and the owner concurrently, and without the pad two
// adjacent descriptors of one slab would false-share a line between two
// workers. The trailing pad also satisfies the atomicpad layout check for
// atomic-holding array elements.
type Task struct {
	body   func(*Worker)
	parent *Task
	next   *Task // free-list link
	job    *Job  // owning job, inherited from the parent (failure/cancel scope)

	// children is the shared half of the frame counter: it moves only when a
	// child completes on a worker other than the one executing this task
	// (stolen subtree, or a dataflow release landing elsewhere), and then
	// only downward. The executing worker's owner-local Worker.frameKids
	// carries the spawn credits; frameKids + children.Load() is the exact
	// live-children count, and execute zeroes any residue before completion.
	children atomic.Int32
	wait     atomic.Int32 // outstanding dependencies + creation bias
	flags    uint8

	// Dataflow state, used only when flags&flagHasAccess != 0.
	mu      sync.Mutex
	seq     uint32 // generation stamp, advanced on every recycle; guards stale taskRefs
	done    bool
	everAcc bool // had accesses in some lifetime: stale taskRefs may probe seq under mu
	succ    []*Task
	accs    []Access

	_ [16]byte // pad to 128 B: see the slab note above (checked in slab_test.go)
}

// taskRef is a possibly-stale reference to a task held in a Handle's
// dependency lists. Because tasks are recycled, the reference carries the
// sequence number observed at registration; a mismatch means the task
// completed and was reused, i.e. the dependency is already satisfied.
type taskRef struct {
	t   *Task
	seq uint32
}

// depOn makes t wait for d if d is still live. It returns after either
// registering t as a successor of d (incrementing t's wait count) or
// observing that d already completed.
func depOn(t *Task, ref taskRef) {
	d := ref.t
	if d == nil || d == t {
		// Nil frontier entry, or a second access of the same task to the
		// same handle: a task never waits on itself.
		return
	}
	d.mu.Lock()
	if d.seq == ref.seq && !d.done {
		d.succ = append(d.succ, t)
		t.wait.Add(1)
	}
	d.mu.Unlock()
}
