package core

import (
	"sync"
	"sync/atomic"
)

// Mode describes how a task accesses a Handle. The main access modes of the
// paper (§II-B) are read, write, exclusive (read-write) and cumulative write
// (reduction). The runtime uses modes to compute true (read-after-write)
// dependencies between tasks sharing a memory region.
type Mode uint8

const (
	// ModeRead declares a read of the current version of the handle.
	ModeRead Mode = iota
	// ModeWrite declares production of a new version. The task must wait for
	// the previous producer and every reader of the previous version.
	ModeWrite
	// ModeReadWrite declares an exclusive in-place update: semantically a
	// read of the current version plus production of the next one.
	ModeReadWrite
	// ModeCumulWrite declares a cumulative (commutative, associative) write.
	// Cumulative writers of the same generation run concurrently with each
	// other but are ordered against readers and exclusive writers.
	ModeCumulWrite
)

// String returns the conventional short name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "R"
	case ModeWrite:
		return "W"
	case ModeReadWrite:
		return "RW"
	case ModeCumulWrite:
		return "CW"
	}
	return "?"
}

// Access pairs a Handle with the Mode a task uses on it.
type Access struct {
	Handle *Handle
	Mode   Mode
}

const (
	flagHasAccess uint8 = 1 << iota // task registered dataflow accesses
	flagLoop                        // task is a loop-slice task (diagnostics)
	flagRoot                        // task is a job root: completion finishes the job
)

// Task is the unit of scheduling. Tasks are created by Worker.Spawn (fork-
// join) or Worker.SpawnTask (dataflow) and recycled through per-worker free
// lists, so a Task must never be retained after its body has run.
//
// Lifecycle: allocated → (wait counter drains) → pushed ready → executed →
// children drained (fully strict) → completed (successors released, parent
// decremented) → recycled.
type Task struct {
	body   func(*Worker)
	parent *Task
	next   *Task // free-list link
	job    *Job  // owning job, inherited from the parent (failure/cancel scope)

	children atomic.Int32 // live direct children (frame counter)
	wait     atomic.Int32 // outstanding dependencies + creation bias
	flags    uint8

	// Dataflow state, used only when flags&flagHasAccess != 0.
	mu   sync.Mutex
	seq  uint32 // incremented on recycle; guards stale taskRefs in handles
	done bool
	succ []*Task
	accs []Access
}

// taskRef is a possibly-stale reference to a task held in a Handle's
// dependency lists. Because tasks are recycled, the reference carries the
// sequence number observed at registration; a mismatch means the task
// completed and was reused, i.e. the dependency is already satisfied.
type taskRef struct {
	t   *Task
	seq uint32
}

// depOn makes t wait for d if d is still live. It returns after either
// registering t as a successor of d (incrementing t's wait count) or
// observing that d already completed.
func depOn(t *Task, ref taskRef) {
	d := ref.t
	if d == nil || d == t {
		// Nil frontier entry, or a second access of the same task to the
		// same handle: a task never waits on itself.
		return
	}
	d.mu.Lock()
	if d.seq == ref.seq && !d.done {
		d.succ = append(d.succ, t)
		t.wait.Add(1)
	}
	d.mu.Unlock()
}
