package core

import (
	"runtime"
	"sync/atomic"
)

// Steal-request aggregation (§II-C of the paper, after Hendler et al.'s flat
// combining): instead of each thief attacking the victim's deque itself, a
// thief posts a request in the victim's request box and tries to become the
// combiner by acquiring the victim's combiner lock. The winner — "one of the
// thieves is elected to reply to all requests" — serves every posted request
// in a single pass over the victim's state: tasks are CAS-stolen oldest-first
// from the deque (the Chase–Lev steal in deque.go; the victim's owner path
// never blocks behind the combiner), and any remaining requests are offered
// to the victim's active splitter (adaptive tasks, §II-D), which divides the
// running task's remaining work k+1 ways. Aggregation reduces the number of
// ready-task detections: N concurrent requests cost one deque traversal
// instead of N. The combiner lock serializes thieves per victim; it is an
// election primitive, not a deque lock — the deque itself is lock-free.

const (
	reqEmpty int32 = iota
	reqPosted
	reqReplied
)

// stealSpinLimit bounds how long a thief waits for a reply before
// withdrawing its request and trying another victim.
const stealSpinLimit = 128

// request is one slot of a victim's request box. Slot i belongs to the
// worker with id i, so posting never contends with other thieves. The
// padding keeps distinct thieves' slots on distinct cache lines.
type request struct {
	state atomic.Int32
	task  *Task
	_     [40]byte
}

// stealFrom posts a steal request to victim v and waits for the reply,
// participating in combiner election while it spins. It returns the stolen
// task (possibly nil for an empty reply) and whether a reply was received at
// all; (nil, false) means the request was withdrawn after spinning too long.
func (w *Worker) stealFrom(v *Worker) (*Task, bool) {
	r := &v.reqs[w.id]
	r.task = nil
	r.state.Store(reqPosted)
	w.stats.stealRequests.Add(1)
	for spins := 0; ; spins++ {
		if v.comb.TryLock() {
			w.combineServe(v)
			v.comb.Unlock()
		}
		if r.state.Load() == reqReplied {
			r.state.Store(reqEmpty)
			if r.task != nil {
				w.stats.stealHits.Add(1)
			}
			return r.task, true
		}
		if spins >= stealSpinLimit {
			if r.state.CompareAndSwap(reqPosted, reqEmpty) {
				return nil, false
			}
			// The reply landed in the withdrawal window.
			r.state.Store(reqEmpty)
			if r.task != nil {
				w.stats.stealHits.Add(1)
			}
			return r.task, true
		}
		if spins&15 == 15 {
			runtime.Gosched()
		}
	}
}

// combineServe answers every request currently posted on victim v. The
// caller must hold v.comb, which also enforces the paper's guarantee that at
// most one thief runs v's splitter concurrently with v's task body.
func (w *Worker) combineServe(v *Worker) {
	ids := w.reqScratch[:0]
	for i := range v.reqs {
		if v.reqs[i].state.Load() == reqPosted {
			ids = append(ids, i)
		}
	}
	w.reqScratch = ids[:0]
	if len(ids) == 0 {
		return
	}
	w.stats.combines.Add(1)

	// First source: the victim's deque, oldest tasks first, each taken by a
	// lock-free CAS claim. The victim keeps pushing and popping concurrently;
	// steal returns nil once the deque is drained (or the owner raced us to
	// the last task), and the remaining requests fall through to the splitter.
	served := 0
	for served < len(ids) {
		t := v.deque.steal()
		if t == nil {
			break
		}
		reply(&v.reqs[ids[served]], t)
		served++
	}

	// Second source: the victim's active adaptive task, split k+1 ways for
	// the k remaining requests (one part stays with the victim, §II-E).
	if rest := ids[served:]; len(rest) > 0 {
		if ad := v.adaptive.Load(); ad != nil {
			w.stats.splits.Add(1)
			tasks := ad.split(w, len(rest))
			w.stats.splitTasks.Add(int64(len(tasks)))
			for _, t := range tasks {
				if served >= len(ids) {
					break
				}
				reply(&v.reqs[ids[served]], t)
				served++
			}
		}
	}

	// Empty replies for anyone left, so they move on to another victim.
	for _, i := range ids[served:] {
		reply(&v.reqs[i], nil)
	}
	w.stats.combineServed.Add(int64(served))
}

func reply(r *request, t *Task) {
	r.task = t
	r.state.Store(reqReplied)
}

// stealDirect is the non-aggregated protocol used when Config.NoAggregation
// is set (ablation A1): every thief CAS-steals from the victim's deque for
// itself, so N concurrent thieves cost N top-of-deque claims (and N cache
// line bounces on head) instead of one aggregated pass.
func (w *Worker) stealDirect(v *Worker) *Task {
	w.stats.stealRequests.Add(1)
	t := v.deque.steal()
	if t == nil {
		if ad := v.adaptive.Load(); ad != nil {
			v.comb.Lock() // still required: one splitter at a time
			w.stats.splits.Add(1)
			tasks := ad.split(w, 1)
			v.comb.Unlock()
			w.stats.splitTasks.Add(int64(len(tasks)))
			if len(tasks) > 0 {
				t = tasks[0]
			}
		}
	}
	if t != nil {
		w.stats.stealHits.Add(1)
	}
	return t
}
