package core

import (
	"sync"
	"sync/atomic"
)

// Job is the handle of one externally submitted root task. A Job is created
// by Runtime.Submit, completes when the root body and every task
// transitively spawned from it have finished, and can be waited on by any
// goroutine outside the pool.
type Job struct {
	rt   *Runtime
	done chan struct{}
}

// Wait blocks until the job's whole task tree has completed. It must be
// called from outside the worker pool: a task body that blocks in Wait
// stalls its worker and can deadlock the runtime. From inside a task, spawn
// the work as a child and use Worker.Sync instead.
func (j *Job) Wait() { <-j.done }

// Done reports (without blocking) whether the job has completed.
func (j *Job) Done() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// finish marks the job complete and credits the runtime's live-job count.
// It is called exactly once, by the worker completing the root task.
func (j *Job) finish() {
	close(j.done)
	rt := j.rt
	rt.jobsMu.Lock()
	rt.jobsLive--
	if rt.jobsLive == 0 {
		rt.jobsCond.Broadcast()
	}
	rt.jobsMu.Unlock()
}

// inbox is the MPSC queue through which goroutines outside the pool inject
// root tasks. External submitters must not touch the owner end of any
// worker deque (push/pop are owner-only under the T.H.E. protocol), so new
// roots land here and are claimed by whichever worker runs out of local and
// stolen work first.
//
// The count n is a sequentially consistent atomic and is updated before the
// submitter reads Runtime.idle (in maybeWake), mirroring the deque-bottom /
// idle-counter protocol: either the submitter observes a parked worker and
// wakes it, or the parker's final anyWork scan observes n > 0 and aborts
// the park.
type inbox struct {
	mu   sync.Mutex
	q    []*Task
	head int
	n    atomic.Int64
}

// put appends t. Any goroutine may call it.
func (ib *inbox) put(t *Task) {
	ib.mu.Lock()
	ib.q = append(ib.q, t)
	ib.n.Add(1)
	ib.mu.Unlock()
}

// take removes the oldest submitted task, or returns nil. Any worker may
// call it; the atomic count makes the empty probe lock-free.
func (ib *inbox) take() *Task {
	if ib.n.Load() == 0 {
		return nil
	}
	ib.mu.Lock()
	var t *Task
	if ib.head < len(ib.q) {
		t = ib.q[ib.head]
		ib.q[ib.head] = nil
		ib.head++
		if ib.head == len(ib.q) {
			ib.q = ib.q[:0]
			ib.head = 0
		}
		ib.n.Add(-1)
	}
	ib.mu.Unlock()
	return t
}

// size is the current number of queued roots (racy, for probes and stats).
func (ib *inbox) size() int64 { return ib.n.Load() }

// Submit enqueues fn as an independent root job on the pool and returns
// immediately with its handle. Any goroutine may call Submit, concurrently
// with other Submits and with running jobs: the task is injected through
// the runtime's inbox, never through a worker deque, so external callers
// obey the owner-only deque protocol. The job's task tree executes under
// the same fully strict model as RunRoot.
func (rt *Runtime) Submit(fn func(*Worker)) *Job {
	if fn == nil {
		panic("core: Submit with nil function")
	}
	j := &Job{rt: rt, done: make(chan struct{})}
	t := new(Task) // external path: worker free lists are owner-only
	t.body = fn
	t.job = j
	// The closing check and the live-job registration are one critical
	// section: a Submit racing Close either registers before the drain
	// (Close then waits for this job too) or sees closing and panics.
	rt.jobsMu.Lock()
	if rt.closing {
		rt.jobsMu.Unlock()
		panic("core: Submit called after Close")
	}
	rt.jobsLive++
	rt.jobsMu.Unlock()
	rt.extSpawned.Add(1)
	rt.inbox.put(t)
	rt.maybeWake()
	return j
}

// Wait blocks until every job submitted so far has completed. Like
// Job.Wait it must be called from outside the pool.
func (rt *Runtime) Wait() {
	rt.jobsMu.Lock()
	for rt.jobsLive > 0 {
		rt.jobsCond.Wait()
	}
	rt.jobsMu.Unlock()
}
