package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi/internal/jobfail"
)

// Job is the handle of one externally submitted root task. A Job is created
// by Runtime.Submit or Runtime.SubmitCtx, completes when the root body and
// every task transitively spawned from it have finished (or been cancelled),
// and can be waited on by any goroutine outside the pool.
//
// A job fails when a task body of its tree panics (the first panic wins and
// is recorded as a *PanicError), when its submission context is cancelled,
// or when Cancel is called. Once failed, the job's remaining tasks are
// cancelled: their bodies are skipped, but the completion bookkeeping still
// runs, so dataflow frontiers stay consistent and the job always finishes.
// The failure state machine itself — first-error-wins, sealing, the per-job
// context that fans cancellation out to running bodies — is the shared
// jobfail.State every engine in this module embeds.
type Job struct {
	st jobfail.State
	rt *Runtime

	// Per-job attribution of the task outcome counters (the pool-global
	// Stats remain the sum over workers). Atomics: tasks of one job execute
	// on many workers concurrently.
	counts jobfail.Counters
}

// JobStats is a snapshot of one job's task outcome counters, the per-job
// attribution of the pool-global Stats a multi-tenant service needs for
// per-request (or per-client) accounting: how many task bodies of this job
// ran, how many were skipped because the job had failed, and how many
// panicked.
type JobStats struct {
	Executed  int64 // task bodies of this job that ran
	Cancelled int64 // tasks skipped (at spawn or at execution) after the job failed
	Panicked  int64 // task bodies of this job that panicked
}

// Stats returns the job's task outcome counters. It may be called at any
// time, including while the job runs, and each counter is then a monotone
// non-decreasing lower bound of the truth: Executed is attributed through
// per-(worker, job) caches (see jobfail.Counters.AddExecuted), so a live
// snapshot can trail the real count by up to one batch per worker
// currently executing this job's tasks, while Cancelled and Panicked are
// bumped directly and stay exactly live. The snapshot is exact once the
// pool is quiescent for this job: every path a worker takes toward
// idleness — park, failed steal round, wait loops, root completion,
// worker exit — publishes its cache first, and the worker that completes
// the root flushes before the job becomes observable as done. In
// particular, on a single-worker pool the counts are exact the moment
// Wait returns; on a wider pool other workers' last batches land within
// their own idle transitions, microseconds behind.
func (j *Job) Stats() JobStats {
	executed, cancelled, panicked := j.counts.Snapshot()
	return JobStats{Executed: executed, Cancelled: cancelled, Panicked: panicked}
}

// Wait blocks until the job's whole task tree has completed, then returns
// the job's error: nil on success, a *PanicError if a task body panicked,
// the context error if the submission context was cancelled, ErrCanceled
// after Cancel, or ErrClosed if the job was rejected by a closing runtime.
//
// Wait must be called from outside the worker pool: a task body that blocks
// in Wait stalls its worker and can deadlock the runtime. From inside a
// task, spawn the work as a child and use Worker.Sync instead.
func (j *Job) Wait() error { return j.st.Wait() }

// Done reports (without blocking) whether the job has completed.
func (j *Job) Done() bool { return j.st.Done() }

// Err returns the job's failure without waiting: nil while the job is
// running and has not failed, otherwise the first recorded error.
func (j *Job) Err() error { return j.st.Err() }

// Cancel asks the runtime to abandon the job: tasks of the job that have
// not started yet are skipped, and Wait returns ErrCanceled. Tasks already
// executing run to completion (cancellation is cooperative; long bodies
// block on Context().Done() or poll Worker.JobFailed). Cancel after
// completion, or after another failure, is a no-op.
func (j *Job) Cancel() { j.st.Cancel() }

// Context returns the job's context: derived from the SubmitCtx submission
// context (context.Background for Submit), carrying its deadline and
// values, and cancelled — with the failure as cause — the instant the job
// fails or is cancelled. Task bodies reach it through Worker.Context; it is
// also available here so code holding only the Job handle (a server
// tracking in-flight requests, say) can select on the same signal. Note
// that the context is also cancelled when the job completes successfully
// (cause context.Canceled), so Done firing means "job over", not
// necessarily "job failed" — check Err to distinguish.
func (j *Job) Context() context.Context { return j.st.Context() }

// fail records err as the job's failure if it is the first one; later
// failures and failures after completion are ignored.
func (j *Job) fail(err error) { j.st.Fail(err) }

// aborted is the hot-path check task execution uses to decide whether to
// skip a body.
func (j *Job) aborted() bool { return j.st.Failed() }

// finish marks the job complete and credits the runtime's live-job count.
// It is called exactly once, by the worker completing the root task.
func (j *Job) finish() {
	err := j.st.Finish()
	rt := j.rt
	if err != nil {
		rt.noteFailed(err)
	}
	rt.liveRoots.Add(-1)
	rt.jobsMu.Lock()
	rt.jobsLive--
	if rt.jobsLive == 0 {
		rt.jobsCond.Broadcast()
	}
	rt.jobsMu.Unlock()
}

// inbox is the MPSC queue through which goroutines outside the pool inject
// root tasks. External submitters must not touch the owner end of any
// worker deque (push/pop are owner-only under the Chase–Lev protocol), so
// new roots land here and are claimed by whichever worker runs out of local
// and stolen work first.
//
// The count n is a sequentially consistent atomic and is updated before the
// submitter reads Runtime.idle (in maybeWake), mirroring the deque-bottom /
// idle-counter protocol: either the submitter observes a parked worker and
// wakes it, or the parker's final anyWork scan observes n > 0 and aborts
// the park.
type inbox struct {
	mu   sync.Mutex
	q    []*Task
	head int
	n    atomic.Int64
}

// put appends t. Any goroutine may call it.
func (ib *inbox) put(t *Task) {
	ib.mu.Lock()
	ib.q = append(ib.q, t)
	ib.n.Add(1)
	ib.mu.Unlock()
}

// take removes the oldest submitted task, or returns nil. Any worker may
// call it; the atomic count makes the empty probe lock-free.
func (ib *inbox) take() *Task {
	if ib.n.Load() == 0 {
		return nil
	}
	ib.mu.Lock()
	var t *Task
	if ib.head < len(ib.q) {
		t = ib.q[ib.head]
		ib.q[ib.head] = nil
		ib.head++
		if ib.head == len(ib.q) {
			ib.q = ib.q[:0]
			ib.head = 0
		}
		ib.n.Add(-1)
	}
	ib.mu.Unlock()
	return t
}

// size is the current number of queued roots (racy, for probes and stats).
func (ib *inbox) size() int64 { return ib.n.Load() }

// Submit enqueues fn as an independent root job on the pool and returns
// immediately with its handle. Any goroutine may call Submit, concurrently
// with other Submits and with running jobs: the task is injected through
// the runtime's inbox, never through a worker deque, so external callers
// obey the owner-only deque protocol. The job's task tree executes under
// the same fully strict model as RunRoot.
//
// Submitting to a closed (or closing) runtime does not panic: it returns a
// pre-failed Job whose Wait and Err report ErrClosed and whose task never
// runs.
//
// Submit is exactly SubmitCtx(context.Background(), fn): the ctx-first
// entry point is the one implementation, and Background costs nothing (a
// context with no Done channel never arms the cancellation hook).
func (rt *Runtime) Submit(fn func(*Worker)) *Job {
	return rt.SubmitCtx(context.Background(), fn)
}

// SubmitAffinity is SubmitCtx on a standalone Runtime: with a single shard
// there is no placement to pin, so the key is ignored. It exists so Pool
// users can pass affinity hints without caring whether a Fleet is behind
// the interface.
func (rt *Runtime) SubmitAffinity(ctx context.Context, _ uint64, fn func(*Worker)) *Job {
	return rt.SubmitCtx(ctx, fn)
}

// newRoot builds the job handle — its failure state bound to parent
// (Background if nil) — and its root task, and registers the job with the
// runtime. ok reports whether the runtime accepted it; on false the job is
// pre-failed with ErrClosed and already finished. On true the caller must
// call enqueueRoot(t) to make the root runnable. The parent-cancellation
// hook is armed inside Init, before the root can possibly be enqueued, so
// it is always installed before any worker can finish the job.
func (rt *Runtime) newRoot(parent context.Context, fn func(*Worker)) (j *Job, t *Task, ok bool) {
	if fn == nil {
		panic("core: Submit with nil function")
	}
	j = &Job{rt: rt}
	// The closing check and the live-job registration are one critical
	// section: a Submit racing Close either registers before the drain
	// (Close then waits for this job too) or observes closing and is
	// rejected with ErrClosed; it can never slip a job past the drain into
	// a dead pool. The failure state initializes after the check — and for
	// a rejected job without the parent — so rejection always reports
	// ErrClosed, even when the submission context is already cancelled
	// (first error wins, and rejection must be the first).
	rt.jobsMu.Lock()
	if rt.closing {
		rt.jobsMu.Unlock()
		j.st.Init(nil)
		j.st.Fail(ErrClosed)
		j.st.Finish()
		return j, nil, false
	}
	rt.jobsLive++
	rt.jobsMu.Unlock()
	rt.liveRoots.Add(1)
	j.st.Init(parent)
	t = newRootTask() // external path: worker free lists are owner-only, roots recycle via rootPool
	t.body = fn
	t.job = j
	t.flags = flagRoot
	return j, t, true
}

// enqueueRoot injects a registered root task through the inbox and wakes a
// worker for it. The chaos inbox-delay site may defer the delivery: the job
// is already registered (jobsLive counts it, so a concurrent Close waits for
// it), only its appearance in the inbox is late — modelling a slow
// submission path without touching the admission bookkeeping.
func (rt *Runtime) enqueueRoot(t *Task) {
	rt.extSpawned.Add(1)
	if cz := rt.chaos; cz != nil {
		if d := cz.InboxDelay(); d > 0 {
			time.AfterFunc(d, func() {
				rt.inbox.put(t)
				rt.maybeWake()
			})
			return
		}
	}
	rt.inbox.put(t)
	rt.maybeWake()
}

// SubmitCtx is Submit bound to a context: if ctx is cancelled before the
// job completes, the job fails with ctx.Err() and its remaining tasks are
// skipped. A context already cancelled at submission still returns a Job
// (its root is enqueued but its body never runs), so callers have one code
// path: check Wait's error. The job's own context (Job.Context,
// Worker.Context) is derived from ctx, so task bodies see its deadline and
// values and unblock the instant the job fails for any reason.
//
// Cancellation is watcher-free: instead of a goroutine per job parked on
// ctx.Done() (which a server submitting one job per request would multiply
// by the whole in-flight set), the job's failure state registers a
// context.AfterFunc — a callback on the context's own cancel/timer
// machinery — before its root is enqueued, and finish deregisters it. A
// context-bound job therefore costs no goroutine at all, and an uncancelled
// one leaves nothing behind.
func (rt *Runtime) SubmitCtx(ctx context.Context, fn func(*Worker)) *Job {
	j, t, ok := rt.newRoot(ctx, fn)
	if ok {
		rt.enqueueRoot(t)
	}
	return j
}

// Wait blocks until every job submitted so far has completed, then returns
// the aggregated outcome of the drain: nil if no job failed since the last
// Wait, otherwise an errors.Join of the failures recorded since then (so
// errors.Is/As reach each *PanicError or cancellation cause). At most
// maxDrainErrs individual errors are retained between drains; further
// failures are elided into a summary error carrying their count. Like
// Job.Wait it must be called from outside the pool. Each failure is
// reported by exactly one Wait drain; individual Job handles and CloseErr
// observe failures independently of Wait.
func (rt *Runtime) Wait() error {
	rt.jobsMu.Lock()
	for rt.jobsLive > 0 {
		rt.jobsCond.Wait()
	}
	rt.jobsMu.Unlock()
	rt.failMu.Lock()
	errs := rt.drainErrs
	dropped := rt.drainDropped
	rt.drainErrs = nil
	rt.drainDropped = 0
	rt.failMu.Unlock()
	if dropped > 0 {
		errs = append(errs, fmt.Errorf("core: %d more job failure(s) elided", dropped))
	}
	return errors.Join(errs...)
}
