package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestIntervalResetRemaining(t *testing.T) {
	var iv Interval
	iv.Reset(10, 110)
	if got := iv.Remaining(); got != 100 {
		t.Fatalf("Remaining: got %d want 100", got)
	}
	iv.Reset(5, 5)
	if got := iv.Remaining(); got != 0 {
		t.Fatalf("Remaining on empty: got %d want 0", got)
	}
	iv.Reset(7, 3) // hi < lo clamps to empty
	if got := iv.Remaining(); got != 0 {
		t.Fatalf("Remaining on inverted: got %d want 0", got)
	}
}

func TestIntervalExtractFront(t *testing.T) {
	var iv Interval
	iv.Reset(0, 10)
	lo, hi, ok := iv.ExtractFront(4)
	if !ok || lo != 0 || hi != 4 {
		t.Fatalf("first extraction: got (%d,%d,%v)", lo, hi, ok)
	}
	lo, hi, ok = iv.ExtractFront(100)
	if !ok || lo != 4 || hi != 10 {
		t.Fatalf("clamped extraction: got (%d,%d,%v)", lo, hi, ok)
	}
	if _, _, ok := iv.ExtractFront(1); ok {
		t.Fatal("extraction from empty interval succeeded")
	}
}

func TestIntervalExtractBack(t *testing.T) {
	var iv Interval
	iv.Reset(100, 200)
	lo, hi, ok := iv.ExtractBack(30)
	if !ok || lo != 170 || hi != 200 {
		t.Fatalf("back extraction: got (%d,%d,%v)", lo, hi, ok)
	}
	if rem := iv.Remaining(); rem != 70 {
		t.Fatalf("Remaining after back extraction: got %d want 70", rem)
	}
}

func TestIntervalNegativeBase(t *testing.T) {
	var iv Interval
	iv.Reset(-50, 50)
	lo, hi, ok := iv.ExtractFront(10)
	if !ok || lo != -50 || hi != -40 {
		t.Fatalf("negative base: got (%d,%d,%v)", lo, hi, ok)
	}
}

func TestIntervalTooWidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with a 2^31-wide interval did not panic")
		}
	}()
	var iv Interval
	iv.Reset(0, 1<<31)
}

// TestIntervalConcurrentExactlyOnce runs a front-extracting owner against
// back-extracting thieves and checks every iteration is claimed exactly once.
func TestIntervalConcurrentExactlyOnce(t *testing.T) {
	const n = 200000
	var iv Interval
	iv.Reset(0, n)
	claimed := make([]int32, n)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := iv.ExtractBack(37)
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					claimed[i]++
				}
			}
		}()
	}
	for {
		lo, hi, ok := iv.ExtractFront(53)
		if !ok {
			break
		}
		for i := lo; i < hi; i++ {
			claimed[i]++
		}
	}
	wg.Wait()
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
}

// Property: any sequence of front/back extractions with arbitrary sizes
// partitions [0,n) exactly.
func TestIntervalQuickPartition(t *testing.T) {
	f := func(sizes []uint8, fronts []bool, n uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		var iv Interval
		iv.Reset(0, int64(n))
		covered := make([]int, n)
		i := 0
		for iv.Remaining() > 0 {
			sz := int64(sizes[i%len(sizes)])%16 + 1
			front := len(fronts) == 0 || fronts[i%len(fronts)]
			var lo, hi int64
			var ok bool
			if front {
				lo, hi, ok = iv.ExtractFront(sz)
			} else {
				lo, hi, ok = iv.ExtractBack(sz)
			}
			if !ok {
				return false
			}
			for j := lo; j < hi; j++ {
				covered[j]++
			}
			i++
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
