package core

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrClosed is the error of a job rejected because the runtime was already
// closing: Submit after Close returns a pre-failed Job whose Err and Wait
// report ErrClosed, instead of panicking as earlier versions did.
var ErrClosed = errors.New("core: runtime closed")

// ErrCanceled is the error a job fails with when Job.Cancel is called. Jobs
// cancelled through a context (SubmitCtx) fail with the context's own error
// (context.Canceled or context.DeadlineExceeded) instead.
var ErrCanceled = errors.New("core: job canceled")

// PanicError is the error a job fails with when one of its task bodies —
// fork-join, dataflow, adaptive splitter or parallel-loop chunk — panics.
// The panicking task's job records the first panic (with the stack captured
// at the panic site), cancels the job's remaining tasks, and the worker pool
// survives: the panic never propagates past the runtime.
type PanicError struct {
	// Value is the value the task body panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery, which includes the
	// frames of the panic site.
	Stack []byte
}

// newPanicError wraps a recovered value; it must be called from the deferred
// function that recovered it so the stack still holds the panic frames.
func newPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Error formats the panic value followed by the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task panicked: %v\n\n%s", e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through a panic(err).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// abortUnwind is the panic sentinel used internally to unwind a task body
// whose job has already failed (for example out of a ForEach whose loop
// context aborted). The body-level recover recognizes it, records err on the
// job if somehow still unset, and does not count it as a user panic.
type abortUnwind struct{ err error }
