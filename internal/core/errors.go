package core

import "xkaapi/internal/jobfail"

// The failure and cancellation protocol — panic capture, first-error-wins,
// cancellation fan-out through a per-job context, pre-failed jobs — is not
// defined here: it lives in internal/jobfail, the single state machine every
// engine in this module (core, cilk, tbbsched, gomp, quark's native engine)
// embeds. This file only re-exports the shared identifiers under the names
// the core API always had.

// ErrClosed is the error of a job rejected because the runtime was already
// closing: Submit after Close returns a pre-failed Job whose Err and Wait
// report ErrClosed, instead of panicking as earlier versions did.
var ErrClosed = jobfail.ErrClosed

// ErrCanceled is the error a job fails with when Job.Cancel is called. Jobs
// cancelled through a context (SubmitCtx) fail with the context's own error
// (context.Canceled or context.DeadlineExceeded) instead.
var ErrCanceled = jobfail.ErrCanceled

// PanicError is the error a job fails with when one of its task bodies —
// fork-join, dataflow, adaptive splitter or parallel-loop chunk — panics;
// it carries the panic value and the stack captured at the panic site. It
// is an alias of the one shared definition in internal/jobfail.
type (
	PanicError = jobfail.PanicError
)

// abortUnwind is the panic sentinel used internally to unwind a task body
// whose job has already failed (for example out of a ForEach whose loop
// context aborted). The body-level recover recognizes it, records err on the
// job if somehow still unset, and does not count it as a user panic.
type abortUnwind struct{ err error }
