//xk:hotpath — the Chase–Lev deque is lock-free by construction; xkvet
// rejects any mutex, channel, sleep, fmt or goroutine launch added here.

package core

import (
	"sync/atomic"
)

const dequeInitCap = 256 // initial slots; must be a power of two

// deque is the per-worker work-stealing deque, a lock-free Chase–Lev
// circular deque (Chase, Lev: "Dynamic Circular Work-Stealing Deque",
// SPAA 2005) in the role the paper assigns to Cilk's T.H.E. protocol
// (§II-C): the owner pushes and pops at the bottom, thieves steal from the
// top, oldest task first, and the two only meet on the last remaining task.
// Unlike T.H.E. there is no mutex anywhere — thieves claim the top slot
// with a CAS on head, the owner claims a contended last task with the same
// CAS, and buffer growth publishes a fresh buffer through an atomic
// pointer. The paper's steal-request aggregation (request.go) still
// serializes *aggregated* thieves per victim behind the combiner election
// lock, but the deque itself never blocks anyone.
//
// Memory-ordering argument, in Go's memory model (all sync/atomic
// operations are sequentially consistent, so the weak-memory fences of the
// original algorithm and of Lê et al.'s C11 port are implied):
//
//   - head only ever increases, and only by a successful CompareAndSwap.
//     A claim of index h is therefore unique: whoever wins the CAS h→h+1
//     owns the task at slot h, whether thief (steal) or owner (pop of the
//     last task).
//   - A thief reads a slot only after observing head h < tail: the owner's
//     slot store for index h is sequenced before its tail.Store(h+1), so
//     the observed tail orders the slot write before the thief's read.
//   - A slot at index h can only be overwritten by the push of index
//     h+capacity, and push never lets tail-head exceed the capacity of the
//     buffer it writes to, so head must first move past h — which fails
//     every outstanding CAS on h. A stale slot read is thus always
//     discarded. (Slots are atomic.Pointer values so this benign stale
//     read is also well-defined for the race detector.)
//   - grow copies [head, tail) into the new buffer before publishing it;
//     head is monotone, so any index a thief can still claim from the old
//     buffer holds the same task in the new one.
type deque struct {
	head atomic.Int64 // top: index of the next task to steal (CAS-claimed)
	_    [56]byte     // keep the thief-side and owner-side words on separate lines
	tail atomic.Int64 // bottom: index of the next free slot (owner only)
	_    [56]byte
	buf  atomic.Pointer[dequeBuf]
}

type dequeBuf struct {
	mask int64
	slot []atomic.Pointer[Task]
}

func (d *deque) init() {
	d.buf.Store(&dequeBuf{mask: dequeInitCap - 1, slot: make([]atomic.Pointer[Task], dequeInitCap)})
}

// size is a racy estimate of the number of queued tasks; it is used only to
// probe victims before posting a steal request.
func (d *deque) size() int64 {
	n := d.tail.Load() - d.head.Load()
	if n < 0 {
		return 0
	}
	return n
}

// push appends t at the bottom. Owner only. The paper reports a ~10 cycle
// enqueue; this path is two atomic loads, one atomic store into the buffer,
// and one atomic store of the new bottom — no CAS, no lock.
func (d *deque) push(t *Task) {
	b := d.tail.Load()
	buf := d.buf.Load()
	if b-d.head.Load() > buf.mask { // full
		d.grow(b)
		buf = d.buf.Load()
	}
	buf.slot[b&buf.mask].Store(t)
	d.tail.Store(b + 1)
}

// grow doubles the buffer and publishes it through the atomic pointer.
// Owner only, lock-free: thieves keep reading the old buffer until they
// reload the pointer, which is safe because every index in [head, tail) is
// copied before the publish and head never decreases — an index still
// claimable from the old buffer holds the identical task in the new one.
func (d *deque) grow(b int64) {
	old := d.buf.Load()
	nbuf := &dequeBuf{
		mask: old.mask*2 + 1,
		slot: make([]atomic.Pointer[Task], (old.mask+1)*2),
	}
	for i := d.head.Load(); i < b; i++ {
		nbuf.slot[i&nbuf.mask].Store(old.slot[i&old.mask].Load())
	}
	d.buf.Store(nbuf)
}

// pop removes and returns the most recently pushed task, or nil if the
// deque is empty or the task was lost to a thief. Owner only, lock-free.
//
// The owner is the only writer of tail, and head is monotone, so an
// initial head >= tail read proves the deque empty without touching tail.
// A single remaining task is claimed by the same head CAS thieves use —
// the arbiter for index h is always the CAS h→h+1, so the task goes to
// exactly one side. Only the two-or-more case uses the Chase–Lev
// decrement-first dance: publish the new bottom, then re-read head to see
// whether thieves caught up while we were doing it.
//
// An empty pop is also the owner's quiescence point, where a buffer grown
// for a past frontier is released (shrink).
func (d *deque) pop() *Task {
	b := d.tail.Load() - 1
	h := d.head.Load()
	if h > b {
		d.shrink() // empty (h == b+1): only the owner adds tasks
		return nil
	}
	buf := d.buf.Load()
	if h == b {
		// Single task: race thieves for it with the claiming CAS. No tail
		// update needed — on either outcome head becomes b+1 == tail, the
		// canonical empty state. Only the (rare, contended) losing outcome
		// shrinks: the winning pop is the spawn-sync hot path, and the next
		// empty pop will release the buffer anyway.
		t := buf.slot[b&buf.mask].Load()
		if d.head.CompareAndSwap(b, b+1) {
			return t
		}
		d.shrink()
		return nil
	}
	// At least two tasks were present: take the bottom one. Publish the
	// decremented bottom first so a thief's head < tail check cannot hand
	// out index b concurrently with us taking it.
	d.tail.Store(b)
	h = d.head.Load()
	t := buf.slot[b&buf.mask].Load()
	if h < b {
		// At least one task remains above ours: no thief can claim index b,
		// because claiming it requires head == b first.
		return t
	}
	if h > b {
		// Thieves drained everything, index b included, before our
		// decrement was visible. Restore the canonical empty state.
		d.tail.Store(b + 1)
		d.shrink()
		return nil
	}
	// h == b: ours is the last task and thieves may be racing for it.
	if !d.head.CompareAndSwap(b, b+1) {
		t = nil // a thief won the claim
		d.tail.Store(b + 1)
		d.shrink()
		return nil
	}
	d.tail.Store(b + 1)
	return t
}

// shrink resets a grown buffer back to the initial capacity once the owner
// observes its deque empty, so a worker that once held a huge frontier (a
// wide fan-out, a big loop) does not keep the doubled buffers for the rest
// of the runtime's life. Owner only, and only from the empty state
// (head >= tail): no live index exists, so no thief can be claiming a slot
// — a thief that later observes tail > head is, by seq-cst ordering,
// guaranteed to reload the buffer pointer published before that push (the
// same publication argument as grow). Slots are fresh, so stale *Task
// pointers in the old buffer are unreachable and collectable immediately.
//
// Every pop path that returns nil ends in the canonical empty state and
// calls shrink — including the thief-won races — so "pop returned nil"
// deterministically implies "buffer is back at the initial capacity".
// Successful pops never pay the check: the owner's next miss releases the
// memory, which keeps the spawn-sync hot path (push one, pop it back)
// untouched.
func (d *deque) shrink() {
	if d.buf.Load().mask == dequeInitCap-1 {
		return // still at the initial size: nothing to release
	}
	d.buf.Store(&dequeBuf{mask: dequeInitCap - 1, slot: make([]atomic.Pointer[Task], dequeInitCap)})
}

// steal removes and returns the oldest task, or nil if the deque is empty.
// Any thief may call it concurrently with the owner and with other thieves;
// claims are arbitrated by the CAS on head. A failed CAS means someone else
// (a thief, or the owner popping the last task) claimed the observed index;
// the loop retries with fresh indices until it wins or finds the deque
// empty.
func (d *deque) steal() *Task {
	for {
		h := d.head.Load()
		b := d.tail.Load()
		if h >= b {
			return nil // empty (b may trail h by one during an owner pop)
		}
		buf := d.buf.Load()
		t := buf.slot[h&buf.mask].Load()
		if d.head.CompareAndSwap(h, h+1) {
			return t
		}
	}
}
