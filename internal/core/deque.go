package core

import (
	"sync"
	"sync/atomic"
)

const dequeInitCap = 256 // initial slots; must be a power of two

// deque is the per-worker work-stealing deque, synchronized with Cilk's
// T.H.E. protocol (Frigo, Leiserson, Randall 1998), which the paper reuses to
// synchronize thief and victim (§II-C). The owner pushes and pops at the
// bottom without taking the lock in the common case; thieves always hold mu
// (they are additionally serialized per victim by the combiner lock, see
// request.go) and steal from the top, oldest task first. Owner and thief
// only contend on the last remaining task, which is resolved under mu.
type deque struct {
	head atomic.Int64 // top: index of the next task to steal
	tail atomic.Int64 // bottom: index of the next free slot
	mu   sync.Mutex   // held by thieves; by the owner only on conflict/growth
	buf  atomic.Pointer[dequeBuf]
}

type dequeBuf struct {
	mask int64
	slot []*Task
}

func (d *deque) init() {
	d.buf.Store(&dequeBuf{mask: dequeInitCap - 1, slot: make([]*Task, dequeInitCap)})
}

// size is a racy estimate of the number of queued tasks; it is used only to
// probe victims before posting a steal request.
func (d *deque) size() int64 {
	n := d.tail.Load() - d.head.Load()
	if n < 0 {
		return 0
	}
	return n
}

// push appends t at the bottom. Owner only. The paper reports a ~10 cycle
// enqueue; this path is two atomic loads, one store into the buffer, and one
// atomic store of the new bottom.
func (d *deque) push(t *Task) {
	b := d.tail.Load()
	buf := d.buf.Load()
	if b-d.head.Load() >= buf.mask { // keep one slack slot
		d.grow(b)
		buf = d.buf.Load()
	}
	buf.slot[b&buf.mask] = t
	d.tail.Store(b + 1)
}

// grow doubles the buffer. It runs under mu so concurrent thieves never
// observe a partially copied buffer; head cannot advance while mu is held
// because every steal holds mu.
func (d *deque) grow(b int64) {
	d.mu.Lock()
	old := d.buf.Load()
	nbuf := &dequeBuf{
		mask: old.mask*2 + 1,
		slot: make([]*Task, (old.mask+1)*2),
	}
	for i := d.head.Load(); i < b; i++ {
		nbuf.slot[i&nbuf.mask] = old.slot[i&old.mask]
	}
	d.buf.Store(nbuf)
	d.mu.Unlock()
}

// pop removes and returns the most recently pushed task, or nil if the deque
// is empty or the task was lost to a thief. Owner only.
func (d *deque) pop() *Task {
	b := d.tail.Load() - 1
	d.tail.Store(b)
	h := d.head.Load()
	if b < h {
		// Deque was empty; restore the canonical empty state.
		d.tail.Store(h)
		return nil
	}
	buf := d.buf.Load()
	t := buf.slot[b&buf.mask]
	if b > h {
		// At least one task remains above ours: no thief can reach slot b
		// because every steal checks head < tail and tail is already b.
		return t
	}
	// b == h: a single task is left and a thief may be racing for it.
	d.mu.Lock()
	h = d.head.Load()
	if h <= b {
		// Still ours; claim it by moving both ends past it.
		d.head.Store(b + 1)
		d.tail.Store(b + 1)
		d.mu.Unlock()
		return t
	}
	// The thief won; leave the deque empty.
	d.tail.Store(h)
	d.mu.Unlock()
	return nil
}

// stealLocked removes and returns the oldest task, or nil. The caller must
// hold d.mu. A concurrent owner pop of the same task is detected by
// re-checking the bottom after advancing the top; on conflict the steal backs
// off and lets the owner (which always wins ties under mu) take the task.
func (d *deque) stealLocked() *Task {
	h := d.head.Load()
	if h >= d.tail.Load() {
		return nil
	}
	buf := d.buf.Load()
	t := buf.slot[h&buf.mask]
	d.head.Store(h + 1)
	if d.head.Load() > d.tail.Load() {
		// The owner decremented tail concurrently and is taking this task.
		d.head.Store(h)
		return nil
	}
	return t
}
