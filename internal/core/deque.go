//xk:hotpath — the Chase–Lev deque is lock-free by construction; xkvet
// rejects any mutex, channel, sleep, fmt or goroutine launch added here.

package core

import (
	"sync/atomic"
)

const dequeInitCap = 256 // initial slots; must be a power of two

// deque is the per-worker work-stealing deque, a lock-free Chase–Lev
// circular deque (Chase, Lev: "Dynamic Circular Work-Stealing Deque",
// SPAA 2005) in the role the paper assigns to Cilk's T.H.E. protocol
// (§II-C): the owner pushes and pops at the bottom, thieves steal from the
// top, oldest task first, and the two only meet on the last remaining task.
// Unlike T.H.E. there is no mutex anywhere — thieves claim the top slot
// with a CAS on head, the owner claims a contended last task with the same
// CAS, and buffer growth publishes a fresh buffer through an atomic
// pointer. The paper's steal-request aggregation (request.go) still
// serializes *aggregated* thieves per victim behind the combiner election
// lock, but the deque itself never blocks anyone.
//
// Memory-ordering argument, in Go's memory model (all sync/atomic
// operations are sequentially consistent, so the weak-memory fences of the
// original algorithm and of Lê et al.'s C11 port are implied):
//
//   - head only ever increases, and only by a successful CompareAndSwap.
//     A claim of index h is therefore unique: whoever wins the CAS h→h+1
//     owns the task at slot h, whether thief (steal) or owner (pop of the
//     last task).
//   - A thief reads a slot only after observing head h < tail: the owner's
//     slot store for index h is sequenced before its tail.Store(h+1), so
//     the observed tail orders the slot write before the thief's read.
//   - A slot at index h can only be overwritten by the push of index
//     h+capacity, and push never lets tail-head exceed the capacity of the
//     buffer it writes to, so head must first move past h — which fails
//     every outstanding CAS on h. A stale slot read is thus always
//     discarded. (Slots are atomic.Pointer values so this benign stale
//     read is also well-defined for the race detector.)
//   - grow copies [head, tail) into the new buffer before publishing it;
//     head is monotone, so any index a thief can still claim from the old
//     buffer holds the same task in the new one.
//
// On top of the circular buffer sits next, a single-task fast slot in the
// spirit of the Go scheduler's runnext, tuned for the spawn-sync cycle —
// push one task, immediately pop it back, the paper's dominant fork-join
// pattern. A push fills the slot only when the whole deque was empty;
// otherwise it takes the ordinary buffer path. That choice pins down the
// ordering invariant: whenever the slot is occupied, every buffer task was
// pushed after it (the buffer was empty when the slot filled, and only the
// owner adds tasks), so the slot holds the deque's OLDEST task. The owner's
// pop therefore drains the buffer (newest) first and swaps the slot out
// last; a thief tries the slot (oldest) first and falls back to the buffer.
// The empty-deque spawn then costs one uncontended store and its pop one
// XCHG on the same word instead of a buffer store, a bottom publish and a
// head CAS — while a batch of pushes costs exactly what it did before.
//
// Slot correctness is simpler than the buffer's: it is a single word, every
// non-nil write is the owner's push (legal because the owner re-fills it
// only after observing it nil, and thieves only ever clear it), and every
// claim — owner Swap, thief CompareAndSwap — removes the current occupant
// atomically, so each pushed task is handed out exactly once. A thief whose
// CAS succeeds against a recycled same-pointer Task is claiming the slot's
// *current* occupant — a legitimately queued new incarnation, not the stale
// one it first loaded — which is just a steal of that queued task; the
// generation-stamp argument (task.go seq) is not even needed here.
type deque struct {
	next atomic.Pointer[Task] // fast slot: oldest task when occupied (owner store/Swap, thief CAS)
	_    [56]byte             // keep the fast slot off the head line
	head atomic.Int64         // top: index of the next task to steal (CAS-claimed)
	_    [56]byte             // keep the thief-side and owner-side words on separate lines
	tail atomic.Int64         // bottom: index of the next free slot (owner only)
	_    [56]byte
	buf  atomic.Pointer[dequeBuf]
}

type dequeBuf struct {
	mask int64
	slot []atomic.Pointer[Task]
}

func (d *deque) init() {
	d.buf.Store(&dequeBuf{mask: dequeInitCap - 1, slot: make([]atomic.Pointer[Task], dequeInitCap)})
}

// size is a racy estimate of the number of queued tasks; it is used only to
// probe victims before posting a steal request.
func (d *deque) size() int64 {
	n := d.tail.Load() - d.head.Load()
	if n < 0 {
		n = 0
	}
	if d.next.Load() != nil {
		n++
	}
	return n
}

// push appends t at the bottom. Owner only. An empty deque routes t into
// the fast slot; otherwise t goes to the circular buffer, which keeps the
// slot-holds-the-oldest invariant (see the type comment). The emptiness
// check is sound against racing thieves: the owner's tail read is exact,
// head never exceeds tail while the owner is outside popBuf, and thieves
// only remove — so head >= tail proves the buffer empty, and a nil slot
// stays nil until this store (only the owner writes non-nil). A thief that
// drains the buffer right after the check merely sends t down the buffer
// path, which is always correct.
func (d *deque) push(t *Task) {
	if d.next.Load() == nil && d.head.Load() >= d.tail.Load() {
		d.next.Store(t)
		return
	}
	d.pushBuf(t)
}

// pushBuf appends t at the bottom of the circular buffer. Owner only. The
// paper reports a ~10 cycle enqueue; this path is two atomic loads, one
// atomic store into the buffer, and one atomic store of the new bottom —
// no CAS, no lock.
func (d *deque) pushBuf(t *Task) {
	b := d.tail.Load()
	buf := d.buf.Load()
	if b-d.head.Load() > buf.mask { // full
		d.grow(b)
		buf = d.buf.Load()
	}
	buf.slot[b&buf.mask].Store(t)
	d.tail.Store(b + 1)
}

// grow doubles the buffer and publishes it through the atomic pointer.
// Owner only, lock-free: thieves keep reading the old buffer until they
// reload the pointer, which is safe because every index in [head, tail) is
// copied before the publish and head never decreases — an index still
// claimable from the old buffer holds the identical task in the new one.
func (d *deque) grow(b int64) {
	old := d.buf.Load()
	nbuf := &dequeBuf{
		mask: old.mask*2 + 1,
		slot: make([]atomic.Pointer[Task], (old.mask+1)*2),
	}
	for i := d.head.Load(); i < b; i++ {
		nbuf.slot[i&nbuf.mask].Store(old.slot[i&old.mask].Load())
	}
	d.buf.Store(nbuf)
}

// pop removes and returns the most recently pushed task, or nil if the
// deque is empty or the task was lost to a thief. Owner only, lock-free.
// The buffer holds the newer tasks whenever the fast slot is occupied, so
// LIFO order means draining the buffer first; the slot is swapped out last
// (a thief's CAS and this Swap atomically arbitrate the claim — only the
// owner stores non-nil, so the slot either still holds the loaded task or
// a thief just took it, and Swap settles which).
func (d *deque) pop() *Task {
	if t := d.popBuf(); t != nil {
		return t
	}
	if d.next.Load() != nil {
		if t := d.next.Swap(nil); t != nil {
			return t
		}
	}
	// An empty pop is the owner's quiescence point, where a buffer grown
	// for a past frontier is released; successful pops (including the slot
	// path above) never pay the check.
	d.shrink()
	return nil
}

// popBuf removes and returns the bottom task of the circular buffer, or
// nil if it is empty or the task was lost to a thief. Owner only.
//
// The owner is the only writer of tail, and head is monotone, so an
// initial head >= tail read proves the buffer empty without touching tail.
// A single remaining task is claimed by the same head CAS thieves use —
// the arbiter for index h is always the CAS h→h+1, so the task goes to
// exactly one side. Only the two-or-more case uses the Chase–Lev
// decrement-first dance: publish the new bottom, then re-read head to see
// whether thieves caught up while we were doing it.
//
// Every nil return leaves the buffer in the canonical empty state
// (head == tail); the release of a grown buffer (shrink) is pop's job, so
// a drain that ends in the fast slot does not pay it mid-pop.
func (d *deque) popBuf() *Task {
	b := d.tail.Load() - 1
	h := d.head.Load()
	if h > b {
		return nil // empty (h == b+1): only the owner adds tasks
	}
	buf := d.buf.Load()
	if h == b {
		// Single task: race thieves for it with the claiming CAS. No tail
		// update needed — on either outcome head becomes b+1 == tail, the
		// canonical empty state. Only the (rare, contended) losing outcome
		// shrinks: the winning pop is the spawn-sync hot path, and the next
		// empty pop will release the buffer anyway.
		t := buf.slot[b&buf.mask].Load()
		if d.head.CompareAndSwap(b, b+1) {
			return t
		}
		return nil
	}
	// At least two tasks were present: take the bottom one. Publish the
	// decremented bottom first so a thief's head < tail check cannot hand
	// out index b concurrently with us taking it.
	d.tail.Store(b)
	h = d.head.Load()
	t := buf.slot[b&buf.mask].Load()
	if h < b {
		// At least one task remains above ours: no thief can claim index b,
		// because claiming it requires head == b first.
		return t
	}
	if h > b {
		// Thieves drained everything, index b included, before our
		// decrement was visible. Restore the canonical empty state.
		d.tail.Store(b + 1)
		return nil
	}
	// h == b: ours is the last task and thieves may be racing for it.
	if !d.head.CompareAndSwap(b, b+1) {
		d.tail.Store(b + 1)
		return nil // a thief won the claim
	}
	d.tail.Store(b + 1)
	return t
}

// shrink resets a grown buffer back to the initial capacity once the owner
// observes its deque empty, so a worker that once held a huge frontier (a
// wide fan-out, a big loop) does not keep the doubled buffers for the rest
// of the runtime's life. Owner only, and only from the empty state
// (head >= tail): no live index exists, so no thief can be claiming a slot
// — a thief that later observes tail > head is, by seq-cst ordering,
// guaranteed to reload the buffer pointer published before that push (the
// same publication argument as grow). Slots are fresh, so stale *Task
// pointers in the old buffer are unreachable and collectable immediately.
//
// Every pop path that returns nil ends in the canonical empty state and
// calls shrink — including the thief-won races — so "pop returned nil"
// deterministically implies "buffer is back at the initial capacity".
// Successful pops never pay the check: the owner's next miss releases the
// memory, which keeps the spawn-sync hot path (push one, pop it back)
// untouched.
func (d *deque) shrink() {
	if d.buf.Load().mask == dequeInitCap-1 {
		return // still at the initial size: nothing to release
	}
	d.buf.Store(&dequeBuf{mask: dequeInitCap - 1, slot: make([]atomic.Pointer[Task], dequeInitCap)})
}

// steal removes and returns the oldest task, or nil if the deque is empty.
// Any thief may call it concurrently with the owner and with other thieves.
// An occupied fast slot holds the deque's oldest task, so it is tried
// first, claimed with a CAS (never a Swap: a Swap could yank a task the
// thief never observed out from under a concurrent owner push); the buffer,
// oldest-first as always, is the fallback.
func (d *deque) steal() *Task {
	if t := d.next.Load(); t != nil && d.next.CompareAndSwap(t, nil) {
		return t
	}
	return d.stealBuf()
}

// stealBuf removes and returns the oldest task of the circular buffer, or
// nil if it is empty; claims are arbitrated by the CAS on head. A failed
// CAS means someone else (a thief, or the owner popping the last task)
// claimed the observed index; the loop retries with fresh indices until it
// wins or finds the buffer empty.
func (d *deque) stealBuf() *Task {
	for {
		h := d.head.Load()
		b := d.tail.Load()
		if h >= b {
			return nil // empty (b may trail h by one during an owner pop)
		}
		buf := d.buf.Load()
		t := buf.slot[h&buf.mask].Load()
		if d.head.CompareAndSwap(h, h+1) {
			return t
		}
	}
}
