//xk:hotpath — alloc and recycle run once per task on the spawn/complete
// fast path; xkvet rejects blocking or allocating constructs in this file.
// The per-task access mutex taken for dataflow descriptors and the
// once-per-job root release are the marked exceptions.

package core

import "sync"

// Task-descriptor slab recycling. Steady state spawns allocate nothing: a
// descriptor is taken off the worker-local free list with two plain loads
// and returned to it on completion, and the free list is replenished a slab
// (not a descriptor) at a time, so the allocator and the GC see one
// new([taskSlabSize]Task) per slab instead of one object per task. Three
// invariants make the recycling safe:
//
//   - Owner-only lists. A descriptor is taken from the allocating worker's
//     list and returned to the *completing* worker's list (tasks migrate
//     between lists through steals), but each list is touched only by its
//     owning worker, so alloc and recycle are unsynchronized.
//
//   - Generation stamps. Every recycle advances the descriptor's sequence
//     number, so a stale taskRef held by a Handle frontier — the only
//     reference that may legitimately outlive a task — identifies itself by
//     seq mismatch instead of resurrecting the reused descriptor. For a
//     descriptor that ever carried dataflow accesses the stamp happens
//     under the descriptor's mutex (stale refs probe seq under the same
//     lock, see depOn); for the pure fork-join majority no taskRef can
//     exist and the stamp is a plain store.
//
//   - Bounded retention. A slab stays reachable while any of its
//     descriptors is live or listed, so a worker caps its free list at
//     maxFreeTasks and drops descriptors completed beyond the cap: after a
//     burst the hoard is collectable instead of pinned forever.
//
// Root descriptors cycle separately through rootPool (a sync.Pool): they
// are allocated by external submitters, which must not touch the owner-only
// worker lists, and released once per job, where the pool's cost is noise.
const (
	// taskSlabSize is the number of descriptors carved per free-list
	// refill: at 128 B per descriptor one slab is an 8 KiB allocation,
	// large enough to amortize the allocator round-trip over a burst of
	// spawns, small enough that a mostly-idle worker pins only two pages.
	taskSlabSize = 64

	// maxFreeTasks caps a worker's free list. Recycles beyond the cap drop
	// the descriptor for the GC instead of hoarding it; the cap (512 KiB of
	// descriptors per worker) is far above any steady-state working set, so
	// it only engages after a pathological fan-in burst.
	maxFreeTasks = 4096
)

// alloc takes a task descriptor from the worker-local free list, carving a
// fresh slab when the list is empty. Owner only.
func (w *Worker) alloc() *Task {
	t := w.freeList
	if t == nil {
		return w.refill()
	}
	w.freeList = t.next
	w.freeLen--
	t.next = nil
	return t
}

// refill carves a new slab, links all but one descriptor into the free
// list, and returns the remaining one. Runs once per taskSlabSize allocs
// that miss the list, not once per task.
func (w *Worker) refill() *Task {
	slab := new([taskSlabSize]Task)
	for i := taskSlabSize - 1; i >= 1; i-- {
		slab[i].next = w.freeList
		w.freeList = &slab[i]
	}
	w.freeLen += taskSlabSize - 1
	return &slab[0]
}

// recycle resets t, stamps its generation, and returns it to the local free
// list (or drops it once the list is full). Owner only.
func (w *Worker) recycle(t *Task) {
	if t.flags&flagHasAccess != 0 {
		t.everAcc = true
		t.mu.Lock() //xk:allow(hotpath): per-task access mutex, dataflow tasks only
		t.seq++
		t.done = false
		t.succ = t.succ[:0]
		t.mu.Unlock() //xk:allow(hotpath): see Lock above
		t.accs = t.accs[:0]
	} else if t.everAcc {
		// A stale taskRef from an earlier dataflow lifetime may still probe
		// seq under the descriptor mutex (depOn); stamp under the same lock.
		t.mu.Lock() //xk:allow(hotpath): rare — descriptor had accesses in an earlier lifetime
		t.seq++
		t.mu.Unlock() //xk:allow(hotpath): see Lock above
	} else {
		// No taskRef to this descriptor has ever existed: nobody can read
		// seq concurrently, so the generation stamp is a plain store.
		t.seq++
	}
	t.body = nil
	t.parent = nil
	t.job = nil
	t.flags = 0
	// wait and children need no reset: a task only completes once wait
	// reached zero (it became ready) and its frame drained (fully strict
	// execution) — and execute rebalances any remote-completion residue out
	// of children before completing, so both counters are already zero here.
	if w.freeLen >= maxFreeTasks {
		return // list full: let the GC take it (and eventually its slab)
	}
	t.next = w.freeList
	w.freeList = t
	w.freeLen++
}

// rootPool recycles root task descriptors across jobs. Roots are allocated
// on the submission path — outside the pool, where the owner-only worker
// free lists are off limits — and released by whichever worker completes
// them, so the pool is the one descriptor cache that is legitimately
// multi-producer/multi-consumer.
var rootPool = sync.Pool{New: func() any { return new(Task) }}

// newRootTask takes a recycled (or fresh) root descriptor. Any goroutine
// may call it.
func newRootTask() *Task {
	return rootPool.Get().(*Task) //xk:allow(hotpath): once per job submission, not per task
}

// releaseRoot resets a completed root descriptor and returns it to
// rootPool.
//
//xk:coldpath — runs once per job (root completion), not once per task.
func releaseRoot(t *Task) {
	t.body = nil
	t.parent = nil
	t.job = nil
	t.flags = 0
	t.next = nil
	// Roots never carry dataflow accesses, so no taskRef can reference
	// them; the generation stamp is a plain store, kept so every recycle
	// path advances the generation.
	t.seq++
	rootPool.Put(t)
}
