package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIterations(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		withRuntime(t, Config{Workers: workers}, func(rt *Runtime) {
			const n = 100000
			hits := make([]int32, n)
			rt.RunRoot(func(w *Worker) {
				w.ForEach(0, n, LoopOpts{}, func(w *Worker, lo, hi int64) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d: iteration %d executed %d times", workers, i, h)
				}
			}
		})
	}
}

func TestForEachEmptyAndTinyRanges(t *testing.T) {
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		rt.RunRoot(func(w *Worker) {
			ran := false
			w.ForEach(5, 5, LoopOpts{}, func(*Worker, int64, int64) { ran = true })
			if ran {
				t.Error("body ran for empty range")
			}
			w.ForEach(7, 3, LoopOpts{}, func(*Worker, int64, int64) { ran = true })
			if ran {
				t.Error("body ran for inverted range")
			}
			var count int64
			w.ForEach(0, 1, LoopOpts{}, func(_ *Worker, lo, hi int64) {
				atomic.AddInt64(&count, hi-lo)
			})
			if count != 1 {
				t.Errorf("single-iteration loop executed %d iterations", count)
			}
		})
	})
}

func TestForEachExplicitGrain(t *testing.T) {
	withRuntime(t, Config{Workers: 2}, func(rt *Runtime) {
		const n = 1000
		var maxChunk atomic.Int64
		var total atomic.Int64
		rt.RunRoot(func(w *Worker) {
			w.ForEach(0, n, LoopOpts{SeqGrain: 10}, func(_ *Worker, lo, hi int64) {
				if sz := hi - lo; sz > maxChunk.Load() {
					maxChunk.Store(sz)
				}
				total.Add(hi - lo)
			})
		})
		if total.Load() != n {
			t.Fatalf("total=%d want %d", total.Load(), n)
		}
		if maxChunk.Load() > 10 {
			t.Fatalf("chunk of %d iterations exceeds SeqGrain=10", maxChunk.Load())
		}
	})
}

func TestForEachNegativeBounds(t *testing.T) {
	withRuntime(t, Config{Workers: 3}, func(rt *Runtime) {
		var sum atomic.Int64
		rt.RunRoot(func(w *Worker) {
			w.ForEach(-500, 500, LoopOpts{}, func(_ *Worker, lo, hi int64) {
				s := int64(0)
				for i := lo; i < hi; i++ {
					s += i
				}
				sum.Add(s)
			})
		})
		if got := sum.Load(); got != -500 {
			t.Fatalf("sum=%d want -500", got)
		}
	})
}

func TestForEachNested(t *testing.T) {
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		const n, m = 64, 64
		hits := make([]int32, n*m)
		rt.RunRoot(func(w *Worker) {
			w.ForEach(0, n, LoopOpts{}, func(w *Worker, lo, hi int64) {
				for i := lo; i < hi; i++ {
					i := i
					w.ForEach(0, m, LoopOpts{}, func(_ *Worker, jlo, jhi int64) {
						for j := jlo; j < jhi; j++ {
							atomic.AddInt32(&hits[i*m+j], 1)
						}
					})
				}
			})
		})
		for idx, h := range hits {
			if h != 1 {
				t.Fatalf("cell %d executed %d times", idx, h)
			}
		}
	})
}

func TestForEachUnbalancedBodies(t *testing.T) {
	// Iterations with wildly different costs must still all run; this is the
	// scenario adaptive splitting exists for.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		const n = 2000
		var sum atomic.Int64
		rt.RunRoot(func(w *Worker) {
			w.ForEach(0, n, LoopOpts{SeqGrain: 4}, func(_ *Worker, lo, hi int64) {
				for i := lo; i < hi; i++ {
					work := 1
					if i%97 == 0 {
						work = 5000
					}
					acc := int64(0)
					for k := 0; k < work; k++ {
						acc++
					}
					sum.Add(acc / int64(work))
				}
			})
		})
		if got := sum.Load(); got != n {
			t.Fatalf("sum=%d want %d", got, n)
		}
	})
}

func TestForEachMixedWithTasks(t *testing.T) {
	// A foreach may run concurrently with fork-join tasks of the same frame.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var loopSum, taskSum atomic.Int64
		rt.RunRoot(func(w *Worker) {
			for i := 0; i < 32; i++ {
				w.Spawn(func(*Worker) { taskSum.Add(1) })
			}
			w.ForEach(0, 10000, LoopOpts{}, func(_ *Worker, lo, hi int64) {
				loopSum.Add(hi - lo)
			})
			w.Sync()
		})
		if loopSum.Load() != 10000 || taskSum.Load() != 32 {
			t.Fatalf("loopSum=%d taskSum=%d", loopSum.Load(), taskSum.Load())
		}
	})
}

func TestForEachWithoutAggregation(t *testing.T) {
	withRuntime(t, Config{Workers: 4, NoAggregation: true}, func(rt *Runtime) {
		const n = 50000
		var total atomic.Int64
		rt.RunRoot(func(w *Worker) {
			w.ForEach(0, n, LoopOpts{}, func(_ *Worker, lo, hi int64) {
				total.Add(hi - lo)
			})
		})
		if total.Load() != n {
			t.Fatalf("total=%d want %d", total.Load(), n)
		}
	})
}

func TestForEachQuickExactlyOnce(t *testing.T) {
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		f := func(n uint16, grain uint8) bool {
			size := int64(n)
			hits := make([]int32, size)
			rt.RunRoot(func(w *Worker) {
				w.ForEach(0, size, LoopOpts{SeqGrain: int64(grain)},
					func(_ *Worker, lo, hi int64) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
			})
			for _, h := range hits {
				if h != 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestForEachSplitStats(t *testing.T) {
	// With several workers and a long loop, stealing must actually happen
	// through the splitter (reserved slices count as split tasks).
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		rt.ResetStats()
		var spin atomic.Int64
		rt.RunRoot(func(w *Worker) {
			w.ForEach(0, 1<<16, LoopOpts{SeqGrain: 64}, func(_ *Worker, lo, hi int64) {
				for i := lo; i < hi; i++ {
					spin.Add(1)
				}
			})
		})
		s := rt.Stats()
		if s.SplitTasks == 0 {
			t.Skipf("no splits observed (machine too fast/small); stats: %+v", s)
		}
	})
}
