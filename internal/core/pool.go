package core

import "context"

// Pool is the submission-side interface of the scheduler: everything a
// client (the xkaapi facade, the paradigm layers, the HTTP front-end) needs
// to inject jobs, drain them and observe the counters. Both a standalone
// *Runtime — one shard — and a *Fleet of Runtime replicas behind the
// load-aware router satisfy it, so code programming against Pool works
// unchanged on either.
//
// The canonical submit shape is ctx-first: Submit(fn) is exactly
// SubmitCtx(context.Background(), fn), and SubmitAffinity adds a placement
// hint a single Runtime is free to ignore. All methods are safe for
// concurrent use from any goroutine outside the pool.
type Pool interface {
	// Submit enqueues fn as an independent root job and returns its handle
	// immediately. It is SubmitCtx with context.Background().
	Submit(fn func(*Worker)) *Job
	// SubmitCtx is the canonical submission entry point: the job is bound
	// to ctx (cancellation fails the job and skips its remaining tasks).
	SubmitCtx(ctx context.Context, fn func(*Worker)) *Job
	// SubmitAffinity is SubmitCtx with a placement hint: jobs submitted
	// with the same key land on the same shard (cache locality for related
	// jobs). A single-shard pool ignores the key.
	SubmitAffinity(ctx context.Context, key uint64, fn func(*Worker)) *Job
	// RunRoot is Submit followed by Job.Wait.
	RunRoot(fn func(*Worker)) error
	// Wait blocks until every job submitted so far has completed and
	// returns the aggregated failures of the drain (see Runtime.Wait).
	Wait() error
	// Close drains every in-flight job, then stops and joins all workers.
	Close()
	// CloseErr is Close plus a lifetime failure summary.
	CloseErr() error
	// Stats sums the scheduler counters over every worker of every shard.
	Stats() Stats
	// ResetStats zeroes the counters; quiescent pools only.
	ResetStats()
	// NumWorkers is the total worker count across all shards.
	NumWorkers() int
	// Shards is the number of Runtime replicas behind the interface
	// (1 for a standalone Runtime).
	Shards() int
	// ShardStats returns one entry per shard: placement, migration and
	// scheduler counters, for per-shard monitoring surfaces.
	ShardStats() []ShardStats
	// String describes the pool configuration for logs.
	String() string
}

// Both shapes satisfy the interface; keeping the assertions next to its
// definition turns an interface drift into a compile error here, not in a
// caller.
var (
	_ Pool = (*Runtime)(nil)
	_ Pool = (*Fleet)(nil)
)

// ShardStats describes one shard of a Fleet — or a standalone Runtime,
// which reports itself as the single shard — for per-shard monitoring:
// where the router placed work (LiveRoots, Sched.Spawned), where work
// actually ran (Sched.Executed), and how much the cross-shard steal path
// migrated (StolenIn/StolenOut). With stealing enabled the quiescent
// Spawned == Executed + Cancelled balance holds fleet-wide, not per shard:
// a migrated root is spawned on its home shard and executed where it was
// stolen to.
type ShardStats struct {
	Shard     int   // shard index in [0, Shards)
	Workers   int   // workers of this shard
	InboxLen  int64 // roots queued in the shard's inbox, not yet claimed
	LiveRoots int64 // roots accepted by this shard and not yet finished
	StolenIn  int64 // roots this shard's workers pulled from sibling inboxes
	StolenOut int64 // roots of this shard claimed by sibling shards

	// Health supervision (health.go). Unhealthy means the supervisor is
	// currently diverting placements away from this shard; transitions count
	// both directions, so one full unhealthy-and-back episode adds 2.
	Unhealthy         bool
	HealthTransitions int64
	RoutedAround      int64 // placements diverted away while unhealthy

	Sched Stats // the shard's scheduler counters
}
