package core

import (
	"sync/atomic"
	"testing"
	"time"
)

func withRuntime(t *testing.T, cfg Config, fn func(rt *Runtime)) {
	t.Helper()
	rt := NewRuntime(cfg)
	defer rt.Close()
	fn(rt)
}

func TestRunRootExecutes(t *testing.T) {
	withRuntime(t, Config{Workers: 2}, func(rt *Runtime) {
		ran := false
		rt.RunRoot(func(w *Worker) { ran = true })
		if !ran {
			t.Fatal("root body did not run")
		}
	})
}

func TestSpawnSyncSequentialSemantics(t *testing.T) {
	// With one worker and no steals the execution order must follow the
	// sequential elision of the program.
	withRuntime(t, Config{Workers: 1}, func(rt *Runtime) {
		var a, b int
		rt.RunRoot(func(w *Worker) {
			w.Spawn(func(*Worker) { a = 1 })
			b = 2
			w.Sync()
			if a != 1 {
				t.Error("child did not complete before Sync returned")
			}
		})
		if a != 1 || b != 2 {
			t.Fatalf("a=%d b=%d", a, b)
		}
	})
}

func fibTask(w *Worker, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	w.Spawn(func(w *Worker) { fibTask(w, &r1, n-1) })
	fibTask(w, &r2, n-2)
	w.Sync()
	*r = r1 + r2
}

func fibSeq(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func TestFibForkJoin(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		withRuntime(t, Config{Workers: workers}, func(rt *Runtime) {
			var r int64
			rt.RunRoot(func(w *Worker) { fibTask(w, &r, 20) })
			if want := fibSeq(20); r != want {
				t.Fatalf("workers=%d: fib(20)=%d want %d", workers, r, want)
			}
		})
	}
}

func TestFibWithoutAggregation(t *testing.T) {
	withRuntime(t, Config{Workers: 4, NoAggregation: true}, func(rt *Runtime) {
		var r int64
		rt.RunRoot(func(w *Worker) { fibTask(w, &r, 18) })
		if want := fibSeq(18); r != want {
			t.Fatalf("fib(18)=%d want %d", r, want)
		}
	})
}

func TestImplicitSyncAtTaskEnd(t *testing.T) {
	// The model is fully strict: a task does not complete (and so does not
	// release its parent's Sync) before its own children do.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var leaves atomic.Int32
		rt.RunRoot(func(w *Worker) {
			for i := 0; i < 8; i++ {
				w.Spawn(func(w *Worker) {
					for j := 0; j < 8; j++ {
						w.Spawn(func(*Worker) { leaves.Add(1) })
					}
					// no explicit Sync: implicit at end of body
				})
			}
			w.Sync()
			if n := leaves.Load(); n != 64 {
				t.Errorf("after Sync: %d leaves, want 64", n)
			}
		})
	})
}

func TestMultipleRunRoots(t *testing.T) {
	withRuntime(t, Config{Workers: 3}, func(rt *Runtime) {
		for iter := 0; iter < 10; iter++ {
			var sum atomic.Int64
			rt.RunRoot(func(w *Worker) {
				for i := 1; i <= 100; i++ {
					i := i
					w.Spawn(func(*Worker) { sum.Add(int64(i)) })
				}
			})
			if got := sum.Load(); got != 5050 {
				t.Fatalf("iter %d: sum=%d want 5050", iter, got)
			}
		}
	})
}

func TestSyncWithoutChildren(t *testing.T) {
	withRuntime(t, Config{Workers: 2}, func(rt *Runtime) {
		rt.RunRoot(func(w *Worker) {
			w.Sync() // must be a no-op, not a hang
		})
	})
}

func TestDataflowChain(t *testing.T) {
	// A chain x -> y -> z of RAW dependencies must execute in order even
	// though tasks are spawned at once.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var h Handle
		val := 0
		order := make([]int, 0, 3)
		rt.RunRoot(func(w *Worker) {
			w.SpawnTask(func(*Worker) { val = 1; order = append(order, 1) }, Access{&h, ModeWrite})
			w.SpawnTask(func(*Worker) { val *= 10; order = append(order, 2) }, Access{&h, ModeReadWrite})
			w.SpawnTask(func(*Worker) { val += 5; order = append(order, 3) }, Access{&h, ModeReadWrite})
			w.Sync()
		})
		if val != 15 {
			t.Fatalf("val=%d want 15 (order %v)", val, order)
		}
	})
}

func TestDataflowDiamond(t *testing.T) {
	// w writes, two readers read concurrently, final writer waits for both.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var h Handle
		var src int
		var r1, r2 int
		var final int
		rt.RunRoot(func(w *Worker) {
			w.SpawnTask(func(*Worker) { src = 42 }, Access{&h, ModeWrite})
			w.SpawnTask(func(*Worker) { r1 = src }, Access{&h, ModeRead})
			w.SpawnTask(func(*Worker) { r2 = src }, Access{&h, ModeRead})
			w.SpawnTask(func(*Worker) { final = r1 + r2 }, Access{&h, ModeWrite})
			w.Sync()
		})
		if final != 84 {
			t.Fatalf("final=%d want 84", final)
		}
	})
}

func TestDataflowIndependentHandles(t *testing.T) {
	// Tasks on distinct handles must not serialize; just verify they all run
	// and the per-handle chains stay ordered.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		const chains = 8
		handles := make([]Handle, chains)
		counters := make([]int, chains)
		rt.RunRoot(func(w *Worker) {
			for step := 0; step < 50; step++ {
				for c := 0; c < chains; c++ {
					c, step := c, step
					w.SpawnTask(func(*Worker) {
						if counters[c] != step {
							t.Errorf("chain %d: step %d ran at position %d", c, step, counters[c])
						}
						counters[c]++
					}, Access{&handles[c], ModeReadWrite})
				}
			}
			w.Sync()
		})
		for c, n := range counters {
			if n != 50 {
				t.Fatalf("chain %d advanced %d times, want 50", c, n)
			}
		}
	})
}

func TestDataflowCumulWrite(t *testing.T) {
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var h Handle
		var acc atomic.Int64
		var final int64
		rt.RunRoot(func(w *Worker) {
			w.SpawnTask(func(*Worker) { acc.Store(100) }, Access{&h, ModeWrite})
			for i := 1; i <= 20; i++ {
				i := int64(i)
				w.SpawnTask(func(*Worker) { acc.Add(i) }, Access{&h, ModeCumulWrite})
			}
			w.SpawnTask(func(*Worker) { final = acc.Load() }, Access{&h, ModeRead})
			w.Sync()
		})
		if final != 100+210 {
			t.Fatalf("final=%d want 310", final)
		}
	})
}

func TestDataflowSelfDependency(t *testing.T) {
	// A task with two accesses to the same handle must not wait on itself.
	withRuntime(t, Config{Workers: 2}, func(rt *Runtime) {
		var h Handle
		ran := false
		rt.RunRoot(func(w *Worker) {
			w.SpawnTask(func(*Worker) { ran = true },
				Access{&h, ModeRead}, Access{&h, ModeReadWrite})
			w.Sync()
		})
		if !ran {
			t.Fatal("self-dependent task never ran")
		}
	})
}

func TestDataflowManyGenerationsRecycling(t *testing.T) {
	// Long RW chains recycle task objects through handle frontiers; the
	// sequence numbers must prevent stale references from creating phantom
	// dependencies. 5000 generations far exceeds the free-list size.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var h Handle
		val := 0
		rt.RunRoot(func(w *Worker) {
			for i := 0; i < 5000; i++ {
				w.SpawnTask(func(*Worker) { val++ }, Access{&h, ModeReadWrite})
			}
			w.Sync()
		})
		if val != 5000 {
			t.Fatalf("val=%d want 5000", val)
		}
	})
}

func TestRecursiveDataflowTasks(t *testing.T) {
	// Unlike QUARK/StarPU/SMPSs (flat task model), X-Kaapi tasks may spawn
	// dataflow subtasks.
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var h Handle
		total := 0
		rt.RunRoot(func(w *Worker) {
			w.SpawnTask(func(w *Worker) {
				var inner Handle
				local := 0
				for i := 0; i < 10; i++ {
					w.SpawnTask(func(*Worker) { local++ }, Access{&inner, ModeReadWrite})
				}
				w.Sync()
				total = local
			}, Access{&h, ModeWrite})
			w.SpawnTask(func(*Worker) { total *= 2 }, Access{&h, ModeReadWrite})
			w.Sync()
		})
		if total != 20 {
			t.Fatalf("total=%d want 20", total)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	withRuntime(t, Config{Workers: 2}, func(rt *Runtime) {
		rt.ResetStats()
		var r int64
		rt.RunRoot(func(w *Worker) { fibTask(w, &r, 15) })
		// The second worker publishes its batched counters as it goes
		// idle, which can trail RunRoot by a scheduling quantum.
		deadline := time.Now().Add(5 * time.Second)
		s := rt.Stats()
		for s.Executed != s.Spawned && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
			s = rt.Stats()
		}
		if s.Spawned == 0 || s.Executed == 0 {
			t.Fatalf("stats not collected: %+v", s)
		}
		// Executed counts spawned tasks plus the root task.
		if s.Executed != s.Spawned {
			t.Fatalf("executed %d != spawned %d", s.Executed, s.Spawned)
		}
	})
}

func TestDefaultWorkerCount(t *testing.T) {
	rt := NewRuntime(Config{})
	defer rt.Close()
	if rt.NumWorkers() < 1 {
		t.Fatalf("NumWorkers=%d", rt.NumWorkers())
	}
}

func TestCloseIdempotent(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	rt.Close()
	rt.Close()
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeRead: "R", ModeWrite: "W", ModeReadWrite: "RW", ModeCumulWrite: "CW", Mode(99): "?",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String()=%q want %q", m, got, want)
		}
	}
}
