package core

import "sync/atomic"

// statFlushEvery is the batching window of the per-worker increment cache:
// the task-path counters (spawned, executed) are accumulated in plain
// owner-private fields and folded into the published atomics every this
// many increments, as well as at every idle transition (park, failed
// steal round, wait loops), at root-task completion and at worker exit.
// Go has no relaxed atomics, so each published increment is a full
// LOCK-prefixed RMW; batching divides that cost by the window while
// keeping Stats at most one window stale on a busy worker — and exact
// whenever the pool is quiescent, because every path into idleness
// flushes.
const statFlushEvery = 64

// statCache is one worker's pending increments. Only the owning worker
// touches the counts; dirty is the single cross-thread word — set (once
// per batch) when the cache becomes non-empty, cleared by flush — so
// ResetStats can wait for quiescent workers to publish without reading
// unsynchronized counters.
//
// Besides the pool-global counters, the cache also batches the per-job
// Executed attribution (jobfail.Counters), keyed by the job of the task
// the worker is currently executing: jobExecuted increments stay private
// until the worker switches jobs, flushes on a batch boundary, or
// transitions toward idleness, replacing the per-task shared-counter RMW
// of Job.Stats with one amortized add per batch. The job pointer is
// dropped at every flush so a parked worker never retains a finished job.
//
// The trailing pad keeps the cache — hammered by the owner on every task —
// off the cache line of whatever field follows it in Worker. Concretely,
// deque.next lives there: thieves CAS that slot, and without the pad every
// steal attempt would bounce the line the owner's counter writes go
// through (the atomicpad fixtures cover this shape; see
// internal/analysis/atomicpad).
type statCache struct {
	spawned  int64
	executed int64
	pending  int64 // increments since the last flush

	job         *Job  // job the jobExecuted batch is attributed to
	jobExecuted int64 // executed tasks of job not yet published to job.counts

	dirty atomic.Bool
	_     [64]byte // pad: owner-hot words share no line with the next field
}

// Stats is a snapshot of the scheduler event counters, summed over workers.
// The counters exist to validate the design experimentally: request
// aggregation should drive Combines well below StealRequests, and adaptive
// loops should keep Splits orders of magnitude below the iteration count
// (§II-C/§II-D of the paper).
type Stats struct {
	Spawned       int64 // tasks created (fork-join + dataflow + loop slices)
	Executed      int64 // task bodies run
	ReadyReleases int64 // dataflow successors released on completion
	StealRequests int64 // requests posted to victims
	StealHits     int64 // requests answered with a task
	StealProbes   int64 // victim inspections by idle thieves (incl. empty probes)
	EpochSkips    int64 // steal sweeps skipped because the work epoch was unchanged
	Combines      int64 // combiner passes (aggregated service of N requests)
	CombineServed int64 // requests answered during combiner passes
	Splits        int64 // splitter invocations on adaptive tasks
	SplitTasks    int64 // tasks produced by splitters
	Parks         int64 // times a worker parked after failing to find work
	Panicked      int64 // task bodies (incl. loop chunks, splitters) that panicked
	Cancelled     int64 // tasks skipped because their job had already failed
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Spawned += other.Spawned
	s.Executed += other.Executed
	s.ReadyReleases += other.ReadyReleases
	s.StealRequests += other.StealRequests
	s.StealHits += other.StealHits
	s.StealProbes += other.StealProbes
	s.EpochSkips += other.EpochSkips
	s.Combines += other.Combines
	s.CombineServed += other.CombineServed
	s.Splits += other.Splits
	s.SplitTasks += other.SplitTasks
	s.Parks += other.Parks
	s.Panicked += other.Panicked
	s.Cancelled += other.Cancelled
}

// workerStats holds one worker's counters. Every counter is an atomic,
// written only by the owning worker (each worker counts against its own
// struct, including a thief counting a steal it performed), so the
// increments are uncontended single-line RMWs and any goroutine may read a
// live snapshot at any time — this is what lets Runtime.Stats publish
// Executed/Cancelled while jobs are in flight. The two task-path counters
// (spawned, executed) are additionally batched through statCache: the
// worker publishes them every statFlushEvery tasks and at every idle
// transition, so a live read sees them advance in small steps rather than
// per task; all other counters (cancelled, panicked, steal/combine/split,
// parks, probes) are bumped directly and stay exactly live. The leading
// and trailing pads keep the counter block on cache lines no neighboring
// field (and no other worker's hot state) shares, so a /stats reader never
// bounces a line the task hot path is writing through false sharing.
type workerStats struct {
	_ [64]byte // pad: counters start on a fresh cache line

	spawned       atomic.Int64
	executed      atomic.Int64
	readyReleases atomic.Int64
	panicked      atomic.Int64
	cancelled     atomic.Int64

	stealRequests atomic.Int64
	stealHits     atomic.Int64
	stealProbes   atomic.Int64
	epochSkips    atomic.Int64
	combines      atomic.Int64
	combineServed atomic.Int64
	splits        atomic.Int64
	splitTasks    atomic.Int64
	parks         atomic.Int64

	_ [64]byte // pad: nothing after the counters shares their last line
}

// snapshot reads all counters. Safe at any time: each counter is atomic
// and monotone between resets, so a live snapshot is a consistent lower
// bound of each counter (the sum across workers is not a single instant,
// but every component only grows).
func (ws *workerStats) snapshot() Stats {
	return Stats{
		Spawned:       ws.spawned.Load(),
		Executed:      ws.executed.Load(),
		ReadyReleases: ws.readyReleases.Load(),
		Panicked:      ws.panicked.Load(),
		Cancelled:     ws.cancelled.Load(),
		StealRequests: ws.stealRequests.Load(),
		StealHits:     ws.stealHits.Load(),
		StealProbes:   ws.stealProbes.Load(),
		EpochSkips:    ws.epochSkips.Load(),
		Combines:      ws.combines.Load(),
		CombineServed: ws.combineServed.Load(),
		Splits:        ws.splits.Load(),
		SplitTasks:    ws.splitTasks.Load(),
		Parks:         ws.parks.Load(),
	}
}

func (ws *workerStats) reset() {
	ws.spawned.Store(0)
	ws.executed.Store(0)
	ws.readyReleases.Store(0)
	ws.panicked.Store(0)
	ws.cancelled.Store(0)
	ws.stealRequests.Store(0)
	ws.stealHits.Store(0)
	ws.stealProbes.Store(0)
	ws.epochSkips.Store(0)
	ws.combines.Store(0)
	ws.combineServed.Store(0)
	ws.splits.Store(0)
	ws.splitTasks.Store(0)
	ws.parks.Store(0)
}
