package core

import "sync/atomic"

// Stats is a snapshot of the scheduler event counters, summed over workers.
// The counters exist to validate the design experimentally: request
// aggregation should drive Combines well below StealRequests, and adaptive
// loops should keep Splits orders of magnitude below the iteration count
// (§II-C/§II-D of the paper).
type Stats struct {
	Spawned       int64 // tasks created (fork-join + dataflow + loop slices)
	Executed      int64 // task bodies run
	ReadyReleases int64 // dataflow successors released on completion
	StealRequests int64 // requests posted to victims
	StealHits     int64 // requests answered with a task
	Combines      int64 // combiner passes (aggregated service of N requests)
	CombineServed int64 // requests answered during combiner passes
	Splits        int64 // splitter invocations on adaptive tasks
	SplitTasks    int64 // tasks produced by splitters
	Parks         int64 // times a worker parked after failing to find work
	Panicked      int64 // task bodies (incl. loop chunks, splitters) that panicked
	Cancelled     int64 // tasks skipped because their job had already failed
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Spawned += other.Spawned
	s.Executed += other.Executed
	s.ReadyReleases += other.ReadyReleases
	s.StealRequests += other.StealRequests
	s.StealHits += other.StealHits
	s.Combines += other.Combines
	s.CombineServed += other.CombineServed
	s.Splits += other.Splits
	s.SplitTasks += other.SplitTasks
	s.Parks += other.Parks
	s.Panicked += other.Panicked
	s.Cancelled += other.Cancelled
}

// workerStats holds one worker's counters. Task-path counters (spawned,
// executed, readyReleases) are plain integers: they are only written while
// the worker executes tasks, so reading them between RunRoot calls is safe
// and the task hot path pays nothing. Thief-path counters are atomics
// because idle workers keep probing (and thus counting) even when the
// runtime is quiescent from the caller's point of view.
type workerStats struct {
	spawned       int64
	executed      int64
	readyReleases int64
	panicked      int64
	cancelled     int64

	stealRequests atomic.Int64
	stealHits     atomic.Int64
	combines      atomic.Int64
	combineServed atomic.Int64
	splits        atomic.Int64
	splitTasks    atomic.Int64
	parks         atomic.Int64
}

func (ws *workerStats) snapshot() Stats {
	return Stats{
		Spawned:       ws.spawned,
		Executed:      ws.executed,
		ReadyReleases: ws.readyReleases,
		Panicked:      ws.panicked,
		Cancelled:     ws.cancelled,
		StealRequests: ws.stealRequests.Load(),
		StealHits:     ws.stealHits.Load(),
		Combines:      ws.combines.Load(),
		CombineServed: ws.combineServed.Load(),
		Splits:        ws.splits.Load(),
		SplitTasks:    ws.splitTasks.Load(),
		Parks:         ws.parks.Load(),
	}
}

// liveSnapshot reads only the thief-path counters, which are atomics and
// therefore safe to read while the worker is executing tasks.
func (ws *workerStats) liveSnapshot() Stats {
	return Stats{
		StealRequests: ws.stealRequests.Load(),
		StealHits:     ws.stealHits.Load(),
		Combines:      ws.combines.Load(),
		CombineServed: ws.combineServed.Load(),
		Splits:        ws.splits.Load(),
		SplitTasks:    ws.splitTasks.Load(),
		Parks:         ws.parks.Load(),
	}
}

func (ws *workerStats) reset() {
	ws.spawned = 0
	ws.executed = 0
	ws.readyReleases = 0
	ws.panicked = 0
	ws.cancelled = 0
	ws.stealRequests.Store(0)
	ws.stealHits.Store(0)
	ws.combines.Store(0)
	ws.combineServed.Store(0)
	ws.splits.Store(0)
	ws.splitTasks.Store(0)
	ws.parks.Store(0)
}
