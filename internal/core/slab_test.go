package core

import (
	"testing"
	"unsafe"
)

// TestTaskDescriptorLayout pins the slab layout contract: descriptors are
// array elements (slab.go), so Task must stay an exact multiple of a cache
// line or adjacent descriptors false-share their children/wait atomics
// between the owner and a thief.
func TestTaskDescriptorLayout(t *testing.T) {
	size := unsafe.Sizeof(Task{})
	if size%64 != 0 {
		t.Errorf("sizeof(Task) = %d, want a multiple of 64 (slab elements must not straddle cache lines)", size)
	}
	if size != 128 {
		t.Errorf("sizeof(Task) = %d, want 128: adjust the trailing pad (and this test) deliberately", size)
	}
}

// TestSlabAllocRecycle exercises the worker-local descriptor cycle: the
// first alloc carves a slab, recycle returns descriptors LIFO, and steady
// state reuses them without touching the allocator.
func TestSlabAllocRecycle(t *testing.T) {
	w := &Worker{}
	t1 := w.alloc()
	if t1 == nil {
		t.Fatal("alloc returned nil")
	}
	if w.freeLen != taskSlabSize-1 {
		t.Fatalf("freeLen after first alloc = %d, want %d (one slab minus the returned task)",
			w.freeLen, taskSlabSize-1)
	}
	t2 := w.alloc()
	if w.freeLen != taskSlabSize-2 {
		t.Fatalf("freeLen after second alloc = %d, want %d", w.freeLen, taskSlabSize-2)
	}
	w.recycle(t2)
	w.recycle(t1)
	if w.freeLen != taskSlabSize {
		t.Fatalf("freeLen after recycles = %d, want %d", w.freeLen, taskSlabSize)
	}
	if got := w.alloc(); got != t1 {
		t.Errorf("alloc after recycle = %p, want the last recycled descriptor %p (LIFO)", got, t1)
	}
}

// TestRecycleGenerationStamp asserts that every recycle path advances the
// descriptor generation: the dataflow path (under the access mutex), the
// had-accesses-earlier path, and the plain fork-join path.
func TestRecycleGenerationStamp(t *testing.T) {
	w := &Worker{}
	tk := w.alloc()

	seq := tk.seq
	tk.flags = flagHasAccess
	tk.accs = append(tk.accs, Access{})
	tk.done = true
	w.recycle(tk)
	if tk.seq != seq+1 {
		t.Errorf("seq after dataflow recycle = %d, want %d", tk.seq, seq+1)
	}
	if !tk.everAcc {
		t.Error("everAcc not set by dataflow recycle")
	}
	if tk.done || len(tk.accs) != 0 || len(tk.succ) != 0 {
		t.Errorf("dataflow state not reset: done=%v accs=%d succ=%d", tk.done, len(tk.accs), len(tk.succ))
	}

	// Same descriptor reused without accesses: the stamp must still advance
	// (everAcc branch — stale refs from the first lifetime may probe seq).
	if got := w.alloc(); got != tk {
		t.Fatalf("alloc = %p, want recycled descriptor %p", got, tk)
	}
	w.recycle(tk)
	if tk.seq != seq+2 {
		t.Errorf("seq after post-dataflow recycle = %d, want %d", tk.seq, seq+2)
	}

	// A descriptor that never had accesses also stamps (plain store path).
	fresh := w.alloc()
	for fresh == tk {
		fresh = w.alloc()
	}
	seq = fresh.seq
	w.recycle(fresh)
	if fresh.seq != seq+1 {
		t.Errorf("seq after fork-join recycle = %d, want %d", fresh.seq, seq+1)
	}
}

// TestFreeListCap asserts the retention bound: a recycle arriving on a full
// free list drops the descriptor instead of hoarding it (keeping completed
// bursts collectable), and still stamps its generation.
func TestFreeListCap(t *testing.T) {
	w := &Worker{}
	tk := w.alloc()
	head, n := w.freeList, w.freeLen
	w.freeLen = maxFreeTasks
	seq := tk.seq
	w.recycle(tk)
	if w.freeList != head {
		t.Error("recycle over the cap still linked the descriptor into the free list")
	}
	if w.freeLen != maxFreeTasks {
		t.Errorf("freeLen after capped recycle = %d, want %d", w.freeLen, maxFreeTasks)
	}
	if tk.seq != seq+1 {
		t.Errorf("capped recycle skipped the generation stamp: seq = %d, want %d", tk.seq, seq+1)
	}
	w.freeLen = n // restore so the invariant freeLen == list length holds
}

// TestReleaseRootResets asserts the root-descriptor release: fields cleared,
// generation stamped, ready for the next Submit to reuse through rootPool.
func TestReleaseRootResets(t *testing.T) {
	tk := newRootTask()
	tk.body = func(*Worker) {}
	tk.job = &Job{}
	tk.flags = flagRoot
	seq := tk.seq
	releaseRoot(tk)
	if tk.body != nil || tk.job != nil || tk.flags != 0 || tk.next != nil || tk.parent != nil {
		t.Errorf("releaseRoot left state behind: %+v", tk)
	}
	if tk.seq != seq+1 {
		t.Errorf("seq after releaseRoot = %d, want %d", tk.seq, seq+1)
	}
}
