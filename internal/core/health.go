package core

// Shard health supervision. A fleet shard can stop making progress without
// failing: every worker wedged in a long (or chaos-injected) pause, an OS
// thread descheduled, a body stuck in a syscall. The router's load metric
// cannot tell that from "busy" — liveRoots stays up either way — so a blind
// fleet keeps placing fresh roots on a dead shard.
//
// The supervisor closes that gap with one goroutine per fleet. Workers
// publish a progress epoch (Runtime.progress, bumped in flushStats as
// executed batches are published — amortized, nothing added to the per-task
// path), and the supervisor trips a shard unhealthy when its epoch has not
// moved for StallAfter while its inbox holds work. Unhealthy shards are
// skipped by the router (fleet.go route) and their backlog is pulled over by
// sibling shards — the supervisor nudges parked siblings each tick so the
// cross-shard steal path runs even on an otherwise idle fleet. A shard is
// re-admitted as soon as its epoch moves again, or once it is drained and
// demonstrably responsive (empty inbox and at least one worker idle —
// wedged workers are never idle, so a frozen shard cannot sneak back in).
//
// This file is deliberately not under the //xk:hotpath pragma: the
// supervisor runs a few times per second and may use timers and locks
// freely. Only the flags it flips (unhealthy) are read on the submission
// path, and those are single atomic loads.

import "time"

// HealthConfig tunes the fleet's shard health supervisor.
type HealthConfig struct {
	// Disable turns supervision off entirely (no goroutine, no epoch
	// watching; the router then never diverts).
	Disable bool
	// CheckEvery is the supervisor's polling cadence. Zero selects
	// defaultHealthCheckEvery.
	CheckEvery time.Duration
	// StallAfter is how long a shard may sit on a nonempty inbox without
	// advancing its progress epoch before it is marked unhealthy. Zero
	// selects defaultHealthStallAfter.
	StallAfter time.Duration
}

const (
	defaultHealthCheckEvery = 25 * time.Millisecond
	defaultHealthStallAfter = 400 * time.Millisecond
)

// startHealth launches the supervisor goroutine. Single-shard fleets have no
// sibling to divert to, so they never supervise.
func (f *Fleet) startHealth() {
	if f.cfg.Health.Disable || len(f.shards) < 2 {
		return
	}
	every := f.cfg.Health.CheckEvery
	if every <= 0 {
		every = defaultHealthCheckEvery
	}
	stallAfter := f.cfg.Health.StallAfter
	if stallAfter <= 0 {
		stallAfter = defaultHealthStallAfter
	}
	f.healthStop = make(chan struct{})
	f.healthWG.Add(1)
	go f.supervise(every, stallAfter)
}

// stopHealth stops and joins the supervisor; idempotent via Close's closed
// flag (its only caller).
func (f *Fleet) stopHealth() {
	if f.healthStop == nil {
		return
	}
	close(f.healthStop)
	f.healthWG.Wait()
}

// supervise is the supervisor loop: poll every shard's progress epoch and
// inbox, trip stalled shards unhealthy, re-admit recovered ones, and keep
// siblings pulling a sick shard's backlog.
func (f *Fleet) supervise(every, stallAfter time.Duration) {
	defer f.healthWG.Done()
	type track struct {
		epoch int64
		since time.Time // last time the shard was observably fine
	}
	tracks := make([]track, len(f.shards))
	now := time.Now()
	for i, s := range f.shards {
		tracks[i] = track{epoch: s.progress.Load(), since: now}
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-f.healthStop:
			return
		case <-ticker.C:
		}
		now = time.Now()
		for i, s := range f.shards {
			tr := &tracks[i]
			epoch := s.progress.Load()
			moved := epoch != tr.epoch
			if moved {
				tr.epoch = epoch
			}
			if moved || s.inbox.size() == 0 {
				// Progressing, or nothing queued that could be starved: the
				// stall clock restarts. An unhealthy shard re-admits on
				// progress, or — for a shard whose backlog was stolen away
				// while its workers stayed frozen — once it is drained AND a
				// worker has demonstrably reached the park path again.
				tr.since = now
				if s.unhealthy.Load() &&
					(moved || (s.inbox.size() == 0 && s.idle.Load() > 0)) {
					s.setHealthy()
				}
				continue
			}
			// Nonempty inbox, epoch frozen.
			if s.unhealthy.Load() {
				f.rescueNudge(s) // keep siblings draining the backlog
				continue
			}
			if now.Sub(tr.since) >= stallAfter {
				s.setUnhealthy()
				f.rescueNudge(s)
			}
		}
	}
}

// rescueNudge wakes a parked worker on every healthy sibling of sick, so the
// cross-shard steal path starts pulling the backlog without waiting for a
// natural wake-up. With stealing disabled there is nothing to nudge — the
// router's diversion is then the whole remedy.
func (f *Fleet) rescueNudge(sick *Runtime) {
	if f.noSteal {
		return
	}
	for _, s := range f.shards {
		if s != sick && !s.unhealthy.Load() && s.idle.Load() > 0 {
			s.maybeWake()
		}
	}
}

// setUnhealthy trips the shard's router-diversion flag; counted once per
// transition. Supervisor-only.
func (rt *Runtime) setUnhealthy() {
	if rt.unhealthy.CompareAndSwap(false, true) {
		rt.healthFlips.Add(1)
	}
}

// setHealthy re-admits the shard; counted once per transition.
func (rt *Runtime) setHealthy() {
	if rt.unhealthy.CompareAndSwap(true, false) {
		rt.healthFlips.Add(1)
	}
}
