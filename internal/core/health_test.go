package core

import (
	"context"
	"testing"
	"time"

	"xkaapi/internal/chaos"
)

// pollUntil spins until cond holds or the deadline passes.
func pollUntil(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestRouteSkipsUnhealthy drives the router directly against hand-set health
// flags (supervision disabled so nothing re-admits behind the test's back):
// affinity keys fall through to the next healthy shard deterministically,
// the least-loaded scan never lands on a sick shard, and with every shard
// unhealthy routing degrades to normal placement instead of failing.
func TestRouteSkipsUnhealthy(t *testing.T) {
	f := NewFleet(FleetConfig{
		Shards: 3, ShardSize: 1,
		Health:  HealthConfig{Disable: true},
		Runtime: Config{DisablePinning: true},
	})
	defer f.Close()

	f.shards[1].unhealthy.Store(true)
	if got := f.route(1, true); got != f.shards[2] {
		t.Fatalf("key 1 with shard 1 sick routed to shard %d, want 2", got.shardIndex)
	}
	if got := f.route(4, true); got != f.shards[2] {
		t.Fatalf("key 4 (home 1) with shard 1 sick routed to shard %d, want 2", got.shardIndex)
	}
	if got := f.route(2, true); got != f.shards[2] {
		t.Fatalf("healthy pin diverted: key 2 routed to shard %d", got.shardIndex)
	}
	for i := 0; i < 64; i++ {
		if got := f.route(0, false); got == f.shards[1] {
			t.Fatal("least-loaded scan placed on an unhealthy shard")
		}
	}
	if f.shards[1].routedAround.Load() == 0 {
		t.Fatal("diversions away from shard 1 not counted")
	}

	f.shards[0].unhealthy.Store(true)
	f.shards[2].unhealthy.Store(true)
	if got := f.route(1, true); got != f.shards[1] {
		t.Fatalf("all-unhealthy pin moved to shard %d, want home 1", got.shardIndex)
	}
	if got := f.route(0, false); got == nil {
		t.Fatal("all-unhealthy scan returned nil")
	}
	for i := range f.shards {
		f.shards[i].unhealthy.Store(false)
	}
}

// TestSupervisorTripsAndReadmits is the full lifecycle: a shard whose single
// worker is stuck while roots queue behind it is marked unhealthy within
// StallAfter, the router places around it (including pinned keys), and once
// the worker resumes and the epoch advances the shard is re-admitted.
func TestSupervisorTripsAndReadmits(t *testing.T) {
	f := NewFleet(FleetConfig{
		Shards: 2, ShardSize: 1, NoSteal: true,
		Health:  HealthConfig{CheckEvery: 5 * time.Millisecond, StallAfter: 30 * time.Millisecond},
		Runtime: Config{DisablePinning: true},
	})
	defer f.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	stuck := f.SubmitAffinity(context.Background(), 0, func(w *Worker) {
		close(started)
		<-release
	})
	<-started
	// Backlog behind the stuck worker; NoSteal keeps it on shard 0's inbox.
	var queued []*Job
	for i := 0; i < 3; i++ {
		queued = append(queued, f.SubmitAffinity(context.Background(), 0, func(*Worker) {}))
	}

	if !pollUntil(t, 2*time.Second, func() bool { return f.shards[0].unhealthy.Load() }) {
		t.Fatal("stalled shard 0 never marked unhealthy")
	}

	// A pinned submission now lands on shard 1 and completes even though its
	// home shard is frozen.
	diverted := f.SubmitAffinity(context.Background(), 0, func(*Worker) {})
	done := make(chan error, 1)
	go func() { done <- diverted.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("diverted job failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pinned job not diverted off the unhealthy shard")
	}
	if f.shards[0].routedAround.Load() == 0 {
		t.Fatal("diversion not counted")
	}
	if ss := f.ShardStats()[0]; !ss.Unhealthy || ss.HealthTransitions != 1 {
		t.Fatalf("shard 0 stats = unhealthy:%v transitions:%d, want true/1",
			ss.Unhealthy, ss.HealthTransitions)
	}

	close(release)
	if err := stuck.Wait(); err != nil {
		t.Fatal(err)
	}
	if !pollUntil(t, 2*time.Second, func() bool { return !f.shards[0].unhealthy.Load() }) {
		t.Fatal("recovered shard 0 never re-admitted")
	}
	for _, j := range queued {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.shards[0].healthFlips.Load(); got != 2 {
		t.Fatalf("health transitions = %d after one full episode, want 2", got)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("fleet imbalance: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestSupervisorIgnoresBusyShard: heavy but progressing load must never trip
// the supervisor — progress epochs keep advancing, so no shard is marked
// unhealthy even with a backlogged inbox.
func TestSupervisorIgnoresBusyShard(t *testing.T) {
	f := NewFleet(FleetConfig{
		Shards: 2, ShardSize: 1, NoSteal: true,
		Health:  HealthConfig{CheckEvery: 2 * time.Millisecond, StallAfter: 10 * time.Millisecond},
		Runtime: Config{DisablePinning: true},
	})
	defer f.Close()
	var jobs []*Job
	for i := 0; i < 400; i++ {
		jobs = append(jobs, f.SubmitAffinity(context.Background(), 0, func(w *Worker) {
			for n := 0; n < 200; n++ {
				w.Spawn(func(*Worker) {})
			}
			w.Sync()
		}))
	}
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.shards[0].healthFlips.Load(); got != 0 {
		t.Fatalf("busy-but-progressing shard flipped health %d times", got)
	}
}

// TestWedgedShardTripsAndRecovers runs the supervisor against the chaos
// wedge site end to end: shard 0 freezes for a window, is tripped unhealthy,
// and once the wedge lifts and its backlog executes the shard re-admits.
// Cross-shard stealing is disabled so the backlog deterministically stays
// observable (with stealing on, idle siblings may drain the inbox faster
// than the supervisor can see it — which is the desired production behavior,
// and what the chaos integration phase exercises under real load). Spawned
// == Executed + Cancelled must balance fleet-wide afterwards.
func TestWedgedShardTripsAndRecovers(t *testing.T) {
	inj := chaos.New(chaos.Scenario{
		Seed:  7,
		Wedge: chaos.WedgeSpec{Shard: 0, After: 30 * time.Millisecond, For: 250 * time.Millisecond},
	})
	f := NewFleet(FleetConfig{
		Shards: 2, ShardSize: 2, NoSteal: true,
		Health:  HealthConfig{CheckEvery: 5 * time.Millisecond, StallAfter: 40 * time.Millisecond},
		Runtime: Config{DisablePinning: true, Chaos: inj},
	})
	defer f.Close()

	stop := make(chan struct{})
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.SubmitAffinity(context.Background(), 0, func(w *Worker) {
				for n := 0; n < 50; n++ {
					w.Spawn(func(*Worker) {})
				}
				w.Sync()
			})
			time.Sleep(time.Millisecond)
		}
	}()

	tripped := pollUntil(t, 2*time.Second, func() bool { return f.shards[0].unhealthy.Load() })
	close(stop)
	<-fed
	if !tripped {
		t.Fatal("wedged shard 0 never marked unhealthy")
	}
	if !pollUntil(t, 3*time.Second, func() bool { return !f.shards[0].unhealthy.Load() }) {
		t.Fatal("shard 0 never re-admitted after the wedge lifted")
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("fleet imbalance after wedge: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
	if inj.Counts().WedgePauses == 0 {
		t.Fatal("wedge site never fired")
	}
}
