// Package core implements the X-Kaapi runtime: a work-stealing scheduler for
// multicore machines that unifies three parallel paradigms — fork-join tasks,
// dataflow tasks with access-mode dependency analysis, and adaptive parallel
// loops — exactly as described in "X-Kaapi: a Multi Paradigm Runtime for
// Multicore Architectures" (Gautier, Lementec, Faucher, Raffin; P2S2/ICPP
// 2013).
//
// The pieces, and where the paper describes them:
//
//   - Worker / Runtime (worker.go, runtime.go): one worker per core, each
//     owning a lock-free Chase–Lev deque (deque.go) in the role the paper
//     assigns to Cilk's T.H.E. protocol (§II-C): the owner pushes and pops
//     at the bottom without synchronization beyond Go's (sequentially
//     consistent) atomics, thieves CAS-claim the top, and the single
//     contended case — one task left, owner and thief racing — is decided
//     by the same head CAS for both sides, so no path through the deque
//     ever blocks. Idle workers become thieves.
//   - Steal-request aggregation (request.go): N pending requests to the same
//     victim are served by a single elected thief, the combiner (§II-C).
//     The combiner election lock orders thieves per victim; the deque
//     underneath stays lock-free, so the victim never waits for a combiner.
//   - Dataflow tasks (task.go, handle.go): tasks declare accesses to shared
//     Handles with a mode (read, write, exclusive, cumulative write); the
//     runtime computes true dependencies and releases successors as their
//     inputs are produced (§II-B). Ready tasks released by a completing task
//     land on the completer's own deque — the "ready list" optimization of
//     §II-C made the default.
//   - Adaptive tasks (adaptive.go, loop.go): a running task publishes a
//     splitter that thieves invoke to divide its remaining work on demand;
//     the runtime guarantees a single concurrent splitter per victim (§II-D).
//     ForEach builds the kaapic_foreach parallel loop on top (§II-E).
//   - Concurrent submission (job.go): any goroutine outside the pool may
//     call Runtime.Submit to inject an independent root job; the pool
//     multiplexes all live jobs over the same workers. This extends the
//     paper's single-parallel-region model to a shared service pool.
//   - Failure and cancellation (job.go + internal/jobfail): jobs are the
//     failure domain — panics are captured per job, jobs can be cancelled,
//     and the pool survives both. The state machine itself (first-error-
//     wins, sealing, per-job context fan-out, pre-failed ErrClosed jobs)
//     is not defined here: it is the shared jobfail.State, the single
//     definition the cilk, tbbsched, gomp and quark engines embed too.
//
// # Submit/Wait lifecycle and external-submission rules
//
// Runtime.Submit(fn) enqueues fn as a root task on an MPSC inbox and
// returns a *Job immediately; workers claim inbox roots when they run out
// of local and stolen work, so external threads never touch the owner-only
// ends of the Chase–Lev deques. Job.Wait blocks until the root and every task
// transitively spawned from it completed, and returns the job's error;
// Runtime.Wait drains all jobs submitted so far; Runtime.Close drains
// in-flight jobs before joining the workers (CloseErr additionally reports
// whether any job ever failed). RunRoot is Submit followed by Job.Wait, so
// legacy callers keep their blocking semantics while new callers share the
// pool concurrently.
//
// The rules for code outside the pool: Submit, Job.Wait, Runtime.Wait and
// Close may be called from any non-worker goroutine, concurrently. A task
// body may fire-and-forget Submit (the new job is an unrelated root, not a
// child of the submitter), but must never block in Job.Wait, Runtime.Wait
// or Close — a blocked body stalls its worker and can deadlock the pool;
// use Spawn + Sync for work the task depends on. Worker methods (Spawn,
// SpawnTask, Sync, ForEach) remain callable only from the task body's own
// Worker.
//
// # Error and cancellation contract
//
// Every task carries a pointer to its job, inherited at spawn; the job is
// the failure domain. When any task body of a job panics — a fork-join
// child, a dataflow task, a ForEach chunk (wherever it executes), or an
// adaptive splitter running on a thief — the worker recovers the panic
// into a *PanicError (value + stack of the panic site) and records it on
// the job; the first failure wins. A failed job's remaining tasks are
// cancelled: execute skips their bodies but still performs completion —
// frame counters drain, dataflow successors are released (and in turn
// skipped), Handle frontiers mark the task done — so the task tree always
// drains, Wait always returns, and the handles remain usable by later
// jobs. Cancellation of already-running bodies is cooperative, with two
// instruments: Worker.Context returns the per-job context — derived from
// the SubmitCtx context (Background for Submit), carrying its deadline and
// values, cancelled with the failure as cause the instant the job fails
// from any source — so bodies doing I/O or long kernels select on
// Context().Done() and unblock without reaching a scheduling point; and
// Worker.JobFailed remains the cheaper flag-poll for tight loops. ForEach
// checks the failure at every grain extraction and unwinds the enclosing
// body (so code after a failed loop never runs on partial results).
//
// Jobs can be abandoned from outside: SubmitCtx ties a job to a context
// (cancellation fails the job with ctx.Err()), Job.Cancel fails it with
// ErrCanceled. Submit after Close returns a pre-failed job with ErrClosed
// instead of panicking, so services can race submission against shutdown
// without a recover. Once a job has failed, further Spawn/SpawnTask calls
// from its tasks cancel eagerly: the child is counted but never allocated,
// enqueued or registered on handles, so a deep tree that fails early stops
// generating deque traffic at the source (execution-time skipping remains
// the backstop for tasks enqueued before the failure). The Stats counters
// Panicked and Cancelled account for recovered panics and skipped tasks:
// when a pool drains, Spawned == Executed + Cancelled.
//
// # Per-job attribution and drain errors
//
// Beyond the pool-global Stats, each Job carries its own outcome counters
// (Job.Stats: Executed, Cancelled, Panicked), attributed at execution
// time, which gives a service per-request accounting over a shared pool.
// Runtime.Wait drains all submitted jobs and returns an errors.Join of the
// failures recorded since the previous drain (bounded; floods are
// summarized by count), so batch clients need not track every Job handle.
// All scheduler counters are per-worker padded atomics, so Stats may be
// polled while jobs are in flight: a monitoring endpoint sees Executed and
// Cancelled advance live, and the quiescent invariants hold exactly once
// the pool drains.
//
// # The spawn fast path
//
// The per-task overhead target is the paper's: spawning and executing a
// fork-join task should cost tens of nanoseconds, so a body a few hundred
// instructions long still parallelizes profitably. Four mechanisms carry
// the steady-state spawn/execute cycle without a single heap allocation
// and with almost no shared-memory RMWs:
//
//   - Slab-recycled descriptors (slab.go): a spawn takes its Task from the
//     worker-local free list (two plain loads) and completion returns it
//     there; the list is replenished a 64-descriptor slab at a time, so
//     the allocator is consulted once per slab, not once per task. Every
//     recycle advances the descriptor's generation stamp, which is what
//     keeps the reuse safe against stale dataflow references (a Handle
//     frontier naming a recycled task sees a sequence mismatch and treats
//     the dependency as satisfied). Descriptors are padded to two cache
//     lines so adjacent slab elements never false-share their frame
//     counters; free lists are capped so post-burst hoards stay
//     collectable. Root descriptors, allocated outside the pool, recycle
//     through a sync.Pool instead: a fire-and-forget Submit allocates
//     exactly one object, the Job handle itself.
//   - Batched counters (stats.go): Spawned/Executed bookkeeping increments
//     a worker-private cache and publishes to the padded shared atomics
//     once per batch or idle transition, turning a LOCK-prefixed RMW per
//     task into a plain increment. The same cache carries the per-job
//     Executed attribution keyed by the job pointer, so Job.Stats costs
//     nothing on the hot path and reads as a monotone lower bound that
//     becomes exact at quiescence (see Job.Stats).
//   - The deque fast slot (deque.go): a single-task spawn-then-sync cycle
//     serves from a dedicated slot beside the Chase–Lev buffer, avoiding
//     the buffer indexing and bounds machinery for the dominant
//     depth-first case while preserving the owner-LIFO/thief-FIFO order.
//   - The work-presence epoch (epoch.go): a worker whose full steal sweep
//     found every victim empty skips further sweeps until the shard's
//     epoch — bumped by work publication toward an idle pool — moves, so
//     a parked-adjacent worker stops paying 2N probes per spin round for
//     a fact it already knows. Stats.EpochSkips counts the skips;
//     Config.NoWorkEpoch is the ablation knob.
//
// # Sharded fleets
//
// On many-core machines a single Runtime is one contention domain: every
// external submit crosses one inbox, and every idle worker probes the same
// set of victims. Fleet (fleet.go) is the scale-out shape: N Runtime
// shards, each a full scheduler of ShardSize workers, behind a load-aware
// router. Both shapes satisfy the Pool interface (pool.go) — Submit,
// SubmitCtx, SubmitAffinity, Wait, Close/CloseErr, Stats, ShardStats — so
// everything above Pool is shard-agnostic.
//
// Placement: each submission goes to the least-loaded shard, where load is
// live root jobs plus queued inbox depth (queued roots count in both
// terms, biasing the router away from backlog). SubmitAffinity(key) pins
// the job to shard key mod N instead, so related jobs share one shard's
// caches; the pin is placement-only. Ties spread via a rotating scan
// origin.
//
// Rebalancing: an idle shard's workers, having exhausted their own deque,
// their shard's steal sweep and their shard's inbox, pull the oldest
// queued root from a loaded sibling's inbox (stealRoot) — the same
// cooperative stealing the in-shard scheduler runs, lifted one level.
// A stolen job stays registered with its home shard (Wait, errors and
// drain are untouched); only execution migrates, root and transitively
// spawned subtree together. Consequently the per-shard Spawned ==
// Executed + Cancelled balance does not hold under migration — it holds
// fleet-wide (Fleet.Stats), and ShardStats exposes StolenIn/StolenOut so
// monitoring can see the migration itself.
//
// Drain: Fleet.Close first flips every shard's closing flag — each under
// the shard's own jobsMu, the exact critical section its Submit admission
// checks — before any shard waits for its drain, so a submit racing the
// fleet-wide close is either drained (wherever it was routed) or rejected
// with ErrClosed; no shard accepts work after a sibling started draining.
//
// The model is fully strict: every task waits (by scheduling other work, not
// by blocking the thread) for its children before completing, so a program
// that is never stolen from executes in sequential order, which preserves the
// sequential semantics the paper inherits from Athapascan. Independent jobs
// are unordered with respect to each other.
//
// This package is the engine behind the public xkaapi API at the module root
// as well as the QUARK compatibility layer in package quark.
package core
