package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xkaapi/internal/chaos"
	"xkaapi/internal/jobfail"
)

// chaosRT builds a small unpinned runtime with the given injector.
func chaosRT(inj *chaos.Injector) *Runtime {
	return NewRuntime(Config{Workers: 4, DisablePinning: true, Chaos: inj})
}

// spawnTree is a fork-join tree of depth d: every node spawns two children.
func spawnTree(w *Worker, d int) {
	if d == 0 {
		return
	}
	w.Spawn(func(w *Worker) { spawnTree(w, d-1) })
	spawnTree(w, d-1)
	w.Sync()
}

// TestChaosTaskPanicBalance: injected task panics fail their jobs with the
// same *PanicError contract as user panics — every Wait returns, failed jobs
// carry an attributable InjectedPanic value, the pool survives, and the
// quiescent Spawned == Executed + Cancelled invariant holds.
func TestChaosTaskPanicBalance(t *testing.T) {
	inj := chaos.New(chaos.Scenario{Seed: 42, TaskPanic: 0.05})
	rt := chaosRT(inj)
	defer rt.Close()
	failures := 0
	for i := 0; i < 100; i++ {
		err := rt.Submit(func(w *Worker) { spawnTree(w, 4) }).Wait()
		if err == nil {
			continue
		}
		failures++
		var pe *jobfail.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("job %d failed with %T (%v), want *PanicError", i, err, err)
		}
		if _, ok := pe.Value.(chaos.InjectedPanic); !ok {
			t.Fatalf("panic value %T not attributable to chaos", pe.Value)
		}
	}
	if failures == 0 {
		t.Fatal("5% task-panic rate never fired across 100 jobs")
	}
	if got := inj.Counts().TaskPanics; got == 0 {
		t.Fatal("injector counted no task panics")
	}
	// Pool survival: a clean run still goes through (chaos may fail it, so
	// retry a few draws; the site must not fire forever).
	ok := false
	for i := 0; i < 50 && !ok; i++ {
		ok = rt.RunRoot(func(*Worker) {}) == nil
	}
	if !ok {
		t.Fatal("pool no longer serves clean jobs")
	}
	rt.Close()
	s := rt.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("imbalance: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestChaosLoopPanicNoHang: loop-chunk panics at the adaptive split/extract
// boundary must abort the loop without stranding its pending count — ForEach
// always returns, the job reports the panic, and counters balance.
func TestChaosLoopPanicNoHang(t *testing.T) {
	inj := chaos.New(chaos.Scenario{Seed: 9, LoopPanic: 0.1})
	rt := chaosRT(inj)
	defer rt.Close()
	failures := 0
	for i := 0; i < 20; i++ {
		err := rt.Submit(func(w *Worker) {
			w.ForEach(0, 10_000, LoopOpts{SeqGrain: 64}, func(*Worker, int64, int64) {})
		}).Wait()
		if err != nil {
			failures++
			var pe *jobfail.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("loop failed with %T, want *PanicError", err)
			}
		}
	}
	if failures == 0 {
		t.Fatal("10% loop-panic rate never fired across 20 loops")
	}
	rt.Close()
	s := rt.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("imbalance: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestChaosStealFailAndStall: forced steal misses and worker stalls are pure
// slowdowns — no job may fail, results stay correct, and the decision draws
// are visible in the injector counters.
func TestChaosStealFailAndStall(t *testing.T) {
	inj := chaos.New(chaos.Scenario{
		Seed:        3,
		StealFail:   0.5,
		WorkerStall: chaos.Pulse{Prob: 0.01, For: time.Millisecond},
	})
	rt := chaosRT(inj)
	defer rt.Close()
	for i := 0; i < 20; i++ {
		if err := rt.Submit(func(w *Worker) { spawnTree(w, 5) }).Wait(); err != nil {
			t.Fatalf("slowdown-only chaos failed a job: %v", err)
		}
	}
	rt.Close()
	if c := inj.Counts(); c.StealFails == 0 {
		t.Fatalf("steal-fail site never fired: %+v", c)
	}
	s := rt.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("imbalance: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestChaosInboxDelay: delayed root delivery must not lose jobs or race
// Close — the job is registered before the delay, so the drain waits for it.
func TestChaosInboxDelay(t *testing.T) {
	inj := chaos.New(chaos.Scenario{
		Seed:       5,
		InboxDelay: chaos.Pulse{Prob: 1, For: 5 * time.Millisecond},
	})
	rt := chaosRT(inj)
	var ran atomic.Int32
	var jobs []*Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, rt.Submit(func(*Worker) { ran.Add(1) }))
	}
	rt.Close() // drain must include the still-delayed roots
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d of 10 delayed jobs", got)
	}
	if got := inj.Counts().InboxDelays; got != 10 {
		t.Fatalf("inbox delays counted %d, want 10", got)
	}
}

// TestChaosDeterministicFailureSet: the number of injected panics across a
// fixed serial workload is a pure function of the seed.
func TestChaosDeterministicFailureSet(t *testing.T) {
	run := func(seed uint64) uint64 {
		inj := chaos.New(chaos.Scenario{Seed: seed, TaskPanic: 0.02})
		rt := NewRuntime(Config{Workers: 1, DisablePinning: true, Chaos: inj})
		for i := 0; i < 50; i++ {
			rt.Submit(func(w *Worker) { spawnTree(w, 4) }).Wait()
		}
		rt.Close()
		return inj.Counts().TaskPanics
	}
	a, b := run(1234), run(1234)
	if a != b {
		t.Fatalf("same seed, different injected-panic counts: %d vs %d", a, b)
	}
}
