package core

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestLiveStatsExecutedMonotoneDuringJob reads Stats concurrently with
// a running job and asserts the properties the /stats endpoint depends on:
// Executed is published live (non-zero well before the job completes) and
// monotone non-decreasing across samples (each per-worker counter is a
// padded atomic that only grows between resets). Running under -race (the
// race tier includes this package) additionally proves the reads are
// race-free against the task hot path — the property the old plain-int
// counters could not offer.
func TestLiveStatsExecutedMonotoneDuringJob(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()

	total := 20_000
	if testing.Short() {
		total = 5_000
	}
	var gate atomic.Bool // released once the sampler has seen progress
	j := rt.Submit(func(w *Worker) {
		for i := 0; i < total; i++ {
			w.Spawn(func(*Worker) {})
			if i%256 == 0 {
				w.Sync()
				for i >= total/2 && !gate.Load() {
					runtime.Gosched() // hold the job in flight for the sampler
				}
			}
		}
		w.Sync()
	})

	var prev int64
	sawLive := false
	for !j.Done() {
		s := rt.Stats()
		if s.Executed < prev {
			t.Fatalf("Stats().Executed went backwards: %d -> %d", prev, s.Executed)
		}
		prev = s.Executed
		if s.Executed > 0 {
			sawLive = true
			gate.Store(true)
		}
		runtime.Gosched()
	}
	gate.Store(true)
	if err := j.Wait(); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if !sawLive {
		t.Fatal("never observed a non-zero Executed while the job was in flight")
	}

	// Quiescent now: the exact accounting invariant must hold.
	rt.Close()
	s := rt.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("quiescent imbalance: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
	if want := int64(total) + 1; s.Executed != want { // + the root task
		t.Fatalf("executed=%d want %d", s.Executed, want)
	}
}

// TestLiveStatsCancelledPublishedLive: cancelling a job mid-flight becomes
// visible in Stats().Cancelled without waiting for quiescence, and the
// quiescent Spawned == Executed + Cancelled invariant still closes.
func TestLiveStatsCancelledPublishedLive(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()

	var release atomic.Bool
	j := rt.Submit(func(w *Worker) {
		for i := 0; i < 5_000; i++ {
			w.Spawn(func(*Worker) {
				for !release.Load() {
					runtime.Gosched()
				}
			})
		}
		w.Sync()
	})
	j.Cancel()
	release.Store(true)
	// Cancellation skips the not-yet-started tasks; some of those skips
	// must surface in a live snapshot before Wait returns.
	sawCancelled := false
	for !j.Done() {
		if rt.Stats().Cancelled > 0 {
			sawCancelled = true
			break
		}
		runtime.Gosched()
	}
	if err := j.Wait(); err != ErrCanceled {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if !sawCancelled && rt.Stats().Cancelled == 0 {
		t.Fatal("cancelled tasks never appeared in a live Stats snapshot")
	}
	rt.Close()
	s := rt.Stats()
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("quiescent imbalance: spawned=%d executed=%d cancelled=%d",
			s.Spawned, s.Executed, s.Cancelled)
	}
}
