//xk:hotpath — the epoch check sits in the worker's scheduling loop and the
// bump sits behind the spawn path's maybeWake; xkvet rejects blocking or
// allocating constructs in this file.

package core

// The work-presence epoch cuts wasted steal probes on a mostly-idle pool.
// A worker whose steal sweep found every victim empty has learned a fact —
// "no sibling had work" — that stays true until somebody publishes work, so
// re-sweeping 2N victims every spin round before parking is pure waste (it
// is the dominant term in StealProbes on trickle workloads). Instead, the
// shard keeps an epoch counter that work publication bumps, and the worker
// records the epoch it read *before* an empty sweep: as long as the shard's
// epoch still equals the recorded one, the sweep's result is still current
// and the whole probe loop is skipped (counted in Stats.EpochSkips).
//
// The bump piggybacks on maybeWake/wakeAll and is gated the same way, on
// idle.Load() != 0: while nobody is parked-or-parking the spawn fast path
// pays nothing for the epoch, exactly as it pays nothing for the wake.
// That gate is also why the scheme stays live without bumping on every
// push:
//
//   - A parked-adjacent worker (some worker advertised idle) gets a bump
//     for every publication, so its cached sweep invalidates immediately.
//   - A still-spinning worker (not yet counted idle) may miss a bump, but
//     it invalidates its cache on every task it executes and, crucially,
//     whenever park returns — and park's final anyWork/siblingWork scan
//     observes the very work the missed bump advertised, aborts the park,
//     and sends the worker back to a full sweep. The skip can therefore
//     delay a steal by at most the few Gosched spin rounds before park,
//     never strand visible work.
//
// Reading the epoch before the sweep (not after) closes the publish-during-
// sweep race: work pushed mid-sweep bumps the epoch past the recorded
// value, so the next round sweeps again instead of skipping.
//
// Config.NoWorkEpoch disables the skip (the ablation knob for the probe
// accounting tests, which assert that the epoch strictly lowers the
// probes-per-park ratio on an idle-heavy pool).

// bumpWorkEpoch advertises that work was published while some worker was
// idle. One uncontended RMW, and only on the idle path — see above.
func (rt *Runtime) bumpWorkEpoch() {
	rt.workEpoch.Add(1)
}

// sweepSkippable reports whether the worker's last recorded empty sweep is
// still current, i.e. no work has been published (toward an idle pool)
// since it was taken. Owner only.
func (w *Worker) sweepSkippable() bool {
	return w.sweepValid && w.rt.workEpoch.Load() == w.sweepEpoch && !w.rt.cfg.NoWorkEpoch
}

// noteEmptySweep records that a full steal sweep, begun when the shard
// epoch was e, found no victim with work. Owner only.
func (w *Worker) noteEmptySweep(e uint64) {
	w.sweepEpoch = e
	w.sweepValid = true
}
