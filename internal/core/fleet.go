//xk:hotpath — the fleet router runs once per submitted job, between the
// client and a shard inbox: the placement scan and the cross-shard steal
// probe must stay free of locks, channels and formatting. The deliberate
// slow paths (drain, the failure summary, String) are marked //xk:coldpath
// below.

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultShardSize is the worker count per shard when FleetConfig leaves it
// zero: big enough that in-shard stealing amortizes, small enough that one
// shard's inbox and stats block stay a private contention domain of a few
// cores (one shard per core group).
const defaultShardSize = 4

// FleetConfig parameterizes a Fleet of Runtime shards.
type FleetConfig struct {
	// Shards is the number of Runtime replicas. Zero or negative selects
	// max(1, GOMAXPROCS/ShardSize): one shard per core group.
	Shards int
	// ShardSize is the worker count per shard. Zero or negative selects
	// defaultShardSize.
	ShardSize int
	// NoSteal disables the cross-shard steal path, leaving only the router
	// (ablation: pure least-load placement). A 1-shard fleet never steals.
	NoSteal bool
	// Health tunes the shard health supervisor (health.go). The zero value
	// enables it with the default cadence on any multi-shard fleet.
	Health HealthConfig
	// Runtime is the per-shard template: aggregation, pinning and the base
	// seed apply to every shard (each shard derives a distinct
	// victim-selection stream from the seed). Workers is overridden by
	// ShardSize.
	Runtime Config
}

// Fleet is N Runtime shards behind a load-aware router: each submitted job
// is placed on the least-loaded shard (live roots + queued inbox depth,
// with an optional affinity key pinning related jobs to one shard), and an
// idle shard's workers pull queued roots from a loaded sibling's inbox as
// the slow-path rebalancer — the same cooperative stealing the in-shard
// scheduler runs, lifted one level up. A Fleet is the multi-replica shape
// of the Pool interface; create one with NewFleet.
type Fleet struct {
	cfg     FleetConfig
	shards  []*Runtime
	noSteal bool
	rr      atomic.Uint32 // rotating scan origin: spreads ties and steal probes

	closeMu sync.Mutex // serializes Close; shard flags flip before any drain
	closed  bool

	// Health supervisor plumbing (health.go): the goroutine watching the
	// shards' progress epochs. nil healthStop means no supervisor runs.
	healthStop chan struct{}
	healthWG   sync.WaitGroup
}

// NewFleet builds the shards and starts their workers. The effective
// configuration (defaults resolved) is available from Config.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = defaultShardSize
	}
	if cfg.Shards <= 0 {
		cfg.Shards = max(1, runtime.GOMAXPROCS(0)/cfg.ShardSize)
	}
	cfg.Runtime.Workers = cfg.ShardSize
	if cfg.Runtime.Seed == 0 {
		cfg.Runtime.Seed = defaultSeed
	}
	f := &Fleet{cfg: cfg, noSteal: cfg.NoSteal || cfg.Shards == 1}
	f.shards = make([]*Runtime, cfg.Shards)
	for i := range f.shards {
		sc := cfg.Runtime
		// Distinct per-shard seed streams: two shards must not probe their
		// victims in lockstep. The increment is the 64-bit golden-ratio
		// constant, so shard seeds stay well spread for any base seed.
		sc.Seed = cfg.Runtime.Seed + uint64(i)*0x9E3779B97F4A7C15
		f.shards[i] = newRuntime(sc, f, i, cfg.Shards)
	}
	// Two-phase startup: every shard is constructed and published in
	// f.shards before any worker runs, because a worker may hit the
	// cross-shard steal path — which scans the sibling slice — on its very
	// first scheduling round.
	for _, s := range f.shards {
		s.start()
	}
	f.startHealth()
	return f
}

// Config returns the effective fleet configuration.
func (f *Fleet) Config() FleetConfig { return f.cfg }

// Shards returns the number of Runtime replicas.
func (f *Fleet) Shards() int { return len(f.shards) }

// NumWorkers returns the total worker count across all shards.
func (f *Fleet) NumWorkers() int {
	n := 0
	for _, s := range f.shards {
		n += len(s.workers)
	}
	return n
}

// route picks the target shard for one submission. An affinity key pins the
// job to a deterministic shard (key mod Shards), so jobs sharing a key share
// that shard's caches; otherwise a least-loaded scan wins, starting from a
// rotating origin so equal loads spread across shards instead of piling on
// shard 0. The scan short-circuits on a load-0 shard: it cannot lose.
//
// Shards the supervisor marked unhealthy (health.go) are skipped: a pinned
// key falls through to the next healthy shard in deterministic order (same
// key, same stand-in, so the affinity benefit survives the outage), the
// least-loaded scan simply ignores them. Every diversion is counted on the
// sick shard. If every shard is unhealthy there is nothing to prefer and the
// original choice stands — routing must degrade to normal placement, never
// reject.
func (f *Fleet) route(key uint64, hasKey bool) *Runtime {
	n := len(f.shards)
	if n == 1 {
		return f.shards[0]
	}
	if hasKey {
		home := f.shards[key%uint64(n)]
		if !home.unhealthy.Load() {
			return home
		}
		home.routedAround.Add(1)
		for i := uint64(1); i < uint64(n); i++ {
			if s := f.shards[(key+i)%uint64(n)]; !s.unhealthy.Load() {
				return s
			}
		}
		return home // every shard unhealthy: the pin stands
	}
	start := int(f.rr.Add(1) % uint32(n))
	var best *Runtime
	var bestLoad int64
	for i := 0; i < n; i++ {
		s := f.shards[(start+i)%n]
		if s.unhealthy.Load() {
			s.routedAround.Add(1)
			continue
		}
		if l := s.load(); best == nil || l < bestLoad {
			best, bestLoad = s, l
			if bestLoad == 0 {
				break
			}
		}
	}
	if best == nil {
		return f.shards[start] // every shard unhealthy: load-blind rotation
	}
	return best
}

// place submits fn on the chosen shard, then — when the shard is already
// saturated (queued backlog and no idle worker of its own) — wakes a parked
// worker on an idle sibling so the cross-shard steal path starts pulling
// the backlog over without waiting for a sibling's next natural wake-up.
func (f *Fleet) place(rt *Runtime, ctx context.Context, fn func(*Worker)) *Job {
	j := rt.SubmitCtx(ctx, fn)
	if !f.noSteal && rt.inbox.size() > 0 && rt.idle.Load() == 0 {
		f.nudge(rt)
	}
	return j
}

// nudge wakes one parked worker on the first idle sibling of hot.
func (f *Fleet) nudge(hot *Runtime) {
	for _, s := range f.shards {
		if s != hot && s.idle.Load() > 0 {
			s.maybeWake()
			return
		}
	}
}

// Submit enqueues fn as an independent root job on the least-loaded shard
// and returns its handle immediately; it is SubmitCtx with
// context.Background(). See Runtime.Submit for the submission semantics —
// rejection with a pre-failed ErrClosed Job once the fleet is closing, the
// MPSC inbox path — which hold per shard.
func (f *Fleet) Submit(fn func(*Worker)) *Job {
	return f.SubmitCtx(context.Background(), fn)
}

// SubmitCtx places fn on the least-loaded shard, bound to ctx.
func (f *Fleet) SubmitCtx(ctx context.Context, fn func(*Worker)) *Job {
	return f.place(f.route(0, false), ctx, fn)
}

// SubmitAffinity is SubmitCtx with a placement hint: all jobs submitted
// with the same key are routed to the same shard, trading load spread for
// cache locality between related jobs. The pin is on placement only — if
// the keyed shard backlogs while siblings idle, cross-shard stealing still
// migrates the queued roots.
func (f *Fleet) SubmitAffinity(ctx context.Context, key uint64, fn func(*Worker)) *Job {
	return f.place(f.route(key, true), ctx, fn)
}

// RunRoot is Submit followed by Job.Wait.
func (f *Fleet) RunRoot(fn func(*Worker)) error {
	return f.Submit(fn).Wait()
}

// Wait blocks until every job submitted to any shard has completed and
// returns the joined drain errors of all shards (see Runtime.Wait).
func (f *Fleet) Wait() error {
	var errs []error
	for _, s := range f.shards {
		if err := s.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close drains every shard, then stops and joins all their workers. The
// flip phase runs first: every shard's closing flag is raised — each under
// the shard's own jobsMu, the exact critical section its Submit admission
// checks — before any shard starts waiting for its drain. A Submit racing
// Close therefore either registered before the fleet-wide flip (every shard
// still drains it, wherever the router placed it) or is rejected with
// ErrClosed on whichever shard it was routed to; there is no window where
// an already-drained shard's sibling still accepts work. Cross-shard
// stealing stays live during the drain — a shard whose workers finished
// early keeps pulling its siblings' queued roots — because a shard's
// workers are only stopped after its own jobs drained.
//
//xk:coldpath
func (f *Fleet) Close() {
	f.closeMu.Lock()
	defer f.closeMu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.stopHealth() // before the drain: the supervisor must not nudge dying shards
	for _, s := range f.shards {
		s.beginClose()
	}
	for _, s := range f.shards {
		s.finishClose()
	}
}

// CloseErr is Close plus a fleet-wide failure summary: nil if every job
// submitted to any shard succeeded, otherwise an error counting the failed
// jobs across the fleet and wrapping the first failure of the
// lowest-indexed failing shard.
//
//xk:coldpath
func (f *Fleet) CloseErr() error {
	f.Close()
	failed := 0
	var first error
	for _, s := range f.shards {
		n, err := s.failCount()
		if n > 0 && first == nil {
			first = err
		}
		failed += n
	}
	if failed == 0 {
		return nil
	}
	return fmt.Errorf("core: %d job(s) failed across %d shard(s); first: %w",
		failed, len(f.shards), first)
}

// Stats sums the scheduler counters over every shard. Migrated roots are
// counted where they ran, so the quiescent Spawned == Executed + Cancelled
// balance holds at this level (and only at this level; see ShardStats).
func (f *Fleet) Stats() Stats {
	var s Stats
	for _, sh := range f.shards {
		s.Add(sh.Stats())
	}
	return s
}

// ResetStats zeroes every shard's counters; quiescent fleets only.
func (f *Fleet) ResetStats() {
	for _, s := range f.shards {
		s.ResetStats()
	}
}

// ShardStats returns one entry per shard, in shard order.
func (f *Fleet) ShardStats() []ShardStats {
	out := make([]ShardStats, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.shardStats()
	}
	return out
}

// String describes the fleet configuration.
//
//xk:coldpath
func (f *Fleet) String() string {
	return fmt.Sprintf("xkaapi.Fleet{shards: %d, workers: %d, steal: %v}",
		len(f.shards), f.NumWorkers(), !f.noSteal)
}

// stealRoot is the cross-shard slow path, called by a worker of rt that
// found no work at all locally (own deque, in-shard steal sweep and own
// inbox all empty): it pulls the oldest queued root from a loaded sibling's
// inbox, scanning siblings from a rotating origin. The stolen job stays
// registered with its home shard — finish, Wait and error accounting are
// untouched — only execution migrates (the root and, transitively, the
// subtree it spawns run on the thief's shard). Executed counters therefore
// show where work ran, which is what makes migration visible per shard.
func (rt *Runtime) stealRoot() *Task {
	f := rt.fleet
	if f == nil || f.noSteal {
		return nil
	}
	n := len(f.shards)
	start := int(f.rr.Add(1) % uint32(n))
	for i := 0; i < n; i++ {
		sib := f.shards[(start+i)%n]
		if sib == rt || sib.inbox.size() == 0 {
			continue
		}
		if t := sib.inbox.take(); t != nil {
			rt.stolenIn.Add(1)
			sib.stolenOut.Add(1)
			return t
		}
	}
	return nil
}

// siblingWork reports whether any sibling shard has queued roots a worker
// of rt could steal; the park-time abort scan includes it so a worker never
// goes to sleep while cross-shard work is already visible.
func (rt *Runtime) siblingWork() bool {
	f := rt.fleet
	if f == nil || f.noSteal {
		return false
	}
	for _, s := range f.shards {
		if s != rt && s.inbox.size() > 0 {
			return true
		}
	}
	return false
}
