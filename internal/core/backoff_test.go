package core

import (
	"testing"
	"time"
)

// runIdleTrickle drives the trickle workload the backoff and epoch tests
// share: tiny singleton jobs on a mostly-idle pool, each waking one worker
// that finds the root in the inbox (never in a deque), so every steal sweep
// a winding-down worker performs sees all victims empty. It returns the
// stats once the pool has quiesced (parks stop advancing across spaced
// samples).
func runIdleTrickle(t *testing.T, cfg Config) Stats {
	t.Helper()
	rt := NewRuntime(cfg)
	defer rt.Close()

	bursts := 30
	if testing.Short() {
		bursts = 10
	}
	for i := 0; i < bursts; i++ {
		if err := rt.Submit(func(*Worker) {}).Wait(); err != nil {
			t.Fatalf("burst job: %v", err)
		}
		time.Sleep(2 * time.Millisecond) // let the woken worker wind down and park
	}

	deadline := time.Now().Add(10 * time.Second)
	s := rt.Stats()
	for stable := 0; stable < 3; {
		time.Sleep(5 * time.Millisecond)
		next := rt.Stats()
		if next.Parks == s.Parks {
			stable++
		} else {
			stable = 0
		}
		s = next
		if time.Now().After(deadline) {
			t.Fatal("pool never quiesced")
		}
	}
	if s.Parks == 0 {
		t.Fatal("no parks observed on an idle pool")
	}
	if s.StealProbes == 0 {
		t.Fatal("no steal probes counted (StealProbes instrumentation broken)")
	}
	return s
}

// TestStealBackoffIdlePool exercises the steal-probe backoff and the
// work-presence epoch together on a mostly-idle pool. With the backoff, an
// empty sweep counts double against the spin budget, so a worker parks
// after at most 2 sweeps of at most 2N probes each (without it, the budget
// was 4 sweeps per park); with the epoch on top, the second sweep of each
// wind-down is skipped outright — its result cannot differ while the epoch
// is unchanged — leaving ~1 sweep per park. The bound sits at 2 sweeps'
// worth per park: above the epoch's expectation of one, below the
// backoff-only behavior of two-plus — i.e. the probes/park ratio a previous
// revision merely bounded at 3 sweeps' worth has measurably tightened, and
// the skips are observable in Stats.EpochSkips next to StealProbes and
// Parks.
func TestStealBackoffIdlePool(t *testing.T) {
	const workers = 4
	s := runIdleTrickle(t, Config{Workers: workers, DisablePinning: true})
	maxProbes := s.Parks * 2 * 2 * (workers - 1)
	if s.StealProbes > maxProbes {
		t.Fatalf("StealProbes=%d > %d (Parks=%d * 2 sweeps * 2(N-1)): idle probing not limited",
			s.StealProbes, maxProbes, s.Parks)
	}
	if s.EpochSkips == 0 {
		t.Fatal("no epoch skips on an idle trickle (work-presence epoch not engaging)")
	}
}

// TestWorkEpochCutsProbes is the epoch ablation A/B: the identical trickle
// run with and without the work-presence epoch (Config.NoWorkEpoch). The
// epoch run must skip at least one sweep and probe strictly less — in
// absolute count and per park — than the ablated run, proving the skip is
// the mechanism (and not, say, parking behavior) that cuts the waste.
func TestWorkEpochCutsProbes(t *testing.T) {
	const workers = 4
	withEpoch := runIdleTrickle(t, Config{Workers: workers, DisablePinning: true})
	without := runIdleTrickle(t, Config{Workers: workers, DisablePinning: true, NoWorkEpoch: true})

	if withEpoch.EpochSkips == 0 {
		t.Fatal("epoch run recorded no skipped sweeps")
	}
	if without.EpochSkips != 0 {
		t.Fatalf("NoWorkEpoch run skipped %d sweeps, want 0", without.EpochSkips)
	}
	if withEpoch.StealProbes >= without.StealProbes {
		t.Errorf("StealProbes with epoch = %d, without = %d: want strictly lower with the epoch",
			withEpoch.StealProbes, without.StealProbes)
	}
	ratioWith := float64(withEpoch.StealProbes) / float64(withEpoch.Parks)
	ratioWithout := float64(without.StealProbes) / float64(without.Parks)
	if ratioWith >= ratioWithout {
		t.Errorf("probes/park with epoch = %.1f, without = %.1f: want strictly lower with the epoch",
			ratioWith, ratioWithout)
	}
}
