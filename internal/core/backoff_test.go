package core

import (
	"testing"
	"time"
)

// TestStealBackoffIdlePool exercises the steal-probe backoff on a
// mostly-idle pool: tiny singleton jobs trickle in, each waking one worker
// that finds the root in the inbox (never in a deque), so every steal
// sweep a winding-down worker performs sees all victims empty. With the
// backoff, an empty sweep counts double against the spin budget, so a
// worker parks after at most 2 sweeps of at most 2N probes each — without
// it, the budget was 4 sweeps (8N probes) per park. The test asserts the
// probes/park ratio stays under 3 sweeps' worth, which the pre-backoff
// behavior violates, i.e. the wasted-probe rate on an idle pool improved
// and is observable next to Parks in the stats.
func TestStealBackoffIdlePool(t *testing.T) {
	const workers = 4
	rt := NewRuntime(Config{Workers: workers, DisablePinning: true})
	defer rt.Close()

	bursts := 30
	if testing.Short() {
		bursts = 10
	}
	for i := 0; i < bursts; i++ {
		if err := rt.Submit(func(*Worker) {}).Wait(); err != nil {
			t.Fatalf("burst job: %v", err)
		}
		time.Sleep(2 * time.Millisecond) // let the woken worker wind down and park
	}

	// Wait for quiescence: parks stop advancing across spaced samples.
	deadline := time.Now().Add(10 * time.Second)
	s := rt.Stats()
	for stable := 0; stable < 3; {
		time.Sleep(5 * time.Millisecond)
		next := rt.Stats()
		if next.Parks == s.Parks {
			stable++
		} else {
			stable = 0
		}
		s = next
		if time.Now().After(deadline) {
			t.Fatal("pool never quiesced")
		}
	}

	if s.Parks == 0 {
		t.Fatal("no parks observed on an idle pool")
	}
	if s.StealProbes == 0 {
		t.Fatal("no steal probes counted (StealProbes instrumentation broken)")
	}
	// A sweep makes 2N victim selections of which the expected 2(N-1) are
	// non-self probes. With the backoff a worker parks after 2 empty
	// sweeps (~2*2(N-1) probes); without it, after 4 (~4*2(N-1)). The
	// bound sits at 3 sweeps' worth — above the backoff's expectation,
	// below the non-backoff one — and the ratio concentrates over the
	// dozens of park cycles the trickle produced.
	maxProbes := s.Parks * 3 * 2 * (workers - 1)
	if s.StealProbes > maxProbes {
		t.Fatalf("StealProbes=%d > %d (Parks=%d * 3 sweeps * 2(N-1)): backoff not limiting idle probing",
			s.StealProbes, maxProbes, s.Parks)
	}
}
