package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"xkaapi/internal/chaos"
)

// Config parameterizes a Runtime. The zero value gives the defaults the
// paper uses: one worker per core, threads pinned, steal-request aggregation
// enabled.
type Config struct {
	// Workers is the number of scheduling threads. Zero or negative selects
	// runtime.GOMAXPROCS(0), the Go analogue of one thread per core.
	Workers int
	// NoAggregation disables steal-request aggregation; each thief then
	// locks the victim's deque itself (ablation of §II-C).
	NoAggregation bool
	// DisablePinning keeps workers as ordinary goroutines instead of locking
	// each to an OS thread.
	DisablePinning bool
	// Seed is the base seed for per-worker victim-selection RNGs. Zero
	// selects a fixed default, making victim sequences reproducible.
	Seed uint64
	// NoWorkEpoch disables the work-presence epoch (epoch.go): idle-
	// adjacent workers then re-sweep every victim each spin round instead
	// of skipping sweeps whose result cannot have changed (ablation knob
	// for the steal-probe accounting tests).
	NoWorkEpoch bool
	// Chaos installs a fault injector: task-body panics, steal-probe
	// misses, worker stalls, inbox delivery delays and shard wedges are
	// then drawn from its seeded decision streams. nil (the default)
	// disables injection entirely — every site is a single nil check.
	// Shards of one Fleet share one injector.
	Chaos *chaos.Injector
}

// Runtime owns the worker pool. Create one with NewRuntime, submit work with
// Submit (any number of concurrent jobs, from any goroutines) or the
// blocking RunRoot wrapper, and release the workers with Close. All jobs
// multiplex over the same workers: independent roots flow through one MPSC
// inbox and are scheduled side by side by work stealing.
type Runtime struct {
	cfg     Config
	workers []*Worker
	chaos   *chaos.Injector // cfg.Chaos, denormalized for the per-site nil checks

	inbox      inbox
	extSpawned atomic.Int64 // roots injected by Submit (external spawn count)
	liveRoots  atomic.Int64 // accepted roots not yet finished (router load input)
	stolenIn   atomic.Int64 // roots pulled from sibling shards' inboxes (fleet.go)
	stolenOut  atomic.Int64 // roots of this shard claimed by sibling shards

	// Health supervision state (health.go). progress is the shard's epoch:
	// workers bump it as they publish executed batches, so a fleet
	// supervisor can tell "busy" from "wedged" without touching the task
	// path. unhealthy diverts the router; the flip/divert counters feed
	// ShardStats. All four are fleet-only (standalone runtimes never write
	// them beyond the progress epoch's shardTotal gate).
	progress     atomic.Int64
	unhealthy    atomic.Bool
	healthFlips  atomic.Int64 // healthy <-> unhealthy transitions
	routedAround atomic.Int64 // placements diverted away while unhealthy

	// Fleet identity, wired by NewFleet before the workers start and never
	// written again: nil/0/0 for a standalone runtime. shardTotal > 0 marks
	// the runtime as one shard of a fleet (String and ShardStats report it
	// as such instead of as a standalone pool).
	fleet      *Fleet
	shardIndex int
	shardTotal int

	jobsMu   sync.Mutex
	jobsCond *sync.Cond
	jobsLive int  // submitted jobs whose task trees have not drained
	closing  bool // Close entered: reject new submissions (guarded by jobsMu)

	failMu       sync.Mutex
	failedJobs   int     // jobs that finished with a non-nil error
	firstErr     error   // error of the first such job
	drainErrs    []error // failures not yet reported by a Wait drain (capped)
	drainDropped int     // failures elided once drainErrs hit maxDrainErrs

	idle atomic.Int32
	// workEpoch is the shard's work-presence epoch (epoch.go): bumped —
	// only while idle > 0, so the busy-pool spawn path never pays it —
	// whenever work is published (deque push, inbox enqueue, adaptive
	// install), compared by idle-adjacent workers against the epoch of
	// their last empty steal sweep to skip provably futile probe loops.
	workEpoch   atomic.Uint64
	parkMu      sync.Mutex
	parkCond    *sync.Cond
	wakePending int

	stop atomic.Bool // drain finished: workers may exit
	wg   sync.WaitGroup
}

// defaultSeed is the base of the per-worker victim-selection RNG streams
// when Config.Seed is zero, making default schedules reproducible.
const defaultSeed = 0x853C49E6748FEA9B

// NewRuntime creates the worker pool: cfg.Workers goroutines are started
// (and park when idle); work reaches them through Submit or RunRoot.
func NewRuntime(cfg Config) *Runtime {
	rt := newRuntime(cfg, nil, 0, 0)
	rt.start()
	return rt
}

// newRuntime is the construction half of NewRuntime plus the fleet wiring:
// it builds the pool but does not start the workers, so a Fleet can
// construct every shard — and publish them all in its shards slice — before
// any worker runs. Shard identity must be set here, and the caller must not
// start the workers earlier, because a fleet worker may take the
// cross-shard steal path (which reads the sibling slice) on its very first
// scheduling round.
func newRuntime(cfg Config, fleet *Fleet, shard, shards int) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{cfg: cfg, chaos: cfg.Chaos, fleet: fleet, shardIndex: shard, shardTotal: shards}
	rt.parkCond = sync.NewCond(&rt.parkMu)
	rt.jobsCond = sync.NewCond(&rt.jobsMu)
	rt.workers = make([]*Worker, cfg.Workers)
	seed := cfg.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	for i := range rt.workers {
		w := &Worker{
			id:         i,
			rt:         rt,
			rng:        xrandSeed(seed, i),
			reqScratch: make([]int, 0, cfg.Workers),
			reqs:       make([]request, cfg.Workers),
		}
		w.deque.init()
		rt.workers[i] = w
	}
	return rt
}

// start launches the worker goroutines. Called exactly once, after every
// structure a worker may touch — including fleet siblings — is in place.
func (rt *Runtime) start() {
	for i := range rt.workers {
		rt.wg.Add(1)
		go rt.workers[i].run()
	}
}

// RunRoot executes fn as a root task on the pool and returns once fn and
// every task transitively spawned from it have completed, reporting the
// job's error (nil on success; see Job.Wait for the failure modes). It is
// Submit followed by Job.Wait; unlike the original single-region design,
// multiple RunRoot calls from different goroutines proceed concurrently
// over the same workers.
func (rt *Runtime) RunRoot(fn func(*Worker)) error {
	return rt.Submit(fn).Wait()
}

// Close drains every in-flight job, then stops and joins all workers. It is
// safe to call more than once; work submitted after Close is rejected with
// a pre-failed Job (Err == ErrClosed). The closing flag flips under jobsMu
// — the same lock Submit registers under — so a Submit either lands before
// the drain (and is executed) or observes closing and is rejected; it can
// never slip a job past the drain into a dead pool.
func (rt *Runtime) Close() {
	if rt.beginClose() {
		rt.finishClose()
	}
}

// beginClose flips the runtime into closing mode under jobsMu and reports
// whether this call did the flip (false: another Close got there first).
// It is the refusal half of Close, split out so Fleet.Close can refuse
// submissions on every shard before any shard starts draining.
func (rt *Runtime) beginClose() bool {
	rt.jobsMu.Lock()
	defer rt.jobsMu.Unlock()
	if rt.closing {
		return false
	}
	rt.closing = true
	return true
}

// finishClose is the drain half of Close: wait for the registered jobs to
// complete, then stop and join the workers. Safe to call concurrently or
// repeatedly once closing is set (stop and the broadcast are idempotent,
// wg.Wait just waits).
func (rt *Runtime) finishClose() {
	rt.jobsMu.Lock()
	for rt.jobsLive > 0 { // drain jobs submitted before the flip
		rt.jobsCond.Wait()
	}
	rt.jobsMu.Unlock()
	rt.stop.Store(true)
	rt.parkMu.Lock()
	rt.wakePending += len(rt.workers)
	rt.parkCond.Broadcast()
	rt.parkMu.Unlock()
	rt.wg.Wait()
}

// CloseErr is Close with a failure summary: it drains every in-flight job,
// joins the workers, and reports whether any job submitted over the
// runtime's lifetime failed — nil if all succeeded, otherwise an error
// counting the failures and wrapping the first one (so errors.Is/As reach
// the original *PanicError or cancellation cause).
func (rt *Runtime) CloseErr() error {
	rt.Close()
	n, err := rt.failCount()
	if n == 0 {
		return nil
	}
	return fmt.Errorf("core: %d job(s) failed; first: %w", n, err)
}

// failCount returns the lifetime failed-job count and the first failure,
// for CloseErr and its fleet-level aggregation.
func (rt *Runtime) failCount() (int, error) {
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	return rt.failedJobs, rt.firstErr
}

// maxDrainErrs bounds the failures buffered between Wait drains, so a
// long-running service that rarely calls Wait cannot accumulate errors
// without bound; failures beyond the cap are counted and summarized.
const maxDrainErrs = 16

// noteFailed records a job failure for CloseErr and for the next Wait
// drain. Called once per failed job as it finishes.
func (rt *Runtime) noteFailed(err error) {
	rt.failMu.Lock()
	if rt.failedJobs == 0 {
		rt.firstErr = err
	}
	rt.failedJobs++
	if len(rt.drainErrs) < maxDrainErrs {
		rt.drainErrs = append(rt.drainErrs, err)
	} else {
		rt.drainDropped++
	}
	rt.failMu.Unlock()
}

// NumWorkers returns the size of the worker pool.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Shards returns 1: a standalone Runtime is the single shard of its own
// pool, and a Runtime inside a Fleet still answers for itself only —
// fleet-level fan-out is the Fleet's job.
func (rt *Runtime) Shards() int { return 1 }

// ShardStats returns this runtime's single shard entry.
func (rt *Runtime) ShardStats() []ShardStats { return []ShardStats{rt.shardStats()} }

func (rt *Runtime) shardStats() ShardStats {
	return ShardStats{
		Shard:             rt.shardIndex,
		Workers:           len(rt.workers),
		InboxLen:          rt.inbox.size(),
		LiveRoots:         rt.liveRoots.Load(),
		StolenIn:          rt.stolenIn.Load(),
		StolenOut:         rt.stolenOut.Load(),
		Unhealthy:         rt.unhealthy.Load(),
		HealthTransitions: rt.healthFlips.Load(),
		RoutedAround:      rt.routedAround.Load(),
		Sched:             rt.Stats(),
	}
}

// load is the router's placement metric: roots accepted and not yet
// finished, plus the inbox backlog. A root still queued in the inbox is
// counted by both terms, deliberately — a shard that cannot even start its
// roots is worse off than one merely running them, so backlog weighs
// double in the least-loaded scan.
func (rt *Runtime) load() int64 {
	return rt.liveRoots.Load() + rt.inbox.size()
}

// Stats sums the per-worker counters plus the externally submitted root
// count. All counters are per-worker padded atomics, so Stats may be read
// at any time; while jobs are in flight the result is a consistent lower
// bound (each counter is monotone between resets, but the sum is not taken
// at a single instant, and a busy worker may hold up to statFlushEvery
// spawned/executed increments in its batch cache). Invariants such as
// Spawned == Executed + Cancelled hold exactly once the runtime is
// quiescent: every path into idleness — park, failed steal round, wait
// loops, root completion, worker exit — publishes the cache first.
func (rt *Runtime) Stats() Stats {
	s := Stats{Spawned: rt.extSpawned.Load()}
	for _, w := range rt.workers {
		s.Add(w.stats.snapshot())
	}
	return s
}

// ResetStats zeroes all per-worker counters and the external root count.
// Call it only while quiescent: resetting under live increments loses no
// memory safety (the counters are atomics) but produces meaningless sums.
// On a quiescent pool it first waits (a bounded spin) for workers still
// winding down to publish their increment caches; once a worker has
// parked its cache is clean, so in practice a reset right after Wait is
// not followed by a stale flush reinflating the zeroed counters. The wait
// is bounded, not a guarantee — a worker descheduled mid-wind-down past
// the bound can still flush late, which is one more reason this API is
// quiescent-only.
func (rt *Runtime) ResetStats() {
	for _, w := range rt.workers {
		for i := 0; w.cache.dirty.Load() && i < 10_000; i++ {
			runtime.Gosched()
		}
	}
	rt.extSpawned.Store(0)
	for _, w := range rt.workers {
		w.stats.reset()
	}
}

// String describes the runtime configuration. A runtime that is one shard
// of a fleet says so — a log line from a 4-shard server must be
// attributable to its shard, not read like a standalone pool.
func (rt *Runtime) String() string {
	if rt.shardTotal > 0 {
		return fmt.Sprintf("xkaapi.Runtime{shard: %d/%d, workers: %d, aggregation: %v}",
			rt.shardIndex, rt.shardTotal, len(rt.workers), !rt.cfg.NoAggregation)
	}
	return fmt.Sprintf("xkaapi.Runtime{workers: %d, aggregation: %v}",
		len(rt.workers), !rt.cfg.NoAggregation)
}

// maybeWake signals one parked worker if any worker is idle. The push it
// follows is already visible: both the deque bottom and idle counter are
// sequentially consistent atomics, so either the waker sees idle > 0 or the
// parker's final anyWork scan sees the pushed task.
func (rt *Runtime) maybeWake() {
	if rt.idle.Load() == 0 {
		return
	}
	rt.bumpWorkEpoch()
	rt.parkMu.Lock()
	if rt.wakePending < int(rt.idle.Load()) {
		rt.wakePending++
		rt.parkCond.Signal()
	}
	rt.parkMu.Unlock()
}

// wakeAll releases every parked worker, used when an adaptive section opens
// and work can be created on demand for any number of thieves.
func (rt *Runtime) wakeAll() {
	if rt.idle.Load() == 0 {
		return
	}
	rt.bumpWorkEpoch()
	rt.parkMu.Lock()
	rt.wakePending = len(rt.workers)
	rt.parkCond.Broadcast()
	rt.parkMu.Unlock()
}

// anyWork reports whether any worker has queued tasks, an open adaptive
// section, or a submitted root is waiting in the inbox.
func (rt *Runtime) anyWork() bool {
	if rt.inbox.size() > 0 {
		return true
	}
	for _, v := range rt.workers {
		if v.deque.size() > 0 || v.adaptive.Load() != nil {
			return true
		}
	}
	return false
}
