package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config parameterizes a Runtime. The zero value gives the defaults the
// paper uses: one worker per core, threads pinned, steal-request aggregation
// enabled.
type Config struct {
	// Workers is the number of scheduling threads. Zero or negative selects
	// runtime.GOMAXPROCS(0), the Go analogue of one thread per core.
	Workers int
	// NoAggregation disables steal-request aggregation; each thief then
	// locks the victim's deque itself (ablation of §II-C).
	NoAggregation bool
	// DisablePinning keeps workers as ordinary goroutines instead of locking
	// each to an OS thread.
	DisablePinning bool
	// Seed is the base seed for per-worker victim-selection RNGs. Zero
	// selects a fixed default, making victim sequences reproducible.
	Seed uint64
}

// Runtime owns the worker pool. Create one with NewRuntime, submit work with
// RunRoot, and release the workers with Close. A Runtime may execute many
// RunRoot calls, but only one at a time.
type Runtime struct {
	cfg     Config
	workers []*Worker

	idle        atomic.Int32
	parkMu      sync.Mutex
	parkCond    *sync.Cond
	wakePending int

	stop  atomic.Bool
	runMu sync.Mutex
	wg    sync.WaitGroup
}

// NewRuntime creates the worker pool: the calling goroutine will act as
// worker 0 during RunRoot, and cfg.Workers-1 goroutines are started and
// parked for the remaining workers.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{cfg: cfg}
	rt.parkCond = sync.NewCond(&rt.parkMu)
	rt.workers = make([]*Worker, cfg.Workers)
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	for i := range rt.workers {
		w := &Worker{
			id:         i,
			rt:         rt,
			rng:        xrandSeed(seed, i),
			reqScratch: make([]int, 0, cfg.Workers),
			reqs:       make([]request, cfg.Workers),
		}
		w.deque.init()
		rt.workers[i] = w
	}
	for i := 1; i < cfg.Workers; i++ {
		rt.wg.Add(1)
		go rt.workers[i].run()
	}
	return rt
}

// RunRoot executes fn as the root task on the calling goroutine, which acts
// as worker 0, and returns once fn and every task transitively spawned from
// it have completed.
func (rt *Runtime) RunRoot(fn func(*Worker)) {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	if rt.stop.Load() {
		panic("core: RunRoot called after Close")
	}
	w := rt.workers[0]
	t := w.alloc()
	t.body = fn
	w.stats.spawned++
	w.execute(t)
}

// Close stops and joins all workers. It is safe to call once; work submitted
// after Close panics.
func (rt *Runtime) Close() {
	if !rt.stop.CompareAndSwap(false, true) {
		return
	}
	rt.parkMu.Lock()
	rt.wakePending += len(rt.workers)
	rt.parkCond.Broadcast()
	rt.parkMu.Unlock()
	rt.wg.Wait()
}

// NumWorkers returns the size of the worker pool.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Stats sums the per-worker counters. Only meaningful while the runtime is
// quiescent (no RunRoot in flight).
func (rt *Runtime) Stats() Stats {
	var s Stats
	for _, w := range rt.workers {
		s.Add(w.stats.snapshot())
	}
	return s
}

// ResetStats zeroes all per-worker counters. Only safe while quiescent.
func (rt *Runtime) ResetStats() {
	for _, w := range rt.workers {
		w.stats.reset()
	}
}

// String describes the runtime configuration.
func (rt *Runtime) String() string {
	return fmt.Sprintf("xkaapi.Runtime{workers: %d, aggregation: %v}",
		len(rt.workers), !rt.cfg.NoAggregation)
}

// maybeWake signals one parked worker if any worker is idle. The push it
// follows is already visible: both the deque bottom and idle counter are
// sequentially consistent atomics, so either the waker sees idle > 0 or the
// parker's final anyWork scan sees the pushed task.
func (rt *Runtime) maybeWake() {
	if rt.idle.Load() == 0 {
		return
	}
	rt.parkMu.Lock()
	if rt.wakePending < int(rt.idle.Load()) {
		rt.wakePending++
		rt.parkCond.Signal()
	}
	rt.parkMu.Unlock()
}

// wakeAll releases every parked worker, used when an adaptive section opens
// and work can be created on demand for any number of thieves.
func (rt *Runtime) wakeAll() {
	if rt.idle.Load() == 0 {
		return
	}
	rt.parkMu.Lock()
	rt.wakePending = len(rt.workers)
	rt.parkCond.Broadcast()
	rt.parkMu.Unlock()
}

// anyWork reports whether any worker has queued tasks or an open adaptive
// section.
func (rt *Runtime) anyWork() bool {
	for _, v := range rt.workers {
		if v.deque.size() > 0 || v.adaptive.Load() != nil {
			return true
		}
	}
	return false
}
