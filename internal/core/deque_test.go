package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func newTestTask(i int) *Task {
	t := &Task{}
	t.wait.Store(int32(i)) // tag the task via its wait counter for identity checks
	return t
}

func TestDequePushPopLIFO(t *testing.T) {
	var d deque
	d.init()
	ts := make([]*Task, 10)
	for i := range ts {
		ts[i] = newTestTask(i)
		d.push(ts[i])
	}
	for i := len(ts) - 1; i >= 0; i-- {
		got := d.pop()
		if got != ts[i] {
			t.Fatalf("pop %d: got %p want %p", i, got, ts[i])
		}
	}
	if d.pop() != nil {
		t.Fatal("pop on empty deque returned a task")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	var d deque
	d.init()
	ts := make([]*Task, 10)
	for i := range ts {
		ts[i] = newTestTask(i)
		d.push(ts[i])
	}
	for i := 0; i < len(ts); i++ {
		got := d.steal()
		if got != ts[i] {
			t.Fatalf("steal %d: got %p want %p", i, got, ts[i])
		}
	}
	if d.steal() != nil {
		t.Fatal("steal on empty deque returned a task")
	}
}

func TestDequeInterleavedPushPopSteal(t *testing.T) {
	var d deque
	d.init()
	a, b, c := newTestTask(0), newTestTask(1), newTestTask(2)
	d.push(a)
	d.push(b)
	if got := d.steal(); got != a { // oldest
		t.Fatalf("steal: got %p want %p", got, a)
	}
	d.push(c)
	if got := d.pop(); got != c {
		t.Fatalf("pop: got %p want %p", got, c)
	}
	if got := d.pop(); got != b {
		t.Fatalf("pop: got %p want %p", got, b)
	}
	if d.pop() != nil {
		t.Fatal("deque should be empty")
	}
}

func TestDequeGrow(t *testing.T) {
	var d deque
	d.init()
	n := dequeInitCap * 4
	ts := make([]*Task, n)
	for i := range ts {
		ts[i] = newTestTask(i)
		d.push(ts[i])
	}
	if got := d.size(); got != int64(n) {
		t.Fatalf("size: got %d want %d", got, n)
	}
	for i := n - 1; i >= 0; i-- {
		if got := d.pop(); got != ts[i] {
			t.Fatalf("pop %d after grow: got %p want %p", i, got, ts[i])
		}
	}
}

func TestDequeGrowPreservesStealOrder(t *testing.T) {
	var d deque
	d.init()
	n := dequeInitCap * 2
	ts := make([]*Task, n)
	for i := range ts {
		ts[i] = newTestTask(i)
		d.push(ts[i])
	}
	for i := 0; i < n; i++ {
		if got := d.steal(); got != ts[i] {
			t.Fatalf("steal %d after grow: got %p want %p", i, got, ts[i])
		}
	}
}

// TestDequeConcurrentOwnerThieves hammers one owner (push/pop) against
// several CAS-stealing thieves and verifies that every pushed task is
// obtained exactly once, by exactly one side.
func TestDequeConcurrentOwnerThieves(t *testing.T) {
	const (
		total   = 20000
		thieves = 4
	)
	var d deque
	d.init()
	seen := make([]atomic.Int32, total)
	tasks := make([]Task, total)
	for i := range tasks {
		tasks[i].wait.Store(int32(i))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if task := d.steal(); task != nil {
					seen[task.wait.Load()].Add(1)
				}
			}
		}()
	}

	popped := 0
	for i := 0; i < total; i++ {
		d.push(&tasks[i])
		if i%3 == 0 {
			if task := d.pop(); task != nil {
				seen[task.wait.Load()].Add(1)
				popped++
			}
		}
	}
	// Drain the rest from the owner side. Unlike the old T.H.E. protocol,
	// a Chase–Lev pop returning nil with size() > 0 can only mean a thief
	// holds the claim; retrying converges.
	for {
		task := d.pop()
		if task == nil {
			if d.size() == 0 {
				break
			}
			continue
		}
		seen[task.wait.Load()].Add(1)
	}
	stop.Store(true)
	wg.Wait()
	// Final sweep: anything thieves left behind.
	for {
		task := d.pop()
		if task == nil {
			break
		}
		seen[task.wait.Load()].Add(1)
	}

	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("task %d delivered %d times", i, n)
		}
	}
}

// Property: for any interleaving of pushes with owner pops, the multiset of
// delivered tasks equals the multiset pushed (no loss, no duplication).
func TestDequeQuickNoLossOwnerOnly(t *testing.T) {
	f := func(ops []bool) bool {
		var d deque
		d.init()
		next := 0
		live := map[int]bool{}
		for _, push := range ops {
			if push {
				d.push(newTestTask(next))
				live[next] = true
				next++
			} else if task := d.pop(); task != nil {
				id := int(task.wait.Load())
				if !live[id] {
					return false
				}
				delete(live, id)
			}
		}
		for {
			task := d.pop()
			if task == nil {
				break
			}
			id := int(task.wait.Load())
			if !live[id] {
				return false
			}
			delete(live, id)
		}
		return len(live) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDequeGrowThenShrink: a deque grown by a large frontier releases the
// memory once its owner drains it — the owner's first empty pop resets the
// buffer to the initial capacity — and keeps working correctly afterwards.
func TestDequeGrowThenShrink(t *testing.T) {
	var d deque
	d.init()
	const n = 4 * dequeInitCap
	tasks := make([]Task, n)
	for i := range tasks {
		d.push(&tasks[i])
	}
	if got := int64(len(d.buf.Load().slot)); got < n {
		t.Fatalf("buffer did not grow: %d slots for %d tasks", got, n)
	}
	for i := n - 1; i >= 0; i-- {
		if d.pop() != &tasks[i] {
			t.Fatalf("pop lost task %d", i)
		}
	}
	// Successful pops never pay the shrink check; the release happens at
	// the quiescence probe — any pop that returns nil.
	if got := len(d.buf.Load().slot); got != 4*dequeInitCap {
		t.Fatalf("buffer resized before the empty pop: %d", got)
	}
	if d.pop() != nil {
		t.Fatal("expected empty deque")
	}
	if got := len(d.buf.Load().slot); got != dequeInitCap {
		t.Fatalf("buffer not shrunk at quiescence: %d slots, want %d", got, dequeInitCap)
	}
	// Still a working deque after the reset, including re-growth.
	for i := range tasks {
		d.push(&tasks[i])
	}
	for i := n - 1; i >= 0; i-- {
		if d.pop() != &tasks[i] {
			t.Fatalf("pop after shrink lost task %d", i)
		}
	}
	if d.steal() != nil {
		t.Fatal("steal on drained deque returned a task")
	}
}

// TestDequeShrinkWithConcurrentThieves: owners shrinking at quiescence
// while thieves keep probing must never lose or duplicate a task. The
// owner repeatedly fills past the grow threshold and drains to empty
// (shrinking each round); thieves hammer steal throughout.
func TestDequeShrinkWithConcurrentThieves(t *testing.T) {
	var d deque
	d.init()
	const rounds = 50
	const batch = 3 * dequeInitCap
	var stolen atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if d.steal() != nil {
					stolen.Add(1)
				}
			}
		}()
	}
	popped := int64(0)
	tasks := make([]Task, batch)
	for r := 0; r < rounds; r++ {
		for i := range tasks {
			d.push(&tasks[i])
		}
		for d.pop() != nil {
			popped++
		}
		// The empty pop above shrank the buffer; next round re-grows it.
		if got := len(d.buf.Load().slot); got != dequeInitCap {
			t.Fatalf("round %d: buffer not shrunk: %d slots", r, got)
		}
	}
	close(stop)
	wg.Wait()
	// Drain anything the last empty-pop race left behind.
	for d.pop() != nil {
		popped++
	}
	if total := popped + stolen.Load(); total != rounds*batch {
		t.Fatalf("popped %d + stolen %d = %d, want %d", popped, stolen.Load(), total, rounds*batch)
	}
}
