package core

import (
	"sync"
	"testing"
)

// BenchmarkSpawnExecute measures the full life cycle of an empty fork-join
// task on one worker: allocation (pooled), push, pop, execute, complete,
// recycle. This is the constant the paper keeps near "ten cycles" for the
// enqueue alone; everything below ~100ns keeps fib-class workloads usable.
func BenchmarkSpawnExecute(b *testing.B) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	b.ResetTimer()
	rt.RunRoot(func(w *Worker) {
		for i := 0; i < b.N; i++ {
			w.Spawn(func(*Worker) {})
			w.Sync()
		}
	})
}

// BenchmarkSpawnBatch amortizes the sync: 64 tasks per sync.
func BenchmarkSpawnBatch(b *testing.B) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	b.ResetTimer()
	rt.RunRoot(func(w *Worker) {
		for i := 0; i < b.N; i += 64 {
			for j := 0; j < 64; j++ {
				w.Spawn(func(*Worker) {})
			}
			w.Sync()
		}
	})
}

// BenchmarkSpawnDataflow measures a dataflow task with one RW access
// (frontier update, wait-count bookkeeping, successor release).
func BenchmarkSpawnDataflow(b *testing.B) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	var h Handle
	b.ResetTimer()
	rt.RunRoot(func(w *Worker) {
		for i := 0; i < b.N; i += 16 {
			for j := 0; j < 16; j++ {
				w.SpawnTask(func(*Worker) {}, Access{&h, ModeReadWrite})
			}
			w.Sync()
		}
	})
}

// Ablation A3 (DESIGN.md): the owner-side cost of the Chase–Lev deque
// versus a plain mutex-protected deque. The lock-free protocol keeps the
// owner path at a handful of uncontended atomics — including the pop of the
// last remaining task, which the old T.H.E. variant resolved under a mutex
// and which is exactly the case a push-one/pop-one task cycle hits — so
// task creation stays cheap under §II-C.

func BenchmarkDequeChaseLevPushPop(b *testing.B) {
	var d deque
	d.init()
	t := &Task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.push(t)
		if d.pop() == nil {
			b.Fatal("lost task")
		}
	}
}

type mutexDeque struct {
	mu sync.Mutex
	q  []*Task
}

func (d *mutexDeque) push(t *Task) {
	d.mu.Lock()
	d.q = append(d.q, t)
	d.mu.Unlock()
}

func (d *mutexDeque) pop() *Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return nil
	}
	t := d.q[len(d.q)-1]
	d.q = d.q[:len(d.q)-1]
	return t
}

func BenchmarkDequeMutexPushPop(b *testing.B) {
	var d mutexDeque
	t := &Task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.push(t)
		if d.pop() == nil {
			b.Fatal("lost task")
		}
	}
}

// Contended variants: a thief hammers the steal side while the owner
// push/pops. This is where the lock-free protocol earns its keep — the
// owner never blocks behind a thief (worst case it loses one head CAS),
// while the mutex deque serializes owner against thief on every operation.

func BenchmarkDequeChaseLevContendedOwner(b *testing.B) {
	var d deque
	d.init()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.steal()
		}
	}()
	tasks := [2]Task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.push(&tasks[0])
		d.push(&tasks[1])
		d.pop()
		d.pop()
	}
	b.StopTimer()
	close(stop)
}

func BenchmarkDequeMutexContendedOwner(b *testing.B) {
	var d mutexDeque
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.mu.Lock()
			if len(d.q) > 0 {
				d.q = d.q[1:]
			}
			d.mu.Unlock()
		}
	}()
	tasks := [2]Task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.push(&tasks[0])
		d.push(&tasks[1])
		d.pop()
		d.pop()
	}
	b.StopTimer()
	close(stop)
}

// BenchmarkForEach measures the adaptive loop overhead on a trivial body.
// The loop body is hoisted out of the b.N loop: a closure literal inside it
// captures sink and escape-allocates once per iteration, which used to show
// up as the loop's only alloc and masked the runtime's own zero-allocation
// steady state (locked in by bench_gates.json).
func BenchmarkForEach(b *testing.B) {
	rt := NewRuntime(Config{})
	defer rt.Close()
	var sink int64
	body := func(_ *Worker, lo, hi int64) {
		s := int64(0)
		for k := lo; k < hi; k++ {
			s += k
		}
		sink += s
	}
	b.ResetTimer()
	rt.RunRoot(func(w *Worker) {
		for i := 0; i < b.N; i++ {
			w.ForEach(0, 1<<16, LoopOpts{}, body)
		}
	})
	_ = sink
}

// BenchmarkIntervalExtract measures the CAS-packed interval operation that
// every foreach chunk claim performs.
func BenchmarkIntervalExtract(b *testing.B) {
	var iv Interval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv.Reset(0, 1<<20)
		for {
			if _, _, ok := iv.ExtractFront(1 << 16); !ok {
				break
			}
		}
	}
}

// BenchmarkFleetSubmit measures the external submission path through the
// fleet router — least-loaded placement over 4 shards, the MPSC inbox, the
// wake protocol — in windows so the pool drains without a Wait per job.
// This is the per-request constant a sharded server adds on top of the
// single-runtime Submit path.
func BenchmarkFleetSubmit(b *testing.B) {
	f := NewFleet(FleetConfig{Shards: 4, ShardSize: 1,
		Runtime: Config{DisablePinning: true}})
	defer f.Close()
	const window = 256
	b.ResetTimer()
	for i := 0; i < b.N; i += window {
		n := min(window, b.N-i)
		for j := 0; j < n; j++ {
			f.Submit(func(*Worker) {})
		}
		if err := f.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
