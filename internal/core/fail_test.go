package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// wantPanicErr asserts err is a *PanicError carrying value and a stack that
// mentions frame (a function name expected at the panic site).
func wantPanicErr(t *testing.T, err error, value any, frame string) *PanicError {
	t.Helper()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != value {
		t.Fatalf("panic value = %v, want %v", pe.Value, value)
	}
	if frame != "" && !strings.Contains(string(pe.Stack), frame) {
		t.Fatalf("panic stack does not mention %q:\n%s", frame, pe.Stack)
	}
	return pe
}

// TestPanicInRootBody: a panicking root body becomes the job's error, with
// the panic value and a stack pointing at the panic site, and the pool
// survives to run further jobs.
func TestPanicInRootBody(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Close()
	err := rt.Submit(func(*Worker) { panicHere() }).Wait()
	wantPanicErr(t, err, "boom-root", "panicHere")
	// The pool must still work.
	ok := false
	if err := rt.Submit(func(*Worker) { ok = true }).Wait(); err != nil {
		t.Fatalf("second job after panic: %v", err)
	}
	if !ok {
		t.Fatal("second job did not run")
	}
}

//go:noinline
func panicHere() { panic("boom-root") }

// TestPanicInSpawnedChild: a panic in a stolen/spawned child is captured
// into the job that spawned it.
func TestPanicInSpawnedChild(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Close()
	err := rt.Submit(func(w *Worker) {
		w.Spawn(func(*Worker) { panic("boom-child") })
		w.Sync()
	}).Wait()
	wantPanicErr(t, err, "boom-child", "")
}

// TestPanicCancelsRemainingTasks: with one worker, a root that spawns N
// children and then panics must have every child skipped, visible in the
// Cancelled counter, while the Panicked counter records the one panic.
func TestPanicCancelsRemainingTasks(t *testing.T) {
	const n = 50
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	var ran atomic.Int64
	err := rt.Submit(func(w *Worker) {
		for i := 0; i < n; i++ {
			w.Spawn(func(*Worker) { ran.Add(1) })
		}
		panic("boom-before-children")
	}).Wait()
	wantPanicErr(t, err, "boom-before-children", "")
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d children ran after the parent panicked (1 worker)", got)
	}
	rt.Wait()
	s := rt.Stats()
	if s.Cancelled != n {
		t.Fatalf("Stats.Cancelled = %d, want %d", s.Cancelled, n)
	}
	if s.Panicked != 1 {
		t.Fatalf("Stats.Panicked = %d, want 1", s.Panicked)
	}
	// Spawn/execute/cancel accounting must balance: every created task was
	// either executed or cancelled.
	if s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("spawned=%d executed=%d cancelled=%d do not balance",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestPanicInDataflowCancelsSuccessors: in a chain A -> B -> C through one
// handle, a panic in A must cancel B and C (their bodies never run) while
// keeping the handle frontier consistent: a later job reusing the same
// handle must run normally.
func TestPanicInDataflowCancelsSuccessors(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Close()
	var h Handle
	var bRan, cRan atomic.Bool
	err := rt.Submit(func(w *Worker) {
		w.SpawnTask(func(*Worker) { panic("boom-producer") }, Access{&h, ModeWrite})
		w.SpawnTask(func(*Worker) { bRan.Store(true) }, Access{&h, ModeReadWrite})
		w.SpawnTask(func(*Worker) { cRan.Store(true) }, Access{&h, ModeRead})
	}).Wait()
	wantPanicErr(t, err, "boom-producer", "")
	if bRan.Load() || cRan.Load() {
		t.Fatalf("successors of panicked producer ran: b=%v c=%v", bRan.Load(), cRan.Load())
	}
	// Frontier consistency: the same handle must still sequence a fresh
	// chain correctly in a new job.
	var order atomic.Int32
	var first, second int32
	err = rt.Submit(func(w *Worker) {
		w.SpawnTask(func(*Worker) { first = order.Add(1) }, Access{&h, ModeWrite})
		w.SpawnTask(func(*Worker) { second = order.Add(1) }, Access{&h, ModeRead})
	}).Wait()
	if err != nil {
		t.Fatalf("job reusing handle after failure: %v", err)
	}
	if first != 1 || second != 2 {
		t.Fatalf("dataflow order after failed job: writer=%d reader=%d, want 1,2", first, second)
	}
}

// TestPanicInAdaptiveSplitter: a splitter panics on the thief that invokes
// it; the panic must fail the installing task's job, not kill the thief.
func TestPanicInAdaptiveSplitter(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()
	j := rt.Submit(func(w *Worker) {
		ad := &Adaptive{Split: func(thief *Worker, n int) []*Task {
			// Build a task first: a panic must roll its spawn count back,
			// or the Spawned == Executed + Cancelled invariant breaks.
			thief.NewAdaptiveTask(func(*Worker) {})
			panic("boom-split")
		}}
		prev := w.SetAdaptive(ad)
		deadline := time.Now().Add(10 * time.Second)
		for !w.JobFailed() { // wait for a thief to invoke (and die in) Split
			if time.Now().After(deadline) {
				break
			}
		}
		w.SetAdaptive(prev)
	})
	err := j.Wait()
	wantPanicErr(t, err, "boom-split", "")
	if !strings.Contains(err.Error(), "boom-split") {
		t.Fatalf("error text lacks panic value: %v", err)
	}
	rt.Wait()
	if s := rt.Stats(); s.Spawned != s.Executed+s.Cancelled {
		t.Fatalf("spawned=%d executed=%d cancelled=%d do not balance after splitter panic",
			s.Spawned, s.Executed, s.Cancelled)
	}
}

// TestPanicInForEachBody: a panicking chunk aborts the loop, unwinds the
// calling body (code after ForEach must not run), and surfaces as the job's
// PanicError.
func TestPanicInForEachBody(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Close()
	afterLoop := false
	err := rt.Submit(func(w *Worker) {
		w.ForEach(0, 1_000_000, LoopOpts{}, func(_ *Worker, lo, hi int64) {
			for i := lo; i < hi; i++ {
				if i == 500_000 {
					panic("boom-loop")
				}
			}
		})
		afterLoop = true
	}).Wait()
	wantPanicErr(t, err, "boom-loop", "")
	if afterLoop {
		t.Fatal("body continued past a failed ForEach")
	}
	rt.Wait()
	if s := rt.Stats(); s.Panicked == 0 {
		t.Fatalf("Stats.Panicked = 0 after loop panic")
	}
}

// TestForEachSerialFastPathPanic covers the single-worker / small-range
// path where the body runs inline.
func TestForEachSerialFastPathPanic(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	err := rt.Submit(func(w *Worker) {
		w.ForEach(0, 10, LoopOpts{}, func(*Worker, int64, int64) { panic("boom-serial") })
	}).Wait()
	wantPanicErr(t, err, "boom-serial", "")
}

// TestSubmitCtxCancel: cancelling the submission context before the root
// runs skips the job's body and Wait reports context.Canceled.
func TestSubmitCtxCancel(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	gate := make(chan struct{})
	blocker := rt.Submit(func(*Worker) { <-gate }) // occupy the only worker
	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	j := rt.SubmitCtx(ctx, func(*Worker) { ran = true })
	cancel()
	// Give the watcher a moment to observe the cancellation, then let the
	// worker reach the queued root.
	for j.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker job: %v", err)
	}
	if err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("cancelled job's body ran")
	}
	rt.Wait()
	if s := rt.Stats(); s.Cancelled == 0 {
		t.Fatal("Stats.Cancelled = 0 after a cancelled root")
	}
}

// TestSubmitCtxPreCancelled: a context cancelled before SubmitCtx still
// yields a job; its body never runs and Wait reports the context error.
func TestSubmitCtxPreCancelled(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	j := rt.SubmitCtx(ctx, func(*Worker) { ran = true })
	if err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-cancelled job's body ran")
	}
}

// TestJobCancelStopsScheduling: Cancel mid-flight stops new tasks of the
// job from running; tasks already executing finish (cooperatively).
func TestJobCancelStopsScheduling(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var lateRan atomic.Bool
	j := rt.Submit(func(w *Worker) {
		close(started)
		<-release // body already executing: runs to completion
		w.Spawn(func(*Worker) { lateRan.Store(true) })
		w.Sync()
	})
	<-started
	j.Cancel()
	close(release)
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if lateRan.Load() {
		t.Fatal("task spawned after Cancel ran")
	}
	// Cancel after completion must not disturb a finished job's error.
	ok := rt.Submit(func(*Worker) {})
	if err := ok.Wait(); err != nil {
		t.Fatalf("clean job: %v", err)
	}
	ok.Cancel()
	if err := ok.Err(); err != nil {
		t.Fatalf("Cancel after completion changed Err to %v", err)
	}
}

// TestCancelledForEachStopsExtracting: a job cancelled while an adaptive
// loop runs stops claiming iterations instead of finishing the range.
func TestCancelledForEachStopsExtracting(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()
	var iters atomic.Int64
	var j *Job
	started := make(chan struct{})
	var once atomic.Bool
	j = rt.Submit(func(w *Worker) {
		w.ForEach(0, 1<<30, LoopOpts{SeqGrain: 1024}, func(_ *Worker, lo, hi int64) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			iters.Add(hi - lo)
		})
	})
	<-started
	j.Cancel()
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if iters.Load() >= 1<<30 {
		t.Fatal("cancelled loop executed the entire range")
	}
}

// TestCancelledForEachSerialPath: the single-worker fast path honours the
// same contract as the parallel loop — cancellation stops the loop at the
// next grain boundary and unwinds the body, so code after the loop never
// runs.
func TestCancelledForEachSerialPath(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	ready := make(chan struct{})
	var chunks atomic.Int64
	after := false
	var j *Job
	j = rt.Submit(func(w *Worker) {
		<-ready // j is assigned before the body proceeds
		w.ForEach(0, 1<<20, LoopOpts{SeqGrain: 1024}, func(*Worker, int64, int64) {
			if chunks.Add(1) == 1 {
				j.Cancel()
			}
		})
		after = true
	})
	close(ready)
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if got := chunks.Load(); got != 1 {
		t.Fatalf("loop ran %d chunks after Cancel, want 1", got)
	}
	if after {
		t.Fatal("body continued past a cancelled ForEach")
	}
}

// TestAbortedForEachWaitsForRunningChunks: a failed/cancelled loop must not
// let the job complete while a chunk body is still executing — the caller
// may free the data the body touches the moment Wait returns. pending is
// authoritative: iterations are either executed or abort-credited, so
// ForEach only returns once no body is in flight.
func TestAbortedForEachWaitsForRunningChunks(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()
	inChunk := make(chan struct{})
	release := make(chan struct{})
	var chunkDone atomic.Bool
	var once atomic.Bool
	j := rt.Submit(func(w *Worker) {
		w.ForEach(0, 1<<20, LoopOpts{SeqGrain: 1}, func(*Worker, int64, int64) {
			if once.CompareAndSwap(false, true) {
				close(inChunk)
				<-release
				chunkDone.Store(true)
			}
		})
	})
	<-inChunk
	j.Cancel()
	select {
	case <-j.st.DoneChan():
		t.Fatal("job completed while a chunk body was still running")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if !chunkDone.Load() {
		t.Fatal("chunk body did not run to completion")
	}
}

// TestCloseErrReportsFailures: CloseErr drains and summarizes job failures,
// wrapping the first error.
func TestCloseErrReportsFailures(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	rt.Submit(func(*Worker) {}).Wait()
	rt.Submit(func(*Worker) { panic("boom-close") }).Wait()
	err := rt.CloseErr()
	if err == nil {
		t.Fatal("CloseErr = nil after a failed job")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-close" {
		t.Fatalf("CloseErr does not wrap the job's PanicError: %v", err)
	}
	// CloseErr on a clean runtime is nil.
	rt2 := NewRuntime(Config{Workers: 1})
	rt2.Submit(func(*Worker) {}).Wait()
	if err := rt2.CloseErr(); err != nil {
		t.Fatalf("CloseErr on clean runtime = %v", err)
	}
}

// TestPanicErrorUnwrap: panic(err) is reachable through errors.Is.
func TestPanicErrorUnwrap(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	sentinel := errors.New("sentinel failure")
	err := rt.Submit(func(*Worker) { panic(sentinel) }).Wait()
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(%v, sentinel) = false", err)
	}
}

// TestConcurrentJobsIsolated: a panicking job must not disturb healthy jobs
// sharing the pool.
func TestConcurrentJobsIsolated(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Close()
	jobs := make([]*Job, 0, 32)
	results := make([]int64, 32)
	for i := range results {
		i := i
		if i%4 == 0 {
			jobs = append(jobs, rt.Submit(func(*Worker) { panic("boom-mixed") }))
		} else {
			jobs = append(jobs, rt.Submit(func(w *Worker) { fibTask(w, &results[i], 18) }))
		}
	}
	want := int64(2584) // fib(18)
	for i, j := range jobs {
		err := j.Wait()
		if i%4 == 0 {
			wantPanicErr(t, err, "boom-mixed", "")
			continue
		}
		if err != nil {
			t.Fatalf("healthy job %d failed: %v", i, err)
		}
		if results[i] != want {
			t.Fatalf("job %d: fib=%d want %d", i, results[i], want)
		}
	}
}

// TestContextUnblocksOnSiblingPanic: a body parked on Proc.Context().Done()
// is released the instant a sibling task panics, from another worker,
// without the blocked body ever reaching a scheduling point — the
// cancellation fan-out half of the shared failure state machine. The panic
// is also the context's cause.
func TestContextUnblocksOnSiblingPanic(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()
	blocked := make(chan struct{})
	var sawCause error
	j := rt.Submit(func(w *Worker) {
		w.Spawn(func(w2 *Worker) { // blocker: stolen by the second worker
			ctx := w2.Context()
			close(blocked)
			<-ctx.Done()
			sawCause = context.Cause(ctx)
		})
		w.Spawn(func(*Worker) { // panicker: popped LIFO by the first
			<-blocked // the blocker is provably parked on Done
			panic("boom-ctx-sibling")
		})
		w.Sync()
	})
	err := j.Wait()
	wantPanicErr(t, err, "boom-ctx-sibling", "")
	var pe *PanicError
	if !errors.As(sawCause, &pe) || pe.Value != "boom-ctx-sibling" {
		t.Fatalf("context cause = %v, want the sibling's PanicError", sawCause)
	}
}

// TestContextUnblocksOnJobCancel: an external Job.Cancel releases a body
// parked on the job context, with ErrCanceled as the cause.
func TestContextUnblocksOnJobCancel(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Close()
	blocked := make(chan struct{})
	var sawCause error
	j := rt.Submit(func(w *Worker) {
		ctx := w.Context()
		close(blocked)
		<-ctx.Done()
		sawCause = context.Cause(ctx)
	})
	<-blocked
	j.Cancel()
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if !errors.Is(sawCause, ErrCanceled) {
		t.Fatalf("context cause = %v, want ErrCanceled", sawCause)
	}
}

// TestContextCarriesSubmitDeadline: a SubmitCtx job's tasks see the
// submission deadline through Proc.Context — Deadline() reports it, Done()
// fires at expiry, and Wait reports context.DeadlineExceeded.
func TestContextCarriesSubmitDeadline(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, DisablePinning: true})
	defer rt.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sawDeadline := false
	j := rt.SubmitCtx(ctx, func(w *Worker) {
		jctx := w.Context()
		_, sawDeadline = jctx.Deadline()
		<-jctx.Done() // deadline-aware body: released by the timer
	})
	if err := j.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
	if !sawDeadline {
		t.Fatal("body did not observe the submission deadline via Proc.Context")
	}
}

// TestContextPropagationStress is the -race stress over the whole failure
// state machine: jobs whose bodies park on Proc.Context().Done() are
// concurrently released by sibling panics, external Cancels and context
// deadlines, interleaved with healthy jobs, all over one small pool. Every
// blocked body's release comes from outside the pool's progress (a root
// panic on its own worker, a timer, or the test goroutine), so the stress
// cannot deadlock however the scheduler interleaves.
func TestContextPropagationStress(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, DisablePinning: true})
	defer rt.Close()
	jobs := 120
	if testing.Short() {
		jobs = 40
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			switch i % 4 {
			case 0: // sibling panic releases a Done-parked child
				j := rt.Submit(func(w *Worker) {
					w.Spawn(func(w2 *Worker) { <-w2.Context().Done() })
					panic("boom-stress")
				})
				var pe *PanicError
				if err := j.Wait(); !errors.As(err, &pe) {
					fail("panic job %d: Wait = %v, want PanicError", i, err)
				}
			case 1: // deadline releases a Done-parked root
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
				j := rt.SubmitCtx(ctx, func(w *Worker) { <-w.Context().Done() })
				if err := j.Wait(); !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					fail("deadline job %d: Wait = %v, want a context error", i, err)
				}
				cancel()
			case 2: // external Cancel releases a Done-parked root
				started := make(chan struct{})
				j := rt.Submit(func(w *Worker) {
					close(started)
					<-w.Context().Done()
				})
				<-started
				j.Cancel()
				if err := j.Wait(); !errors.Is(err, ErrCanceled) {
					fail("cancel job %d: Wait = %v, want ErrCanceled", i, err)
				}
			default: // healthy job sharing the pool
				var r int64
				j := rt.Submit(func(w *Worker) { fibTask(w, &r, 12) })
				if err := j.Wait(); err != nil {
					fail("healthy job %d failed: %v", i, err)
				} else if r != 144 {
					fail("healthy job %d: fib=%d want 144", i, r)
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	rt.Wait()
}

// TestSubmitCtxAfterCloseReportsErrClosed: rejection must win over the
// submission context's own state — SubmitCtx on a closed runtime reports
// ErrClosed even when ctx is already cancelled, so errors.Is(err,
// ErrClosed) remains the reliable shutdown signal.
func TestSubmitCtxAfterCloseReportsErrClosed(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := rt.SubmitCtx(ctx, func(*Worker) {})
	if err := j.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
}
