package core

import "sync"

// Handle identifies a shared memory region tasks synchronize on (§II-B of
// the paper: "tasks share data if they have access to the same memory
// region"). The region itself is whatever user data the spawning code
// associates with the handle; the runtime only tracks the dependency state.
//
// The zero value is a valid handle denoting a region nobody has accessed yet.
// A Handle must not be copied after first use.
//
// Internally a handle stores the frontier of the dependency graph for its
// region: the producer of the current version (writer), the readers of that
// version, and the open group of cumulative writers. Registering an access
// only touches this frontier, so dependency computation is O(1) per access —
// the "when required" cost model of the paper — rather than a traversal of
// the task graph.
type Handle struct {
	mu      sync.Mutex
	writer  taskRef
	readers []taskRef
	cws     []taskRef
}

// addAccess registers task t as accessing h with mode m and increments t's
// wait count once per unsatisfied dependency. Called during spawn, possibly
// from several workers concurrently.
func (h *Handle) addAccess(t *Task, m Mode) {
	h.mu.Lock()
	switch m {
	case ModeRead:
		// RAW: wait for the producer of the current version, which is either
		// the last exclusive writer or the whole open cumulative-write group.
		depOn(t, h.writer)
		for _, c := range h.cws {
			depOn(t, c)
		}
		h.readers = append(h.readers, taskRef{t, t.seq})
	case ModeWrite, ModeReadWrite:
		// RAW + WAR + WAW: wait for producer, readers and cumulative
		// writers, then become the producer of the next version.
		depOn(t, h.writer)
		for _, r := range h.readers {
			depOn(t, r)
		}
		for _, c := range h.cws {
			depOn(t, c)
		}
		h.writer = taskRef{t, t.seq}
		h.readers = h.readers[:0]
		h.cws = h.cws[:0]
	case ModeCumulWrite:
		// Concurrent with other cumulative writers of the same generation;
		// ordered after the previous producer and its readers.
		depOn(t, h.writer)
		for _, r := range h.readers {
			depOn(t, r)
		}
		h.cws = append(h.cws, taskRef{t, t.seq})
	}
	h.mu.Unlock()
}
