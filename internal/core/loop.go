package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi/internal/jobfail"
	"xkaapi/internal/xrand"
)

func xrandSeed(base uint64, i int) xrand.Rand {
	return xrand.New(base + uint64(i)*0x9E3779B97F4A7C15 + 1)
}

// LoopOpts tunes ForEach. The zero value selects the defaults of
// kaapic_foreach: the iteration space is pre-partitioned into one reserved
// slice per worker, owners extract SeqGrain iterations at a time, and
// splitters leave intervals shorter than ParGrain alone.
type LoopOpts struct {
	// SeqGrain is the number of iterations the executing worker claims per
	// extraction; it bounds the window during which work cannot be stolen.
	// Zero selects n/(16*workers), at least 1.
	SeqGrain int64
	// ParGrain is the minimum remaining width a splitter will divide.
	// Zero selects SeqGrain.
	ParGrain int64
	// Slices is the number of reserved slices the range is pre-partitioned
	// into ("one slice reserved to each available core", §II-E). Zero
	// selects the worker count.
	Slices int
}

// loopCtx is the shared state of one ForEach invocation.
type loopCtx struct {
	body      func(*Worker, int64, int64)
	seqGrain  int64
	parGrain  int64
	job       *Job         // job of the ForEach caller: failure/cancel scope
	pending   atomic.Int64 // iterations neither executed nor abort-credited
	nextSlice atomic.Int32
	slices    []paddedInterval

	abort atomic.Bool // a chunk panicked: stop extracting iterations
	errMu sync.Mutex
	err   error // first chunk panic
}

// fail records the first chunk failure and aborts the loop.
func (lc *loopCtx) fail(err error) {
	lc.errMu.Lock()
	if lc.err == nil {
		lc.err = err
	}
	lc.errMu.Unlock()
	lc.abort.Store(true)
}

// firstErr returns the recorded chunk failure, if any.
func (lc *loopCtx) firstErr() error {
	lc.errMu.Lock()
	err := lc.err
	lc.errMu.Unlock()
	return err
}

// aborted reports whether iteration extraction must stop: a chunk panicked
// somewhere, or the enclosing job failed (panic elsewhere, cancellation).
func (lc *loopCtx) aborted() bool {
	return lc.abort.Load() || (lc.job != nil && lc.job.aborted())
}

// runChunk applies the loop body to [lo, hi) behind a panic barrier. On
// panic it fails both the loop context (so every participant stops
// extracting) and the job, credits the chunk's iterations (they will never
// re-execute, and pending must stay authoritative), and reports false.
func (lc *loopCtx) runChunk(w *Worker, lo, hi int64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			var err error
			if au, isAbort := r.(abortUnwind); isAbort {
				err = au.err // nested loop already recorded the panic
			} else {
				w.stats.panicked.Add(1)
				if lc.job != nil {
					lc.job.counts.Panicked.Add(1)
				}
				err = jobfail.Capture(r)
			}
			lc.fail(err)
			if lc.job != nil {
				lc.job.fail(err)
			}
			lc.pending.Add(lo - hi)
		}
	}()
	// Chaos loop-panic site: fail the chunk before its body runs, inside the
	// barrier above, exercising the adaptive split/extract boundary — the
	// recover credits [lo, hi) back to pending and aborts the loop exactly as
	// a user-body panic would.
	if cz := w.rt.chaos; cz != nil {
		if v, ok := cz.LoopPanic(); ok {
			panic(v)
		}
	}
	lc.body(w, lo, hi)
	return true
}

// paddedInterval is the reserved-slice slot: one Interval per worker,
// padded to a full cache line. A slice's owner CASes its bits word every
// SeqGrain iterations while thieves probe and retreat neighbouring
// slices; without the pad, four 16-byte Intervals share one line and
// every extraction bounces it across the cores that reserved them.
// (Interval itself stays unpadded: it is a public standalone type, and
// the per-task intervals of loopRun are separate heap allocations.)
type paddedInterval struct {
	Interval
	_ [48]byte
}

// claimSlice atomically claims the next untouched reserved slice, or nil.
func (lc *loopCtx) claimSlice() *Interval {
	for {
		i := int(lc.nextSlice.Add(1)) - 1
		if i >= len(lc.slices) {
			return nil
		}
		if lc.slices[i].Remaining() > 0 {
			return &lc.slices[i].Interval
		}
	}
}

// loopAdaptive couples a loop context with the interval its owner is
// currently iterating; it provides the splitter thieves call.
type loopAdaptive struct {
	lc *loopCtx
	iv atomic.Pointer[Interval]
}

// split implements the paper's kaapic_foreach splitter (§II-E). It first
// hands out whole reserved slices; once those are gone it divides the
// victim's live interval [bt, e) into k+1 near-equal parts, keeping one for
// the victim and returning the rest as fresh adaptive tasks, one per
// requesting thief.
func (la *loopAdaptive) split(thief *Worker, n int) []*Task {
	lc := la.lc
	var out []*Task
	for len(out) < n {
		iv := lc.claimSlice()
		if iv == nil {
			break
		}
		out = append(out, thief.newLoopTask(lc, iv))
	}
	if k := n - len(out); k > 0 {
		if iv := la.iv.Load(); iv != nil {
			rem := iv.Remaining()
			take := rem * int64(k) / int64(k+1)
			if take >= lc.parGrain && take > 0 {
				if lo, hi, ok := iv.ExtractBack(take); ok {
					out = thief.appendLoopTasks(out, lc, lo, hi, k)
				}
			}
		}
	}
	return out
}

// newLoopTask wraps an interval into a free-standing adaptive task. Loop
// tasks have no parent frame: completion of the loop is tracked by the
// pending counter of the loop context instead.
func (w *Worker) newLoopTask(lc *loopCtx, iv *Interval) *Task {
	t := w.alloc()
	t.flags |= flagLoop
	t.body = func(w2 *Worker) { w2.loopRun(lc, iv) }
	t.job = lc.job // split-off slices stay in the loop's failure scope
	w.noteSpawned()
	return t
}

// appendLoopTasks partitions [lo,hi) into at most k near-equal intervals and
// appends one loop task per non-empty part.
func (w *Worker) appendLoopTasks(out []*Task, lc *loopCtx, lo, hi int64, k int) []*Task {
	span := hi - lo
	parts := int64(k)
	if parts > span {
		parts = span
	}
	for i := int64(0); i < parts; i++ {
		plo := lo + i*span/parts
		phi := lo + (i+1)*span/parts
		if phi <= plo {
			continue
		}
		iv := new(Interval)
		iv.Reset(plo, phi)
		out = append(out, w.newLoopTask(lc, iv))
	}
	return out
}

// loopRun drains iv (and then any remaining reserved slices) through the
// loop body, with the splitter installed so thieves can take work from the
// active interval at any time.
func (w *Worker) loopRun(lc *loopCtx, iv *Interval) {
	if iv == nil {
		if iv = lc.claimSlice(); iv == nil {
			return
		}
	}
	la := &loopAdaptive{lc: lc}
	ad := &Adaptive{Split: la.split, job: lc.job}
	prev := w.SetAdaptive(ad)
	for iv != nil {
		la.iv.Store(iv)
		for !lc.aborted() {
			clo, chi, ok := iv.ExtractFront(lc.seqGrain)
			if !ok {
				break
			}
			if !lc.runChunk(w, clo, chi) {
				break
			}
			lc.pending.Add(clo - chi)
		}
		if lc.aborted() {
			// Abort sweep: stop executing, but keep claiming intervals and
			// credit their unexecuted iterations, so pending still drains
			// to zero. pending is what ForEach waits on — an iteration is
			// either executed or deliberately abandoned, never in limbo —
			// which guarantees no chunk body can still be running (and no
			// split-off slice still owed) once ForEach returns.
			if dlo, dhi, ok := iv.ExtractFront(intervalMaxWidth); ok {
				lc.pending.Add(dlo - dhi)
			}
		}
		iv = lc.claimSlice()
	}
	w.adaptive.Store(prev)
}

// ForEach applies body to every index of [lo, hi) in parallel, returning
// once all iterations have executed. body receives sub-ranges [l, h) and the
// worker executing them; distinct calls never overlap, every index is
// delivered exactly once, and no index is delivered twice even in the
// presence of concurrent splitting.
//
// This is the kaapic_foreach of the paper (§II-E): a single adaptive task
// whose remaining iterations are divided on demand as thieves ask for work,
// rather than a task per chunk. The caller participates in execution and, if
// the loop is fully distributed, schedules unrelated ready tasks while
// waiting for the last iterations.
func (w *Worker) ForEach(lo, hi int64, opt LoopOpts, body func(w *Worker, lo, hi int64)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	p := len(w.rt.workers)
	if opt.SeqGrain <= 0 {
		opt.SeqGrain = n / int64(16*p)
		if opt.SeqGrain < 1 {
			opt.SeqGrain = 1
		}
	}
	if opt.ParGrain <= 0 {
		opt.ParGrain = opt.SeqGrain
	}
	if p == 1 || n <= opt.SeqGrain {
		// Serial fast path — same failure contract as the parallel path:
		// poll the job at every grain boundary so Cancel/ctx stop the loop,
		// and unwind the calling body instead of returning normally after a
		// failure.
		var job *Job
		if w.cur != nil {
			job = w.cur.job
		}
		for clo := lo; clo < hi; clo += opt.SeqGrain {
			if job != nil && job.aborted() {
				panic(abortUnwind{job.Err()})
			}
			chi := clo + opt.SeqGrain
			if chi > hi {
				chi = hi
			}
			body(w, clo, chi)
		}
		if job != nil && job.aborted() {
			panic(abortUnwind{job.Err()})
		}
		return
	}
	nSlices := opt.Slices
	if nSlices <= 0 {
		nSlices = p
	}
	if int64(nSlices) > n {
		nSlices = int(n)
	}
	// Keep every slice narrower than the 31-bit interval limit.
	for n/int64(nSlices) >= intervalMaxWidth {
		nSlices *= 2
	}
	lc := &loopCtx{body: body, seqGrain: opt.SeqGrain, parGrain: opt.ParGrain}
	if w.cur != nil {
		lc.job = w.cur.job
	}
	lc.pending.Store(n)
	lc.slices = make([]paddedInterval, nSlices)
	for i := range lc.slices {
		slo := lo + int64(i)*n/int64(nSlices)
		shi := lo + int64(i+1)*n/int64(nSlices)
		lc.slices[i].Reset(slo, shi)
	}
	w.loopRun(lc, nil)
	// Our share is done; help with (or wait for) iterations stolen by
	// others. schedOnce keeps the worker useful for unrelated tasks too.
	// The wait is unconditional — pending is authoritative even on abort:
	// every iteration is either executed (credited after its chunk body
	// returns) or abandoned by a participant's abort sweep, so pending==0
	// guarantees no chunk body is still touching the caller's data when
	// ForEach returns, failure or not.
	idle := 0
	for lc.pending.Load() != 0 {
		if w.schedOnce() {
			idle = 0
			continue
		}
		idle++
		if idle == 1 {
			w.flushStats() // out of work: publish cached counters
		}
		if idle < idleSpinBeforeSleep {
			runtime.Gosched()
		} else {
			time.Sleep(idleSleep)
		}
	}
	// Unwind the calling body instead of returning normally after a
	// failure: code after a loop must not run on partial results. The
	// sentinel carries the original error; the body-level recover in
	// runBody records it on the job without double-counting the panic.
	if err := lc.firstErr(); err != nil {
		panic(abortUnwind{err})
	}
	if lc.job != nil && lc.job.aborted() {
		panic(abortUnwind{lc.job.Err()})
	}
}
