package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// submitFib submits a fork-join fib job and returns the result slot and
// the job handle.
func submitFib(rt *Runtime, n int) (*int64, *Job) {
	r := new(int64)
	return r, rt.Submit(func(w *Worker) { fibTask(w, r, n) })
}

// TestSubmitConcurrentStress is the acceptance workload: 8 external
// goroutines each complete 100 mixed jobs — fork-join spawns, adaptive
// loops, and dataflow access chains — on one shared pool, with every
// result checked and the scheduler counters balancing afterwards.
func TestSubmitConcurrentStress(t *testing.T) {
	const (
		clients       = 8
		jobsPerClient = 100
	)
	fibN := 18
	loopN := 20_000
	if testing.Short() {
		fibN = 12
		loopN = 2_000
	}
	wantFib := fibSeq(fibN)
	wantLoop := int64(loopN) * int64(loopN-1) / 2

	for _, workers := range []int{1, 2, 4} {
		withRuntime(t, Config{Workers: workers}, func(rt *Runtime) {
			rt.ResetStats()
			var wg sync.WaitGroup
			errs := make(chan string, clients*jobsPerClient)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(client int) {
					defer wg.Done()
					for j := 0; j < jobsPerClient; j++ {
						switch (client + j) % 3 {
						case 0: // fork-join recursion
							r, job := submitFib(rt, fibN)
							job.Wait()
							if *r != wantFib {
								errs <- "fib mismatch"
							}
						case 1: // adaptive loop
							var sum atomic.Int64
							rt.Submit(func(w *Worker) {
								w.ForEach(0, int64(loopN), LoopOpts{}, func(_ *Worker, lo, hi int64) {
									s := int64(0)
									for i := lo; i < hi; i++ {
										s += i
									}
									sum.Add(s)
								})
							}).Wait()
							if sum.Load() != wantLoop {
								errs <- "loop mismatch"
							}
						case 2: // dataflow chain: produce -> double -> read
							var h Handle
							val := 0
							got := 0
							rt.Submit(func(w *Worker) {
								w.SpawnTask(func(*Worker) { val = 21 }, Access{&h, ModeWrite})
								w.SpawnTask(func(*Worker) { val *= 2 }, Access{&h, ModeReadWrite})
								w.SpawnTask(func(*Worker) { got = val }, Access{&h, ModeRead})
								w.Sync()
							}).Wait()
							if got != 42 {
								errs <- "dataflow mismatch"
							}
						}
					}
				}(c)
			}
			wg.Wait()
			rt.Wait()
			close(errs)
			for e := range errs {
				t.Errorf("workers=%d: %s", workers, e)
			}
			// Workers publish their batched counters as they go idle,
			// trailing Wait by at most a scheduling quantum; poll briefly.
			deadline := time.Now().Add(5 * time.Second)
			s := rt.Stats()
			for s.Spawned != s.Executed && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
				s = rt.Stats()
			}
			if s.Spawned != s.Executed {
				t.Errorf("workers=%d: spawned=%d executed=%d (counters must balance)",
					workers, s.Spawned, s.Executed)
			}
			if s.Spawned < clients*jobsPerClient {
				t.Errorf("workers=%d: spawned=%d, want at least one task per job (%d)",
					workers, s.Spawned, clients*jobsPerClient)
			}
		})
	}
}

// TestRuntimeWaitDrainsAllJobs submits a burst of fire-and-forget jobs and
// checks Runtime.Wait observes all of them.
func TestRuntimeWaitDrainsAllJobs(t *testing.T) {
	withRuntime(t, Config{Workers: 2}, func(rt *Runtime) {
		const n = 200
		var ran atomic.Int64
		jobs := make([]*Job, 0, n)
		for i := 0; i < n; i++ {
			jobs = append(jobs, rt.Submit(func(w *Worker) {
				w.Spawn(func(*Worker) { ran.Add(1) })
				w.Sync()
			}))
		}
		rt.Wait()
		if got := ran.Load(); got != n {
			t.Fatalf("ran=%d want %d", got, n)
		}
		for i, j := range jobs {
			if !j.Done() {
				t.Fatalf("job %d not done after Runtime.Wait", i)
			}
		}
	})
}

// TestCloseDrainsInFlightJobs checks that Close completes every job
// submitted before it instead of abandoning queued roots.
func TestCloseDrainsInFlightJobs(t *testing.T) {
	const n = 100
	var ran atomic.Int64
	rt := NewRuntime(Config{Workers: 2})
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, rt.Submit(func(w *Worker) {
			var r int64
			fibTask(w, &r, 10)
			ran.Add(1)
		}))
	}
	rt.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("Close returned with %d/%d jobs executed", got, n)
	}
	for i, j := range jobs {
		if !j.Done() {
			t.Fatalf("job %d not done after Close", i)
		}
	}
}

// TestSubmitCloseRace hammers Submit against Close: every Submit must
// either be rejected with ErrClosed (came after Close) or yield a job that
// Close drained — never a silently stranded job whose Wait would hang.
func TestSubmitCloseRace(t *testing.T) {
	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for i := 0; i < rounds; i++ {
		rt := NewRuntime(Config{Workers: 2})
		type res struct {
			job *Job
			ran *atomic.Bool
		}
		results := make(chan res, 64)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 16; k++ {
					var ran atomic.Bool
					job := rt.Submit(func(*Worker) { ran.Store(true) })
					if errors.Is(job.Err(), ErrClosed) {
						if !job.Done() {
							t.Error("rejected job not pre-completed")
						}
						return // pool closed; later Submits are rejected too
					}
					results <- res{job, &ran}
				}
			}()
		}
		runtime.Gosched()
		rt.Close()
		wg.Wait()
		close(results)
		for r := range results {
			select {
			case <-r.job.st.DoneChan():
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d: accepted job stranded by Close (Wait would hang)", i)
			}
			if !r.ran.Load() {
				t.Fatalf("round %d: accepted job never executed", i)
			}
		}
	}
}

// TestSubmitAfterCloseErrClosed pins the lifecycle rule: submission to a
// closed runtime is rejected with the ErrClosed sentinel (no panic), the
// rejected job is pre-completed, and its body never runs.
func TestSubmitAfterCloseErrClosed(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	rt.Close()
	ran := false
	j := rt.Submit(func(*Worker) { ran = true })
	if !j.Done() {
		t.Fatal("rejected job is not pre-completed")
	}
	if err := j.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait after Close = %v, want ErrClosed", err)
	}
	if !errors.Is(j.Err(), ErrClosed) {
		t.Fatalf("Err after Close = %v, want ErrClosed", j.Err())
	}
	if ran {
		t.Fatal("rejected job's body ran")
	}
}

// TestParkWakeExternalSubmit is the park/wake regression test for the
// inbox path: with the pool fully parked (no work anywhere), an external
// Submit must promptly wake a worker — i.e. either the submitter sees the
// idle worker and signals it, or the parking worker's final anyWork scan
// sees the inbox entry. Run with -race to exercise the window.
func TestParkWakeExternalSubmit(t *testing.T) {
	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for _, workers := range []int{1, 4} {
		withRuntime(t, Config{Workers: workers}, func(rt *Runtime) {
			for i := 0; i < rounds; i++ {
				// Wait for the whole pool to park: every worker sits in
				// parkCond.Wait and only an explicit wake-up can move one.
				deadline := time.Now().Add(5 * time.Second)
				for rt.idle.Load() != int32(workers) {
					if time.Now().After(deadline) {
						t.Fatalf("round %d: workers never parked (idle=%d/%d)",
							i, rt.idle.Load(), workers)
					}
					time.Sleep(50 * time.Microsecond)
				}
				done := make(chan struct{})
				go func() {
					var r int64
					rt.Submit(func(w *Worker) { fibTask(w, &r, 5) }).Wait()
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Fatalf("round %d: submit into parked pool never completed (lost wakeup)", i)
				}
			}
		})
	}
}

// TestSubmitFromTaskBody checks the fire-and-forget rule: a task body may
// Submit an unrelated root; the submitting job completes without waiting
// for it, and the new job completes on its own.
func TestSubmitFromTaskBody(t *testing.T) {
	withRuntime(t, Config{Workers: 2}, func(rt *Runtime) {
		inner := make(chan *Job, 1)
		var innerRan atomic.Bool
		rt.Submit(func(w *Worker) {
			inner <- rt.Submit(func(*Worker) { innerRan.Store(true) })
		}).Wait()
		(<-inner).Wait()
		if !innerRan.Load() {
			t.Fatal("inner job did not run")
		}
	})
}

// TestRunRootConcurrentCallers checks the reworked RunRoot: concurrent
// callers multiplex over one pool and each call keeps its blocking,
// result-ready-on-return contract.
func TestRunRootConcurrentCallers(t *testing.T) {
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		const callers = 16
		want := fibSeq(15)
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					var r int64
					rt.RunRoot(func(w *Worker) { fibTask(w, &r, 15) })
					if r != want {
						t.Errorf("fib=%d want %d", r, want)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

// TestSubmitManySmallJobsThroughput floods the inbox with tiny jobs from
// many goroutines, stressing the take/park interplay rather than task
// execution.
func TestSubmitManySmallJobsThroughput(t *testing.T) {
	jobs := 2000
	if testing.Short() {
		jobs = 300
	}
	withRuntime(t, Config{Workers: 4}, func(rt *Runtime) {
		var ran atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < jobs/8; i++ {
					rt.Submit(func(*Worker) { ran.Add(1) })
				}
			}()
		}
		wg.Wait()
		rt.Wait()
		if got := ran.Load(); got != int64(jobs/8*8) {
			t.Fatalf("ran=%d want %d", got, jobs/8*8)
		}
	})
}
