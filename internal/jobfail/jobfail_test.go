package jobfail

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFirstErrorWins: only the first Fail is recorded; the rest (including
// Cancel) are ignored, and Failed/Err/Context all agree.
func TestFirstErrorWins(t *testing.T) {
	var s State
	s.Init(nil)
	first := errors.New("first")
	if !s.Fail(first) {
		t.Fatal("first Fail not recorded")
	}
	if s.Fail(errors.New("second")) {
		t.Fatal("second Fail recorded")
	}
	s.Cancel()
	if err := s.Err(); err != first {
		t.Fatalf("Err = %v, want first", err)
	}
	if !s.Failed() {
		t.Fatal("Failed() = false after Fail")
	}
	select {
	case <-s.Context().Done():
	default:
		t.Fatal("Context not cancelled by Fail")
	}
	if cause := context.Cause(s.Context()); cause != first {
		t.Fatalf("Cause = %v, want first", cause)
	}
	if err := s.Finish(); err != first {
		t.Fatalf("Finish = %v, want first", err)
	}
}

// TestFailAfterFinishIgnored: the state seals at Finish.
func TestFailAfterFinishIgnored(t *testing.T) {
	var s State
	s.Init(nil)
	if err := s.Finish(); err != nil {
		t.Fatalf("Finish = %v, want nil", err)
	}
	if s.Fail(errors.New("late")) {
		t.Fatal("Fail after Finish recorded")
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
	if !s.Done() {
		t.Fatal("Done() = false after Finish")
	}
}

// TestParentCancellationPropagates: cancelling the parent context fails the
// state (watcher-free AfterFunc) and cancels the derived context.
func TestParentCancellationPropagates(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	var s State
	s.Init(parent)
	if s.Failed() {
		t.Fatal("failed before parent cancel")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Failed() {
		if time.Now().After(deadline) {
			t.Fatal("parent cancel never propagated")
		}
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	<-s.Context().Done()
	s.Finish()
}

// TestParentDeadlinePropagates: the derived context carries the parent's
// deadline, and its expiry fails the state.
func TestParentDeadlinePropagates(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var s State
	s.Init(parent)
	if _, ok := s.Context().Deadline(); !ok {
		t.Fatal("derived context lost the parent deadline")
	}
	select {
	case <-s.Context().Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.Failed() {
		if time.Now().After(deadline) {
			t.Fatal("deadline expiry never failed the state")
		}
	}
	if err := s.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", err)
	}
	s.Finish()
}

// TestPreCancelledParent: a parent already cancelled at Init pre-fails the
// state.
func TestPreCancelledParent(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	cancel()
	var s State
	s.Init(parent)
	if !s.Failed() {
		t.Fatal("state not pre-failed by cancelled parent")
	}
	if err := s.Finish(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Finish = %v, want context.Canceled", err)
	}
}

// TestPreFailedClosed: the rejected-submission shape — Init, Fail(ErrClosed),
// Finish — yields a handle that reports ErrClosed everywhere.
func TestPreFailedClosed(t *testing.T) {
	var s State
	s.Init(nil)
	s.Fail(ErrClosed)
	s.Finish()
	if err := s.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
	if cause := context.Cause(s.Context()); !errors.Is(cause, ErrClosed) {
		t.Fatalf("Cause = %v, want ErrClosed", cause)
	}
}

// TestContextValuesFlow: values on the submission context reach the
// domain's context.
func TestContextValuesFlow(t *testing.T) {
	type key struct{}
	parent := context.WithValue(context.Background(), key{}, "v")
	var s State
	s.Init(parent)
	defer s.Finish()
	if got := s.Context().Value(key{}); got != "v" {
		t.Fatalf("Value = %v, want v", got)
	}
}

// TestCaptureStackAndUnwrap: Capture records the panic site's frames and
// unwraps error values.
func TestCaptureStackAndUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	var pe *PanicError
	func() {
		defer func() { pe = Capture(recover()) }()
		panicSite(sentinel)
	}()
	if !strings.Contains(string(pe.Stack), "panicSite") {
		t.Fatalf("stack lacks panic site:\n%s", pe.Stack)
	}
	if !errors.Is(pe, sentinel) {
		t.Fatal("PanicError does not unwrap to the panic value")
	}
	if !strings.Contains(pe.Error(), "sentinel") {
		t.Fatalf("Error() lacks the value: %s", pe.Error())
	}
}

//go:noinline
func panicSite(err error) { panic(err) }

// TestConcurrentFailRace: many goroutines race Fail and Cancel; exactly one
// error is recorded, everyone observes the same one, and Wait unblocks.
func TestConcurrentFailRace(t *testing.T) {
	var s State
	s.Init(nil)
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				s.Fail(errors.New("racer"))
			} else {
				s.Cancel()
			}
		}()
	}
	wg.Wait()
	first := s.Err()
	if first == nil {
		t.Fatal("no error recorded")
	}
	go s.Finish()
	if err := s.Wait(); err != first {
		t.Fatalf("Wait = %v, want %v", err, first)
	}
}

// TestFinishRecordsParentCancelBeforeHook: the context tree cancels the
// derived context before the AfterFunc records the failure; a domain that
// completes in that window must still report the parent's error — Finish
// closes the race by consulting the context before sealing.
func TestFinishRecordsParentCancelBeforeHook(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	var s State
	s.Init(parent)
	cancel()
	// Do not wait for s.Failed(): finish immediately, as a body that saw
	// Context().Done() and returned would make the domain do.
	<-s.Context().Done()
	if err := s.Finish(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Finish = %v, want context.Canceled", err)
	}
	if err := s.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}
