// Package jobfail is the single definition of the job failure and
// cancellation protocol every scheduler in this module runs on. The X-Kaapi
// runtime (internal/core) and the three standalone comparators (cilk,
// tbbsched, gomp) intentionally differ in their scheduling cost models —
// that is the experiment of the paper's Fig. 1 — but they share one failure
// semantics, and before this package existed each of them carried its own
// hand-rolled copy of it. Four copies of a subtle concurrent protocol is a
// divergence risk, not an experimental variable, so the whole state machine
// lives here and the engines embed it.
//
// The protocol, in full:
//
//   - Panic capture. A panicking task body is recovered by its worker into a
//     *PanicError carrying the panic value and the stack of the panic site
//     (Capture must be called inside the deferred recover so the frames are
//     still live). The worker pool always survives a body panic.
//
//   - First error wins. State.Fail records the first failure — panic,
//     cancellation, or context error — and ignores the rest, including
//     failures arriving after the job finished (the state is sealed by
//     Finish). State.Failed is the lock-free fast-path flag the execution
//     hot path polls to decide whether to skip a body.
//
//   - Cancellation fan-out. Every state owns a context.Context derived from
//     the submission context (context.Background for plain submissions).
//     The instant the job fails — sibling panic, Cancel, parent deadline or
//     disconnect — that context is cancelled with the failure as its cause,
//     so any body blocked on State.Context().Done() (deadline-aware I/O,
//     long kernels) unblocks immediately. Parent cancellation is watcher-
//     free: Init arms a context.AfterFunc, Finish disarms it.
//
//   - Pre-failed jobs. A submission racing shutdown is not a panic: Init +
//     Fail(ErrClosed) + Finish yields a handle whose Wait and Err report
//     ErrClosed and whose context is already cancelled, so services have one
//     code path.
//
//   - Drain invariant. A failed job's remaining tasks are cancelled — their
//     bodies are skipped while the completion bookkeeping still runs — and
//     the Counters type is the accounting for that contract: at quiescence
//     every task created was either executed or cancelled
//     (Spawned == Executed + Cancelled), so a failed job always drains and
//     Wait always returns.
//
// The package is engine-agnostic: it knows nothing about deques, workers or
// task trees. Engines embed a State per failure domain (a job, a region, a
// QUARK run), call Fail from their panic barriers, consult Failed on their
// skip paths, and call Finish exactly once when the domain's bookkeeping
// has drained.
package jobfail
