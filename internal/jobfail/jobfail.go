package jobfail

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrClosed is the failure of a job rejected because its scheduler was
// already closing: submission after Close yields a pre-failed handle
// reporting ErrClosed instead of panicking.
var ErrClosed = errors.New("xkaapi: runtime closed")

// ErrCanceled is the failure of a job abandoned with Cancel. Jobs cancelled
// through a context fail with the context's own error instead.
var ErrCanceled = errors.New("xkaapi: job canceled")

// PanicError is the error a job fails with when one of its task bodies —
// fork-join child, dataflow task, loop chunk, adaptive splitter, SPMD
// region thread — panics. The owning job records the first panic (with the
// stack captured at the panic site), cancels the job's remaining tasks, and
// the worker pool survives: the panic never propagates past the runtime.
type PanicError struct {
	// Value is the value the task body panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery, which includes the
	// frames of the panic site.
	Stack []byte
}

// Capture wraps a recovered value into a *PanicError; it must be called
// from the deferred function that recovered it so the stack still holds the
// panic frames.
func Capture(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Error formats the panic value followed by the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task panicked: %v\n\n%s", e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through a panic(err).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// State is the failure state machine of one failure domain — a job, a
// parallel region, a QUARK run. The zero value is not ready: call Init
// first, Finish exactly once when the domain's bookkeeping has drained.
// All other methods may be called concurrently from any goroutine.
//
// The completion channel and the derived context are allocated lazily: a
// domain that succeeds without anyone selecting on DoneChan or asking for
// Context — the common case for a fire-and-forget submission on a healthy
// pool — costs zero allocations beyond its own struct. This is part of the
// scheduler's sub-40ns spawn/submit budget (see core/doc.go, "The spawn
// fast path"); the laziness is invisible in the API.
type State struct {
	failed   atomic.Bool // fast-path flag mirroring err != nil
	finished atomic.Bool // Finish ran (lock-free Done)
	mu       sync.Mutex
	err      error // first failure; immutable once set
	sealed   bool  // Finish ran: late Fail calls are ignored

	// done is closed by Finish; it is created on demand by the first Wait
	// or DoneChan (under mu), so a domain nobody blocks on never allocates
	// it. Finish reads it under mu: a waiter either installs the channel
	// before Finish seals (and Finish closes it), or observes sealed and
	// gets the shared closed channel.
	done chan struct{}

	// parent is the submission context (Background if none was given),
	// retained so the derived context can be materialized on demand and so
	// Finish can check for the parent-cancellation race directly.
	parent context.Context

	// ctx is the domain's derived context: cancelled with the failure as
	// cause the instant the domain fails, and cancelled unconditionally at
	// Finish so the context machinery never leaks. It is materialized by
	// the first Context call (the two context.WithCancelCause allocations
	// are then paid only by domains whose bodies actually use it); Fail and
	// Finish cancel it only if it exists. Task bodies obtain it through the
	// engine (Proc.Context() and friends) for deadline-aware work.
	ctx atomic.Pointer[stateCtx]

	// ctxStop deregisters the context.AfterFunc Init armed to propagate
	// parent cancellation into Fail. Finish calls it once, so a completed
	// domain costs the context package one removal instead of leaving a
	// callback behind.
	ctxStop func() bool
}

// stateCtx pairs the lazily materialized derived context with its cancel
// function, published atomically so Failed-path readers need no lock.
type stateCtx struct {
	ctx    context.Context
	cancel context.CancelCauseFunc
}

// closedChan is the shared pre-closed completion channel handed out when
// the domain finished before anyone asked for DoneChan.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Init readies the state, binding it to parent (context.Background if
// parent is nil). If parent is cancellable, its cancellation is propagated
// into Fail watcher-free via context.AfterFunc — no goroutine per job —
// armed here, before the domain can possibly finish, and disarmed by
// Finish. A parent already cancelled at Init fails the state immediately.
// The completion channel and derived context are not allocated here; see
// the State doc comment.
func (s *State) Init(parent context.Context) {
	if parent == nil {
		parent = context.Background()
	}
	s.parent = parent
	if parent.Done() != nil {
		if err := parent.Err(); err != nil {
			s.Fail(err)
		} else {
			s.ctxStop = context.AfterFunc(parent, func() { s.Fail(parent.Err()) })
		}
	}
}

// Fail records err as the domain's failure if it is the first one and the
// domain has not finished, and cancels the domain's context with err as its
// cause. Later failures, nil errors and failures after Finish are ignored.
// It reports whether err was recorded.
func (s *State) Fail(err error) bool {
	if err == nil {
		return false
	}
	s.mu.Lock()
	if s.err != nil || s.sealed {
		s.mu.Unlock()
		return false
	}
	s.err = err
	s.failed.Store(true)
	sc := s.ctx.Load()
	s.mu.Unlock()
	// Fan out after dropping the lock: cancel runs AfterFunc callbacks
	// registered on the derived context inline, and those may call back
	// into Err. A context materialized concurrently is cancelled by the
	// materializer itself: it re-reads err under the same mu after
	// publishing the pointer, so exactly one side delivers the cause.
	if sc != nil {
		sc.cancel(err)
	}
	return true
}

// Failed reports (cheaply, lock-free) whether the domain has failed. This
// is the hot-path check engines use to decide whether to skip a task body.
func (s *State) Failed() bool { return s.failed.Load() }

// Err returns the domain's failure without waiting: nil while it is
// healthy, otherwise the first recorded error.
func (s *State) Err() error {
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	return err
}

// Cancel abandons the domain: it fails with ErrCanceled. Cancel after
// completion, or after another failure, is a no-op.
func (s *State) Cancel() { s.Fail(ErrCanceled) }

// Context returns the domain's context: cancelled (with the failure as
// cause) the instant the domain fails or is cancelled, and carrying the
// submission context's deadline and values. Task bodies block on
// Context().Done() instead of polling the failed flag. The first call
// materializes the context; later calls are a single atomic load.
func (s *State) Context() context.Context {
	if sc := s.ctx.Load(); sc != nil {
		return sc.ctx
	}
	return s.materializeCtx()
}

// materializeCtx builds and publishes the derived context. mu serializes
// materialization against Fail and Finish: the builder re-reads the failure
// state under the same lock that records it, so a context created after the
// domain failed (or finished) is cancelled here, with the recorded error as
// cause, before anyone can select on it — the caller cannot distinguish a
// lazy context from an eagerly allocated one.
func (s *State) materializeCtx() context.Context {
	s.mu.Lock()
	if sc := s.ctx.Load(); sc != nil {
		s.mu.Unlock()
		return sc.ctx
	}
	ctx, cancel := context.WithCancelCause(s.parent)
	s.ctx.Store(&stateCtx{ctx: ctx, cancel: cancel})
	err, over := s.err, s.sealed
	s.mu.Unlock()
	if err != nil || over {
		cancel(err) // a nil err (clean finish) leaves context.Canceled as cause
	}
	return ctx
}

// Wait blocks until Finish has run, then returns the final error.
func (s *State) Wait() error {
	if !s.finished.Load() {
		<-s.DoneChan()
	}
	return s.Err()
}

// Done reports (without blocking, lock-free) whether Finish has run.
func (s *State) Done() bool { return s.finished.Load() }

// DoneChan exposes the completion channel for select-based waits. The
// channel is created by the first call; a domain that already finished gets
// a shared pre-closed channel, so the returned channel is always closed by
// (or visibly after) Finish.
func (s *State) DoneChan() <-chan struct{} {
	if s.finished.Load() {
		return closedChan
	}
	s.mu.Lock()
	if s.sealed {
		// Finish already passed its critical section; it closes only the
		// channel it read there, so a channel created now would never close.
		s.mu.Unlock()
		return closedChan
	}
	if s.done == nil {
		s.done = make(chan struct{})
	}
	d := s.done
	s.mu.Unlock()
	return d
}

// Finish seals the state — late Fail calls become no-ops — disarms the
// parent-cancellation hook, cancels the domain's context if it was ever
// materialized (releasing its timers and parent registration; the cause is
// the failure, if any), closes the done channel if anyone is waiting on it
// and returns the final error. It must be called exactly once, by whichever
// worker completes the domain's bookkeeping.
func (s *State) Finish() error {
	s.mu.Lock()
	if s.err == nil {
		// Close the parent-cancellation race: the context tree propagates a
		// parent cancel/deadline into the derived context before our
		// AfterFunc runs, so a body parked on Context().Done() can unblock,
		// return, and complete the domain while the hook that would record
		// the failure is still in flight. Checking the parent directly (the
		// derived context may not even exist) is equivalent: the derived
		// context is only ever cancelled with s.err already set, so a
		// cancellation the bodies observed without s.err being set can only
		// have come from the parent chain. Record its error now, before
		// sealing, and the domain deterministically reports the
		// cancellation its bodies observed.
		if err := s.parent.Err(); err != nil {
			s.err = err
			s.failed.Store(true)
		}
	}
	s.sealed = true
	err := s.err
	sc := s.ctx.Load()
	done := s.done
	s.mu.Unlock()
	if s.ctxStop != nil {
		// Deregister the parent hook; sealed is already set, so a callback
		// that fired in the window is a no-op.
		s.ctxStop()
		s.ctxStop = nil
	}
	if sc != nil {
		sc.cancel(err)
	}
	s.finished.Store(true)
	if done != nil {
		close(done)
	}
	return err
}

// Counters is the per-domain task outcome accounting behind the drain
// invariant: every task a failure domain created is, by quiescence, either
// executed or cancelled (and a cancelled one never ran its body), so
// Spawned == Executed + Cancelled and the domain always drains. Engines
// bump these at execution time; any goroutine may snapshot them live.
type Counters struct {
	Executed  atomic.Int64 // task bodies that ran
	Cancelled atomic.Int64 // tasks skipped after the domain failed
	Panicked  atomic.Int64 // task bodies that panicked
}

// AddExecuted folds a batch of executed-task increments into the counter.
// It is the flush half of the engines' per-(worker, domain) counter caches:
// instead of one LOCK-prefixed RMW per task body, a worker accumulates its
// increments for the domain it is currently executing in a private cache
// and publishes them here on domain switch, park, idle and completion. Live
// Snapshot readers consequently see Executed advance in batches — always a
// monotone lower bound, exact once the domain's engine is quiescent.
func (c *Counters) AddExecuted(n int64) {
	if n != 0 {
		c.Executed.Add(n)
	}
}

// Snapshot reads the counters. Safe at any time; the values are exact only
// once the domain is done (and its engine has flushed per-worker caches —
// see AddExecuted), and each value is a monotone lower bound until then.
func (c *Counters) Snapshot() (executed, cancelled, panicked int64) {
	return c.Executed.Load(), c.Cancelled.Load(), c.Panicked.Load()
}
