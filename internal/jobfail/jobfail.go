package jobfail

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrClosed is the failure of a job rejected because its scheduler was
// already closing: submission after Close yields a pre-failed handle
// reporting ErrClosed instead of panicking.
var ErrClosed = errors.New("xkaapi: runtime closed")

// ErrCanceled is the failure of a job abandoned with Cancel. Jobs cancelled
// through a context fail with the context's own error instead.
var ErrCanceled = errors.New("xkaapi: job canceled")

// PanicError is the error a job fails with when one of its task bodies —
// fork-join child, dataflow task, loop chunk, adaptive splitter, SPMD
// region thread — panics. The owning job records the first panic (with the
// stack captured at the panic site), cancels the job's remaining tasks, and
// the worker pool survives: the panic never propagates past the runtime.
type PanicError struct {
	// Value is the value the task body panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery, which includes the
	// frames of the panic site.
	Stack []byte
}

// Capture wraps a recovered value into a *PanicError; it must be called
// from the deferred function that recovered it so the stack still holds the
// panic frames.
func Capture(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Error formats the panic value followed by the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task panicked: %v\n\n%s", e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through a panic(err).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// State is the failure state machine of one failure domain — a job, a
// parallel region, a QUARK run. The zero value is not ready: call Init
// first, Finish exactly once when the domain's bookkeeping has drained.
// All other methods may be called concurrently from any goroutine.
type State struct {
	failed atomic.Bool // fast-path flag mirroring err != nil
	mu     sync.Mutex
	err    error // first failure; immutable once set
	sealed bool  // Finish ran: late Fail calls are ignored

	done chan struct{} // closed by Finish

	// ctx is the domain's context: derived from the submission context (or
	// Background), cancelled with the failure as cause the instant the
	// domain fails, and cancelled unconditionally at Finish so the context
	// machinery never leaks. Task bodies obtain it through the engine
	// (Proc.Context() and friends) for deadline-aware work.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// ctxStop deregisters the context.AfterFunc Init armed to propagate
	// parent cancellation into Fail. Finish calls it once, so a completed
	// domain costs the context package one removal instead of leaving a
	// callback behind.
	ctxStop func() bool
}

// Init readies the state: a fresh done channel and a cancellable context
// derived from parent (context.Background if parent is nil). If parent is
// cancellable, its cancellation is propagated into Fail watcher-free via
// context.AfterFunc — no goroutine per job — armed here, before the domain
// can possibly finish, and disarmed by Finish. A parent already cancelled
// at Init fails the state immediately.
func (s *State) Init(parent context.Context) {
	if parent == nil {
		parent = context.Background()
	}
	s.done = make(chan struct{})
	s.ctx, s.cancel = context.WithCancelCause(parent)
	if parent.Done() != nil {
		if err := parent.Err(); err != nil {
			s.Fail(err)
		} else {
			s.ctxStop = context.AfterFunc(parent, func() { s.Fail(parent.Err()) })
		}
	}
}

// Fail records err as the domain's failure if it is the first one and the
// domain has not finished, and cancels the domain's context with err as its
// cause. Later failures, nil errors and failures after Finish are ignored.
// It reports whether err was recorded.
func (s *State) Fail(err error) bool {
	if err == nil {
		return false
	}
	s.mu.Lock()
	if s.err != nil || s.sealed {
		s.mu.Unlock()
		return false
	}
	s.err = err
	s.failed.Store(true)
	s.mu.Unlock()
	// Fan out after dropping the lock: cancel runs AfterFunc callbacks
	// registered on s.ctx inline, and those may call back into Err.
	s.cancel(err)
	return true
}

// Failed reports (cheaply, lock-free) whether the domain has failed. This
// is the hot-path check engines use to decide whether to skip a task body.
func (s *State) Failed() bool { return s.failed.Load() }

// Err returns the domain's failure without waiting: nil while it is
// healthy, otherwise the first recorded error.
func (s *State) Err() error {
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	return err
}

// Cancel abandons the domain: it fails with ErrCanceled. Cancel after
// completion, or after another failure, is a no-op.
func (s *State) Cancel() { s.Fail(ErrCanceled) }

// Context returns the domain's context: cancelled (with the failure as
// cause) the instant the domain fails or is cancelled, and carrying the
// submission context's deadline and values. Task bodies block on
// Context().Done() instead of polling the failed flag.
func (s *State) Context() context.Context { return s.ctx }

// Wait blocks until Finish has run, then returns the final error.
func (s *State) Wait() error {
	<-s.done
	return s.Err()
}

// Done reports (without blocking) whether Finish has run.
func (s *State) Done() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// DoneChan exposes the completion channel for select-based waits.
func (s *State) DoneChan() <-chan struct{} { return s.done }

// Finish seals the state — late Fail calls become no-ops — disarms the
// parent-cancellation hook, cancels the domain's context (releasing its
// timers and parent registration; the cause is the failure, if any),
// closes the done channel and returns the final error. It must be called
// exactly once, by whichever worker completes the domain's bookkeeping.
func (s *State) Finish() error {
	s.mu.Lock()
	if s.err == nil {
		// Close the parent-cancellation race: the context tree propagates a
		// parent cancel/deadline into s.ctx before our AfterFunc runs, so a
		// body parked on Context().Done() can unblock, return, and complete
		// the domain while the hook that would record the failure is still
		// in flight. s.cancel only ever runs with s.err already set, so
		// s.ctx being cancelled here can only mean the parent chain fired:
		// record its error now, before sealing, and the domain
		// deterministically reports the cancellation its bodies observed.
		if err := s.ctx.Err(); err != nil {
			s.err = err
			s.failed.Store(true)
		}
	}
	s.sealed = true
	err := s.err
	s.mu.Unlock()
	if s.ctxStop != nil {
		// Deregister the parent hook; sealed is already set, so a callback
		// that fired in the window is a no-op.
		s.ctxStop()
		s.ctxStop = nil
	}
	s.cancel(err)
	close(s.done)
	return err
}

// Counters is the per-domain task outcome accounting behind the drain
// invariant: every task a failure domain created is, by quiescence, either
// executed or cancelled (and a cancelled one never ran its body), so
// Spawned == Executed + Cancelled and the domain always drains. Engines
// bump these at execution time; any goroutine may snapshot them live.
type Counters struct {
	Executed  atomic.Int64 // task bodies that ran
	Cancelled atomic.Int64 // tasks skipped after the domain failed
	Panicked  atomic.Int64 // task bodies that panicked
}

// Snapshot reads the counters. Safe at any time; the values are exact only
// once the domain is done.
func (c *Counters) Snapshot() (executed, cancelled, panicked int64) {
	return c.Executed.Load(), c.Cancelled.Load(), c.Panicked.Load()
}
