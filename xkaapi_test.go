package xkaapi_test

import (
	"sync/atomic"
	"testing"

	"xkaapi"
)

func newRT(t *testing.T, opts ...xkaapi.Option) *xkaapi.Runtime {
	t.Helper()
	rt := xkaapi.New(opts...)
	t.Cleanup(rt.Close)
	return rt
}

func TestRunExecutesRoot(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(2))
	ran := false
	rt.Run(func(p *xkaapi.Proc) { ran = true })
	if !ran {
		t.Fatal("root did not run")
	}
}

func TestWorkersOption(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(3))
	if got := rt.Workers(); got != 3 {
		t.Fatalf("Workers()=%d want 3", got)
	}
}

func TestDefaultWorkers(t *testing.T) {
	rt := newRT(t)
	if rt.Workers() < 1 {
		t.Fatalf("Workers()=%d", rt.Workers())
	}
}

func fib(p *xkaapi.Proc, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	p.Spawn(func(p *xkaapi.Proc) { fib(p, &r1, n-1) })
	fib(p, &r2, n-2)
	p.Sync()
	*r = r1 + r2
}

func TestFibPaperProgram(t *testing.T) {
	// The exact program of the paper's Fig. 1: one spawned task per node,
	// one inline recursive call, one sync.
	rt := newRT(t, xkaapi.WithWorkers(4))
	var r int64
	rt.Run(func(p *xkaapi.Proc) { fib(p, &r, 22) })
	if r != 17711 {
		t.Fatalf("fib(22)=%d want 17711", r)
	}
}

func TestProcIDWithinRange(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(4))
	var bad atomic.Int32
	rt.Run(func(p *xkaapi.Proc) {
		for i := 0; i < 200; i++ {
			p.Spawn(func(p *xkaapi.Proc) {
				if p.ID() < 0 || p.ID() >= p.NumWorkers() {
					bad.Add(1)
				}
			})
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker IDs out of range")
	}
}

func TestDataflowAccessBuilders(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(4))
	var h xkaapi.Handle
	v := 0
	rt.Run(func(p *xkaapi.Proc) {
		p.SpawnTask(func(*xkaapi.Proc) { v = 3 }, xkaapi.Write(&h))
		p.SpawnTask(func(*xkaapi.Proc) { v *= 7 }, xkaapi.ReadWrite(&h))
		got := 0
		p.SpawnTask(func(*xkaapi.Proc) { got = v }, xkaapi.Read(&h))
		p.Sync()
		if got != 21 {
			t.Errorf("dataflow result %d want 21", got)
		}
	})
}

func TestCumulWriteBuilder(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(4))
	var h xkaapi.Handle
	var acc atomic.Int64
	var got int64
	rt.Run(func(p *xkaapi.Proc) {
		for i := 0; i < 64; i++ {
			p.SpawnTask(func(*xkaapi.Proc) { acc.Add(1) }, xkaapi.CumulWrite(&h))
		}
		p.SpawnTask(func(*xkaapi.Proc) { got = acc.Load() }, xkaapi.Read(&h))
		p.Sync()
	})
	if got != 64 {
		t.Fatalf("got %d want 64", got)
	}
}

func TestRuntimeForeach(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(4))
	const n = 50000
	hits := make([]int32, n)
	rt.Foreach(0, n, func(_ *xkaapi.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestForeachGrain(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(2))
	var maxChunk atomic.Int64
	rt.Run(func(p *xkaapi.Proc) {
		xkaapi.ForeachGrain(p, 0, 10000, 16, func(_ *xkaapi.Proc, lo, hi int) {
			if sz := int64(hi - lo); sz > maxChunk.Load() {
				maxChunk.Store(sz)
			}
		})
	})
	if maxChunk.Load() > 16 {
		t.Fatalf("chunk %d exceeds grain 16", maxChunk.Load())
	}
}

func TestStatsAndReset(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(2), xkaapi.WithSeed(7))
	var r int64
	rt.Run(func(p *xkaapi.Proc) { fib(p, &r, 15) })
	if s := rt.Stats(); s.Spawned == 0 {
		t.Fatalf("no spawns recorded: %+v", s)
	}
	rt.ResetStats()
	if s := rt.Stats(); s.Spawned != 0 {
		t.Fatalf("reset did not clear spawns: %+v", s)
	}
}

func TestWithoutAggregationAndPinning(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(4), xkaapi.WithoutAggregation(), xkaapi.WithoutPinning())
	var r int64
	rt.Run(func(p *xkaapi.Proc) { fib(p, &r, 18) })
	if r != 2584 {
		t.Fatalf("fib(18)=%d want 2584", r)
	}
}

func TestNestedRunsSequentially(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(2))
	total := 0
	for i := 0; i < 5; i++ {
		rt.Run(func(p *xkaapi.Proc) { total++ })
	}
	if total != 5 {
		t.Fatalf("total=%d want 5", total)
	}
}
