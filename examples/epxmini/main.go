// A miniature fast-transient-dynamics simulation in the style of the
// paper's EUROPLEXUS case study (§IV), mixing the two paradigms the paper
// combines in EPX: adaptive parallel loops for the element force computation
// and contact-candidate sorting, and dataflow tasks for the sparse skyline
// Cholesky of the condensed constraint system.
//
//	go run ./examples/epxmini [-steps 5] [-scale 1]
//
// Prints the per-phase time decomposition (the quantity the paper stacks in
// Fig. 8) for the sequential baseline and the X-Kaapi backend, and verifies
// both executions agree bitwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"xkaapi/internal/epx"
)

func main() {
	steps := flag.Int("steps", 5, "time steps")
	scale := flag.Int("scale", 1, "instance scale")
	flag.Parse()

	inst := epx.MEPPEN(*scale)
	inst.Steps = *steps

	run := func(b epx.Backend) (*epx.Sim, epx.PhaseTimes) {
		s, err := epx.NewSim(inst)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pt, err := s.Run(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b.Close()
		return s, pt
	}

	seqSim, seqPt := run(epx.NewSeqBackend())
	parSim, parPt := run(epx.NewKaapiBackend(0))

	fmt.Printf("%s, %d steps, %d elements, %d nodes, H order %d\n\n",
		inst.Name, inst.Steps,
		seqSim.St.M.NumElems(), seqSim.St.M.NumNodes(), inst.HN)
	fmt.Printf("sequential: %v\n", seqPt)
	fmt.Printf("x-kaapi:    %v\n", parPt)
	fmt.Printf("speedup:    %.2fx\n\n", seqPt.Total().Seconds()/parPt.Total().Seconds())

	if seqSim.ForceNorm != parSim.ForceNorm || seqSim.CandSum != parSim.CandSum ||
		seqSim.SolNorm != parSim.SolNorm {
		fmt.Fprintln(os.Stderr, "MISMATCH between sequential and parallel runs")
		os.Exit(1)
	}
	fmt.Printf("parallel run bitwise identical to sequential (force norm %.6g)\n",
		seqSim.ForceNorm)
}
