// Quickstart for the xkaapi runtime: the three paradigms in ~150 lines.
//
//	go run ./examples/quickstart
//
// It shows (1) fork-join tasks with Spawn/Sync, (2) dataflow tasks whose
// execution order is derived from declared accesses, (3) an adaptive
// parallel loop with a reduction, (4) concurrent job submission: many
// goroutines sharing one worker pool through Submit/Wait, (5) error
// handling: jobs that panic or are cancelled fail individually — the
// runtime survives and reports the failure from Run / Job.Wait —
// (6) serving jobs over HTTP: the same pool behind package server's
// request-per-job front-end with deadlines, queued admission (bursts wait
// in a bounded FIFO under their own deadline instead of bouncing 429) and
// request coalescing (concurrent small /fib and /loop requests fold into
// one batched job), and
// (7) deadline-aware bodies: every task sees its job's context through
// Proc.Context — one failure state machine cancels it on panic, Cancel,
// deadline or disconnect, in every paradigm layer of this module — and
// (8) scaling out with shards: WithShards splits the pool into scheduler
// shards behind a load-aware router, SubmitAffinity pins related jobs to
// one shard, idle shards steal queued roots from loaded siblings, and
// ShardStats shows placement and migration per shard, and
// (9) fault injection: WithChaos arms a deterministic, seeded chaos
// harness in the scheduler itself, so panics, stalls and wedged shards
// are reproducible test inputs instead of production surprises.
//
// The context rules shown here are machine-checked: `make lint` runs the
// module's own analyzers (internal/analysis, via cmd/xkvet), which reject
// task bodies that call context.Background or shadow the job's context.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"xkaapi"
	"xkaapi/server"
)

// fib spawns one task per node, exactly like Fig. 1 of the X-Kaapi paper.
func fib(p *xkaapi.Proc, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var a, b int64
	p.Spawn(func(p *xkaapi.Proc) { fib(p, &a, n-1) })
	fib(p, &b, n-2)
	p.Sync()
	*r = a + b
}

func main() {
	rt := xkaapi.New() // one worker per core
	defer rt.Close()

	// 1. Fork-join tasks. Spawning is cheap by design — a steady-state
	// spawn/execute cycle allocates nothing (task descriptors recycle
	// through per-worker slabs) and costs tens of nanoseconds, so even
	// fib's two-instruction bodies parallelize; the budgets are enforced
	// per PR (`make bench-gate`, bench_gates.json) and the mechanisms are
	// documented under "The spawn fast path" in internal/core.
	var f int64
	rt.Run(func(p *xkaapi.Proc) { fib(p, &f, 30) })
	fmt.Println("fib(30) =", f)

	// 2. Dataflow tasks: the runtime sequences produce → transform →
	// consume through the declared accesses, even though all three tasks
	// are spawned immediately.
	var h xkaapi.Handle
	data := make([]float64, 1<<20)
	var sum float64
	rt.Run(func(p *xkaapi.Proc) {
		p.SpawnTask(func(*xkaapi.Proc) {
			for i := range data {
				data[i] = float64(i % 7)
			}
		}, xkaapi.Write(&h))
		p.SpawnTask(func(*xkaapi.Proc) {
			for i := range data {
				data[i] *= 2
			}
		}, xkaapi.ReadWrite(&h))
		p.SpawnTask(func(*xkaapi.Proc) {
			for _, v := range data {
				sum += v
			}
		}, xkaapi.Read(&h))
		p.Sync()
	})
	fmt.Println("dataflow sum =", sum)

	// 3. Adaptive parallel loop with a reduction: iterations are divided
	// on demand as workers go idle (kaapic_foreach).
	var pi float64
	rt.Run(func(p *xkaapi.Proc) {
		const n = 10_000_000
		pi = xkaapi.ForeachReduce(p, 0, n, xkaapi.LoopOpts{},
			func() float64 { return 0 },
			func(_ *xkaapi.Proc, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					x := (float64(i) + 0.5) / n
					acc += 4 / (1 + x*x)
				}
				return acc
			},
			func(a, b float64) float64 { return a + b },
		) / n
	})
	fmt.Println("pi ≈", pi)

	// 4. Concurrent submission: independent clients fire jobs at the same
	// runtime from their own goroutines — no runtime per client, no
	// serialization of parallel regions. Each Submit returns a Job handle;
	// Run is Submit plus Wait.
	var wg sync.WaitGroup
	results := make([]int64, 4)
	for c := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Submit(func(p *xkaapi.Proc) { fib(p, &results[c], 20+c) }).Wait()
		}()
	}
	wg.Wait()
	fmt.Println("concurrent fib(20..23) =", results)

	// 5. Error handling. A panic anywhere in a job's task tree does not
	// kill the process: the job fails with a *PanicError carrying the
	// panic value and stack, its remaining tasks are cancelled, and the
	// error comes back from Run (or Job.Wait). Other jobs are unaffected.
	err := rt.Run(func(p *xkaapi.Proc) {
		p.Spawn(func(*xkaapi.Proc) { panic("kernel exploded") })
		p.Spawn(func(*xkaapi.Proc) { /* cancelled once the sibling fails */ })
		p.Sync()
	})
	var pe *xkaapi.PanicError
	if errors.As(err, &pe) {
		fmt.Println("job failed with panic:", pe.Value)
	}

	// Jobs can also be abandoned. SubmitCtx ties a job to a context:
	// cancelling it stops the runtime from starting the job's remaining
	// tasks, and Wait reports the context's error. (Job.Cancel does the
	// same without a context; bodies already running finish — poll
	// Proc.JobFailed in long loops to stop early.)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // give up immediately, for the demo
	err = rt.SubmitCtx(ctx, func(p *xkaapi.Proc) {
		xkaapi.Foreach(p, 0, 1<<30, func(*xkaapi.Proc, int, int) {})
	}).Wait()
	fmt.Println("cancelled job:", errors.Is(err, context.Canceled))

	// The runtime is still healthy after both failures.
	var again int64
	if err := rt.Run(func(p *xkaapi.Proc) { fib(p, &again, 20) }); err != nil {
		panic(err)
	}
	fmt.Println("still serving: fib(20) =", again)

	// 6. Serving jobs over HTTP. Package server wraps the same runtime in
	// a network front-end: requests become SubmitCtx jobs bound to the
	// request context (deadlines and client disconnects cancel the job).
	// Admission is a pipeline: a bounded budget of in-flight jobs fronted
	// by a FIFO queue where over-budget requests wait under their own
	// deadline — 429 only when the queue itself is full — and concurrent
	// small /fib and /loop requests coalesce into one batched job (one
	// submit, one fan-out, per-request sub-results). /stats publishes
	// p50/p90/p99 end-to-end and queue-wait latency per endpoint, and
	// per-job stats come back in every response. `xkserve serve` runs this
	// at the command line; here we mount it in-process.
	front := server.New(server.Config{Runtime: rt, Budget: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: front}
	go httpSrv.Serve(ln)
	resp, err := http.Get("http://" + ln.Addr().String() + "/fib?n=20&timeout=2s")
	if err != nil {
		panic(err)
	}
	var rep struct {
		Result int64           `json:"result"`
		OK     bool            `json:"ok"`
		Job    xkaapi.JobStats `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	fmt.Printf("GET /fib?n=20 -> result=%d ok=%v (job executed %d tasks)\n",
		rep.Result, rep.OK, rep.Job.Executed)
	httpSrv.Shutdown(context.Background())
	front.Close() // stop the batch collectors once no handler can submit

	// 7. Deadline-aware bodies. Every task body can see its job's context
	// through Proc.Context: it carries the SubmitCtx deadline and values,
	// and is cancelled — with the failure as cause — the instant the job
	// fails for any reason (a sibling's panic, Job.Cancel, the deadline, a
	// client disconnect). Long kernels select on it, or hand it straight to
	// context-aware I/O, instead of only being skipped at the next task
	// boundary. One shared failure state machine (internal/jobfail) backs
	// this in every scheduler of this module — the same signal exists in
	// cilk (Worker.Context), tbbsched (Context.Ctx), gomp/komp
	// (TC.Context) and quark (InsertTaskCtx).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	blocks := 0
	err = rt.RunCtx(ctx2, func(p *xkaapi.Proc) {
		jctx := p.Context() // cancelled at the 50ms deadline
		for {
			select {
			case <-jctx.Done():
				return // stop early: the response window is gone
			case <-time.After(10 * time.Millisecond):
				blocks++ // one "block" of real work
			}
		}
	})
	fmt.Printf("deadline-aware job: processed %d blocks, err=%v\n",
		blocks, errors.Is(err, context.DeadlineExceeded))

	// 8. Scaling out with shards. One Runtime is one contention domain:
	// every submit crosses one inbox. WithShards(4) builds four scheduler
	// shards behind a load-aware router instead — same Submit/Run/Wait
	// API, but each job lands on the least-loaded shard, SubmitAffinity
	// pins jobs sharing a key to one shard (cache locality for related
	// work), and a shard that backlogs sheds queued root jobs to idle
	// siblings through cross-shard stealing. ShardStats breaks the
	// counters down per shard; note that migrated jobs are counted where
	// they ran, so spawned == executed + cancelled balances on the
	// fleet-wide Stats, not per shard.
	fleet := xkaapi.New(xkaapi.WithShards(4), xkaapi.WithWorkers(4))
	defer fleet.Close()
	var jobs []*xkaapi.Job
	for client := 0; client < 8; client++ {
		key := uint64(client % 4) // one shard per "client"
		var r int64
		jobs = append(jobs, fleet.SubmitAffinity(context.Background(), key,
			func(p *xkaapi.Proc) { fib(p, &r, 18) }))
	}
	for _, j := range jobs {
		j.Wait()
	}
	fmt.Println(fleet) // xkaapi.Fleet{shards: 4, workers: 4, steal: true}
	for _, ss := range fleet.ShardStats() {
		fmt.Printf("  shard %d: executed=%d stolen_in=%d stolen_out=%d\n",
			ss.Shard, ss.Sched.Executed, ss.StolenIn, ss.StolenOut)
	}

	// 9. Fault injection (chaos). NewChaosInjector arms seeded injection
	// sites inside the scheduler — task panics, steal misses, worker
	// stalls, whole-shard wedges — behind a nil-check fast path: a runtime
	// built without an injector pays one predictable branch per site. The
	// set of injected faults is a pure function of (scenario, seed), so a
	// failing run replays from its seed. A job hit by an injected panic
	// fails alone with a PanicError, exactly like the real panic of
	// section 5; the pool survives, and Counts reports what actually
	// fired. `xkserve serve -chaos stall+panic:7 -panic-retries 8` drives
	// the same harness through the HTTP front-end, which then resubmits
	// panicked jobs server-side and reports degradation on /healthz.
	inj := xkaapi.NewChaosInjector(xkaapi.ChaosScenario{Seed: 7, TaskPanic: 0.002})
	crt := xkaapi.New(xkaapi.WithWorkers(4), xkaapi.WithChaos(inj))
	survived, injected := 0, 0
	for attempt := 0; attempt < 50; attempt++ {
		var r int64
		err := crt.Run(func(p *xkaapi.Proc) { fib(p, &r, 10) })
		var pe *xkaapi.PanicError
		switch {
		case err == nil:
			survived++
		case errors.As(err, &pe):
			injected++ // pe names the injected site and sequence number
		default:
			panic(err)
		}
	}
	crt.Close()
	fmt.Printf("chaos: %d/50 jobs ok, %d hit an injected panic (%s)\n",
		survived, injected, inj.Counts())
}
