// Wavefront (dynamic-programming) computation over dataflow tasks: the
// classic pattern where cell (i,j) depends on (i-1,j) and (i,j-1), so ready
// work sweeps diagonally across the grid. Flat task models need manual
// barrier waves; with access modes the runtime discovers the diagonal
// parallelism by itself — the paper's argument for dataflow over fork-join
// (§I, citing Kurzak et al.).
//
//	go run ./examples/wavefront [-n 48] [-block 256]
//
// Each block task smooths a tile of a Smith-Waterman-style score table.
// The result is checked against a sequential execution.
package main

import (
	"flag"
	"fmt"
	"os"

	"xkaapi"
)

func main() {
	n := flag.Int("n", 48, "blocks per side")
	block := flag.Int("block", 256, "cells per block side")
	flag.Parse()
	nb, bs := *n, *block
	size := nb * bs

	grid := make([]float64, size*size)
	init := func() {
		for i := 0; i < size; i++ {
			grid[i] = float64(i % 97)
			grid[i*size] = float64(i % 89)
		}
	}

	process := func(bi, bj int) {
		lo, lj := bi*bs, bj*bs
		for i := max(lo, 1); i < lo+bs; i++ {
			row := grid[i*size:]
			prev := grid[(i-1)*size:]
			for j := max(lj, 1); j < lj+bs; j++ {
				v := 0.5*row[j-1] + 0.3*prev[j] + 0.2*prev[j-1]
				if v > 1000 {
					v -= 1000
				}
				row[j] = v
			}
		}
	}

	// Sequential reference.
	init()
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			process(bi, bj)
		}
	}
	want := checksum(grid)

	// Dataflow version: handle per block, RW on self, R on west and north.
	init()
	rt := xkaapi.New()
	defer rt.Close()
	handles := make([]xkaapi.Handle, nb*nb)
	err := rt.Run(func(p *xkaapi.Proc) {
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				bi, bj := bi, bj
				accs := []xkaapi.Access{xkaapi.ReadWrite(&handles[bi*nb+bj])}
				if bi > 0 {
					accs = append(accs, xkaapi.Read(&handles[(bi-1)*nb+bj]))
				}
				if bj > 0 {
					accs = append(accs, xkaapi.Read(&handles[bi*nb+bj-1]))
				}
				p.SpawnTask(func(*xkaapi.Proc) { process(bi, bj) }, accs...)
			}
		}
		p.Sync()
	})
	if err != nil {
		panic(err)
	}

	got := checksum(grid)
	fmt.Printf("wavefront %dx%d blocks of %dx%d on %d workers\n", nb, nb, bs, bs, rt.Workers())
	if got != want {
		fmt.Fprintf(os.Stderr, "MISMATCH: parallel %g, sequential %g\n", got, want)
		os.Exit(1)
	}
	fmt.Printf("checksum %g matches the sequential execution\n", got)
	s := rt.Stats()
	fmt.Printf("tasks: %d spawned, %d released by dataflow, %d steal requests (%d combiner passes)\n",
		s.Spawned, s.ReadyReleases, s.StealRequests, s.Combines)
}

func checksum(g []float64) float64 {
	var t float64
	for i, v := range g {
		if i%31 == 0 {
			t += v
		}
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
