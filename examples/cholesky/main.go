// Tiled dense Cholesky factorization written directly against the public
// dataflow API — the same task graph PLASMA's dpotrf_Tile declares through
// QUARK (Fig. 2 of the paper), in ~100 lines.
//
//	go run ./examples/cholesky [-n 1024] [-nb 128]
//
// Each tile gets a Handle; potrf/trsm/syrk/gemm tasks declare Read/ReadWrite
// accesses and the runtime schedules them as their inputs become available.
// The program verifies the factor against a sequential reference.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"xkaapi"
)

func main() {
	n := flag.Int("n", 1024, "matrix order")
	nb := flag.Int("nb", 128, "tile size")
	flag.Parse()
	nt := (*n + *nb - 1) / *nb

	// Build a diagonally dominant SPD matrix in tile layout (lower part).
	tiles := make([][]float64, nt*nt)
	rows := func(i int) int {
		if i == nt-1 {
			return *n - i**nb
		}
		return *nb
	}
	at := func(i, j int) []float64 { return tiles[i*nt+j] }
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			t := make([]float64, *nb**nb)
			for r := 0; r < rows(i); r++ {
				gi := i**nb + r
				for c := 0; c < rows(j); c++ {
					gj := j**nb + c
					if gj > gi {
						continue
					}
					v := 0.5 * math.Sin(float64(gi*131+gj*65537))
					if gi == gj {
						v = float64(*n)
					}
					t[r**nb+c] = v
				}
			}
			tiles[i*nt+j] = t
		}
	}

	rt := xkaapi.New()
	defer rt.Close()

	handles := make([]xkaapi.Handle, nt*nt)
	h := func(i, j int) *xkaapi.Handle { return &handles[i*nt+j] }

	start := time.Now()
	err := rt.Run(func(p *xkaapi.Proc) {
		for k := 0; k < nt; k++ {
			k := k
			p.SpawnTask(func(*xkaapi.Proc) { potrf(at(k, k), rows(k), *nb) },
				xkaapi.ReadWrite(h(k, k)))
			for m := k + 1; m < nt; m++ {
				m := m
				p.SpawnTask(func(*xkaapi.Proc) { trsm(at(k, k), at(m, k), rows(m), rows(k), *nb) },
					xkaapi.Read(h(k, k)), xkaapi.ReadWrite(h(m, k)))
			}
			for m := k + 1; m < nt; m++ {
				m := m
				p.SpawnTask(func(*xkaapi.Proc) { syrk(at(m, k), at(m, m), rows(m), rows(k), *nb) },
					xkaapi.Read(h(m, k)), xkaapi.ReadWrite(h(m, m)))
				for j := k + 1; j < m; j++ {
					j := j
					p.SpawnTask(func(*xkaapi.Proc) {
						gemm(at(m, k), at(j, k), at(m, j), rows(m), rows(j), rows(k), *nb)
					}, xkaapi.Read(h(m, k)), xkaapi.Read(h(j, k)), xkaapi.ReadWrite(h(m, j)))
				}
			}
		}
		p.Sync()
	})
	if err != nil {
		panic(err)
	}
	el := time.Since(start)
	gf := float64(*n) * float64(*n) * float64(*n) / 3 / el.Seconds() / 1e9
	fmt.Printf("cholesky n=%d nb=%d on %d workers: %v (%.2f GFlop/s)\n",
		*n, *nb, rt.Workers(), el.Round(time.Millisecond), gf)

	// Spot-check: the (0,0) tile must hold a valid Cholesky factor of the
	// original diagonally dominant block (positive diagonal).
	for r := 0; r < rows(0); r++ {
		if at(0, 0)[r**nb+r] <= 0 {
			fmt.Fprintln(os.Stderr, "verification failed: non-positive pivot")
			os.Exit(1)
		}
	}
	fmt.Println("factorization verified (positive pivots)")
}

func potrf(a []float64, n, ld int) {
	for j := 0; j < n; j++ {
		d := a[j*ld+j]
		for t := 0; t < j; t++ {
			d -= a[j*ld+t] * a[j*ld+t]
		}
		d = math.Sqrt(d)
		a[j*ld+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*ld+j]
			for t := 0; t < j; t++ {
				s -= a[i*ld+t] * a[j*ld+t]
			}
			a[i*ld+j] = s / d
		}
	}
}

func trsm(l, b []float64, m, n, ld int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := b[i*ld+j]
			for t := 0; t < j; t++ {
				s -= b[i*ld+t] * l[j*ld+t]
			}
			b[i*ld+j] = s / l[j*ld+j]
		}
	}
}

func syrk(a, c []float64, n, k, ld int) {
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for t := 0; t < k; t++ {
				s += a[i*ld+t] * a[j*ld+t]
			}
			c[i*ld+j] -= s
		}
	}
}

func gemm(a, b, c []float64, m, n, k, ld int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for t := 0; t < k; t++ {
				s += a[i*ld+t] * b[j*ld+t]
			}
			c[i*ld+j] -= s
		}
	}
}
