package xkaapi_test

import (
	"sync/atomic"
	"testing"
	"time"

	"xkaapi"
)

// TestCustomAdaptiveTask exercises the raw adaptive task model of §II-D
// through the public API, without going through Foreach: a task processes a
// shared Interval and publishes its own splitter; thieves that find nothing
// to steal call the splitter, which carves off the back of the remaining
// range into new tasks that recursively do the same.
//
// This is the machinery user-level adaptive algorithms (like the paper's
// STL library, package par here) are built from.
func TestCustomAdaptiveTask(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()

	const n = 1 << 20
	var processed atomic.Int64
	var pending atomic.Int64
	pending.Store(n)

	var runAdaptive func(p *xkaapi.Proc, iv *xkaapi.Interval)
	runAdaptive = func(p *xkaapi.Proc, iv *xkaapi.Interval) {
		ad := &xkaapi.Adaptive{
			// The splitter runs on a thief, concurrently with this body; the
			// runtime guarantees it is the only concurrent splitter. It may
			// return fewer tasks than requested.
			Split: func(thief *xkaapi.Proc, k int) []*xkaapi.Task {
				rem := iv.Remaining()
				take := rem * int64(k) / int64(k+1)
				if take < 1024 {
					return nil
				}
				lo, hi, ok := iv.ExtractBack(take)
				if !ok {
					return nil
				}
				var out []*xkaapi.Task
				span := hi - lo
				parts := int64(k)
				for i := int64(0); i < parts; i++ {
					plo := lo + i*span/parts
					phi := lo + (i+1)*span/parts
					if phi <= plo {
						continue
					}
					sub := new(xkaapi.Interval)
					sub.Reset(plo, phi)
					out = append(out, thief.NewAdaptiveTask(func(p2 *xkaapi.Proc) {
						runAdaptive(p2, sub)
					}))
				}
				return out
			},
		}
		prev := p.SetAdaptive(ad)
		for {
			lo, hi, ok := iv.ExtractFront(512)
			if !ok {
				break
			}
			processed.Add(hi - lo)
			pending.Add(lo - hi)
		}
		p.SetAdaptive(prev)
	}

	rt.Run(func(p *xkaapi.Proc) {
		var iv xkaapi.Interval
		iv.Reset(0, n)
		runAdaptive(p, &iv)
		// Wait for iterations carved off by thieves: split-off tasks are
		// parentless (the victim may outlive or predecease them), so
		// completion is tracked by the pending counter, as in ForEach.
		for pending.Load() != 0 {
			time.Sleep(50 * time.Microsecond)
		}
	})

	if got := processed.Load(); got != n {
		t.Fatalf("processed %d iterations, want %d", got, n)
	}
}
