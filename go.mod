module xkaapi

go 1.24
