// Package server is the X-Kaapi network front-end: an HTTP layer that maps
// requests onto runtime jobs, so the scheduler — not ad-hoc goroutines —
// owns scheduling, failure containment and cancellation for the whole
// request path.
//
// # Request → job mapping
//
// Every workload endpoint handles a request by submitting work through
// Runtime.SubmitCtx, bound to the request's context. The three paradigms
// of the paper are exposed as endpoints over one shared worker pool:
//
//	GET /fib?n=22                      fork-join recursion (Spawn/Sync)
//	GET /loop?n=200000                 adaptive parallel loop (the gomp/komp
//	                                   worksharing kernel on the adaptive
//	                                   foreach scheduler)
//	GET /cholesky?n=192&nb=64&verify=1 tile Cholesky as dataflow tasks
//	GET /healthz                       liveness (503 while draining; body
//	                                   "degraded" + reasons under brownout)
//	GET /stats                         per-endpoint and scheduler counters
//
// Because the job carries the request context, both per-request deadlines
// (a timeout=DURATION query parameter, or the server's default) and client
// disconnects cancel the job through the runtime's machinery: remaining
// tasks are skipped eagerly at spawn (or at execution for tasks already
// enqueued), bookkeeping drains, and the pool moves on.
//
// Per-job outcome counters (core.Job.Stats: Executed, Cancelled, Panicked)
// are returned in every response and aggregated per endpoint, giving the
// per-request attribution a multi-tenant service needs on top of the
// pool-global scheduler counters.
//
// # Admission pipeline: queue → batch → submit
//
// Admission is a pipeline, not a gate. The server holds a bounded budget
// of in-flight jobs (Config.Budget, default 2x the worker count) fronted
// by a bounded FIFO admission queue (Config.QueueDepth, default 4x the
// budget):
//
//  1. A request that finds a free budget slot is admitted immediately.
//  2. Otherwise it joins the queue and waits under its own deadline.
//     Slots are handed to waiters strictly FIFO as running requests
//     finish. Time spent queued counts against the request's deadline —
//     queueing narrows, never widens, the SLO.
//  3. Only when the queue itself is full does the server answer
//     429 Too Many Requests with a Retry-After header. Backpressure is
//     still applied at admission, before any work reaches the pool, so an
//     over-capacity burst cannot queue unbounded work — but a burst that
//     fits the queue now completes instead of bouncing.
//
// A request whose deadline fires while queued gets 504; one whose client
// disconnects while queued gets 499, and its queue slot is abandoned (an
// abandoned waiter granted a slot concurrently passes the slot straight
// to the next live waiter — slots never leak). /healthz and /stats bypass
// admission entirely. QueueDepth < 0 disables the queue and restores the
// instant-429 behaviour.
//
// # Request coalescing
//
// Admitted /fib and /loop requests pass through a per-endpoint batcher: a
// count-or-timeout collection window (Config.BatchWindow, default 500µs;
// Config.BatchMax, default 8) folds concurrent small requests into ONE
// runtime job — one SubmitCtx, one fan-out of per-request sub-tasks, one
// set of job counters — instead of N jobs racing for the admission
// budget. Each member still gets its own sub-result over a buffered
// channel, its own verification, and its own response. The batch job runs
// under a context that stays alive while any member's request lives:
// a member whose deadline fires or whose client disconnects is skipped at
// fan-out (or abandoned at the next context check) and answered 504/499,
// while its batch neighbours are unaffected — coalescing never lets one
// request's deadline extend or shorten another's. Batches dispatch
// asynchronously, so collection of the next window never stalls behind
// execution of the previous one. BatchWindow < 0 disables coalescing;
// /cholesky requests are never coalesced (each one is already a full
// dataflow job).
//
// # Status taxonomy
//
// Terminal outcomes are attributed precisely, using the request's own
// context to distinguish who cancelled:
//
//	200  completed and verified
//	500  task panic (after Config.PanicRetries resubmissions, if any), or
//	     result failed verification
//	504  the request's deadline fired (queued or running)
//	499  the client disconnected (request context dead; queued or running)
//	503  server-initiated cancellation (Job.Cancel or drain: the job was
//	     cancelled but the request context is still alive), draining, or a
//	     degraded endpoint shedding an oversized request (Retry-After set)
//	429  admission queue full (Retry-After set)
//
// A server-side cancel is never misreported as a client disconnect: 499
// is reserved for requests whose own context died, and server-initiated
// cancellations are counted separately (server_cancelled in /stats).
//
// The Retry-After on 429s is derived, not hardcoded: the admission queue
// tracks its grant rate over a rotating one-second window, and advertises
// ceil((queued+1)/rate) seconds — how long the current backlog actually
// needs to drain — clamped to [1s, 30s], falling back to 1s before any
// grant has been observed.
//
// # Graceful drain
//
// StartDrain flips the server into draining mode: /healthz turns 503
// (load balancers stop routing), new workload requests are refused with
// 503, queued waiters are refused in the same critical section that stops
// grants — after StartDrain returns, no request can be admitted, with no
// race window — and requests already admitted run to completion. The
// intended shutdown sequence on SIGTERM (see cmd/xkserve serve) is
// StartDrain, then http.Server.Shutdown (waits for in-flight handlers,
// hence for their jobs), then Server.Close (stops the batch collectors),
// then Runtime.Wait — whose errors.Join drain reports every job failure
// unaccounted for by a handler — and finally Runtime.CloseErr. After that
// drain the scheduler counters must balance:
// Spawned == Executed + Cancelled.
//
// # Sharding
//
// Config.Shards > 1 (with Config.Runtime nil; or an externally built
// xkaapi.New(WithShards(n)) runtime) puts a sharded fleet behind the same
// endpoints: each request's job is placed on the least-loaded scheduler
// shard, and idle shards steal queued root jobs from loaded siblings, so
// one heavy endpoint cannot monopolize the pool's locality domain. The
// workload endpoints accept an affinity=KEY query parameter (a uint64)
// that pins the request's job to shard KEY mod shards — related requests
// (one client, one dataset) then share one shard's caches. Affinity
// requests bypass the coalescing batcher: a batch is one job with one
// placement, which would silently override every member's pin but the
// first.
//
// On a sharded runtime /stats grows two fields:
//
//	"shards": 4,
//	"shard_stats": [
//	  {"shard": 0, "workers": 2, "inbox_len": 0, "live_roots": 1,
//	   "stolen_in": 3, "stolen_out": 0,
//	   "executed": 1234, "spawned": 1230, "cancelled": 0, "parks": 7,
//	   "unhealthy": false, "health_transitions": 2, "routed_around": 5},
//	  ...
//	]
//
// stolen_in/stolen_out count root jobs migrated between shards by
// cross-shard stealing; executed counts where tasks actually ran. Because
// migration moves execution but not accounting, spawned == executed +
// cancelled balances only on the fleet-level "scheduler" block, not per
// shard. shard_stats is omitted entirely when shards == 1, so consumers
// of the single-pool schema see an unchanged reply.
//
// # Health & degradation
//
// The server degrades deliberately instead of falling over, at two levels.
//
// Shard health (the runtime's supervisor, on sharded pools): workers
// publish a progress epoch, and a shard whose epoch freezes while its
// inbox holds work — every worker wedged, descheduled, or stuck — is
// marked unhealthy after a stall threshold (default 400ms, tunable via
// xkaapi.WithShardHealth). The router places new jobs elsewhere (pinned
// affinity jobs divert to the next healthy shard), siblings keep pulling
// the backlog over, and the shard is re-admitted as soon as it makes
// progress again or is drained and demonstrably responsive. /stats
// surfaces the episode per shard: "unhealthy" (live flag),
// "health_transitions" (flips in either direction, so one full
// trip-and-recover episode counts 2) and "routed_around" (jobs the router
// diverted away).
//
// Endpoint brownout (Config.SLO): a controller samples each supervised
// endpoint's latency histogram every SLO.Tick (default 250ms) and compares
// the windowed p99 — the delta between consecutive snapshots, not the
// lifetime quantile — against the endpoint's SLO, treating a saturated
// admission queue (depth at ≥ 3/4 of capacity) as a violation everywhere.
// Transitions are hysteretic so the controller cannot flap: two
// consecutive violating windows enter degradation, three consecutive
// windows at or below 80% of the SLO leave it, and windows between 80%
// and 100% are a dead band that holds the current state. While an
// endpoint is degraded the server sheds its oversized requests (size
// above half the endpoint's cap) with 503 + Retry-After before they take
// a budget slot, and widens its coalescing window 4x so small requests
// ride in fewer, fuller batches. /healthz stays 200 but its body reports
// "degraded" with one reason line per violating endpoint — draining alone
// is 503 — and /stats mirrors the state ("degraded", "degraded_reasons",
// per-endpoint "shed").
//
// Config.PanicRetries bounds a third mechanism, aimed at transient
// crashes: a job that fails with a task panic is resubmitted up to N
// times while the request's context is still alive (a fresh job, fresh
// tiles for /cholesky, the whole batch for coalesced endpoints) before
// the panic is surfaced as a 500. Retries are counted per endpoint as
// "panic_retried".
//
// All of it is exercised by the fault-injection harness (internal/chaos):
// `xkserve serve -chaos stall+panic+latency+wedge:7 -slo 15ms
// -panic-retries 20` arms seeded task panics, worker stalls, handler
// delays and a wall-clock whole-shard wedge behind the scheduler's
// nil-check fast path, and the integration tier drives exactly that
// topology through a full degrade-and-recover episode.
//
// # Stats, latency and data races
//
// /stats reports queue_cap and the live queue_depth, the per-endpoint
// aggregates (atomics maintained from per-job stats, plus queued, 429,
// cancelled, server_cancelled, batches and batched counts), and two
// lock-free HDR-style histograms per endpoint (internal/latency):
// end-to-end request latency and queue wait, each summarized as
// count/mean/p50/p90/p99/max with ≤12.5% relative bucket error. The full
// scheduler counters ride along: every per-worker counter, task-path
// included, is a cache-line-padded atomic, so mid-flight reads are
// race-free and each value is a monotone lower bound of the true count.
// Operators can watch Executed advance while long jobs run; the exact
// balance Spawned == Executed + Cancelled holds once the pool drains,
// which the serve command verifies after its final drain.
//
// # Static gates
//
// Several of the invariants above are enforced at CI time, not just
// documented: `make lint` runs cmd/xkvet, the module's own analyzer
// suite (internal/analysis). taskctx rejects server kernels and task
// bodies that call context.Background/TODO or shadow the per-job context
// — the cancellation fan-out only works if bodies observe the context
// the job was given. hotpath keeps the files behind the lock-free
// claims (the deque, the worker scheduling loop, internal/latency) free
// of mutexes, channel operations, sleeps and fmt. jobfailsingleton
// pins the PanicError definition to internal/jobfail so the failure
// state machine stays singular, and atomicpad requires cache-line
// padding on atomics-bearing structs instantiated per-worker in slices.
// See internal/analysis for the conventions (//xk:hotpath, //xk:allow).
package server
