// Package server is the X-Kaapi network front-end: an HTTP layer that maps
// each request onto one runtime job, so the scheduler — not ad-hoc
// goroutines — owns scheduling, failure containment and cancellation for
// the whole request path.
//
// # Request → job mapping
//
// Every workload endpoint handles a request by submitting exactly one job
// with Runtime.SubmitCtx, bound to the request's context. The three
// paradigms of the paper are exposed as endpoints over one shared worker
// pool:
//
//	GET /fib?n=22                      fork-join recursion (Spawn/Sync)
//	GET /loop?n=200000                 adaptive parallel loop (the gomp/komp
//	                                   worksharing kernel on the adaptive
//	                                   foreach scheduler)
//	GET /cholesky?n=192&nb=64&verify=1 tile Cholesky as dataflow tasks
//	GET /healthz                       liveness (503 while draining)
//	GET /stats                         per-endpoint and scheduler counters
//
// Because the job carries the request context, both per-request deadlines
// (a timeout=DURATION query parameter, or the server's default) and client
// disconnects cancel the job through the runtime's machinery: remaining
// tasks are skipped eagerly at spawn (or at execution for tasks already
// enqueued), bookkeeping drains, and the pool moves on. A deadline maps to
// 504, a client disconnect to 499, a task panic to 500 — one failed
// request never disturbs another.
//
// Per-job outcome counters (core.Job.Stats: Executed, Cancelled, Panicked)
// are returned in every response and aggregated per endpoint, giving the
// per-request attribution a multi-tenant service needs on top of the
// pool-global scheduler counters.
//
// # Admission control and backpressure
//
// The server holds a bounded budget of in-flight jobs (Config.Budget,
// default 2x the worker count). A request that finds the budget exhausted
// is rejected immediately with 429 Too Many Requests and a Retry-After
// header — backpressure is applied at admission, before any work is
// submitted, so an over-budget burst cannot queue unbounded work on the
// pool. /healthz and /stats bypass the budget.
//
// # Graceful drain
//
// StartDrain flips the server into draining mode: /healthz turns 503 (load
// balancers stop routing), new workload requests are refused with 503, and
// requests already admitted run to completion. The intended shutdown
// sequence on SIGTERM (see cmd/xkserve serve) is StartDrain, then
// http.Server.Shutdown (waits for in-flight handlers, hence for their
// jobs), then Runtime.Wait — whose errors.Join drain reports every job
// failure unaccounted for by a handler — and finally Runtime.CloseErr.
// After that drain the scheduler counters must balance:
// Spawned == Executed + Cancelled.
//
// # Stats and data races
//
// /stats reports the per-endpoint aggregates (atomics maintained from
// per-job stats) and the full live scheduler counters: every per-worker
// counter, task-path included (Spawned, Executed, Cancelled, ...), is a
// cache-line-padded atomic, so mid-flight reads are race-free and each
// value is a monotone lower bound of the true count. Operators can watch
// Executed advance while long jobs run; the exact balance
// Spawned == Executed + Cancelled holds once the pool drains, which the
// serve command verifies after its final drain.
package server
