package server

import (
	"context"
	"math"
	"sync"
	"time"
)

// admitCode is the outcome of one admission attempt.
type admitCode int

const (
	// admitOK: a budget slot was granted; the caller must release() it.
	admitOK admitCode = iota
	// admitDraining: the server is draining; refuse with 503.
	admitDraining
	// admitQueueFull: budget and queue both exhausted; refuse with 429.
	admitQueueFull
	// admitDeadline: the request deadline expired while queued; 504.
	admitDeadline
	// admitDisconnect: the request context was cancelled (client gone or
	// handler chain torn down) while queued; 499.
	admitDisconnect
)

// waiter is one request parked in the admission queue. All fields are
// guarded by the owning admitQueue's mutex except grant, which is a
// buffered channel written exactly once, under that mutex, when the
// waiter's outcome is decided.
type waiter struct {
	grant   chan admitCode // buffered(1): decided outcome
	decided bool           // an outcome was sent on grant
	code    admitCode      // the outcome sent (valid when decided)
	gone    bool           // the waiting handler gave up (ctx died first)
}

// admitQueue is the server's admission control: a fixed budget of in-flight
// slots fronted by a bounded FIFO queue. A request that misses a free slot
// waits in the queue under its own context; release hands the freed slot
// directly to the oldest live waiter (FIFO, no thundering herd), and only a
// full queue is refused outright.
//
// Every transition — grant, refusal, drain, abandon — happens under one
// mutex, which is what closes the historical StartDrain/admit race: a
// request could previously pass the atomic draining check and then win a
// budget slot after drain had begun. Here startDrain flips the flag and
// flushes the queue in the same critical section grants use, so once
// startDrain returns, no acquire can ever return admitOK again.
type admitQueue struct {
	mu       sync.Mutex
	free     int // unheld budget slots
	budget   int
	maxQueue int // bound on queued waiters; 0 disables queueing
	waiters  []*waiter
	queued   int // live (non-abandoned) waiters, <= maxQueue
	draining bool

	// Grant-rate window, for the Retry-After a 429 advertises: grants
	// counts slots handed out (fast path and queue handoff alike) since
	// winStart; when a window of grantWindow completes, its rate is rolled
	// into lastRate. The rate is how fast the queue actually drains, so
	// ceil(queue/rate) is an honest time-to-a-free-slot estimate instead of
	// the old hardcoded 1.
	grants   int
	winStart time.Time
	lastRate float64 // grants per second over the last completed window
}

const (
	// grantWindow is the rotation period of the grant-rate window: long
	// enough to smooth scheduling noise, short enough that Retry-After
	// tracks a changing drain rate within seconds.
	grantWindow = time.Second
	// maxRetryAfterSecs bounds the advertised backoff: however slow the
	// drain, a client is never told to stay away longer than this.
	maxRetryAfterSecs = 30
)

func newAdmitQueue(budget, maxQueue int) *admitQueue {
	return &admitQueue{free: budget, budget: budget, maxQueue: maxQueue, winStart: time.Now()}
}

// noteGrantLocked records one slot grant in the rate window, rotating the
// window when it is full. Caller holds q.mu.
func (q *admitQueue) noteGrantLocked() {
	if e := time.Since(q.winStart); e >= grantWindow {
		q.lastRate = float64(q.grants) / e.Seconds()
		q.grants = 0
		q.winStart = time.Now()
	}
	q.grants++
}

// retryAfterSecs derives the Retry-After a 429 should advertise from the
// observed grant rate: the seconds until the current backlog (every queued
// waiter, plus the retrying request itself) drains at that rate, rounded
// up and clamped to [1, maxRetryAfterSecs]. With no observed grants yet
// (a stampede onto a cold server) it falls back to 1 second, the old
// hardcoded value.
func (q *admitQueue) retryAfterSecs() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	rate := q.lastRate
	// Blend in the live window once it has signal, so a drain-rate collapse
	// is reflected before the window rotates.
	if e := time.Since(q.winStart); q.grants > 0 && e > grantWindow/4 {
		if cur := float64(q.grants) / e.Seconds(); rate == 0 || cur < rate {
			rate = cur
		}
	}
	if rate <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(q.queued+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSecs {
		secs = maxRetryAfterSecs
	}
	return secs
}

// acquire obtains a budget slot for one request, queueing under ctx when
// the budget is busy. It returns the outcome and, for requests that
// queued, the time spent waiting (queued reports whether it waited at
// all, so zero-wait grants and queue-path grants are distinguishable).
func (q *admitQueue) acquire(ctx context.Context) (code admitCode, wait time.Duration, queued bool) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return admitDraining, 0, false
	}
	if q.free > 0 {
		q.free--
		q.noteGrantLocked()
		q.mu.Unlock()
		return admitOK, 0, false
	}
	if q.queued >= q.maxQueue {
		q.mu.Unlock()
		return admitQueueFull, 0, false
	}
	w := &waiter{grant: make(chan admitCode, 1)}
	q.waiters = append(q.waiters, w)
	q.queued++
	q.mu.Unlock()

	start := time.Now()
	select {
	case code = <-w.grant:
		return code, time.Since(start), true
	case <-ctx.Done():
	}
	// The context died while queued — but a grant may have been decided
	// concurrently. Settle under the lock: either mark the waiter gone
	// (release will skip it) or, if a slot was already handed to it, pass
	// that slot on so it is not leaked.
	q.mu.Lock()
	if w.decided {
		if w.code == admitOK {
			q.releaseLocked()
		}
		q.mu.Unlock()
		// The slot was granted before the caller could observe it; the
		// request still reports its context outcome (it can no longer use
		// the slot — its deadline is gone).
	} else {
		w.gone = true
		q.queued--
		q.mu.Unlock()
	}
	if ctx.Err() == context.DeadlineExceeded {
		return admitDeadline, time.Since(start), true
	}
	return admitDisconnect, time.Since(start), true
}

// release returns one slot: to the oldest live waiter if any (FIFO
// handoff), otherwise back to the free pool.
func (q *admitQueue) release() {
	q.mu.Lock()
	q.releaseLocked()
	q.mu.Unlock()
}

func (q *admitQueue) releaseLocked() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters[0] = nil
		q.waiters = q.waiters[1:]
		if w.gone {
			continue // abandoned while queued: skip
		}
		w.decided, w.code = true, admitOK
		q.queued--
		q.noteGrantLocked()
		w.grant <- admitOK
		return
	}
	q.free++
}

// startDrain atomically switches to draining and refuses every queued
// waiter. Grants and the draining flag share the mutex, so after
// startDrain returns no acquire — racing or future — can be admitted.
func (q *admitQueue) startDrain() {
	q.mu.Lock()
	q.draining = true
	for _, w := range q.waiters {
		if w == nil || w.gone || w.decided {
			continue
		}
		w.decided, w.code = true, admitDraining
		q.queued--
		w.grant <- admitDraining
	}
	q.waiters = nil
	q.mu.Unlock()
}

// inFlight is the number of budget slots currently held.
func (q *admitQueue) inFlight() int {
	q.mu.Lock()
	n := q.budget - q.free
	q.mu.Unlock()
	return n
}

// depth is the number of requests currently waiting in the queue.
func (q *admitQueue) depth() int {
	q.mu.Lock()
	n := q.queued
	q.mu.Unlock()
	return n
}
