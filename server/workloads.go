package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"xkaapi"
	"xkaapi/internal/cholesky"
	"xkaapi/internal/tile"
)

// fibCutoff is the subtree size above which fibTask consults the job
// context before descending. ctx.Err is a mutex-guarded read of the one
// shared job context, so the cutoff keeps it strictly off the fine-grain
// hot path: only the coarse nodes (a vanishing fraction of the tree) pay
// it, while a deadline still abandons a request within milliseconds.
const fibCutoff = 16

// fibTask is the paper's Fig. 1 fork-join recursion: one task per node.
// Deadline-aware: coarse nodes check the per-job context (cancelled by the
// request deadline, a client disconnect, or a sibling failure) and return
// early instead of expanding a subtree the response can no longer use;
// eager cancel at spawn prunes whatever was already enqueued.
func fibTask(p *xkaapi.Proc, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	if n >= fibCutoff && p.Context().Err() != nil {
		return // job dead: leave *r partial, the handler reports the error
	}
	var a, b int64
	p.Spawn(func(p *xkaapi.Proc) { fibTask(p, &a, n-1) })
	fibTask(p, &b, n-2)
	p.Sync()
	*r = a + b
}

// FibSeq is the sequential Fibonacci reference the /fib endpoint verifies
// its parallel result against. Exported so the load generator
// (cmd/xkserve load) checks responses against the same recurrence.
func FibSeq(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// serveBatched runs one admitted small-job request through the endpoint's
// batcher: the request joins the current coalescing window and waits for
// its sub-result (or its own context, whichever fires first — a batch
// neighbour can never extend this request's deadline). verify maps the
// sub-result to the response's ok. It reports false when the batcher is
// unavailable (disabled, stopped, or the context died before the item was
// accepted) and the caller should fall back to the one-job path.
func (s *Server) serveBatched(ep *endpointStats, b *batcher, w http.ResponseWriter, r *http.Request,
	endpoint string, n int, ctx context.Context, verify func(int64) bool) bool {
	if b == nil {
		return false
	}
	it := &batchItem{n: n, ctx: ctx, done: make(chan batchResult, 1)}
	start := time.Now()
	if !b.submit(it) {
		if ctx.Err() != nil {
			// Died before joining a batch: report the cancellation.
			rep := reply{Endpoint: endpoint, N: n, Error: ErrorLine(ctx.Err()),
				ElapsedNS: time.Since(start).Nanoseconds()}
			writeJSON(w, s.finish(ep, start, r.Context(), ctx.Err(), false), rep)
			return true
		}
		return false // batcher stopped: direct path
	}
	select {
	case res := <-it.done:
		rep := reply{
			Endpoint:  endpoint,
			N:         n,
			ElapsedNS: time.Since(start).Nanoseconds(),
			Job:       res.stats,
		}
		if res.size > 1 {
			rep.Batch = res.size
		}
		if res.err != nil {
			rep.Error = ErrorLine(res.err)
		} else {
			rep.Result = i64Ptr(res.result)
			rep.OK = verify(res.result)
			if !rep.OK {
				rep.Error = "result failed verification"
			}
		}
		writeJSON(w, s.finish(ep, start, r.Context(), res.err, rep.OK), rep)
	case <-ctx.Done():
		// The request died while its batch was still collecting or
		// computing; the batch keeps serving its other members (its
		// context stays alive while any member lives) and this member's
		// sub-task is skipped at fan-out or abandoned at the next
		// context check. The buffered done channel absorbs the late
		// sub-result.
		err := ctx.Err()
		rep := reply{Endpoint: endpoint, N: n, Error: ErrorLine(err),
			ElapsedNS: time.Since(start).Nanoseconds()}
		writeJSON(w, s.finish(ep, start, r.Context(), err, false), rep)
	}
	return true
}

// shedOversized is the brownout controller's load-shedding gate: while the
// endpoint is degraded, requests above half its size cap are refused with
// 503 + Retry-After before a budget slot is taken — the remaining capacity
// goes to the small requests that can still meet the SLO. A no-op while
// the endpoint is healthy or unsupervised.
func (s *Server) shedOversized(name string, w http.ResponseWriter, n int) bool {
	if s.brow == nil || !s.brow.epFor(name).shedOversized(n) {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.adq.retryAfterSecs()))
	http.Error(w, "degraded: oversized request shed", http.StatusServiceUnavailable)
	return true
}

// affinityParam parses the optional affinity query parameter: a uint64 key
// pinning the request's job to one shard of a sharded runtime (see
// xkaapi.Runtime.SubmitAffinity). hasKey is false when the parameter is
// absent.
func affinityParam(r *http.Request) (key uint64, hasKey bool, err error) {
	v := r.URL.Query().Get("affinity")
	if v == "" {
		return 0, false, nil
	}
	key, perr := strconv.ParseUint(v, 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("bad affinity %q", v)
	}
	return key, true, nil
}

// submitSmall submits one small-job request body, honouring the affinity
// pin when the request carries one.
func (s *Server) submitSmall(ctx context.Context, key uint64, hasKey bool, fn func(*xkaapi.Proc)) *xkaapi.Job {
	if hasKey {
		return s.rt.SubmitAffinity(ctx, key, fn)
	}
	return s.rt.SubmitCtx(ctx, fn)
}

// handleFib serves GET /fib?n=N: the fork-join recursion, coalesced with
// concurrent /fib requests into one batched job when batching is enabled,
// result verified against the sequential recurrence. An affinity=K
// parameter pins the job to shard K mod shards of a sharded runtime;
// affinity requests bypass the batcher (a batch has one placement, which
// would silently override the pin of every member but the first).
func (s *Server) handleFib(w http.ResponseWriter, r *http.Request) {
	n, err := intParam(r, "n", 22, s.maxFib)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, hasKey, err := affinityParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	if s.shedOversized("fib", w, n) {
		return
	}
	if !s.admit(&s.fib, w, ctx) {
		return
	}
	defer s.release()
	s.chaosDelay()

	verify := func(res int64) bool { return res == FibSeq(n) }
	if !hasKey && s.serveBatched(&s.fib, s.fibBatch, w, r, "fib", n, ctx, verify) {
		return
	}

	var res int64
	var job *xkaapi.Job
	var jerr error
	start := time.Now()
	for attempt := 0; ; attempt++ {
		res = 0
		job = s.submitSmall(ctx, key, hasKey, func(p *xkaapi.Proc) { fibTask(p, &res, n) })
		jerr = job.Wait()
		if !s.retryOnPanic(ctx, jerr, attempt) {
			break
		}
		s.fib.panicRetried.Add(1)
	}

	rep := reply{
		Endpoint:  "fib",
		N:         n,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Job:       job.Stats(),
	}
	if jerr != nil {
		rep.Error = ErrorLine(jerr)
	} else {
		rep.Result = i64Ptr(res)
		rep.OK = verify(res)
		if !rep.OK {
			rep.Error = "result failed verification"
		}
	}
	writeJSON(w, s.finishJob(&s.fib, start, r.Context(), job.Stats(), jerr, rep.OK), rep)
}

// handleLoop serves GET /loop?n=N: the worksharing sum kernel the gomp and
// komp comparators run (sum of [0, n)), hosted on the adaptive foreach of
// the shared pool — i.e. the komp mapping of "#pragma omp for" — coalesced
// with concurrent /loop requests into one batched job when batching is
// enabled. The result is verified against the closed form.
func (s *Server) handleLoop(w http.ResponseWriter, r *http.Request) {
	n, err := intParam(r, "n", 200_000, s.maxLoop)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, hasKey, err := affinityParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	if s.shedOversized("loop", w, n) {
		return
	}
	if !s.admit(&s.loop, w, ctx) {
		return
	}
	defer s.release()
	s.chaosDelay()

	verify := func(res int64) bool { return res == int64(n)*int64(n-1)/2 }
	if !hasKey && s.serveBatched(&s.loop, s.loopBatch, w, r, "loop", n, ctx, verify) {
		return
	}

	var res int64
	var job *xkaapi.Job
	var jerr error
	start := time.Now()
	for attempt := 0; ; attempt++ {
		res = 0
		job = s.submitSmall(ctx, key, hasKey, func(p *xkaapi.Proc) { loopKernel(p, n, &res) })
		jerr = job.Wait()
		if !s.retryOnPanic(ctx, jerr, attempt) {
			break
		}
		s.loop.panicRetried.Add(1)
	}

	rep := reply{
		Endpoint:  "loop",
		N:         n,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Job:       job.Stats(),
	}
	if jerr != nil {
		rep.Error = ErrorLine(jerr)
	} else {
		rep.Result = i64Ptr(res)
		rep.OK = verify(res)
		if !rep.OK {
			rep.Error = "result failed verification"
		}
	}
	writeJSON(w, s.finishJob(&s.loop, start, r.Context(), job.Stats(), jerr, rep.OK), rep)
}

// spdCache memoizes the SPD source matrices by order: generation is O(n²)
// per request otherwise, and every request for the same n factors the same
// input. The cache is bounded — beyond maxSPDCached distinct orders,
// requests generate without caching — so a client sweeping n cannot grow
// the server's memory without bound. The factorization itself always runs
// on a fresh tile copy (it is in-place).
const maxSPDCached = 8

var (
	spdMu    sync.Mutex
	spdCache = map[int]*tile.Dense{}
)

func spdSource(n int) *tile.Dense {
	spdMu.Lock()
	d, ok := spdCache[n]
	spdMu.Unlock()
	if ok {
		return d
	}
	d = tile.NewSPD(n, 42)
	spdMu.Lock()
	if len(spdCache) < maxSPDCached {
		spdCache[n] = d
	} else if cached, ok := spdCache[n]; ok {
		d = cached // lost a fill race for an already-cached order
	}
	spdMu.Unlock()
	return d
}

// handleCholesky serves GET /cholesky?n=N&nb=NB[&verify=1]: one dataflow
// job factoring a deterministic SPD matrix of order N in NB-sized tiles.
// The default tile size is clamped to the matrix order — /cholesky?n=32
// factors with nb=32, not the raw default 64. With verify=1 the factor is
// checked against the source via the ||LLᵀ-A||/||A|| residual (an O(n³)
// check, off by default).
func (s *Server) handleCholesky(w http.ResponseWriter, r *http.Request) {
	n, err := intParam(r, "n", 192, s.maxChol)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	nb, err := intParam(r, "nb", min(64, n), n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if n == 0 || nb == 0 {
		http.Error(w, "n and nb must be positive", http.StatusBadRequest)
		return
	}
	verify := r.URL.Query().Get("verify") == "1"
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	if s.shedOversized("cholesky", w, n) {
		return
	}
	if !s.admit(&s.chol, w, ctx) {
		return
	}
	defer s.release()
	s.chaosDelay()

	src := spdSource(n)
	start := time.Now()
	var m *tile.Tiled
	var job *xkaapi.Job
	var jerr error
	// The factorization is in-place, so each panic-retry attempt restarts
	// from a fresh tile copy. The retry decision looks at the raw job error,
	// not the kernel diagnostic: a panic-cancelled attempt can leave a
	// half-factored tile that reports a spurious non-SPD error.
	for attempt := 0; ; attempt++ {
		m = tile.FromDense(src, nb)
		var kernelErr func() error
		job, kernelErr = cholesky.SubmitKaapi(ctx, s.rt, m)
		raw := job.Wait()
		jerr = raw
		if ke := kernelErr(); ke != nil {
			jerr = ke // non-SPD diagnostic beats the generic job error
		}
		if !s.retryOnPanic(ctx, raw, attempt) {
			break
		}
		s.chol.panicRetried.Add(1)
	}
	elapsed := time.Since(start)

	rep := reply{
		Endpoint:  "cholesky",
		N:         n,
		NB:        nb,
		ElapsedNS: elapsed.Nanoseconds(),
		Job:       job.Stats(),
	}
	if jerr != nil {
		rep.Error = ErrorLine(jerr)
	} else {
		rep.Gflops = fltPtr(cholesky.Gflops(n, elapsed))
		rep.OK = true
		if verify {
			res := tile.CholeskyResidual(src, m)
			rep.Residual = fltPtr(res)
			rep.OK = res < 1e-10
			if !rep.OK {
				rep.Error = "residual failed verification"
			}
		}
	}
	writeJSON(w, s.finishJob(&s.chol, start, r.Context(), job.Stats(), jerr, rep.OK), rep)
}

// ErrorLine trims an error (PanicErrors carry a full stack) to its first
// line, for JSON error fields and one-line logs.
func ErrorLine(err error) string {
	s := err.Error()
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
