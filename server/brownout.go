package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi/internal/latency"
)

// SLO configures the brownout controller: per-endpoint p99 latency targets
// over the end-to-end request histogram. A zero target leaves that endpoint
// unsupervised; an all-zero SLO disables the controller entirely. See
// brownout for the control loop.
type SLO struct {
	// FibP99, LoopP99, CholP99 are the p99 targets per endpoint, measured
	// over each evaluation window (not the cumulative histogram, so the
	// controller reacts to the current regime, not the lifetime average).
	FibP99, LoopP99, CholP99 time.Duration
	// Tick is the evaluation period. Zero selects 250ms.
	Tick time.Duration
}

func (s SLO) enabled() bool { return s.FibP99 > 0 || s.LoopP99 > 0 || s.CholP99 > 0 }

const (
	// brownoutEnterTicks consecutive violating windows enter degraded mode;
	// brownoutExitTicks consecutive windows below brownoutExitNum/Den of the
	// SLO leave it. Entering fast and leaving slow (and only well below the
	// target) is the hysteresis that keeps the controller from flapping on a
	// load hovering at the threshold.
	brownoutEnterTicks = 2
	brownoutExitTicks  = 3
	brownoutExitNum    = 4
	brownoutExitDen    = 5
	// brownoutQueueNum/Den: queue saturation — the admission queue at or
	// above 3/4 of its bound — counts as an SLO violation for every
	// endpoint, so the controller reacts before the queue overflows into
	// 429s rather than after.
	brownoutQueueNum = 3
	brownoutQueueDen = 4
	// brownoutBatchMul widens the coalescing window of a degraded endpoint:
	// bigger batches amortize more per-request overhead exactly when
	// capacity is short, trading latency the SLO has already lost anyway.
	brownoutBatchMul = 4
	// defaultBrownoutTick spaces the evaluation windows.
	defaultBrownoutTick = 250 * time.Millisecond
)

// browEndpoint is one endpoint's brownout state. Only the controller
// goroutine touches the window/streak fields; degraded, shed and lastP99
// are atomics read by handlers and /stats.
type browEndpoint struct {
	name  string
	stats *endpointStats
	slo   time.Duration
	batch *batcher // nil: no coalescing to widen (cholesky, batching off)
	maxN  int      // endpoint size cap; degraded mode sheds n > maxN/2

	prev      *latency.Snapshot // previous tick's cumulative histogram
	bad, good int               // consecutive violating / recovered windows

	degraded atomic.Bool
	lastP99  atomic.Int64 // last window's p99, ns (for /healthz reasons)
}

// setDegraded flips the endpoint's mode and applies the batch-window
// multiplier: degraded endpoints collect brownoutBatchMul× longer.
func (e *browEndpoint) setDegraded(v bool) {
	if e.degraded.Load() == v {
		return
	}
	e.degraded.Store(v)
	if e.batch != nil {
		if v {
			e.batch.widen(brownoutBatchMul)
		} else {
			e.batch.widen(1)
		}
	}
}

// brownout is the graceful-degradation controller: a control loop that
// compares each supervised endpoint's windowed p99 (cumulative-histogram
// difference between ticks, see latency.Snapshot.Sub) and the admission
// queue's saturation against the configured SLO, and flips endpoints into
// degraded mode with hysteresis (brownoutEnterTicks in, brownoutExitTicks
// out at brownoutExitNum/Den of the target). Degraded endpoints shed
// oversized requests (503 + Retry-After, before a budget slot is taken)
// and widen their coalescing window; /healthz reports "degraded" with one
// reason line per cause while any endpoint is degraded.
type brownout struct {
	srv  *Server
	tick time.Duration
	eps  []*browEndpoint

	degraded atomic.Bool // any endpoint degraded (the /healthz headline)

	mu      sync.Mutex
	reasons []string // one line per active cause, for /healthz and /stats

	stop chan struct{}
	done chan struct{}
}

func newBrownout(s *Server, cfg SLO) *brownout {
	b := &brownout{
		srv:  s,
		tick: cfg.Tick,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if b.tick <= 0 {
		b.tick = defaultBrownoutTick
	}
	add := func(name string, ep *endpointStats, slo time.Duration, batch *batcher, maxN int) {
		if slo <= 0 {
			return
		}
		b.eps = append(b.eps, &browEndpoint{
			name: name, stats: ep, slo: slo, batch: batch, maxN: maxN,
			prev: &latency.Snapshot{},
		})
	}
	add("fib", &s.fib, cfg.FibP99, s.fibBatch, s.maxFib)
	add("loop", &s.loop, cfg.LoopP99, s.loopBatch, s.maxLoop)
	add("cholesky", &s.chol, cfg.CholP99, nil, s.maxChol)
	go b.loop()
	return b
}

func (b *brownout) loop() {
	defer close(b.done)
	t := time.NewTicker(b.tick)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.step()
		}
	}
}

func (b *brownout) close() {
	close(b.stop)
	<-b.done
}

// step evaluates one window. Split from the ticker loop so tests drive the
// controller deterministically, without real time.
func (b *brownout) step() {
	queueSat := false
	if qcap := b.srv.queueCap; qcap > 0 {
		queueSat = b.srv.adq.depth()*brownoutQueueDen >= qcap*brownoutQueueNum
	}
	var reasons []string
	any := false
	for _, e := range b.eps {
		snap := e.stats.latency.Snapshot()
		win := snap.Sub(e.prev)
		e.prev = snap
		p99 := win.Quantile(0.99)
		e.lastP99.Store(p99.Nanoseconds())

		// Queue saturation violates every endpoint's SLO: shedding one
		// endpoint while the shared queue drowns would be no brownout at
		// all. An empty window is evidence of recovery (no traffic, no
		// violation), not grounds to hold state forever.
		bad := queueSat || (win.Total > 0 && p99 > e.slo)
		good := !queueSat &&
			(win.Total == 0 || p99*brownoutExitDen <= e.slo*brownoutExitNum)
		switch {
		case bad:
			e.good = 0
			if e.bad++; e.bad >= brownoutEnterTicks {
				e.setDegraded(true)
			}
		case good:
			e.bad = 0
			if e.good++; e.good >= brownoutExitTicks {
				e.setDegraded(false)
			}
		default:
			// Between the exit fraction and the SLO: hold the current mode,
			// restart both streaks.
			e.bad, e.good = 0, 0
		}
		if e.degraded.Load() {
			any = true
			reasons = append(reasons, fmt.Sprintf("%s: window p99 %v against SLO %v",
				e.name, p99.Round(time.Millisecond), e.slo))
		}
	}
	if queueSat && any {
		reasons = append(reasons, fmt.Sprintf("admission queue >= %d/%d full (depth %d of %d)",
			brownoutQueueNum, brownoutQueueDen, b.srv.adq.depth(), b.srv.queueCap))
	}
	b.degraded.Store(any)
	b.mu.Lock()
	b.reasons = reasons
	b.mu.Unlock()
}

// reasonLines returns the current causes, one per line (empty when healthy).
func (b *brownout) reasonLines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.reasons...)
}

func (b *brownout) reasonText() string { return strings.Join(b.reasonLines(), "\n") }

// epFor returns the named endpoint's brownout state, nil when that
// endpoint is unsupervised.
func (b *brownout) epFor(name string) *browEndpoint {
	for _, e := range b.eps {
		if e.name == name {
			return e
		}
	}
	return nil
}

// shed reports whether a degraded endpoint refuses this request for size:
// while browned out, requests above half the endpoint's cap are answered
// 503 before taking a budget slot, keeping the remaining capacity for the
// small requests that can still meet the SLO.
func (e *browEndpoint) shedOversized(n int) bool {
	if e == nil || !e.degraded.Load() || n*2 <= e.maxN {
		return false
	}
	e.stats.shed.Add(1)
	return true
}
