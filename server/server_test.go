package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xkaapi"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Runtime == nil {
		cfg.Runtime = xkaapi.New(xkaapi.WithWorkers(4), xkaapi.WithoutPinning())
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close() // waits for in-flight handlers
		s.Close()  // then stop the batch collectors
		if err := cfg.Runtime.CloseErr(); err != nil {
			t.Logf("runtime close: %v", err)
		}
	})
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// holdSlots takes n budget slots the way n in-flight jobs would.
func holdSlots(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if code, _, _ := s.adq.acquire(context.Background()); code != admitOK {
			t.Fatalf("holdSlots: acquire %d returned %v, want admitOK", i, code)
		}
	}
}

// TestEndpointsServeVerifiedJobs drives all three workload endpoints and
// checks each completes one verified job, with the outcomes attributed per
// endpoint in /stats.
func TestEndpointsServeVerifiedJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, q := range []string{
		"/fib?n=18",
		"/loop?n=100000",
		"/cholesky?n=128&nb=32&verify=1",
	} {
		var rep reply
		if code := getJSON(t, ts.URL+q, &rep); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", q, code)
		}
		if !rep.OK {
			t.Errorf("GET %s: ok=false (error=%q reply=%+v)", q, rep.Error, rep)
		}
		if rep.Job.Executed == 0 {
			t.Errorf("GET %s: job executed 0 tasks", q)
		}
		if rep.Job.Cancelled != 0 || rep.Job.Panicked != 0 {
			t.Errorf("GET %s: job stats %+v, want no cancels/panics", q, rep.Job)
		}
	}

	var st StatsReply
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("GET /stats: status %d", code)
	}
	for _, ep := range []string{"fib", "loop", "cholesky"} {
		es := st.Endpoints[ep]
		if es.Requests != 1 || es.OK != 1 || es.TaskExecuted == 0 {
			t.Errorf("endpoint %s stats = %+v, want 1 ok request with executed tasks", ep, es)
		}
		if es.Latency.Count != 1 || es.Latency.P50NS <= 0 || es.Latency.P99NS < es.Latency.P50NS {
			t.Errorf("endpoint %s latency summary = %+v, want 1 recorded request with ordered quantiles",
				ep, es.Latency)
		}
	}
	if st.Scheduler.Spawned < 3 {
		t.Errorf("scheduler live stats report %d submitted roots, want >= 3", st.Scheduler.Spawned)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %v (status %v)", err, resp)
	}
	resp.Body.Close()
}

// TestBackpressure429NoQueue checks the pre-queue behavior survives behind
// QueueDepth < 0: with the budget full and no queue, the next request is
// rejected instantly with 429 + Retry-After, then succeeds once a slot
// frees up.
func TestBackpressure429NoQueue(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 2, QueueDepth: -1})

	holdSlots(t, s, 2)

	resp, err := http.Get(ts.URL + "/fib?n=10")
	if err != nil {
		t.Fatalf("GET /fib: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget GET /fib: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}

	// Free one slot: the endpoint serves again.
	s.release()
	var rep reply
	if code := getJSON(t, ts.URL+"/fib?n=10", &rep); code != http.StatusOK || !rep.OK {
		t.Fatalf("after release GET /fib: status %d ok=%v", code, rep.OK)
	}
	s.release()

	if got := s.fib.rejected.Load(); got != 1 {
		t.Errorf("fib rejected count = %d, want 1", got)
	}
	if s.fib.taskExecuted.Load() == 0 {
		t.Error("fib task_executed = 0 after a served request")
	}
}

// TestQueueAbsorbsBurst is the tentpole contract at test scale: a burst
// wider than the budget completes entirely with 200s because the overflow
// waits in the admission queue instead of being 429'd, and /stats reports
// the queue traffic.
func TestQueueAbsorbsBurst(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2), xkaapi.WithoutPinning())
	s, ts := newTestServer(t, Config{Runtime: rt, Budget: 1}) // queue defaults to 4

	const clients = 5 // 1 slot + 4 queued: exactly at capacity
	codes := make(chan int, clients)
	for c := 0; c < clients; c++ {
		go func() {
			var rep reply
			resp, err := http.Get(ts.URL + "/fib?n=16")
			if err != nil {
				codes <- -1
				return
			}
			defer resp.Body.Close()
			if json.NewDecoder(resp.Body).Decode(&rep) != nil || !rep.OK {
				codes <- -2
				return
			}
			codes <- resp.StatusCode
		}()
	}
	for i := 0; i < clients; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("burst request %d: got %d, want every request queued to a 200", i, code)
		}
	}
	if got := s.fib.ok.Load(); got != clients {
		t.Errorf("fib ok = %d, want %d", got, clients)
	}
	if s.fib.rejected.Load() != 0 {
		t.Errorf("fib rejected = %d, want 0 (queue must absorb the burst)", s.fib.rejected.Load())
	}
	if s.fib.queued.Load() == 0 {
		t.Error("fib queued = 0, want > 0: the burst should have waited in the queue")
	}
	if qw := s.fib.queueWait.Summary(); qw.Count != s.fib.queued.Load() {
		t.Errorf("queue_wait count = %d, want %d (one sample per queued request)", qw.Count, s.fib.queued.Load())
	}
}

// TestQueuedDeadline504 checks a request whose deadline expires while it
// waits in the admission queue: 504, the budget slot is never held, and
// the wait is attributed to the queue (cancelled count, queue_wait sample,
// no admitted request).
func TestQueuedDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 1})
	holdSlots(t, s, 1)

	resp, err := http.Get(ts.URL + "/fib?n=10&timeout=40ms")
	if err != nil {
		t.Fatalf("GET /fib: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued GET /fib with 40ms deadline: status %d, want 504", resp.StatusCode)
	}
	if got := s.fib.requests.Load(); got != 0 {
		t.Errorf("fib requests = %d, want 0: an expired queued request must never be admitted", got)
	}
	if got := s.fib.cancelled.Load(); got != 1 {
		t.Errorf("fib cancelled = %d, want 1", got)
	}
	if got := s.fib.queued.Load(); got != 1 {
		t.Errorf("fib queued = %d, want 1", got)
	}
	if got := s.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1 (only the held slot; the 504'd request held none)", got)
	}
	s.release()
	if got := s.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after release, want 0", got)
	}
}

// TestQueuedClientDisconnect checks a client vanishing while queued: the
// waiter is abandoned (499 path), its queue position is skipped on the
// next release, and the slot is never leaked.
func TestQueuedClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 1})
	holdSlots(t, s, 1)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/fib?n=10", nil)
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Wait until the request is parked in the queue, then hang up.
	waitFor(t, time.Second, func() bool { return s.QueueDepth() == 1 })
	cancel()
	if err := <-done; err == nil {
		t.Error("disconnected client got a response, want a cancelled transport error")
	}
	// The server-side handler finishes asynchronously; wait for its verdict.
	waitFor(t, time.Second, func() bool { return s.fib.cancelled.Load() == 1 })
	if got := s.fib.requests.Load(); got != 0 {
		t.Errorf("fib requests = %d, want 0", got)
	}
	// The abandoned waiter must not absorb the next released slot.
	s.release()
	if got := s.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after release, want 0 (abandoned waiter must not hold the slot)", got)
	}
}

// TestQueueFull429 fills the budget and the queue and checks the next
// request is rejected with 429 + Retry-After, while the queued one is
// served once a slot frees up (FIFO handoff).
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 1, QueueDepth: 1})
	holdSlots(t, s, 1)

	queued := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/fib?n=10")
		if err != nil {
			queued <- -1
			return
		}
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	waitFor(t, time.Second, func() bool { return s.QueueDepth() == 1 })

	resp, err := http.Get(ts.URL + "/fib?n=10")
	if err != nil {
		t.Fatalf("GET /fib: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full GET /fib: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if got := s.fib.rejected.Load(); got != 1 {
		t.Errorf("fib rejected = %d, want 1", got)
	}

	s.release() // hand the slot to the queued request
	if code := <-queued; code != http.StatusOK {
		t.Fatalf("queued request completed with %d, want 200 after FIFO handoff", code)
	}
}

// TestNoAdmissionAfterStartDrain closes the StartDrain/admit race: the
// draining flag and slot grants share one mutex, so once StartDrain
// returns, no acquire that began afterwards can be admitted — including
// after slots free up — and every waiter already queued is refused.
func TestNoAdmissionAfterStartDrain(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(1), xkaapi.WithoutPinning())
	t.Cleanup(func() { rt.Close() })
	s := New(Config{Runtime: rt, Budget: 1})
	defer s.Close()

	holdSlots(t, s, 1)
	waiterCode := make(chan admitCode, 1)
	go func() {
		code, _, _ := s.adq.acquire(context.Background())
		waiterCode <- code
	}()
	waitFor(t, time.Second, func() bool { return s.QueueDepth() == 1 })

	s.StartDrain()
	if code := <-waiterCode; code != admitDraining {
		t.Errorf("queued waiter got %v at drain, want admitDraining", code)
	}
	if code, _, _ := s.adq.acquire(context.Background()); code != admitDraining {
		t.Errorf("post-drain acquire got %v, want admitDraining", code)
	}
	s.release() // the pre-drain job finishes; its slot must not admit anyone
	if code, _, _ := s.adq.acquire(context.Background()); code != admitDraining {
		t.Errorf("post-drain post-release acquire got %v, want admitDraining", code)
	}
	if got := s.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after drain and release, want 0", got)
	}
}

// TestDrainAdmitRaceHammer races many admitters against StartDrain under
// the race detector: any acquire that starts after StartDrain returned
// must be refused.
func TestDrainAdmitRaceHammer(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(1), xkaapi.WithoutPinning())
	t.Cleanup(func() { rt.Close() })
	s := New(Config{Runtime: rt, Budget: 2})
	defer s.Close()

	var drained atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sawDrain := drained.Load()
				code, _, _ := s.adq.acquire(context.Background())
				if code == admitOK {
					if sawDrain {
						t.Error("request admitted after StartDrain returned")
					}
					s.release()
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.StartDrain()
	drained.Store(true)
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := s.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after hammer drain, want 0", got)
	}
}

// TestBatchCoalescing fires concurrent /fib and /loop requests with
// distinct problem sizes into a wide-open coalescing window and checks (a)
// every request gets its own correct sub-result — batching must never
// cross-deliver — and (b) at least one batch actually coalesced. Run under
// -race via `make race`.
func TestBatchCoalescing(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4), xkaapi.WithoutPinning())
	s, ts := newTestServer(t, Config{
		Runtime:     rt,
		Budget:      16,
		BatchWindow: 100 * time.Millisecond,
		BatchMax:    8,
	})

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := 10 + c
			var rep reply
			if code := getJSON(t, fmt.Sprintf("%s/fib?n=%d", ts.URL, n), &rep); code != http.StatusOK {
				errs <- fmt.Errorf("fib n=%d: status %d", n, code)
				return
			}
			if rep.Result == nil || *rep.Result != FibSeq(n) || !rep.OK {
				errs <- fmt.Errorf("fib n=%d: result %v ok=%v, want %d", n, rep.Result, rep.OK, FibSeq(n))
			}
		}(c)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := 10_000 * (c + 1)
			want := int64(n) * int64(n-1) / 2
			var rep reply
			if code := getJSON(t, fmt.Sprintf("%s/loop?n=%d", ts.URL, n), &rep); code != http.StatusOK {
				errs <- fmt.Errorf("loop n=%d: status %d", n, code)
				return
			}
			if rep.Result == nil || *rep.Result != want || !rep.OK {
				errs <- fmt.Errorf("loop n=%d: result %v ok=%v, want %d", n, rep.Result, rep.OK, want)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.fib.batched.Load() < 2 && s.loop.batched.Load() < 2 {
		t.Errorf("no coalescing observed (fib batched=%d, loop batched=%d) despite a %v window",
			s.fib.batched.Load(), s.loop.batched.Load(), 100*time.Millisecond)
	}
	// Per-request outcome accounting is per member; task counters are per
	// batch — both must reflect all requests.
	if got := s.fib.ok.Load(); got != clients {
		t.Errorf("fib ok = %d, want %d", got, clients)
	}
	if s.fib.taskExecuted.Load() == 0 || s.loop.taskExecuted.Load() == 0 {
		t.Error("batched endpoints report zero executed tasks")
	}
}

// TestZeroResultNotOmitted is the omitempty regression: /fib?n=0 and
// /loop?n=0 legitimately compute 0 and the JSON body must still carry the
// result field alongside ok=true.
func TestZeroResultNotOmitted(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, q := range []string{"/fib?n=0", "/loop?n=0"} {
		var raw map[string]json.RawMessage
		if code := getJSON(t, ts.URL+q, &raw); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", q, code)
		}
		res, present := raw["result"]
		if !present {
			t.Errorf("GET %s: zero result omitted from JSON body", q)
			continue
		}
		var v int64 = -1
		if err := json.Unmarshal(res, &v); err != nil || v != 0 {
			t.Errorf("GET %s: result = %s, want 0", q, res)
		}
		var ok bool
		if err := json.Unmarshal(raw["ok"], &ok); err != nil || !ok {
			t.Errorf("GET %s: ok = %s, want true", q, raw["ok"])
		}
	}
}

// TestCholeskyDefaultNBClamped is the tile-size regression: with no nb
// parameter and n smaller than the old default 64, the server must clamp
// the default to n instead of factoring with nb > n.
func TestCholeskyDefaultNBClamped(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var rep reply
	if code := getJSON(t, ts.URL+"/cholesky?n=32&verify=1", &rep); code != http.StatusOK {
		t.Fatalf("GET /cholesky?n=32: status %d (error %q)", code, rep.Error)
	}
	if rep.NB != 32 {
		t.Errorf("default nb for n=32 = %d, want clamped to 32", rep.NB)
	}
	if !rep.OK || rep.Residual == nil {
		t.Errorf("clamped factorization not verified: ok=%v residual=%v", rep.OK, rep.Residual)
	}
	// Larger orders keep the old default.
	if code := getJSON(t, ts.URL+"/cholesky?n=128", &rep); code != http.StatusOK || rep.NB != 64 {
		t.Errorf("default nb for n=128 = %d (status %d), want 64", rep.NB, code)
	}
}

// TestServerCancelNotClientDisconnect checks the cancellation taxonomy: a
// job error of context.Canceled / xkaapi.ErrCanceled is a 499 client
// disconnect only when the request's own context died; a server-side
// cancellation with a live request context is 503 and counted separately.
func TestServerCancelNotClientDisconnect(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(1), xkaapi.WithoutPinning())
	t.Cleanup(func() { rt.Close() })
	s := New(Config{Runtime: rt})
	defer s.Close()

	live := httptest.NewRequest("GET", "/fib?n=10", nil).Context()
	deadCtx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, tc := range []struct {
		name   string
		reqCtx context.Context
		err    error
		status int
		client int64 // expected cancelled delta
		server int64 // expected server_cancelled delta
	}{
		{"job.Cancel, client live", live, xkaapi.ErrCanceled, http.StatusServiceUnavailable, 0, 1},
		{"drain-style cancel, client live", live, context.Canceled, http.StatusServiceUnavailable, 0, 1},
		{"client disconnect", deadCtx, context.Canceled, StatusClientClosedRequest, 1, 0},
		{"deadline", live, context.DeadlineExceeded, http.StatusGatewayTimeout, 1, 0},
	} {
		beforeClient := s.fib.cancelled.Load()
		beforeServer := s.fib.serverCancelled.Load()
		got := s.finish(&s.fib, time.Now(), tc.reqCtx, tc.err, false)
		if got != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.status)
		}
		if d := s.fib.cancelled.Load() - beforeClient; d != tc.client {
			t.Errorf("%s: cancelled delta %d, want %d", tc.name, d, tc.client)
		}
		if d := s.fib.serverCancelled.Load() - beforeServer; d != tc.server {
			t.Errorf("%s: server_cancelled delta %d, want %d", tc.name, d, tc.server)
		}
	}
}

// TestDeadlineCancelsCholesky submits a Cholesky factorization far larger
// than its deadline allows and checks the deadline actually stops the job:
// 504 status, and the job's (and endpoint's) Cancelled counters grow
// because remaining tile tasks were skipped.
func TestDeadlineCancelsCholesky(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	var rep reply
	code := getJSON(t, ts.URL+"/cholesky?n=768&nb=32&timeout=2ms", &rep)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("GET /cholesky with 2ms deadline: status %d, want 504 (reply %+v)", code, rep)
	}
	if rep.Job.Cancelled == 0 {
		t.Errorf("deadline-exceeded job cancelled 0 tasks, want > 0 (job %+v)", rep.Job)
	}
	if s.chol.cancelled.Load() != 1 {
		t.Errorf("cholesky endpoint cancelled = %d, want 1", s.chol.cancelled.Load())
	}
	if s.chol.taskCancelled.Load() == 0 {
		t.Error("cholesky endpoint task_cancelled = 0, want > 0")
	}

	// The pool survives the cancelled job: a small request still completes.
	if code := getJSON(t, ts.URL+"/cholesky?n=64&nb=32&verify=1", &rep); code != http.StatusOK || !rep.OK {
		t.Fatalf("after cancel GET /cholesky: status %d ok=%v", code, rep.OK)
	}
}

// TestDrainRefusesNewWork checks drain semantics: after StartDrain the
// health check and the workload endpoints report 503, so load balancers
// stop routing and no new jobs are admitted.
func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	s.StartDrain()
	for _, q := range []string{"/healthz", "/fib?n=10"} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s while draining: status %d, want 503", q, resp.StatusCode)
		}
	}
	if !s.Draining() {
		t.Error("Draining() = false after StartDrain")
	}
}

// TestBadRequests checks parameter validation: over-cap sizes and malformed
// timeouts are rejected with 400 before touching the budget.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxFib: 30})

	for _, q := range []string{
		"/fib?n=31",
		"/fib?n=-1",
		"/fib?n=x",
		"/fib?timeout=bogus",
		"/loop?n=999999999999",
		"/cholesky?n=0",
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", q, resp.StatusCode)
		}
	}
	if n := s.fib.requests.Load() + s.loop.requests.Load() + s.chol.requests.Load(); n != 0 {
		t.Errorf("bad requests consumed %d budget admissions, want 0", n)
	}
}

// TestMixedBurstUnderBudget hammers the server with a concurrent mixed
// workload wider than the budget: every request must end as either a
// verified 200 or a clean 429, and once drained the per-endpoint
// accounting must add up. With the admission queue at its default depth
// the whole burst is expected to be absorbed.
func TestMixedBurstUnderBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 3})

	const clients = 12
	type outcome struct {
		code int
		ok   bool
	}
	results := make(chan outcome, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			q := []string{"/fib?n=16", "/loop?n=50000", "/cholesky?n=96&nb=32"}[c%3]
			resp, err := http.Get(ts.URL + q)
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			defer resp.Body.Close()
			var rep reply
			ok := json.NewDecoder(resp.Body).Decode(&rep) == nil && rep.OK
			results <- outcome{code: resp.StatusCode, ok: ok}
		}(c)
	}
	served, rejected := 0, 0
	for i := 0; i < clients; i++ {
		r := <-results
		switch r.code {
		case http.StatusOK:
			if !r.ok {
				t.Error("200 response with ok=false")
			}
			served++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d", r.code)
		}
	}
	if served == 0 {
		t.Error("no request served")
	}
	if served+rejected != clients {
		t.Errorf("served %d + rejected %d != %d clients", served, rejected, clients)
	}
	t.Logf("served=%d rejected=%d (budget %d, queue %d)", served, rejected, s.Budget(), s.QueueCap())

	if err := s.rt.Wait(); err != nil {
		t.Errorf("runtime drain after burst: %v", err)
	}
	var admitted, okCount int64
	for _, ep := range []*endpointStats{&s.fib, &s.loop, &s.chol} {
		admitted += ep.requests.Load()
		okCount += ep.ok.Load()
	}
	if admitted != int64(served) || okCount != int64(served) {
		t.Errorf("endpoint accounting: admitted=%d ok=%d, want both %d", admitted, okCount, served)
	}
}

// TestTimeoutParamCannotExceedCeiling checks the timeout query parameter
// only tightens the operator-configured default deadline: a client asking
// for a huge timeout still gets the server ceiling.
func TestTimeoutParamCannotExceedCeiling(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(1), xkaapi.WithoutPinning())
	t.Cleanup(func() { rt.Close() })
	s := New(Config{Runtime: rt, DefaultTimeout: 50 * time.Millisecond})
	defer s.Close()

	for _, tc := range []struct {
		query string
		max   time.Duration // deadline must be within [now, now+max]
	}{
		{"/fib?n=10&timeout=8760h", 50 * time.Millisecond}, // capped at ceiling
		{"/fib?n=10&timeout=10ms", 10 * time.Millisecond},  // tighter than ceiling: honored
		{"/fib?n=10", 50 * time.Millisecond},               // no param: ceiling
	} {
		r := httptest.NewRequest("GET", tc.query, nil)
		before := time.Now()
		ctx, cancel, err := s.requestCtx(r)
		if err != nil {
			t.Fatalf("requestCtx(%s): %v", tc.query, err)
		}
		dl, ok := ctx.Deadline()
		cancel()
		if !ok {
			t.Errorf("requestCtx(%s): no deadline, want one", tc.query)
			continue
		}
		if d := dl.Sub(before); d > tc.max+10*time.Millisecond {
			t.Errorf("requestCtx(%s): deadline in %v, want <= %v", tc.query, d, tc.max)
		}
	}
}

// TestStatsEndpointShape checks /stats is valid JSON with the fields the
// ops side keys on, including the queue and latency surfaces.
func TestStatsEndpointShape(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 7, QueueDepth: 9})

	var raw map[string]json.RawMessage
	if code := getJSON(t, ts.URL+"/stats", &raw); code != http.StatusOK {
		t.Fatalf("GET /stats: status %d", code)
	}
	for _, key := range []string{"workers", "budget", "in_flight", "queue_cap", "queue_depth",
		"draining", "endpoints", "scheduler"} {
		if _, present := raw[key]; !present {
			t.Errorf("/stats missing %q", key)
		}
	}
	var budget, queueCap int
	if err := json.Unmarshal(raw["budget"], &budget); err != nil || budget != 7 {
		t.Errorf("/stats budget = %v (%v), want 7", budget, err)
	}
	if err := json.Unmarshal(raw["queue_cap"], &queueCap); err != nil || queueCap != 9 {
		t.Errorf("/stats queue_cap = %v (%v), want 9", queueCap, err)
	}
	var eps map[string]map[string]json.RawMessage
	if err := json.Unmarshal(raw["endpoints"], &eps); err != nil {
		t.Fatalf("/stats endpoints: %v", err)
	}
	for _, key := range []string{"latency", "queue_wait", "server_cancelled", "queued", "batched"} {
		if _, present := eps["fib"][key]; !present {
			t.Errorf("/stats endpoints.fib missing %q", key)
		}
	}
	var lat map[string]json.RawMessage
	if err := json.Unmarshal(eps["fib"]["latency"], &lat); err != nil {
		t.Fatalf("/stats endpoints.fib.latency: %v", err)
	}
	for _, key := range []string{"count", "p50_ns", "p90_ns", "p99_ns", "max_ns"} {
		if _, present := lat[key]; !present {
			t.Errorf("/stats endpoints.fib.latency missing %q", key)
		}
	}
	if s.InFlight() != 0 {
		t.Errorf("InFlight = %d at rest, want 0", s.InFlight())
	}
}

// waitFor polls cond until it holds or the deadline elapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
