package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xkaapi"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Runtime == nil {
		cfg.Runtime = xkaapi.New(xkaapi.WithWorkers(4), xkaapi.WithoutPinning())
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if err := cfg.Runtime.CloseErr(); err != nil {
			t.Logf("runtime close: %v", err)
		}
	})
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestEndpointsServeVerifiedJobs drives all three workload endpoints and
// checks each completes one verified job, with the outcomes attributed per
// endpoint in /stats.
func TestEndpointsServeVerifiedJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, q := range []string{
		"/fib?n=18",
		"/loop?n=100000",
		"/cholesky?n=128&nb=32&verify=1",
	} {
		var rep reply
		if code := getJSON(t, ts.URL+q, &rep); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", q, code)
		}
		if !rep.OK {
			t.Errorf("GET %s: ok=false (error=%q residual=%v result=%d)",
				q, rep.Error, rep.Residual, rep.Result)
		}
		if rep.Job.Executed == 0 {
			t.Errorf("GET %s: job executed 0 tasks", q)
		}
		if rep.Job.Cancelled != 0 || rep.Job.Panicked != 0 {
			t.Errorf("GET %s: job stats %+v, want no cancels/panics", q, rep.Job)
		}
	}

	var st StatsReply
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("GET /stats: status %d", code)
	}
	for _, ep := range []string{"fib", "loop", "cholesky"} {
		es := st.Endpoints[ep]
		if es.Requests != 1 || es.OK != 1 || es.TaskExecuted == 0 {
			t.Errorf("endpoint %s stats = %+v, want 1 ok request with executed tasks", ep, es)
		}
	}
	if st.Scheduler.Spawned < 3 {
		t.Errorf("scheduler live stats report %d submitted roots, want >= 3", st.Scheduler.Spawned)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %v (status %v)", err, resp)
	}
	resp.Body.Close()
}

// TestBackpressure429 fills the admission budget and checks that the next
// request is rejected with 429 + Retry-After before any work is submitted,
// then succeeds once a slot frees up.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 2})

	// Hold both budget slots the way two in-flight jobs would.
	s.slots <- struct{}{}
	s.slots <- struct{}{}

	resp, err := http.Get(ts.URL + "/fib?n=10")
	if err != nil {
		t.Fatalf("GET /fib: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget GET /fib: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}

	// Free one slot: the endpoint serves again.
	<-s.slots
	var rep reply
	if code := getJSON(t, ts.URL+"/fib?n=10", &rep); code != http.StatusOK || !rep.OK {
		t.Fatalf("after release GET /fib: status %d ok=%v", code, rep.OK)
	}
	<-s.slots

	if got := s.fib.rejected.Load(); got != 1 {
		t.Errorf("fib rejected count = %d, want 1", got)
	}
	if s.fib.taskExecuted.Load() == 0 {
		t.Error("fib task_executed = 0 after a served request")
	}
}

// TestDeadlineCancelsCholesky submits a Cholesky factorization far larger
// than its deadline allows and checks the deadline actually stops the job:
// 504 status, and the job's (and endpoint's) Cancelled counters grow
// because remaining tile tasks were skipped.
func TestDeadlineCancelsCholesky(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	var rep reply
	code := getJSON(t, ts.URL+"/cholesky?n=768&nb=32&timeout=2ms", &rep)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("GET /cholesky with 2ms deadline: status %d, want 504 (reply %+v)", code, rep)
	}
	if rep.Job.Cancelled == 0 {
		t.Errorf("deadline-exceeded job cancelled 0 tasks, want > 0 (job %+v)", rep.Job)
	}
	if s.chol.cancelled.Load() != 1 {
		t.Errorf("cholesky endpoint cancelled = %d, want 1", s.chol.cancelled.Load())
	}
	if s.chol.taskCancelled.Load() == 0 {
		t.Error("cholesky endpoint task_cancelled = 0, want > 0")
	}

	// The pool survives the cancelled job: a small request still completes.
	if code := getJSON(t, ts.URL+"/cholesky?n=64&nb=32&verify=1", &rep); code != http.StatusOK || !rep.OK {
		t.Fatalf("after cancel GET /cholesky: status %d ok=%v", code, rep.OK)
	}
}

// TestDrainRefusesNewWork checks drain semantics: after StartDrain the
// health check and the workload endpoints report 503, so load balancers
// stop routing and no new jobs are admitted.
func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	s.StartDrain()
	for _, q := range []string{"/healthz", "/fib?n=10"} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s while draining: status %d, want 503", q, resp.StatusCode)
		}
	}
	if !s.Draining() {
		t.Error("Draining() = false after StartDrain")
	}
}

// TestBadRequests checks parameter validation: over-cap sizes and malformed
// timeouts are rejected with 400 before touching the budget.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxFib: 30})

	for _, q := range []string{
		"/fib?n=31",
		"/fib?n=-1",
		"/fib?n=x",
		"/fib?timeout=bogus",
		"/loop?n=999999999999",
		"/cholesky?n=0",
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", q, resp.StatusCode)
		}
	}
	if n := s.fib.requests.Load() + s.loop.requests.Load() + s.chol.requests.Load(); n != 0 {
		t.Errorf("bad requests consumed %d budget admissions, want 0", n)
	}
}

// TestMixedBurstUnderBudget hammers the server with a concurrent mixed
// workload wider than the budget: every request must end as either a
// verified 200 or a clean 429, and once drained the per-endpoint
// accounting must add up.
func TestMixedBurstUnderBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 3})

	const clients = 12
	type outcome struct {
		code int
		ok   bool
	}
	results := make(chan outcome, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			q := []string{"/fib?n=16", "/loop?n=50000", "/cholesky?n=96&nb=32"}[c%3]
			resp, err := http.Get(ts.URL + q)
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			defer resp.Body.Close()
			var rep reply
			ok := json.NewDecoder(resp.Body).Decode(&rep) == nil && rep.OK
			results <- outcome{code: resp.StatusCode, ok: ok}
		}(c)
	}
	served, rejected := 0, 0
	for i := 0; i < clients; i++ {
		r := <-results
		switch r.code {
		case http.StatusOK:
			if !r.ok {
				t.Error("200 response with ok=false")
			}
			served++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d", r.code)
		}
	}
	if served == 0 {
		t.Error("no request served")
	}
	if served+rejected != clients {
		t.Errorf("served %d + rejected %d != %d clients", served, rejected, clients)
	}
	t.Logf("served=%d rejected=%d (budget %d)", served, rejected, s.Budget())

	if err := s.rt.Wait(); err != nil {
		t.Errorf("runtime drain after burst: %v", err)
	}
	var admitted, okCount int64
	for _, ep := range []*endpointStats{&s.fib, &s.loop, &s.chol} {
		admitted += ep.requests.Load()
		okCount += ep.ok.Load()
	}
	if admitted != int64(served) || okCount != int64(served) {
		t.Errorf("endpoint accounting: admitted=%d ok=%d, want both %d", admitted, okCount, served)
	}
}

// TestTimeoutParamCannotExceedCeiling checks the timeout query parameter
// only tightens the operator-configured default deadline: a client asking
// for a huge timeout still gets the server ceiling.
func TestTimeoutParamCannotExceedCeiling(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(1), xkaapi.WithoutPinning())
	t.Cleanup(func() { rt.Close() })
	s := New(Config{Runtime: rt, DefaultTimeout: 50 * time.Millisecond})

	for _, tc := range []struct {
		query string
		max   time.Duration // deadline must be within [now, now+max]
	}{
		{"/fib?n=10&timeout=8760h", 50 * time.Millisecond}, // capped at ceiling
		{"/fib?n=10&timeout=10ms", 10 * time.Millisecond},  // tighter than ceiling: honored
		{"/fib?n=10", 50 * time.Millisecond},               // no param: ceiling
	} {
		r := httptest.NewRequest("GET", tc.query, nil)
		before := time.Now()
		ctx, cancel, err := s.requestCtx(r)
		if err != nil {
			t.Fatalf("requestCtx(%s): %v", tc.query, err)
		}
		dl, ok := ctx.Deadline()
		cancel()
		if !ok {
			t.Errorf("requestCtx(%s): no deadline, want one", tc.query)
			continue
		}
		if d := dl.Sub(before); d > tc.max+10*time.Millisecond {
			t.Errorf("requestCtx(%s): deadline in %v, want <= %v", tc.query, d, tc.max)
		}
	}
}

// TestStatsEndpointShape checks /stats is valid JSON with the fields the
// ops side keys on.
func TestStatsEndpointShape(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 7})

	var raw map[string]json.RawMessage
	if code := getJSON(t, ts.URL+"/stats", &raw); code != http.StatusOK {
		t.Fatalf("GET /stats: status %d", code)
	}
	for _, key := range []string{"workers", "budget", "in_flight", "draining", "endpoints", "scheduler"} {
		if _, present := raw[key]; !present {
			t.Errorf("/stats missing %q", key)
		}
	}
	var budget int
	if err := json.Unmarshal(raw["budget"], &budget); err != nil || budget != 7 {
		t.Errorf("/stats budget = %v (%v), want 7", budget, err)
	}
	if s.InFlight() != 0 {
		t.Errorf("InFlight = %d at rest, want 0", s.InFlight())
	}
}
