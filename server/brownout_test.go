package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"xkaapi"
)

// sloServer builds a test server whose brownout controller never ticks on
// its own (Tick = 1h), so tests drive evaluation windows deterministically
// through step().
func sloServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.SLO.Tick == 0 {
		cfg.SLO.Tick = time.Hour
	}
	s, ts := newTestServer(t, cfg)
	return s, ts.URL
}

// record feeds one evaluation window's worth of synthetic latencies and
// evaluates it.
func record(s *Server, ep *endpointStats, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		ep.latency.Record(d)
	}
	s.brow.step()
}

// TestBrownoutHysteresis walks the controller through a full episode: two
// violating windows enter degraded mode (one is not enough), the batch
// window widens, /healthz flips to "degraded" with a reason naming the
// endpoint, and only three consecutive windows below 80% of the SLO — not
// the first good one — recover it.
func TestBrownoutHysteresis(t *testing.T) {
	s, url := sloServer(t, Config{SLO: SLO{FibP99: 20 * time.Millisecond}})

	healthz := func() string {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d, want 200 (degraded must stay routable)", resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	record(s, &s.fib, 50*time.Millisecond, 10) // one bad window: not yet
	if s.Degraded() {
		t.Fatal("degraded after a single violating window — no hysteresis")
	}
	record(s, &s.fib, 50*time.Millisecond, 10) // second consecutive: enter
	if !s.Degraded() {
		t.Fatal("two consecutive violating windows did not enter degraded mode")
	}
	if got := s.fibBatch.winMul.Load(); got != brownoutBatchMul {
		t.Fatalf("degraded batch window multiplier = %d, want %d", got, brownoutBatchMul)
	}
	if body := healthz(); !strings.HasPrefix(body, "degraded") || !strings.Contains(body, "fib") {
		t.Fatalf("degraded /healthz body = %q, want degraded + fib reason", body)
	}

	// Recovery needs brownoutExitTicks consecutive windows at <= 80% SLO.
	record(s, &s.fib, time.Millisecond, 10)
	record(s, &s.fib, time.Millisecond, 10)
	if !s.Degraded() {
		t.Fatal("recovered after only two good windows — exit hysteresis broken")
	}
	record(s, &s.fib, time.Millisecond, 10)
	if s.Degraded() {
		t.Fatal("three good windows did not recover the endpoint")
	}
	if got := s.fibBatch.winMul.Load(); got != 1 {
		t.Fatalf("recovered batch window multiplier = %d, want 1", got)
	}
	if body := healthz(); !strings.HasPrefix(body, "ok") {
		t.Fatalf("recovered /healthz body = %q, want ok", body)
	}
}

// TestBrownoutNearSLOHoldsState: a window between 80% and 100% of the SLO
// is neither a violation nor a recovery — the current mode holds and both
// streaks restart, so a load hovering at the threshold cannot flap.
func TestBrownoutNearSLOHoldsState(t *testing.T) {
	s, _ := sloServer(t, Config{SLO: SLO{FibP99: 20 * time.Millisecond}})
	record(s, &s.fib, 50*time.Millisecond, 10)
	record(s, &s.fib, 50*time.Millisecond, 10)
	if !s.Degraded() {
		t.Fatal("setup: not degraded")
	}
	for i := 0; i < 10; i++ {
		record(s, &s.fib, 18*time.Millisecond, 10) // 90% of SLO: dead band
	}
	if !s.Degraded() {
		t.Fatal("dead-band windows recovered the endpoint")
	}
}

// TestBrownoutShedsOversized: a degraded endpoint refuses requests above
// half its size cap with 503 + Retry-After before taking a budget slot,
// while small requests keep flowing; /stats counts the sheds.
func TestBrownoutShedsOversized(t *testing.T) {
	s, url := sloServer(t, Config{MaxFib: 30, SLO: SLO{FibP99: 20 * time.Millisecond}})
	s.brow.epFor("fib").setDegraded(true)
	s.brow.degraded.Store(true)

	resp, err := http.Get(url + "/fib?n=20") // > 30/2: shed
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized request on degraded endpoint: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	resp, err = http.Get(url + "/fib?n=10") // <= 30/2: still served
	if err != nil {
		t.Fatal(err)
	}
	var rep reply
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rep.OK {
		t.Fatalf("small request on degraded endpoint: status %d ok=%v, want 200 verified", resp.StatusCode, rep.OK)
	}

	if got := s.fib.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	sr := statsReply(t, url)
	if !sr.Degraded || sr.Endpoints["fib"].Shed != 1 {
		t.Fatalf("/stats degraded=%v fib.shed=%d, want true/1", sr.Degraded, sr.Endpoints["fib"].Shed)
	}
}

func statsReply(t *testing.T, url string) StatsReply {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestRetryAfterFromDrainRate: the advertised backoff is the queue depth
// over the observed grant rate, rounded up and clamped to [1, 30].
func TestRetryAfterFromDrainRate(t *testing.T) {
	q := newAdmitQueue(1, 8)
	cases := []struct {
		rate   float64
		queued int
		want   int
	}{
		{rate: 2, queued: 5, want: 3},     // ceil(6/2)
		{rate: 10, queued: 3, want: 1},    // ceil(4/10) -> floor 1
		{rate: 0.1, queued: 10, want: 30}, // ceil(11/0.1)=110 -> clamp 30
		{rate: 0, queued: 4, want: 1},     // no signal: the old default
	}
	for _, tc := range cases {
		q.mu.Lock()
		q.lastRate = tc.rate
		q.queued = tc.queued
		q.grants = 0
		q.winStart = time.Now()
		q.mu.Unlock()
		if got := q.retryAfterSecs(); got != tc.want {
			t.Fatalf("retryAfterSecs(rate=%v queued=%d) = %d, want %d",
				tc.rate, tc.queued, got, tc.want)
		}
	}
}

// TestPanicRetriesServeThrough: with task-panic injection armed and
// PanicRetries generous, every request must still answer a verified 200 —
// the 500s a panic would cause are absorbed by server-side resubmission,
// and /stats records the retries.
func TestPanicRetriesServeThrough(t *testing.T) {
	inj := xkaapi.NewChaosInjector(xkaapi.ChaosScenario{Seed: 11, TaskPanic: 0.01})
	rt := xkaapi.New(xkaapi.WithWorkers(4), xkaapi.WithoutPinning(), xkaapi.WithChaos(inj))
	s, ts := newTestServer(t, Config{Runtime: rt, PanicRetries: 25, Chaos: inj})
	for i := 0; i < 30; i++ {
		resp, err := http.Get(ts.URL + "/fib?n=8")
		if err != nil {
			t.Fatal(err)
		}
		var rep reply
		json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !rep.OK {
			t.Fatalf("request %d: status %d ok=%v error=%q — panic retries not absorbing failures",
				i, resp.StatusCode, rep.OK, rep.Error)
		}
	}
	retried := s.fib.panicRetried.Load()
	if retried == 0 {
		t.Fatal("1% panic rate across 30 fib trees never triggered a retry")
	}
	if c := inj.Counts(); c.TaskPanics == 0 {
		t.Fatalf("injector fired no task panics: %+v", c)
	}
}
