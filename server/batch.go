package server

import (
	"context"
	"sync/atomic"
	"time"

	"xkaapi"
)

// batchItem carries one admitted request into a batcher: its problem size,
// its request context (checked before the item's subtree is spawned, so a
// dead request costs the batch nothing), and the channel its sub-result
// comes back on. done is buffered, so result delivery never blocks on a
// handler that already gave up.
type batchItem struct {
	n    int
	ctx  context.Context
	done chan batchResult
}

// batchResult is one item's share of a completed batch job.
type batchResult struct {
	result int64           // the item's sub-result
	size   int             // how many requests rode this batch
	stats  xkaapi.JobStats // the whole batch job's task counters
	err    error           // the batch job's error, if it failed
}

// batcher coalesces concurrent small-job requests into one batched root
// job, in the channel-fed count-or-timeout style: the collector goroutine
// takes the first item, gathers whatever else is already pending plus
// anything arriving within the window (up to max items), and hands the
// batch to run. run dispatches the batch job asynchronously, so collection
// never stalls behind execution — while one batch computes, the next one
// fills.
//
// The point is amortization: N requests in a window become one SubmitCtx —
// one job allocation, one inbox transit, one failure domain, one context
// registration — with one fan-out spawning N sub-tasks that the scheduler
// load-balances like any other task tree. Per-request overhead that PR 3
// paid N times is paid once per batch.
type batcher struct {
	ch     chan *batchItem
	stop   chan struct{}
	window time.Duration
	winMul atomic.Int64 // brownout widening: effective window = window * winMul
	max    int
	run    func([]*batchItem)
}

func newBatcher(window time.Duration, max int, run func([]*batchItem)) *batcher {
	b := &batcher{
		ch:     make(chan *batchItem, 2*max),
		stop:   make(chan struct{}),
		window: window,
		max:    max,
		run:    run,
	}
	b.winMul.Store(1)
	go b.loop()
	return b
}

// widen scales the coalescing window by mul (1 restores the configured
// window). The brownout controller widens a degraded endpoint's window so
// scarce capacity is spent on fewer, larger batch jobs.
func (b *batcher) widen(mul int64) {
	if mul < 1 {
		mul = 1
	}
	b.winMul.Store(mul)
}

// submit hands an item to the collector. It reports false if the batcher
// is stopped or the item's context dies first; the caller then falls back
// to the direct one-job-per-request path.
func (b *batcher) submit(it *batchItem) bool {
	select {
	case b.ch <- it:
		return true
	case <-it.ctx.Done():
		return false
	case <-b.stop:
		return false
	}
}

// close stops the collector. Items already collected are still dispatched;
// close is only called once no handler can submit anymore (after drain, or
// after the test server is torn down).
func (b *batcher) close() { close(b.stop) }

func (b *batcher) loop() {
	for {
		select {
		case <-b.stop:
			return
		case first := <-b.ch:
			b.run(b.fill([]*batchItem{first}))
		}
	}
}

// fill gathers items for one batch: everything already pending, then
// whatever arrives within the window, capped at max.
func (b *batcher) fill(items []*batchItem) []*batchItem {
	for len(items) < b.max {
		select {
		case it := <-b.ch:
			items = append(items, it)
			continue
		default:
		}
		break
	}
	window := b.window * time.Duration(b.winMul.Load())
	if len(items) >= b.max || window <= 0 {
		return items
	}
	timer := time.NewTimer(window)
	defer timer.Stop()
	for len(items) < b.max {
		select {
		case it := <-b.ch:
			items = append(items, it)
		case <-timer.C:
			return items
		case <-b.stop:
			return items
		}
	}
	return items
}

// batchContext builds the batch job's context: alive while any member
// request is alive, cancelled (watcher-free, via context.AfterFunc on each
// member) once every member's context has died — so one slow client cannot
// be cancelled by its batch neighbours, and a batch whose every requester
// is gone stops computing. The returned stop releases the member hooks;
// the batch dispatcher calls it when the job completes.
func batchContext(items []*batchItem) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	var live atomic.Int64
	live.Store(int64(len(items)))
	stops := make([]func() bool, len(items))
	for i, it := range items {
		stops[i] = context.AfterFunc(it.ctx, func() {
			if live.Add(-1) == 0 {
				cancel()
			}
		})
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// runBatch folds items into one batched root job: one SubmitCtx, one
// fan-out. Each live item gets one spawned sub-task computing kernel(n)
// into its own slot; items whose request died before the fan-out are
// skipped for free. The job is dispatched asynchronously: a goroutine
// waits for it, folds the batch's task counters into the endpoint once
// (not once per member), and delivers each member's sub-result.
//
// Failure semantics are those of one job, because the batch is one job: a
// panic in any member's subtree fails the whole batch, and every member
// reports the error. The small-job kernels (/fib, /loop) do not panic in
// normal operation, and each member still verifies its own sub-result, so
// the blast radius trade is taken for the amortization.
// A batch that fails with a *PanicError is resubmitted whole, up to
// Config.PanicRetries times: the batch is one job, so the retry is too.
// Members whose request died between attempts are skipped at the next
// fan-out like at the first, and every attempt's task counters are folded
// in (the cancelled work was real work).
func (s *Server) runBatch(ep *endpointStats, items []*batchItem,
	kernel func(p *xkaapi.Proc, n int, out *int64)) {
	bctx, release := batchContext(items)
	results := make([]int64, len(items))
	submit := func() *xkaapi.Job {
		return s.rt.SubmitCtx(bctx, func(p *xkaapi.Proc) {
			for i := range items {
				it := items[i]
				if it.ctx.Err() != nil {
					continue // requester already gone: skip its subtree
				}
				out := &results[i]
				p.Spawn(func(p *xkaapi.Proc) { kernel(p, it.n, out) })
			}
			p.Sync()
		})
	}
	job := submit()
	go func() {
		defer release()
		var jerr error
		var js xkaapi.JobStats
		for attempt := 0; ; attempt++ {
			jerr = job.Wait()
			js = job.Stats()
			ep.taskExecuted.Add(js.Executed)
			ep.taskCancelled.Add(js.Cancelled)
			ep.taskPanicked.Add(js.Panicked)
			if !s.retryOnPanic(bctx, jerr, attempt) {
				break
			}
			ep.panicRetried.Add(1)
			job = submit()
		}
		if len(items) > 1 {
			ep.batches.Add(1)
			ep.batched.Add(int64(len(items)))
		}
		for i, it := range items {
			it.done <- batchResult{result: results[i], size: len(items), stats: js, err: jerr}
		}
	}()
}

// fibKernel is fibTask as a batch member.
func fibKernel(p *xkaapi.Proc, n int, out *int64) { fibTask(p, out, n) }

// loopKernel is the /loop worksharing sum as a batch member: the adaptive
// ForEach runs inside this member's sub-task, so concurrent members'
// loops coexist in one job and are load-balanced together.
func loopKernel(p *xkaapi.Proc, n int, out *int64) {
	var sum atomic.Int64
	jctx := p.Context()
	xkaapi.Foreach(p, 0, n, func(_ *xkaapi.Proc, lo, hi int) {
		if jctx.Err() != nil {
			return
		}
		s := int64(0)
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		sum.Add(s)
	})
	*out = sum.Load()
}
