package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"xkaapi"
	"xkaapi/internal/latency"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose client disconnected before the response; the job was cancelled
// through the request context.
const StatusClientClosedRequest = 499

// Config parameterizes a Server. Everything has serving defaults: with a
// nil Runtime the server builds (and owns) one from the Workers and Shards
// knobs.
type Config struct {
	// Runtime is the shared worker pool every request's job runs on. Nil
	// builds a runtime from Workers and Shards; the caller can reach it
	// through Server.Runtime (for the Wait/CloseErr drain sequence).
	Runtime *xkaapi.Runtime
	// Workers sets the total worker count when the server builds the
	// runtime itself (Runtime nil). Zero selects one per core. Ignored
	// when Runtime is provided.
	Workers int
	// Shards splits the self-built runtime into that many scheduler
	// shards behind the load-aware router (see xkaapi.WithShards); the
	// Workers are spread evenly across them. Zero or one keeps a single
	// pool. Ignored when Runtime is provided.
	Shards int
	// Budget bounds the jobs in flight at once. Zero or negative selects
	// 2x the worker count.
	Budget int
	// QueueDepth bounds the admission queue: requests beyond the budget
	// wait here (FIFO, under their own deadline) instead of being
	// rejected; only when the queue is also full does the server answer
	// 429. Zero selects 4x the budget; negative disables queueing
	// (instant 429, the pre-queue behavior).
	QueueDepth int
	// BatchWindow is the coalescing window for the small-job endpoints
	// (/fib, /loop): concurrent requests arriving within it are folded
	// into one batched root job. Zero selects 500µs; negative disables
	// batching (one job per request).
	BatchWindow time.Duration
	// BatchMax caps how many requests one batch may coalesce. Zero or
	// negative selects 8.
	BatchMax int
	// DefaultTimeout is the per-request deadline applied when the client
	// does not send a timeout parameter. Zero means no default deadline
	// (the request context still cancels on client disconnect).
	DefaultTimeout time.Duration
	// MaxFib, MaxLoop, MaxChol cap the per-request problem sizes; a request
	// above its cap is a 400. Zeros select 40, 50_000_000 and 2048.
	MaxFib, MaxLoop, MaxChol int
	// SLO enables the brownout controller: per-endpoint p99 targets the
	// server degrades gracefully against (shedding oversized requests,
	// widening batch windows, reporting "degraded" from /healthz) instead
	// of violating silently. The zero SLO disables the controller.
	SLO SLO
	// PanicRetries resubmits a request's job up to N times when it fails
	// with a *xkaapi.PanicError (a crashed task, injected or real), as long
	// as the request's own deadline still stands. Zero disables retries: a
	// panic is a 500, the pre-chaos behavior.
	PanicRetries int
	// Chaos arms the server-layer fault-injection site (handler latency
	// after admission) with the given injector — normally the same injector
	// the runtime was built with (xkaapi.WithChaos), so one seed drives the
	// whole stack. Nil disables injection at zero cost.
	Chaos *xkaapi.ChaosInjector
}

// endpointStats aggregates one endpoint's outcomes. All counters are
// atomics and the histograms are lock-free: they are bumped from
// concurrent handlers and read by /stats while the server runs.
type endpointStats struct {
	requests        atomic.Int64 // admitted (budget acquired)
	ok              atomic.Int64 // 200s
	rejected        atomic.Int64 // 429s (budget and queue full)
	failed          atomic.Int64 // job failures other than cancellation (500s)
	cancelled       atomic.Int64 // request deadline exceeded or client disconnected
	serverCancelled atomic.Int64 // server-side cancellation (Job.Cancel, drain): not a client disconnect

	queued  atomic.Int64 // requests that waited in the admission queue
	batches atomic.Int64 // coalesced batches dispatched (size > 1)
	batched atomic.Int64 // requests served via a coalesced batch

	shed         atomic.Int64 // oversized requests refused while degraded (503)
	panicRetried atomic.Int64 // panic-failed jobs resubmitted (Config.PanicRetries)

	taskExecuted  atomic.Int64 // per-job stats, summed over requests
	taskCancelled atomic.Int64
	taskPanicked  atomic.Int64

	latency   latency.Histogram // end-to-end: admission to response status
	queueWait latency.Histogram // time spent parked in the admission queue
}

// EndpointStats is the JSON form of one endpoint's aggregates in /stats.
type EndpointStats struct {
	Requests        int64 `json:"requests"`
	OK              int64 `json:"ok"`
	Rejected        int64 `json:"rejected"`
	Failed          int64 `json:"failed"`
	Cancelled       int64 `json:"cancelled"`
	ServerCancelled int64 `json:"server_cancelled"`

	Queued  int64 `json:"queued"`
	Batches int64 `json:"batches"`
	Batched int64 `json:"batched"`

	Shed         int64 `json:"shed"`
	PanicRetried int64 `json:"panic_retried"`

	TaskExecuted  int64 `json:"task_executed"`
	TaskCancelled int64 `json:"task_cancelled"`
	TaskPanicked  int64 `json:"task_panicked"`

	Latency   latency.Summary `json:"latency"`
	QueueWait latency.Summary `json:"queue_wait"`
}

func (es *endpointStats) snapshot() EndpointStats {
	return EndpointStats{
		Requests:        es.requests.Load(),
		OK:              es.ok.Load(),
		Rejected:        es.rejected.Load(),
		Failed:          es.failed.Load(),
		Cancelled:       es.cancelled.Load(),
		ServerCancelled: es.serverCancelled.Load(),
		Queued:          es.queued.Load(),
		Batches:         es.batches.Load(),
		Batched:         es.batched.Load(),
		Shed:            es.shed.Load(),
		PanicRetried:    es.panicRetried.Load(),
		TaskExecuted:    es.taskExecuted.Load(),
		TaskCancelled:   es.taskCancelled.Load(),
		TaskPanicked:    es.taskPanicked.Load(),
		Latency:         es.latency.Summary(),
		QueueWait:       es.queueWait.Summary(),
	}
}

// Server turns HTTP requests into runtime jobs. Create it with New; it
// implements http.Handler.
type Server struct {
	rt       *xkaapi.Runtime
	mux      *http.ServeMux
	adq      *admitQueue // in-flight budget + bounded FIFO admission queue
	budget   int
	queueCap int
	timeout  time.Duration
	maxFib   int
	maxLoop  int
	maxChol  int
	draining atomic.Bool

	chaos        *xkaapi.ChaosInjector // nil: handler-delay site disabled
	panicRetries int
	brow         *brownout // nil: brownout controller disabled

	fibBatch  *batcher // nil when batching is disabled
	loopBatch *batcher

	fib  endpointStats
	loop endpointStats
	chol endpointStats
}

// New builds a Server over cfg.Runtime, or over a runtime of its own when
// cfg.Runtime is nil (shaped by cfg.Workers and cfg.Shards). Either way
// the caller owns the runtime's lifecycle — reach a self-built one through
// Server.Runtime for the shutdown order described at StartDrain. Close
// stops the coalescing collectors once no more requests can arrive.
func New(cfg Config) *Server {
	if cfg.Runtime == nil {
		opts := []xkaapi.Option{}
		if cfg.Workers > 0 {
			opts = append(opts, xkaapi.WithWorkers(cfg.Workers))
		}
		if cfg.Shards > 1 {
			opts = append(opts, xkaapi.WithShards(cfg.Shards))
		}
		cfg.Runtime = xkaapi.New(opts...)
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 2 * cfg.Runtime.Workers()
	}
	queueCap := cfg.QueueDepth
	switch {
	case queueCap == 0:
		queueCap = 4 * budget
	case queueCap < 0:
		queueCap = 0 // queue disabled: instant 429 past the budget
	}
	s := &Server{
		rt:       cfg.Runtime,
		mux:      http.NewServeMux(),
		adq:      newAdmitQueue(budget, queueCap),
		budget:   budget,
		queueCap: queueCap,
		timeout:  cfg.DefaultTimeout,
		maxFib:   cfg.MaxFib,
		maxLoop:  cfg.MaxLoop,
		maxChol:  cfg.MaxChol,

		chaos:        cfg.Chaos,
		panicRetries: cfg.PanicRetries,
	}
	if s.maxFib <= 0 {
		s.maxFib = 40
	}
	if s.maxLoop <= 0 {
		s.maxLoop = 50_000_000
	}
	if s.maxChol <= 0 {
		s.maxChol = 2048
	}
	window := cfg.BatchWindow
	if window == 0 {
		window = 500 * time.Microsecond
	}
	batchMax := cfg.BatchMax
	if batchMax <= 0 {
		batchMax = 8
	}
	if window > 0 {
		s.fibBatch = newBatcher(window, batchMax, func(items []*batchItem) {
			s.runBatch(&s.fib, items, fibKernel)
		})
		s.loopBatch = newBatcher(window, batchMax, func(items []*batchItem) {
			s.runBatch(&s.loop, items, loopKernel)
		})
	}
	if cfg.SLO.enabled() {
		s.brow = newBrownout(s, cfg.SLO) // after the batchers: it widens them
	}
	s.mux.HandleFunc("GET /fib", s.handleFib)
	s.mux.HandleFunc("GET /loop", s.handleLoop)
	s.mux.HandleFunc("GET /cholesky", s.handleCholesky)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Runtime returns the pool the server submits to — the one from Config, or
// the one the server built itself when Config.Runtime was nil. The caller
// drains and closes it (Runtime.Wait, Runtime.CloseErr) after the HTTP
// server has shut down.
func (s *Server) Runtime() *xkaapi.Runtime { return s.rt }

// Budget returns the configured in-flight job budget.
func (s *Server) Budget() int { return s.budget }

// QueueCap returns the admission queue bound (0 when queueing is disabled).
func (s *Server) QueueCap() int { return s.queueCap }

// InFlight returns the number of budget slots currently held.
func (s *Server) InFlight() int { return s.adq.inFlight() }

// QueueDepth returns the number of requests currently waiting for a slot.
func (s *Server) QueueDepth() int { return s.adq.depth() }

// StartDrain switches the server into draining mode: /healthz reports 503
// so load balancers stop routing here, new workload requests are refused
// with 503, and every request waiting in the admission queue is refused the
// same way. The draining flag and slot grants share one mutex, so once
// StartDrain returns no request — racing or future — is admitted. The
// caller then shuts the http.Server down (which waits for in-flight
// handlers) and drains the runtime with Runtime.Wait / Runtime.CloseErr.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.adq.startDrain()
}

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the request-coalescing collectors and the brownout
// controller. Call it after the HTTP server is shut down (no handler can
// submit anymore); batches already collected still complete.
func (s *Server) Close() {
	if s.brow != nil {
		s.brow.close()
	}
	if s.fibBatch != nil {
		s.fibBatch.close()
	}
	if s.loopBatch != nil {
		s.loopBatch.close()
	}
}

// Degraded reports whether the brownout controller currently has any
// endpoint in degraded mode (always false without an SLO).
func (s *Server) Degraded() bool { return s.brow != nil && s.brow.degraded.Load() }

// chaosDelay is the server-layer injection site: an admitted handler
// sleeps for the scenario's handler-delay pulse before submitting, driving
// the latency SLO (and therefore the brownout controller) without touching
// the scheduler. Free when no injector is armed.
func (s *Server) chaosDelay() {
	if cz := s.chaos; cz != nil {
		if d := cz.HandlerDelay(); d > 0 {
			time.Sleep(d)
		}
	}
}

// retryOnPanic reports whether a failed job attempt should be resubmitted:
// the failure is a *xkaapi.PanicError (a crashed task — the one failure
// mode where a fresh attempt can honestly succeed), the request context is
// still alive to use the result, and Config.PanicRetries attempts remain.
func (s *Server) retryOnPanic(ctx context.Context, err error, attempt int) bool {
	if err == nil || attempt >= s.panicRetries || ctx.Err() != nil {
		return false
	}
	var pe *xkaapi.PanicError
	return errors.As(err, &pe)
}

// admit applies admission control for one workload request: refuse with
// 503 while draining; otherwise take a budget slot, waiting in the bounded
// FIFO queue under the request's own deadline when the budget is busy.
// Only a full queue is refused outright (429 + Retry-After); a deadline
// expiring or the client vanishing while queued answers 504/499 without
// the slot ever being held. On true the caller must release() the slot
// when the job is done.
func (s *Server) admit(ep *endpointStats, w http.ResponseWriter, ctx context.Context) bool {
	code, wait, queuedWait := s.adq.acquire(ctx)
	if queuedWait {
		ep.queued.Add(1)
		ep.queueWait.Record(wait)
	}
	switch code {
	case admitOK:
		ep.requests.Add(1)
		return true
	case admitDraining:
		http.Error(w, "server draining", http.StatusServiceUnavailable)
	case admitQueueFull:
		ep.rejected.Add(1)
		// Advertise the observed time-to-a-free-slot (queue depth over the
		// measured grant rate, rounded up and bounded), not a constant: a
		// client backing off for exactly as long as the drain needs retries
		// once, where a flat 1s either hammers a slow drain or oversleeps a
		// fast one.
		w.Header().Set("Retry-After", strconv.Itoa(s.adq.retryAfterSecs()))
		http.Error(w, "job budget and admission queue exhausted", http.StatusTooManyRequests)
	case admitDeadline:
		ep.cancelled.Add(1)
		http.Error(w, "deadline expired in admission queue", http.StatusGatewayTimeout)
	case admitDisconnect:
		ep.cancelled.Add(1)
		// The client is gone; the status is for logs and middleware.
		http.Error(w, "client closed request while queued", StatusClientClosedRequest)
	}
	return false
}

func (s *Server) release() { s.adq.release() }

// requestCtx derives the job context for one request: the request context
// (cancelled by client disconnect and server shutdown), tightened by an
// explicit timeout query parameter and the server's default deadline. The
// parameter can only tighten the operator-configured ceiling, never exceed
// it — otherwise a client could hold a budget slot indefinitely.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	d := s.timeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		pd, err := time.ParseDuration(v)
		if err != nil || pd <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q", v)
		}
		if d == 0 || pd < d {
			d = pd
		}
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(ctx, d)
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	return ctx, cancel, nil
}

// finish folds one request outcome into the endpoint aggregates — outcome
// counters and the end-to-end latency histogram — and maps it to an HTTP
// status: 200 on verified success, 504 on deadline, 499 on client
// disconnect, 503 on a server-side cancellation or a closing runtime, 500
// on a panic, any other failure, or a result that failed verification
// (resultOK false with a nil error) — so wrong results are visible in the
// status code and in /stats, not only in the response's ok field.
//
// Cancellation is disambiguated against reqCtx (the *request's* context,
// not the derived job context): a job error of context.Canceled or
// xkaapi.ErrCanceled only means the *client* went away when the request
// context itself died. A server-side Job.Cancel or a drain-time
// cancellation reaches here with a live request context and is counted as
// server_cancelled (503: the client did nothing wrong and should retry
// elsewhere) instead of being mislabeled a 499 client-closed-request.
func (s *Server) finish(ep *endpointStats, start time.Time, reqCtx context.Context, err error, resultOK bool) int {
	ep.latency.Record(time.Since(start))
	switch {
	case err == nil && resultOK:
		ep.ok.Add(1)
		return http.StatusOK
	case err == nil: // completed but failed verification
		ep.failed.Add(1)
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		ep.cancelled.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, xkaapi.ErrCanceled):
		if reqCtx != nil && reqCtx.Err() != nil {
			ep.cancelled.Add(1)
			return StatusClientClosedRequest
		}
		ep.serverCancelled.Add(1)
		return http.StatusServiceUnavailable
	case errors.Is(err, xkaapi.ErrClosed):
		ep.failed.Add(1)
		return http.StatusServiceUnavailable
	default:
		ep.failed.Add(1)
		return http.StatusInternalServerError
	}
}

// finishJob is finish plus the per-job task counters, for the
// one-job-per-request paths (/cholesky, and /fib & /loop with batching
// disabled). Batched requests must not use it: their batch job's counters
// are folded in once per batch by runBatch.
func (s *Server) finishJob(ep *endpointStats, start time.Time, reqCtx context.Context,
	js xkaapi.JobStats, err error, resultOK bool) int {
	ep.taskExecuted.Add(js.Executed)
	ep.taskCancelled.Add(js.Cancelled)
	ep.taskPanicked.Add(js.Panicked)
	return s.finish(ep, start, reqCtx, err, resultOK)
}

// reply is the JSON body of every workload response, successful or not.
// Result, Gflops and Residual are pointers so a legitimate zero — fib(0),
// a verified residual of exactly 0 — is serialized instead of being
// dropped by omitempty while ok is true.
type reply struct {
	Endpoint  string `json:"endpoint"`
	N         int    `json:"n"`
	NB        int    `json:"nb,omitempty"`
	Batch     int    `json:"batch,omitempty"` // batch size when the request rode a coalesced job
	Result    *int64 `json:"result,omitempty"`
	Gflops    *flt   `json:"gflops,omitempty"`
	Residual  *flt   `json:"residual,omitempty"`
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns"`

	Job xkaapi.JobStats `json:"job"`
}

// flt marshals with a short fixed precision so responses stay readable.
type flt float64

func (f flt) MarshalJSON() ([]byte, error) {
	return []byte(strconv.FormatFloat(float64(f), 'g', 6, 64)), nil
}

func fltPtr(v float64) *flt { f := flt(v); return &f }

func i64Ptr(v int64) *int64 { return &v }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // write error means the client is gone; nothing to do
}

// intParam parses an integer query parameter with a default and a cap.
func intParam(r *http.Request, name string, def, max int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	if n > max {
		return 0, fmt.Errorf("%s %d exceeds cap %d", name, n, max)
	}
	return n, nil
}

// handleHealthz reports three states: 503 "draining" (stop routing here —
// the only non-200 state), 200 "degraded" with one reason line per active
// brownout cause (keep routing, but the server is shedding load), and 200
// "ok". Degraded stays 200 deliberately: a browned-out server is still the
// best place for the traffic it accepts, and load balancers that only
// check the status code keep working unchanged.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Degraded() {
		fmt.Fprintln(w, "degraded")
		fmt.Fprintln(w, s.brow.reasonText())
		return
	}
	fmt.Fprintln(w, "ok")
}

// StatsReply is the JSON body of /stats.
type StatsReply struct {
	Workers    int  `json:"workers"`
	Shards     int  `json:"shards"`
	Budget     int  `json:"budget"`
	InFlight   int  `json:"in_flight"`
	QueueCap   int  `json:"queue_cap"`
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining"`
	Degraded   bool `json:"degraded"`
	// DegradedReasons lists the active brownout causes (one string per
	// endpoint over SLO, plus queue saturation), empty when healthy.
	DegradedReasons []string                 `json:"degraded_reasons,omitempty"`
	Endpoints       map[string]EndpointStats `json:"endpoints"`
	// Scheduler carries the full live scheduler counters — summed over
	// every shard on a sharded runtime: the task-path counters
	// (Spawned/Executed/Cancelled/...) are per-worker padded atomics, so
	// /stats reports real task throughput while jobs are in flight — each
	// value is a monotone lower bound; exact balance (spawned == executed
	// + cancelled) holds once the pool drains, and on a sharded runtime
	// only at this aggregate level (migrated jobs are counted where they
	// ran; see ShardStats).
	Scheduler xkaapi.Stats `json:"scheduler"`
	// ShardStats is the per-shard breakdown, present only when the runtime
	// is sharded (shards > 1): one entry per shard, in shard order.
	ShardStats []ShardStatsReply `json:"shard_stats,omitempty"`
}

// ShardStatsReply is one shard's entry in StatsReply: where jobs were
// placed (live_roots, inbox_len), how many migrated in or out through
// cross-shard stealing, and the shard's own task counters.
type ShardStatsReply struct {
	Shard     int   `json:"shard"`
	Workers   int   `json:"workers"`
	InboxLen  int64 `json:"inbox_len"`
	LiveRoots int64 `json:"live_roots"`
	StolenIn  int64 `json:"stolen_in"`
	StolenOut int64 `json:"stolen_out"`
	Executed  int64 `json:"executed"`
	Spawned   int64 `json:"spawned"`
	Cancelled int64 `json:"cancelled"`
	Parks     int64 `json:"parks"`
	// Health supervision (see core.Fleet): whether the shard is currently
	// routed around, how many healthy<->unhealthy transitions it has made
	// (one full trip-and-recover episode is 2), and how many placements
	// were diverted away while it was unhealthy.
	Unhealthy         bool  `json:"unhealthy"`
	HealthTransitions int64 `json:"health_transitions"`
	RoutedAround      int64 `json:"routed_around"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := StatsReply{
		Workers:    s.rt.Workers(),
		Shards:     s.rt.Shards(),
		Budget:     s.budget,
		InFlight:   s.InFlight(),
		QueueCap:   s.queueCap,
		QueueDepth: s.QueueDepth(),
		Draining:   s.draining.Load(),
		Degraded:   s.Degraded(),
		Endpoints: map[string]EndpointStats{
			"fib":      s.fib.snapshot(),
			"loop":     s.loop.snapshot(),
			"cholesky": s.chol.snapshot(),
		},
		Scheduler: s.rt.Stats(),
	}
	if reply.Degraded {
		reply.DegradedReasons = s.brow.reasonLines()
	}
	if reply.Shards > 1 {
		for _, ss := range s.rt.ShardStats() {
			reply.ShardStats = append(reply.ShardStats, ShardStatsReply{
				Shard:     ss.Shard,
				Workers:   ss.Workers,
				InboxLen:  ss.InboxLen,
				LiveRoots: ss.LiveRoots,
				StolenIn:  ss.StolenIn,
				StolenOut: ss.StolenOut,
				Executed:  ss.Sched.Executed,
				Spawned:   ss.Sched.Spawned,
				Cancelled: ss.Sched.Cancelled,
				Parks:     ss.Sched.Parks,

				Unhealthy:         ss.Unhealthy,
				HealthTransitions: ss.HealthTransitions,
				RoutedAround:      ss.RoutedAround,
			})
		}
	}
	writeJSON(w, http.StatusOK, reply)
}
