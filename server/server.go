package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"xkaapi"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose client disconnected before the response; the job was cancelled
// through the request context.
const StatusClientClosedRequest = 499

// Config parameterizes a Server. Runtime is required; everything else has
// serving defaults.
type Config struct {
	// Runtime is the shared worker pool every request's job runs on.
	Runtime *xkaapi.Runtime
	// Budget bounds the jobs in flight at once; a request beyond it is
	// rejected with 429. Zero or negative selects 2x the worker count.
	Budget int
	// DefaultTimeout is the per-request deadline applied when the client
	// does not send a timeout parameter. Zero means no default deadline
	// (the request context still cancels on client disconnect).
	DefaultTimeout time.Duration
	// MaxFib, MaxLoop, MaxChol cap the per-request problem sizes; a request
	// above its cap is a 400. Zeros select 40, 50_000_000 and 2048.
	MaxFib, MaxLoop, MaxChol int
}

// endpointStats aggregates one endpoint's outcomes. All fields are atomics:
// they are bumped from concurrent handlers and read by /stats while the
// server runs.
type endpointStats struct {
	requests  atomic.Int64 // admitted (budget acquired)
	ok        atomic.Int64 // 200s
	rejected  atomic.Int64 // 429s (budget full)
	failed    atomic.Int64 // job failures other than cancellation (500s)
	cancelled atomic.Int64 // deadline exceeded or client disconnected

	taskExecuted  atomic.Int64 // per-job stats, summed over requests
	taskCancelled atomic.Int64
	taskPanicked  atomic.Int64
}

// EndpointStats is the JSON form of one endpoint's aggregates in /stats.
type EndpointStats struct {
	Requests  int64 `json:"requests"`
	OK        int64 `json:"ok"`
	Rejected  int64 `json:"rejected"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`

	TaskExecuted  int64 `json:"task_executed"`
	TaskCancelled int64 `json:"task_cancelled"`
	TaskPanicked  int64 `json:"task_panicked"`
}

func (es *endpointStats) snapshot() EndpointStats {
	return EndpointStats{
		Requests:      es.requests.Load(),
		OK:            es.ok.Load(),
		Rejected:      es.rejected.Load(),
		Failed:        es.failed.Load(),
		Cancelled:     es.cancelled.Load(),
		TaskExecuted:  es.taskExecuted.Load(),
		TaskCancelled: es.taskCancelled.Load(),
		TaskPanicked:  es.taskPanicked.Load(),
	}
}

// Server turns HTTP requests into runtime jobs. Create it with New; it
// implements http.Handler.
type Server struct {
	rt       *xkaapi.Runtime
	mux      *http.ServeMux
	slots    chan struct{} // in-flight budget semaphore
	budget   int
	timeout  time.Duration
	maxFib   int
	maxLoop  int
	maxChol  int
	draining atomic.Bool

	fib  endpointStats
	loop endpointStats
	chol endpointStats
}

// New builds a Server over cfg.Runtime. The caller owns the runtime's
// lifecycle (see StartDrain for the shutdown order).
func New(cfg Config) *Server {
	if cfg.Runtime == nil {
		panic("server: Config.Runtime is required")
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 2 * cfg.Runtime.Workers()
	}
	s := &Server{
		rt:      cfg.Runtime,
		mux:     http.NewServeMux(),
		slots:   make(chan struct{}, budget),
		budget:  budget,
		timeout: cfg.DefaultTimeout,
		maxFib:  cfg.MaxFib,
		maxLoop: cfg.MaxLoop,
		maxChol: cfg.MaxChol,
	}
	if s.maxFib <= 0 {
		s.maxFib = 40
	}
	if s.maxLoop <= 0 {
		s.maxLoop = 50_000_000
	}
	if s.maxChol <= 0 {
		s.maxChol = 2048
	}
	s.mux.HandleFunc("GET /fib", s.handleFib)
	s.mux.HandleFunc("GET /loop", s.handleLoop)
	s.mux.HandleFunc("GET /cholesky", s.handleCholesky)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Budget returns the configured in-flight job budget.
func (s *Server) Budget() int { return s.budget }

// InFlight returns the number of budget slots currently held.
func (s *Server) InFlight() int { return len(s.slots) }

// StartDrain switches the server into draining mode: /healthz reports 503
// so load balancers stop routing here, and new workload requests are
// refused with 503 while admitted ones run to completion. The caller then
// shuts the http.Server down (which waits for in-flight handlers) and
// drains the runtime with Runtime.Wait / Runtime.CloseErr.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit applies admission control for one workload request: refuse with 503
// while draining, otherwise try to take a budget slot and refuse with 429 +
// Retry-After when the budget is exhausted. On success the caller must
// release() the slot when the job is done.
func (s *Server) admit(ep *endpointStats, w http.ResponseWriter) bool {
	if s.draining.Load() {
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return false
	}
	select {
	case s.slots <- struct{}{}:
		ep.requests.Add(1)
		return true
	default:
		ep.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "job budget exhausted", http.StatusTooManyRequests)
		return false
	}
}

func (s *Server) release() { <-s.slots }

// requestCtx derives the job context for one request: the request context
// (cancelled by client disconnect and server shutdown), tightened by an
// explicit timeout query parameter and the server's default deadline. The
// parameter can only tighten the operator-configured ceiling, never exceed
// it — otherwise a client could hold a budget slot indefinitely.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	d := s.timeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		pd, err := time.ParseDuration(v)
		if err != nil || pd <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q", v)
		}
		if d == 0 || pd < d {
			d = pd
		}
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(ctx, d)
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	return ctx, cancel, nil
}

// finishJob folds one completed job into the endpoint aggregates and maps
// its outcome to an HTTP status: 200 on verified success, 504 on deadline,
// 499 on client disconnect, 503 on a closing runtime, 500 on a panic, any
// other failure, or a result that failed verification (resultOK false with
// a nil error) — so wrong results are visible in the status code and in
// /stats, not only in the response's ok field.
func (s *Server) finishJob(ep *endpointStats, js xkaapi.JobStats, err error, resultOK bool) int {
	ep.taskExecuted.Add(js.Executed)
	ep.taskCancelled.Add(js.Cancelled)
	ep.taskPanicked.Add(js.Panicked)
	switch {
	case err == nil && resultOK:
		ep.ok.Add(1)
		return http.StatusOK
	case err == nil: // completed but failed verification
		ep.failed.Add(1)
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		ep.cancelled.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		ep.cancelled.Add(1)
		return StatusClientClosedRequest
	case errors.Is(err, xkaapi.ErrClosed):
		ep.failed.Add(1)
		return http.StatusServiceUnavailable
	default:
		ep.failed.Add(1)
		return http.StatusInternalServerError
	}
}

// reply is the JSON body of every workload response, successful or not.
type reply struct {
	Endpoint  string `json:"endpoint"`
	N         int    `json:"n"`
	NB        int    `json:"nb,omitempty"`
	Result    int64  `json:"result,omitempty"`
	Gflops    flt    `json:"gflops,omitempty"`
	Residual  flt    `json:"residual,omitempty"`
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns"`

	Job xkaapi.JobStats `json:"job"`
}

// flt marshals with a short fixed precision so responses stay readable.
type flt float64

func (f flt) MarshalJSON() ([]byte, error) {
	return []byte(strconv.FormatFloat(float64(f), 'g', 6, 64)), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // write error means the client is gone; nothing to do
}

// intParam parses an integer query parameter with a default and a cap.
func intParam(r *http.Request, name string, def, max int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	if n > max {
		return 0, fmt.Errorf("%s %d exceeds cap %d", name, n, max)
	}
	return n, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// StatsReply is the JSON body of /stats.
type StatsReply struct {
	Workers   int                      `json:"workers"`
	Budget    int                      `json:"budget"`
	InFlight  int                      `json:"in_flight"`
	Draining  bool                     `json:"draining"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Scheduler carries the full live scheduler counters: the task-path
	// counters (Spawned/Executed/Cancelled/...) are per-worker padded
	// atomics, so /stats reports real task throughput while jobs are in
	// flight — each value is a monotone lower bound; exact balance
	// (spawned == executed + cancelled) holds once the pool drains.
	Scheduler xkaapi.Stats `json:"scheduler"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsReply{
		Workers:  s.rt.Workers(),
		Budget:   s.budget,
		InFlight: s.InFlight(),
		Draining: s.draining.Load(),
		Endpoints: map[string]EndpointStats{
			"fib":      s.fib.snapshot(),
			"loop":     s.loop.snapshot(),
			"cholesky": s.chol.snapshot(),
		},
		Scheduler: s.rt.LiveStats(),
	})
}
