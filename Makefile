GO ?= go

# Tier-1 verify: everything must build and every package's tests must pass.
.PHONY: build test
build:
	$(GO) build ./...
test:
	$(GO) test ./...

# Race tier: the concurrency-critical packages under the race detector —
# the shared failure state machine (internal/jobfail), the scheduler core,
# the parallel algorithms that hammer it, the HTTP front-end, the public
# facade, and every paradigm layer embedding the jobfail protocol (cilk,
# gomp, komp, tbbsched, quark). -short keeps the stress tests at their
# trimmed sizes.
RACE_PKGS = . ./internal/jobfail ./internal/core ./par ./server ./cilk ./gomp ./komp ./tbbsched ./quark
.PHONY: race
race:
	$(GO) test -race -short $(RACE_PKGS)

.PHONY: vet
vet:
	$(GO) vet ./...

# fmt-check fails if any file is not gofmt-clean (use `gofmt -w .` to fix).
.PHONY: fmt-check
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: files need formatting:"; echo "$$unformatted"; exit 1; \
	fi

# check is the local CI entry point: static gates, tier-1, the race tier,
# and the serve/load integration pipeline.
.PHONY: check
check: fmt-check vet build test race integration

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x ./internal/core

# bench-json records the core benchmark trajectory: it runs the scheduler
# benchmarks with allocation counts and writes BENCH_<n>.json (next free n)
# via cmd/xkbenchjson, so perf is comparable PR to PR. Non-gating in CI.
# Time-based benchtime: iteration-count runs are dominated by warmup noise
# and would make the trajectory useless for spotting regressions.
.PHONY: bench-json
bench-json:
	$(GO) test -bench=. -benchtime=1s -benchmem -run='^$$' ./internal/core | $(GO) run ./cmd/xkbenchjson

# bench-diff compares the two most recent BENCH_<n>.json artifacts with
# xkbenchjson's diff mode and prints the per-benchmark delta table. It is a
# report, not a gate: it exits 0 when there is nothing to compare and never
# fails on a regression — CI surfaces the table in the job summary so a
# regression is visible per PR, while the decision stays with the reviewer.
.PHONY: bench-diff
bench-diff:
	@set -- $$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2); \
	if [ $$# -lt 2 ]; then \
		echo "bench-diff: fewer than two BENCH_<n>.json artifacts, nothing to compare"; \
	else \
		$(GO) run ./cmd/xkbenchjson diff "$$1" "$$2"; \
	fi

# integration drives the real network pipeline: build xkserve, start serve,
# run the verified mixed workload + backpressure probe against it (including
# the live /stats probe during an in-flight request), then SIGTERM mid-load
# and require a clean drain (exit 0, balanced counters).
.PHONY: integration
integration:
	./integration.sh
