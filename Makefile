GO ?= go

# Tier-1 verify: everything must build and every package's tests must pass.
.PHONY: build test
build:
	$(GO) build ./...
test:
	$(GO) test ./...

# Race tier: the concurrency-critical packages under the race detector —
# the shared failure state machine (internal/jobfail), the scheduler core,
# the fault-injection harness (internal/chaos), the parallel algorithms
# that hammer it, the HTTP front-end, the public facade, and every paradigm
# layer embedding the jobfail protocol (cilk, gomp, komp, tbbsched, quark).
# -short keeps the stress tests at their trimmed sizes.
RACE_PKGS = . ./internal/jobfail ./internal/core ./internal/chaos ./par ./server ./cilk ./gomp ./komp ./tbbsched ./quark
.PHONY: race
race:
	$(GO) test -race -short $(RACE_PKGS)

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the module's own static analyzers (internal/analysis) through
# the cmd/xkvet multichecker: jobfailsingleton, taskctx, hotpath and
# atomicpad — the concurrency invariants stock vet cannot see. The binary
# is built once into bin/ and rebuilt only when its sources change, so CI
# can cache it.
XKVET = bin/xkvet
XKVET_SRCS = $(shell find cmd/xkvet internal/analysis -name '*.go' -not -path '*/testdata/*')
$(XKVET): $(XKVET_SRCS)
	@mkdir -p bin
	$(GO) build -o $(XKVET) ./cmd/xkvet
.PHONY: lint
lint: $(XKVET)
	./$(XKVET) ./...

# fmt-check fails if any file is not gofmt-clean (use `gofmt -w .` to fix).
# Analyzer fixtures under */testdata hold deliberately bad code and are
# exempt.
.PHONY: fmt-check
fmt-check:
	@unformatted=$$(find . -name '*.go' -not -path '*/testdata/*' -exec gofmt -l {} +); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: files need formatting:"; echo "$$unformatted"; exit 1; \
	fi

# check is the local CI entry point: static gates, tier-1, the race tier,
# and the serve/load integration pipeline.
.PHONY: check
check: fmt-check vet lint build test race bench-gate integration

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x ./internal/core

# bench-json records the core benchmark trajectory: it runs the scheduler
# benchmarks with allocation counts and writes BENCH_<n>.json (next free n)
# via cmd/xkbenchjson, so perf is comparable PR to PR. Non-gating in CI.
# Time-based benchtime: iteration-count runs are dominated by warmup noise
# and would make the trajectory useless for spotting regressions.
.PHONY: bench-json
bench-json:
	$(GO) test -bench=. -benchtime=1s -benchmem -run='^$$' ./internal/core | $(GO) run ./cmd/xkbenchjson

# bench-gate is the gating benchmark smoke: a fast fixed-iteration run
# (-benchtime=100x, so it costs seconds per PR) whose allocs/op — which is
# deterministic, unlike container wall-clock — is enforced against the
# committed budgets in bench_gates.json by xkbenchjson's gate mode. A
# budget overrun or a deleted gated benchmark fails the build; ns/op drift
# beyond ns_warn_pct against the newest BENCH_<n>.json only warns. Budgets
# are calibrated at this exact benchtime: short runs amortize warm-up
# allocations (free-list slabs, pool fills, inbox growth) differently than
# the 1s bench-json runs do.
.PHONY: bench-gate
bench-gate:
	$(GO) test -bench=. -benchtime=100x -benchmem -run='^$$' ./internal/core | $(GO) run ./cmd/xkbenchjson gate -gates bench_gates.json

# bench-diff compares the two most recent BENCH_<n>.json artifacts with
# xkbenchjson's diff mode and prints the per-benchmark delta table. The
# `-latest` flag makes xkbenchjson itself pick the pair by numeric index
# (a shell `sort -t_ -k2 -n` mis-orders once the suffix grows past one
# digit, e.g. BENCH_9.json vs BENCH_10.json). It is a report, not a gate:
# it exits 0 when there is nothing to compare and never fails on a
# regression — CI surfaces the table in the job summary so a regression
# is visible per PR, while the decision stays with the reviewer.
.PHONY: bench-diff
bench-diff:
	@$(GO) run ./cmd/xkbenchjson diff -latest

# integration drives the real network pipeline: build xkserve, start serve,
# run the verified mixed workload + backpressure probe against it (including
# the live /stats probe during an in-flight request), then SIGTERM mid-load
# and require a clean drain (exit 0, balanced counters).
.PHONY: integration
integration:
	./integration.sh
