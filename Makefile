GO ?= go

# Tier-1 verify: everything must build and every package's tests must pass.
.PHONY: build test
build:
	$(GO) build ./...
test:
	$(GO) test ./...

# Race tier: the concurrency-critical packages (scheduler core and the
# parallel algorithms that hammer it) under the race detector, -short so the
# stress tests use their trimmed sizes.
.PHONY: race
race:
	$(GO) test -race -short ./internal/core ./par

.PHONY: vet
vet:
	$(GO) vet ./...

# fmt-check fails if any file is not gofmt-clean (use `gofmt -w .` to fix).
.PHONY: fmt-check
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: files need formatting:"; echo "$$unformatted"; exit 1; \
	fi

# check is the local CI entry point: static gates, tier-1, the race tier.
.PHONY: check
check: fmt-check vet build test race

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x ./internal/core
