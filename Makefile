GO ?= go

# Tier-1 verify: everything must build and every package's tests must pass.
.PHONY: build test
build:
	$(GO) build ./...
test:
	$(GO) test ./...

# Race tier: the concurrency-critical packages (scheduler core and the
# parallel algorithms that hammer it) under the race detector, -short so the
# stress tests use their trimmed sizes.
.PHONY: race
race:
	$(GO) test -race -short ./internal/core ./par

.PHONY: vet
vet:
	$(GO) vet ./...

# check is the local CI entry point: tier-1 plus the race tier.
.PHONY: check
check: build test race

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x ./internal/core
