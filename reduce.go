package xkaapi

// reduceSlot holds one worker's private accumulator, padded so neighbouring
// workers do not share a cache line while accumulating.
type reduceSlot[T any] struct {
	v   T
	set bool
	_   [64]byte
}

// ForeachReduce runs a parallel loop that folds a result. Each worker
// lazily initializes a private accumulator with init, threads it through its
// chunks via body, and the per-worker results are combined (in worker-id
// order) after the loop. combine must be associative and commutative, and
// init must return the identity of combine, because how iterations are
// grouped onto workers depends on stealing.
//
// This is the reduction support of kaapic_foreach: the paper's CW
// (cumulative write) access made convenient for loops.
func ForeachReduce[T any](p *Proc, lo, hi int, opt LoopOpts,
	init func() T,
	body func(p *Proc, lo, hi int, acc T) T,
	combine func(a, b T) T,
) T {
	slots := make([]reduceSlot[T], p.NumWorkers())
	ForeachOpts(p, lo, hi, opt, func(w *Proc, l, h int) {
		s := &slots[w.ID()]
		if !s.set {
			s.v = init()
			s.set = true
		}
		s.v = body(w, l, h, s.v)
	})
	acc := init()
	for i := range slots {
		if slots[i].set {
			acc = combine(acc, slots[i].v)
		}
	}
	return acc
}
