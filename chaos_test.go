package xkaapi_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"xkaapi"
	"xkaapi/komp"
	"xkaapi/par"
	"xkaapi/quark"
)

// TestChaosSweepAcrossParadigms is the seeded failure sweep of the
// robustness harness: with panic injection armed at every stage boundary the
// scheduler owns — spawn (runBody before a fork-join or dataflow body),
// steal (injected panics land on thieves as often as on owners), adaptive
// split/extract (the loop-panic site in runChunk) and batch-style fan-out
// (one root spawning many independent children, the shape server batching
// submits) — every paradigm layer that rides the shared core pool must keep
// its contract: each Wait returns (no hangs), failures surface only as
// *PanicError carrying the injected value (or cancellations downstream of
// one), the pool keeps serving, and the drained fleet balances Spawned ==
// Executed + Cancelled.
//
// Layers driven: xkaapi itself (fork-join, dataflow, Foreach), par
// (Do/ForEach/Sort), quark (NewOnRuntime dependency chains) and komp
// (NewTeamOnRuntime regions) — the four that can share one externally built
// runtime. cilk, gomp and tbbsched own private engines with no injector and
// are covered by their own failure tests.
func TestChaosSweepAcrossParadigms(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		for _, shards := range []int{1, 2} {
			inj := xkaapi.NewChaosInjector(xkaapi.ChaosScenario{
				Seed:      seed,
				TaskPanic: 0.02,
				LoopPanic: 0.02,
				StealFail: 0.2,
			})
			rt := xkaapi.New(
				xkaapi.WithWorkers(4),
				xkaapi.WithShards(shards),
				xkaapi.WithSeed(seed),
				xkaapi.WithoutPinning(),
				xkaapi.WithChaos(inj),
			)
			sweepOnce(t, rt, inj)
			rt.Close()
			s := rt.Stats()
			if s.Spawned != s.Executed+s.Cancelled {
				t.Fatalf("seed %d shards %d: imbalance spawned=%d executed=%d cancelled=%d",
					seed, shards, s.Spawned, s.Executed, s.Cancelled)
			}
		}
	}
}

// checkChaosErr accepts the outcomes a chaos-injected failure may surface
// as: nil (the draws missed this job), a *PanicError whose value is the
// injected marker, or — only when the layer's region observed a concurrent
// failure — a cancellation wrapping one.
func checkChaosErr(t *testing.T, layer string, err error) (failed bool) {
	t.Helper()
	if err == nil {
		return false
	}
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("%s: failed with %T (%v), want *PanicError", layer, err, err)
	}
	return true
}

func sweepOnce(t *testing.T, rt *xkaapi.Runtime, inj *xkaapi.ChaosInjector) {
	var failures atomic.Int64
	var wg sync.WaitGroup
	run := func(layer string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if checkChaosErr(t, layer, fn()) {
					failures.Add(1)
				}
			}
		}()
	}

	// xkaapi fork-join: spawn/steal boundaries.
	run("forkjoin", func() error {
		return rt.Run(func(p *xkaapi.Proc) {
			var fib func(p *xkaapi.Proc, r *int64, n int)
			fib = func(p *xkaapi.Proc, r *int64, n int) {
				if n < 2 {
					*r = int64(n)
					return
				}
				var a, b int64
				p.Spawn(func(p *xkaapi.Proc) { fib(p, &a, n-1) })
				fib(p, &b, n-2)
				p.Sync()
				*r = a + b
			}
			var r int64
			fib(p, &r, 10)
		})
	})

	// xkaapi dataflow: a produce → transform → consume chain per job.
	run("dataflow", func() error {
		return rt.Run(func(p *xkaapi.Proc) {
			var h xkaapi.Handle
			data := make([]int64, 256)
			p.SpawnTask(func(*xkaapi.Proc) {
				for i := range data {
					data[i] = int64(i)
				}
			}, xkaapi.Write(&h))
			p.SpawnTask(func(*xkaapi.Proc) {
				for i := range data {
					data[i] *= 2
				}
			}, xkaapi.ReadWrite(&h))
			var sum int64
			p.SpawnTask(func(*xkaapi.Proc) {
				for _, v := range data {
					sum += v
				}
			}, xkaapi.Read(&h))
			p.Sync()
		})
	})

	// xkaapi adaptive loop: split/extract boundary via the loop-panic site.
	run("foreach", func() error {
		return rt.Run(func(p *xkaapi.Proc) {
			xkaapi.ForeachGrain(p, 0, 4096, 32, func(*xkaapi.Proc, int, int) {})
		})
	})

	// Batch-style fan-out: one root, many independent children — the shape
	// the server's request coalescing submits.
	run("batch", func() error {
		return rt.Run(func(p *xkaapi.Proc) {
			for i := 0; i < 32; i++ {
				p.Spawn(func(*xkaapi.Proc) {})
			}
			p.Sync()
		})
	})

	// par: algorithmic layer over the same pool.
	run("par", func() error {
		if err := par.Do(rt,
			func(*xkaapi.Proc) {},
			func(*xkaapi.Proc) {},
			func(*xkaapi.Proc) {},
		); err != nil {
			return err
		}
		return par.ForEach(rt, 0, 1024, func(*xkaapi.Proc, int, int) {})
	})

	// quark: dependency-chained insertions on the shared runtime.
	run("quark", func() error {
		q := quark.NewOnRuntime(rt)
		defer q.Delete()
		var x int64
		return q.Run(func(q *quark.Quark) {
			for i := 0; i < 8; i++ {
				q.InsertTask(func() { x++ }, quark.Arg{Ptr: &x, Flag: quark.INOUT})
			}
		})
	})

	// komp: OpenMP-style regions on the borrowed runtime.
	run("komp", func() error {
		tm := komp.NewTeamOnRuntime(rt, 4)
		defer tm.Close()
		return tm.Parallel(func(tc *komp.TC) {
			tc.Single(func() {})
		})
	})

	wg.Wait()

	if failures.Load() == 0 {
		t.Fatal("panic injection armed but no layer ever observed a failure")
	}
	if c := inj.Counts(); c.TaskPanics == 0 && c.LoopPanics == 0 {
		t.Fatalf("no panic site fired: %+v", c)
	}

	// Pool survival: after the storm, clean work still completes (retry past
	// unlucky draws; the sites must not fire every time).
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		ok = rt.Run(func(*xkaapi.Proc) {}) == nil
	}
	if !ok {
		t.Fatal("pool no longer serves clean jobs after the sweep")
	}
}
