package gomp

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelReportsPanic: a panic on one thread of an SPMD region is
// captured as the region's error; every thread reaches the barrier and the
// team stays usable.
func TestParallelReportsPanic(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	err := tm.Parallel(func(tc *TC) {
		if tc.TID() == 1%tc.NumThreads() {
			gompBoom()
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Parallel = %v, want *PanicError", err)
	}
	if pe.Value != "boom-gomp" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "gompBoom") {
		t.Fatalf("stack lacks panic site:\n%s", pe.Stack)
	}
	// The team survives for the next region.
	var n atomic.Int32
	if err := tm.Parallel(func(*TC) { n.Add(1) }); err != nil {
		t.Fatalf("Parallel after panic: %v", err)
	}
	if int(n.Load()) != tm.Threads() {
		t.Fatalf("next region ran on %d/%d threads", n.Load(), tm.Threads())
	}
}

//go:noinline
func gompBoom() { panic("boom-gomp") }

// TestTaskPanicCancelsQueued: a panicking explicit task fails the region
// and the region's remaining queued tasks are skipped. With one thread the
// central queue drains LIFO at the barrier, so the panicking task (queued
// last) runs first and every earlier task must be cancelled.
func TestTaskPanicCancelsQueued(t *testing.T) {
	tm := NewTeam(1)
	defer tm.Close()
	var ran atomic.Int32
	err := tm.Parallel(func(tc *TC) {
		for i := 0; i < 10; i++ {
			tc.Task(func(*TC) { ran.Add(1) })
		}
		tc.Task(func(*TC) { panic("boom-task") })
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-task" {
		t.Fatalf("Parallel = %v, want PanicError(boom-task)", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d queued tasks ran after the region failed (1 thread, LIFO)", ran.Load())
	}
}

// TestStaticScheduleStopsAfterFailure: with the chunked static schedule,
// threads other than the panicking one stop entering their round-robin
// chunks once the region's failure is visible, instead of running their
// whole pre-assigned sequence (the dynamic/guided schedules already stop
// claiming chunks). Thread 1 holds its first chunk until thread 0 has
// armed the panic, so the count below measures chunks run after the
// failure was imminent — independent of how late the scheduler starts
// thread 0.
func TestStaticScheduleStopsAfterFailure(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	const total = 400 // chunks of 1 iteration, 200 per thread
	var armed atomic.Bool
	var executed atomic.Int32
	err := tm.ParallelFor(0, total, Static, 1, func(tid, lo, hi int) {
		if tid == 0 {
			armed.Store(true)
			panic("boom-static")
		}
		for !armed.Load() {
			runtime.Gosched()
		}
		executed.Add(1)
		time.Sleep(200 * time.Microsecond)
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-static" {
		t.Fatalf("ParallelFor = %v, want PanicError(boom-static)", err)
	}
	// Thread 1 owns 200 chunks, each slowed to 200us, and only starts
	// counting once the panic is microseconds away; running even a quarter
	// of its sequence (20ms) after that means pruning is broken.
	if n := executed.Load(); n >= total/4 {
		t.Fatalf("static schedule ran %d chunks after the region failed (want < %d)", n, total/4)
	}
}

// TestParallelForReportsPanic across the three schedules.
func TestParallelForReportsPanic(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		err := tm.ParallelFor(0, 10_000, sched, 8, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 5_000 {
					panic("boom-" + sched.String())
				}
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "boom-"+sched.String() {
			t.Fatalf("%v ParallelFor = %v, want PanicError", sched, err)
		}
	}
}
