package gomp

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelReportsPanic: a panic on one thread of an SPMD region is
// captured as the region's error; every thread reaches the barrier and the
// team stays usable.
func TestParallelReportsPanic(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	err := tm.Parallel(func(tc *TC) {
		if tc.TID() == 1%tc.NumThreads() {
			gompBoom()
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Parallel = %v, want *PanicError", err)
	}
	if pe.Value != "boom-gomp" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "gompBoom") {
		t.Fatalf("stack lacks panic site:\n%s", pe.Stack)
	}
	// The team survives for the next region.
	var n atomic.Int32
	if err := tm.Parallel(func(*TC) { n.Add(1) }); err != nil {
		t.Fatalf("Parallel after panic: %v", err)
	}
	if int(n.Load()) != tm.Threads() {
		t.Fatalf("next region ran on %d/%d threads", n.Load(), tm.Threads())
	}
}

//go:noinline
func gompBoom() { panic("boom-gomp") }

// TestTaskPanicCancelsQueued: a panicking explicit task fails the region
// and the region's remaining queued tasks are skipped. With one thread the
// central queue drains LIFO at the barrier, so the panicking task (queued
// last) runs first and every earlier task must be cancelled.
func TestTaskPanicCancelsQueued(t *testing.T) {
	tm := NewTeam(1)
	defer tm.Close()
	var ran atomic.Int32
	err := tm.Parallel(func(tc *TC) {
		for i := 0; i < 10; i++ {
			tc.Task(func(*TC) { ran.Add(1) })
		}
		tc.Task(func(*TC) { panic("boom-task") })
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-task" {
		t.Fatalf("Parallel = %v, want PanicError(boom-task)", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d queued tasks ran after the region failed (1 thread, LIFO)", ran.Load())
	}
}

// TestStaticScheduleStopsAfterFailure: with the chunked static schedule,
// threads other than the panicking one stop entering their round-robin
// chunks once the region's failure is visible, instead of running their
// whole pre-assigned sequence (the dynamic/guided schedules already stop
// claiming chunks). Thread 1 holds its first chunk until thread 0 has
// armed the panic, so the count below measures chunks run after the
// failure was imminent — independent of how late the scheduler starts
// thread 0.
func TestStaticScheduleStopsAfterFailure(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	const total = 400 // chunks of 1 iteration, 200 per thread
	var armed atomic.Bool
	var executed atomic.Int32
	err := tm.ParallelFor(0, total, Static, 1, func(tid, lo, hi int) {
		if tid == 0 {
			armed.Store(true)
			panic("boom-static")
		}
		for !armed.Load() {
			runtime.Gosched()
		}
		executed.Add(1)
		time.Sleep(200 * time.Microsecond)
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-static" {
		t.Fatalf("ParallelFor = %v, want PanicError(boom-static)", err)
	}
	// Thread 1 owns 200 chunks, each slowed to 200us, and only starts
	// counting once the panic is microseconds away; running even a quarter
	// of its sequence (20ms) after that means pruning is broken.
	if n := executed.Load(); n >= total/4 {
		t.Fatalf("static schedule ran %d chunks after the region failed (want < %d)", n, total/4)
	}
}

// TestParallelForReportsPanic across the three schedules.
func TestParallelForReportsPanic(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		err := tm.ParallelFor(0, 10_000, sched, 8, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 5_000 {
					panic("boom-" + sched.String())
				}
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "boom-"+sched.String() {
			t.Fatalf("%v ParallelFor = %v, want PanicError", sched, err)
		}
	}
}

// TestContextUnblocksOnSiblingPanic: a region thread parked on
// TC.Context's Done channel is released the instant another thread of the
// region panics — the shared failure state machine's fan-out, with the
// region as the failure domain.
func TestContextUnblocksOnSiblingPanic(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	blocked := make(chan struct{})
	var sawCause error
	err := tm.Parallel(func(tc *TC) {
		if tc.TID() == 1 {
			ctx := tc.Context()
			close(blocked)
			<-ctx.Done()
			sawCause = context.Cause(ctx)
			return
		}
		<-blocked // thread 1 is provably parked on Done
		panic("boom-gomp-ctx")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-gomp-ctx" {
		t.Fatalf("Parallel = %v, want PanicError(boom-gomp-ctx)", err)
	}
	if !errors.As(sawCause, &pe) {
		t.Fatalf("context cause = %v, want the region's PanicError", sawCause)
	}
}

// TestParallelCtxDeadline: a region bound to a context with a deadline
// fails with DeadlineExceeded; threads see the deadline via TC.Context and
// queued tasks are pruned after the expiry.
func TestParallelCtxDeadline(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sawDeadline := false
	err := tm.ParallelCtx(ctx, func(tc *TC) {
		if tc.TID() == 0 {
			_, sawDeadline = tc.Context().Deadline()
			<-tc.Context().Done() // deadline-aware region code
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ParallelCtx = %v, want DeadlineExceeded", err)
	}
	if !sawDeadline {
		t.Fatal("region did not observe the deadline via TC.Context")
	}
}

// TestParallelCtxPreCancelled: a pre-cancelled context fails the region
// up front — explicit tasks created inside are skipped — while the SPMD
// bodies still run to the barrier (OpenMP semantics: the region itself is
// not skippable).
func TestParallelCtxPreCancelled(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var taskRan atomic.Int32
	err := tm.ParallelCtx(ctx, func(tc *TC) {
		tc.Single(func() {
			tc.Task(func(*TC) { taskRan.Add(1) })
		})
		tc.Taskwait()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelCtx = %v, want context.Canceled", err)
	}
	if taskRan.Load() != 0 {
		t.Fatalf("%d explicit tasks ran in a pre-cancelled region", taskRan.Load())
	}
}

// TestParallelForCtxCancelledEverySchedule: a pre-cancelled context must
// prune the loop under every schedule branch — including static with an
// explicit chunk, which once bypassed the context binding — and report the
// context error.
func TestParallelForCtxCancelledEverySchedule(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		sched Schedule
		chunk int
	}{{Static, 0}, {Static, 4}, {Dynamic, 4}, {Guided, 4}} {
		var ran atomic.Int32
		err := tm.ParallelForCtx(ctx, 0, 1000, tc.sched, tc.chunk, func(_, lo, hi int) {
			ran.Add(int32(hi - lo))
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v/chunk=%d: ParallelForCtx = %v, want context.Canceled", tc.sched, tc.chunk, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("%v/chunk=%d: %d iterations ran under a pre-cancelled context", tc.sched, tc.chunk, ran.Load())
		}
	}
}
