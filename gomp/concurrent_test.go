package gomp

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentParallelCallers checks that Parallel is safe to call from
// many goroutines at once: regions serialize over the one team and every
// region still sees its full complement of threads and tasks.
func TestConcurrentParallelCallers(t *testing.T) {
	tm := newTeam(t, 4)
	const clients, regions = 6, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < regions; i++ {
				var tasks atomic.Int64
				tm.Parallel(func(tc *TC) {
					for k := 0; k < 8; k++ {
						tc.Task(func(*TC) { tasks.Add(1) })
					}
				})
				if got := tasks.Load(); got != int64(8*tm.Threads()) {
					t.Errorf("tasks=%d want %d", got, 8*tm.Threads())
					return
				}
			}
		}()
	}
	wg.Wait()
}
