package gomp

import (
	"sync/atomic"
	"testing"
)

func newTeam(t *testing.T, n int) *Team {
	t.Helper()
	tm := NewTeam(n)
	t.Cleanup(tm.Close)
	return tm
}

func TestParallelRunsOncePerThread(t *testing.T) {
	tm := newTeam(t, 4)
	var seen [4]int32
	tm.Parallel(func(tc *TC) {
		atomic.AddInt32(&seen[tc.TID()], 1)
	})
	for tid, n := range seen {
		if n != 1 {
			t.Fatalf("thread %d ran %d times", tid, n)
		}
	}
}

func TestParallelForStaticBlock(t *testing.T) {
	tm := newTeam(t, 4)
	const n = 10000
	hits := make([]int32, n)
	tm.ParallelFor(0, n, Static, 0, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("static: iteration %d executed %d times", i, h)
		}
	}
}

func TestParallelForStaticChunk(t *testing.T) {
	tm := newTeam(t, 3)
	const n = 1000
	hits := make([]int32, n)
	owner := make([]int32, n)
	tm.ParallelFor(0, n, Static, 7, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
			atomic.StoreInt32(&owner[i], int32(tid))
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("static,7: iteration %d executed %d times", i, h)
		}
	}
	// Round-robin: chunk c of iteration space belongs to thread (c % p).
	for i := range owner {
		want := int32((i / 7) % 3)
		if owner[i] != want {
			t.Fatalf("iteration %d owned by %d want %d", i, owner[i], want)
		}
	}
}

func TestParallelForDynamic(t *testing.T) {
	tm := newTeam(t, 4)
	const n = 10000
	hits := make([]int32, n)
	tm.ParallelFor(0, n, Dynamic, 16, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("dynamic: iteration %d executed %d times", i, h)
		}
	}
}

func TestParallelForGuided(t *testing.T) {
	tm := newTeam(t, 4)
	const n = 10000
	hits := make([]int32, n)
	var chunks atomic.Int64
	tm.ParallelFor(0, n, Guided, 8, func(tid, lo, hi int) {
		chunks.Add(1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("guided: iteration %d executed %d times", i, h)
		}
	}
	// Guided must use far fewer chunks than dynamic with the same minimum.
	if c := chunks.Load(); c > n/8 {
		t.Fatalf("guided used %d chunks; expected decreasing sizes", c)
	}
}

func TestParallelForEmptyAndReversed(t *testing.T) {
	tm := newTeam(t, 2)
	ran := false
	tm.ParallelFor(3, 3, Dynamic, 1, func(int, int, int) { ran = true })
	tm.ParallelFor(5, 2, Static, 0, func(int, int, int) { ran = true })
	if ran {
		t.Fatal("body ran for empty range")
	}
}

func fibGomp(tc *TC, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	tc.Task(func(tc *TC) { fibGomp(tc, &r1, n-1) })
	fibGomp(tc, &r2, n-2)
	tc.Taskwait()
	*r = r1 + r2
}

func TestTasksFib(t *testing.T) {
	tm := newTeam(t, 4)
	var r int64
	tm.Parallel(func(tc *TC) {
		tc.Single(func() { fibGomp(tc, &r, 18) })
	})
	if r != 2584 {
		t.Fatalf("fib(18)=%d want 2584", r)
	}
}

func TestTasksFibNoThrottle(t *testing.T) {
	tm := newTeam(t, 4)
	tm.Throttle = false
	var r int64
	tm.Parallel(func(tc *TC) {
		tc.Single(func() { fibGomp(tc, &r, 15) })
	})
	if r != 610 {
		t.Fatalf("fib(15)=%d want 610", r)
	}
}

func TestRegionBarrierWaitsTasks(t *testing.T) {
	tm := newTeam(t, 4)
	var n atomic.Int32
	tm.Parallel(func(tc *TC) {
		if tc.TID() == 0 {
			for i := 0; i < 500; i++ {
				tc.Task(func(tc *TC) {
					tc.Task(func(*TC) { n.Add(1) })
				})
			}
		}
	})
	if n.Load() != 500 {
		t.Fatalf("n=%d want 500 (barrier must wait nested tasks)", n.Load())
	}
}

func TestTaskwaitFromImplicitTask(t *testing.T) {
	tm := newTeam(t, 2)
	var n atomic.Int32
	tm.Parallel(func(tc *TC) {
		if tc.TID() == 0 {
			for i := 0; i < 10; i++ {
				tc.Task(func(*TC) { n.Add(1) })
			}
			tc.Taskwait()
			if n.Load() != 10 {
				t.Errorf("taskwait returned with %d/10 tasks done", n.Load())
			}
		}
	})
}

func TestTeamReuseAcrossRegions(t *testing.T) {
	tm := newTeam(t, 3)
	for i := 0; i < 10; i++ {
		var n atomic.Int32
		tm.Parallel(func(*TC) { n.Add(1) })
		if n.Load() != 3 {
			t.Fatalf("region %d ran on %d threads", i, n.Load())
		}
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule names wrong")
	}
}

func TestSingleThreadTeam(t *testing.T) {
	tm := newTeam(t, 1)
	var r int64
	tm.Parallel(func(tc *TC) {
		tc.Single(func() { fibGomp(tc, &r, 12) })
	})
	if r != 144 {
		t.Fatalf("fib(12)=%d", r)
	}
}
