// Package gomp reimplements the scheduling design of an OpenMP-3.0 runtime
// in the style of GCC 4.6's libGOMP, as the OpenMP comparator of the paper's
// Figs. 1, 3 and 7. It provides:
//
//   - parallel regions over a persistent thread team (Team.Parallel);
//   - worksharing loops with the static, dynamic and guided schedules of
//     "#pragma omp for schedule(...)" (Team.ParallelFor);
//   - explicit tasks with taskwait (TC.Task, TC.Taskwait), backed by a
//     central task queue protected by one lock — the design that makes
//     fine-grain OpenMP tasking orders of magnitude more expensive than
//     Cilk-class schedulers (§I of the paper), and collapses under
//     contention as cores are added (Fig. 1: "no time" at 32/48 cores);
//   - the libGOMP 4.6 throttle: when more than 64 tasks per thread are
//     queued, new tasks execute inline (§V of the paper notes this heuristic
//     "can limit the parallelism of the application").
package gomp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi/internal/jobfail"
)

// PanicError is the error a parallel region fails with when code inside it
// — the SPMD body on any thread, or an explicit task — panics. The region
// captures the first panic, cancels its queued tasks, completes the
// barrier and reports the error from Parallel, instead of the panic
// killing the team's threads. It is an alias of the one shared definition
// in internal/jobfail: this comparator keeps libGOMP's scheduling cost
// model, not its own failure protocol.
type (
	PanicError = jobfail.PanicError
)

// Schedule selects a worksharing loop schedule, mirroring the OpenMP
// schedule() clause.
type Schedule int

const (
	// Static partitions [lo,hi) into one contiguous block per thread
	// (chunk <= 0), or round-robin chunks of the given size (chunk > 0).
	Static Schedule = iota
	// Dynamic hands out chunks first-come first-served from a shared
	// counter; the default chunk is 1.
	Dynamic
	// Guided hands out chunks of decreasing size, remaining/(2*threads),
	// never smaller than the given chunk (minimum 1).
	Guided
)

// String names the schedule as it would appear in a schedule() clause.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return "?"
}

// taskThrottle is libGOMP 4.6's cutoff: tasks beyond 64 per thread run
// inline instead of being queued.
const taskThrottle = 64

// Team is a persistent pool of OpenMP-style threads. Parallel regions reuse
// the same threads, as omp parallel does. Parallel (and ParallelFor) may be
// called from concurrent goroutines: regions then serialize over the one
// team, one after the other, mirroring OpenMP's model of a single program
// thread encountering regions — concurrent clients share the team's
// threads instead of needing a team each.
type Team struct {
	p        int
	runMu    sync.Mutex // serializes regions over the team
	cmds     []chan *region
	wg       sync.WaitGroup
	closed   bool
	Throttle bool // apply the 64*threads task throttle (default on via NewTeam)
}

// NewTeam starts a team of n threads (GOMAXPROCS(0) if n <= 0). The calling
// goroutine acts as thread 0 inside regions.
func NewTeam(n int) *Team {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	tm := &Team{p: n, Throttle: true}
	tm.cmds = make([]chan *region, n-1)
	for i := range tm.cmds {
		tm.cmds[i] = make(chan *region)
		tid := i + 1
		tm.wg.Add(1)
		go func(cmd chan *region) {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			defer tm.wg.Done()
			for r := range cmd {
				r.run(tid)
			}
		}(tm.cmds[i])
	}
	return tm
}

// Close terminates the team's threads. It takes the region lock, so a
// Close racing a concurrent Parallel waits for the region to finish
// instead of closing the command channels under it.
func (tm *Team) Close() {
	tm.runMu.Lock()
	defer tm.runMu.Unlock()
	if tm.closed {
		return
	}
	tm.closed = true
	for _, c := range tm.cmds {
		close(c)
	}
	tm.wg.Wait()
}

// Threads returns the team size.
func (tm *Team) Threads() int { return tm.p }

// region is one parallel region instance. Its failure domain — first
// panic wins, queued tasks cancelled, context fan-out to running bodies —
// is the shared jobfail.State; the region is to gomp what a Job is to the
// task schedulers.
type region struct {
	team    *Team
	fn      func(*TC)
	fnsLeft atomic.Int32
	pending atomic.Int64 // queued or running explicit tasks
	qmu     sync.Mutex
	queue   []*gtask
	qlen    atomic.Int64
	done    sync.WaitGroup

	st jobfail.State // failure state machine (first panic / cancel wins)
}

// fail records the first failure of the region and cancels its queued
// tasks (their bodies are skipped at the scheduling points) and the
// region's context.
func (r *region) fail(err error) { r.st.Fail(err) }

// failed reports whether the region has failed (hot-path skip check).
func (r *region) failed() bool { return r.st.Failed() }

// firstErr returns the region's recorded failure, if any.
func (r *region) firstErr() error { return r.st.Err() }

// invoke runs fn behind a panic barrier; a panic fails the region.
func (r *region) invoke(fn func(*TC), tc *TC) {
	defer func() {
		if v := recover(); v != nil {
			r.fail(jobfail.Capture(v))
		}
	}()
	fn(tc)
}

// gtask is one explicit task.
type gtask struct {
	fn       func(*TC)
	parent   *gtask
	children atomic.Int32
}

// TC is the per-thread context inside a parallel region.
type TC struct {
	team *Team
	r    *region
	tid  int
	cur  *gtask
}

// TID returns the OpenMP thread number in [0, NumThreads).
func (tc *TC) TID() int { return tc.tid }

// NumThreads returns the team size.
func (tc *TC) NumThreads() int { return tc.team.p }

// Context returns the region's context: derived from the ParallelCtx
// parent (Background for Parallel), and cancelled — with the failure as
// cause — the instant the region fails on any thread or the parent
// context is cancelled or times out. Long-running region code selects on
// Context().Done() instead of waiting for the next scheduling point.
func (tc *TC) Context() context.Context { return tc.r.st.Context() }

// Parallel executes fn once per team thread (SPMD, like #pragma omp
// parallel) and returns after the implicit barrier at region end, which also
// waits for every explicit task created inside the region. Concurrent
// Parallel calls serialize: the calling goroutine acts as thread 0 of its
// region once the team is free.
//
// A panic on any thread of the region (or in an explicit task) does not
// kill the team: the first panic is captured as a *PanicError, the
// region's queued tasks are cancelled, every thread still reaches the
// barrier, and Parallel returns the error. The team remains usable for
// further regions.
func (tm *Team) Parallel(fn func(tc *TC)) error {
	return tm.ParallelCtx(context.Background(), fn)
}

// ParallelCtx is Parallel bound to a context: if ctx is cancelled (or its
// deadline expires) before the region completes, the region fails with
// ctx's error, its queued tasks are skipped, every thread still reaches
// the barrier, and the error is returned. The region's own context —
// cancelled by the first panic as well — is available to region code as
// TC.Context.
func (tm *Team) ParallelCtx(ctx context.Context, fn func(tc *TC)) error {
	tm.runMu.Lock()
	defer tm.runMu.Unlock()
	if tm.closed {
		panic("gomp: Parallel called after Close")
	}
	r := &region{team: tm, fn: fn}
	r.st.Init(ctx)
	r.fnsLeft.Store(int32(tm.p))
	r.done.Add(tm.p)
	for _, c := range tm.cmds {
		c <- r
	}
	r.run(0)
	r.done.Wait()
	return r.st.Finish()
}

// Single runs fn on thread 0 only, approximating #pragma omp single: other
// threads skip to the region's task-draining barrier.
func (tc *TC) Single(fn func()) {
	if tc.tid == 0 {
		fn()
	}
}

func (r *region) run(tid int) {
	tc := &TC{team: r.team, r: r, tid: tid}
	r.invoke(r.fn, tc)
	r.fnsLeft.Add(-1)
	// Implicit barrier: drain tasks until none are queued or running and
	// every thread reached the barrier.
	idle := 0
	for {
		if t := r.pop(); t != nil {
			tc.runQueued(t)
			idle = 0
			continue
		}
		if r.fnsLeft.Load() == 0 && r.pending.Load() == 0 {
			break
		}
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	r.done.Done()
}

// Task creates an explicit task (#pragma omp task). Under the throttle, or
// whenever too many tasks are queued, the task executes immediately in the
// creating thread (libGOMP's cutoff); otherwise it is pushed on the region's
// central queue.
func (tc *TC) Task(fn func(tc *TC)) {
	r := tc.r
	t := &gtask{fn: fn, parent: tc.cur}
	if t.parent != nil {
		t.parent.children.Add(1)
	}
	if tc.team.Throttle && r.qlen.Load() >= int64(taskThrottle*tc.team.p) {
		tc.runTask(t)
		return
	}
	r.pending.Add(1)
	r.qmu.Lock()
	r.queue = append(r.queue, t)
	r.qmu.Unlock()
	r.qlen.Add(1)
}

// Taskwait waits for the completion of the current task's children
// (#pragma omp taskwait), executing queued tasks — possibly unrelated ones,
// as GCC does at task scheduling points — while it waits.
func (tc *TC) Taskwait() {
	cur := tc.cur
	if cur == nil {
		// Called from the implicit task of the region: wait for all tasks.
		idle := 0
		for tc.r.pending.Load() != 0 {
			if t := tc.r.pop(); t != nil {
				tc.runQueued(t)
				idle = 0
				continue
			}
			idle++
			if idle < 128 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
		}
		return
	}
	idle := 0
	for cur.children.Load() != 0 {
		if t := tc.r.pop(); t != nil {
			tc.runQueued(t)
			idle = 0
			continue
		}
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

func (r *region) pop() *gtask {
	r.qmu.Lock()
	var t *gtask
	if n := len(r.queue); n > 0 {
		t = r.queue[n-1]
		r.queue = r.queue[:n-1]
		r.qlen.Add(-1)
	}
	r.qmu.Unlock()
	return t
}

// runQueued executes a task taken from the region queue and repays its
// pending credit; inlined (throttled) tasks never held one.
func (tc *TC) runQueued(t *gtask) {
	tc.runTask(t)
	tc.r.pending.Add(-1)
}

func (tc *TC) runTask(t *gtask) {
	prev := tc.cur
	tc.cur = t
	// Tasks of a failed region are cancelled: the body is skipped but the
	// counters still drain so the barrier completes.
	if !tc.r.failed() {
		tc.r.invoke(t.fn, tc)
	}
	// OpenMP tasks complete when their body finishes; children are awaited
	// only at taskwait/barrier. The region barrier keeps the count exact.
	idle := 0
	for t.children.Load() != 0 {
		if u := tc.r.pop(); u != nil {
			tc.runQueued(u)
			idle = 0
			continue
		}
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	tc.cur = prev
	if t.parent != nil {
		t.parent.children.Add(-1)
	}
}

// ParallelFor runs body over [lo, hi) across the team with the given
// schedule, equivalent to "#pragma omp parallel for schedule(sched,chunk)".
// body receives the executing thread id and a sub-range. A panicking body
// fails the region and is reported as a *PanicError; with every schedule,
// threads stop claiming (static: entering) chunks once they observe the
// failure, so one panicking thread prunes the whole region's remaining work
// instead of only its own block.
func (tm *Team) ParallelFor(lo, hi int, sched Schedule, chunk int, body func(tid, lo, hi int)) error {
	return tm.ParallelForCtx(context.Background(), lo, hi, sched, chunk, body)
}

// ParallelForCtx is ParallelFor bound to a context: cancelling ctx (or its
// deadline expiring) fails the region, and with every schedule the threads
// stop claiming chunks once they observe the failure — the same pruning a
// body panic triggers. The region's context is visible to bodies through
// TC.Context inside an enclosing ParallelCtx, and here through the pruning
// itself.
func (tm *Team) ParallelForCtx(ctx context.Context, lo, hi int, sched Schedule, chunk int, body func(tid, lo, hi int)) error {
	if hi <= lo {
		return nil
	}
	p := tm.p
	switch sched {
	case Static:
		if chunk <= 0 {
			n := hi - lo
			return tm.ParallelCtx(ctx, func(tc *TC) {
				b := lo + tc.tid*n/p
				e := lo + (tc.tid+1)*n/p
				// One contiguous block per thread: the failure check can
				// only prune whole blocks not yet started.
				if e > b && !tc.r.failed() {
					body(tc.tid, b, e)
				}
			})
		}
		return tm.ParallelCtx(ctx, func(tc *TC) {
			for b := lo + tc.tid*chunk; b < hi; b += p * chunk {
				if tc.r.failed() {
					return // region failed: stop before the next chunk
				}
				e := b + chunk
				if e > hi {
					e = hi
				}
				body(tc.tid, b, e)
			}
		})
	case Dynamic:
		if chunk < 1 {
			chunk = 1
		}
		var next atomic.Int64
		next.Store(int64(lo))
		return tm.ParallelCtx(ctx, func(tc *TC) {
			for !tc.r.failed() {
				b := next.Add(int64(chunk)) - int64(chunk)
				if b >= int64(hi) {
					return
				}
				e := b + int64(chunk)
				if e > int64(hi) {
					e = int64(hi)
				}
				body(tc.tid, int(b), int(e))
			}
		})
	case Guided:
		if chunk < 1 {
			chunk = 1
		}
		var next atomic.Int64
		next.Store(int64(lo))
		return tm.ParallelCtx(ctx, func(tc *TC) {
			for !tc.r.failed() {
				b := next.Load()
				if b >= int64(hi) {
					return
				}
				rem := int64(hi) - b
				c := rem / int64(2*p)
				if c < int64(chunk) {
					c = int64(chunk)
				}
				if c > rem {
					c = rem
				}
				if next.CompareAndSwap(b, b+c) {
					body(tc.tid, int(b), int(b+c))
				}
			}
		})
	}
	return nil
}
