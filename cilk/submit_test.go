package cilk

import (
	"sync"
	"testing"
)

// TestConcurrentSubmitSharedPool checks that many external goroutines can
// multiplex root computations over one pool and that Close drains
// fire-and-forget jobs.
func TestConcurrentSubmitSharedPool(t *testing.T) {
	pool := NewPool(4)
	const clients, jobs = 8, 25
	want := int64(377) // fib(14)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobs; i++ {
				var r int64
				pool.Submit(func(w *Worker) { fibCilk(w, &r, 14) }).Wait()
				if r != want {
					t.Errorf("fib=%d want %d", r, want)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Fire-and-forget: Close must drain these before joining the workers.
	ran := make([]int64, 50)
	for i := range ran {
		pool.Submit(func(w *Worker) { fibCilk(w, &ran[i], 10) })
	}
	pool.Close()
	for i, v := range ran {
		if v != 55 {
			t.Fatalf("job %d: fib=%d want 55 (Close abandoned it)", i, v)
		}
	}
}

func TestSubmitSingleWorker(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	var r int64
	pool.Submit(func(w *Worker) { fibCilk(w, &r, 12) }).Wait()
	if r != 144 {
		t.Fatalf("fib=%d want 144", r)
	}
}
