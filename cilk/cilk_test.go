package cilk

import (
	"sync/atomic"
	"testing"
)

func fibCilk(w *Worker, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	w.Spawn(func(w *Worker) { fibCilk(w, &r1, n-1) })
	fibCilk(w, &r2, n-2)
	w.Sync()
	*r = r1 + r2
}

func TestFib(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		p := NewPool(n)
		var r int64
		p.Run(func(w *Worker) { fibCilk(w, &r, 20) })
		p.Close()
		if r != 6765 {
			t.Fatalf("workers=%d: fib(20)=%d want 6765", n, r)
		}
	}
}

func TestSpawnManyFlat(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	p.Run(func(w *Worker) {
		for i := 1; i <= 1000; i++ {
			i := i
			w.Spawn(func(*Worker) { sum.Add(int64(i)) })
		}
		w.Sync()
		if got := sum.Load(); got != 500500 {
			t.Errorf("after sync sum=%d want 500500", got)
		}
	})
}

func TestImplicitSync(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var n atomic.Int32
	p.Run(func(w *Worker) {
		w.Spawn(func(w *Worker) {
			for i := 0; i < 10; i++ {
				w.Spawn(func(*Worker) { n.Add(1) })
			}
		})
	})
	if n.Load() != 10 {
		t.Fatalf("n=%d want 10 (grandchildren must finish before Run returns)", n.Load())
	}
}

func TestSequentialOrderOneWorker(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Run(func(w *Worker) {
		w.Spawn(func(*Worker) { order = append(order, 1) })
		order = append(order, 0)
		w.Sync()
		order = append(order, 2)
	})
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order=%v want [0 1 2]", order)
	}
}

func TestMultipleRuns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for i := 0; i < 20; i++ {
		var r int64
		p.Run(func(w *Worker) { fibCilk(w, &r, 12) })
		if r != 144 {
			t.Fatalf("run %d: fib(12)=%d", i, r)
		}
	}
}

func TestWorkerIDs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers()=%d", p.Workers())
	}
	var bad atomic.Int32
	p.Run(func(w *Worker) {
		for i := 0; i < 100; i++ {
			w.Spawn(func(w *Worker) {
				if w.ID() < 0 || w.ID() >= 4 {
					bad.Add(1)
				}
			})
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker IDs out of range")
	}
}

func TestDeepSpawnGrowsDeque(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var n atomic.Int32
	p.Run(func(w *Worker) {
		for i := 0; i < 5000; i++ { // > initial deque capacity
			w.Spawn(func(*Worker) { n.Add(1) })
		}
		w.Sync()
	})
	if n.Load() != 5000 {
		t.Fatalf("n=%d want 5000", n.Load())
	}
}
