package cilk

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicInSpawnedTask: a panic in a spawned child fails the job with a
// PanicError carrying the value and stack; the pool survives.
func TestPanicInSpawnedTask(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	err := pool.Submit(func(w *Worker) {
		w.Spawn(func(*Worker) { cilkBoom() })
		w.Sync()
	}).Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v, want *PanicError", err)
	}
	if pe.Value != "boom-cilk" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "cilkBoom") {
		t.Fatalf("stack lacks panic site:\n%s", pe.Stack)
	}
	if err := pool.Run(func(*Worker) {}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
}

//go:noinline
func cilkBoom() { panic("boom-cilk") }

// TestPanicCancelsSiblings: with one worker, children spawned before the
// parent panics are skipped.
func TestPanicCancelsSiblings(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	var ran atomic.Int32
	err := pool.Submit(func(w *Worker) {
		for i := 0; i < 20; i++ {
			w.Spawn(func(*Worker) { ran.Add(1) })
		}
		panic("boom-parent")
	}).Wait()
	if err == nil {
		t.Fatal("Wait = nil after parent panic")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d children ran after the parent panicked (1 worker)", ran.Load())
	}
}

// TestCancel: Cancel stops not-yet-started tasks and Wait reports
// ErrCanceled.
func TestCancel(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var late atomic.Bool
	j := pool.Submit(func(w *Worker) {
		close(started)
		<-release
		w.Spawn(func(*Worker) { late.Store(true) })
		w.Sync()
	})
	<-started
	j.Cancel()
	close(release)
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if late.Load() {
		t.Fatal("task spawned after Cancel ran")
	}
}

// TestSubmitAfterCloseErrClosed: submission to a closed pool is rejected
// with ErrClosed instead of panicking.
func TestSubmitAfterCloseErrClosed(t *testing.T) {
	pool := NewPool(1)
	pool.Close()
	ran := false
	j := pool.Submit(func(*Worker) { ran = true })
	if err := j.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
	if ran {
		t.Fatal("rejected job's body ran")
	}
}

// TestContextUnblocksOnSiblingPanic: a body parked on Worker.Context's
// Done channel is released the instant a sibling task panics on another
// worker — the shared failure state machine's cancellation fan-out, in the
// Cilk comparator.
func TestContextUnblocksOnSiblingPanic(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	blocked := make(chan struct{})
	err := pool.Submit(func(w *Worker) {
		w.Spawn(func(w2 *Worker) { // blocker: stolen (oldest first)
			close(blocked)
			<-w2.Context().Done()
		})
		w.Spawn(func(*Worker) { // panicker: popped LIFO locally
			<-blocked
			panic("boom-cilk-ctx")
		})
		w.Sync()
	}).Wait()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-cilk-ctx" {
		t.Fatalf("Wait = %v, want PanicError(boom-cilk-ctx)", err)
	}
}

// TestContextUnblocksOnCancel: external Job.Cancel releases a body parked
// on the job context.
func TestContextUnblocksOnCancel(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	blocked := make(chan struct{})
	j := pool.Submit(func(w *Worker) {
		close(blocked)
		<-w.Context().Done()
	})
	<-blocked
	j.Cancel()
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
}

// TestSubmitCtxDeadline: the submission context's deadline reaches task
// bodies through Worker.Context and fails the job with DeadlineExceeded.
func TestSubmitCtxDeadline(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sawDeadline := false
	err := pool.SubmitCtx(ctx, func(w *Worker) {
		_, sawDeadline = w.Context().Deadline()
		<-w.Context().Done()
	}).Wait()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
	if !sawDeadline {
		t.Fatal("body did not observe the submission deadline via Worker.Context")
	}
}

// TestSubmitCtxAfterCloseReportsErrClosed: rejection beats a cancelled
// submission context — the shutdown signal stays ErrClosed.
func TestSubmitCtxAfterCloseReportsErrClosed(t *testing.T) {
	pool := NewPool(1)
	pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pool.SubmitCtx(ctx, func(*Worker) {}).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
}
