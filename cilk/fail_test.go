package cilk

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPanicInSpawnedTask: a panic in a spawned child fails the job with a
// PanicError carrying the value and stack; the pool survives.
func TestPanicInSpawnedTask(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	err := pool.Submit(func(w *Worker) {
		w.Spawn(func(*Worker) { cilkBoom() })
		w.Sync()
	}).Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v, want *PanicError", err)
	}
	if pe.Value != "boom-cilk" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "cilkBoom") {
		t.Fatalf("stack lacks panic site:\n%s", pe.Stack)
	}
	if err := pool.Run(func(*Worker) {}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
}

//go:noinline
func cilkBoom() { panic("boom-cilk") }

// TestPanicCancelsSiblings: with one worker, children spawned before the
// parent panics are skipped.
func TestPanicCancelsSiblings(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	var ran atomic.Int32
	err := pool.Submit(func(w *Worker) {
		for i := 0; i < 20; i++ {
			w.Spawn(func(*Worker) { ran.Add(1) })
		}
		panic("boom-parent")
	}).Wait()
	if err == nil {
		t.Fatal("Wait = nil after parent panic")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d children ran after the parent panicked (1 worker)", ran.Load())
	}
}

// TestCancel: Cancel stops not-yet-started tasks and Wait reports
// ErrCanceled.
func TestCancel(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var late atomic.Bool
	j := pool.Submit(func(w *Worker) {
		close(started)
		<-release
		w.Spawn(func(*Worker) { late.Store(true) })
		w.Sync()
	})
	<-started
	j.Cancel()
	close(release)
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if late.Load() {
		t.Fatal("task spawned after Cancel ran")
	}
}

// TestSubmitAfterCloseErrClosed: submission to a closed pool is rejected
// with ErrClosed instead of panicking.
func TestSubmitAfterCloseErrClosed(t *testing.T) {
	pool := NewPool(1)
	pool.Close()
	ran := false
	j := pool.Submit(func(*Worker) { ran = true })
	if err := j.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
	if ran {
		t.Fatal("rejected job's body ran")
	}
}
