// Package cilk is a compact Cilk-style fork-join scheduler, reimplemented
// from the design of Cilk-5 (Frigo, Leiserson, Randall, PLDI 1998): one
// worker per core, a T.H.E.-protocol deque per worker, random work stealing
// of the oldest task, and the work-first principle (the spawning worker
// executes children depth-first; thieves take the shallow, large tasks).
//
// It exists as the Cilk+ comparator of the paper's Fig. 1: a scheduler that
// supports only independent task creation — no dataflow dependencies, no
// adaptive tasks, no parallel loops. Differences from the X-Kaapi runtime in
// this module are intentional and mirror the real systems: tasks are
// heap-allocated per spawn (Cilk allocates frames), there is no steal-request
// aggregation (each thief locks the victim's deque), and no splitter
// machinery exists.
//
// Like the X-Kaapi runtime in this module, the pool accepts concurrent root
// submissions: Pool.Submit injects independent computations from any
// goroutine and Pool.Run is Submit plus Job.Wait.
package cilk

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi/internal/jobfail"
)

// ErrClosed is the error of a job rejected because the pool was already
// closing: Submit after Close returns a pre-failed Job instead of
// panicking.
var ErrClosed = jobfail.ErrClosed

// ErrCanceled is the failure of a job abandoned with Job.Cancel.
var ErrCanceled = jobfail.ErrCanceled

// PanicError is the error a job fails with when a task body panics: the
// pool captures the panic (first one wins), cancels the job's remaining
// tasks and survives. It is an alias of the one shared definition in
// internal/jobfail — the scheduling cost model of this comparator is
// intentionally its own, the failure protocol is not.
type (
	PanicError = jobfail.PanicError
)

// task is a spawned closure plus the frame bookkeeping for sync.
type task struct {
	fn       func(*Worker)
	parent   *task
	children atomic.Int32
	job      *Job // owning job, inherited from the parent (failure scope)
	root     bool // completion of this task finishes the job
}

// Job is the completion handle of one submitted root computation. A job
// fails when one of its task bodies panics (recorded as a *PanicError,
// first panic wins) or when it is cancelled; a failed job's remaining
// tasks are skipped while the frame bookkeeping still drains, so the job
// always completes. The failure state machine is the shared jobfail.State.
type Job struct {
	st jobfail.State
}

// Wait blocks until the job's task tree has fully drained, then returns
// the job's error: nil on success, a *PanicError if a body panicked,
// ErrCanceled after Cancel, or ErrClosed for a rejected submission. Call
// it only from outside the pool; a task body blocking here stalls its
// worker.
func (j *Job) Wait() error { return j.st.Wait() }

// Err returns the job's failure without blocking: nil while the job is
// healthy, otherwise the first recorded error.
func (j *Job) Err() error { return j.st.Err() }

// Cancel abandons the job: tasks that have not started are skipped and
// Wait returns ErrCanceled. Bodies already running finish normally (or
// return early by watching Worker.Context).
func (j *Job) Cancel() { j.st.Cancel() }

// Context returns the job's context, cancelled the instant the job fails
// or is cancelled; see Worker.Context for use inside task bodies.
func (j *Job) Context() context.Context { return j.st.Context() }

// fail records the first failure; later ones and post-completion ones are
// ignored.
func (j *Job) fail(err error) { j.st.Fail(err) }

// Pool is a set of workers executing fork-join computations. Many root
// computations may be submitted concurrently from any goroutines; they all
// share the same workers.
type Pool struct {
	workers []*Worker

	inboxMu   sync.Mutex
	inboxQ    []*task
	inboxHead int
	inboxN    atomic.Int64

	jobsMu   sync.Mutex
	jobsCond *sync.Cond
	jobsLive int
	closing  bool // guarded by jobsMu

	idle        atomic.Int32
	parkMu      sync.Mutex
	parkCond    *sync.Cond
	wakePending int

	stop atomic.Bool
	wg   sync.WaitGroup
}

// Worker is the execution context passed to task bodies.
type Worker struct {
	id   int
	pool *Pool
	cur  *task
	rng  uint64

	mu   sync.Mutex // protects buf for thieves; owner locks on conflict
	head atomic.Int64
	tail atomic.Int64
	buf  atomic.Pointer[[]*task]
}

// NewPool creates a pool with n workers (GOMAXPROCS(0) if n <= 0), each a
// pinned goroutine; work reaches them through Submit or Run.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.parkCond = sync.NewCond(&p.parkMu)
	p.jobsCond = sync.NewCond(&p.jobsMu)
	p.workers = make([]*Worker, n)
	for i := range p.workers {
		w := &Worker{id: i, pool: p, rng: uint64(i)*0x9E3779B97F4A7C15 + 0x853C49E6748FEA9B}
		buf := make([]*task, 256)
		w.buf.Store(&buf)
		p.workers[i] = w
	}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.workers[i].loop()
	}
	return p
}

// Close drains in-flight jobs, then stops and joins the workers. The
// closing flag flips under jobsMu so a racing Submit either registers
// before the drain or panics — it can never strand a job in a dead pool.
func (p *Pool) Close() {
	p.jobsMu.Lock()
	if p.closing {
		p.jobsMu.Unlock()
		return
	}
	p.closing = true
	for p.jobsLive > 0 {
		p.jobsCond.Wait()
	}
	p.jobsMu.Unlock()
	p.stop.Store(true)
	p.parkMu.Lock()
	p.wakePending += len(p.workers)
	p.parkCond.Broadcast()
	p.parkMu.Unlock()
	p.wg.Wait()
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.workers) }

// Run submits root as an independent computation, waits for it and returns
// its error; see Submit. Concurrent Runs share the pool.
func (p *Pool) Run(root func(*Worker)) error {
	return p.Submit(root).Wait()
}

// RunCtx is Run bound to a context: if ctx is cancelled before the
// computation completes, the job fails with ctx's error and its remaining
// tasks are skipped.
func (p *Pool) RunCtx(ctx context.Context, root func(*Worker)) error {
	return p.SubmitCtx(ctx, root).Wait()
}

// Submit enqueues root as an independent root computation and returns its
// handle without waiting. Any goroutine outside the pool may call it
// concurrently: roots are injected through an MPSC inbox (external callers
// must not touch the owner end of a worker deque) and claimed by idle
// workers. Submitting to a closed pool returns a pre-failed Job with
// ErrClosed instead of panicking.
func (p *Pool) Submit(root func(*Worker)) *Job {
	return p.SubmitCtx(context.Background(), root)
}

// SubmitCtx is Submit bound to a context: cancelling ctx (or its deadline
// expiring) fails the job, skips its not-yet-started tasks, and cancels
// the job context every task body sees through Worker.Context.
func (p *Pool) SubmitCtx(ctx context.Context, root func(*Worker)) *Job {
	j := &Job{}
	p.jobsMu.Lock()
	if p.closing {
		p.jobsMu.Unlock()
		// Init without the parent: rejection reports ErrClosed even when
		// ctx is already cancelled (first error wins).
		j.st.Init(nil)
		j.st.Fail(ErrClosed)
		j.st.Finish()
		return j
	}
	p.jobsLive++
	p.jobsMu.Unlock()
	j.st.Init(ctx)
	p.inboxMu.Lock()
	p.inboxQ = append(p.inboxQ, &task{fn: root, job: j, root: true})
	p.inboxN.Add(1)
	p.inboxMu.Unlock()
	p.maybeWake()
	return j
}

// takeSubmitted claims the oldest submitted root, or returns nil. The
// head index makes each take O(1); the buffer resets when it drains.
func (p *Pool) takeSubmitted() *task {
	if p.inboxN.Load() == 0 {
		return nil
	}
	p.inboxMu.Lock()
	var t *task
	if p.inboxHead < len(p.inboxQ) {
		t = p.inboxQ[p.inboxHead]
		p.inboxQ[p.inboxHead] = nil
		p.inboxHead++
		if p.inboxHead == len(p.inboxQ) {
			p.inboxQ = p.inboxQ[:0]
			p.inboxHead = 0
		}
		p.inboxN.Add(-1)
	}
	p.inboxMu.Unlock()
	return t
}

// ID returns the worker index.
func (w *Worker) ID() int { return w.id }

// Context returns the context of the job the current task belongs to,
// cancelled the instant the job fails (sibling panic), is cancelled, or
// its submission context expires. Long-running bodies select on
// Context().Done() for prompt cooperative cancellation. Outside any job it
// returns context.Background().
func (w *Worker) Context() context.Context {
	if w.cur != nil && w.cur.job != nil {
		return w.cur.job.Context()
	}
	return context.Background()
}

// Spawn creates a child task. The caller continues immediately; the child
// runs later on this worker (LIFO) or on a thief (oldest first).
func (w *Worker) Spawn(fn func(*Worker)) {
	t := &task{fn: fn, parent: w.cur}
	if t.parent != nil {
		t.parent.children.Add(1)
		t.job = t.parent.job
	}
	w.push(t)
	w.pool.maybeWake()
}

// Sync waits for all children spawned so far by the current task, scheduling
// other work while it waits.
func (w *Worker) Sync() {
	if w.cur == nil {
		return
	}
	w.waitChildren(w.cur)
}

func (w *Worker) execute(t *task) {
	prev := w.cur
	w.cur = t
	// A task whose job already failed is cancelled: the body is skipped
	// but the frame bookkeeping still drains.
	if t.job == nil || !t.job.st.Failed() {
		w.runBody(t)
	}
	if t.children.Load() != 0 {
		w.waitChildren(t)
	}
	w.cur = prev
	if t.parent != nil {
		t.parent.children.Add(-1)
	}
	if t.root {
		t.job.st.Finish()
		p := w.pool
		p.jobsMu.Lock()
		p.jobsLive--
		if p.jobsLive == 0 {
			p.jobsCond.Broadcast()
		}
		p.jobsMu.Unlock()
	}
}

// runBody invokes t's body behind a panic barrier: a panicking body fails
// the owning job instead of unwinding (and killing) the worker.
func (w *Worker) runBody(t *task) {
	defer func() {
		if r := recover(); r != nil {
			if t.job == nil {
				panic(r) // no handle to report on
			}
			t.job.fail(jobfail.Capture(r))
		}
	}()
	t.fn(w)
}

func (w *Worker) waitChildren(t *task) {
	idle := 0
	for t.children.Load() != 0 {
		if w.schedOnce() {
			idle = 0
			continue
		}
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

func (w *Worker) schedOnce() bool {
	if t := w.pop(); t != nil {
		w.execute(t)
		return true
	}
	if t := w.steal(); t != nil {
		w.execute(t)
		return true
	}
	if t := w.pool.takeSubmitted(); t != nil {
		w.execute(t)
		return true
	}
	return false
}

func (w *Worker) steal() *task {
	p := w.pool
	n := len(p.workers)
	if n == 1 {
		return nil
	}
	for attempt := 0; attempt < 2*n; attempt++ {
		w.rng ^= w.rng >> 12
		w.rng ^= w.rng << 25
		w.rng ^= w.rng >> 27
		v := p.workers[int(w.rng%uint64(n))]
		if v == w || v.tail.Load()-v.head.Load() <= 0 {
			continue
		}
		v.mu.Lock()
		t := v.stealTopLocked()
		v.mu.Unlock()
		if t != nil {
			return t
		}
	}
	return nil
}

func (w *Worker) loop() {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	p := w.pool
	defer p.wg.Done()
	fails := 0
	for {
		if p.stop.Load() {
			return
		}
		if w.schedOnce() {
			fails = 0
			continue
		}
		fails++
		if fails < 4 {
			runtime.Gosched()
			continue
		}
		w.park()
		fails = 0
	}
}

func (w *Worker) park() {
	p := w.pool
	p.idle.Add(1)
	if p.anyWork() || p.stop.Load() {
		p.idle.Add(-1)
		return
	}
	p.parkMu.Lock()
	for p.wakePending == 0 && !p.stop.Load() {
		p.parkCond.Wait()
	}
	if p.wakePending > 0 {
		p.wakePending--
	}
	p.parkMu.Unlock()
	p.idle.Add(-1)
}

func (p *Pool) maybeWake() {
	if p.idle.Load() == 0 {
		return
	}
	p.parkMu.Lock()
	if p.wakePending < int(p.idle.Load()) {
		p.wakePending++
		p.parkCond.Signal()
	}
	p.parkMu.Unlock()
}

func (p *Pool) anyWork() bool {
	if p.inboxN.Load() > 0 {
		return true
	}
	for _, v := range p.workers {
		if v.tail.Load()-v.head.Load() > 0 {
			return true
		}
	}
	return false
}

// --- T.H.E. deque (owner bottom, thief top) ---

func (w *Worker) push(t *task) {
	b := w.tail.Load()
	buf := *w.buf.Load()
	if b-w.head.Load() >= int64(len(buf)-1) {
		w.grow(b)
		buf = *w.buf.Load()
	}
	buf[b&int64(len(buf)-1)] = t
	w.tail.Store(b + 1)
}

func (w *Worker) grow(b int64) {
	w.mu.Lock()
	old := *w.buf.Load()
	nbuf := make([]*task, len(old)*2)
	for i := w.head.Load(); i < b; i++ {
		nbuf[i&int64(len(nbuf)-1)] = old[i&int64(len(old)-1)]
	}
	w.buf.Store(&nbuf)
	w.mu.Unlock()
}

func (w *Worker) pop() *task {
	b := w.tail.Load() - 1
	w.tail.Store(b)
	h := w.head.Load()
	if b < h {
		w.tail.Store(h)
		return nil
	}
	buf := *w.buf.Load()
	t := buf[b&int64(len(buf)-1)]
	if b > h {
		return t
	}
	w.mu.Lock()
	h = w.head.Load()
	if h <= b {
		w.head.Store(b + 1)
		w.tail.Store(b + 1)
		w.mu.Unlock()
		return t
	}
	w.tail.Store(h)
	w.mu.Unlock()
	return nil
}

func (w *Worker) stealTopLocked() *task {
	h := w.head.Load()
	if h >= w.tail.Load() {
		return nil
	}
	buf := *w.buf.Load()
	t := buf[h&int64(len(buf)-1)]
	w.head.Store(h + 1)
	if w.head.Load() > w.tail.Load() {
		w.head.Store(h)
		return nil
	}
	return t
}
