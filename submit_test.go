package xkaapi_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xkaapi"
)

func fibProc(p *xkaapi.Proc, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var a, b int64
	p.Spawn(func(p *xkaapi.Proc) { fibProc(p, &a, n-1) })
	fibProc(p, &b, n-2)
	p.Sync()
	*r = a + b
}

func TestSubmitPublicAPI(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(2))
	var r int64
	j := rt.Submit(func(p *xkaapi.Proc) { fibProc(p, &r, 12) })
	j.Wait()
	if !j.Done() || r != 144 {
		t.Fatalf("done=%v fib=%d want 144", j.Done(), r)
	}
}

// TestConcurrentRunSharedPool drives the public API from many client
// goroutines over one runtime: Runs, Submits and Foreach loops interleave.
func TestConcurrentRunSharedPool(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(4))
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (c + i) % 2 {
				case 0:
					var r int64
					rt.Run(func(p *xkaapi.Proc) { fibProc(p, &r, 14) })
					if r != 377 {
						t.Errorf("fib=%d want 377", r)
						return
					}
				case 1:
					var sum atomic.Int64
					rt.Foreach(0, 1000, func(_ *xkaapi.Proc, lo, hi int) {
						s := int64(0)
						for k := lo; k < hi; k++ {
							s += int64(k)
						}
						sum.Add(s)
					})
					if sum.Load() != 499500 {
						t.Errorf("sum=%d want 499500", sum.Load())
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	rt.Wait()
	// Workers publish their batched spawn/execute counters as they go idle,
	// which can trail Wait by a scheduling quantum; poll until the balance
	// invariant closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := rt.Stats()
		if s.Spawned == s.Executed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spawned=%d executed=%d", s.Spawned, s.Executed)
		}
		time.Sleep(time.Millisecond)
	}
}
