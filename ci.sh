#!/bin/sh
# Minimal CI: tier-1 verify (build + full test suite) followed by the race
# tier over the concurrency-critical packages. Mirrors `make check`.
set -eu

echo "== tier-1: go build ./..."
go build ./...

echo "== tier-1: go test ./..."
go test ./...

echo "== race tier: go test -race -short ./internal/core ./par"
go test -race -short ./internal/core ./par

echo "CI OK"
