#!/bin/sh
# Minimal CI: static gates (gofmt, vet), tier-1 verify (build + full test
# suite), then the race tier over the concurrency-critical packages.
# Mirrors `make check`.
set -eu

echo "== gate: gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== gate: go vet ./..."
go vet ./...

echo "== tier-1: go build ./..."
go build ./...

echo "== tier-1: go test ./..."
go test ./...

echo "== race tier: go test -race -short ./internal/core ./par"
go test -race -short ./internal/core ./par

echo "CI OK"
