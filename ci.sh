#!/bin/sh
# CI entry point, and the single source of truth for what CI runs (the
# GitHub workflow in .github/workflows/ci.yml just invokes this script).
#
# Tiers: static gates (gofmt, vet, the xkvet analyzer suite), tier-1
# verify (build + full test suite), the race tier over the
# concurrency-critical packages, the gating benchmark allocation budgets
# (bench_gates.json via `make bench-gate`), the serve/load integration
# pipeline, and a non-gating benchmark tier that records the perf
# trajectory as a BENCH_<n>.json artifact. Mirrors `make check` (+ the
# bench tier).
set -eu

# Analyzer fixtures under internal/analysis/*/testdata hold deliberately
# bad code (that is the point of them) and are excluded from the gofmt
# gate, matching the Makefile's fmt-check.
echo "== gate: gofmt -l"
unformatted=$(find . -name '*.go' -not -path '*/testdata/*' -exec gofmt -l {} +)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== gate: go vet ./..."
go vet ./...

# The old shell grep tripwire for duplicate PanicError definitions is now
# the jobfailsingleton analyzer in internal/analysis, run by `make lint`.
# xkvet output also lands in a file so the GitHub workflow can lift the
# diagnostics into the job summary on failure.
XKVET_OUT="${TMPDIR:-/tmp}/xkvet.txt"
echo "== gate: xkvet analyzer suite (make lint)"
if make lint >"$XKVET_OUT" 2>&1; then
	cat "$XKVET_OUT"
else
	cat "$XKVET_OUT"
	echo "xkvet: analyzer violations (see above)" >&2
	exit 1
fi

echo "== tier-1: go build ./..."
go build ./...

echo "== tier-1: go test ./..."
go test ./...

echo "== race tier: make race"
make race

# The context-propagation stress drives the one shared failure machine from
# every direction at once — sibling panics, deadlines, external Cancels,
# healthy jobs — with bodies parked on Proc.Context().Done(); run it
# un-shortened under the race detector on top of the -short package tier.
echo "== race tier: context-propagation stress"
go test -race -run 'TestContextPropagationStress' -count=2 ./internal/core

# The fleet tier races the sharded paths specifically: router placement,
# cross-shard stealing under deliberate imbalance, and the fleet-wide
# drain/submit-storm critical section.
echo "== race tier: fleet router + cross-shard steal stress"
go test -race -run 'TestFleet' -count=2 ./internal/core

# The chaos tier replays seeded fault injection under the race detector:
# the paradigm sweep over a chaotic shared pool, the wedged-shard
# supervision episode, and the server-side degradation paths (brownout
# hysteresis, panic retries serving through injected crashes). All seeds
# are fixed, so a failure here replays deterministically.
echo "== race tier: seeded chaos (fault injection, supervision, degradation)"
go test -race -count=1 ./internal/chaos
go test -race -count=1 \
	-run 'TestChaos|TestWedged|TestBrownout|TestPanicRetries|TestRetryAfter' \
	. ./internal/core ./server

# The allocation gate is the one benchmark tier that fails the build: a
# fast fixed-iteration smoke (-benchtime=100x) whose allocs/op — stable in
# a container, unlike wall-clock — is enforced against the budgets in
# bench_gates.json. Timing drift only warns (and only against artifacts
# with a comparable measurement basis).
echo "== gate: benchmark allocation budgets (make bench-gate)"
make bench-gate

echo "== integration tier: xkserve serve + load over HTTP"
./integration.sh

echo "== bench tier (non-gating): make bench-json"
if make bench-json; then
	echo "bench tier OK"
else
	echo "bench tier FAILED (non-gating, continuing)" >&2
fi

# The delta table is also written to a file so the GitHub workflow can lift
# it into the job summary without invoking the target a second time. Write
# first, then cat: piping through tee would hide make's exit status (POSIX
# sh has no pipefail) and make the failure branch unreachable.
BENCH_DIFF_OUT="${TMPDIR:-/tmp}/bench-diff.md"
echo "== bench diff (non-gating): make bench-diff"
if make bench-diff >"$BENCH_DIFF_OUT" 2>&1; then
	cat "$BENCH_DIFF_OUT"
	echo "bench diff OK"
else
	cat "$BENCH_DIFF_OUT"
	echo "bench diff FAILED (non-gating, continuing)" >&2
fi

echo "CI OK"
