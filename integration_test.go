package xkaapi_test

import (
	"sync/atomic"
	"testing"

	"xkaapi"
	"xkaapi/gomp"
	"xkaapi/internal/cholesky"
	"xkaapi/internal/epx"
	"xkaapi/internal/skyline"
	"xkaapi/internal/tile"
	"xkaapi/quark"
)

// Integration tests: whole-stack scenarios crossing the public runtime,
// the compatibility layers and the numerical substrates, mirroring how the
// paper's evaluation programs compose them.

// TestIntegrationMixedParadigms runs all three paradigms in one program:
// dataflow tasks produce tile data, a fork-join tree checks it, and an
// adaptive loop reduces it — the "multi paradigm without penalty" claim.
func TestIntegrationMixedParadigms(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()

	const n = 1 << 16
	data := make([]int64, n)
	var h1, h2 xkaapi.Handle
	var treeSum, loopSum int64

	rt.Run(func(p *xkaapi.Proc) {
		// Dataflow: fill then double, strictly ordered.
		p.SpawnTask(func(*xkaapi.Proc) {
			for i := range data {
				data[i] = int64(i)
			}
		}, xkaapi.Write(&h1))
		p.SpawnTask(func(*xkaapi.Proc) {
			for i := range data {
				data[i] *= 2
			}
		}, xkaapi.ReadWrite(&h1), xkaapi.Write(&h2))
		p.Sync()

		// Fork-join: tree-sum the array.
		var tree func(p *xkaapi.Proc, lo, hi int, out *int64)
		tree = func(p *xkaapi.Proc, lo, hi int, out *int64) {
			if hi-lo <= 4096 {
				var s int64
				for i := lo; i < hi; i++ {
					s += data[i]
				}
				*out = s
				return
			}
			mid := (lo + hi) / 2
			var l, r int64
			p.Spawn(func(p *xkaapi.Proc) { tree(p, lo, mid, &l) })
			tree(p, mid, hi, &r)
			p.Sync()
			*out = l + r
		}
		tree(p, 0, n, &treeSum)

		// Adaptive loop with reduction over the same data.
		loopSum = xkaapi.ForeachReduce(p, 0, n, xkaapi.LoopOpts{},
			func() int64 { return 0 },
			func(_ *xkaapi.Proc, lo, hi int, acc int64) int64 {
				for i := lo; i < hi; i++ {
					acc += data[i]
				}
				return acc
			},
			func(a, b int64) int64 { return a + b })
	})

	want := int64(n) * (n - 1) // sum of 2*i for i<n
	if treeSum != want || loopSum != want {
		t.Fatalf("treeSum=%d loopSum=%d want %d", treeSum, loopSum, want)
	}
}

// TestIntegrationCholeskyAllSchedulersSameFactor runs the Fig. 2 workload
// across every scheduler and requires bitwise identical factors.
func TestIntegrationCholeskyAllSchedulersSameFactor(t *testing.T) {
	const n, nb = 96, 16
	src := tile.NewSPD(n, 99)

	factors := map[string]*tile.Tiled{}

	seq := tile.FromDense(src, nb)
	if err := cholesky.Seq(seq); err != nil {
		t.Fatal(err)
	}
	factors["seq"] = seq

	rt := xkaapi.New(xkaapi.WithWorkers(4))
	mk := tile.FromDense(src, nb)
	if err := cholesky.Kaapi(rt, mk); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	factors["kaapi"] = mk

	for _, eng := range []quark.Engine{quark.EngineNative, quark.EngineKaapi} {
		q := quark.New(4, eng)
		m := tile.FromDense(src, nb)
		if err := cholesky.RunQuark(q, m); err != nil {
			t.Fatal(err)
		}
		q.Delete()
		if eng == quark.EngineNative {
			factors["quark-native"] = m
		} else {
			factors["quark-kaapi"] = m
		}
	}

	ms := tile.FromDense(src, nb)
	if err := cholesky.Static(4, ms); err != nil {
		t.Fatal(err)
	}
	factors["static"] = ms

	for name, f := range factors {
		if name == "seq" {
			continue
		}
		for bi := 0; bi < seq.NT; bi++ {
			for bj := 0; bj <= bi; bj++ {
				a, b := seq.Tile(bi, bj), f.Tile(bi, bj)
				for x := range a {
					if a[x] != b[x] {
						t.Fatalf("%s: tile (%d,%d) differs at %d", name, bi, bj, x)
					}
				}
			}
		}
	}
}

// TestIntegrationSparseFactorThenSolveAcrossRuntimes factors the Fig. 7
// matrix under each runtime and checks the solve agrees.
func TestIntegrationSparseFactorThenSolveAcrossRuntimes(t *testing.T) {
	env := skyline.GenEnvelope(256, 0.08, 5)
	src, err := skyline.NewSPD(env, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(factor func(m *skyline.Matrix) error) []float64 {
		m := src.Clone()
		if err := factor(m); err != nil {
			t.Fatal(err)
		}
		rhs := make([]float64, m.N)
		for i := range rhs {
			rhs[i] = float64(i%13) - 6
		}
		m.SolveInPlace(rhs)
		return rhs
	}
	ref := solve(skyline.FactorSeq)

	rt := xkaapi.New(xkaapi.WithWorkers(3))
	got := solve(func(m *skyline.Matrix) error { return skyline.FactorKaapi(rt, m) })
	rt.Close()
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("kaapi solution differs at %d", i)
		}
	}

	team := gomp.NewTeam(3)
	got = solve(func(m *skyline.Matrix) error { return skyline.FactorGomp(team, m) })
	team.Close()
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("gomp solution differs at %d", i)
		}
	}
}

// TestIntegrationEPXShapes checks the defining Fig. 8 property of the two
// instances on a fast scaled-down run: MEPPEN is loop-dominated, MAXPLANE
// is CHOLESKY-dominated.
func TestIntegrationEPXShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("instance timing in -short mode")
	}
	run := func(inst epx.Instance) epx.PhaseTimes {
		inst.Steps = 2
		s, err := epx.NewSim(inst)
		if err != nil {
			t.Fatal(err)
		}
		b := epx.NewSeqBackend()
		defer b.Close()
		pt, err := s.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	mep := run(epx.MEPPEN(1))
	if loops := mep.Repera + mep.Loopelm; loops < mep.Cholesky {
		t.Fatalf("MEPPEN should be loop-dominated: %v", mep)
	}
	maxp := run(epx.MAXPLANE(1))
	if maxp.Cholesky < maxp.Repera+maxp.Loopelm {
		t.Fatalf("MAXPLANE should be cholesky-dominated: %v", maxp)
	}
	if maxp.Cholesky.Seconds() < 0.4*maxp.Total().Seconds() {
		t.Fatalf("MAXPLANE cholesky fraction too small: %v", maxp)
	}
}

// TestIntegrationStatsAggregationEvidence verifies the §II-C mechanism
// end-to-end: with aggregation on, combiner passes answer posted requests.
func TestIntegrationStatsAggregationEvidence(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4), xkaapi.WithSeed(3))
	defer rt.Close()
	rt.ResetStats()
	var sink atomic.Int64
	rt.Run(func(p *xkaapi.Proc) {
		fib(p, new(int64), 24)
		xkaapi.Foreach(p, 0, 1<<18, func(_ *xkaapi.Proc, lo, hi int) {
			sink.Add(int64(hi - lo))
		})
	})
	s := rt.Stats()
	if s.StealRequests == 0 {
		t.Skip("no steals observed on this machine")
	}
	if s.Combines == 0 {
		t.Fatalf("requests posted but no combiner pass ran: %+v", s)
	}
	if s.CombineServed > s.StealRequests {
		t.Fatalf("served more requests than posted: %+v", s)
	}
}
