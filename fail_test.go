package xkaapi_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"xkaapi"
)

// TestRunReportsPanic: the facade Run returns the job's PanicError and the
// runtime survives.
func TestRunReportsPanic(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2))
	defer rt.Close()
	err := rt.Run(func(p *xkaapi.Proc) {
		p.Spawn(func(*xkaapi.Proc) { panic("boom-facade") })
		p.Sync()
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-facade" {
		t.Fatalf("Run = %v, want PanicError(boom-facade)", err)
	}
	if err := rt.Run(func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
}

// TestSubmitCtxFacade: context cancellation reaches the job through the
// facade.
func TestSubmitCtxFacade(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2))
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.RunCtx(ctx, func(*xkaapi.Proc) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	// A live context behaves like Run.
	if err := rt.RunCtx(context.Background(), func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("RunCtx(live) = %v", err)
	}
}

// TestJobCancelFacade: Job.Cancel through the facade.
func TestJobCancelFacade(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(1))
	defer rt.Close()
	gate := make(chan struct{})
	blocker := rt.Submit(func(*xkaapi.Proc) { <-gate })
	j := rt.Submit(func(*xkaapi.Proc) {})
	j.Cancel()
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := j.Wait(); !errors.Is(err, xkaapi.ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
}

// TestForeachError: the runtime-level Foreach surfaces loop panics.
func TestForeachError(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	err := rt.Foreach(0, 100_000, func(_ *xkaapi.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 50_001 {
				panic("boom-rt-foreach")
			}
		}
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-rt-foreach" {
		t.Fatalf("Foreach = %v, want PanicError(boom-rt-foreach)", err)
	}
}

// TestCloseErrFacade: CloseErr summarizes the runtime's failed jobs; jobs
// submitted after Close are rejected with ErrClosed.
func TestCloseErrFacade(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2))
	rt.Submit(func(*xkaapi.Proc) { panic("boom-close-facade") }).Wait()
	if err := rt.CloseErr(); err == nil {
		t.Fatal("CloseErr = nil after failed job")
	}
	j := rt.Submit(func(*xkaapi.Proc) {})
	if err := j.Wait(); !errors.Is(err, xkaapi.ErrClosed) {
		t.Fatalf("Submit after Close: Wait = %v, want ErrClosed", err)
	}
}

// TestStatsCountPanickedCancelled: the new Stats counters are visible at
// the facade.
func TestStatsCountPanickedCancelled(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(1))
	defer rt.Close()
	rt.ResetStats()
	rt.Run(func(p *xkaapi.Proc) {
		for i := 0; i < 5; i++ {
			p.Spawn(func(*xkaapi.Proc) {})
		}
		panic("boom-stats")
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := rt.Stats()
		if s.Panicked == 1 && s.Cancelled == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Stats = %+v, want Panicked=1 Cancelled=5", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProcContextFacade: the per-job context is reachable from task bodies
// through the public Proc.Context and from the Job handle, and is
// cancelled by each failure source — a sibling panic and an external
// Job.Cancel — unblocking a parked body from another worker.
func TestProcContextFacade(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2), xkaapi.WithoutPinning())
	defer rt.Close()

	// Sibling panic unblocks a body parked on Proc.Context().Done().
	blocked := make(chan struct{})
	j := rt.Submit(func(p *xkaapi.Proc) {
		p.Spawn(func(p2 *xkaapi.Proc) { // stolen by the second worker
			close(blocked)
			<-p2.Context().Done()
		})
		p.Spawn(func(*xkaapi.Proc) { // popped LIFO locally
			<-blocked
			panic("boom-facade-ctx")
		})
		p.Sync()
	})
	var pe *xkaapi.PanicError
	if err := j.Wait(); !errors.As(err, &pe) || pe.Value != "boom-facade-ctx" {
		t.Fatalf("Wait = %v, want PanicError(boom-facade-ctx)", err)
	}
	select {
	case <-j.Context().Done():
	default:
		t.Fatal("Job.Context not cancelled after the job failed")
	}

	// External Cancel unblocks a parked body too.
	blocked2 := make(chan struct{})
	j2 := rt.Submit(func(p *xkaapi.Proc) {
		close(blocked2)
		<-p.Context().Done()
	})
	<-blocked2
	j2.Cancel()
	if err := j2.Wait(); !errors.Is(err, xkaapi.ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
}

// TestRunCtxDeadlineReachesBodies: RunCtx's deadline is visible inside
// task bodies via Proc.Context and fails the job at expiry.
func TestRunCtxDeadlineReachesBodies(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2), xkaapi.WithoutPinning())
	defer rt.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sawDeadline := false
	err := rt.RunCtx(ctx, func(p *xkaapi.Proc) {
		_, sawDeadline = p.Context().Deadline()
		<-p.Context().Done()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want DeadlineExceeded", err)
	}
	if !sawDeadline {
		t.Fatal("body did not observe the RunCtx deadline via Proc.Context")
	}
}
