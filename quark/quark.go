// Package quark is a Go clone of QUARK (QUeueing And Runtime for Kernels;
// YarKhan, Kurzak, Dongarra, UT-ICL tech report ICL-UT-11-02), the dataflow
// runtime beneath the PLASMA dense linear algebra library. Tasks are
// inserted sequentially by a master thread with INPUT/OUTPUT/INOUT argument
// flags keyed by data pointer; the runtime infers dependencies and executes
// ready tasks on a pool of worker threads.
//
// Two engines are provided, matching the paper's Fig. 2 experiment:
//
//   - EngineNative schedules ready tasks through one centralized list
//     protected by a single lock, QUARK's design. The paper attributes
//     QUARK's losses at fine grain (NB=128) to contention on this list and
//     predicts it worsens with core count.
//   - EngineKaapi maps InsertTask onto the X-Kaapi runtime of this module —
//     the "binary compatible QUARK library" the authors linked against
//     PLASMA: same insertion API, but ready tasks are distributed over
//     per-worker deques with work stealing.
//
// Limitations shared with QUARK and documented here: tasks must be inserted
// from the master function only (the task model is flat — worker tasks must
// not insert tasks), and the SCRATCH flag declares no dependency.
package quark

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"xkaapi"
	"xkaapi/internal/jobfail"
)

// PanicError is the module's one shared panic-failure type: both engines
// report a panicking task (or master) through it, carrying the panic value
// and the stack of the panic site.
type (
	PanicError = jobfail.PanicError
)

// Flag classifies a task argument, as in QUARK's quark_direction_t.
type Flag int

const (
	// VALUE arguments carry no dependency (captured by the task closure).
	VALUE Flag = iota
	// INPUT arguments are read; the task waits for their last producer.
	INPUT
	// OUTPUT arguments are overwritten; the task waits for the previous
	// producer and all of its readers.
	OUTPUT
	// INOUT arguments are updated in place (read + write).
	INOUT
	// SCRATCH arguments are task-private temporaries with no dependency.
	SCRATCH
)

// Arg declares one task argument: the pointer identifies the data region
// (as in QUARK, the address is the dependency key), the flag its direction.
type Arg struct {
	Ptr  any
	Flag Flag
}

// Engine selects the scheduler behind the QUARK API.
type Engine int

const (
	// EngineNative is QUARK's own design: a centralized ready list.
	EngineNative Engine = iota
	// EngineKaapi schedules through the X-Kaapi runtime (work stealing over
	// distributed deques).
	EngineKaapi
)

// Quark is a QUARK context. Create with New (private worker pool) or
// NewOnRuntime (shared X-Kaapi pool), submit work inside Run via
// InsertTask, wait with Barrier, release with Delete.
//
// A context runs one master at a time — QUARK's task model is a sequential
// insertion stream — but Run is safe to call from concurrent goroutines
// (calls serialize per context), and any number of contexts created with
// NewOnRuntime multiplex their task graphs over one runtime.
type Quark struct {
	engine Engine
	nw     int
	runMu  sync.Mutex // serializes Run per context (sequential master model)

	// native engine state
	nat *nativeSched

	// kaapi engine state
	krt     *xkaapi.Runtime
	shared  bool // krt is borrowed; Delete must not close it
	kproc   *xkaapi.Proc
	handles map[any]*xkaapi.Handle
}

// New creates a QUARK context with n worker threads (GOMAXPROCS(0) if
// n <= 0) and the given engine.
func New(n int, engine Engine) *Quark {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	q := &Quark{engine: engine, nw: n}
	switch engine {
	case EngineNative:
		q.nat = newNativeSched(n)
	case EngineKaapi:
		q.krt = xkaapi.New(xkaapi.WithWorkers(n))
		q.handles = make(map[any]*xkaapi.Handle)
	}
	return q
}

// NewOnRuntime creates a kaapi-engine QUARK context that borrows rt instead
// of owning a pool: every context created this way shares rt's workers, so
// many concurrent QUARK clients — each with its own handles and insertion
// stream — multiplex over one runtime. Delete leaves rt open.
func NewOnRuntime(rt *xkaapi.Runtime) *Quark {
	return &Quark{
		engine:  EngineKaapi,
		nw:      rt.Workers(),
		krt:     rt,
		shared:  true,
		handles: make(map[any]*xkaapi.Handle),
	}
}

// Workers returns the worker thread count.
func (q *Quark) Workers() int { return q.nw }

// Run executes master — the sequential task-insertion code — and returns
// after an implicit Barrier, reporting the first failure of the run: nil
// on success, or a *PanicError if the master or any inserted task
// panicked. When a task panics, its successors — the queued dataflow tasks
// depending on it, and every task not yet started — are cancelled: their
// bodies are skipped while the dependency bookkeeping still drains, so
// the barrier always completes and the context stays usable for the next
// Run. Concurrent Run calls on the same context serialize; use one context
// per insertion stream (NewOnRuntime makes contexts cheap) for parallel
// clients.
func (q *Quark) Run(master func(q *Quark)) error {
	return q.RunCtx(context.Background(), master)
}

// RunCtx is Run bound to a context: if ctx is cancelled (or its deadline
// expires) before the run's tasks drain, the run fails with ctx's error
// and tasks not yet started are cancelled — on both engines. Task bodies
// inserted with InsertTaskCtx receive the run's derived context, cancelled
// the instant the run fails for any reason, for deadline-aware kernels.
func (q *Quark) RunCtx(ctx context.Context, master func(q *Quark)) error {
	q.runMu.Lock()
	defer q.runMu.Unlock()
	switch q.engine {
	case EngineNative:
		q.nat.reset(ctx)
		func() {
			defer func() {
				if r := recover(); r != nil {
					q.nat.fail(jobfail.Capture(r))
				}
			}()
			master(q)
		}()
		q.Barrier()
		return q.nat.finish()
	case EngineKaapi:
		return q.krt.RunCtx(ctx, func(p *xkaapi.Proc) {
			q.kproc = p
			defer func() { q.kproc = nil }()
			master(q)
			p.Sync()
		})
	}
	return nil
}

// InsertTask submits fn with the given argument directions. Dependencies
// against previously inserted tasks touching the same pointers are inferred
// from the flags (sequential consistency: the parallel execution computes
// what the insertion order would).
func (q *Quark) InsertTask(fn func(), args ...Arg) {
	q.InsertTaskCtx(func(context.Context) { fn() }, args...)
}

// InsertTaskCtx is InsertTask for deadline-aware task bodies: fn receives
// the run's context — cancelled the instant the run fails (a sibling task
// panic, RunCtx cancellation or deadline) — so long kernels can select on
// its Done channel or pass it to context-aware I/O instead of running to
// completion after the run is already dead.
func (q *Quark) InsertTaskCtx(fn func(ctx context.Context), args ...Arg) {
	switch q.engine {
	case EngineNative:
		q.nat.insert(fn, args)
	case EngineKaapi:
		if q.kproc == nil {
			panic("quark: InsertTask outside Run (kaapi engine)")
		}
		accs := make([]xkaapi.Access, 0, len(args))
		for _, a := range args {
			var m xkaapi.Mode
			switch a.Flag {
			case INPUT:
				m = xkaapi.ModeRead
			case OUTPUT:
				m = xkaapi.ModeWrite
			case INOUT:
				m = xkaapi.ModeReadWrite
			default:
				continue // VALUE, SCRATCH: no dependency
			}
			h, ok := q.handles[a.Ptr]
			if !ok {
				h = new(xkaapi.Handle)
				q.handles[a.Ptr] = h
			}
			accs = append(accs, xkaapi.Access{Handle: h, Mode: m})
		}
		q.kproc.SpawnTask(func(p *xkaapi.Proc) { fn(p.Context()) }, accs...)
	}
}

// Barrier waits until every inserted task has completed.
func (q *Quark) Barrier() {
	switch q.engine {
	case EngineNative:
		q.nat.barrier()
	case EngineKaapi:
		if q.kproc != nil {
			q.kproc.Sync()
		}
	}
}

// Delete releases the worker threads. The context must be quiescent. A
// context from NewOnRuntime does not own its runtime, so Delete leaves the
// shared pool running.
func (q *Quark) Delete() {
	switch q.engine {
	case EngineNative:
		q.nat.close()
	case EngineKaapi:
		if !q.shared {
			q.krt.Close()
		}
	}
}

// --- native engine: centralized ready list ---

// ntask is a task of the native engine.
type ntask struct {
	fn   func(ctx context.Context)
	wait atomic.Int32

	mu   sync.Mutex
	done bool
	succ []*ntask
}

// frontier is the per-pointer dependency frontier (last writer + readers of
// the current version). Only the master touches frontiers, so no lock.
type frontier struct {
	writer  *ntask
	readers []*ntask
}

// nativeSched is the centralized scheduler: one mutex guards the ready
// list, the pending count and the wake-ups of all workers. This contention
// point is the experimental subject of Fig. 2, not an implementation
// shortcut.
type nativeSched struct {
	mu      sync.Mutex
	cond    *sync.Cond // workers wait here for ready tasks
	barCond *sync.Cond // Barrier waits here for pending == 0
	ready   []*ntask
	pending int64
	stopped bool
	wg      sync.WaitGroup

	fronts map[any]*frontier

	// st is the failure domain of the current Run — the shared
	// jobfail.State machine (first panic/cancel wins, context fan-out) a
	// fresh instance of which reset installs per Run. Workers read it only
	// while tasks of that Run are in flight, and reset only runs while the
	// scheduler is quiescent (Run holds runMu and ends with a Barrier), so
	// the plain field is published through the ready-list mutex.
	st *jobfail.State
}

// fail records the first failure of the current Run and cancels the bodies
// of every task that has not started yet (dependency release and the
// pending count still drain, so Barrier completes) plus the run's context.
func (s *nativeSched) fail(err error) { s.st.Fail(err) }

// reset installs a fresh failure domain for the next Run, bound to parent
// (Background if nil); the scheduler must be quiescent.
func (s *nativeSched) reset(parent context.Context) {
	s.st = new(jobfail.State)
	s.st.Init(parent)
}

// finish seals the current Run's failure domain and returns its error.
func (s *nativeSched) finish() error { return s.st.Finish() }

func newNativeSched(n int) *nativeSched {
	s := &nativeSched{fronts: make(map[any]*frontier)}
	s.cond = sync.NewCond(&s.mu)
	s.barCond = sync.NewCond(&s.mu)
	s.reset(nil) // placeholder domain until the first Run
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *nativeSched) insert(fn func(ctx context.Context), args []Arg) {
	t := &ntask{fn: fn}
	t.wait.Store(1) // creation bias
	for _, a := range args {
		switch a.Flag {
		case INPUT:
			f := s.front(a.Ptr)
			t.dependOn(f.writer)
			f.readers = append(f.readers, t)
		case OUTPUT, INOUT:
			f := s.front(a.Ptr)
			t.dependOn(f.writer)
			for _, r := range f.readers {
				t.dependOn(r)
			}
			f.writer = t
			f.readers = f.readers[:0]
		}
	}
	s.mu.Lock()
	s.pending++
	s.mu.Unlock()
	if t.wait.Add(-1) == 0 {
		s.push(t)
	}
}

func (s *nativeSched) front(key any) *frontier {
	f, ok := s.fronts[key]
	if !ok {
		f = &frontier{}
		s.fronts[key] = f
	}
	return f
}

// dependOn makes t wait for d unless d is nil, already complete, or t
// itself (repeated pointer in one task's argument list).
func (t *ntask) dependOn(d *ntask) {
	if d == nil || d == t {
		return
	}
	d.mu.Lock()
	if !d.done {
		d.succ = append(d.succ, t)
		t.wait.Add(1)
	}
	d.mu.Unlock()
}

func (s *nativeSched) push(t *ntask) {
	s.mu.Lock()
	s.ready = append(s.ready, t)
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *nativeSched) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.ready) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped && len(s.ready) == 0 {
			s.mu.Unlock()
			return
		}
		t := s.ready[len(s.ready)-1]
		s.ready = s.ready[:len(s.ready)-1]
		s.mu.Unlock()

		// A task of a failed run is cancelled: skip the body, but still
		// release successors and repay the pending count below.
		if !s.st.Failed() {
			s.runTask(t)
		}

		t.mu.Lock()
		t.done = true
		succ := t.succ
		t.mu.Unlock()
		for _, n := range succ {
			if n.wait.Add(-1) == 0 {
				s.push(n)
			}
		}
		s.mu.Lock()
		s.pending--
		if s.pending == 0 {
			s.barCond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// runTask executes t.fn behind a panic barrier: a panic fails the run and
// cancels the tasks that have not started, instead of killing the worker.
// The body receives the run's context for deadline-aware work.
func (s *nativeSched) runTask(t *ntask) {
	defer func() {
		if r := recover(); r != nil {
			s.fail(jobfail.Capture(r))
		}
	}()
	t.fn(s.st.Context())
}

func (s *nativeSched) barrier() {
	s.mu.Lock()
	for s.pending != 0 {
		s.barCond.Wait()
	}
	s.mu.Unlock()
}

func (s *nativeSched) close() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
