package quark

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xkaapi"
)

// failRun exercises one engine: a chain A -> B -> C on one pointer where A
// panics; B and C must be cancelled (bodies never run), Run must report
// the panic, and the context must stay usable for a following Run.
func failRun(t *testing.T, q *Quark) {
	t.Helper()
	var x int
	var bRan, cRan atomic.Bool
	err := q.Run(func(q *Quark) {
		q.InsertTask(func() { panic("boom-quark") }, Arg{Ptr: &x, Flag: OUTPUT})
		q.InsertTask(func() { bRan.Store(true) }, Arg{Ptr: &x, Flag: INOUT})
		q.InsertTask(func() { cRan.Store(true) }, Arg{Ptr: &x, Flag: INPUT})
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-quark" {
		t.Fatalf("Run = %v, want PanicError(boom-quark)", err)
	}
	if bRan.Load() || cRan.Load() {
		t.Fatalf("successors of panicked task ran: b=%v c=%v", bRan.Load(), cRan.Load())
	}
	// The context survives; the frontier for &x still sequences new tasks.
	var order atomic.Int32
	var w, r int32
	if err := q.Run(func(q *Quark) {
		q.InsertTask(func() { w = order.Add(1) }, Arg{Ptr: &x, Flag: OUTPUT})
		q.InsertTask(func() { r = order.Add(1) }, Arg{Ptr: &x, Flag: INPUT})
	}); err != nil {
		t.Fatalf("Run after failure: %v", err)
	}
	if w != 1 || r != 2 {
		t.Fatalf("order after failed run: writer=%d reader=%d, want 1,2", w, r)
	}
}

// TestNativePanicCancelsSuccessors: the centralized engine.
func TestNativePanicCancelsSuccessors(t *testing.T) {
	q := New(4, EngineNative)
	defer q.Delete()
	failRun(t, q)
}

// TestKaapiPanicCancelsSuccessors: the X-Kaapi engine.
func TestKaapiPanicCancelsSuccessors(t *testing.T) {
	q := New(4, EngineKaapi)
	defer q.Delete()
	failRun(t, q)
}

// TestSharedRuntimePanicIsolated: a panicking QUARK context on a shared
// runtime must not disturb sibling contexts.
func TestSharedRuntimePanicIsolated(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	bad := NewOnRuntime(rt)
	good := NewOnRuntime(rt)
	errc := make(chan error, 1)
	go func() {
		errc <- bad.Run(func(q *Quark) {
			var y int
			q.InsertTask(func() { panic("boom-shared") }, Arg{Ptr: &y, Flag: OUTPUT})
		})
	}()
	var sum atomic.Int64
	var z int
	if err := good.Run(func(q *Quark) {
		for i := 0; i < 100; i++ {
			i := i
			q.InsertTask(func() { sum.Add(int64(i)) }, Arg{Ptr: &z, Flag: INOUT})
		}
	}); err != nil {
		t.Fatalf("healthy context failed: %v", err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
	var pe *PanicError
	if err := <-errc; !errors.As(err, &pe) || pe.Value != "boom-shared" {
		t.Fatalf("bad context Run = %v, want PanicError(boom-shared)", err)
	}
	bad.Delete()
	good.Delete()
}

// TestMasterPanicReported: a panic in the master insertion code itself is
// captured by Run on both engines.
func TestMasterPanicReported(t *testing.T) {
	for _, eng := range []Engine{EngineNative, EngineKaapi} {
		q := New(2, eng)
		err := q.Run(func(*Quark) { panic("boom-master") })
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "boom-master" {
			t.Fatalf("engine %v: Run = %v, want PanicError(boom-master)", eng, err)
		}
		q.Delete()
	}
}

// ctxUnblock exercises one engine: task A parks on the run's context (via
// InsertTaskCtx), task B — independent, no shared pointer — panics once A
// is provably parked; A must unblock with the run's failure as the
// context's cause and Run must report the panic.
func ctxUnblock(t *testing.T, q *Quark) {
	t.Helper()
	var x, y int
	blocked := make(chan struct{})
	var sawErr error
	err := q.Run(func(q *Quark) {
		q.InsertTaskCtx(func(ctx context.Context) {
			close(blocked)
			<-ctx.Done()
			sawErr = ctx.Err()
		}, Arg{Ptr: &x, Flag: OUTPUT})
		q.InsertTaskCtx(func(context.Context) {
			<-blocked
			panic("boom-quark-ctx")
		}, Arg{Ptr: &y, Flag: OUTPUT})
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-quark-ctx" {
		t.Fatalf("Run = %v, want PanicError(boom-quark-ctx)", err)
	}
	if sawErr == nil {
		t.Fatal("parked task body never observed the cancelled run context")
	}
}

// TestNativeContextUnblocksOnSiblingPanic: the centralized engine.
func TestNativeContextUnblocksOnSiblingPanic(t *testing.T) {
	q := New(4, EngineNative)
	defer q.Delete()
	ctxUnblock(t, q)
}

// TestKaapiContextUnblocksOnSiblingPanic: the X-Kaapi engine.
func TestKaapiContextUnblocksOnSiblingPanic(t *testing.T) {
	q := New(4, EngineKaapi)
	defer q.Delete()
	ctxUnblock(t, q)
}

// TestRunCtxDeadline: a RunCtx deadline reaches task bodies on both
// engines and fails the run with DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	for _, eng := range []Engine{EngineNative, EngineKaapi} {
		q := New(2, eng)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		var x int
		err := q.RunCtx(ctx, func(q *Quark) {
			q.InsertTaskCtx(func(tctx context.Context) {
				<-tctx.Done() // released by the deadline
			}, Arg{Ptr: &x, Flag: OUTPUT})
		})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("engine %v: RunCtx = %v, want DeadlineExceeded", eng, err)
		}
		q.Delete()
	}
}
