package quark

import (
	"sync/atomic"
	"testing"
)

func engines() []Engine { return []Engine{EngineNative, EngineKaapi} }

func TestChainOrdering(t *testing.T) {
	for _, e := range engines() {
		q := New(4, e)
		x := 0
		q.Run(func(q *Quark) {
			q.InsertTask(func() { x = 2 }, Arg{&x, OUTPUT})
			q.InsertTask(func() { x *= 10 }, Arg{&x, INOUT})
			q.InsertTask(func() { x += 3 }, Arg{&x, INOUT})
		})
		q.Delete()
		if x != 23 {
			t.Fatalf("engine %d: x=%d want 23", e, x)
		}
	}
}

func TestReadersRunBetweenWriters(t *testing.T) {
	for _, e := range engines() {
		q := New(4, e)
		var x int
		var r1, r2 int
		q.Run(func(q *Quark) {
			q.InsertTask(func() { x = 7 }, Arg{&x, OUTPUT})
			q.InsertTask(func() { r1 = x }, Arg{&x, INPUT})
			q.InsertTask(func() { r2 = x }, Arg{&x, INPUT})
			q.InsertTask(func() { x = 100 }, Arg{&x, OUTPUT})
		})
		q.Delete()
		if r1 != 7 || r2 != 7 || x != 100 {
			t.Fatalf("engine %d: r1=%d r2=%d x=%d", e, r1, r2, x)
		}
	}
}

func TestIndependentTasksAllRun(t *testing.T) {
	for _, e := range engines() {
		q := New(4, e)
		var n atomic.Int32
		data := make([]int, 64)
		q.Run(func(q *Quark) {
			for i := range data {
				i := i
				q.InsertTask(func() { n.Add(1) }, Arg{&data[i], INOUT})
			}
		})
		q.Delete()
		if n.Load() != 64 {
			t.Fatalf("engine %d: ran %d/64 tasks", e, n.Load())
		}
	}
}

func TestValueAndScratchNoDependency(t *testing.T) {
	for _, e := range engines() {
		q := New(2, e)
		var n atomic.Int32
		v := 42
		q.Run(func(q *Quark) {
			for i := 0; i < 16; i++ {
				q.InsertTask(func() { n.Add(1) }, Arg{&v, VALUE}, Arg{&v, SCRATCH})
			}
		})
		q.Delete()
		if n.Load() != 16 {
			t.Fatalf("engine %d: ran %d/16", e, n.Load())
		}
	}
}

func TestBarrierInsideRun(t *testing.T) {
	for _, e := range engines() {
		q := New(4, e)
		var phase1 atomic.Int32
		ok := true
		q.Run(func(q *Quark) {
			data := make([]int, 16)
			for i := range data {
				q.InsertTask(func() { phase1.Add(1) }, Arg{&data[i], INOUT})
			}
			q.Barrier()
			if phase1.Load() != 16 {
				ok = false
			}
		})
		q.Delete()
		if !ok {
			t.Fatalf("engine %d: barrier returned before tasks completed", e)
		}
	}
}

func TestMixedDag(t *testing.T) {
	// b and c depend on a; d depends on b and c. Classic diamond via flags.
	for _, e := range engines() {
		q := New(4, e)
		var a, b, c, d int
		q.Run(func(q *Quark) {
			q.InsertTask(func() { a = 1 }, Arg{&a, OUTPUT})
			q.InsertTask(func() { b = a + 1 }, Arg{&a, INPUT}, Arg{&b, OUTPUT})
			q.InsertTask(func() { c = a + 2 }, Arg{&a, INPUT}, Arg{&c, OUTPUT})
			q.InsertTask(func() { d = b + c }, Arg{&b, INPUT}, Arg{&c, INPUT}, Arg{&d, OUTPUT})
		})
		q.Delete()
		if d != 5 {
			t.Fatalf("engine %d: d=%d want 5", e, d)
		}
	}
}

func TestLongChainStress(t *testing.T) {
	for _, e := range engines() {
		q := New(4, e)
		x := 0
		q.Run(func(q *Quark) {
			for i := 0; i < 2000; i++ {
				q.InsertTask(func() { x++ }, Arg{&x, INOUT})
			}
		})
		q.Delete()
		if x != 2000 {
			t.Fatalf("engine %d: x=%d want 2000", e, x)
		}
	}
}

func TestMultipleRuns(t *testing.T) {
	for _, e := range engines() {
		q := New(2, e)
		total := 0
		for i := 0; i < 5; i++ {
			q.Run(func(q *Quark) {
				q.InsertTask(func() { total++ }, Arg{&total, INOUT})
			})
		}
		q.Delete()
		if total != 5 {
			t.Fatalf("engine %d: total=%d want 5", e, total)
		}
	}
}

func TestWorkersCount(t *testing.T) {
	q := New(3, EngineNative)
	defer q.Delete()
	if q.Workers() != 3 {
		t.Fatalf("Workers()=%d want 3", q.Workers())
	}
}
