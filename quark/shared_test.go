package quark

import (
	"sync"
	"testing"

	"xkaapi"
)

// TestSharedRuntimeContexts checks NewOnRuntime: several QUARK contexts,
// each with its own dependency chain, multiplex over one X-Kaapi runtime
// from concurrent goroutines, and sequential consistency holds per stream.
func TestSharedRuntimeContexts(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()

	const clients, chains = 6, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := NewOnRuntime(rt)
			defer q.Delete() // must NOT close the shared runtime
			for i := 0; i < chains; i++ {
				x := 0
				q.Run(func(q *Quark) {
					q.InsertTask(func() { x = 1 }, Arg{Ptr: &x, Flag: OUTPUT})
					q.InsertTask(func() { x *= 10 }, Arg{Ptr: &x, Flag: INOUT})
					q.InsertTask(func() { x += 5 }, Arg{Ptr: &x, Flag: INOUT})
				})
				if x != 15 {
					t.Errorf("x=%d want 15 (insertion-order semantics broken)", x)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The shared runtime must still be usable after all Deletes.
	ok := false
	rt.Run(func(*xkaapi.Proc) { ok = true })
	if !ok {
		t.Fatal("shared runtime closed by Quark.Delete")
	}
}
