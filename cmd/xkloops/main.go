// Command xkloops regenerates the paper's Fig. 3: the speedup of the two
// parallel loops of EPX (LOOPELM and REPERA iteration bodies, run
// back-to-back as in the application) under OpenMP static and dynamic
// schedules versus the X-Kaapi adaptive foreach, against the ideal line.
//
// Expected shape (paper, 48 cores): OpenMP static ≈ OpenMP dynamic, X-Kaapi
// very close to OpenMP and pulling ahead past ~25 cores.
//
// Usage:
//
//	xkloops [-cores 1,2,4] [-reps 3] [-nx 20 -ny 20 -nz 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"xkaapi/gomp"
	"xkaapi/internal/epx"
	"xkaapi/internal/harness"
)

func main() {
	coresFlag := flag.String("cores", "", "comma-separated core counts")
	reps := flag.Int("reps", 3, "timed repetitions per point (median)")
	nx := flag.Int("nx", 20, "mesh elements in x")
	ny := flag.Int("ny", 20, "mesh elements in y")
	nz := flag.Int("nz", 10, "mesh elements in z")
	refine := flag.Int("refine", 24, "REPERA refinement iterations")
	flag.Parse()

	cores, err := harness.ParseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mesh := epx.NewBox(*nx, *ny, *nz, 1)
	st := epx.NewState(mesh, epx.Material{E: 100, Yield: 0.02, Hard: 0.3})
	st.Kick(0.4, 0.8)
	st.Integrate()
	rep := epx.NewRepera(mesh, *refine)
	rep.Build(st.Disp)

	// One "iteration" of the measured region = both EPX loops.
	loops := func(b epx.Backend) {
		b.Foreach(0, mesh.NumElems(), func(lo, hi int) { st.ElemForceRange(lo, hi) })
		b.Foreach(0, mesh.NumNodes(), func(lo, hi int) { rep.SortRange(st.Disp, lo, hi) })
	}

	seqB := epx.NewSeqBackend()
	seq := harness.Time(*reps, true, func() { loops(seqB) })
	seqB.Close()
	fmt.Printf("Fig.3 — parallel loop speedup (mesh %dx%dx%d: %d elems, %d nodes; Tseq=%.3fs)\n\n",
		*nx, *ny, *nz, mesh.NumElems(), mesh.NumNodes(), seq.Seconds())

	mk := []struct {
		name string
		mkB  func(p int) epx.Backend
	}{
		{"OpenMP/dynamic", func(p int) epx.Backend { return epx.NewGompBackend(p, gomp.Dynamic, 16) }},
		{"OpenMP/static", func(p int) epx.Backend { return epx.NewGompBackend(p, gomp.Static, 0) }},
		{"XKaapi", func(p int) epx.Backend { return epx.NewKaapiBackend(p) }},
	}
	series := make([]harness.Series, len(mk)+1)
	for i, m := range mk {
		series[i].Name = m.name
		for _, p := range cores {
			b := m.mkB(p)
			d := harness.Time(*reps, true, func() { loops(b) })
			b.Close()
			series[i].Values = append(series[i].Values, seq.Seconds()/d.Seconds())
		}
	}
	series[len(mk)].Name = "ideal"
	for _, p := range cores {
		series[len(mk)].Values = append(series[len(mk)].Values, float64(p))
	}

	harness.Table(os.Stdout, "cores", cores, series, harness.Ratio)
}
