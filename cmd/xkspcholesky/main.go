// Command xkspcholesky regenerates the paper's Fig. 7: speedup of the
// blocked sparse skyline Cholesky factorization, X-Kaapi dataflow tasks
// versus the OpenMP version with taskwait barriers after the trsm loop and
// after the syrk/gemm loop.
//
// The paper's matrix comes from the MAXPLANE simulation: order 59462 with
// 3.59% nonzeros and block size BS=88 (sequential time 47.79s on their
// machine). The default here is a scaled-down matrix with the same fill and
// block size; pass -n 59462 to run the full-size system.
//
// Expected shape: X-Kaapi above OpenMP at every core count, because the
// dataflow version only declares access modes while the OpenMP version pays
// two barriers per elimination step (§IV-B).
//
// Usage:
//
//	xkspcholesky [-n 4096] [-fill 0.0359] [-bs 88] [-cores 1,2] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"xkaapi"
	"xkaapi/gomp"
	"xkaapi/internal/harness"
	"xkaapi/internal/skyline"
)

func main() {
	n := flag.Int("n", 4096, "matrix order (paper: 59462)")
	fill := flag.Float64("fill", 0.0359, "envelope fill fraction (paper: 3.59%)")
	bs := flag.Int("bs", 88, "block size (paper: BS=88)")
	coresFlag := flag.String("cores", "", "comma-separated core counts")
	reps := flag.Int("reps", 3, "timed repetitions per point (median)")
	flag.Parse()

	cores, err := harness.ParseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	env := skyline.GenEnvelope(*n, *fill, 59462)
	src, err := skyline.NewSPD(env, *bs, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var m *skyline.Matrix
	seq := harness.TimeSetup(*reps, func() { m = src.Clone() }, func() {
		if err := skyline.FactorSeq(m); err != nil {
			panic(err)
		}
	})
	fmt.Printf("Fig.7 — sparse skyline Cholesky speedup (n=%d, fill=%.2f%%, BS=%d, Tseq=%.3fs)\n\n",
		*n, src.Fill()*100, *bs, seq.Seconds())

	series := []harness.Series{{Name: "OpenMP"}, {Name: "XKaapi"}, {Name: "ideal"}}
	for _, p := range cores {
		team := gomp.NewTeam(p)
		dOmp := harness.TimeSetup(*reps, func() { m = src.Clone() }, func() {
			if err := skyline.FactorGomp(team, m); err != nil {
				panic(err)
			}
		})
		team.Close()

		rt := xkaapi.New(xkaapi.WithWorkers(p))
		dKaapi := harness.TimeSetup(*reps, func() { m = src.Clone() }, func() {
			if err := skyline.FactorKaapi(rt, m); err != nil {
				panic(err)
			}
		})
		rt.Close()

		series[0].Values = append(series[0].Values, seq.Seconds()/dOmp.Seconds())
		series[1].Values = append(series[1].Values, seq.Seconds()/dKaapi.Seconds())
		series[2].Values = append(series[2].Values, float64(p))
	}

	harness.Table(os.Stdout, "cores", cores, series, harness.Ratio)
}
