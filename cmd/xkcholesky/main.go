// Command xkcholesky regenerates the paper's Fig. 2: GFlop/s of the tile
// Cholesky factorization (PLASMA_dpotrf_Tile) as a function of matrix size,
// for tile sizes NB=128 and NB=224, under three schedulers:
//
//   - PLASMA/Quark  — the QUARK API on its native centralized ready list;
//   - XKaapi        — the same QUARK insertion sequence on the X-Kaapi
//     engine (the paper's binary-compatible QUARK port);
//   - PLASMA/static — the static pipeline with progress tables.
//
// Expected shape (paper, 48 cores): at NB=128 XKaapi beats Quark (ready-list
// contention) and approaches static; at NB=224 the gap narrows because task
// management is amortized, but larger grain reduces available parallelism.
//
// Usage:
//
//	xkcholesky [-sizes 512,1024,2048] [-nb 128,224] [-cores N] [-reps 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"xkaapi/internal/cholesky"
	"xkaapi/internal/harness"
	"xkaapi/internal/tile"
	"xkaapi/quark"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	sizesFlag := flag.String("sizes", "512,1024,1536,2048", "matrix orders to sweep")
	nbFlag := flag.String("nb", "128,224", "tile sizes (paper: 128 and 224)")
	cores := flag.Int("cores", runtime.GOMAXPROCS(0), "worker threads")
	reps := flag.Int("reps", 2, "timed repetitions per point (median)")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	nbs, err := parseInts(*nbFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	for _, nb := range nbs {
		fmt.Printf("Fig.2 — Cholesky GFlop/s, NB=%d, %d cores\n\n", nb, *cores)
		series := []harness.Series{
			{Name: "PLASMA/Quark"}, {Name: "XKaapi"}, {Name: "PLASMA/static"},
		}
		for _, n := range sizes {
			src := tile.NewSPD(n, 42)
			var m *tile.Tiled
			setup := func() { m = tile.FromDense(src, nb) }

			qn := quark.New(*cores, quark.EngineNative)
			dq := harness.TimeSetup(*reps, setup, func() {
				if err := cholesky.RunQuark(qn, m); err != nil {
					panic(err)
				}
			})
			qn.Delete()

			qk := quark.New(*cores, quark.EngineKaapi)
			dk := harness.TimeSetup(*reps, setup, func() {
				if err := cholesky.RunQuark(qk, m); err != nil {
					panic(err)
				}
			})
			qk.Delete()

			ds := harness.TimeSetup(*reps, setup, func() {
				if err := cholesky.Static(*cores, m); err != nil {
					panic(err)
				}
			})

			for i, d := range []time.Duration{dq, dk, ds} {
				series[i].Values = append(series[i].Values, cholesky.Gflops(n, d))
			}
		}
		harness.Table(os.Stdout, "size", sizes, series, harness.Gf)
		fmt.Println()
	}
}
