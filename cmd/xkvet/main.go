// Command xkvet is the module's multichecker: it runs the custom static
// analyzers of internal/analysis — the concurrency-invariant suite no
// stock compiler or vet pass checks — over the given package patterns
// and exits non-zero when any invariant is violated. It is the gating
// static tier behind `make lint` and ci.sh.
//
// Usage:
//
//	xkvet [-list] [packages]
//
// With no patterns it checks ./.... -list prints the analyzers and what
// each enforces. Diagnostics print as file:line:col: analyzer: message;
// a line can suppress one deliberately with `//xk:allow(<analyzer>): why`.
//
// The driver loads packages through `go list -export` plus the standard
// library's go/parser, go/types and gc importer, so it needs no module
// dependencies; the analyzer API mirrors golang.org/x/tools/go/analysis,
// which is why there is no go/analysis unitchecker shim here — porting
// to `go vet -vettool` is mechanical the day that dependency is wanted.
package main

import (
	"flag"
	"fmt"
	"os"

	"xkaapi/internal/analysis"
	"xkaapi/internal/analysis/atomicpad"
	"xkaapi/internal/analysis/hotpath"
	"xkaapi/internal/analysis/jobfailsingleton"
	"xkaapi/internal/analysis/taskctx"
)

// analyzers is the gating suite, in diagnostic-output order.
var analyzers = []*analysis.Analyzer{
	jobfailsingleton.Analyzer,
	taskctx.Analyzer,
	hotpath.Analyzer,
	atomicpad.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkvet: %v\n", err)
		return 2
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Check(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xkvet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "xkvet: %d violation(s) in %d package(s) checked\n", bad, len(pkgs))
		return 1
	}
	return 0
}
