package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi"
	"xkaapi/server"
)

// loadReply mirrors the server's workload response body.
type loadReply struct {
	Endpoint string          `json:"endpoint"`
	N        int             `json:"n"`
	Result   int64           `json:"result"`
	Residual float64         `json:"residual"`
	OK       bool            `json:"ok"`
	Error    string          `json:"error"`
	Job      xkaapi.JobStats `json:"job"`
}

const (
	loadKindFib = iota
	loadKindLoop
	loadKindChol
	loadNumKinds
)

var loadKindNames = [loadNumKinds]string{"fib", "loop", "chol"}

// loadTally accumulates outcomes across clients. "drained" counts requests
// lost to a server shutting down mid-load (503 or connection errors),
// which only a graceful-drain exercise (-expect-drain) may produce: in a
// normal run they are unexpected errors — a crashed server must not look
// like a clean drain.
type loadTally struct {
	okBy      [loadNumKinds]atomic.Int64
	bad       atomic.Int64 // 200 with ok=false: wrong result
	unexpect  atomic.Int64 // any status/error outside the protocol
	drained   atomic.Int64 // 503 or network error while server drains
	retried   atomic.Int64 // 429s absorbed by retry
	cancelled atomic.Int64 // 504/499: per-request deadline hit

	mu       sync.Mutex
	firstUnx string // first unexpected outcome, for the summary
}

func (lt *loadTally) noteUnexpected(desc string) {
	lt.unexpect.Add(1)
	lt.mu.Lock()
	if lt.firstUnx == "" {
		lt.firstUnx = desc
	}
	lt.mu.Unlock()
}

// runLoad drives a running "xkserve serve" with a verified mixed workload
// and returns the process exit code.
func runLoad(args []string) int {
	fs := flag.NewFlagSet("xkserve load", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the serve instance")
	clients := fs.Int("clients", 8, "concurrent client goroutines")
	jobs := fs.Int("jobs", 60, "requests per client")
	fibN := fs.Int("fib", 22, "fib request size")
	loopN := fs.Int("loop", 200_000, "loop request iteration count")
	cholN := fs.Int("chol", 192, "cholesky request order")
	nb := fs.Int("nb", 64, "cholesky tile size")
	timeout := fs.Duration("timeout", 0, "per-request deadline sent to the server (0 = server default)")
	burst := fs.Int("burst", 0, "fire N simultaneous cholesky requests first (backpressure probe)")
	expectDrain := fs.Bool("expect-drain", false, "tolerate 503s/connection errors as a graceful mid-load server drain")
	expect429 := fs.Bool("expect-429", false, "fail unless the burst phase observed at least one 429")
	fibBurst := fs.Int("fib-burst", 0, "fire N simultaneous /fib requests with no retry (queued-admission SLO probe)")
	burstSLO := fs.Duration("burst-slo", 5*time.Second, "per-request completion SLO for -fib-burst")
	burstMinOK := fs.Float64("burst-min-ok", 0.9, "minimum fraction of -fib-burst requests that must answer 200 within the SLO")
	hotAffinity := fs.Int("hot-affinity", 0, "fire N simultaneous /loop requests all pinned to one shard (affinity=1), to drive cross-shard stealing on a sharded server")
	hotLoop := fs.Int("hot-loop", 1_000_000, "loop iteration count of each -hot-affinity request")
	expectShards := fs.Int("expect-shards", 0, "fail unless /stats reports exactly N shards, every shard executed tasks, and (with -hot-affinity) work migrated between shards")
	retries := fs.Int("retries", 0, "max retries of a 429, honoring the server's full Retry-After with jitter (0 = the legacy fast poll: unbounded retries at Retry-After/20)")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for the server to become healthy")
	fs.Parse(args)

	if !waitHealthy(*addr, *wait) {
		fmt.Fprintf(os.Stderr, "xkserve load: server at %s not healthy within %v\n", *addr, *wait)
		return 1
	}

	var lt loadTally
	observed429 := 0
	if *burst > 0 {
		observed429 = runBurst(*addr, *burst, *cholN, *nb, &lt)
		fmt.Printf("xkserve load: burst of %d simultaneous cholesky requests: %d rejected with 429\n",
			*burst, observed429)
		if *expect429 && observed429 == 0 {
			fmt.Fprintln(os.Stderr, "xkserve load: burst saw no 429 — backpressure not engaging")
			return 1
		}
	}

	if *fibBurst > 0 {
		if !runFibBurst(*addr, *fibBurst, *fibN, *burstSLO, *burstMinOK, &lt) {
			return 1
		}
	}

	if *hotAffinity > 0 {
		runHotAffinity(*addr, *hotAffinity, *hotLoop, *retries, &lt)
	}

	urls := [loadNumKinds]string{
		loadKindFib:  fmt.Sprintf("%s/fib?n=%d", *addr, *fibN),
		loadKindLoop: fmt.Sprintf("%s/loop?n=%d", *addr, *loopN),
		loadKindChol: fmt.Sprintf("%s/cholesky?n=%d&nb=%d&verify=1", *addr, *cholN, *nb),
	}
	if *timeout > 0 {
		for k := range urls {
			urls[k] += "&timeout=" + timeout.String()
		}
	}
	wantFib := server.FibSeq(*fibN)
	wantLoop := int64(*loopN) * int64(*loopN-1) / 2

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for j := 0; j < *jobs; j++ {
				kind := (client + j) % loadNumKinds
				if !doRequest(urls[kind], kind, wantFib, wantLoop, *expectDrain, *retries, &lt) {
					return // server draining or gone: stop this client
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := int64(0)
	fmt.Printf("xkserve load: %d clients x %d requests against %s\n", *clients, *jobs, *addr)
	for k, name := range loadKindNames {
		n := lt.okBy[k].Load()
		total += n
		fmt.Printf("  %-5s %6d ok\n", name, n)
	}
	fmt.Printf("  total %6d verified in %v (%.0f req/s), %d x 429 retried, %d cancelled, %d lost to drain\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		lt.retried.Load(), lt.cancelled.Load(), lt.drained.Load())

	switch {
	case lt.bad.Load() > 0:
		fmt.Fprintf(os.Stderr, "xkserve load: FAILED: %d wrong results\n", lt.bad.Load())
		return 1
	case lt.unexpect.Load() > 0:
		fmt.Fprintf(os.Stderr, "xkserve load: FAILED: %d unexpected errors (first: %s)\n",
			lt.unexpect.Load(), lt.firstUnx)
		return 1
	case total == 0 && lt.drained.Load() == 0:
		fmt.Fprintln(os.Stderr, "xkserve load: FAILED: no request completed")
		return 1
	}
	if *expectShards > 0 {
		if !checkShards(*addr, *expectShards, *hotAffinity > 0) {
			return 1
		}
	}
	fmt.Println("xkserve load: all completed requests verified")
	return 0
}

// runHotAffinity deliberately overloads one shard: n simultaneous /loop
// requests, every one pinned to the same shard with affinity=1. On a
// sharded server the pinned shard's inbox backlogs while its siblings
// idle, so the cross-shard steal path must migrate the queued roots over —
// visible afterwards as stolen_in/stolen_out in /stats. Responses are
// verified like any other /loop request (migration must not change
// results).
func runHotAffinity(addr string, n, loopN, retries int, lt *loadTally) {
	url := fmt.Sprintf("%s/loop?n=%d&affinity=1", addr, loopN)
	want := int64(loopN) * int64(loopN-1) / 2
	var wg sync.WaitGroup
	var release sync.WaitGroup
	release.Add(1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release.Wait() // one simultaneous wave onto one shard
			doRequest(url, loadKindLoop, 0, want, false, retries, lt)
		}()
	}
	release.Done()
	wg.Wait()
	fmt.Printf("xkserve load: hot-affinity wave: %d simultaneous /loop?n=%d requests pinned to one shard\n", n, loopN)
}

// shardStatsReply mirrors the per-shard entries of the server's /stats.
type shardStatsReply struct {
	Shard     int   `json:"shard"`
	Executed  int64 `json:"executed"`
	StolenIn  int64 `json:"stolen_in"`
	StolenOut int64 `json:"stolen_out"`
}

// checkShards fetches /stats and verifies the sharding actually engaged:
// the server reports exactly want shards, every shard executed tasks (the
// router spread the load), and — when a hot-affinity wave overloaded one
// shard — at least one root migrated between shards.
func checkShards(addr string, want int, wantSteals bool) bool {
	resp, err := http.Get(addr + "/stats")
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkserve load: FAILED: /stats: %v\n", err)
		return false
	}
	defer resp.Body.Close()
	var stats struct {
		Shards     int               `json:"shards"`
		ShardStats []shardStatsReply `json:"shard_stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fmt.Fprintf(os.Stderr, "xkserve load: FAILED: /stats decode: %v\n", err)
		return false
	}
	if stats.Shards != want || len(stats.ShardStats) != want {
		fmt.Fprintf(os.Stderr, "xkserve load: FAILED: /stats reports %d shards (%d entries), want %d\n",
			stats.Shards, len(stats.ShardStats), want)
		return false
	}
	var stolen int64
	for _, ss := range stats.ShardStats {
		if ss.Executed == 0 {
			fmt.Fprintf(os.Stderr, "xkserve load: FAILED: shard %d executed no tasks — placement not spreading\n", ss.Shard)
			return false
		}
		stolen += ss.StolenIn
		fmt.Printf("  shard %d: executed=%d stolen_in=%d stolen_out=%d\n",
			ss.Shard, ss.Executed, ss.StolenIn, ss.StolenOut)
	}
	if wantSteals && stolen == 0 {
		fmt.Fprintln(os.Stderr, "xkserve load: FAILED: hot-affinity wave ran but no cross-shard steal was recorded")
		return false
	}
	fmt.Printf("xkserve load: sharding verified: %d shards all executing, %d cross-shard steals\n", want, stolen)
	return true
}

// runFibBurst is the queued-admission SLO probe: it fires n simultaneous
// /fib requests with NO retry — before the admission queue, anything past
// the in-flight budget came back as an instant 429 — and requires at least
// minOK of them to answer a verified 200 within slo. A queued server
// absorbs the whole burst (modulo its queue bound): waiting a few
// milliseconds for a slot, and riding a coalesced batch job, converts
// would-be 429s into completed responses. The probe prints the latency
// spread so the queue/batch knobs are tuned against numbers, not guesses.
func runFibBurst(addr string, n, fibN int, slo time.Duration, minOK float64, lt *loadTally) bool {
	url := fmt.Sprintf("%s/fib?n=%d&timeout=%s", addr, fibN, slo)
	want := server.FibSeq(fibN)
	type burstOut struct {
		status  int
		ok      bool
		elapsed time.Duration
	}
	outs := make([]burstOut, n)
	var wg sync.WaitGroup
	var release sync.WaitGroup
	release.Add(1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			release.Wait() // line everybody up for a genuinely simultaneous burst
			start := time.Now()
			resp, err := http.Get(url)
			if err != nil {
				outs[i] = burstOut{status: -1}
				return
			}
			var rep loadReply
			decodeOK := json.NewDecoder(resp.Body).Decode(&rep) == nil
			resp.Body.Close()
			outs[i] = burstOut{
				status:  resp.StatusCode,
				ok:      decodeOK && rep.OK && rep.Result == want,
				elapsed: time.Since(start),
			}
		}(i)
	}
	release.Done()
	wg.Wait()

	within, rejected, other := 0, 0, 0
	var durs []time.Duration
	for _, o := range outs {
		switch {
		case o.status == http.StatusOK && o.ok:
			durs = append(durs, o.elapsed)
			lt.okBy[loadKindFib].Add(1)
			if o.elapsed <= slo {
				within++
			}
		case o.status == http.StatusOK:
			lt.bad.Add(1)
		case o.status == http.StatusTooManyRequests:
			rejected++
		default:
			other++
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(q float64) time.Duration {
		if len(durs) == 0 {
			return 0
		}
		i := int(q * float64(len(durs)-1))
		return durs[i]
	}
	frac := float64(within) / float64(n)
	fmt.Printf("xkserve load: fib burst of %d simultaneous requests: %d ok within %v SLO (%.0f%%), %d x 429, %d other\n",
		n, within, slo, 100*frac, rejected, other)
	if len(durs) > 0 {
		fmt.Printf("  burst latency p50=%v p99=%v max=%v\n",
			pct(0.50).Round(time.Millisecond), pct(0.99).Round(time.Millisecond),
			durs[len(durs)-1].Round(time.Millisecond))
	}
	if frac < minOK {
		fmt.Fprintf(os.Stderr, "xkserve load: FAILED: fib burst completed %.0f%% within SLO, want >= %.0f%% — queued admission is not absorbing the burst\n",
			100*frac, 100*minOK)
		return false
	}
	return true
}

// waitHealthy polls /healthz until it answers 200 or the budget elapses.
func waitHealthy(addr string, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runBurst fires n simultaneous cholesky requests with no retry, counting
// 429s; 200s are verified like any other request. Every connection is dialed
// BEFORE the release gate drops: on a small machine the dials serialize over
// several milliseconds, long enough for early requests to vacate their
// admission slots before late ones arrive — which would let an over-capacity
// burst slip through without a single 429. Pre-dialing makes the burst
// simultaneous where it matters: at the server's admission gate.
func runBurst(addr string, n, cholN, nb int, lt *loadTally) int {
	path := fmt.Sprintf("/cholesky?n=%d&nb=%d", cholN, nb)
	host := strings.TrimPrefix(strings.TrimPrefix(addr, "http://"), "https://")
	var saw429 atomic.Int64
	var wg sync.WaitGroup
	var release sync.WaitGroup
	release.Add(1)
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", host)
		if err != nil {
			lt.noteUnexpected("burst dial: " + err.Error())
			continue
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			req, err := http.NewRequest(http.MethodGet, addr+path, nil)
			if err != nil {
				lt.noteUnexpected("burst: " + err.Error())
				return
			}
			release.Wait() // line everybody up for a genuinely simultaneous burst
			if err := req.Write(conn); err != nil {
				lt.noteUnexpected("burst write: " + err.Error())
				return
			}
			resp, err := http.ReadResponse(bufio.NewReader(conn), req)
			if err != nil {
				lt.noteUnexpected("burst: " + err.Error())
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				saw429.Add(1)
			case http.StatusOK:
				var rep loadReply
				if json.NewDecoder(resp.Body).Decode(&rep) != nil || !rep.OK {
					lt.bad.Add(1)
				} else {
					lt.okBy[loadKindChol].Add(1)
				}
			default:
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
				lt.noteUnexpected(fmt.Sprintf("burst: status %d: %s", resp.StatusCode, body))
			}
		}(conn)
	}
	release.Done()
	wg.Wait()
	return int(saw429.Load())
}

// doRequest performs one workload request, retrying 429s with the server's
// advertised backoff. With retries == 0 it polls fast and unbounded (the
// legacy behavior the pre-chaos phases are tuned to: Retry-After/20, up to
// 100 attempts); with retries > 0 it is a well-behaved client, honoring
// the full advertised Retry-After with jitter and giving up for good after
// that many 429s. It reports false when the server is draining (or gone)
// and the client should stop. Connection errors and 503s count as a
// graceful drain only when expectDrain is set (the SIGTERM exercise);
// otherwise a vanished server is an unexpected failure.
func doRequest(url string, kind int, wantFib, wantLoop int64, expectDrain bool, retries int, lt *loadTally) bool {
	noteDown := func(desc string) bool {
		if expectDrain {
			lt.drained.Add(1)
		} else {
			lt.noteUnexpected(desc)
		}
		return false
	}
	for attempt := 0; ; attempt++ {
		resp, err := http.Get(url)
		if err != nil {
			return noteDown("connection failed: " + err.Error())
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			return noteDown("response read failed: " + rerr.Error())
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var rep loadReply
			if json.Unmarshal(body, &rep) != nil || !rep.OK {
				lt.bad.Add(1)
				return true
			}
			switch kind {
			case loadKindFib:
				if rep.Result != wantFib {
					lt.bad.Add(1)
					return true
				}
			case loadKindLoop:
				if rep.Result != wantLoop {
					lt.bad.Add(1)
					return true
				}
			}
			lt.okBy[kind].Add(1)
			return true
		case http.StatusTooManyRequests:
			if retries > 0 {
				if attempt >= retries {
					lt.noteUnexpected(fmt.Sprintf("still 429 after %d Retry-After backoffs", retries))
					return true
				}
				lt.retried.Add(1)
				time.Sleep(jitteredRetryAfter(resp))
				continue
			}
			if attempt > 100 {
				lt.noteUnexpected("budget never freed after 100 retries")
				return true
			}
			lt.retried.Add(1)
			time.Sleep(retryAfter(resp))
		case http.StatusServiceUnavailable:
			return noteDown("503: " + string(body))
		case http.StatusGatewayTimeout, 499:
			lt.cancelled.Add(1)
			return true
		default:
			lt.noteUnexpected(fmt.Sprintf("status %d on %s: %.200s", resp.StatusCode, url, body))
			return true
		}
	}
}

// jitteredRetryAfter honors the server's full advertised Retry-After
// (default 1s when absent) with ±25% random jitter, so a burst of clients
// rejected together does not come back as a synchronized thundering herd
// exactly Retry-After seconds later.
func jitteredRetryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	return d - d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// retryAfter honors the server's Retry-After header, scaled down so tests
// stay fast, with a floor to avoid a busy loop.
func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second / 20 // 1s advertised -> 50ms polls
		}
	}
	return 50 * time.Millisecond
}
