package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"xkaapi"
	"xkaapi/server"
)

// runServe runs the HTTP front-end until SIGTERM/SIGINT, then drains:
// stop routing (healthz 503), refuse new work, wait for in-flight
// handlers, drain the pool, and verify the scheduler counters balance.
// The returned exit code is 0 only for a clean drain.
func runServe(args []string) int {
	fs := flag.NewFlagSet("xkserve serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker threads in the shared pool")
	shards := fs.Int("shards", 1, "scheduler shards behind the load-aware router (1 = single pool); workers are spread evenly across shards")
	budget := fs.Int("budget", 0, "max in-flight jobs (0 = 2x workers)")
	queue := fs.Int("queue", 0, "admission queue depth: requests beyond the budget wait here under their deadline (0 = 4x budget, -1 = no queue)")
	batchWindow := fs.Duration("batch-window", 0, "coalescing window for /fib and /loop (0 = 500µs default, -1ns = no batching)")
	batchMax := fs.Int("batch-max", 0, "max requests folded into one batched job (0 = 8)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	maxFib := fs.Int("max-fib", 0, "cap on fib request size (0 = default)")
	maxLoop := fs.Int("max-loop", 0, "cap on loop request size (0 = default)")
	maxChol := fs.Int("max-chol", 0, "cap on cholesky request order (0 = default)")
	chaosSpec := fs.String("chaos", "", "fault-injection scenario: named fragments joined with '+', optional ':<seed>' (panic, steal, stall, inbox, latency, wedge, all; e.g. stall+panic:7); empty = disabled")
	healthStall := fs.Duration("health-stall", 0, "how long a shard may sit on a nonempty inbox without progress before the router diverts around it (0 = 400ms default; needs -shards > 1)")
	sloP99 := fs.Duration("slo", 0, "p99 latency SLO per endpoint: past it the brownout controller degrades gracefully (sheds oversized requests, widens batch windows, /healthz reports degraded); 0 = disabled")
	panicRetries := fs.Int("panic-retries", 0, "times a request's job is resubmitted after failing with a task panic (0 = a panic is a 500)")
	fs.Parse(args)

	inj, err := xkaapi.ParseChaos(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkserve: bad -chaos spec: %v\n", err)
		return 1
	}
	rtOpts := []xkaapi.Option{xkaapi.WithWorkers(*workers)}
	if *shards > 1 {
		rtOpts = append(rtOpts, xkaapi.WithShards(*shards))
	}
	if *healthStall > 0 {
		rtOpts = append(rtOpts, xkaapi.WithShardHealth(0, *healthStall))
	}
	if inj != nil {
		// One injector drives the whole stack: the scheduler sites through
		// the runtime, the handler-latency site through the server config.
		rtOpts = append(rtOpts, xkaapi.WithChaos(inj))
	}
	rt := xkaapi.New(rtOpts...)
	srv := server.New(server.Config{
		Runtime:        rt,
		Budget:         *budget,
		QueueDepth:     *queue,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		DefaultTimeout: *timeout,
		MaxFib:         *maxFib,
		MaxLoop:        *maxLoop,
		MaxChol:        *maxChol,
		SLO:            server.SLO{FibP99: *sloP99, LoopP99: *sloP99, CholP99: *sloP99},
		PanicRetries:   *panicRetries,
		Chaos:          inj,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("xkserve: serving on %s (%d workers, %d shard(s), budget %d, queue %d, default timeout %v)\n",
		*addr, rt.Workers(), rt.Shards(), srv.Budget(), srv.QueueCap(), *timeout)
	if inj != nil {
		fmt.Printf("xkserve: chaos armed: %s (panic retries %d)\n", *chaosSpec, *panicRetries)
	}

	select {
	case <-ctx.Done():
		// Unregister the signal handler immediately: a second SIGTERM/SIGINT
		// during a long drain then kills the process with default semantics
		// instead of being swallowed.
		stop()
		fmt.Println("xkserve: signal received, draining (send again to force-kill)")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "xkserve: listener failed: %v\n", err)
		rt.Close()
		return 1
	}

	// Drain sequence: stop admitting (healthz goes 503 so load balancers
	// back off), let in-flight handlers finish via Shutdown, then drain the
	// pool and read the quiescent counters.
	srv.StartDrain()
	clean := true
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "xkserve: shutdown incomplete: %v\n", err)
		clean = false
	}
	srv.Close() // no handler can submit anymore: stop the batch collectors
	if err := rt.Wait(); err != nil {
		// Failures here were already reported per request; jobs failing
		// with cancellation during a drain are expected, anything else is
		// not. Surface the aggregate for the operator either way.
		fmt.Printf("xkserve: drained job failures (aggregated): %s\n", server.ErrorLine(err))
	}
	s := rt.Stats() // pool is quiescent now: counters balance exactly
	balanced := s.Spawned == s.Executed+s.Cancelled
	fmt.Printf("xkserve: scheduler spawned=%d executed=%d cancelled=%d panicked=%d steals=%d/%d combines=%d splits=%d parks=%d\n",
		s.Spawned, s.Executed, s.Cancelled, s.Panicked,
		s.StealHits, s.StealRequests, s.Combines, s.Splits, s.Parks)
	if !balanced {
		fmt.Fprintf(os.Stderr, "xkserve: counter imbalance: spawned=%d != executed=%d + cancelled=%d\n",
			s.Spawned, s.Executed, s.Cancelled)
		clean = false
	}
	if rt.Shards() > 1 {
		// Per-shard breakdown: executed shows where work ran, stolen_in/out
		// how much the cross-shard rebalancer migrated. The spawned balance
		// only holds at the fleet aggregate above, by design.
		for _, ss := range rt.ShardStats() {
			fmt.Printf("xkserve: shard %d/%d spawned=%d executed=%d cancelled=%d stolen_in=%d stolen_out=%d parks=%d\n",
				ss.Shard, rt.Shards(), ss.Sched.Spawned, ss.Sched.Executed, ss.Sched.Cancelled,
				ss.StolenIn, ss.StolenOut, ss.Sched.Parks)
		}
	}
	if inj != nil {
		// Per-site injection counts, so a chaos run's exit report shows
		// which failures the drain above survived.
		fmt.Printf("xkserve: chaos counts: %s\n", inj.Counts())
	}
	if err := rt.CloseErr(); err != nil {
		// The summary counts every failed job over the runtime's lifetime
		// (drain cancellations included) and shows the first failure.
		fmt.Printf("xkserve: lifetime job failures: %s\n", server.ErrorLine(err))
	}
	if clean {
		fmt.Println("xkserve: drained cleanly")
		return 0
	}
	return 1
}
