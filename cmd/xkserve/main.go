// Command xkserve demonstrates the concurrent-submission subsystem: one
// X-Kaapi runtime serving many independent clients at once, the way a
// request-serving system would share a worker pool — including the failure
// isolation such a system needs.
//
// N client goroutines each fire M jobs at the shared runtime, cycling
// through the three paradigms of the paper:
//
//   - fib: fork-join recursion (Spawn/Sync), spawn-bound;
//   - loop: an adaptive foreach reduction (kaapic_foreach), bandwidth-bound;
//   - chol: a tile Cholesky factorization declared as dataflow tasks, DAG
//     scheduling with real floating-point kernels.
//
// With -faults N, N extra jobs panic on purpose, spread across the
// paradigms. A panicking job fails only itself: the runtime captures the
// panic into that job's error (surfaced here in the per-kind summary) and
// every other client's jobs keep running — one bad request can no longer
// take the whole demo down.
//
// SIGINT (ctrl-C) cancels the serving context: in-flight jobs are
// abandoned (reported as cancelled, not failures), the pool drains, and
// the tool still prints its summary.
//
// Every completed job's result is verified. The tool reports per-kind
// counts, per-kind error summaries, end-to-end throughput in jobs/s, and
// the scheduler counters, which must balance (spawned == executed +
// cancelled) once the pool is drained. The exit status is non-zero only if
// a job failed unexpectedly: wrong results, or errors other than the
// injected panics and the cancellations of an interrupt.
//
// Usage:
//
//	xkserve [-workers N] [-clients 8] [-jobs 100] [-faults 0]
//	        [-fib 22] [-loop 200000] [-chol 192] [-nb 64]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi"
	"xkaapi/internal/cholesky"
	"xkaapi/internal/tile"
)

func fibTask(p *xkaapi.Proc, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var a, b int64
	p.Spawn(func(p *xkaapi.Proc) { fibTask(p, &a, n-1) })
	fibTask(p, &b, n-2)
	p.Sync()
	*r = a + b
}

func fibSeq(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

const (
	kindFib = iota
	kindLoop
	kindChol
	kindFault // deliberately panicking job (-faults)
	numKinds
)

var kindNames = [numKinds]string{"fib", "loop", "chol", "fault"}

// tally accumulates per-kind outcomes.
type tally struct {
	done      [numKinds]atomic.Int64 // jobs completed (any outcome)
	failed    [numKinds]atomic.Int64 // jobs with an error
	cancelled [numKinds]atomic.Int64 // jobs cancelled by the interrupt context
	badResult [numKinds]atomic.Int64 // jobs that completed with a wrong answer

	mu        sync.Mutex
	firstErrs [numKinds]error // first error seen per kind, for the summary
}

func (ta *tally) record(kind int, err error, resultOK bool) {
	ta.done[kind].Add(1)
	switch {
	case errors.Is(err, context.Canceled):
		ta.cancelled[kind].Add(1)
	case err != nil:
		ta.failed[kind].Add(1)
		ta.mu.Lock()
		if ta.firstErrs[kind] == nil {
			ta.firstErrs[kind] = err
		}
		ta.mu.Unlock()
	case !resultOK:
		ta.badResult[kind].Add(1)
	}
}

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads in the shared pool")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	jobs := flag.Int("jobs", 100, "jobs per client")
	faults := flag.Int("faults", 0, "extra deliberately panicking jobs (failure-isolation demo)")
	fibN := flag.Int("fib", 22, "fib job size")
	loopN := flag.Int("loop", 200_000, "loop job iteration count")
	cholN := flag.Int("chol", 192, "cholesky job matrix order")
	nb := flag.Int("nb", 64, "cholesky tile size")
	flag.Parse()

	// ctrl-C cancels the serving context: jobs already submitted fail with
	// context.Canceled, clients stop submitting, the pool drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rt := xkaapi.New(xkaapi.WithWorkers(*workers))
	defer rt.Close()

	wantFib := fibSeq(*fibN)
	wantLoop := int64(*loopN) * int64(*loopN-1) / 2
	cholSrc := tile.NewSPD(*cholN, 42)

	var ta tally

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for j := 0; j < *jobs; j++ {
				if ctx.Err() != nil {
					return // interrupted: stop submitting
				}
				switch (client + j) % 3 {
				case kindFib:
					var r int64
					err := rt.SubmitCtx(ctx, func(p *xkaapi.Proc) { fibTask(p, &r, *fibN) }).Wait()
					ta.record(kindFib, err, err != nil || r == wantFib)
				case kindLoop:
					var sum atomic.Int64
					err := rt.SubmitCtx(ctx, func(p *xkaapi.Proc) {
						xkaapi.Foreach(p, 0, *loopN, func(_ *xkaapi.Proc, lo, hi int) {
							s := int64(0)
							for i := lo; i < hi; i++ {
								s += int64(i)
							}
							sum.Add(s)
						})
					}).Wait()
					ta.record(kindLoop, err, err != nil || sum.Load() == wantLoop)
				case kindChol:
					m := tile.FromDense(cholSrc, *nb)
					err := cholesky.KaapiCtx(ctx, rt, m)
					ta.record(kindChol, err, true)
				}
			}
		}(c)
	}

	// Fault injector: every fault job panics inside a different paradigm.
	// These must fail — with a PanicError, nothing else — and must not
	// disturb any other client.
	faultErrs := make([]error, *faults)
	var fwg sync.WaitGroup
	for f := 0; f < *faults; f++ {
		fwg.Add(1)
		go func(f int) {
			defer fwg.Done()
			var err error
			switch f % 3 {
			case 0: // fork-join child panics
				err = rt.SubmitCtx(ctx, func(p *xkaapi.Proc) {
					p.Spawn(func(*xkaapi.Proc) { panic(fmt.Sprintf("injected fault %d", f)) })
					p.Sync()
				}).Wait()
			case 1: // adaptive-loop chunk panics
				err = rt.SubmitCtx(ctx, func(p *xkaapi.Proc) {
					xkaapi.Foreach(p, 0, *loopN, func(_ *xkaapi.Proc, lo, hi int) {
						// The chunks partition [0, n), so exactly the chunks
						// past the midpoint panic — under any split schedule.
						if hi > *loopN/2 {
							panic(fmt.Sprintf("injected fault %d", f))
						}
					})
				}).Wait()
			case 2: // dataflow task panics; successor must be cancelled
				var h xkaapi.Handle
				err = rt.SubmitCtx(ctx, func(p *xkaapi.Proc) {
					p.SpawnTask(func(*xkaapi.Proc) { panic(fmt.Sprintf("injected fault %d", f)) },
						xkaapi.Write(&h))
					p.SpawnTask(func(*xkaapi.Proc) {}, xkaapi.Read(&h))
				}).Wait()
			}
			faultErrs[f] = err
			ta.record(kindFault, err, true)
		}(f)
	}

	wg.Wait()
	fwg.Wait()
	rt.Wait() // pool must be fully drained before reading stats
	elapsed := time.Since(start)
	interrupted := ctx.Err() != nil

	// A fault job succeeded, or failed with something other than its
	// injected panic? That is a real failure of the isolation machinery.
	faultsOK := true
	for _, err := range faultErrs {
		var pe *xkaapi.PanicError
		if errors.Is(err, context.Canceled) {
			continue // interrupt won the race with the panic: fine
		}
		if err == nil || !errors.As(err, &pe) {
			faultsOK = false
		}
	}

	total, failed, cancelled, bad := int64(0), int64(0), int64(0), int64(0)
	fmt.Printf("xkserve: %d clients x %d jobs (+%d faults) over one %d-worker pool\n",
		*clients, *jobs, *faults, rt.Workers())
	ta.mu.Lock()
	for k, name := range kindNames {
		n := ta.done[k].Load()
		if k == kindFault && n == 0 {
			continue
		}
		total += n
		failed += ta.failed[k].Load()
		cancelled += ta.cancelled[k].Load()
		bad += ta.badResult[k].Load()
		line := fmt.Sprintf("  %-5s %6d jobs", name, n)
		if f := ta.failed[k].Load(); f > 0 {
			line += fmt.Sprintf("  %d failed (first: %s)", f, firstLine(ta.firstErrs[k]))
		}
		if c := ta.cancelled[k].Load(); c > 0 {
			line += fmt.Sprintf("  %d cancelled", c)
		}
		if b := ta.badResult[k].Load(); b > 0 {
			line += fmt.Sprintf("  %d WRONG RESULTS", b)
		}
		fmt.Println(line)
	}
	ta.mu.Unlock()
	fmt.Printf("  total %6d jobs in %v  (%.0f jobs/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	if interrupted {
		fmt.Println("  interrupted: remaining jobs cancelled, pool drained cleanly")
	}

	s := rt.Stats()
	fmt.Printf("  scheduler: spawned=%d executed=%d cancelled=%d panicked=%d steals=%d/%d combines=%d splits=%d parks=%d\n",
		s.Spawned, s.Executed, s.Cancelled, s.Panicked, s.StealHits, s.StealRequests, s.Combines, s.Splits, s.Parks)

	// Exit non-zero only on unexpected failures: wrong results, counter
	// imbalance, a non-fault job erroring without being cancelled, or a
	// fault job not failing with its panic.
	unexpected := failed - ta.failed[kindFault].Load()
	balanced := s.Spawned == s.Executed+s.Cancelled
	if bad > 0 || unexpected > 0 || !balanced || !faultsOK {
		fmt.Printf("FAILED: %d wrong results, %d unexpected errors, faultsOK=%v, spawned=%d executed=%d cancelled=%d\n",
			bad, unexpected, faultsOK, s.Spawned, s.Executed, s.Cancelled)
		os.Exit(1)
	}
	fmt.Println("  all completed jobs verified, failures isolated, counters balanced")
}

// firstLine trims an error (PanicErrors carry a full stack) to its first
// line for the one-line summary.
func firstLine(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
