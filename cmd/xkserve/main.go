// Command xkserve demonstrates the concurrent-submission subsystem: one
// X-Kaapi runtime serving many independent clients at once, the way a
// request-serving system would share a worker pool.
//
// N client goroutines each fire M jobs at the shared runtime, cycling
// through the three paradigms of the paper:
//
//   - fib: fork-join recursion (Spawn/Sync), spawn-bound;
//   - loop: an adaptive foreach reduction (kaapic_foreach), bandwidth-bound;
//   - chol: a tile Cholesky factorization declared as dataflow tasks, DAG
//     scheduling with real floating-point kernels.
//
// Every job's result is verified. The tool reports per-kind counts,
// end-to-end throughput in jobs/s, and the scheduler counters, which must
// balance (spawned == executed) once the pool is drained.
//
// Usage:
//
//	xkserve [-workers N] [-clients 8] [-jobs 100] [-fib 22] [-loop 200000] [-chol 192] [-nb 64]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi"
	"xkaapi/internal/cholesky"
	"xkaapi/internal/tile"
)

func fibTask(p *xkaapi.Proc, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var a, b int64
	p.Spawn(func(p *xkaapi.Proc) { fibTask(p, &a, n-1) })
	fibTask(p, &b, n-2)
	p.Sync()
	*r = a + b
}

func fibSeq(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads in the shared pool")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	jobs := flag.Int("jobs", 100, "jobs per client")
	fibN := flag.Int("fib", 22, "fib job size")
	loopN := flag.Int("loop", 200_000, "loop job iteration count")
	cholN := flag.Int("chol", 192, "cholesky job matrix order")
	nb := flag.Int("nb", 64, "cholesky tile size")
	flag.Parse()

	rt := xkaapi.New(xkaapi.WithWorkers(*workers))
	defer rt.Close()

	wantFib := fibSeq(*fibN)
	wantLoop := int64(*loopN) * int64(*loopN-1) / 2
	cholSrc := tile.NewSPD(*cholN, 42)

	var done [3]atomic.Int64 // completed jobs by kind
	var failures atomic.Int64
	kinds := [3]string{"fib", "loop", "chol"}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for j := 0; j < *jobs; j++ {
				switch (client + j) % 3 {
				case 0:
					var r int64
					rt.Submit(func(p *xkaapi.Proc) { fibTask(p, &r, *fibN) }).Wait()
					if r != wantFib {
						failures.Add(1)
					}
					done[0].Add(1)
				case 1:
					var sum atomic.Int64
					rt.Submit(func(p *xkaapi.Proc) {
						xkaapi.Foreach(p, 0, *loopN, func(_ *xkaapi.Proc, lo, hi int) {
							s := int64(0)
							for i := lo; i < hi; i++ {
								s += int64(i)
							}
							sum.Add(s)
						})
					}).Wait()
					if sum.Load() != wantLoop {
						failures.Add(1)
					}
					done[1].Add(1)
				case 2:
					m := tile.FromDense(cholSrc, *nb)
					if err := cholesky.Kaapi(rt, m); err != nil {
						failures.Add(1)
					}
					done[2].Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	rt.Wait() // pool must be fully drained before reading stats
	elapsed := time.Since(start)

	total := int64(0)
	fmt.Printf("xkserve: %d clients x %d jobs over one %d-worker pool\n",
		*clients, *jobs, rt.Workers())
	for k, name := range kinds {
		n := done[k].Load()
		total += n
		fmt.Printf("  %-5s %6d jobs\n", name, n)
	}
	fmt.Printf("  total %6d jobs in %v  (%.0f jobs/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())

	s := rt.Stats()
	fmt.Printf("  scheduler: spawned=%d executed=%d steals=%d/%d combines=%d splits=%d parks=%d\n",
		s.Spawned, s.Executed, s.StealHits, s.StealRequests, s.Combines, s.Splits, s.Parks)
	if failures.Load() > 0 || s.Spawned != s.Executed {
		fmt.Printf("FAILED: %d bad results, spawned=%d executed=%d\n",
			failures.Load(), s.Spawned, s.Executed)
		os.Exit(1)
	}
	fmt.Println("  all results verified, counters balanced")
}
