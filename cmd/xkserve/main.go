// Command xkserve is the X-Kaapi network front-end and its load generator.
//
// "xkserve serve" runs an HTTP server (package server) that maps each
// request onto one job of a shared X-Kaapi worker pool: per-request
// deadlines and client disconnects cancel the job through the runtime's
// context machinery, a bounded in-flight budget rejects over-budget bursts
// with 429 + Retry-After, and SIGTERM/SIGINT drain in-flight jobs before
// the pool is closed — the process exits 0 only if the drain was clean and
// the scheduler counters balance (spawned == executed + cancelled).
//
// "xkserve load" drives a running serve instance with a mixed workload
// (fib fork-join, adaptive loop, Cholesky dataflow), verifies every
// response payload, retries 429s with the advertised backoff, and reports
// throughput plus per-kind outcome counts. It exits non-zero on any
// unexpected error, which makes it the integration-test driver ci.sh uses.
//
// With -shards N the serve pool is split into N scheduler shards behind
// the runtime's load-aware router (xkaapi.WithShards): requests spread to
// the least-loaded shard, an affinity=K query parameter pins a request's
// job to one shard, and idle shards steal queued roots from loaded
// siblings. /stats then carries a per-shard breakdown (shard_stats), and
// the load generator can drive and verify it: -hot-affinity overloads one
// shard on purpose, -expect-shards asserts every shard executed work and
// the overload migrated.
//
// Usage:
//
//	xkserve serve [-addr :8080] [-workers N] [-shards S] [-budget B]
//	              [-timeout 30s] [-drain-timeout 30s] [-max-fib 40]
//	              [-max-loop 50000000] [-max-chol 2048]
//	xkserve load  [-addr http://127.0.0.1:8080] [-clients 8] [-jobs 60]
//	              [-fib 22] [-loop 200000] [-chol 192] [-nb 64]
//	              [-timeout 0] [-burst 0] [-expect-429] [-expect-drain]
//	              [-hot-affinity 0] [-hot-loop 1000000] [-expect-shards 0]
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		os.Exit(runServe(os.Args[2:]))
	case "load":
		os.Exit(runLoad(os.Args[2:]))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "xkserve: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xkserve serve [flags]   run the HTTP front-end over one shared worker pool
  xkserve load  [flags]   drive a running serve with a verified mixed workload

run "xkserve serve -h" or "xkserve load -h" for the flags.`)
}
