package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEvalGatesBudgets(t *testing.T) {
	gates := &GateFile{AllocsPerOp: map[string]int64{
		"BenchmarkFleetSubmit": 2,
		"BenchmarkForEach":     0,
		"BenchmarkGone":        0,
	}}
	results := []BenchResult{
		{Name: "BenchmarkFleetSubmit-8", AllocsPerOp: 3, NsPerOp: 400},
		{Name: "BenchmarkForEach-8", AllocsPerOp: 0, NsPerOp: 21000},
		{Name: "BenchmarkUngated-8", AllocsPerOp: 99, NsPerOp: 5},
	}
	failures, warnings := evalGates(gates, results, nil)
	if len(warnings) != 0 {
		t.Errorf("warnings = %v, want none (no baseline)", warnings)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want 2 (budget overrun + missing benchmark)", failures)
	}
	if !strings.Contains(failures[0], "BenchmarkFleetSubmit") || !strings.Contains(failures[0], "3 allocs/op, budget 2") {
		t.Errorf("overrun failure = %q", failures[0])
	}
	if !strings.Contains(failures[1], "BenchmarkGone") || !strings.Contains(failures[1], "missing") {
		t.Errorf("missing-benchmark failure = %q", failures[1])
	}
}

func TestEvalGatesPasses(t *testing.T) {
	gates := &GateFile{AllocsPerOp: map[string]int64{"BenchmarkForEach": 1}}
	results := []BenchResult{{Name: "BenchmarkForEach-4", AllocsPerOp: 1}}
	if failures, _ := evalGates(gates, results, nil); len(failures) != 0 {
		t.Errorf("failures = %v, want none (at budget is within budget)", failures)
	}
}

func TestEvalGatesTimingAdvisory(t *testing.T) {
	gates := &GateFile{
		AllocsPerOp: map[string]int64{"BenchmarkSpawnExecute": 0},
		NsWarnPct:   25,
	}
	results := []BenchResult{
		{Name: "BenchmarkSpawnExecute-8", NsPerOp: 100, AllocsPerOp: 0, Iterations: 1000000},
		{Name: "BenchmarkForEach-8", NsPerOp: 21000, Iterations: 5000},
	}
	baseline := []BenchResult{
		{Name: "BenchmarkSpawnExecute", NsPerOp: 70, Iterations: 2000000}, // +42.9%: warn
		{Name: "BenchmarkForEach", NsPerOp: 20000, Iterations: 6000},      // +5%: quiet
	}
	failures, warnings := evalGates(gates, results, baseline)
	if len(failures) != 0 {
		t.Errorf("failures = %v, want none: timing regressions must not gate", failures)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "BenchmarkSpawnExecute") {
		t.Errorf("warnings = %v, want one about BenchmarkSpawnExecute", warnings)
	}
}

func TestEvalGatesTimingSkipsIncomparableRuns(t *testing.T) {
	gates := &GateFile{
		AllocsPerOp: map[string]int64{"BenchmarkSpawnExecute": 0},
		NsWarnPct:   25,
	}
	// A -benchtime=100x smoke against a 1s baseline: per-op time is warm-up
	// dominated and reads far slower, but the iteration counts differ by
	// orders of magnitude, so the advisory check must stay quiet.
	results := []BenchResult{{Name: "BenchmarkSpawnExecute-8", NsPerOp: 1100, Iterations: 100}}
	baseline := []BenchResult{{Name: "BenchmarkSpawnExecute", NsPerOp: 70, Iterations: 17000000}}
	failures, warnings := evalGates(gates, results, baseline)
	if len(failures) != 0 {
		t.Errorf("failures = %v, want none", failures)
	}
	if len(warnings) != 0 {
		t.Errorf("warnings = %v, want none: measurement bases are incomparable", warnings)
	}
}

func TestReadBenchStreamEchoes(t *testing.T) {
	in := strings.NewReader("goos: linux\nBenchmarkX-8 100 42.0 ns/op 0 B/op 0 allocs/op\nPASS\n")
	var out strings.Builder
	results, err := readBenchStream(in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkX-8" || results[0].AllocsPerOp != 0 {
		t.Errorf("results = %+v", results)
	}
	if !strings.Contains(out.String(), "goos: linux") || !strings.Contains(out.String(), "PASS") {
		t.Errorf("stream not passed through: %q", out.String())
	}
}

func TestLoadGateFileRejectsEmptyAndUnknown(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"allocs_per_op": {}}`), 0o644)
	if _, err := loadGateFile(empty); err == nil {
		t.Error("empty budget map accepted; an empty gate passes everything silently")
	}
	typo := filepath.Join(dir, "typo.json")
	os.WriteFile(typo, []byte(`{"allocs_per_opp": {"BenchmarkX": 0}}`), 0o644)
	if _, err := loadGateFile(typo); err == nil {
		t.Error("unknown field accepted; a typoed key would disable the gate silently")
	}
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"allocs_per_op": {"BenchmarkX": 1}, "ns_warn_pct": 25}`), 0o644)
	g, err := loadGateFile(good)
	if err != nil {
		t.Fatalf("valid gate file rejected: %v", err)
	}
	if g.AllocsPerOp["BenchmarkX"] != 1 || g.NsWarnPct != 25 {
		t.Errorf("gate file misparsed: %+v", g)
	}
}
