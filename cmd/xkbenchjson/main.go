// Command xkbenchjson converts `go test -bench` output on stdin into a
// BENCH_<n>.json artifact, so the benchmark trajectory of the runtime is
// recorded per PR (see `make bench-json`). The output file records, per
// benchmark: name, iterations, ns/op, and — when -benchmem was used —
// B/op and allocs/op, plus enough environment (go version, GOMAXPROCS,
// timestamp) to compare runs.
//
// The file is written to the current directory as BENCH_<n>.json where n
// is the smallest index not already present, or to -out when given.
//
// The diff mode compares two artifacts and prints a per-benchmark delta
// table (Markdown, so a CI job summary renders it): ns/op old → new with
// the percentage change, plus allocs/op when either side recorded them.
// Benchmarks present on only one side are listed as added or removed
// (GOMAXPROCS name suffixes like "-8" are stripped before matching, so
// artifacts from machines with different core counts still line up).
// `diff -latest` picks the pair itself: the two highest-numbered
// BENCH_<n>.json files, compared numerically so BENCH_10 sorts after
// BENCH_9 — this is what `make bench-diff` runs. The comparison is a
// report, not a gate — it always exits 0 unless an artifact cannot be
// read.
//
// The gate mode is the per-PR enforcement point: it reads the same bench
// output on stdin and checks each benchmark's allocs/op against the
// committed budgets in bench_gates.json (see `make bench-gate`). Budget
// overruns and missing gated benchmarks exit 1; ns/op regressions against
// the newest BENCH_<n>.json are advisory warnings only, because allocs/op
// is deterministic while container timing is not.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/core | xkbenchjson [-out FILE]
//	xkbenchjson diff OLD.json NEW.json
//	xkbenchjson diff -latest [-dir DIR]
//	go test -bench=. -benchtime=100x -benchmem ./internal/core | xkbenchjson gate -gates bench_gates.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark line.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchFile is the artifact schema.
type BenchFile struct {
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Timestamp  string        `json:"timestamp"`
	Packages   []string      `json:"packages"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "gate" {
		os.Exit(runGate(os.Args[2:]))
	}
	out := flag.String("out", "", "output file (default: next free BENCH_<n>.json)")
	flag.Parse()

	bf := BenchFile{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: pass the raw output through
		if pkg, ok := strings.CutPrefix(line, "pkg: "); ok {
			bf.Packages = append(bf.Packages, strings.TrimSpace(pkg))
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			bf.Benchmarks = append(bf.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "xkbenchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(bf.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "xkbenchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = nextBenchFile()
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkbenchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "xkbenchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("xkbenchjson: wrote %d benchmark(s) to %s\n", len(bf.Benchmarks), path)
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSpawnExecute-8   1000000   152.3 ns/op   24 B/op   1 allocs/op
func parseBenchLine(line string) (BenchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
		return BenchResult{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}

// nextBenchFile picks BENCH_<n>.json for the smallest n with no file yet.
func nextBenchFile() string {
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
