package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		want BenchResult
		ok   bool
	}{
		{
			line: "BenchmarkSpawnExecute-8   \t 8539915\t       152.3 ns/op",
			want: BenchResult{Name: "BenchmarkSpawnExecute-8", Iterations: 8539915, NsPerOp: 152.3},
			ok:   true,
		},
		{
			line: "BenchmarkForEach-8  1000  105 ns/op  24 B/op  1 allocs/op",
			want: BenchResult{Name: "BenchmarkForEach-8", Iterations: 1000, NsPerOp: 105,
				BytesPerOp: 24, AllocsPerOp: 1},
			ok: true,
		},
		{line: "goos: linux", ok: false},
		{line: "PASS", ok: false},
		{line: "ok  \txkaapi/internal/core\t2.153s", ok: false},
		{line: "", ok: false},
	}
	for _, c := range cases {
		got, ok := parseBenchLine(c.line)
		if ok != c.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("parseBenchLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}
