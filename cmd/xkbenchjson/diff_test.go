package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchKey(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSpawnExecute":      "BenchmarkSpawnExecute",
		"BenchmarkSpawnExecute-8":    "BenchmarkSpawnExecute",
		"BenchmarkSpawnExecute-16":   "BenchmarkSpawnExecute",
		"BenchmarkA-b":               "BenchmarkA-b", // non-numeric suffix stays
		"BenchmarkForEach/grain-4-2": "BenchmarkForEach/grain-4",
		"Benchmark-5":                "Benchmark",
	}
	for in, want := range cases {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiffReport(t *testing.T) {
	oldBF := &BenchFile{
		GoVersion: "go1.24.0", GoMaxProcs: 1, Timestamp: "t0",
		Benchmarks: []BenchResult{
			{Name: "BenchmarkSpawnExecute", NsPerOp: 70.87},
			{Name: "BenchmarkDequeTHEPushPop", NsPerOp: 40.44},
			{Name: "BenchmarkForEach", NsPerOp: 21301, AllocsPerOp: 1},
		},
	}
	newBF := &BenchFile{
		GoVersion: "go1.24.0", GoMaxProcs: 8, Timestamp: "t1",
		Benchmarks: []BenchResult{
			{Name: "BenchmarkSpawnExecute-8", NsPerOp: 68.25},
			{Name: "BenchmarkDequeChaseLevPushPop-8", NsPerOp: 29.73},
			{Name: "BenchmarkForEach-8", NsPerOp: 21000, AllocsPerOp: 1},
		},
	}
	got := diffReport("BENCH_0.json", "BENCH_1.json", oldBF, newBF)

	for _, want := range []string{
		// matched despite the -8 suffix, with a negative (improvement) delta
		"| BenchmarkSpawnExecute | 70.87 | 68.25 | -3.7% | 0 | 0 |",
		// renamed benchmarks appear as new + removed, not as a bogus match
		"| BenchmarkDequeChaseLevPushPop | — | 29.73 | new | — | 0 |",
		"| BenchmarkDequeTHEPushPop | 40.44 | — | removed | 0 | — |",
		"| BenchmarkForEach | 21301 | 21000 | -1.4% | 1 | 1 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff report missing line %q; got:\n%s", want, got)
		}
	}
}

// Identical snapshots must diff to all-zero deltas — no benchmark may leak
// into the new or removed sections, and every delta reads +0.0%.
func TestDiffReportIdentical(t *testing.T) {
	bf := &BenchFile{
		GoVersion: "go1.24.0", GoMaxProcs: 8, Timestamp: "t0",
		Benchmarks: []BenchResult{
			{Name: "BenchmarkSpawnExecute-8", NsPerOp: 70.87, AllocsPerOp: 0},
			{Name: "BenchmarkForEach-8", NsPerOp: 21301, AllocsPerOp: 1},
		},
	}
	got := diffReport("BENCH_0.json", "BENCH_1.json", bf, bf)
	if strings.Contains(got, "| new |") || strings.Contains(got, "| removed |") {
		t.Errorf("identical snapshots produced new/removed rows:\n%s", got)
	}
	for _, want := range []string{
		"| BenchmarkSpawnExecute | 70.87 | 70.87 | +0.0% | 0 | 0 |",
		"| BenchmarkForEach | 21301 | 21301 | +0.0% | 1 | 1 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff report missing line %q; got:\n%s", want, got)
		}
	}
}

// A benchmark present in only one artifact renders with an em-dash on the
// missing side and a new/removed marker instead of a percentage, and a
// zero-ns old value must not divide by zero.
func TestDiffReportOneSided(t *testing.T) {
	oldBF := &BenchFile{Benchmarks: []BenchResult{
		{Name: "BenchmarkOnlyOld", NsPerOp: 10, AllocsPerOp: 2},
		{Name: "BenchmarkZeroNs", NsPerOp: 0},
	}}
	newBF := &BenchFile{Benchmarks: []BenchResult{
		{Name: "BenchmarkOnlyNew", NsPerOp: 5.5},
		{Name: "BenchmarkZeroNs", NsPerOp: 3},
	}}
	got := diffReport("a.json", "b.json", oldBF, newBF)
	for _, want := range []string{
		"| BenchmarkOnlyNew | — | 5.50 | new | — | 0 |",
		"| BenchmarkOnlyOld | 10.00 | — | removed | 2 | — |",
		"| BenchmarkZeroNs | 0.00 | 3.00 | n/a | 0 | 0 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff report missing line %q; got:\n%s", want, got)
		}
	}
}

// Zero-alloc benchmarks are the hot-path contract of the scheduler: the
// rows must print literal 0, not blank, so an alloc regression is a
// visible 0 -> 1 in the table.
func TestDiffReportZeroAllocRow(t *testing.T) {
	oldBF := &BenchFile{Benchmarks: []BenchResult{
		{Name: "BenchmarkSteal-8", NsPerOp: 100, AllocsPerOp: 0, BytesPerOp: 0},
	}}
	newBF := &BenchFile{Benchmarks: []BenchResult{
		{Name: "BenchmarkSteal-8", NsPerOp: 110, AllocsPerOp: 1, BytesPerOp: 24},
	}}
	got := diffReport("a.json", "b.json", oldBF, newBF)
	want := "| BenchmarkSteal | 100 | 110 | +10.0% | 0 | 1 |"
	if !strings.Contains(got, want) {
		t.Errorf("diff report missing line %q; got:\n%s", want, got)
	}
}

// latestBenchFiles must order indices numerically: with BENCH_2, BENCH_9,
// BENCH_10 and BENCH_11 present, the pair is (10, 11) — a lexicographic
// or field-wise shell sort would pick (9, 11) or worse once indices reach
// two digits.
func TestLatestBenchFilesNumericOrder(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"BENCH_2.json", "BENCH_9.json", "BENCH_10.json", "BENCH_11.json",
		"BENCH_x.json", "BENCH_3.txt", "notbench.json", // ignored
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := latestBenchFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "BENCH_10.json"), filepath.Join(dir, "BENCH_11.json")}
	if len(pair) != 2 || pair[0] != want[0] || pair[1] != want[1] {
		t.Errorf("latestBenchFiles = %v, want %v", pair, want)
	}
}

// With fewer than two artifacts there is nothing to compare: nil pair, no
// error, so `make bench-diff` stays quiet-and-green on a fresh checkout.
func TestLatestBenchFilesTooFew(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_0.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	pair, err := latestBenchFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pair != nil {
		t.Errorf("latestBenchFiles with one artifact = %v, want nil", pair)
	}
}
