package main

import (
	"strings"
	"testing"
)

func TestBenchKey(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSpawnExecute":      "BenchmarkSpawnExecute",
		"BenchmarkSpawnExecute-8":    "BenchmarkSpawnExecute",
		"BenchmarkSpawnExecute-16":   "BenchmarkSpawnExecute",
		"BenchmarkA-b":               "BenchmarkA-b", // non-numeric suffix stays
		"BenchmarkForEach/grain-4-2": "BenchmarkForEach/grain-4",
		"Benchmark-5":                "Benchmark",
	}
	for in, want := range cases {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiffReport(t *testing.T) {
	oldBF := &BenchFile{
		GoVersion: "go1.24.0", GoMaxProcs: 1, Timestamp: "t0",
		Benchmarks: []BenchResult{
			{Name: "BenchmarkSpawnExecute", NsPerOp: 70.87},
			{Name: "BenchmarkDequeTHEPushPop", NsPerOp: 40.44},
			{Name: "BenchmarkForEach", NsPerOp: 21301, AllocsPerOp: 1},
		},
	}
	newBF := &BenchFile{
		GoVersion: "go1.24.0", GoMaxProcs: 8, Timestamp: "t1",
		Benchmarks: []BenchResult{
			{Name: "BenchmarkSpawnExecute-8", NsPerOp: 68.25},
			{Name: "BenchmarkDequeChaseLevPushPop-8", NsPerOp: 29.73},
			{Name: "BenchmarkForEach-8", NsPerOp: 21000, AllocsPerOp: 1},
		},
	}
	got := diffReport("BENCH_0.json", "BENCH_1.json", oldBF, newBF)

	for _, want := range []string{
		// matched despite the -8 suffix, with a negative (improvement) delta
		"| BenchmarkSpawnExecute | 70.87 | 68.25 | -3.7% | 0 | 0 |",
		// renamed benchmarks appear as new + removed, not as a bogus match
		"| BenchmarkDequeChaseLevPushPop | — | 29.73 | new | — | 0 |",
		"| BenchmarkDequeTHEPushPop | 40.44 | — | removed | 0 | — |",
		"| BenchmarkForEach | 21301 | 21000 | -1.4% | 1 | 1 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff report missing line %q; got:\n%s", want, got)
		}
	}
}
