package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// runDiff implements `xkbenchjson diff OLD.json NEW.json` (and
// `diff -latest`): a per-benchmark delta table between two BENCH_<n>.json
// artifacts. It is a report, not a gate — the exit code is non-zero only
// when an artifact cannot be read or the arguments are malformed, never
// because a benchmark regressed. With -latest and fewer than two artifacts
// in the directory there is nothing to compare, which is the normal state
// of a fresh checkout: it says so and exits 0.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	latest := fs.Bool("latest", false,
		"compare the two highest-numbered BENCH_<n>.json files in -dir")
	dir := fs.String("dir", ".", "directory to scan with -latest")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if *latest {
		if len(args) != 0 {
			fmt.Fprintln(os.Stderr, "usage: xkbenchjson diff -latest [-dir DIR]")
			return 2
		}
		pair, err := latestBenchFiles(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xkbenchjson diff: %v\n", err)
			return 1
		}
		if pair == nil {
			fmt.Println("bench-diff: fewer than two BENCH_<n>.json artifacts, nothing to compare")
			return 0
		}
		args = pair
	}
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: xkbenchjson diff [-latest [-dir DIR]] [OLD.json NEW.json]")
		return 2
	}
	oldBF, err := loadBenchFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkbenchjson diff: %v\n", err)
		return 1
	}
	newBF, err := loadBenchFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkbenchjson diff: %v\n", err)
		return 1
	}
	fmt.Print(diffReport(args[0], args[1], oldBF, newBF))
	return 0
}

// benchFilesSorted returns every BENCH_<n>.json path in dir, ordered by
// index — numerically, because a lexicographic (or `sort -t_ -k2 -n`-style
// field) sort mis-pairs once n reaches two digits, e.g. ordering
// BENCH_10.json before BENCH_9.json.
func benchFilesSorted(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type indexed struct {
		n    int
		path string
	}
	var found []indexed
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		num, ok := strings.CutPrefix(name, "BENCH_")
		if !ok {
			continue
		}
		num, ok = strings.CutSuffix(num, ".json")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(num)
		if err != nil || n < 0 {
			continue
		}
		found = append(found, indexed{n: n, path: filepath.Join(dir, name)})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}

// latestBenchFiles returns the two highest-numbered BENCH_<n>.json paths in
// dir, oldest first, or nil (no error) when fewer than two artifacts exist.
func latestBenchFiles(dir string) ([]string, error) {
	paths, err := benchFilesSorted(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) < 2 {
		return nil, nil
	}
	return paths[len(paths)-2:], nil
}

func loadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// benchKey strips the -N GOMAXPROCS suffix go test appends on multi-core
// machines, so artifacts recorded at different core counts still match.
func benchKey(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		suffix := name[i+1:]
		if suffix != "" && strings.Trim(suffix, "0123456789") == "" {
			return name[:i]
		}
	}
	return name
}

// diffReport renders the comparison as a Markdown table (readable as plain
// text in a terminal, rendered as a table in a CI job summary).
func diffReport(oldPath, newPath string, oldBF, newBF *BenchFile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark diff: %s -> %s\n\n", oldPath, newPath)
	fmt.Fprintf(&b, "go %s/%s (GOMAXPROCS %d/%d), recorded %s / %s\n\n",
		oldBF.GoVersion, newBF.GoVersion, oldBF.GoMaxProcs, newBF.GoMaxProcs,
		oldBF.Timestamp, newBF.Timestamp)
	b.WriteString("| benchmark | old ns/op | new ns/op | delta | old allocs/op | new allocs/op |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|\n")

	oldByKey := make(map[string]BenchResult, len(oldBF.Benchmarks))
	for _, r := range oldBF.Benchmarks {
		oldByKey[benchKey(r.Name)] = r
	}
	seen := make(map[string]bool, len(newBF.Benchmarks))
	for _, nr := range newBF.Benchmarks {
		key := benchKey(nr.Name)
		seen[key] = true
		or, ok := oldByKey[key]
		if !ok {
			fmt.Fprintf(&b, "| %s | — | %s | new | — | %d |\n",
				key, fmtNs(nr.NsPerOp), nr.AllocsPerOp)
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %d | %d |\n",
			key, fmtNs(or.NsPerOp), fmtNs(nr.NsPerOp),
			fmtDelta(or.NsPerOp, nr.NsPerOp), or.AllocsPerOp, nr.AllocsPerOp)
	}
	for _, or := range oldBF.Benchmarks {
		key := benchKey(or.Name)
		if !seen[key] {
			fmt.Fprintf(&b, "| %s | %s | — | removed | %d | — |\n",
				key, fmtNs(or.NsPerOp), or.AllocsPerOp)
		}
	}
	return b.String()
}

func fmtNs(ns float64) string {
	if ns >= 100 {
		return fmt.Sprintf("%.0f", ns)
	}
	return fmt.Sprintf("%.2f", ns)
}

// fmtDelta formats the relative ns/op change; negative is an improvement.
func fmtDelta(oldNs, newNs float64) string {
	if oldNs == 0 {
		return "n/a"
	}
	pct := (newNs - oldNs) / oldNs * 100
	return fmt.Sprintf("%+.1f%%", pct)
}
