package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// GateFile is the committed allocation-budget schema (bench_gates.json).
// AllocsPerOp maps a benchmark name (without the -N GOMAXPROCS suffix) to
// the maximum allocs/op it is allowed to report; every listed benchmark
// must appear in the measured output, so silently deleting a gated
// benchmark cannot pass the gate. NsWarnPct, when non-zero, turns on the
// advisory timing check: a benchmark whose ns/op regressed by more than
// this percentage against the newest BENCH_<n>.json artifact is reported,
// but never fails the gate — wall-clock numbers from CI containers are too
// noisy to block on, while allocs/op is deterministic and is enforced.
type GateFile struct {
	AllocsPerOp map[string]int64 `json:"allocs_per_op"`
	NsWarnPct   float64          `json:"ns_warn_pct"`
}

// runGate implements `xkbenchjson gate -gates FILE [-dir DIR]`: it reads
// `go test -bench -benchmem` output on stdin (passing it through, like the
// default artifact mode) and enforces the allocation budgets in FILE.
// Exit status 1 means a budget was exceeded or a gated benchmark is
// missing from the run; timing regressions only warn.
func runGate(args []string) int {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	gatesPath := fs.String("gates", "bench_gates.json", "allocation budget file")
	dir := fs.String("dir", ".", "directory scanned for the newest BENCH_<n>.json timing baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintln(os.Stderr, "usage: xkbenchjson gate [-gates FILE] [-dir DIR] < bench-output")
		return 2
	}
	gates, err := loadGateFile(*gatesPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkbenchjson gate: %v\n", err)
		return 1
	}
	results, err := readBenchStream(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xkbenchjson gate: %v\n", err)
		return 1
	}

	// Timing baseline: the newest artifact, if any. Absence is fine (fresh
	// checkout); the advisory check just has nothing to compare against.
	var baseline []BenchResult
	var baselinePath string
	if gates.NsWarnPct > 0 {
		if paths, err := benchFilesSorted(*dir); err == nil && len(paths) > 0 {
			baselinePath = paths[len(paths)-1]
			if bf, err := loadBenchFile(baselinePath); err == nil {
				baseline = bf.Benchmarks
			}
		}
	}

	failures, warnings := evalGates(gates, results, baseline)
	for _, w := range warnings {
		fmt.Printf("bench-gate: WARN %s (timing is advisory, not gating; baseline %s)\n", w, baselinePath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "bench-gate: FAIL %s\n", f)
		}
		return 1
	}
	fmt.Printf("bench-gate: %d allocation budget(s) hold\n", len(gates.AllocsPerOp))
	return 0
}

// evalGates checks results against the budgets. Failures are gating
// (allocs/op over budget, or a gated benchmark absent from the run);
// warnings are the advisory ns/op regressions against baseline (ignored
// when baseline is nil or NsWarnPct is zero). Both lists are sorted so the
// output is stable.
func evalGates(gates *GateFile, results, baseline []BenchResult) (failures, warnings []string) {
	byKey := make(map[string]BenchResult, len(results))
	for _, r := range results {
		byKey[benchKey(r.Name)] = r
	}
	for name, budget := range gates.AllocsPerOp {
		r, ok := byKey[benchKey(name)]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: gated benchmark missing from the run (deleted or renamed?)", name))
			continue
		}
		if r.AllocsPerOp > budget {
			failures = append(failures,
				fmt.Sprintf("%s: %d allocs/op, budget %d", name, r.AllocsPerOp, budget))
		}
	}
	if gates.NsWarnPct > 0 {
		baseByKey := make(map[string]BenchResult, len(baseline))
		for _, r := range baseline {
			baseByKey[benchKey(r.Name)] = r
		}
		for key, r := range byKey {
			b, ok := baseByKey[key]
			if !ok || b.NsPerOp == 0 {
				continue
			}
			// Comparable measurement bases only: a fixed-iteration smoke
			// (-benchtime=100x) is dominated by warm-up and reads 10-100x
			// slower per op than a 1s run of the same benchmark, so
			// comparing the two would warn on every PR and bury real
			// regressions. Iteration counts are the tell — same-benchtime
			// runs land within a few x of each other, smoke vs 1s differs
			// by orders of magnitude.
			if r.Iterations*10 < b.Iterations || b.Iterations*10 < r.Iterations {
				continue
			}
			pct := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			if pct > gates.NsWarnPct {
				warnings = append(warnings,
					fmt.Sprintf("%s: %s -> %s ns/op (%+.1f%% > %.0f%%)",
						key, fmtNs(b.NsPerOp), fmtNs(r.NsPerOp), pct, gates.NsWarnPct))
			}
		}
	}
	sort.Strings(failures)
	sort.Strings(warnings)
	return failures, warnings
}

// readBenchStream parses benchmark result lines from r, echoing every line
// to w so the gate stays transparent in a CI log.
func readBenchStream(r io.Reader, w io.Writer) ([]BenchResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var results []BenchResult
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		if res, ok := parseBenchLine(line); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading bench output: %w", err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return results, nil
}

func loadGateFile(path string) (*GateFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var g GateFile
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(g.AllocsPerOp) == 0 {
		return nil, fmt.Errorf("%s: no allocs_per_op budgets (an empty gate passes everything silently)", path)
	}
	return &g, nil
}
