// Command xkfib regenerates the paper's Fig. 1: the Fibonacci task-creation
// micro-benchmark comparing Cilk+-style, TBB-style, X-Kaapi and OpenMP-style
// schedulers. The program of the figure is reproduced exactly — one spawned
// task per node, one inline recursive call, one sync — and the table prints
// execution times per core count plus the 1-core slowdown relative to the
// sequential function (the paper reports Cilk+ ×11.7, TBB ×26, Kaapi ×8,
// OpenMP ×27 for fib(35); expect the same ordering, not the same constants).
//
// Usage:
//
//	xkfib [-n 30] [-reps 3] [-cores 1,2,4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xkaapi"
	"xkaapi/cilk"
	"xkaapi/gomp"
	"xkaapi/internal/harness"
	"xkaapi/tbbsched"
)

func fibSeq(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func fibKaapi(p *xkaapi.Proc, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	p.Spawn(func(p *xkaapi.Proc) { fibKaapi(p, &r1, n-1) })
	fibKaapi(p, &r2, n-2)
	p.Sync()
	*r = r1 + r2
}

func fibCilk(w *cilk.Worker, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	w.Spawn(func(w *cilk.Worker) { fibCilk(w, &r1, n-1) })
	fibCilk(w, &r2, n-2)
	w.Sync()
	*r = r1 + r2
}

func fibTBB(c *tbbsched.Context, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	c.Spawn(tbbsched.FuncTask(func(c *tbbsched.Context) { fibTBB(c, &r1, n-1) }))
	fibTBB(c, &r2, n-2)
	c.Wait()
	*r = r1 + r2
}

func fibGomp(tc *gomp.TC, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	tc.Task(func(tc *gomp.TC) { fibGomp(tc, &r1, n-1) })
	fibGomp(tc, &r2, n-2)
	tc.Taskwait()
	*r = r1 + r2
}

func main() {
	n := flag.Int("n", 30, "Fibonacci number (paper: 35)")
	reps := flag.Int("reps", 3, "timed repetitions per point (median reported)")
	coresFlag := flag.String("cores", "", "comma-separated core counts (default: 1,2,4,... up to GOMAXPROCS)")
	flag.Parse()

	cores, err := harness.ParseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := fibSeq(*n)
	seq := harness.Time(*reps, true, func() {
		if fibSeq(*n) != want {
			panic("bad fib")
		}
	})
	fmt.Printf("Fig.1 — Fibonacci(%d) task creation overhead (sequential: %.4fs)\n\n",
		*n, seq.Seconds())

	type system struct {
		name string
		run  func(p int) time.Duration
	}
	check := func(r int64) {
		if r != want {
			panic(fmt.Sprintf("wrong result %d, want %d", r, want))
		}
	}
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	systems := []system{
		{"Cilk+", func(p int) time.Duration {
			pool := cilk.NewPool(p)
			defer pool.Close()
			return harness.Time(*reps, true, func() {
				var r int64
				must(pool.Run(func(w *cilk.Worker) { fibCilk(w, &r, *n) }))
				check(r)
			})
		}},
		{"TBB", func(p int) time.Duration {
			s := tbbsched.NewScheduler(p)
			defer s.Close()
			return harness.Time(*reps, true, func() {
				var r int64
				must(s.Run(func(c *tbbsched.Context) { fibTBB(c, &r, *n) }))
				check(r)
			})
		}},
		{"Kaapi", func(p int) time.Duration {
			rt := xkaapi.New(xkaapi.WithWorkers(p))
			defer rt.Close()
			return harness.Time(*reps, true, func() {
				var r int64
				must(rt.Run(func(pr *xkaapi.Proc) { fibKaapi(pr, &r, *n) }))
				check(r)
			})
		}},
		{"OpenMP", func(p int) time.Duration {
			tm := gomp.NewTeam(p)
			defer tm.Close()
			return harness.Time(*reps, true, func() {
				var r int64
				must(tm.Parallel(func(tc *gomp.TC) {
					tc.Single(func() { fibGomp(tc, &r, *n) })
				}))
				check(r)
			})
		}},
	}

	series := make([]harness.Series, len(systems))
	for i, sys := range systems {
		series[i].Name = sys.name
		for _, p := range cores {
			d := sys.run(p)
			series[i].Values = append(series[i].Values, d.Seconds())
		}
	}

	harness.Table(os.Stdout, "cores", cores, series, harness.Seconds)
	fmt.Printf("\n1-core slowdown vs sequential (paper: Cilk+ x11.7, TBB x26, Kaapi x8, OpenMP x27):\n")
	for _, s := range series {
		fmt.Printf("  %-7s x%.1f\n", s.Name, s.Values[0]/seq.Seconds())
	}
}
