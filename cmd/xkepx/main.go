// Command xkepx regenerates the paper's EPX application experiments on the
// MEPPEN (missile crash) and MAXPLANE (ice impact on composite plate)
// surrogate instances:
//
//   - -exp fig6: per-kernel speedups of LOOPELM and REPERA versus core
//     count, one table per instance (paper's Fig. 6 — LOOPELM is
//     memory-bound and saturates on MEPPEN, REPERA scales well);
//   - -exp fig8: stacked time decomposition (repera / loopelm / cholesky /
//     other) versus core count under X-Kaapi (paper's Fig. 8 — 'other'
//     stays constant, Amdahl's law).
//
// Usage:
//
//	xkepx [-exp fig6|fig8] [-inst meppen|maxplane|both] [-scale 1]
//	      [-cores 1,2] [-reps 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xkaapi/internal/epx"
	"xkaapi/internal/harness"
)

func instances(name string, scale int) []epx.Instance {
	switch strings.ToLower(name) {
	case "meppen":
		return []epx.Instance{epx.MEPPEN(scale)}
	case "maxplane":
		return []epx.Instance{epx.MAXPLANE(scale)}
	default:
		return []epx.Instance{epx.MEPPEN(scale), epx.MAXPLANE(scale)}
	}
}

func main() {
	exp := flag.String("exp", "fig8", "experiment: fig6 or fig8")
	inst := flag.String("inst", "both", "instance: meppen, maxplane or both")
	scale := flag.Int("scale", 1, "instance scale factor")
	coresFlag := flag.String("cores", "", "comma-separated core counts")
	reps := flag.Int("reps", 2, "repetitions per point (median)")
	flag.Parse()

	cores, err := harness.ParseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	for _, in := range instances(*inst, *scale) {
		switch *exp {
		case "fig6":
			fig6(in, cores, *reps)
		case "fig8":
			fig8(in, cores, *reps)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}

// timeInstance runs the instance once on b and returns the phase split.
func timeInstance(in epx.Instance, b epx.Backend, reps int) epx.PhaseTimes {
	var best epx.PhaseTimes
	for i := 0; i < reps; i++ {
		s, err := epx.NewSim(in)
		if err != nil {
			panic(err)
		}
		pt, err := s.Run(b)
		if err != nil {
			panic(err)
		}
		if i == 0 || pt.Total() < best.Total() {
			best = pt
		}
	}
	return best
}

func fig6(in epx.Instance, cores []int, reps int) {
	seqB := epx.NewSeqBackend()
	seq := timeInstance(in, seqB, reps)
	seqB.Close()
	fmt.Printf("Fig.6 — %s: LOOPELM / REPERA speedup under X-Kaapi (Tseq: loopelm=%.3fs repera=%.3fs)\n\n",
		in.Name, seq.Loopelm.Seconds(), seq.Repera.Seconds())
	series := []harness.Series{{Name: "LOOPELM"}, {Name: "REPERA"}, {Name: "ideal"}}
	for _, p := range cores {
		b := epx.NewKaapiBackend(p)
		pt := timeInstance(in, b, reps)
		b.Close()
		series[0].Values = append(series[0].Values, seq.Loopelm.Seconds()/pt.Loopelm.Seconds())
		series[1].Values = append(series[1].Values, seq.Repera.Seconds()/pt.Repera.Seconds())
		series[2].Values = append(series[2].Values, float64(p))
	}
	harness.Table(os.Stdout, "cores", cores, series, harness.Ratio)
	fmt.Println()
}

func fig8(in epx.Instance, cores []int, reps int) {
	fmt.Printf("Fig.8 — %s: time decomposition (seconds) under X-Kaapi\n\n", in.Name)
	series := []harness.Series{
		{Name: "repera"}, {Name: "loopelm"}, {Name: "cholesky"}, {Name: "other"}, {Name: "total"},
	}
	for _, p := range cores {
		var pt epx.PhaseTimes
		if p == 1 {
			b := epx.NewSeqBackend()
			pt = timeInstance(in, b, reps)
			b.Close()
		} else {
			b := epx.NewKaapiBackend(p)
			pt = timeInstance(in, b, reps)
			b.Close()
		}
		series[0].Values = append(series[0].Values, pt.Repera.Seconds())
		series[1].Values = append(series[1].Values, pt.Loopelm.Seconds())
		series[2].Values = append(series[2].Values, pt.Cholesky.Seconds())
		series[3].Values = append(series[3].Values, pt.Other.Seconds())
		series[4].Values = append(series[4].Values, pt.Total().Seconds())
	}
	harness.Table(os.Stdout, "cores", cores, series, harness.Seconds)
	fmt.Println()
}
