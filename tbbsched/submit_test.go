package tbbsched

import (
	"sync"
	"testing"
)

// TestConcurrentSubmitSharedPool checks that external goroutines can
// multiplex root task trees over one scheduler, including with one worker
// (the inbox must still be polled when there is nobody to steal from).
func TestConcurrentSubmitSharedPool(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := NewScheduler(workers)
		const clients, jobs = 6, 15
		want := int64(233) // fib(13)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < jobs; i++ {
					var r int64
					s.Submit(FuncTask(func(c *Context) { fibTBB(c, &r, 13) })).Wait()
					if r != want {
						t.Errorf("workers=%d: fib=%d want %d", workers, r, want)
						return
					}
				}
			}()
		}
		wg.Wait()
		s.Close()
	}
}
