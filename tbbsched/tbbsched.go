// Package tbbsched reimplements the scheduling design of Intel Threading
// Building Blocks (Reinders 2007) as the TBB comparator of the paper's
// Fig. 1: a task-tree scheduler with reference-counted join, per-worker
// deques, and loop templates with an auto-partitioner.
//
// The per-task cost model intentionally matches TBB's rather than X-Kaapi's:
// every spawn allocates a task node on the heap, task bodies are dispatched
// through an interface (TBB uses virtual task::execute), a parent's pending
// count is maintained with atomic reference counting, and deque operations
// take the deque lock (TBB's early deques were lock-based). Those constants
// are why the paper measures TBB at a ~26x slowdown on fine-grain Fibonacci
// versus ~8x for X-Kaapi.
package tbbsched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xkaapi/internal/jobfail"
)

// ErrClosed is the error of a job rejected because the scheduler was
// already closing: Submit after Close returns a pre-failed Job instead of
// panicking.
var ErrClosed = jobfail.ErrClosed

// ErrCanceled is the failure of a job abandoned with Job.Cancel. It mirrors
// TBB's task-group cancellation: queued tasks of the group are skipped.
var ErrCanceled = jobfail.ErrCanceled

// PanicError is the error a job fails with when a task body panics — the
// analogue of TBB capturing an exception in task::execute and rethrowing it
// from wait_for_all, except the first panic is reported as an error. It is
// an alias of the one shared definition in internal/jobfail: the per-task
// cost model of this comparator is intentionally TBB's, the failure
// protocol is the module's single state machine.
type (
	PanicError = jobfail.PanicError
)

// Task is the unit of work, dispatched through an interface as in TBB.
type Task interface {
	Execute(c *Context)
}

// FuncTask adapts a function to the Task interface.
type FuncTask func(c *Context)

// Execute runs the function.
func (f FuncTask) Execute(c *Context) { f(c) }

// node wraps a user Task with tree bookkeeping.
type node struct {
	t      Task
	parent *node
	refs   atomic.Int32 // pending children
	job    *Job         // owning job, inherited from the parent (failure scope)
	root   bool         // completion of this node finishes the job
}

// Job is the completion handle of one submitted root task tree. A job
// fails when one of its task bodies panics (recorded as a *PanicError,
// first panic wins) or when it is cancelled; a failed job's queued tasks
// are skipped while the reference counting still drains, so the job always
// completes. The failure state machine is the shared jobfail.State.
type Job struct {
	st jobfail.State
}

// Wait blocks until the job's task tree has fully drained, then returns
// the job's error: nil on success, a *PanicError if a body panicked,
// ErrCanceled after Cancel, or ErrClosed for a rejected submission. Call
// it only from outside the pool.
func (j *Job) Wait() error { return j.st.Wait() }

// Err returns the job's failure without blocking: nil while the job is
// healthy, otherwise the first recorded error.
func (j *Job) Err() error { return j.st.Err() }

// Cancel abandons the job: tasks that have not started are skipped and
// Wait returns ErrCanceled. Bodies already running finish normally (or
// return early by watching Context.Ctx).
func (j *Job) Cancel() { j.st.Cancel() }

// Context returns the job's context, cancelled the instant the job fails
// or is cancelled; see Context.Ctx for use inside task bodies.
func (j *Job) Context() context.Context { return j.st.Context() }

// fail records the first failure; later ones and post-completion ones are
// ignored.
func (j *Job) fail(err error) { j.st.Fail(err) }

// Scheduler owns the worker pool. Root task trees may be submitted
// concurrently from any goroutines and share the same workers.
type Scheduler struct {
	ctxs []*Context

	inboxMu   sync.Mutex
	inboxQ    []*node
	inboxHead int
	inboxN    atomic.Int64

	jobsMu   sync.Mutex
	jobsCond *sync.Cond
	jobsLive int
	closing  bool // guarded by jobsMu

	idle        atomic.Int32
	parkMu      sync.Mutex
	parkCond    *sync.Cond
	wakePending int

	stop atomic.Bool
	wg   sync.WaitGroup
}

// Context is a worker; task bodies receive the context they run on.
type Context struct {
	id    int
	sched *Scheduler
	cur   *node
	rng   uint64

	mu    sync.Mutex
	queue []*node // locked deque: owner pops the back, thieves the front
}

// NewScheduler creates a scheduler with n workers (GOMAXPROCS(0) if n <= 0).
func NewScheduler(n int) *Scheduler {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{}
	s.parkCond = sync.NewCond(&s.parkMu)
	s.jobsCond = sync.NewCond(&s.jobsMu)
	s.ctxs = make([]*Context, n)
	for i := range s.ctxs {
		s.ctxs[i] = &Context{id: i, sched: s, rng: uint64(i)*0x9E3779B97F4A7C15 + 1}
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.ctxs[i].loop()
	}
	return s
}

// Close drains in-flight jobs, then stops and joins the workers. The
// closing flag flips under jobsMu so a racing Submit either registers
// before the drain or panics — it can never strand a job in a dead pool.
func (s *Scheduler) Close() {
	s.jobsMu.Lock()
	if s.closing {
		s.jobsMu.Unlock()
		return
	}
	s.closing = true
	for s.jobsLive > 0 {
		s.jobsCond.Wait()
	}
	s.jobsMu.Unlock()
	s.stop.Store(true)
	s.parkMu.Lock()
	s.wakePending += len(s.ctxs)
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
	s.wg.Wait()
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return len(s.ctxs) }

// Run submits root as an independent task tree, waits for it and returns
// its error; see Submit. Concurrent Runs share the pool.
func (s *Scheduler) Run(root func(c *Context)) error {
	return s.Submit(FuncTask(root)).Wait()
}

// RunCtx is Run bound to a context: if ctx is cancelled before the tree
// completes, the job fails with ctx's error and its queued tasks are
// skipped.
func (s *Scheduler) RunCtx(ctx context.Context, root func(c *Context)) error {
	return s.SubmitCtx(ctx, FuncTask(root)).Wait()
}

// Submit enqueues t as an independent root task tree and returns its handle
// without waiting. Any goroutine outside the pool may call it concurrently;
// roots are claimed by idle workers from an MPSC inbox. Submitting to a
// closed scheduler returns a pre-failed Job with ErrClosed instead of
// panicking.
func (s *Scheduler) Submit(t Task) *Job {
	return s.SubmitCtx(context.Background(), t)
}

// SubmitCtx is Submit bound to a context: cancelling ctx (or its deadline
// expiring) fails the job, skips its queued tasks, and cancels the job
// context every task body sees through Context.Ctx.
func (s *Scheduler) SubmitCtx(ctx context.Context, t Task) *Job {
	j := &Job{}
	s.jobsMu.Lock()
	if s.closing {
		s.jobsMu.Unlock()
		// Init without the parent: rejection reports ErrClosed even when
		// ctx is already cancelled (first error wins).
		j.st.Init(nil)
		j.st.Fail(ErrClosed)
		j.st.Finish()
		return j
	}
	s.jobsLive++
	s.jobsMu.Unlock()
	j.st.Init(ctx)
	s.inboxMu.Lock()
	s.inboxQ = append(s.inboxQ, &node{t: t, job: j, root: true})
	s.inboxN.Add(1)
	s.inboxMu.Unlock()
	s.maybeWake()
	return j
}

// takeSubmitted claims the oldest submitted root, or returns nil. The
// head index makes each take O(1); the buffer resets when it drains.
func (s *Scheduler) takeSubmitted() *node {
	if s.inboxN.Load() == 0 {
		return nil
	}
	s.inboxMu.Lock()
	var n *node
	if s.inboxHead < len(s.inboxQ) {
		n = s.inboxQ[s.inboxHead]
		s.inboxQ[s.inboxHead] = nil
		s.inboxHead++
		if s.inboxHead == len(s.inboxQ) {
			s.inboxQ = s.inboxQ[:0]
			s.inboxHead = 0
		}
		s.inboxN.Add(-1)
	}
	s.inboxMu.Unlock()
	return n
}

// ID returns the worker index.
func (c *Context) ID() int { return c.id }

// Ctx returns the context of the job the current task belongs to,
// cancelled the instant the job fails (sibling panic), is cancelled, or
// its submission context expires. Long-running Execute bodies select on
// Ctx().Done() for prompt cooperative cancellation. Outside any job it
// returns context.Background().
func (c *Context) Ctx() context.Context {
	if c.cur != nil && c.cur.job != nil {
		return c.cur.job.Context()
	}
	return context.Background()
}

// Spawn allocates a child task of the current task and enqueues it.
func (c *Context) Spawn(t Task) {
	n := &node{t: t, parent: c.cur}
	if n.parent != nil {
		n.parent.refs.Add(1)
		n.job = n.parent.job
	}
	c.mu.Lock()
	c.queue = append(c.queue, n)
	c.mu.Unlock()
	c.sched.maybeWake()
}

// Wait blocks until all children spawned so far by the current task have
// completed (TBB's wait_for_all), executing other tasks meanwhile.
func (c *Context) Wait() {
	if c.cur == nil {
		return
	}
	idle := 0
	for c.cur.refs.Load() != 0 {
		if c.schedOnce() {
			idle = 0
			continue
		}
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

func (c *Context) execute(n *node) {
	prev := c.cur
	c.cur = n
	// A node whose job already failed is cancelled: the body is skipped
	// but the reference counting still drains.
	if n.job == nil || !n.job.st.Failed() {
		c.runBody(n)
	}
	// Implicit wait_for_all: a task is not complete until its subtree is.
	idle := 0
	for n.refs.Load() != 0 {
		if c.schedOnce() {
			idle = 0
			continue
		}
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	c.cur = prev
	if n.parent != nil {
		n.parent.refs.Add(-1)
	}
	if n.root {
		n.job.st.Finish()
		s := c.sched
		s.jobsMu.Lock()
		s.jobsLive--
		if s.jobsLive == 0 {
			s.jobsCond.Broadcast()
		}
		s.jobsMu.Unlock()
	}
}

// runBody dispatches the node's Task behind a panic barrier: a panicking
// Execute fails the owning job instead of unwinding (and killing) the
// worker.
func (c *Context) runBody(n *node) {
	defer func() {
		if r := recover(); r != nil {
			if n.job == nil {
				panic(r) // no handle to report on
			}
			n.job.fail(jobfail.Capture(r))
		}
	}()
	n.t.Execute(c)
}

func (c *Context) popLocal() *node {
	c.mu.Lock()
	var n *node
	if len(c.queue) > 0 {
		n = c.queue[len(c.queue)-1]
		c.queue = c.queue[:len(c.queue)-1]
	}
	c.mu.Unlock()
	return n
}

func (c *Context) stealFront() *node {
	c.mu.Lock()
	var n *node
	if len(c.queue) > 0 {
		n = c.queue[0]
		c.queue = c.queue[1:]
	}
	c.mu.Unlock()
	return n
}

func (c *Context) schedOnce() bool {
	if n := c.popLocal(); n != nil {
		c.execute(n)
		return true
	}
	s := c.sched
	nw := len(s.ctxs)
	for attempt := 0; nw > 1 && attempt < 2*nw; attempt++ {
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		v := s.ctxs[int(c.rng%uint64(nw))]
		if v == c {
			continue
		}
		if n := v.stealFront(); n != nil {
			c.execute(n)
			return true
		}
	}
	if n := s.takeSubmitted(); n != nil {
		c.execute(n)
		return true
	}
	return false
}

func (c *Context) loop() {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	s := c.sched
	defer s.wg.Done()
	fails := 0
	for {
		if s.stop.Load() {
			return
		}
		if c.schedOnce() {
			fails = 0
			continue
		}
		fails++
		if fails < 4 {
			runtime.Gosched()
			continue
		}
		c.park()
		fails = 0
	}
}

func (c *Context) park() {
	s := c.sched
	s.idle.Add(1)
	if s.anyWork() || s.stop.Load() {
		s.idle.Add(-1)
		return
	}
	s.parkMu.Lock()
	for s.wakePending == 0 && !s.stop.Load() {
		s.parkCond.Wait()
	}
	if s.wakePending > 0 {
		s.wakePending--
	}
	s.parkMu.Unlock()
	s.idle.Add(-1)
}

func (s *Scheduler) maybeWake() {
	if s.idle.Load() == 0 {
		return
	}
	s.parkMu.Lock()
	if s.wakePending < int(s.idle.Load()) {
		s.wakePending++
		s.parkCond.Signal()
	}
	s.parkMu.Unlock()
}

func (s *Scheduler) anyWork() bool {
	if s.inboxN.Load() > 0 {
		return true
	}
	for _, v := range s.ctxs {
		v.mu.Lock()
		n := len(v.queue)
		v.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// ParallelFor runs body over [lo, hi) using recursive range splitting in the
// style of TBB's parallel_for with the auto-partitioner: ranges split in two
// while they are wider than grain (grain <= 0 selects (hi-lo)/(4*workers)),
// bounding the number of tasks without an a-priori limit on parallelism.
func ParallelFor(c *Context, lo, hi, grain int, body func(lo, hi int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = (hi - lo) / (4 * c.sched.Workers())
		if grain < 1 {
			grain = 1
		}
	}
	var rec func(c *Context, lo, hi int)
	rec = func(c *Context, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			l, h := mid, hi
			c.Spawn(FuncTask(func(c *Context) { rec(c, l, h) }))
			hi = mid
		}
		body(lo, hi)
		c.Wait()
	}
	rec(c, lo, hi)
}
