package tbbsched

import (
	"sync/atomic"
	"testing"
)

func fibTBB(c *Context, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	c.Spawn(FuncTask(func(c *Context) { fibTBB(c, &r1, n-1) }))
	fibTBB(c, &r2, n-2)
	c.Wait()
	*r = r1 + r2
}

func TestFib(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		s := NewScheduler(n)
		var r int64
		s.Run(func(c *Context) { fibTBB(c, &r, 20) })
		s.Close()
		if r != 6765 {
			t.Fatalf("workers=%d: fib(20)=%d want 6765", n, r)
		}
	}
}

func TestImplicitWaitForAll(t *testing.T) {
	s := NewScheduler(3)
	defer s.Close()
	var n atomic.Int32
	s.Run(func(c *Context) {
		for i := 0; i < 50; i++ {
			c.Spawn(FuncTask(func(c *Context) {
				c.Spawn(FuncTask(func(*Context) { n.Add(1) }))
			}))
		}
	})
	if n.Load() != 50 {
		t.Fatalf("n=%d want 50", n.Load())
	}
}

func TestParallelForCoversRange(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	const n = 100000
	hits := make([]int32, n)
	s.Run(func(c *Context) {
		ParallelFor(c, 0, n, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestParallelForExplicitGrain(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	var maxChunk atomic.Int64
	s.Run(func(c *Context) {
		ParallelFor(c, 0, 1000, 10, func(lo, hi int) {
			if sz := int64(hi - lo); sz > maxChunk.Load() {
				maxChunk.Store(sz)
			}
		})
	})
	if maxChunk.Load() > 10 {
		t.Fatalf("chunk %d exceeds grain 10", maxChunk.Load())
	}
}

func TestParallelForEmpty(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	ran := false
	s.Run(func(c *Context) {
		ParallelFor(c, 5, 5, 1, func(lo, hi int) { ran = true })
	})
	if ran {
		t.Fatal("body ran for empty range")
	}
}

func TestMultipleRuns(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	for i := 0; i < 10; i++ {
		var r int64
		s.Run(func(c *Context) { fibTBB(c, &r, 12) })
		if r != 144 {
			t.Fatalf("run %d: fib(12)=%d", i, r)
		}
	}
}
