package tbbsched

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPanicInTask: a panic inside a spawned Task fails the job with a
// PanicError (value + stack), like TBB rethrowing from wait_for_all, and
// the scheduler survives.
func TestPanicInTask(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	err := s.Run(func(c *Context) {
		c.Spawn(FuncTask(func(*Context) { tbbBoom() }))
		c.Wait()
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want *PanicError", err)
	}
	if pe.Value != "boom-tbb" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "tbbBoom") {
		t.Fatalf("stack lacks panic site:\n%s", pe.Stack)
	}
	if err := s.Run(func(*Context) {}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
}

//go:noinline
func tbbBoom() { panic("boom-tbb") }

// TestPanicCancelsQueued: with one worker, tasks spawned before the parent
// panics are skipped once the job fails.
func TestPanicCancelsQueued(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	var ran atomic.Int32
	err := s.Run(func(c *Context) {
		for i := 0; i < 20; i++ {
			c.Spawn(FuncTask(func(*Context) { ran.Add(1) }))
		}
		panic("boom-parent")
	})
	if err == nil {
		t.Fatal("Run = nil after parent panic")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d queued tasks ran after the parent panicked (1 worker)", ran.Load())
	}
}

// TestPanicInParallelFor: the loop template propagates a body panic as the
// job's error.
func TestPanicInParallelFor(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	err := s.Run(func(c *Context) {
		ParallelFor(c, 0, 100_000, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 51_000 {
					panic("boom-pfor")
				}
			}
		})
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-pfor" {
		t.Fatalf("Run = %v, want PanicError(boom-pfor)", err)
	}
}

// TestSubmitAfterCloseErrClosed: submission to a closed scheduler is
// rejected with ErrClosed instead of panicking.
func TestSubmitAfterCloseErrClosed(t *testing.T) {
	s := NewScheduler(1)
	s.Close()
	ran := false
	j := s.Submit(FuncTask(func(*Context) { ran = true }))
	if err := j.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
	if ran {
		t.Fatal("rejected job's body ran")
	}
}
