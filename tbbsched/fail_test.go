package tbbsched

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicInTask: a panic inside a spawned Task fails the job with a
// PanicError (value + stack), like TBB rethrowing from wait_for_all, and
// the scheduler survives.
func TestPanicInTask(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	err := s.Run(func(c *Context) {
		c.Spawn(FuncTask(func(*Context) { tbbBoom() }))
		c.Wait()
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want *PanicError", err)
	}
	if pe.Value != "boom-tbb" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "tbbBoom") {
		t.Fatalf("stack lacks panic site:\n%s", pe.Stack)
	}
	if err := s.Run(func(*Context) {}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
}

//go:noinline
func tbbBoom() { panic("boom-tbb") }

// TestPanicCancelsQueued: with one worker, tasks spawned before the parent
// panics are skipped once the job fails.
func TestPanicCancelsQueued(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	var ran atomic.Int32
	err := s.Run(func(c *Context) {
		for i := 0; i < 20; i++ {
			c.Spawn(FuncTask(func(*Context) { ran.Add(1) }))
		}
		panic("boom-parent")
	})
	if err == nil {
		t.Fatal("Run = nil after parent panic")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d queued tasks ran after the parent panicked (1 worker)", ran.Load())
	}
}

// TestPanicInParallelFor: the loop template propagates a body panic as the
// job's error.
func TestPanicInParallelFor(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	err := s.Run(func(c *Context) {
		ParallelFor(c, 0, 100_000, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 51_000 {
					panic("boom-pfor")
				}
			}
		})
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-pfor" {
		t.Fatalf("Run = %v, want PanicError(boom-pfor)", err)
	}
}

// TestSubmitAfterCloseErrClosed: submission to a closed scheduler is
// rejected with ErrClosed instead of panicking.
func TestSubmitAfterCloseErrClosed(t *testing.T) {
	s := NewScheduler(1)
	s.Close()
	ran := false
	j := s.Submit(FuncTask(func(*Context) { ran = true }))
	if err := j.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
	if ran {
		t.Fatal("rejected job's body ran")
	}
}

// TestContextUnblocksOnSiblingPanic: a task body parked on Context.Ctx's
// Done channel is released the instant a sibling task panics on another
// worker — the shared failure state machine's fan-out, in the TBB
// comparator.
func TestContextUnblocksOnSiblingPanic(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	blocked := make(chan struct{})
	err := s.Run(func(c *Context) {
		c.Spawn(FuncTask(func(c2 *Context) { // blocker: stolen from the front
			close(blocked)
			<-c2.Ctx().Done()
		}))
		c.Spawn(FuncTask(func(*Context) { // panicker: popped from the back
			<-blocked
			panic("boom-tbb-ctx")
		}))
		c.Wait()
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-tbb-ctx" {
		t.Fatalf("Run = %v, want PanicError(boom-tbb-ctx)", err)
	}
}

// TestContextUnblocksOnCancel: external Job.Cancel releases a body parked
// on the job context.
func TestContextUnblocksOnCancel(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	blocked := make(chan struct{})
	j := s.Submit(FuncTask(func(c *Context) {
		close(blocked)
		<-c.Ctx().Done()
	}))
	<-blocked
	j.Cancel()
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
}

// TestSubmitCtxDeadline: the submission deadline reaches Execute bodies
// through Context.Ctx and fails the job with DeadlineExceeded.
func TestSubmitCtxDeadline(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sawDeadline := false
	err := s.SubmitCtx(ctx, FuncTask(func(c *Context) {
		_, sawDeadline = c.Ctx().Deadline()
		<-c.Ctx().Done()
	})).Wait()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
	if !sawDeadline {
		t.Fatal("body did not observe the submission deadline via Context.Ctx")
	}
}

// TestSubmitCtxAfterCloseReportsErrClosed: rejection beats a cancelled
// submission context — the shutdown signal stays ErrClosed.
func TestSubmitCtxAfterCloseReportsErrClosed(t *testing.T) {
	s := NewScheduler(1)
	s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.SubmitCtx(ctx, FuncTask(func(*Context) {})).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait = %v, want ErrClosed", err)
	}
}
