package xkaapi_test

import (
	"testing"

	"xkaapi"
)

func TestForeachReduceSum(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(4))
	const n = 100000
	var got int64
	rt.Run(func(p *xkaapi.Proc) {
		got = xkaapi.ForeachReduce(p, 0, n, xkaapi.LoopOpts{},
			func() int64 { return 0 },
			func(_ *xkaapi.Proc, lo, hi int, acc int64) int64 {
				for i := lo; i < hi; i++ {
					acc += int64(i)
				}
				return acc
			},
			func(a, b int64) int64 { return a + b },
		)
	})
	want := int64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("sum=%d want %d", got, want)
	}
}

func TestForeachReduceEmptyRange(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(2))
	rt.Run(func(p *xkaapi.Proc) {
		got := xkaapi.ForeachReduce(p, 3, 3, xkaapi.LoopOpts{},
			func() int { return 0 },
			func(_ *xkaapi.Proc, lo, hi, acc int) int { return acc + (hi - lo) },
			func(a, b int) int { return a + b },
		)
		if got != 0 {
			t.Errorf("empty reduce=%d want 0", got)
		}
	})
}

func TestForeachReduceMax(t *testing.T) {
	rt := newRT(t, xkaapi.WithWorkers(3))
	data := make([]float64, 10000)
	for i := range data {
		data[i] = float64((i * 2654435761) % 99991)
	}
	data[7777] = 1e9
	var got float64
	rt.Run(func(p *xkaapi.Proc) {
		got = xkaapi.ForeachReduce(p, 0, len(data), xkaapi.LoopOpts{},
			func() float64 { return -1 },
			func(_ *xkaapi.Proc, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					if data[i] > acc {
						acc = data[i]
					}
				}
				return acc
			},
			func(a, b float64) float64 {
				if a > b {
					return a
				}
				return b
			},
		)
	})
	if got != 1e9 {
		t.Fatalf("max=%g want 1e9", got)
	}
}
