// Benchmarks regenerating every experiment of the paper (one benchmark
// family per table/figure) plus the ablations of DESIGN.md. The cmd/
// drivers print the paper-style tables with core-count sweeps; these
// benchmarks pin the same workloads into `go test -bench` form at fixed
// (GOMAXPROCS) parallelism so regressions are visible in CI.
//
//	go test -bench=. -benchmem
//
// Mapping:
//
//	Fig.1  -> BenchmarkFig1Fib*            (cmd/xkfib)
//	Fig.2  -> BenchmarkFig2Cholesky*       (cmd/xkcholesky)
//	Fig.3  -> BenchmarkFig3Loops*          (cmd/xkloops)
//	Fig.6  -> BenchmarkFig6*               (cmd/xkepx -exp fig6)
//	Fig.7  -> BenchmarkFig7Sparse*         (cmd/xkspcholesky)
//	Fig.8  -> BenchmarkFig8EPX*            (cmd/xkepx -exp fig8)
//	A1..A4 -> BenchmarkAblation*
package xkaapi_test

import (
	"sync/atomic"
	"testing"

	"xkaapi"
	"xkaapi/cilk"
	"xkaapi/gomp"
	"xkaapi/internal/cholesky"
	"xkaapi/internal/epx"
	"xkaapi/internal/skyline"
	"xkaapi/internal/tile"
	"xkaapi/quark"
	"xkaapi/tbbsched"
)

// --- Fig. 1: Fibonacci task creation overhead ---

const benchFibN = 25

func fibPlain(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibPlain(n-1) + fibPlain(n-2)
}

func BenchmarkFig1FibSeq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if fibPlain(benchFibN) != 75025 {
			b.Fatal("bad fib")
		}
	}
}

func BenchmarkFig1FibKaapi(b *testing.B) {
	rt := xkaapi.New()
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r int64
		rt.Run(func(p *xkaapi.Proc) { fib(p, &r, benchFibN) })
		if r != 75025 {
			b.Fatal("bad fib")
		}
	}
}

func BenchmarkFig1FibCilk(b *testing.B) {
	pool := cilk.NewPool(0)
	defer pool.Close()
	var fc func(w *cilk.Worker, r *int64, n int)
	fc = func(w *cilk.Worker, r *int64, n int) {
		if n < 2 {
			*r = int64(n)
			return
		}
		var r1, r2 int64
		w.Spawn(func(w *cilk.Worker) { fc(w, &r1, n-1) })
		fc(w, &r2, n-2)
		w.Sync()
		*r = r1 + r2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r int64
		pool.Run(func(w *cilk.Worker) { fc(w, &r, benchFibN) })
		if r != 75025 {
			b.Fatal("bad fib")
		}
	}
}

func BenchmarkFig1FibTBB(b *testing.B) {
	s := tbbsched.NewScheduler(0)
	defer s.Close()
	var ft func(c *tbbsched.Context, r *int64, n int)
	ft = func(c *tbbsched.Context, r *int64, n int) {
		if n < 2 {
			*r = int64(n)
			return
		}
		var r1, r2 int64
		c.Spawn(tbbsched.FuncTask(func(c *tbbsched.Context) { ft(c, &r1, n-1) }))
		ft(c, &r2, n-2)
		c.Wait()
		*r = r1 + r2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r int64
		s.Run(func(c *tbbsched.Context) { ft(c, &r, benchFibN) })
		if r != 75025 {
			b.Fatal("bad fib")
		}
	}
}

func BenchmarkFig1FibOpenMP(b *testing.B) {
	tm := gomp.NewTeam(0)
	defer tm.Close()
	var fg func(tc *gomp.TC, r *int64, n int)
	fg = func(tc *gomp.TC, r *int64, n int) {
		if n < 2 {
			*r = int64(n)
			return
		}
		var r1, r2 int64
		tc.Task(func(tc *gomp.TC) { fg(tc, &r1, n-1) })
		fg(tc, &r2, n-2)
		tc.Taskwait()
		*r = r1 + r2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r int64
		tm.Parallel(func(tc *gomp.TC) {
			tc.Single(func() { fg(tc, &r, benchFibN) })
		})
		if r != 75025 {
			b.Fatal("bad fib")
		}
	}
}

// --- Fig. 2: tiled dense Cholesky under four schedulers ---

const (
	benchCholN  = 512
	benchCholNB = 64
)

func benchCholesky(b *testing.B, factor func(m *tile.Tiled) error) {
	b.Helper()
	src := tile.NewSPD(benchCholN, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := tile.FromDense(src, benchCholNB)
		b.StartTimer()
		if err := factor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2CholeskySeq(b *testing.B) {
	benchCholesky(b, cholesky.Seq)
}

func BenchmarkFig2CholeskyQuarkNative(b *testing.B) {
	q := quark.New(0, quark.EngineNative)
	defer q.Delete()
	benchCholesky(b, func(m *tile.Tiled) error { return cholesky.RunQuark(q, m) })
}

func BenchmarkFig2CholeskyXKaapi(b *testing.B) {
	q := quark.New(0, quark.EngineKaapi)
	defer q.Delete()
	benchCholesky(b, func(m *tile.Tiled) error { return cholesky.RunQuark(q, m) })
}

func BenchmarkFig2CholeskyStatic(b *testing.B) {
	benchCholesky(b, func(m *tile.Tiled) error { return cholesky.Static(0, m) })
}

// --- Fig. 3: the two EPX parallel loops under loop schedulers ---

func benchLoops(b *testing.B, mk func() epx.Backend) {
	b.Helper()
	mesh := epx.NewBox(16, 16, 8, 1)
	st := epx.NewState(mesh, epx.Material{E: 100, Yield: 0.02, Hard: 0.3})
	st.Kick(0.4, 0.8)
	st.Integrate()
	rep := epx.NewRepera(mesh, 12)
	rep.Build(st.Disp)
	back := mk()
	defer back.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back.Foreach(0, mesh.NumElems(), func(lo, hi int) { st.ElemForceRange(lo, hi) })
		back.Foreach(0, mesh.NumNodes(), func(lo, hi int) { rep.SortRange(st.Disp, lo, hi) })
	}
}

func BenchmarkFig3LoopsSeq(b *testing.B) {
	benchLoops(b, epx.NewSeqBackend)
}

func BenchmarkFig3LoopsKaapi(b *testing.B) {
	benchLoops(b, func() epx.Backend { return epx.NewKaapiBackend(0) })
}

func BenchmarkFig3LoopsOMPStatic(b *testing.B) {
	benchLoops(b, func() epx.Backend { return epx.NewGompBackend(0, gomp.Static, 0) })
}

func BenchmarkFig3LoopsOMPDynamic(b *testing.B) {
	benchLoops(b, func() epx.Backend { return epx.NewGompBackend(0, gomp.Dynamic, 16) })
}

// --- Fig. 6 / Fig. 8: EPX instances end to end ---

func benchEPX(b *testing.B, inst epx.Instance, mk func() epx.Backend) {
	b.Helper()
	inst.Steps = 2
	back := mk()
	defer back.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := epx.NewSim(inst)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Run(back); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8EPXMeppenSeq(b *testing.B) {
	benchEPX(b, epx.MEPPEN(1), epx.NewSeqBackend)
}

func BenchmarkFig8EPXMeppenKaapi(b *testing.B) {
	benchEPX(b, epx.MEPPEN(1), func() epx.Backend { return epx.NewKaapiBackend(0) })
}

func BenchmarkFig8EPXMaxplaneSeq(b *testing.B) {
	benchEPX(b, epx.MAXPLANE(1), epx.NewSeqBackend)
}

func BenchmarkFig8EPXMaxplaneKaapi(b *testing.B) {
	benchEPX(b, epx.MAXPLANE(1), func() epx.Backend { return epx.NewKaapiBackend(0) })
}

// Fig. 6 measures the two kernels in isolation on the MEPPEN instance.
func BenchmarkFig6MeppenLoopelmKaapi(b *testing.B) {
	inst := epx.MEPPEN(1)
	mesh := epx.NewBox(inst.NX, inst.NY, inst.NZ, 1)
	st := epx.NewState(mesh, epx.Material{E: 100, Yield: 0.02, Hard: 0.3})
	st.Kick(0.4, 0.8)
	st.Integrate()
	back := epx.NewKaapiBackend(0)
	defer back.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back.Foreach(0, mesh.NumElems(), func(lo, hi int) { st.ElemForceRange(lo, hi) })
	}
}

func BenchmarkFig6MeppenReperaKaapi(b *testing.B) {
	inst := epx.MEPPEN(1)
	mesh := epx.NewBox(inst.NX, inst.NY, inst.NZ, 1)
	st := epx.NewState(mesh, epx.Material{E: 100, Yield: 0.02, Hard: 0.3})
	st.Kick(0.4, 0.8)
	st.Integrate()
	rep := epx.NewRepera(mesh, inst.Refine)
	rep.Build(st.Disp)
	back := epx.NewKaapiBackend(0)
	defer back.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back.Foreach(0, mesh.NumNodes(), func(lo, hi int) { rep.SortRange(st.Disp, lo, hi) })
	}
}

// --- Fig. 7: sparse skyline Cholesky ---

func benchSparse(b *testing.B, factor func(m *skyline.Matrix) error) {
	b.Helper()
	env := skyline.GenEnvelope(1536, 0.0359, 59462)
	src, err := skyline.NewSPD(env, 88, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := src.Clone()
		b.StartTimer()
		if err := factor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SparseSeq(b *testing.B) {
	benchSparse(b, skyline.FactorSeq)
}

func BenchmarkFig7SparseKaapi(b *testing.B) {
	rt := xkaapi.New()
	defer rt.Close()
	benchSparse(b, func(m *skyline.Matrix) error { return skyline.FactorKaapi(rt, m) })
}

func BenchmarkFig7SparseOpenMP(b *testing.B) {
	tm := gomp.NewTeam(0)
	defer tm.Close()
	benchSparse(b, func(m *skyline.Matrix) error { return skyline.FactorGomp(tm, m) })
}

// --- Ablations (DESIGN.md A1..A4) ---

// A1: steal-request aggregation on/off, on the steal-heavy fib workload.
func BenchmarkAblationAggregationOn(b *testing.B) {
	rt := xkaapi.New()
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r int64
		rt.Run(func(p *xkaapi.Proc) { fib(p, &r, benchFibN) })
	}
}

func BenchmarkAblationAggregationOff(b *testing.B) {
	rt := xkaapi.New(xkaapi.WithoutAggregation())
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r int64
		rt.Run(func(p *xkaapi.Proc) { fib(p, &r, benchFibN) })
	}
}

// A2: adaptive foreach (on-demand splitting) vs a task per chunk, the
// design argument of §II-D/§II-E: the adaptive loop creates tasks only when
// thieves actually ask.
const ablLoopN = 1 << 20

func ablLoopBody(lo, hi int, sink *int64) {
	var s int64
	for i := lo; i < hi; i++ {
		s += int64(i ^ (i >> 3))
	}
	atomic.AddInt64(sink, s)
}

func BenchmarkAblationLoopAdaptive(b *testing.B) {
	rt := xkaapi.New()
	defer rt.Close()
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Foreach(0, ablLoopN, func(_ *xkaapi.Proc, lo, hi int) {
			ablLoopBody(lo, hi, &sink)
		})
	}
}

func BenchmarkAblationLoopTaskPerChunk(b *testing.B) {
	rt := xkaapi.New()
	defer rt.Close()
	var sink int64
	const chunk = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Run(func(p *xkaapi.Proc) {
			for lo := 0; lo < ablLoopN; lo += chunk {
				lo := lo
				hi := lo + chunk
				if hi > ablLoopN {
					hi = ablLoopN
				}
				p.Spawn(func(*xkaapi.Proc) { ablLoopBody(lo, hi, &sink) })
			}
			p.Sync()
		})
	}
}

// A4: centralized ready list vs distributed deques at fixed (fine) grain —
// the isolated scheduler comparison behind Fig. 2.
func BenchmarkAblationCentralList(b *testing.B) {
	q := quark.New(0, quark.EngineNative)
	defer q.Delete()
	src := tile.NewSPD(384, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := tile.FromDense(src, 32)
		b.StartTimer()
		if err := cholesky.RunQuark(q, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDistributedDeques(b *testing.B) {
	q := quark.New(0, quark.EngineKaapi)
	defer q.Delete()
	src := tile.NewSPD(384, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := tile.FromDense(src, 32)
		b.StartTimer()
		if err := cholesky.RunQuark(q, m); err != nil {
			b.Fatal(err)
		}
	}
}
