package par

import "sync/atomic"

// atomicLoad reads *p atomically.
func atomicLoad(p *int64) int64 { return atomic.LoadInt64(p) }

// atomicMin lowers *p to v if v is smaller, atomically.
func atomicMin(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v >= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}
