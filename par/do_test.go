package par_test

import (
	"sync"
	"testing"

	"xkaapi"
	"xkaapi/par"
)

// TestDoRunsAllFunctions checks par.Do runs every function to completion
// as one job.
func TestDoRunsAllFunctions(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	got := make([]int, 5)
	fns := make([]func(*xkaapi.Proc), len(got))
	for i := range fns {
		fns[i] = func(*xkaapi.Proc) { got[i] = i + 1 }
	}
	par.Do(rt, fns...)
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("fn %d did not run (got %d)", i, v)
		}
	}
	par.Do(rt) // zero functions: no-op
}

// TestDoForEachConcurrentClients checks the runtime-level entry points from
// concurrent goroutines sharing one pool.
func TestDoForEachConcurrentClients(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (c + i) % 2 {
				case 0:
					var a, b int
					par.Do(rt,
						func(*xkaapi.Proc) { a = 1 },
						func(*xkaapi.Proc) { b = 2 },
					)
					if a != 1 || b != 2 {
						t.Errorf("Do: a=%d b=%d", a, b)
						return
					}
				case 1:
					xs := make([]int64, 500)
					par.ForEach(rt, 0, len(xs), func(_ *xkaapi.Proc, lo, hi int) {
						for k := lo; k < hi; k++ {
							xs[k] = int64(k)
						}
					})
					var want int64 = 499 * 500 / 2
					var sum int64
					for _, v := range xs {
						sum += v
					}
					if sum != want {
						t.Errorf("ForEach: sum=%d want %d", sum, want)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}
