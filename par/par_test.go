package par_test

import (
	"sort"
	"testing"
	"testing/quick"

	"xkaapi"
	"xkaapi/internal/xrand"
	"xkaapi/par"
)

var rt *xkaapi.Runtime

func TestMain(m *testing.M) {
	rt = xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	m.Run()
}

func run(t *testing.T, fn func(p *xkaapi.Proc)) {
	t.Helper()
	rt.Run(fn)
}

func ints(n int, seed uint64) []int64 {
	rng := xrand.New(seed)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Next()%2000) - 1000
	}
	return xs
}

func TestMap(t *testing.T) {
	src := ints(10000, 1)
	dst := make([]int64, len(src))
	run(t, func(p *xkaapi.Proc) {
		par.Map(p, dst, src, func(v int64) int64 { return v * 3 })
	})
	for i := range src {
		if dst[i] != src[i]*3 {
			t.Fatalf("dst[%d]=%d want %d", i, dst[i], src[i]*3)
		}
	}
}

func TestMapLengthMismatchPanics(t *testing.T) {
	run(t, func(p *xkaapi.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on length mismatch")
			}
		}()
		par.Map(p, make([]int, 3), []int{1, 2}, func(v int) int { return v })
	})
}

func TestSumMatchesSequential(t *testing.T) {
	xs := ints(100001, 2)
	var want int64
	for _, v := range xs {
		want += v
	}
	var got int64
	run(t, func(p *xkaapi.Proc) { got = par.Sum(p, xs) })
	if got != want {
		t.Fatalf("Sum=%d want %d", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	var got int64
	run(t, func(p *xkaapi.Proc) {
		got = par.Reduce(p, nil, int64(-7), func(a, b int64) int64 { return a + b })
	})
	if got != -7 {
		t.Fatalf("empty Reduce=%d want identity -7", got)
	}
}

func TestCount(t *testing.T) {
	xs := ints(50000, 3)
	want := 0
	for _, v := range xs {
		if v%3 == 0 {
			want++
		}
	}
	got := -1
	run(t, func(p *xkaapi.Proc) {
		got = par.Count(p, xs, func(v int64) bool { return v%3 == 0 })
	})
	if got != want {
		t.Fatalf("Count=%d want %d", got, want)
	}
}

func TestMinIndexDeterministicTies(t *testing.T) {
	xs := []int64{5, 1, 9, 1, 7, 1}
	got := -1
	run(t, func(p *xkaapi.Proc) {
		got = par.MinIndex(p, xs, func(a, b int64) bool { return a < b })
	})
	if got != 1 {
		t.Fatalf("MinIndex=%d want 1 (first of the ties)", got)
	}
	run(t, func(p *xkaapi.Proc) {
		if e := par.MinIndex(p, nil, func(a, b int64) bool { return a < b }); e != -1 {
			t.Errorf("empty MinIndex=%d want -1", e)
		}
	})
}

func TestMinIndexLarge(t *testing.T) {
	xs := ints(200000, 4)
	xs[123456] = -5000
	got := -1
	run(t, func(p *xkaapi.Proc) {
		got = par.MinIndex(p, xs, func(a, b int64) bool { return a < b })
	})
	if got != 123456 {
		t.Fatalf("MinIndex=%d want 123456", got)
	}
}

func TestFindFirst(t *testing.T) {
	xs := ints(100000, 5)
	for i := range xs {
		if xs[i] == 777 {
			xs[i] = 778
		}
	}
	xs[60000] = 777
	xs[90000] = 777
	got := -2
	run(t, func(p *xkaapi.Proc) {
		got = par.FindFirst(p, xs, func(v int64) bool { return v == 777 })
	})
	if got != 60000 {
		t.Fatalf("FindFirst=%d want 60000", got)
	}
	run(t, func(p *xkaapi.Proc) {
		if e := par.FindFirst(p, xs, func(v int64) bool { return v == 123456789 }); e != -1 {
			t.Errorf("absent FindFirst=%d want -1", e)
		}
	})
}

func TestScanMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 1000, 65537} {
		src := ints(n, uint64(n)+6)
		dst := make([]int64, n)
		run(t, func(p *xkaapi.Proc) {
			par.Scan(p, dst, src, 0, func(a, b int64) int64 { return a + b })
		})
		var acc int64
		for i := range src {
			acc += src[i]
			if dst[i] != acc {
				t.Fatalf("n=%d: dst[%d]=%d want %d", n, i, dst[i], acc)
			}
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 4096, 4097, 100000} {
		xs := ints(n, uint64(n)+7)
		want := append([]int64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		run(t, func(p *xkaapi.Proc) {
			par.Sort(p, xs, func(a, b int64) bool { return a < b })
		})
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: xs[%d]=%d want %d", n, i, xs[i], want[i])
			}
		}
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(xs []int16) bool {
		work := make([]int64, len(xs))
		for i, v := range xs {
			work[i] = int64(v)
		}
		want := append([]int64(nil), work...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		rt.Run(func(p *xkaapi.Proc) {
			par.Sort(p, work, func(a, b int64) bool { return a < b })
		})
		for i := range work {
			if work[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScanQuickProperty(t *testing.T) {
	f := func(xs []int32) bool {
		src := make([]int64, len(xs))
		for i, v := range xs {
			src[i] = int64(v)
		}
		dst := make([]int64, len(src))
		rt.Run(func(p *xkaapi.Proc) {
			par.Scan(p, dst, src, 0, func(a, b int64) int64 { return a + b })
		})
		var acc int64
		for i := range src {
			acc += src[i]
			if dst[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
