// Package par provides the higher-level parallel algorithms the paper
// builds on top of the adaptive task model (§II-D: "for applications
// developers, a set of higher parallel algorithms, like those of the STL,
// are proposed on top of the adaptive task model", citing Traoré et al.'s
// deque-free work-optimal parallel STL).
//
// All algorithms run inside an xkaapi runtime, use the adaptive foreach for
// loops (work is divided only when cores are idle) and fork-join tasks for
// divide-and-conquer, and are deterministic: parallel results equal the
// sequential ones.
//
// Prefix deserves a note: the paper invokes Fich's lower bound (a parallel
// prefix of n inputs in logarithmic time needs ≥ 4n operations versus n−1
// sequentially) as the reason adaptive algorithms must bound their extra
// operations. Scan here uses the classical two-pass scheme: it only pays
// the second pass over the blocks that were actually executed in parallel.
//
// Two entry points take a *xkaapi.Runtime instead of a *xkaapi.Proc: Do and
// ForEach submit a fresh job, so independent goroutines can run parallel
// algorithms concurrently over one shared pool. Everything else composes
// inside an already running task.
package par

import (
	"context"
	"sort"

	"xkaapi"
)

// Do runs the given functions as parallel siblings of one job on rt and
// returns when all of them (and every task they spawned) completed,
// reporting the job's error: nil on success, or a *xkaapi.PanicError if any
// sibling (or a task it spawned) panicked — the first panic wins and the
// job's remaining siblings are cancelled. Any goroutine may call Do,
// concurrently with other Do/ForEach calls and submitted jobs: all of them
// multiplex over rt's one worker pool, so concurrent clients do not need
// private runtimes.
func Do(rt *xkaapi.Runtime, fns ...func(*xkaapi.Proc)) error {
	return DoCtx(context.Background(), rt, fns...)
}

// DoCtx is Do bound to a context: cancelling ctx (or its deadline
// expiring) fails the job, prunes the siblings not yet started, and
// cancels the context every sibling sees through Proc.Context — the same
// signal a sibling panic fires — so long-running siblings can select on
// it and return early.
func DoCtx(ctx context.Context, rt *xkaapi.Runtime, fns ...func(*xkaapi.Proc)) error {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return rt.RunCtx(ctx, fns[0])
	}
	return rt.RunCtx(ctx, func(p *xkaapi.Proc) {
		for _, fn := range fns[1:] {
			p.Spawn(fn)
		}
		fns[0](p)
		p.Sync()
	})
}

// ForEach runs body over [lo, hi) as one job on rt with the adaptive loop
// scheduler and reports the job's error (a panicking body aborts the loop
// and surfaces as a *xkaapi.PanicError). Like Do it is safe to call from
// any goroutine; concurrent loops share the pool.
func ForEach(rt *xkaapi.Runtime, lo, hi int, body func(p *xkaapi.Proc, lo, hi int)) error {
	return ForEachCtx(context.Background(), rt, lo, hi, body)
}

// ForEachCtx is ForEach bound to a context: cancelling ctx (or its
// deadline expiring) aborts the loop at the next grain boundary with ctx's
// error; bodies doing per-chunk I/O can additionally take p.Context() for
// intra-chunk deadline awareness.
func ForEachCtx(ctx context.Context, rt *xkaapi.Runtime, lo, hi int, body func(p *xkaapi.Proc, lo, hi int)) error {
	return rt.RunCtx(ctx, func(p *xkaapi.Proc) { xkaapi.Foreach(p, lo, hi, body) })
}

// Map applies f to every element of src, writing dst (which must have the
// same length), in parallel.
func Map[T, U any](p *xkaapi.Proc, dst []U, src []T, f func(T) U) {
	if len(dst) != len(src) {
		panic("par: Map length mismatch")
	}
	xkaapi.Foreach(p, 0, len(src), func(_ *xkaapi.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = f(src[i])
		}
	})
}

// Reduce folds xs with the associative, commutative op; id must be its
// identity.
func Reduce[T any](p *xkaapi.Proc, xs []T, id T, op func(T, T) T) T {
	return xkaapi.ForeachReduce(p, 0, len(xs), xkaapi.LoopOpts{},
		func() T { return id },
		func(_ *xkaapi.Proc, lo, hi int, acc T) T {
			for i := lo; i < hi; i++ {
				acc = op(acc, xs[i])
			}
			return acc
		},
		op)
}

// Sum adds up a slice of numbers.
func Sum[T int | int32 | int64 | float32 | float64](p *xkaapi.Proc, xs []T) T {
	var zero T
	return Reduce(p, xs, zero, func(a, b T) T { return a + b })
}

// Count returns how many elements satisfy pred.
func Count[T any](p *xkaapi.Proc, xs []T, pred func(T) bool) int {
	return xkaapi.ForeachReduce(p, 0, len(xs), xkaapi.LoopOpts{},
		func() int { return 0 },
		func(_ *xkaapi.Proc, lo, hi, acc int) int {
			for i := lo; i < hi; i++ {
				if pred(xs[i]) {
					acc++
				}
			}
			return acc
		},
		func(a, b int) int { return a + b })
}

// MinIndex returns the index of the smallest element under less, or -1 for
// an empty slice. Ties resolve to the smallest index, so the result is
// deterministic.
func MinIndex[T any](p *xkaapi.Proc, xs []T, less func(a, b T) bool) int {
	if len(xs) == 0 {
		return -1
	}
	best := xkaapi.ForeachReduce(p, 0, len(xs), xkaapi.LoopOpts{},
		func() int { return -1 },
		func(_ *xkaapi.Proc, lo, hi, acc int) int {
			for i := lo; i < hi; i++ {
				if acc < 0 || less(xs[i], xs[acc]) || (!less(xs[acc], xs[i]) && i < acc) {
					acc = i
				}
			}
			return acc
		},
		func(a, b int) int {
			switch {
			case a < 0:
				return b
			case b < 0:
				return a
			case less(xs[a], xs[b]):
				return a
			case less(xs[b], xs[a]):
				return b
			case a < b:
				return a
			default:
				return b
			}
		})
	return best
}

// FindFirst returns the smallest index whose element satisfies pred, or -1.
// Chunks past an already-found match are pruned, so the extra work over a
// sequential find stays bounded (the adaptive-algorithm requirement of
// §II-D).
func FindFirst[T any](p *xkaapi.Proc, xs []T, pred func(T) bool) int {
	found := int64(len(xs)) // smallest matching index so far
	fp := &found
	xkaapi.Foreach(p, 0, len(xs), func(_ *xkaapi.Proc, lo, hi int) {
		if int64(lo) >= atomicLoad(fp) {
			return // a match at a smaller index already exists
		}
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				atomicMin(fp, int64(i))
				return
			}
		}
	})
	if found == int64(len(xs)) {
		return -1
	}
	return int(found)
}

// Scan computes the inclusive prefix combination of src into dst under the
// associative op (dst[i] = src[0] op … op src[i]). Two passes: per-block
// sums in parallel, a sequential exclusive scan over the ~P block sums, and
// a parallel rewrite pass seeded with each block's offset.
func Scan[T any](p *xkaapi.Proc, dst, src []T, id T, op func(T, T) T) {
	n := len(src)
	if len(dst) != n {
		panic("par: Scan length mismatch")
	}
	if n == 0 {
		return
	}
	nb := 4 * p.NumWorkers()
	if nb > n {
		nb = n
	}
	bounds := make([]int, nb+1)
	for i := 0; i <= nb; i++ {
		bounds[i] = i * n / nb
	}
	sums := make([]T, nb)
	// Pass 1: block-local inclusive scans into dst, recording block totals.
	xkaapi.Foreach(p, 0, nb, func(_ *xkaapi.Proc, lo, hi int) {
		for b := lo; b < hi; b++ {
			acc := id
			for i := bounds[b]; i < bounds[b+1]; i++ {
				acc = op(acc, src[i])
				dst[i] = acc
			}
			sums[b] = acc
		}
	})
	// Sequential exclusive scan over the block totals.
	acc := id
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = acc
		acc = op(acc, s)
	}
	// Pass 2: offset every block by the prefix of the blocks before it.
	xkaapi.Foreach(p, 1, nb, func(_ *xkaapi.Proc, lo, hi int) {
		for b := lo; b < hi; b++ {
			off := sums[b]
			for i := bounds[b]; i < bounds[b+1]; i++ {
				dst[i] = op(off, dst[i])
			}
		}
	})
}

// Sort sorts xs in place under less, with a fork-join merge sort on top of
// the runtime (sequential sort.Slice below the grain, parallel merge of the
// halves by binary-search splitting).
func Sort[T any](p *xkaapi.Proc, xs []T, less func(a, b T) bool) {
	buf := make([]T, len(xs))
	mergeSort(p, xs, buf, less)
}

const sortGrain = 4096

func mergeSort[T any](p *xkaapi.Proc, xs, buf []T, less func(a, b T) bool) {
	if len(xs) <= sortGrain {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := len(xs) / 2
	p.Spawn(func(p *xkaapi.Proc) { mergeSort(p, xs[:mid], buf[:mid], less) })
	mergeSort(p, xs[mid:], buf[mid:], less)
	p.Sync()
	parMerge(p, xs[:mid], xs[mid:], buf, less)
	copy(xs, buf)
}

// parMerge merges sorted a and b into out, splitting the bigger input at
// its midpoint and the other by binary search, in parallel.
func parMerge[T any](p *xkaapi.Proc, a, b, out []T, less func(x, y T) bool) {
	if len(a)+len(b) <= sortGrain {
		seqMerge(a, b, out, less)
		return
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	ma := len(a) / 2
	mb := sort.Search(len(b), func(i int) bool { return !less(b[i], a[ma]) })
	p.Spawn(func(p *xkaapi.Proc) { parMerge(p, a[:ma], b[:mb], out[:ma+mb], less) })
	parMerge(p, a[ma:], b[mb:], out[ma+mb:], less)
	p.Sync()
}

func seqMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}
