package par

import (
	"errors"
	"sync/atomic"
	"testing"

	"xkaapi"
)

// TestDoReportsPanic: a panicking sibling fails the whole Do job and the
// error carries the panic value; the runtime survives.
func TestDoReportsPanic(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	var ran atomic.Int32
	err := Do(rt,
		func(*xkaapi.Proc) { ran.Add(1) },
		func(*xkaapi.Proc) { panic("boom-do") },
		func(*xkaapi.Proc) { ran.Add(1) },
	)
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-do" {
		t.Fatalf("Do error = %v, want PanicError(boom-do)", err)
	}
	if err := Do(rt, func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("Do after failure: %v", err)
	}
}

// TestDoNoError: the nil-error path stays nil for 0, 1 and n functions.
func TestDoNoError(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2))
	defer rt.Close()
	if err := Do(rt); err != nil {
		t.Fatalf("empty Do: %v", err)
	}
	if err := Do(rt, func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("single Do: %v", err)
	}
	if err := Do(rt, func(*xkaapi.Proc) {}, func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("double Do: %v", err)
	}
}

// TestForEachReportsPanic: a panicking loop body aborts the loop and
// surfaces through ForEach's error.
func TestForEachReportsPanic(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	err := ForEach(rt, 0, 100_000, func(_ *xkaapi.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 51_000 {
				panic("boom-foreach")
			}
		}
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-foreach" {
		t.Fatalf("ForEach error = %v, want PanicError(boom-foreach)", err)
	}
	// The pool keeps serving loops after the failure.
	var sum atomic.Int64
	if err := ForEach(rt, 0, 1000, func(_ *xkaapi.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	}); err != nil {
		t.Fatalf("ForEach after failure: %v", err)
	}
	if sum.Load() != 499_500 {
		t.Fatalf("sum = %d, want 499500", sum.Load())
	}
}
