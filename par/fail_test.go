package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xkaapi"
)

// TestDoReportsPanic: a panicking sibling fails the whole Do job and the
// error carries the panic value; the runtime survives.
func TestDoReportsPanic(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	var ran atomic.Int32
	err := Do(rt,
		func(*xkaapi.Proc) { ran.Add(1) },
		func(*xkaapi.Proc) { panic("boom-do") },
		func(*xkaapi.Proc) { ran.Add(1) },
	)
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-do" {
		t.Fatalf("Do error = %v, want PanicError(boom-do)", err)
	}
	if err := Do(rt, func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("Do after failure: %v", err)
	}
}

// TestDoNoError: the nil-error path stays nil for 0, 1 and n functions.
func TestDoNoError(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2))
	defer rt.Close()
	if err := Do(rt); err != nil {
		t.Fatalf("empty Do: %v", err)
	}
	if err := Do(rt, func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("single Do: %v", err)
	}
	if err := Do(rt, func(*xkaapi.Proc) {}, func(*xkaapi.Proc) {}); err != nil {
		t.Fatalf("double Do: %v", err)
	}
}

// TestForEachReportsPanic: a panicking loop body aborts the loop and
// surfaces through ForEach's error.
func TestForEachReportsPanic(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(4))
	defer rt.Close()
	err := ForEach(rt, 0, 100_000, func(_ *xkaapi.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 51_000 {
				panic("boom-foreach")
			}
		}
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-foreach" {
		t.Fatalf("ForEach error = %v, want PanicError(boom-foreach)", err)
	}
	// The pool keeps serving loops after the failure.
	var sum atomic.Int64
	if err := ForEach(rt, 0, 1000, func(_ *xkaapi.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	}); err != nil {
		t.Fatalf("ForEach after failure: %v", err)
	}
	if sum.Load() != 499_500 {
		t.Fatalf("sum = %d, want 499500", sum.Load())
	}
}

// TestDoContextUnblocksOnSiblingPanic: a Do sibling parked on
// Proc.Context's Done channel is released by another sibling's panic.
func TestDoContextUnblocksOnSiblingPanic(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2), xkaapi.WithoutPinning())
	defer rt.Close()
	blocked := make(chan struct{})
	err := Do(rt,
		func(p *xkaapi.Proc) { // runs in the root body
			<-blocked // the blocker sibling is provably parked on Done
			panic("boom-do-ctx")
		},
		func(p *xkaapi.Proc) { // spawned sibling, stolen by the other worker
			close(blocked)
			<-p.Context().Done()
		},
	)
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-do-ctx" {
		t.Fatalf("Do = %v, want PanicError(boom-do-ctx)", err)
	}
}

// TestDoCtxDeadline: DoCtx fails the whole sibling group at the parent
// deadline, releasing siblings parked on the job context.
func TestDoCtxDeadline(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2), xkaapi.WithoutPinning())
	defer rt.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := DoCtx(ctx, rt,
		func(p *xkaapi.Proc) { <-p.Context().Done() },
		func(p *xkaapi.Proc) { <-p.Context().Done() },
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoCtx = %v, want DeadlineExceeded", err)
	}
}

// TestForEachCtxCancelled: cancelling the loop's context aborts it with
// the context error instead of finishing the range.
func TestForEachCtxCancelled(t *testing.T) {
	rt := xkaapi.New(xkaapi.WithWorkers(2), xkaapi.WithoutPinning())
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	var iters atomic.Int64
	err := ForEachCtx(ctx, rt, 0, 1<<30, func(p *xkaapi.Proc, lo, hi int) {
		once.Do(cancel)
		// The cancellation hook runs asynchronously; linger per chunk so
		// the job fails while most of the range is still unclaimed.
		time.Sleep(time.Millisecond)
		iters.Add(int64(hi - lo))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx = %v, want context.Canceled", err)
	}
	if iters.Load() >= 1<<30 {
		t.Fatal("cancelled loop executed the entire range")
	}
}
