#!/bin/sh
# Integration tier: the xkserve serve/load pipeline over real HTTP.
#
# Phase 1 runs the verified mixed workload (fib fork-join + adaptive loop +
# Cholesky dataflow) plus an over-capacity burst that must be answered with
# 429s once budget AND admission queue are full. Phase 2 is the burst-SLO
# probe: a 4x-budget burst of simultaneous /fib requests, fired with no
# retry, must complete >= 90% as verified 200s within the SLO — the
# admission queue (plus request coalescing) converts what used to be
# instant 429s into completed responses — and /stats must publish the
# per-endpoint latency quantiles. Phase 3 asserts /stats publishes live
# task counters: while /loop requests are in flight, the scheduler's
# Executed count must advance (the per-worker counters are padded atomics,
# so mid-flight reads are exact and race-free). Phase 4 SIGTERMs the server
# mid-load: it must drain in-flight jobs and exit 0 with balanced scheduler
# counters (spawned == executed + cancelled), while the load generator
# tolerates the drain. Phase 5 runs a second, sharded server (-shards 4):
# the mixed workload must spread over every shard (non-zero executed per
# shard in /stats), a hot-affinity wave pinning simultaneous /loop jobs to
# one shard must migrate via cross-shard stealing (stolen_in > 0), and the
# fleet must drain cleanly on SIGTERM with the aggregate counters balanced.
# Phase 6 is the chaos exercise: a third 4-shard server runs with seeded
# fault injection armed (worker stalls, task/loop panics, 20ms handler
# delays, and a wall-clock wedge freezing shard 1), a p99 SLO that the
# injected latency must violate, and a panic-retry budget that must absorb
# every injected crash. Under a sustained mixed load plus an affinity wave
# pinned to the wedged shard, every response must still verify (zero 500s),
# /healthz must be observed degraded and recover to ok, the health
# supervisor must trip the wedged shard and re-admit it
# (health_transitions >= 2 in /stats), and the SIGTERM drain must balance
# with nonzero task_panics in the chaos exit report.
set -eu

ADDR=127.0.0.1:18097
ADDR2=127.0.0.1:18098
ADDR3=127.0.0.1:18099
BIN="${TMPDIR:-/tmp}/xkserve-ci"
SERVE_LOG="${TMPDIR:-/tmp}/xkserve-ci-serve.log"
SERVE2_LOG="${TMPDIR:-/tmp}/xkserve-ci-serve2.log"
SERVE3_LOG="${TMPDIR:-/tmp}/xkserve-ci-serve3.log"
LOAD_LOG="${TMPDIR:-/tmp}/xkserve-ci-load.log"
LOAD3_LOG="${TMPDIR:-/tmp}/xkserve-ci-load3.log"
HEALTH_LOG="${TMPDIR:-/tmp}/xkserve-ci-health.log"

go build -o "$BIN" ./cmd/xkserve

"$BIN" serve -addr "$ADDR" -budget 4 -timeout 30s >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
SERVE2_PID=
SERVE3_PID=
HEALTH_PID=
trap 'kill "$SERVE_PID" $SERVE2_PID $SERVE3_PID $HEALTH_PID 2>/dev/null || true' EXIT

# Budget 4, queue 16 (the 4x default): a cholesky burst of 24 overflows
# both (4 running + 16 queued) and must see 429s for the remainder.
echo "== integration: mixed workload + over-capacity backpressure burst"
"$BIN" load -addr "http://$ADDR" -clients 6 -jobs 12 \
	-fib 20 -loop 100000 -chol 128 -nb 32 -burst 24 -expect-429

# 4x-budget simultaneous /fib requests, no retry: the admission queue must
# absorb the whole burst (16 = 4 slots + 12 of the 16 queue places) within
# the SLO, where the pre-queue server answered instant 429s.
echo "== integration: queued admission absorbs a 4x-budget fib burst within SLO"
"$BIN" load -addr "http://$ADDR" -clients 0 -jobs 0 \
	-fib 24 -fib-burst 16 -burst-slo 10s -burst-min-ok 0.9

echo "== integration: /stats publishes per-endpoint latency quantiles + queue histograms"
STATS=$(curl -s "http://$ADDR/stats")
for key in p50_ns p99_ns queue_wait queue_depth server_cancelled; do
	if ! printf '%s' "$STATS" | grep -q "\"$key\""; then
		echo "integration: /stats missing $key" >&2
		exit 1
	fi
done

echo "== integration: /stats must publish live executed counts mid-flight"
# The scheduler's Executed counter in /stats (the only "Executed" key in the
# reply; endpoint aggregates use task_executed) must be non-zero and growing
# while /loop work is in flight — before this PR the task-path counters were
# plain ints and reported as zero until the pool drained.
# A transiently failing sample (curl error, missing key) must not abort the
# script under set -e; the poll loop below retries, so report empty instead.
stats_executed() {
	curl -s "http://$ADDR/stats" | grep -o '"Executed": *[0-9]*' | grep -o '[0-9]*$' || true
}
BASE=$(stats_executed)
BASE=${BASE:-0}
(
	i=0
	while [ "$i" -lt 40 ]; do
		curl -s "http://$ADDR/loop?n=50000000" >/dev/null || true
		i=$((i + 1))
	done
) &
STREAM_PID=$!
LIVE_OK=0
while kill -0 "$STREAM_PID" 2>/dev/null; do
	NOW=$(stats_executed)
	if [ -n "${NOW:-}" ] && [ "$NOW" -gt "$BASE" ]; then
		LIVE_OK=1
		break
	fi
	sleep 0.05
done
kill "$STREAM_PID" 2>/dev/null || true
wait "$STREAM_PID" 2>/dev/null || true
if [ "$LIVE_OK" -ne 1 ]; then
	echo "integration: /stats never showed live executed counts during in-flight /loop" >&2
	exit 1
fi
echo "live /stats OK (executed $BASE -> $NOW while /loop in flight)"

echo "== integration: SIGTERM mid-load must drain cleanly"
"$BIN" load -addr "http://$ADDR" -clients 6 -jobs 500 -chol 256 -nb 32 \
	-expect-drain >"$LOAD_LOG" 2>&1 &
LOAD_PID=$!
sleep 1
kill -TERM "$SERVE_PID"
SERVE_STATUS=0
wait "$SERVE_PID" || SERVE_STATUS=$?
wait "$LOAD_PID" || {
	echo "integration: load generator failed during drain:" >&2
	cat "$LOAD_LOG" >&2
	exit 1
}
cat "$SERVE_LOG"
if [ "$SERVE_STATUS" -ne 0 ]; then
	echo "integration: serve exited $SERVE_STATUS (want 0: clean drain)" >&2
	exit 1
fi
grep -q "drained cleanly" "$SERVE_LOG"

echo "== integration: sharded server (-shards 4): placement spreads, overload migrates"
"$BIN" serve -addr "$ADDR2" -shards 4 -workers 8 -budget 32 -timeout 30s >"$SERVE2_LOG" 2>&1 &
SERVE2_PID=$!
# Mixed load spreads across shards via least-load routing; the hot-affinity
# wave then pins 24 simultaneous /loop jobs to one 2-worker shard, which
# must backlog and shed roots to its siblings. -expect-shards 4 fails the
# load run unless /stats shows 4 shards, every shard executing, and at
# least one cross-shard steal.
"$BIN" load -addr "http://$ADDR2" -clients 8 -jobs 24 \
	-fib 20 -loop 100000 -chol 128 -nb 32 \
	-hot-affinity 24 -hot-loop 1000000 -expect-shards 4
kill -TERM "$SERVE2_PID"
SERVE2_STATUS=0
wait "$SERVE2_PID" || SERVE2_STATUS=$?
cat "$SERVE2_LOG"
if [ "$SERVE2_STATUS" -ne 0 ]; then
	echo "integration: sharded serve exited $SERVE2_STATUS (want 0: clean drain)" >&2
	exit 1
fi
grep -q "drained cleanly" "$SERVE2_LOG"
# The per-shard exit report must be present and name every shard.
grep -q "shard 3/4" "$SERVE2_LOG"

echo "== integration: chaos: injected faults, shard supervision, graceful degradation"
# Full scenario, fixed seed: worker stalls, task/loop panics (absorbed by
# -panic-retries so the answer stream stays clean), 20ms handler delays
# that must push the 15ms SLO into brownout, and a wedge freezing shard 1
# between t+750ms and t+2.75s. The mixed load keeps the sibling shards
# busy; one second in, an affinity wave pins /loop jobs to the wedged
# shard so its inbox backlogs behind the frozen workers — the health
# supervisor must trip the shard (its progress epoch stalls with a
# nonempty inbox) and re-admit it once the wedge lifts. The budget is wide
# enough that the whole wave is in flight at once (a real backlog, not an
# admission trickle) and -health-stall shortens the supervisor's patience
# so the backlog trips the shard before sibling steals drain it. Request
# sizes stay small so the per-attempt panic probability times the retry
# budget keeps the failure odds negligible: both load runs verify every
# response, so a single 500 fails the phase.
"$BIN" serve -addr "$ADDR3" -shards 4 -workers 8 -budget 128 -timeout 30s \
	-chaos stall+panic+latency+wedge:7 -panic-retries 20 -slo 15ms \
	-health-stall 100ms >"$SERVE3_LOG" 2>&1 &
SERVE3_PID=$!
: >"$HEALTH_LOG"
(
	while :; do
		curl -s "http://$ADDR3/healthz" >>"$HEALTH_LOG" 2>/dev/null || true
		printf '\n' >>"$HEALTH_LOG"
		sleep 0.05
	done
) &
HEALTH_PID=$!
"$BIN" load -addr "http://$ADDR3" -clients 12 -jobs 400 \
	-fib 6 -loop 3000000 -chol 64 -nb 32 -retries 3 >"$LOAD3_LOG" 2>&1 &
LOAD3_PID=$!
sleep 1
# The wave lands inside the wedge window: every request pins to shard 1.
"$BIN" load -addr "http://$ADDR3" -clients 0 -jobs 0 \
	-hot-affinity 64 -hot-loop 8000000 -retries 3 || {
	echo "integration: chaos affinity wave failed (an injected fault leaked into a response?)" >&2
	cat "$SERVE3_LOG" >&2
	exit 1
}
wait "$LOAD3_PID" || {
	echo "integration: chaos load failed (an injected fault leaked into a response?):" >&2
	cat "$LOAD3_LOG" >&2
	cat "$SERVE3_LOG" >&2
	exit 1
}
cat "$LOAD3_LOG"
if ! grep -q '^degraded' "$HEALTH_LOG"; then
	echo "integration: /healthz never reported degraded under injected latency" >&2
	exit 1
fi
# The supervisor must have tripped the wedged shard and re-admitted it:
# at least one full unhealthy->healthy episode somewhere in the fleet.
trans_sum() {
	curl -s "http://$ADDR3/stats" | grep -o '"health_transitions": *[0-9]*' |
		grep -o '[0-9]*$' | awk '{s += $1} END {print s + 0}'
}
TRANS=0
i=0
while [ "$i" -lt 100 ]; do
	TRANS=$(trans_sum)
	if [ "${TRANS:-0}" -ge 2 ]; then
		break
	fi
	i=$((i + 1))
	sleep 0.1
done
if [ "${TRANS:-0}" -lt 2 ]; then
	echo "integration: shard health transitions = ${TRANS:-0}, want >= 2 (trip + re-admit)" >&2
	curl -s "http://$ADDR3/stats" >&2 || true
	exit 1
fi
echo "shard supervision OK ($TRANS health transitions)"
# With the load gone the brownout windows clear and /healthz must recover
# to ok (three consecutive good windows) before the drain.
OK_SEEN=0
i=0
while [ "$i" -lt 100 ]; do
	if curl -s "http://$ADDR3/healthz" | grep -q '^ok'; then
		OK_SEEN=1
		break
	fi
	i=$((i + 1))
	sleep 0.1
done
kill "$HEALTH_PID" 2>/dev/null || true
wait "$HEALTH_PID" 2>/dev/null || true
HEALTH_PID=
if [ "$OK_SEEN" -ne 1 ]; then
	echo "integration: /healthz did not recover to ok after the chaos load" >&2
	exit 1
fi
kill -TERM "$SERVE3_PID"
SERVE3_STATUS=0
wait "$SERVE3_PID" || SERVE3_STATUS=$?
trap - EXIT
cat "$SERVE3_LOG"
if [ "$SERVE3_STATUS" -ne 0 ]; then
	echo "integration: chaos serve exited $SERVE3_STATUS (want 0: clean drain, counters balanced)" >&2
	exit 1
fi
grep -q "drained cleanly" "$SERVE3_LOG"
grep -q "chaos counts:" "$SERVE3_LOG"
# The injected panics must actually have fired (and been survived).
if grep -q "task_panics=0 " "$SERVE3_LOG"; then
	echo "integration: chaos run fired no task panics — injection not reaching the scheduler" >&2
	exit 1
fi

rm -f "$SERVE_LOG" "$SERVE2_LOG" "$SERVE3_LOG" "$LOAD_LOG" "$LOAD3_LOG" "$HEALTH_LOG" "$BIN"
echo "integration OK"
