package komp_test

import (
	"sync/atomic"
	"testing"
	"time"

	"xkaapi/gomp"
	"xkaapi/komp"
)

func fibKomp(tc *komp.TC, r *int64, n int) {
	if n < 2 {
		*r = int64(n)
		return
	}
	var r1, r2 int64
	tc.Task(func(tc *komp.TC) { fibKomp(tc, &r1, n-1) })
	fibKomp(tc, &r2, n-2)
	tc.Taskwait()
	*r = r1 + r2
}

func TestParallelRunsOncePerThread(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	var seen [4]int32
	tm.Parallel(func(tc *komp.TC) {
		atomic.AddInt32(&seen[tc.TID()], 1)
	})
	for tid, n := range seen {
		if n != 1 {
			t.Fatalf("thread %d ran %d times", tid, n)
		}
	}
}

func TestTasksFib(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	var r int64
	tm.Parallel(func(tc *komp.TC) {
		tc.Single(func() { fibKomp(tc, &r, 20) })
	})
	if r != 6765 {
		t.Fatalf("fib(20)=%d want 6765", r)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	const n = 100000
	hits := make([]int32, n)
	tm.ParallelFor(0, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d ran %d times", i, h)
		}
	}
}

func TestNestedTasksCompleteBeforeRegionEnds(t *testing.T) {
	tm := komp.NewTeam(3)
	defer tm.Close()
	var cnt atomic.Int32
	tm.Parallel(func(tc *komp.TC) {
		if tc.TID() == 0 {
			for i := 0; i < 100; i++ {
				tc.Task(func(tc *komp.TC) {
					tc.Task(func(*komp.TC) { cnt.Add(1) })
				})
			}
		}
	})
	if cnt.Load() != 100 {
		t.Fatalf("cnt=%d want 100", cnt.Load())
	}
}

func TestTeamReuse(t *testing.T) {
	tm := komp.NewTeam(2)
	defer tm.Close()
	for i := 0; i < 10; i++ {
		var n atomic.Int32
		tm.Parallel(func(*komp.TC) { n.Add(1) })
		if n.Load() != 2 {
			t.Fatalf("region %d ran on %d threads", i, n.Load())
		}
	}
}

// TestKompBeatsGompOnFineGrainTasks reproduces the libKOMP claim of the
// paper (§V / [5]): the same OpenMP task program runs much faster on the
// X-Kaapi scheduler than on the central-queue runtime once the grain is
// fine and several threads contend.
func TestKompBeatsGompOnFineGrainTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	const n = 22
	timeFib := func(run func(r *int64)) time.Duration {
		var r int64
		run(&r) // warmup
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			run(&r)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		if r != 17711 {
			t.Fatalf("fib(%d)=%d", n, r)
		}
		return best
	}

	km := komp.NewTeam(0)
	kompT := timeFib(func(r *int64) {
		km.Parallel(func(tc *komp.TC) { tc.Single(func() { fibKomp(tc, r, n) }) })
	})
	km.Close()

	gm := gomp.NewTeam(0)
	gm.Throttle = false // isolate the scheduler, not the cutoff heuristic
	gompT := timeFib(func(r *int64) {
		gm.Parallel(func(tc *gomp.TC) {
			tc.Single(func() {
				var fg func(tc *gomp.TC, r *int64, n int)
				fg = func(tc *gomp.TC, r *int64, n int) {
					if n < 2 {
						*r = int64(n)
						return
					}
					var r1, r2 int64
					tc.Task(func(tc *gomp.TC) { fg(tc, &r1, n-1) })
					fg(tc, &r2, n-2)
					tc.Taskwait()
					*r = r1 + r2
				}
				fg(tc, r, n)
			})
		})
	})
	gm.Close()

	if kompT >= gompT {
		t.Logf("komp %v vs gomp %v — expected komp faster; tolerated on tiny machines", kompT, gompT)
		if kompT > 2*gompT {
			t.Fatalf("komp (%v) much slower than gomp (%v)", kompT, gompT)
		}
	} else {
		t.Logf("komp %v vs gomp %v (%.1fx faster)", kompT, gompT,
			gompT.Seconds()/kompT.Seconds())
	}
}
