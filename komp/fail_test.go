package komp_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"xkaapi"
	"xkaapi/komp"
)

// TestParallelReportsPanic: a panicking virtual thread fails the region's
// job; the error carries the panic value and the pool survives.
func TestParallelReportsPanic(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	err := tm.Parallel(func(tc *komp.TC) {
		if tc.TID() == 1 {
			panic("boom-komp")
		}
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-komp" {
		t.Fatalf("Parallel = %v, want PanicError(boom-komp)", err)
	}
	var n atomic.Int32
	if err := tm.Parallel(func(*komp.TC) { n.Add(1) }); err != nil {
		t.Fatalf("Parallel after panic: %v", err)
	}
	if int(n.Load()) != tm.Threads() {
		t.Fatalf("next region ran on %d/%d threads", n.Load(), tm.Threads())
	}
}

// TestTaskPanicReported: a panic in an explicit task (X-Kaapi child task)
// is the region's error, not a process crash.
func TestTaskPanicReported(t *testing.T) {
	tm := komp.NewTeam(2)
	defer tm.Close()
	err := tm.Parallel(func(tc *komp.TC) {
		tc.Single(func() {
			tc.Task(func(*komp.TC) { panic("boom-komp-task") })
		})
		tc.Taskwait()
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-komp-task" {
		t.Fatalf("Parallel = %v, want PanicError(boom-komp-task)", err)
	}
}

// TestParallelForReportsPanic: the adaptive worksharing loop aborts on a
// body panic and reports it.
func TestParallelForReportsPanic(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	err := tm.ParallelFor(0, 100_000, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 51_000 {
				panic("boom-komp-for")
			}
		}
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-komp-for" {
		t.Fatalf("ParallelFor = %v, want PanicError(boom-komp-for)", err)
	}
}
