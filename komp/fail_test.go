package komp_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xkaapi"
	"xkaapi/komp"
)

// TestParallelReportsPanic: a panicking virtual thread fails the region's
// job; the error carries the panic value and the pool survives.
func TestParallelReportsPanic(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	err := tm.Parallel(func(tc *komp.TC) {
		if tc.TID() == 1 {
			panic("boom-komp")
		}
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-komp" {
		t.Fatalf("Parallel = %v, want PanicError(boom-komp)", err)
	}
	var n atomic.Int32
	if err := tm.Parallel(func(*komp.TC) { n.Add(1) }); err != nil {
		t.Fatalf("Parallel after panic: %v", err)
	}
	if int(n.Load()) != tm.Threads() {
		t.Fatalf("next region ran on %d/%d threads", n.Load(), tm.Threads())
	}
}

// TestTaskPanicReported: a panic in an explicit task (X-Kaapi child task)
// is the region's error, not a process crash.
func TestTaskPanicReported(t *testing.T) {
	tm := komp.NewTeam(2)
	defer tm.Close()
	err := tm.Parallel(func(tc *komp.TC) {
		tc.Single(func() {
			tc.Task(func(*komp.TC) { panic("boom-komp-task") })
		})
		tc.Taskwait()
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-komp-task" {
		t.Fatalf("Parallel = %v, want PanicError(boom-komp-task)", err)
	}
}

// TestParallelForReportsPanic: the adaptive worksharing loop aborts on a
// body panic and reports it.
func TestParallelForReportsPanic(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	err := tm.ParallelFor(0, 100_000, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 51_000 {
				panic("boom-komp-for")
			}
		}
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-komp-for" {
		t.Fatalf("ParallelFor = %v, want PanicError(boom-komp-for)", err)
	}
}

// TestContextUnblocksOnSiblingPanic: a virtual thread parked on
// TC.Context's Done channel is released the instant another virtual
// thread of the same region panics — Proc.Context through the komp
// mapping, since a virtual thread is an X-Kaapi task.
func TestContextUnblocksOnSiblingPanic(t *testing.T) {
	tm := komp.NewTeam(2)
	defer tm.Close()
	blocked := make(chan struct{})
	err := tm.Parallel(func(tc *komp.TC) {
		if tc.TID() == 1 {
			close(blocked)
			<-tc.Context().Done()
			return
		}
		<-blocked // the other virtual thread is provably parked on Done
		panic("boom-komp-ctx")
	})
	var pe *xkaapi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom-komp-ctx" {
		t.Fatalf("Parallel = %v, want PanicError(boom-komp-ctx)", err)
	}
}

// TestParallelCtxDeadline: ParallelCtx fails the region's job at the
// parent deadline; virtual threads observe it through TC.Context.
func TestParallelCtxDeadline(t *testing.T) {
	tm := komp.NewTeam(2)
	defer tm.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sawDeadline := false
	err := tm.ParallelCtx(ctx, func(tc *komp.TC) {
		if tc.TID() == 0 {
			_, sawDeadline = tc.Context().Deadline()
			<-tc.Context().Done()
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ParallelCtx = %v, want DeadlineExceeded", err)
	}
	if !sawDeadline {
		t.Fatal("virtual thread did not observe the deadline via TC.Context")
	}
}

// TestParallelForCtxCancelled: a cancelled context aborts the adaptive
// worksharing loop instead of finishing the range.
func TestParallelForCtxCancelled(t *testing.T) {
	tm := komp.NewTeam(2)
	defer tm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var chunks atomic.Int64
	var once sync.Once
	err := tm.ParallelForCtx(ctx, 0, 1<<30, func(_, lo, hi int) {
		once.Do(cancel)
		// The cancellation hook runs asynchronously; linger so the job
		// fails while chunks remain, proving the loop stops claiming them.
		time.Sleep(time.Millisecond)
		chunks.Add(int64(hi - lo))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelForCtx = %v, want context.Canceled", err)
	}
	if chunks.Load() >= 1<<30 {
		t.Fatal("cancelled worksharing loop executed the whole range")
	}
}
