// Package komp is libKOMP: the OpenMP-style API of package gomp re-hosted
// on the X-Kaapi scheduler, as the paper describes in §V ("X-KAAPI provides
// a binary compatible libGOMP library called libKOMP", Broquedis, Gautier,
// Danjean, IWOMP 2012). Programs written against teams, worksharing loops
// and tasks run unchanged, but:
//
//   - explicit tasks map to X-Kaapi fork-join tasks on per-worker deques
//     instead of gomp's central queue — fine-grain tasking stops collapsing
//     (compare TestKompBeatsGompOnFineGrainTasks);
//   - worksharing loops map to the adaptive foreach, i.e. the paper's
//     adaptive loop scheduler inside an OpenMP runtime (Durand et al.,
//     IWOMP 2013, referenced as [11]);
//   - taskwait maps to Sync.
//
// The "team" is virtual: OpenMP thread i is an X-Kaapi task, so a region's
// threads are balanced by work stealing like any other tasks.
//
// Because regions are submitted as independent jobs to the underlying
// runtime, Parallel and ParallelFor may be called from concurrent
// goroutines: unlike gomp (where concurrent regions serialize over the
// thread team), concurrent komp regions genuinely interleave over one
// worker pool, each region's virtual threads scheduled side by side.
package komp

import (
	"context"
	"runtime"

	"xkaapi"
)

// Team mirrors gomp.Team but owns (or borrows) an X-Kaapi runtime.
type Team struct {
	rt       *xkaapi.Runtime
	p        int
	borrowed bool // NewTeamOnRuntime: Close must not close a shared pool
}

// NewTeam creates a team of n OpenMP-style threads (GOMAXPROCS(0) if
// n <= 0).
func NewTeam(n int) *Team {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Team{rt: xkaapi.New(xkaapi.WithWorkers(n)), p: n}
}

// NewTeamOnRuntime creates a team of n virtual threads multiplexed over an
// existing runtime instead of a private one — the komp analogue of
// quark.NewOnRuntime. The regions share rt's workers (and whatever options
// rt was built with: shards, seeds, fault injection) with every other client
// of the pool; Close releases only the team, never the borrowed runtime.
// n <= 0 selects rt.Workers().
func NewTeamOnRuntime(rt *xkaapi.Runtime, n int) *Team {
	if n <= 0 {
		n = rt.Workers()
	}
	return &Team{rt: rt, p: n, borrowed: true}
}

// Close releases the runtime (a no-op for a team on a borrowed runtime:
// closing the shared pool is its owner's call).
func (tm *Team) Close() {
	if !tm.borrowed {
		tm.rt.Close()
	}
}

// Threads returns the team size.
func (tm *Team) Threads() int { return tm.p }

// TC is the per-thread context inside a parallel region.
type TC struct {
	team *Team
	proc *xkaapi.Proc
	tid  int
}

// TID returns the OpenMP thread number.
func (tc *TC) TID() int { return tc.tid }

// NumThreads returns the team size.
func (tc *TC) NumThreads() int { return tc.team.p }

// Context returns the region's job context — cancelled the instant the
// region fails on any virtual thread (panic in SPMD code or an explicit
// task), or when the ParallelCtx parent context is cancelled or times out.
// Region code doing deadline-aware work selects on Context().Done(); this
// is the komp mapping of the same Proc.Context every X-Kaapi task body
// has, since a virtual thread is just a task.
func (tc *TC) Context() context.Context { return tc.proc.Context() }

// Parallel executes fn once per virtual thread (SPMD) and returns after
// all of them — and every task they created — completed. Each virtual
// thread is an X-Kaapi task, so an idle core steals whole threads as well
// as their tasks. Concurrent Parallel calls from different goroutines are
// safe and share the pool: each region is one job on the runtime.
//
// A panic on any virtual thread (or in an explicit task) fails the
// region's job: the first panic is reported as a *xkaapi.PanicError, the
// region's remaining tasks are cancelled, and the pool survives for
// further regions.
func (tm *Team) Parallel(fn func(tc *TC)) error {
	return tm.ParallelCtx(context.Background(), fn)
}

// ParallelCtx is Parallel bound to a context: cancelling ctx (or its
// deadline expiring) fails the region's job, prunes the virtual threads
// and tasks not yet started, and cancels the context every thread sees
// through TC.Context. Unlike gomp — where a region owns the whole team —
// a cancelled komp region frees its workers for other jobs immediately.
func (tm *Team) ParallelCtx(ctx context.Context, fn func(tc *TC)) error {
	return tm.rt.RunCtx(ctx, func(p *xkaapi.Proc) {
		for tid := 1; tid < tm.p; tid++ {
			tid := tid
			p.Spawn(func(wp *xkaapi.Proc) {
				fn(&TC{team: tm, proc: wp, tid: tid})
			})
		}
		fn(&TC{team: tm, proc: p, tid: 0})
		p.Sync()
	})
}

// Single runs fn on thread 0 only.
func (tc *TC) Single(fn func()) {
	if tc.tid == 0 {
		fn()
	}
}

// Task creates an explicit task (#pragma omp task) on the X-Kaapi deque of
// the executing worker.
func (tc *TC) Task(fn func(tc *TC)) {
	team := tc.team
	tid := tc.tid
	tc.proc.Spawn(func(wp *xkaapi.Proc) {
		fn(&TC{team: team, proc: wp, tid: tid})
	})
}

// Taskwait waits for the current task's children (#pragma omp taskwait).
func (tc *TC) Taskwait() { tc.proc.Sync() }

// ParallelFor runs body over [lo, hi) with the adaptive loop scheduler;
// the OpenMP schedule clause disappears — adaptivity replaces it, which is
// conclusion 1 of the paper ("the OpenMP static and dynamic schedulers ...
// would benefit from being extended to match application characteristics").
// body receives the id of the X-Kaapi worker executing the chunk. A
// panicking body aborts the loop and is reported as a *xkaapi.PanicError.
func (tm *Team) ParallelFor(lo, hi int, body func(tid, lo, hi int)) error {
	return tm.ParallelForCtx(context.Background(), lo, hi, body)
}

// ParallelForCtx is ParallelFor bound to a context: cancelling ctx (or its
// deadline expiring) aborts the adaptive loop at the next grain boundary
// and returns ctx's error, exactly like a body panic would.
func (tm *Team) ParallelForCtx(ctx context.Context, lo, hi int, body func(tid, lo, hi int)) error {
	return tm.rt.RunCtx(ctx, func(p *xkaapi.Proc) {
		xkaapi.Foreach(p, lo, hi, func(wp *xkaapi.Proc, l, h int) {
			body(wp.ID(), l, h)
		})
	})
}
