package komp_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"xkaapi/komp"
)

// TestConcurrentRegionsSharedPool checks komp's upgrade over gomp: regions
// submitted from concurrent goroutines interleave over one X-Kaapi pool
// (they are independent jobs, not serialized over a thread team).
func TestConcurrentRegionsSharedPool(t *testing.T) {
	tm := komp.NewTeam(4)
	defer tm.Close()
	const clients, regions = 6, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < regions; i++ {
				switch (c + i) % 2 {
				case 0:
					var tasks atomic.Int64
					tm.Parallel(func(tc *komp.TC) {
						for k := 0; k < 8; k++ {
							tc.Task(func(*komp.TC) { tasks.Add(1) })
						}
						tc.Taskwait()
					})
					if got := tasks.Load(); got != int64(8*tm.Threads()) {
						t.Errorf("tasks=%d want %d", got, 8*tm.Threads())
						return
					}
				case 1:
					var sum atomic.Int64
					tm.ParallelFor(0, 1000, func(_, lo, hi int) {
						s := int64(0)
						for k := lo; k < hi; k++ {
							s += int64(k)
						}
						sum.Add(s)
					})
					if sum.Load() != 499500 {
						t.Errorf("sum=%d want 499500", sum.Load())
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}
