// Package xkaapi is a Go implementation of the X-Kaapi runtime described in
// "X-Kaapi: a Multi Paradigm Runtime for Multicore Architectures" (Gautier,
// Lementec, Faucher, Raffin; P2S2 workshop, ICPP 2013). It unifies three
// parallel paradigms over one low-overhead work-stealing scheduler:
//
//   - fork-join tasks: Proc.Spawn / Proc.Sync, Cilk-style;
//   - dataflow tasks: Proc.SpawnTask with Read/Write/ReadWrite/CumulWrite
//     accesses to shared Handles; the runtime computes true dependencies and
//     schedules tasks as their inputs are produced;
//   - adaptive parallel loops: Foreach, which creates work on demand as
//     cores become idle instead of a task per chunk.
//
// # Quick start
//
//	rt := xkaapi.New()
//	defer rt.Close()
//	rt.Run(func(p *xkaapi.Proc) {
//	    var a, b int
//	    p.Spawn(func(p *xkaapi.Proc) { a = work1(p) })
//	    b = work2()
//	    p.Sync()
//	    fmt.Println(a + b)
//	})
//
// # Concurrent job submission
//
// One Runtime serves any number of clients: every goroutine may Submit
// independent root jobs (or call Run, which is Submit plus Job.Wait) and
// all of them multiplex over the same worker pool — there is no need for a
// runtime per client.
//
//	rt := xkaapi.New()
//	defer rt.Close() // drains in-flight jobs
//	jobs := make([]*xkaapi.Job, 0, 100)
//	for i := 0; i < 100; i++ {
//	    jobs = append(jobs, rt.Submit(func(p *xkaapi.Proc) { serve(p) }))
//	}
//	for _, j := range jobs {
//	    j.Wait()
//	}
//
// Submit and the Wait family must be called from outside the pool: a task
// body that blocks in Wait stalls its worker (inside the pool, use Spawn
// and Sync instead).
//
// # Errors and cancellation
//
// Jobs are failure-aware. A panic anywhere in a job's task tree — a
// fork-join child, a dataflow task, an adaptive-loop chunk, even a splitter
// — is captured by the runtime instead of killing the process: the job
// fails with a *PanicError holding the panic value and the stack of the
// panic site (first panic wins), and the job's remaining tasks are
// cancelled (their bodies are skipped while the bookkeeping still drains,
// so the job always completes and dataflow state stays consistent). The
// error comes back from Run and Job.Wait:
//
//	if err := rt.Run(riskyRoot); err != nil {
//	    var pe *xkaapi.PanicError
//	    if errors.As(err, &pe) {
//	        log.Printf("job panicked: %v\n%s", pe.Value, pe.Stack)
//	    }
//	}
//
// Jobs can also be abandoned: SubmitCtx binds a job to a context
// (cancellation fails the job with the context's error and stops scheduling
// its tasks), Job.Cancel does the same with ErrCanceled. Submitting to a
// closed runtime no longer panics: it returns a pre-failed Job whose Wait
// reports ErrClosed. CloseErr is Close plus a summary error if any job
// failed over the runtime's lifetime.
//
// This whole protocol — panic capture, first-error-wins, cancellation
// fan-out, pre-failed jobs, the Spawned == Executed + Cancelled drain
// invariant — is one state machine, defined once in internal/jobfail and
// embedded by every scheduler in this module: the X-Kaapi runtime here and
// the cilk, tbbsched, gomp and quark comparator packages. The comparators
// differ from X-Kaapi in scheduling cost on purpose; they never differ in
// failure semantics.
//
// # Deadline-aware task bodies
//
// Cancellation is cooperative for bodies already running, and every task
// body can see it coming: Proc.Context returns a per-job context, derived
// from the SubmitCtx submission context (Background for Submit), that is
// cancelled — with the failure as cause — the instant the job fails for
// any reason: a sibling's panic, Job.Cancel, or the submission context's
// deadline or disconnect. Long kernels select on it, and context-aware
// I/O can take it directly:
//
//	rt.SubmitCtx(ctx, func(p *xkaapi.Proc) {
//	    for _, block := range blocks {
//	        if p.Context().Err() != nil {
//	            return // job failed or deadline hit: stop early
//	        }
//	        process(block)
//	    }
//	})
//
// Proc.JobFailed remains as the cheaper flag-poll for tight loops that
// cannot afford a context check per iteration.
//
// # Serving jobs over HTTP
//
// Package xkaapi/server wraps a Runtime in a network front-end: each HTTP
// request becomes one SubmitCtx job bound to the request context, with
// per-request deadlines, 429 backpressure from a bounded in-flight budget,
// per-job stats in every response (Job.Stats), and graceful drain — see
// that package and cmd/xkserve for the serving story, and quickstart §6
// for an in-process example.
//
// # Scaling out with shards
//
// On many-core machines one global pool can become a single contention
// domain. WithShards splits the runtime into N scheduler shards behind a
// load-aware router: every Submit lands on the least-loaded shard,
// SubmitAffinity pins related jobs to one shard for cache locality, and an
// idle shard's workers steal queued root jobs from loaded siblings so no
// shard backlogs while another sleeps. The submission API is identical —
// Runtime wraps the Pool interface both shapes satisfy — and ShardStats
// exposes the per-shard breakdown:
//
//	rt := xkaapi.New(xkaapi.WithShards(4))
//	defer rt.Close()
//	rt.SubmitAffinity(ctx, clientID, handle)
//	for _, ss := range rt.ShardStats() {
//	    log.Printf("shard %d: executed=%d stolen_in=%d", ss.Shard, ss.Sched.Executed, ss.StolenIn)
//	}
//
// The semantics are sequential (as in Athapascan): a program whose tasks are
// never stolen executes in program order, and dataflow dependencies make any
// parallel execution equivalent to that order. Independent jobs are
// unordered with respect to each other.
//
// Tasks are created non-blockingly and cost a few tens of nanoseconds; the
// scheduler follows the work-first principle, pays for parallelism only when
// idle cores actually ask for work (steal-request aggregation, adaptive
// splitting), and keeps task objects on per-worker free lists.
package xkaapi

import (
	"context"
	"time"

	"xkaapi/internal/chaos"
	"xkaapi/internal/core"
)

// ErrClosed is returned (via Job.Err / Job.Wait) for jobs submitted after
// Close: the runtime rejects them with a pre-failed Job instead of
// panicking.
var ErrClosed = core.ErrClosed

// ErrCanceled is the failure of a job abandoned with Job.Cancel. Jobs
// cancelled through a context fail with the context's own error instead.
var ErrCanceled = core.ErrCanceled

// PanicError is the error a job fails with when one of its task bodies
// panics; it carries the panic value and the stack captured at the panic
// site, and unwraps to the value when the body panicked with an error.
// It is an alias of the module's one shared definition (internal/jobfail),
// so a PanicError from cilk, tbbsched, gomp or quark is the same type.
type (
	PanicError = core.PanicError
)

// Proc is the execution context handed to every task body: spawning,
// syncing and parallel loops are methods on it. See the methods of the
// underlying scheduler worker: Spawn, SpawnTask, Sync, ForEach, Context,
// ID, NumWorkers.
type Proc = core.Worker

// Handle identifies a shared memory region for dataflow synchronization.
// The zero value is ready to use; a Handle must not be copied after use.
type Handle = core.Handle

// Access pairs a Handle with an access Mode; build them with Read, Write,
// ReadWrite and CumulWrite.
type Access = core.Access

// Mode is a dataflow access mode.
type Mode = core.Mode

// Access modes (§II-B of the paper).
const (
	ModeRead       = core.ModeRead
	ModeWrite      = core.ModeWrite
	ModeReadWrite  = core.ModeReadWrite
	ModeCumulWrite = core.ModeCumulWrite
)

// Stats aggregates scheduler event counters; see Runtime.Stats.
type Stats = core.Stats

// LoopOpts tunes Foreach grains and slicing; the zero value selects the
// kaapic_foreach defaults.
type LoopOpts = core.LoopOpts

// Adaptive lets a task publish a splitter so thieves can divide its
// remaining work on demand; see Proc.SetAdaptive and the paper's §II-D.
type Adaptive = core.Adaptive

// Task is an opaque scheduled task; splitters return tasks built with
// Proc.NewAdaptiveTask.
type Task = core.Task

// Interval is a concurrently divisible iteration range used by adaptive
// tasks.
type Interval = core.Interval

// Read declares that the task reads the region behind h.
func Read(h *Handle) Access { return Access{Handle: h, Mode: core.ModeRead} }

// Write declares that the task overwrites the region behind h, producing a
// new version.
func Write(h *Handle) Access { return Access{Handle: h, Mode: core.ModeWrite} }

// ReadWrite declares an exclusive in-place update of the region behind h.
func ReadWrite(h *Handle) Access { return Access{Handle: h, Mode: core.ModeReadWrite} }

// CumulWrite declares a cumulative (commutative and associative) update;
// concurrent CumulWrite tasks on the same handle may run in parallel, so the
// body must make its update thread-safe (e.g. per-worker accumulators or an
// atomic add).
func CumulWrite(h *Handle) Access { return Access{Handle: h, Mode: core.ModeCumulWrite} }

// Option configures New.
type Option func(*config)

// config is the pool shape New builds: the per-shard scheduler Config plus
// the fleet knobs.
type config struct {
	core      core.Config
	shards    int
	shardSize int
	noSteal   bool
	health    core.HealthConfig
}

// WithWorkers sets the number of scheduling threads; the default is
// runtime.GOMAXPROCS(0), i.e. one per core. With WithShards(n), the
// workers are split evenly across the shards (unless WithShardSize pins
// the per-shard count explicitly).
func WithWorkers(n int) Option { return func(c *config) { c.core.Workers = n } }

// WithoutAggregation disables steal-request aggregation (one combiner
// answering all concurrent thieves); each thief then steals for itself.
// Provided for the ablation benchmarks.
func WithoutAggregation() Option { return func(c *config) { c.core.NoAggregation = true } }

// WithoutPinning keeps workers as ordinary goroutines instead of locking
// each one to an OS thread.
func WithoutPinning() Option { return func(c *config) { c.core.DisablePinning = true } }

// WithSeed sets the base seed of the victim-selection RNGs, for reproducible
// schedules in tests.
func WithSeed(seed uint64) Option { return func(c *config) { c.core.Seed = seed } }

// WithShards splits the pool into n runtime shards behind a load-aware
// router: each submitted job is placed on the least-loaded shard (or the
// shard its affinity key pins, see Runtime.SubmitAffinity), and idle
// shards' workers pull queued roots from loaded siblings. n <= 1 keeps the
// classic single pool; n = 0 with WithShardSize set derives the shard
// count from GOMAXPROCS/shardSize.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithShardSize sets the worker count per shard (implying a sharded pool
// even without WithShards: the shard count then defaults to
// GOMAXPROCS/size, one shard per core group).
func WithShardSize(n int) Option { return func(c *config) { c.shardSize = n } }

// WithoutCrossSteal disables cross-shard stealing in a sharded pool,
// leaving only the router's placement. Provided for ablation and for tests
// that assert placement alone.
func WithoutCrossSteal() Option { return func(c *config) { c.noSteal = true } }

// WithShardHealth tunes the sharded pool's health supervisor: checkEvery
// is its polling cadence, stallAfter how long a shard may sit on a
// nonempty inbox without advancing its progress epoch before the router
// diverts around it. A zero keeps that parameter's default (25ms / 400ms);
// the option is ignored by single-shard runtimes, which have no sibling to
// divert to. Shorter stallAfter values trade divert latency against false
// trips on shards that are merely saturated — a tripped shard recovers on
// its next progress flush, so false trips cost routing quality, not
// correctness.
func WithShardHealth(checkEvery, stallAfter time.Duration) Option {
	return func(c *config) {
		c.health.CheckEvery = checkEvery
		c.health.StallAfter = stallAfter
	}
}

// WithoutShardHealth disables the shard health supervisor entirely: no
// watcher goroutine, no router diversion. Provided for ablation.
func WithoutShardHealth() Option { return func(c *config) { c.health.Disable = true } }

// ChaosScenario configures deterministic fault injection: seeded
// probabilities for task-body panics, adaptive-loop chunk panics, forced
// steal misses, worker stalls, delayed root delivery and a whole-shard
// wedge window. See NewChaosInjector and WithChaos.
type ChaosScenario = chaos.Scenario

// ChaosPulse is a probabilistic delay (probability + duration) used by the
// stall and delay sites of a ChaosScenario.
type ChaosPulse = chaos.Pulse

// ChaosWedge freezes every worker of one shard for a wall-clock window.
type ChaosWedge = chaos.WedgeSpec

// ChaosInjector evaluates a ChaosScenario; build one with NewChaosInjector
// or ParseChaos and install it with WithChaos. Safe for concurrent use and
// shareable across the shards of one pool (the counters then aggregate).
type ChaosInjector = chaos.Injector

// NewChaosInjector builds a fault injector for sc. Every decision is drawn
// from seeded hash streams, so a failing run reproduces from its seed.
func NewChaosInjector(sc ChaosScenario) *ChaosInjector { return chaos.New(sc) }

// ParseChaos builds an injector from a scenario spec like "panic+stall:42"
// (fragments: panic, steal, stall, inbox, latency, wedge, all; the number
// after ':' is the seed). Empty spec or "off" yields (nil, nil): disabled.
func ParseChaos(spec string) (*ChaosInjector, error) { return chaos.Parse(spec) }

// WithChaos compiles the fault injector into the pool: the scheduler draws
// injected panics, stalls, steal misses and delivery delays from it. nil is
// the default and costs a single nil check per injection site — runtimes
// built without WithChaos pay nothing.
func WithChaos(in *ChaosInjector) Option { return func(c *config) { c.core.Chaos = in } }

// Runtime owns a pool of workers, one per core by default — either one
// scheduler (the default) or, with WithShards, a fleet of scheduler shards
// behind a load-aware router. It is created idle; Submit injects a root
// job and returns its handle immediately, Run submits and waits. Any
// number of goroutines may submit concurrently: all jobs share the one
// pool. Close drains in-flight jobs and releases the workers. The
// submission surface is the same either way: Runtime wraps the Pool
// interface both shapes satisfy.
type Runtime struct {
	rt core.Pool
}

// Pool is the scheduler-side submission interface both a single runtime
// shard and a sharded fleet satisfy (Submit/SubmitCtx/SubmitAffinity,
// Wait, Close, Stats, per-shard ShardStats). Runtime wraps a Pool; the
// type is exported for code that wants to accept either shape directly.
type Pool = core.Pool

// ShardStats is one shard's monitoring entry: placement and migration
// counters plus the shard's scheduler Stats. See Runtime.ShardStats.
type ShardStats = core.ShardStats

// Job is the completion handle of one submitted root job. Wait returns the
// job's error (nil, *PanicError, a context error, ErrCanceled or
// ErrClosed), Err peeks without blocking, Cancel abandons the job's
// not-yet-started tasks, Context returns the per-job context task bodies
// see through Proc.Context, Stats returns the job's own task outcome
// counters. See Runtime.Submit and Runtime.SubmitCtx.
type Job = core.Job

// JobStats is the per-job attribution of the scheduler's task outcome
// counters (Executed, Cancelled, Panicked), for per-request or per-client
// accounting in services that multiplex many jobs over one pool.
//
// Mid-flight snapshots are approximate by design: Executed is batched
// through per-worker caches (the spawn fast path pays a plain increment,
// not a shared RMW per task), so while the job runs each counter is a
// monotone non-decreasing lower bound — it never overshoots and never goes
// backwards, it may just trail the truth by one batch per worker. Once the
// job's tree has drained and the workers touch an idle transition, the
// counts are exact; Cancelled and Panicked are always exact. See Job.Stats.
type JobStats = core.JobStats

// New creates a runtime with the given options: a single scheduler by
// default, a sharded fleet behind the load-aware router when WithShards
// (or WithShardSize) asks for one.
func New(opts ...Option) *Runtime {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards > 1 || (cfg.shards <= 0 && cfg.shardSize > 0) {
		fc := core.FleetConfig{
			Shards:    cfg.shards,
			ShardSize: cfg.shardSize,
			NoSteal:   cfg.noSteal,
			Health:    cfg.health,
			Runtime:   cfg.core,
		}
		if cfg.shards > 1 && cfg.shardSize <= 0 && cfg.core.Workers > 0 {
			// WithWorkers(n) + WithShards(s): split the n workers evenly.
			fc.ShardSize = max(1, cfg.core.Workers/cfg.shards)
		}
		return &Runtime{rt: core.NewFleet(fc)}
	}
	return &Runtime{rt: core.NewRuntime(cfg.core)}
}

// Close drains every in-flight job, then stops and joins the workers.
// Submitting after Close yields a pre-failed Job with ErrClosed.
func (r *Runtime) Close() { r.rt.Close() }

// CloseErr is Close plus a failure summary: nil if every job submitted over
// the runtime's lifetime succeeded, otherwise an error counting the failed
// jobs and wrapping the first failure.
func (r *Runtime) CloseErr() error { return r.rt.CloseErr() }

// Workers returns the number of scheduling threads.
func (r *Runtime) Workers() int { return r.rt.NumWorkers() }

// Run executes root as an independent root job on the pool and returns once
// every transitively spawned task completed, reporting the job's error (nil
// on success, *PanicError if a task body panicked). It is Submit followed
// by Job.Wait; concurrent Runs from different goroutines share the pool.
func (r *Runtime) Run(root func(*Proc)) error { return r.rt.RunRoot(root) }

// RunCtx is Run bound to a context: if ctx is cancelled before the job
// completes, the job's remaining tasks are skipped and RunCtx returns
// ctx.Err().
func (r *Runtime) RunCtx(ctx context.Context, root func(*Proc)) error {
	return r.rt.SubmitCtx(ctx, root).Wait()
}

// Submit enqueues root as an independent job and returns its handle without
// waiting. Safe to call from any goroutine outside the pool, concurrently
// with other Submits, Runs and in-flight jobs.
func (r *Runtime) Submit(root func(*Proc)) *Job { return r.rt.Submit(root) }

// SubmitCtx is Submit bound to a context: cancelling ctx before the job
// completes fails the job with ctx.Err() and stops scheduling its tasks.
func (r *Runtime) SubmitCtx(ctx context.Context, root func(*Proc)) *Job {
	return r.rt.SubmitCtx(ctx, root)
}

// SubmitAffinity is SubmitCtx with a placement hint for sharded runtimes:
// jobs submitted with the same key are routed to the same shard, so related
// jobs (one client's requests, one dataset's queries) share that shard's
// caches. The pin is on placement only — cross-shard stealing still
// rebalances a backlogged shard unless WithoutCrossSteal. On an unsharded
// runtime the key is ignored and SubmitAffinity is exactly SubmitCtx.
func (r *Runtime) SubmitAffinity(ctx context.Context, key uint64, root func(*Proc)) *Job {
	return r.rt.SubmitAffinity(ctx, key, root)
}

// Wait blocks until every job submitted so far has completed and returns
// the aggregated outcome of the drain: nil if nothing failed since the last
// Wait, otherwise an errors.Join of the failures recorded since then (a
// bounded number of individual errors is retained; floods are summarized by
// count). Batch clients can therefore submit many jobs and check one error;
// individual Job handles still observe their own failures.
func (r *Runtime) Wait() error { return r.rt.Wait() }

// Stats returns the summed scheduler counters. All counters are per-worker
// atomics, so Stats may be read while jobs are in flight (each counter is a
// live, monotone lower bound); invariants such as Spawned == Executed +
// Cancelled hold exactly only once the pool is quiescent.
func (r *Runtime) Stats() Stats { return r.rt.Stats() }

// Shards returns the number of scheduler shards: 1 for the default single
// pool, the WithShards count for a sharded runtime.
func (r *Runtime) Shards() int { return r.rt.Shards() }

// ShardStats returns one monitoring entry per shard, in shard order: the
// shard's queue depths (InboxLen, LiveRoots), its cross-shard migration
// counters (StolenIn, StolenOut) and its scheduler Stats. On an unsharded
// runtime it returns a single entry. Note that migrated jobs are counted
// where they ran, so Spawned == Executed + Cancelled balances fleet-wide
// (Runtime.Stats), not per shard.
func (r *Runtime) ShardStats() []ShardStats { return r.rt.ShardStats() }

// String describes the pool shape ("xkaapi.Runtime{...}" for a single
// scheduler or fleet shard, "xkaapi.Fleet{...}" for a sharded runtime).
func (r *Runtime) String() string { return r.rt.String() }

// ResetStats zeroes the scheduler counters; call it between Runs.
func (r *Runtime) ResetStats() { r.rt.ResetStats() }

// Foreach runs body over [lo, hi) in parallel on r and returns when every
// index has been processed (or the loop failed: a panicking body aborts the
// loop and is reported as a *PanicError). It is shorthand for Run +
// Proc.ForEach with default grains.
func (r *Runtime) Foreach(lo, hi int, body func(p *Proc, lo, hi int)) error {
	return r.Run(func(p *Proc) { Foreach(p, lo, hi, body) })
}

// Foreach applies body to sub-ranges of [lo, hi) from within a running task,
// using the adaptive loop of the paper (§II-E): the range is pre-partitioned
// into one reserved slice per worker and further divided on demand when
// thieves ask for work.
func Foreach(p *Proc, lo, hi int, body func(p *Proc, lo, hi int)) {
	ForeachOpts(p, lo, hi, LoopOpts{}, body)
}

// ForeachGrain is Foreach with an explicit sequential grain: the executing
// worker claims chunks of exactly grain iterations (except the last).
func ForeachGrain(p *Proc, lo, hi, grain int, body func(p *Proc, lo, hi int)) {
	ForeachOpts(p, lo, hi, LoopOpts{SeqGrain: int64(grain)}, body)
}

// ForeachOpts is Foreach with full control over grains and slicing.
func ForeachOpts(p *Proc, lo, hi int, opt LoopOpts, body func(p *Proc, lo, hi int)) {
	p.ForEach(int64(lo), int64(hi), opt, func(w *Proc, l, h int64) {
		body(w, int(l), int(h))
	})
}
